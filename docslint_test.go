package negfsim

import (
	"os"
	"path/filepath"
	"regexp"
	"strings"
	"testing"
)

// docsLintFiles are the markdown files whose intra-repo links the docs lint
// checks; docs/ is globbed in addition.
var docsLintFiles = []string{
	"README.md",
	"ARCHITECTURE.md",
	"DESIGN.md",
	"EXPERIMENTS.md",
	"ROADMAP.md",
	"PAPER.md",
}

// mdLink matches inline markdown links: [text](target), capturing the target
// without any #fragment. Autolinks and reference-style links are out of
// scope — the repo's docs use inline links only.
var mdLink = regexp.MustCompile(`\]\(([^)#\s]+)(#[^)]*)?\)`)

// TestDocLinks is the docs lint of the tier-1 gate (`make docs-lint`): every
// relative link in the repo's markdown must point at a file or directory
// that exists, so doc rot of the "renamed file, stale link" kind fails CI
// instead of greeting a reader with a 404.
func TestDocLinks(t *testing.T) {
	files := append([]string(nil), docsLintFiles...)
	globbed, err := filepath.Glob("docs/*.md")
	if err != nil {
		t.Fatal(err)
	}
	files = append(files, globbed...)
	if len(globbed) == 0 {
		t.Error("docs/*.md matched nothing — the docs suite is missing")
	}

	checked := 0
	for _, file := range files {
		raw, err := os.ReadFile(file)
		if err != nil {
			if os.IsNotExist(err) && file != "README.md" {
				continue // optional root docs may not exist in every checkout
			}
			t.Fatalf("%s: %v", file, err)
		}
		for _, m := range mdLink.FindAllStringSubmatch(string(raw), -1) {
			target := m[1]
			if strings.Contains(target, "://") || strings.HasPrefix(target, "mailto:") {
				continue // external links are not this lint's business
			}
			resolved := filepath.Join(filepath.Dir(file), target)
			if _, err := os.Stat(resolved); err != nil {
				t.Errorf("%s: broken link %q (resolved %s)", file, target, resolved)
			}
			checked++
		}
	}
	if checked == 0 {
		t.Error("no relative links found at all — the lint is matching nothing")
	}
}
