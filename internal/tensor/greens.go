package tensor

import (
	"fmt"

	"negfsim/internal/cmat"
)

// GTensor holds an electron Green's function or self-energy tensor with the
// paper's 5-D shape [Nkz, NE, NA, Norb, Norb]. The innermost Norb×Norb
// matrix of a (kz, E, atom) point is stored contiguously so it can be viewed
// as a cmat.Dense without copying.
type GTensor struct {
	Nkz, NE, NA, Norb int
	Data              []complex128
}

// NewGTensor allocates a zeroed electron tensor.
func NewGTensor(nkz, ne, na, norb int) *GTensor {
	return &GTensor{Nkz: nkz, NE: ne, NA: na, Norb: norb,
		Data: make([]complex128, nkz*ne*na*norb*norb)}
}

// Block returns the Norb×Norb matrix at (kz, E, a) as a view sharing storage.
func (g *GTensor) Block(kz, e, a int) *cmat.Dense {
	if kz < 0 || kz >= g.Nkz || e < 0 || e >= g.NE || a < 0 || a >= g.NA {
		panic(fmt.Sprintf("tensor: GTensor.Block(%d,%d,%d) out of range (%d,%d,%d)", kz, e, a, g.Nkz, g.NE, g.NA))
	}
	n2 := g.Norb * g.Norb
	off := ((kz*g.NE+e)*g.NA + a) * n2
	return cmat.DenseFromSlice(g.Norb, g.Norb, g.Data[off:off+n2])
}

// BlockInto rebinds dst as the (kz, E, a) view without allocating a header:
// the steady-state alternative to Block for hot loops. dst shares storage
// with g afterwards.
func (g *GTensor) BlockInto(dst *cmat.Dense, kz, e, a int) {
	if kz < 0 || kz >= g.Nkz || e < 0 || e >= g.NE || a < 0 || a >= g.NA {
		panic(fmt.Sprintf("tensor: GTensor.BlockInto(%d,%d,%d) out of range (%d,%d,%d)", kz, e, a, g.Nkz, g.NE, g.NA))
	}
	n2 := g.Norb * g.Norb
	off := ((kz*g.NE+e)*g.NA + a) * n2
	dst.Rows, dst.Cols, dst.Data = g.Norb, g.Norb, g.Data[off:off+n2]
}

// Clone returns a deep copy.
func (g *GTensor) Clone() *GTensor {
	out := NewGTensor(g.Nkz, g.NE, g.NA, g.Norb)
	copy(out.Data, g.Data)
	return out
}

// Zero clears the tensor.
func (g *GTensor) Zero() {
	for i := range g.Data {
		g.Data[i] = 0
	}
}

// Bytes returns the storage footprint in bytes (16 bytes per complex128).
func (g *GTensor) Bytes() int { return 16 * len(g.Data) }

// MaxAbsDiff returns the largest element-wise |difference| between g and h.
func (g *GTensor) MaxAbsDiff(h *GTensor) float64 {
	if len(g.Data) != len(h.Data) {
		panic("tensor: GTensor.MaxAbsDiff shape mismatch")
	}
	var d float64
	for i := range g.Data {
		dd := g.Data[i] - h.Data[i]
		if a := real(dd)*real(dd) + imag(dd)*imag(dd); a > d {
			d = a
		}
	}
	return sqrt(d)
}

func sqrt(x float64) float64 {
	if x <= 0 {
		return 0
	}
	// Newton iterations are plenty here; avoids importing math for one call.
	z := x
	for i := 0; i < 32; i++ {
		z = 0.5 * (z + x/z)
	}
	return z
}

// AtomMajor is the data-layout transformation of Fig. 10(c): the electron
// tensor re-laid-out per atom, with all (kz, E) matrices of one atom stacked
// vertically into a single (Nkz·NE·Norb) × Norb matrix. In that layout,
// the Nkz·NE small multiplications G≷[f]·∇H of the SSE kernel become ONE
// (Nkz·NE·Norb) × Norb × Norb GEMM (the multiplication fusion of Fig. 10(d)).
type AtomMajor struct {
	Nkz, NE, NA, Norb int
	// Atom[a] is the stacked (Nkz·NE·Norb) × Norb matrix of atom a; row
	// block (kz·NE + E) holds the Norb×Norb matrix of that (kz, E) point.
	Atom []*cmat.Dense
}

// ToAtomMajor performs the layout transformation (a full copy of G).
func (g *GTensor) ToAtomMajor() *AtomMajor {
	am := &AtomMajor{Nkz: g.Nkz, NE: g.NE, NA: g.NA, Norb: g.Norb,
		Atom: make([]*cmat.Dense, g.NA)}
	rows := g.Nkz * g.NE * g.Norb
	var src cmat.Dense
	for a := 0; a < g.NA; a++ {
		m := cmat.NewDense(rows, g.Norb)
		for kz := 0; kz < g.Nkz; kz++ {
			for e := 0; e < g.NE; e++ {
				g.BlockInto(&src, kz, e, a)
				m.SetSubmatrix((kz*g.NE+e)*g.Norb, 0, &src)
			}
		}
		am.Atom[a] = m
	}
	return am
}

// Block returns the Norb×Norb matrix of (kz, E) for atom a as a view.
func (am *AtomMajor) Block(kz, e, a int) *cmat.Dense {
	n := am.Norb
	r0 := (kz*am.NE + e) * n
	m := am.Atom[a]
	return cmat.DenseFromSlice(n, n, m.Data[r0*n:(r0+n)*n])
}

// ToGTensor converts back to the (kz, E)-major layout (round trip of the
// transformation, used by tests).
func (am *AtomMajor) ToGTensor() *GTensor {
	g := NewGTensor(am.Nkz, am.NE, am.NA, am.Norb)
	for a := 0; a < am.NA; a++ {
		for kz := 0; kz < am.Nkz; kz++ {
			for e := 0; e < am.NE; e++ {
				g.Block(kz, e, a).CopyFrom(am.Block(kz, e, a))
			}
		}
	}
	return g
}

// DTensor holds a phonon Green's function or self-energy tensor with the
// paper's 6-D shape [Nqz, Nω, NA, NB+1, N3D, N3D]: for every (qz, ω, atom)
// it stores one N3D×N3D matrix per neighbor slot (slot NB is the atom's own
// diagonal block, slots 0..NB−1 the couplings to its NB neighbors).
type DTensor struct {
	Nqz, Nw, NA, NB, N3D int
	Data                 []complex128
}

// NewDTensor allocates a zeroed phonon tensor. The neighbor axis has NB+1
// slots (NB couplings plus the self block).
func NewDTensor(nqz, nw, na, nb, n3d int) *DTensor {
	return &DTensor{Nqz: nqz, Nw: nw, NA: na, NB: nb, N3D: n3d,
		Data: make([]complex128, nqz*nw*na*(nb+1)*n3d*n3d)}
}

// Block returns the N3D×N3D matrix at (qz, ω, a, neighbor slot b) as a view.
// b == NB addresses the atom's own block.
func (d *DTensor) Block(qz, w, a, b int) *cmat.Dense {
	if qz < 0 || qz >= d.Nqz || w < 0 || w >= d.Nw || a < 0 || a >= d.NA || b < 0 || b > d.NB {
		panic(fmt.Sprintf("tensor: DTensor.Block(%d,%d,%d,%d) out of range", qz, w, a, b))
	}
	n2 := d.N3D * d.N3D
	off := (((qz*d.Nw+w)*d.NA+a)*(d.NB+1) + b) * n2
	return cmat.DenseFromSlice(d.N3D, d.N3D, d.Data[off:off+n2])
}

// AddAt adds v to element (i, j) of the (qz, ω, a, b) block by direct
// indexing — no block header is materialized, so the Π accumulation loops
// stay allocation-free.
func (d *DTensor) AddAt(qz, w, a, b, i, j int, v complex128) {
	off := (((qz*d.Nw+w)*d.NA+a)*(d.NB+1)+b)*d.N3D*d.N3D + i*d.N3D + j
	d.Data[off] += v
}

// Clone returns a deep copy.
func (d *DTensor) Clone() *DTensor {
	out := NewDTensor(d.Nqz, d.Nw, d.NA, d.NB, d.N3D)
	copy(out.Data, d.Data)
	return out
}

// Zero clears the tensor.
func (d *DTensor) Zero() {
	for i := range d.Data {
		d.Data[i] = 0
	}
}

// Bytes returns the storage footprint in bytes.
func (d *DTensor) Bytes() int { return 16 * len(d.Data) }

// MaxAbsDiff returns the largest element-wise |difference| between d and e.
func (d *DTensor) MaxAbsDiff(e *DTensor) float64 {
	if len(d.Data) != len(e.Data) {
		panic("tensor: DTensor.MaxAbsDiff shape mismatch")
	}
	var m float64
	for i := range d.Data {
		dd := d.Data[i] - e.Data[i]
		if a := real(dd)*real(dd) + imag(dd)*imag(dd); a > m {
			m = a
		}
	}
	return sqrt(m)
}
