package tensor

import (
	"math/rand"
	"testing"
	"testing/quick"
)

func randomTensor(rng *rand.Rand, shape ...int) *Tensor {
	t := New(shape...)
	for i := range t.Data {
		t.Data[i] = complex(rng.Float64(), rng.Float64())
	}
	return t
}

func TestNewShapeAndLen(t *testing.T) {
	x := New(2, 3, 4)
	if x.Len() != 24 || x.Rank() != 3 {
		t.Fatalf("Len=%d Rank=%d, want 24, 3", x.Len(), x.Rank())
	}
	if !x.IsContiguous() {
		t.Fatal("fresh tensor must be contiguous")
	}
}

func TestRowMajorOffsets(t *testing.T) {
	x := New(2, 3, 4)
	if got := x.Offset(1, 2, 3); got != 1*12+2*4+3 {
		t.Fatalf("Offset = %d, want %d", got, 23)
	}
	x.Set(7, 1, 0, 2)
	if x.Data[12+2] != 7 {
		t.Fatal("Set wrote to wrong flat location")
	}
	if x.At(1, 0, 2) != 7 {
		t.Fatal("At read wrong value")
	}
}

func TestOutOfRangePanics(t *testing.T) {
	x := New(2, 2)
	for _, idx := range [][]int{{2, 0}, {0, -1}, {0}} {
		func() {
			defer func() {
				if recover() == nil {
					t.Fatalf("expected panic for index %v", idx)
				}
			}()
			x.At(idx...)
		}()
	}
}

func TestPermuteView(t *testing.T) {
	r := rand.New(rand.NewSource(1))
	x := randomTensor(r, 3, 4, 5)
	p := x.Permute(2, 0, 1)
	if p.Shape[0] != 5 || p.Shape[1] != 3 || p.Shape[2] != 4 {
		t.Fatalf("permuted shape %v", p.Shape)
	}
	for i := 0; i < 3; i++ {
		for j := 0; j < 4; j++ {
			for k := 0; k < 5; k++ {
				if p.At(k, i, j) != x.At(i, j, k) {
					t.Fatalf("permuted element mismatch at (%d,%d,%d)", i, j, k)
				}
			}
		}
	}
	// Views share storage.
	x.Set(42, 0, 0, 0)
	if p.At(0, 0, 0) != 42 {
		t.Fatal("Permute must be a view")
	}
}

func TestPermuteInvalid(t *testing.T) {
	x := New(2, 2)
	for _, perm := range [][]int{{0, 0}, {0, 2}, {0}} {
		func() {
			defer func() {
				if recover() == nil {
					t.Fatalf("expected panic for perm %v", perm)
				}
			}()
			x.Permute(perm...)
		}()
	}
}

func TestCompactEqualsPermutedView(t *testing.T) {
	f := func(seed int64) bool {
		r := rand.New(rand.NewSource(seed))
		x := randomTensor(r, 1+r.Intn(4), 1+r.Intn(4), 1+r.Intn(4))
		p := x.Permute(2, 1, 0)
		c := p.Compact()
		if !c.IsContiguous() {
			return false
		}
		return c.EqualWithin(p, 0)
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 25}); err != nil {
		t.Fatal(err)
	}
}

func TestPermuteRoundTripProperty(t *testing.T) {
	// Permuting there and back (with Compact in between) is the identity.
	f := func(seed int64) bool {
		r := rand.New(rand.NewSource(seed))
		x := randomTensor(r, 2+r.Intn(3), 2+r.Intn(3), 2+r.Intn(3), 2+r.Intn(2))
		perm := []int{3, 1, 0, 2}
		inv := []int{2, 1, 3, 0} // inverse of perm
		back := x.Permute(perm...).Compact().Permute(inv...).Compact()
		return back.EqualWithin(x, 0)
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 20}); err != nil {
		t.Fatal(err)
	}
}

func TestReshape(t *testing.T) {
	r := rand.New(rand.NewSource(2))
	x := randomTensor(r, 4, 6)
	y := x.Reshape(2, 12)
	if y.At(1, 5) != x.At(2, 5) {
		t.Fatal("Reshape must preserve row-major ordering")
	}
	func() {
		defer func() {
			if recover() == nil {
				t.Fatal("expected panic on element-count change")
			}
		}()
		x.Reshape(5, 5)
	}()
	func() {
		defer func() {
			if recover() == nil {
				t.Fatal("expected panic on non-contiguous reshape")
			}
		}()
		x.Permute(1, 0).Reshape(24)
	}()
}

func TestFillAndEqualWithin(t *testing.T) {
	x := New(3, 3)
	x.Fill(2 + 1i)
	y := New(3, 3)
	y.Fill(2 + 1i)
	if !x.EqualWithin(y, 0) {
		t.Fatal("identical tensors must compare equal")
	}
	y.Set(2+1.0001i, 1, 1)
	if x.EqualWithin(y, 1e-9) {
		t.Fatal("different tensors must not compare equal at tight tol")
	}
	if !x.EqualWithin(y, 1e-2) {
		t.Fatal("should compare equal at loose tol")
	}
	if x.EqualWithin(New(3, 4), 1) {
		t.Fatal("shape mismatch must compare unequal")
	}
}
