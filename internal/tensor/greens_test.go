package tensor

import (
	"math/rand"
	"testing"
	"testing/quick"
)

func randomGTensor(rng *rand.Rand, nkz, ne, na, norb int) *GTensor {
	g := NewGTensor(nkz, ne, na, norb)
	for i := range g.Data {
		g.Data[i] = complex(rng.Float64()-0.5, rng.Float64()-0.5)
	}
	return g
}

func randomDTensor(rng *rand.Rand, nqz, nw, na, nb, n3d int) *DTensor {
	d := NewDTensor(nqz, nw, na, nb, n3d)
	for i := range d.Data {
		d.Data[i] = complex(rng.Float64()-0.5, rng.Float64()-0.5)
	}
	return d
}

func TestGTensorBlockIsView(t *testing.T) {
	g := NewGTensor(2, 3, 4, 2)
	b := g.Block(1, 2, 3)
	b.Set(0, 1, 9i)
	// Block (1,2,3), element (0,1) in row-major 5-D layout:
	off := ((1*3+2)*4+3)*4 + 0*2 + 1
	if g.Data[off] != 9i {
		t.Fatal("Block must be a view into the 5-D layout")
	}
}

func TestGTensorBlockOutOfRange(t *testing.T) {
	g := NewGTensor(2, 2, 2, 2)
	defer func() {
		if recover() == nil {
			t.Fatal("expected panic")
		}
	}()
	g.Block(0, 2, 0)
}

func TestAtomMajorRoundTripProperty(t *testing.T) {
	// The Fig. 10(c) layout transformation must be invertible: a pure data
	// movement, no values changed.
	f := func(seed int64) bool {
		r := rand.New(rand.NewSource(seed))
		g := randomGTensor(r, 1+r.Intn(3), 1+r.Intn(4), 1+r.Intn(4), 1+r.Intn(3))
		return g.ToAtomMajor().ToGTensor().MaxAbsDiff(g) == 0
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 25}); err != nil {
		t.Fatal(err)
	}
}

func TestAtomMajorBlockMatchesSource(t *testing.T) {
	r := rand.New(rand.NewSource(3))
	g := randomGTensor(r, 2, 3, 4, 3)
	am := g.ToAtomMajor()
	for kz := 0; kz < 2; kz++ {
		for e := 0; e < 3; e++ {
			for a := 0; a < 4; a++ {
				if am.Block(kz, e, a).MaxAbsDiff(g.Block(kz, e, a)) != 0 {
					t.Fatalf("atom-major block (%d,%d,%d) differs", kz, e, a)
				}
			}
		}
	}
	// Stacked matrix must have the documented shape.
	if am.Atom[0].Rows != 2*3*3 || am.Atom[0].Cols != 3 {
		t.Fatalf("stacked shape %d×%d, want %d×3", am.Atom[0].Rows, am.Atom[0].Cols, 2*3*3)
	}
}

func TestDTensorBlockLayout(t *testing.T) {
	d := NewDTensor(2, 2, 3, 2, 3)
	// Slot NB (==2) is the self block.
	b := d.Block(1, 0, 2, 2)
	b.Set(2, 1, 5)
	off := (((1*2+0)*3+2)*3+2)*9 + 2*3 + 1
	if d.Data[off] != 5 {
		t.Fatal("DTensor.Block must view the 6-D layout")
	}
	defer func() {
		if recover() == nil {
			t.Fatal("expected panic for neighbor slot > NB")
		}
	}()
	d.Block(0, 0, 0, 3)
}

func TestCloneIndependence(t *testing.T) {
	r := rand.New(rand.NewSource(5))
	g := randomGTensor(r, 2, 2, 2, 2)
	c := g.Clone()
	c.Data[0] += 1
	if g.MaxAbsDiff(c) == 0 {
		t.Fatal("Clone must not share storage")
	}
	d := randomDTensor(r, 2, 2, 2, 2, 3)
	cd := d.Clone()
	cd.Data[0] += 1
	if d.MaxAbsDiff(cd) == 0 {
		t.Fatal("DTensor.Clone must not share storage")
	}
}

func TestBytes(t *testing.T) {
	g := NewGTensor(2, 3, 4, 5)
	if got, want := g.Bytes(), 16*2*3*4*5*5; got != want {
		t.Fatalf("GTensor bytes = %d, want %d", got, want)
	}
	d := NewDTensor(2, 3, 4, 5, 3)
	if got, want := d.Bytes(), 16*2*3*4*6*9; got != want {
		t.Fatalf("DTensor bytes = %d, want %d", got, want)
	}
}

func TestZeroAndMaxAbsDiff(t *testing.T) {
	r := rand.New(rand.NewSource(6))
	g := randomGTensor(r, 2, 2, 2, 2)
	h := g.Clone()
	g.Zero()
	for _, v := range g.Data {
		if v != 0 {
			t.Fatal("Zero left nonzero elements")
		}
	}
	if g.MaxAbsDiff(h) == 0 {
		t.Fatal("diff from a random tensor should be nonzero")
	}
}
