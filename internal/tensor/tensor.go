// Package tensor provides the multi-dimensional complex tensors that carry
// the Green's functions and self-energies of the simulation:
//
//   - G≷, Σ≷ : 5-D [Nkz, NE, NA, Norb, Norb]   (electrons)
//   - D≷, Π≷ : 6-D [Nqz, Nω, NA, NB+1, N3D, N3D] (phonons)
//
// plus a generic strided Tensor with axis permutation — the mechanism behind
// the data-layout transformation of Fig. 10(c) in the paper, where G≷ is
// re-laid-out from (kz, E)-major to atom-major so that the Nkz·NE small
// matrix multiplications fuse into one large GEMM.
package tensor

import "fmt"

// Tensor is a generic strided complex tensor. Freshly created tensors are
// dense row-major; Permute produces a strided view sharing storage.
type Tensor struct {
	Shape   []int
	Strides []int
	Data    []complex128
}

// New allocates a zeroed row-major tensor with the given shape.
func New(shape ...int) *Tensor {
	n := 1
	for _, s := range shape {
		if s < 0 {
			panic(fmt.Sprintf("tensor: negative dimension %v", shape))
		}
		n *= s
	}
	return &Tensor{Shape: append([]int(nil), shape...),
		Strides: rowMajorStrides(shape),
		Data:    make([]complex128, n)}
}

func rowMajorStrides(shape []int) []int {
	st := make([]int, len(shape))
	acc := 1
	for i := len(shape) - 1; i >= 0; i-- {
		st[i] = acc
		acc *= shape[i]
	}
	return st
}

// Len returns the number of elements.
func (t *Tensor) Len() int {
	n := 1
	for _, s := range t.Shape {
		n *= s
	}
	return n
}

// Rank returns the number of axes.
func (t *Tensor) Rank() int { return len(t.Shape) }

// Offset computes the flat index of the given multi-index.
func (t *Tensor) Offset(idx ...int) int {
	if len(idx) != len(t.Shape) {
		panic(fmt.Sprintf("tensor: index rank %d for tensor rank %d", len(idx), len(t.Shape)))
	}
	off := 0
	for i, x := range idx {
		if x < 0 || x >= t.Shape[i] {
			panic(fmt.Sprintf("tensor: index %d out of range [0,%d) on axis %d", x, t.Shape[i], i))
		}
		off += x * t.Strides[i]
	}
	return off
}

// At returns the element at the multi-index.
func (t *Tensor) At(idx ...int) complex128 { return t.Data[t.Offset(idx...)] }

// Set assigns the element at the multi-index.
func (t *Tensor) Set(v complex128, idx ...int) { t.Data[t.Offset(idx...)] = v }

// IsContiguous reports whether the tensor is dense row-major.
func (t *Tensor) IsContiguous() bool {
	acc := 1
	for i := len(t.Shape) - 1; i >= 0; i-- {
		if t.Strides[i] != acc {
			return false
		}
		acc *= t.Shape[i]
	}
	return true
}

// Permute returns a view of t with axes reordered: axis i of the result is
// axis perm[i] of t. Storage is shared; no elements move.
func (t *Tensor) Permute(perm ...int) *Tensor {
	if len(perm) != len(t.Shape) {
		panic("tensor: Permute rank mismatch")
	}
	seen := make([]bool, len(perm))
	out := &Tensor{Shape: make([]int, len(perm)), Strides: make([]int, len(perm)), Data: t.Data}
	for i, p := range perm {
		if p < 0 || p >= len(perm) || seen[p] {
			panic(fmt.Sprintf("tensor: invalid permutation %v", perm))
		}
		seen[p] = true
		out.Shape[i] = t.Shape[p]
		out.Strides[i] = t.Strides[p]
	}
	return out
}

// Compact materializes t into a fresh dense row-major tensor with the same
// logical contents. This is the data-movement step of a layout
// transformation: Permute chooses the new order, Compact pays the copy.
func (t *Tensor) Compact() *Tensor {
	out := New(t.Shape...)
	if t.IsContiguous() {
		copy(out.Data, t.Data[:out.Len()])
		return out
	}
	idx := make([]int, len(t.Shape))
	for flat := 0; flat < out.Len(); flat++ {
		off := 0
		for i := range idx {
			off += idx[i] * t.Strides[i]
		}
		out.Data[flat] = t.Data[off]
		for i := len(idx) - 1; i >= 0; i-- {
			idx[i]++
			if idx[i] < t.Shape[i] {
				break
			}
			idx[i] = 0
		}
	}
	return out
}

// Reshape returns a view with a new shape; t must be contiguous and the
// element counts must match.
func (t *Tensor) Reshape(shape ...int) *Tensor {
	if !t.IsContiguous() {
		panic("tensor: Reshape of non-contiguous tensor (Compact first)")
	}
	n := 1
	for _, s := range shape {
		n *= s
	}
	if n != t.Len() {
		panic(fmt.Sprintf("tensor: Reshape %v -> %v changes element count", t.Shape, shape))
	}
	return &Tensor{Shape: append([]int(nil), shape...), Strides: rowMajorStrides(shape), Data: t.Data}
}

// EqualWithin reports whether two tensors have identical shape and all
// elements within tol.
func (t *Tensor) EqualWithin(u *Tensor, tol float64) bool {
	if len(t.Shape) != len(u.Shape) {
		return false
	}
	for i := range t.Shape {
		if t.Shape[i] != u.Shape[i] {
			return false
		}
	}
	a, b := t, u
	if !a.IsContiguous() {
		a = a.Compact()
	}
	if !b.IsContiguous() {
		b = b.Compact()
	}
	for i := range a.Data[:a.Len()] {
		d := a.Data[i] - b.Data[i]
		if real(d)*real(d)+imag(d)*imag(d) > tol*tol {
			return false
		}
	}
	return true
}

// Fill sets every element of a contiguous tensor to v.
func (t *Tensor) Fill(v complex128) {
	if !t.IsContiguous() {
		panic("tensor: Fill of non-contiguous tensor")
	}
	for i := range t.Data[:t.Len()] {
		t.Data[i] = v
	}
}
