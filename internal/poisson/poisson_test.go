package poisson

import (
	"math"
	"testing"
)

func TestParallelPlateLinearProfile(t *testing.T) {
	// Dirichlet left column 0 V, right column 1 V, Neumann top/bottom:
	// Laplace's equation gives a potential linear in x.
	const cols, rows = 9, 5
	d := map[int]float64{}
	for r := 0; r < rows; r++ {
		d[r] = 0
		d[(cols-1)*rows+r] = 1
	}
	phi, err := Solve(Problem{Cols: cols, Rows: rows, H: 1, Dirichlet: d}, 1e-12, 0)
	if err != nil {
		t.Fatal(err)
	}
	for c := 0; c < cols; c++ {
		want := float64(c) / float64(cols-1)
		for r := 0; r < rows; r++ {
			if got := phi[c*rows+r]; math.Abs(got-want) > 1e-8 {
				t.Fatalf("node (%d,%d): φ = %g, want %g", c, r, got, want)
			}
		}
	}
}

func TestLaplaceMaximumPrinciple(t *testing.T) {
	// With zero charge, no interior node may exceed the boundary values.
	const cols, rows = 8, 6
	d := GateStack(cols, rows, 0, 0.5, 1.0)
	phi, err := Solve(Problem{Cols: cols, Rows: rows, H: 1, Dirichlet: d}, 1e-10, 0)
	if err != nil {
		t.Fatal(err)
	}
	for node, v := range phi {
		if v < -1e-9 || v > 1+1e-9 {
			t.Fatalf("node %d: φ = %g outside the boundary range [0, 1]", node, v)
		}
	}
}

func TestPointChargeSignAndSymmetry(t *testing.T) {
	// A positive point charge in a grounded box raises the potential
	// everywhere, symmetrically about the charge.
	const cols, rows = 9, 9
	d := map[int]float64{}
	for r := 0; r < rows; r++ {
		d[r] = 0
		d[(cols-1)*rows+r] = 0
	}
	for c := 0; c < cols; c++ {
		d[c*rows] = 0
		d[c*rows+rows-1] = 0
	}
	charge := make([]float64, cols*rows)
	center := (cols / 2 * rows) + rows/2
	charge[center] = 1
	phi, err := Solve(Problem{Cols: cols, Rows: rows, H: 1, Dirichlet: d, Charge: charge}, 1e-12, 0)
	if err != nil {
		t.Fatal(err)
	}
	if phi[center] <= 0 {
		t.Fatalf("potential at the charge should be positive, got %g", phi[center])
	}
	for node, v := range phi {
		if v < -1e-10 {
			t.Fatalf("node %d: negative potential %g from positive charge", node, v)
		}
	}
	// Mirror symmetry about the center column.
	for c := 0; c < cols; c++ {
		for r := 0; r < rows; r++ {
			m := (cols-1-c)*rows + r
			if math.Abs(phi[c*rows+r]-phi[m]) > 1e-8 {
				t.Fatalf("asymmetric solution at (%d,%d)", c, r)
			}
		}
	}
}

func TestPermittivityContrast(t *testing.T) {
	// A high-permittivity region flattens the potential drop across itself:
	// the drop over the high-ε half must be smaller than over the low-ε half.
	const cols, rows = 11, 3
	d := map[int]float64{}
	for r := 0; r < rows; r++ {
		d[r] = 0
		d[(cols-1)*rows+r] = 1
	}
	eps := make([]float64, cols*rows)
	for c := 0; c < cols; c++ {
		for r := 0; r < rows; r++ {
			if c < cols/2 {
				eps[c*rows+r] = 10 // high-ε left half
			} else {
				eps[c*rows+r] = 1
			}
		}
	}
	phi, err := Solve(Problem{Cols: cols, Rows: rows, H: 1, Dirichlet: d, Eps: eps}, 1e-12, 0)
	if err != nil {
		t.Fatal(err)
	}
	mid := phi[(cols/2)*rows+1]
	if mid > 0.3 {
		t.Fatalf("high-ε region should carry little of the drop; midpoint φ = %g", mid)
	}
}

func TestValidation(t *testing.T) {
	if _, err := Solve(Problem{Cols: 1, Rows: 1, H: 1}, 1e-8, 0); err == nil {
		t.Fatal("tiny grid must be rejected")
	}
	if _, err := Solve(Problem{Cols: 4, Rows: 4, H: 0, Dirichlet: map[int]float64{0: 1}}, 1e-8, 0); err == nil {
		t.Fatal("zero spacing must be rejected")
	}
	if _, err := Solve(Problem{Cols: 4, Rows: 4, H: 1}, 1e-8, 0); err == nil {
		t.Fatal("pure Neumann problem must be rejected as singular")
	}
	if _, err := Solve(Problem{Cols: 4, Rows: 4, H: 1,
		Dirichlet: map[int]float64{99: 1}}, 1e-8, 0); err == nil {
		t.Fatal("out-of-range Dirichlet node must be rejected")
	}
	if _, err := Solve(Problem{Cols: 4, Rows: 4, H: 1, Eps: []float64{1},
		Dirichlet: map[int]float64{0: 1}}, 1e-8, 0); err == nil {
		t.Fatal("wrong Eps length must be rejected")
	}
}

func TestGateStackShape(t *testing.T) {
	d := GateStack(6, 4, 0, 0.6, 1.2)
	if d[0] != 0 || d[5*4+2] != 0.6 {
		t.Fatal("source/drain pins wrong")
	}
	if d[2*4+3] != 1.2 {
		t.Fatal("gate pin wrong")
	}
	if _, ok := d[1*4+1]; ok {
		t.Fatal("interior node should be free")
	}
}
