// Package poisson provides the electrostatic substrate of a TCAD
// simulation: a 2-D finite-difference Poisson solver on the device
// cross-section. The paper's FinFET (Fig. 1) is driven by gate and
// drain biases; production quantum transport solvers (OMEN included)
// obtain the resulting potential by coupling NEGF charge densities to
// Poisson's equation in an outer Gummel loop — the coupling internal/core
// implements on top of this package.
//
// The discretization is the standard 5-point stencil with per-node
// permittivity, Dirichlet nodes for contacts/gates and homogeneous Neumann
// elsewhere; the linear system is solved by Jacobi-preconditioned
// conjugate gradients (it is symmetric positive definite).
package poisson

import (
	"errors"
	"fmt"
	"math"
)

// Problem is one Poisson solve on a Cols×Rows grid. Node (c, r) has index
// c·Rows + r, matching the device package's atom ordering.
type Problem struct {
	Cols, Rows int
	// H is the grid spacing (nm).
	H float64
	// Eps is the per-node relative permittivity; nil means 1 everywhere.
	Eps []float64
	// Dirichlet pins node potentials (contacts, gates): node index → volts.
	Dirichlet map[int]float64
	// Charge is the per-node charge density (arbitrary consistent units);
	// nil means zero (a Laplace problem).
	Charge []float64
}

// Validate checks the problem's shape.
func (p Problem) Validate() error {
	n := p.Cols * p.Rows
	switch {
	case p.Cols < 2 || p.Rows < 1:
		return fmt.Errorf("poisson: grid %d×%d too small", p.Cols, p.Rows)
	case p.H <= 0:
		return errors.New("poisson: non-positive grid spacing")
	case p.Eps != nil && len(p.Eps) != n:
		return fmt.Errorf("poisson: Eps has %d entries for %d nodes", len(p.Eps), n)
	case p.Charge != nil && len(p.Charge) != n:
		return fmt.Errorf("poisson: Charge has %d entries for %d nodes", len(p.Charge), n)
	}
	for node := range p.Dirichlet {
		if node < 0 || node >= n {
			return fmt.Errorf("poisson: Dirichlet node %d out of range", node)
		}
	}
	return nil
}

func (p Problem) eps(node int) float64 {
	if p.Eps == nil {
		return 1
	}
	return p.Eps[node]
}

// neighbors yields the grid neighbors of node (c, r); edges without a
// neighbor are simply skipped, which realizes the homogeneous Neumann
// condition.
func (p Problem) neighbors(c, r int, yield func(node int)) {
	if c > 0 {
		yield((c-1)*p.Rows + r)
	}
	if c < p.Cols-1 {
		yield((c+1)*p.Rows + r)
	}
	if r > 0 {
		yield(c*p.Rows + r - 1)
	}
	if r < p.Rows-1 {
		yield(c*p.Rows + r + 1)
	}
}

// apply computes y = A·x for the stencil operator restricted to free
// (non-Dirichlet) nodes; Dirichlet values enter the right-hand side.
func (p Problem) apply(x, y []float64) {
	n := p.Cols * p.Rows
	for node := 0; node < n; node++ {
		if _, pinned := p.Dirichlet[node]; pinned {
			y[node] = 0
			continue
		}
		c, r := node/p.Rows, node%p.Rows
		var acc, diag float64
		p.neighbors(c, r, func(nb int) {
			// Harmonic mean of permittivities across the face.
			e := 2 * p.eps(node) * p.eps(nb) / (p.eps(node) + p.eps(nb))
			diag += e
			if _, pinned := p.Dirichlet[nb]; !pinned {
				acc -= e * x[nb]
			}
		})
		y[node] = diag*x[node] + acc
	}
}

// rhs builds the right-hand side: charge density plus Dirichlet coupling.
func (p Problem) rhs() []float64 {
	n := p.Cols * p.Rows
	b := make([]float64, n)
	h2 := p.H * p.H
	for node := 0; node < n; node++ {
		if _, pinned := p.Dirichlet[node]; pinned {
			continue
		}
		if p.Charge != nil {
			b[node] = p.Charge[node] * h2
		}
		c, r := node/p.Rows, node%p.Rows
		p.neighbors(c, r, func(nb int) {
			if v, pinned := p.Dirichlet[nb]; pinned {
				e := 2 * p.eps(node) * p.eps(nb) / (p.eps(node) + p.eps(nb))
				b[node] += e * v
			}
		})
	}
	return b
}

// Solve returns the node potentials. tol is the relative residual target;
// maxIter bounds the CG iterations (0 means 10·n).
func Solve(p Problem, tol float64, maxIter int) ([]float64, error) {
	if err := p.Validate(); err != nil {
		return nil, err
	}
	if len(p.Dirichlet) == 0 {
		return nil, errors.New("poisson: pure Neumann problem is singular; pin at least one node")
	}
	n := p.Cols * p.Rows
	if maxIter <= 0 {
		maxIter = 10 * n
	}
	b := p.rhs()
	x := make([]float64, n)
	res := make([]float64, n)
	dir := make([]float64, n)
	ax := make([]float64, n)
	// Jacobi preconditioner: the stencil diagonal.
	diag := make([]float64, n)
	for node := 0; node < n; node++ {
		if _, pinned := p.Dirichlet[node]; pinned {
			diag[node] = 1
			continue
		}
		c, r := node/p.Rows, node%p.Rows
		p.neighbors(c, r, func(nb int) {
			diag[node] += 2 * p.eps(node) * p.eps(nb) / (p.eps(node) + p.eps(nb))
		})
	}
	z := make([]float64, n)
	p.apply(x, ax)
	var bnorm float64
	for i := range res {
		res[i] = b[i] - ax[i]
		bnorm += b[i] * b[i]
		z[i] = res[i] / diag[i]
		dir[i] = z[i]
	}
	bnorm = math.Sqrt(bnorm)
	if bnorm == 0 {
		bnorm = 1
	}
	rz := dotF(res, z)
	for iter := 0; iter < maxIter; iter++ {
		var rnorm float64
		for _, v := range res {
			rnorm += v * v
		}
		if math.Sqrt(rnorm) <= tol*bnorm {
			break
		}
		p.apply(dir, ax)
		da := dotF(dir, ax)
		if da == 0 {
			return nil, errors.New("poisson: CG breakdown (singular operator?)")
		}
		alpha := rz / da
		for i := range x {
			x[i] += alpha * dir[i]
			res[i] -= alpha * ax[i]
			z[i] = res[i] / diag[i]
		}
		rzNew := dotF(res, z)
		beta := rzNew / rz
		rz = rzNew
		for i := range dir {
			dir[i] = z[i] + beta*dir[i]
		}
	}
	// Final residual check.
	p.apply(x, ax)
	var rnorm float64
	for i := range res {
		d := b[i] - ax[i]
		rnorm += d * d
	}
	if math.Sqrt(rnorm) > 100*tol*bnorm {
		return nil, fmt.Errorf("poisson: CG did not converge (residual %.2e)", math.Sqrt(rnorm)/bnorm)
	}
	for node, v := range p.Dirichlet {
		x[node] = v
	}
	return x, nil
}

func dotF(a, b []float64) float64 {
	var s float64
	for i := range a {
		s += a[i] * b[i]
	}
	return s
}

// GateStack pins the standard FinFET boundary set on a Cols×Rows grid:
// source column (c = 0) at vs, drain column (c = Cols−1) at vd, and the
// gate along the top row between the contacts at vg.
func GateStack(cols, rows int, vs, vd, vg float64) map[int]float64 {
	d := map[int]float64{}
	for r := 0; r < rows; r++ {
		d[0*rows+r] = vs
		d[(cols-1)*rows+r] = vd
	}
	for c := 1; c < cols-1; c++ {
		d[c*rows+(rows-1)] = vg
	}
	return d
}
