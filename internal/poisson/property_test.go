package poisson

import (
	"math"
	"math/rand"
	"testing"
	"testing/quick"
)

func TestSuperpositionProperty(t *testing.T) {
	// Poisson is linear: with fixed boundaries, the potential of a charge
	// sum equals the sum of the zero-boundary responses plus one boundary
	// solution: φ(q1+q2, bc) = φ(q1, bc) + φ(q2, 0).
	const cols, rows = 7, 5
	bc := GateStack(cols, rows, 0, 0.4, 0.8)
	zero := map[int]float64{}
	for k := range bc {
		zero[k] = 0
	}
	f := func(seed int64) bool {
		rng := rand.New(rand.NewSource(seed))
		q1 := make([]float64, cols*rows)
		q2 := make([]float64, cols*rows)
		sum := make([]float64, cols*rows)
		for i := range q1 {
			q1[i] = rng.Float64() - 0.5
			q2[i] = rng.Float64() - 0.5
			sum[i] = q1[i] + q2[i]
		}
		solve := func(charge []float64, d map[int]float64) []float64 {
			phi, err := Solve(Problem{Cols: cols, Rows: rows, H: 1, Dirichlet: d, Charge: charge}, 1e-12, 0)
			if err != nil {
				t.Fatal(err)
			}
			return phi
		}
		a := solve(q1, bc)
		b := solve(q2, zero)
		c := solve(sum, bc)
		for i := range c {
			if math.Abs(c[i]-(a[i]+b[i])) > 1e-7 {
				return false
			}
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 10}); err != nil {
		t.Fatal(err)
	}
}
