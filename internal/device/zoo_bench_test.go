package device_test

import (
	"testing"

	"negfsim/internal/device"
	"negfsim/internal/rgf"
)

// Per-kind device-zoo benchmarks: structure assembly (geometry + operator
// blocks) and one ballistic solve through the assembled Hamiltonian — the
// per-point costs a campaign ladder multiplies.

// benchSpecs returns one representative spec per zoo kind at canonical
// default sizes.
func benchSpecs() []device.Spec {
	return []device.Spec{
		device.Nanowire{Params: device.Mini()},
		device.CNT{N: 7, M: 0},
		device.Chain{Step: 0.3},
		device.GNR{Layers: 2},
	}
}

func BenchmarkZooAssemble(b *testing.B) {
	for _, s := range benchSpecs() {
		s := s.Canonical()
		b.Run(s.Kind(), func(b *testing.B) {
			for i := 0; i < b.N; i++ {
				d, err := s.Build()
				if err != nil {
					b.Fatal(err)
				}
				_ = d.Hamiltonian(0)
			}
		})
	}
}

func BenchmarkZooBallisticSolve(b *testing.B) {
	for _, s := range benchSpecs() {
		s := s.Canonical()
		d, err := s.Build()
		if err != nil {
			b.Fatal(err)
		}
		h, ov := d.Hamiltonian(0), d.Overlap(0)
		b.Run(s.Kind(), func(b *testing.B) {
			for i := 0; i < b.N; i++ {
				if _, _, err := rgf.SolveElectronBallistic(h, ov, 0.9, rgf.Contacts{MuL: 0.1, MuR: -0.1, KT: 0.025}, 1e-6); err != nil {
					b.Fatal(err)
				}
			}
		})
	}
}
