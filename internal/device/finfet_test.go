package device

import (
	"math"
	"testing"
)

func TestFinFETGeometry(t *testing.T) {
	p, err := FinFET(FinFETSpec{
		WidthNM: 2.1, LengthNM: 35,
		Nkz: 3, NE: 24, Nw: 4, NB: 4, Norb: 2,
		ColumnsPerBlock: 8, Seed: 1,
	})
	if err != nil {
		t.Fatal(err)
	}
	w, l := p.Dimensions()
	if math.Abs(w-2.1) > LatticeConst {
		t.Fatalf("width %.2f nm, want ≈ 2.1", w)
	}
	if math.Abs(l-35) > 8*LatticeConst {
		t.Fatalf("length %.2f nm, want ≈ 35", l)
	}
	if p.Cols()%p.Bnum != 0 {
		t.Fatal("columns must fill whole RGF blocks")
	}
	// The generated parameters must actually build.
	if _, err := New(p); err != nil {
		t.Fatal(err)
	}
}

func TestFinFETRegimeLimits(t *testing.T) {
	base := FinFETSpec{WidthNM: 2, LengthNM: 35, Nkz: 3, NE: 24, Nw: 4, NB: 4, Norb: 2, ColumnsPerBlock: 8}
	wide := base
	wide.WidthNM = 9 // > 7 nm: not a FinFET (Fig. 1)
	if _, err := FinFET(wide); err == nil {
		t.Fatal("width beyond the FinFET regime must be rejected")
	}
	long := base
	long.LengthNM = 150
	if _, err := FinFET(long); err == nil {
		t.Fatal("length beyond the FinFET regime must be rejected")
	}
	bad := base
	bad.WidthNM = 0
	if _, err := FinFET(bad); err == nil {
		t.Fatal("non-positive dimensions must be rejected")
	}
}

func TestPaperStructureDimensions(t *testing.T) {
	// The paper's 4,864-atom structure is quoted as W = 2.1 nm, L = 35 nm
	// (Table 3 caption); the synthetic lattice should land in the same
	// regime of physical size.
	w, l := Paper4864(7).Dimensions()
	if w < 1 || w > 4 {
		t.Fatalf("paper fin width %.2f nm implausible", w)
	}
	if l < 100 {
		// 608 columns at 0.27 nm — longer than the paper's 35 nm because
		// the synthetic lattice is mono-atomic where Si has a basis; the
		// data-movement shapes depend only on NA, which matches.
		t.Logf("note: synthetic length %.1f nm vs paper's 35 nm (mono-atomic lattice)", l)
	}
}
