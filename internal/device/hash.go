package device

import "math"

// Deterministic value generation: every synthetic matrix entry is a pure
// function of (structure seed, atom indices, orbital indices, tag), so
// structures are reproducible regardless of construction order or
// parallelism. The mixer is SplitMix64, the standard 64-bit finalizer.

const (
	tagOnsite uint64 = iota + 1
	tagHop
	tagPeriodic
	tagOverlap
	tagSpring
	tagGradH
)

func splitmix64(x uint64) uint64 {
	x += 0x9e3779b97f4a7c15
	x = (x ^ (x >> 30)) * 0xbf58476d1ce4e5b9
	x = (x ^ (x >> 27)) * 0x94d049bb133111eb
	return x ^ (x >> 31)
}

// mix folds a sequence of keys into a single 64-bit hash.
func mix(keys ...uint64) uint64 {
	h := uint64(0x2545f4914f6cdd1d)
	for _, k := range keys {
		h = splitmix64(h ^ k)
	}
	return h
}

// unitFloat maps a hash to [0, 1).
func unitFloat(h uint64) float64 {
	return float64(h>>11) / float64(1<<53)
}

// symFloat maps a hash to (−1, 1).
func symFloat(h uint64) float64 { return 2*unitFloat(h) - 1 }

// Fingerprint returns a stable 64-bit content hash of the parameter set.
// Because every synthetic operator entry is a pure function of (Seed, atom,
// orbital, tag), two Params with equal fingerprints generate bit-identical
// devices — the fingerprint IS the device identity. The service front tier
// uses it as the device component of its content-addressed cache key and to
// group warm-start candidates ("same device, adjacent bias").
func (p Params) Fingerprint() uint64 {
	return mix(
		uint64(p.Nkz), uint64(p.Nqz), uint64(p.NE), uint64(p.Nw),
		uint64(p.NA), uint64(p.NB), uint64(p.Norb), uint64(p.N3D),
		uint64(p.Bnum), uint64(p.Rows),
		math.Float64bits(p.Emin), math.Float64bits(p.Emax),
		p.Seed,
	)
}
