package device

// Deterministic value generation: every synthetic matrix entry is a pure
// function of (structure seed, atom indices, orbital indices, tag), so
// structures are reproducible regardless of construction order or
// parallelism. The mixer is SplitMix64, the standard 64-bit finalizer.

const (
	tagOnsite uint64 = iota + 1
	tagHop
	tagPeriodic
	tagOverlap
	tagSpring
	tagGradH
)

func splitmix64(x uint64) uint64 {
	x += 0x9e3779b97f4a7c15
	x = (x ^ (x >> 30)) * 0xbf58476d1ce4e5b9
	x = (x ^ (x >> 27)) * 0x94d049bb133111eb
	return x ^ (x >> 31)
}

// mix folds a sequence of keys into a single 64-bit hash.
func mix(keys ...uint64) uint64 {
	h := uint64(0x2545f4914f6cdd1d)
	for _, k := range keys {
		h = splitmix64(h ^ k)
	}
	return h
}

// unitFloat maps a hash to [0, 1).
func unitFloat(h uint64) float64 {
	return float64(h>>11) / float64(1<<53)
}

// symFloat maps a hash to (−1, 1).
func symFloat(h uint64) float64 { return 2*unitFloat(h) - 1 }
