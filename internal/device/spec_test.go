package device

import (
	"encoding/json"
	"strings"
	"testing"
)

// The spec layer's contract: tagged JSON round-trips losslessly, the
// legacy flat form still decodes (as a nanowire), strictness rejects
// typos and unknown kinds, and canonicalization makes equivalent
// spellings fingerprint identically.

func TestSpecConfigRoundTrip(t *testing.T) {
	specs := []Spec{
		Nanowire{Mini()},
		CNT{N: 7, M: 0, Cols: 12, NE: 16},
		Chain{Cols: 12, T1: 1, T2: 0.6, Step: 0.3, Junction: 6},
		GNR{Width: 2, Layers: 2, Cols: 8},
	}
	for _, s := range specs {
		sc := WrapSpec(s)
		raw, err := json.Marshal(sc)
		if err != nil {
			t.Fatalf("%s: marshal: %v", s.Kind(), err)
		}
		if !strings.Contains(string(raw), `"kind":"`+s.Kind()+`"`) {
			t.Fatalf("%s: encoded spec lacks kind tag: %s", s.Kind(), raw)
		}
		var back SpecConfig
		if err := json.Unmarshal(raw, &back); err != nil {
			t.Fatalf("%s: unmarshal: %v", s.Kind(), err)
		}
		if back.Kind() != s.Kind() {
			t.Fatalf("%s: round-trip changed kind to %s", s.Kind(), back.Kind())
		}
		if back.Fingerprint() != sc.Fingerprint() {
			t.Fatalf("%s: round-trip changed fingerprint %016x → %016x",
				s.Kind(), sc.Fingerprint(), back.Fingerprint())
		}
		if back != sc {
			t.Fatalf("%s: round-trip changed value: %+v vs %+v", s.Kind(), back, sc)
		}
	}
}

func TestSpecConfigGolden(t *testing.T) {
	// The wire shape is pinned: kind first, then the spec's own fields in
	// declaration order. A change here is a schema change and must bump
	// the config version.
	sc := WrapSpec(Chain{Cols: 4, T1: 1, T2: 0.5, Junction: 2, Bnum: 4, NE: 8, Nw: 4, Nkz: 1, NB: 4, Emin: -2, Emax: 2})
	raw, err := json.Marshal(sc)
	if err != nil {
		t.Fatal(err)
	}
	const want = `{"kind":"chain","cols":4,"rows":0,"t1":1,"t2":0.5,"step":0,"junction":2,"bnum":4,"ne":8,"nw":4,"nkz":1,"nb":4,"emin":-2,"emax":2,"seed":0}`
	if string(raw) != want {
		t.Fatalf("golden mismatch:\n got %s\nwant %s", raw, want)
	}
}

func TestSpecConfigLegacyFlatIsNanowire(t *testing.T) {
	// A version-1 "device" object has no kind key; it must decode as the
	// nanowire it always was, with an unchanged fingerprint.
	legacy := `{"nkz":3,"nqz":3,"ne":16,"nw":4,"na":24,"nb":4,"norb":2,"n3d":3,"rows":4,"bnum":3,"emin":-1,"emax":1,"seed":7}`
	var sc SpecConfig
	if err := json.Unmarshal([]byte(legacy), &sc); err != nil {
		t.Fatalf("legacy flat device rejected: %v", err)
	}
	if sc.Kind() != "nanowire" {
		t.Fatalf("legacy flat device decoded as %q, want nanowire", sc.Kind())
	}
	if sc.Fingerprint() != Mini().Fingerprint() {
		t.Fatal("legacy decode changed the nanowire fingerprint — cache keys would shift")
	}
}

func TestSpecConfigRejects(t *testing.T) {
	cases := []struct {
		name, in, frag string
	}{
		{"unknown kind", `{"kind":"quantum-dot"}`, "unknown kind"},
		{"unknown field tagged", `{"kind":"cnt","n":7,"m":0,"colz":12}`, "colz"},
		{"unknown field legacy", `{"na":24,"rowz":4}`, "rowz"},
	}
	for _, c := range cases {
		var sc SpecConfig
		err := json.Unmarshal([]byte(c.in), &sc)
		if err == nil {
			t.Fatalf("%s: accepted %s", c.name, c.in)
		}
		if !strings.Contains(err.Error(), c.frag) {
			t.Fatalf("%s: error %q does not mention %q", c.name, err, c.frag)
		}
	}
}

func TestSpecCanonicalFingerprintStable(t *testing.T) {
	// An all-defaults spelling and the fully explicit spelling of the
	// same device must share a fingerprint (and therefore cache keys).
	pairs := []struct {
		name        string
		terse, full Spec
	}{
		{"cnt", CNT{N: 7, M: 0},
			CNT{N: 7, M: 0, Cols: 24, Subbands: 2, Gamma: 2.7, HopLong: 0.9, Bnum: 24, NE: 64, Nw: 8, Nkz: 1, NB: 4, Emin: -2.5, Emax: 2.5}},
		{"chain", Chain{},
			Chain{Cols: 24, Rows: 1, T1: 1, T2: 0.6, Junction: 12, Bnum: 24, NE: 64, Nw: 8, Nkz: 1, NB: 4, Emin: -2.5, Emax: 2.5}},
		{"gnr", GNR{},
			GNR{Width: 3, Layers: 1, Cols: 24, THop: 0.8, T1: 1, T2: 0.7, Interlayer: 0.2, Bnum: 24, NE: 64, Nw: 8, Nkz: 1, NB: 4, Emin: -3, Emax: 3}},
	}
	for _, p := range pairs {
		if got, want := p.terse.Fingerprint(), p.full.Fingerprint(); got != want {
			t.Fatalf("%s: terse fingerprint %016x != explicit %016x", p.name, got, want)
		}
	}
}

func TestSpecKindsFingerprintsDiffer(t *testing.T) {
	// Specs of different kinds must never collide even when their grids
	// coincide — the kind tag is mixed into every fingerprint.
	cnt := CNT{N: 7, M: 0, Cols: 24, Subbands: 1}
	chain := Chain{Cols: 24, Rows: 1}
	if cnt.Grid().NA != chain.Grid().NA || cnt.Grid().Rows != chain.Grid().Rows {
		t.Fatal("test premise broken: grids should coincide")
	}
	if cnt.Fingerprint() == chain.Fingerprint() {
		t.Fatal("cnt and chain with identical grids share a fingerprint")
	}
}

func TestSpecValidateFieldPaths(t *testing.T) {
	cases := []struct {
		spec Spec
		frag string
	}{
		{CNT{N: 0}, "device.n"},
		{CNT{N: 5, M: 6}, "device.m"},
		{CNT{N: 5, M: 0, Cols: 10, Bnum: 3}, "device.bnum"},
		{Chain{T1: -1}, "device.t1"},
		{Chain{Junction: 99}, "device.junction"},
		{GNR{Width: -1}, "device.width"},
		{GNR{Interlayer: -0.5}, "device.interlayer"},
	}
	for _, c := range cases {
		err := c.spec.Validate()
		if err == nil {
			t.Fatalf("%+v: validated", c.spec)
		}
		if !strings.Contains(err.Error(), c.frag) {
			t.Fatalf("%+v: error %q does not name %s", c.spec, err, c.frag)
		}
	}
}
