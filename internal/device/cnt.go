package device

import (
	"fmt"
	"math"

	"negfsim/internal/cmat"
)

// Carbon-nanotube zone folding (see e.g. Saito/Dresselhaus): a (n,m) tube
// is graphene rolled along the chiral vector C = n·a1 + m·a2. Periodic
// boundary conditions around the circumference quantize the transverse
// momentum into subbands; near the K point the r-th subband opens a
// half-gap Δ_r = γ·a_cc·w_r/d with w_r the r-th smallest |3q − (n−m)|
// over integer q. w_0 = 0 exactly when (n−m) mod 3 = 0 — the metallic
// class — and otherwise E_g = 2γ·a_cc/d, the famous gap ∝ 1/diameter law.
const (
	// GrapheneLattice is the graphene lattice constant a [nm].
	GrapheneLattice = 0.246
	// CarbonBond is the carbon–carbon bond length a_cc [nm].
	CarbonBond = 0.142
)

// CNT is a carbon nanotube described by its chiral indices. Each of the
// lowest Subbands zone-folding subbands is realized as an independent
// 1-D two-site-cell chain along the transport axis: staggered onsite
// energies ±Δ_r (sign alternating by column) and uniform hopping t give
// the dispersion E(k) = ±sqrt(Δ_r² + 4t²cos²(ka/2)) — band gap 2Δ_r,
// exactly the folded subband gap. Subband r occupies row r of the slice.
type CNT struct {
	N int `json:"n"` // chiral index n
	M int `json:"m"` // chiral index m (0 ≤ m ≤ n)

	Cols     int `json:"cols"`     // unit cells along transport (default 24)
	Subbands int `json:"subbands"` // folded subbands kept (default 2)

	Gamma   float64 `json:"gamma"` // graphene nearest-neighbor γ0 [eV] (default 2.7)
	HopLong float64 `json:"t"`     // longitudinal chain hopping [eV] (default 0.9)

	Bnum int `json:"bnum"` // RGF blocks (default Cols: single-column blocks)
	NE   int `json:"ne"`   // energy points (default 64)
	Nw   int `json:"nw"`   // phonon frequencies (default 8)
	Nkz  int `json:"nkz"`  // momentum points (default 1)
	NB   int `json:"nb"`   // SSE neighbors per atom (default 4)

	Emin float64 `json:"emin"` // energy window low edge [eV] (default −2.5)
	Emax float64 `json:"emax"` // energy window high edge [eV] (default +2.5)

	Seed uint64 `json:"seed"` // structure seed for the phonon/SSE geometry
}

// Kind returns "cnt".
func (c CNT) Kind() string { return "cnt" }

// Canonical fills defaults so equivalent spellings canonicalize to the
// same spec.
func (c CNT) Canonical() Spec {
	if c.Cols == 0 {
		c.Cols = 24
	}
	if c.Subbands == 0 {
		c.Subbands = 2
	}
	if c.Gamma == 0 {
		c.Gamma = 2.7
	}
	if c.HopLong == 0 {
		c.HopLong = 0.9
	}
	if c.Bnum == 0 {
		c.Bnum = c.Cols
	}
	if c.NE == 0 {
		c.NE = 64
	}
	if c.Nw == 0 {
		c.Nw = 8
	}
	if c.Nkz == 0 {
		c.Nkz = 1
	}
	if c.NB == 0 {
		c.NB = 4
	}
	if c.Emin == 0 && c.Emax == 0 {
		c.Emin, c.Emax = -2.5, 2.5
	}
	return c
}

func (c CNT) norm() CNT { return c.Canonical().(CNT) }

// Validate checks the chirality and grid. Errors name JSON field paths.
func (c CNT) Validate() error {
	n := c.norm()
	switch {
	case n.N < 1:
		return fmt.Errorf("device: device.n: chiral index must be ≥ 1, got %d", n.N)
	case n.M < 0 || n.M > n.N:
		return fmt.Errorf("device: device.m: chiral index must satisfy 0 ≤ m ≤ n=%d, got %d", n.N, n.M)
	case n.Cols < 2:
		return fmt.Errorf("device: device.cols: need ≥ 2 unit cells, got %d", n.Cols)
	case n.Cols%n.Bnum != 0:
		return fmt.Errorf("device: device.bnum: %d columns not divisible into %d blocks", n.Cols, n.Bnum)
	case n.Gamma <= 0:
		return fmt.Errorf("device: device.gamma: must be positive, got %g", n.Gamma)
	case n.HopLong <= 0:
		return fmt.Errorf("device: device.t: must be positive, got %g", n.HopLong)
	}
	return n.grid().Validate()
}

func (c CNT) grid() Params {
	return Params{
		Nkz: c.Nkz, Nqz: c.Nkz, NE: c.NE, Nw: c.Nw,
		NA: c.Subbands * c.Cols, NB: c.NB, Norb: 1, N3D: 3,
		Rows: c.Subbands, Bnum: c.Bnum,
		Emin: c.Emin, Emax: c.Emax, Seed: c.Seed,
	}
}

// Grid returns the simulation grid: Subbands rows × Cols columns of
// single-orbital sites.
func (c CNT) Grid() Params { return c.norm().grid() }

// Fingerprint mixes the kind tag with the canonical fields.
func (c CNT) Fingerprint() uint64 {
	n := c.norm()
	return mix(kindTag("cnt"),
		uint64(n.N), uint64(n.M), uint64(n.Cols), uint64(n.Subbands),
		math.Float64bits(n.Gamma), math.Float64bits(n.HopLong),
		uint64(n.Bnum), uint64(n.NE), uint64(n.Nw), uint64(n.Nkz), uint64(n.NB),
		math.Float64bits(n.Emin), math.Float64bits(n.Emax), n.Seed)
}

// Diameter returns the tube diameter d = a·sqrt(n² + nm + m²)/π in nm.
func (c CNT) Diameter() float64 {
	n, m := float64(c.N), float64(c.M)
	return GrapheneLattice * math.Sqrt(n*n+n*m+m*m) / math.Pi
}

// Metallic reports the zone-folding classification: (n−m) mod 3 == 0.
func (c CNT) Metallic() bool {
	d := c.N - c.M
	return ((d%3)+3)%3 == 0
}

// SubbandHalfGaps returns Δ_r = γ·a_cc·w_r/d for the lowest Subbands
// folded subbands, ascending (Δ_0 = 0 for metallic tubes).
func (c CNT) SubbandHalfGaps() []float64 {
	n := c.norm()
	d := n.Diameter()
	out := make([]float64, n.Subbands)
	for r, w := range subbandWeights(n.N, n.M, n.Subbands) {
		out[r] = n.Gamma * CarbonBond * float64(w) / d
	}
	return out
}

// GapEnergy returns the fundamental band gap 2·Δ_0: zero for metallic
// tubes, 2γ·a_cc/d for semiconducting ones.
func (c CNT) GapEnergy() float64 { return 2 * c.SubbandHalfGaps()[0] }

// subbandWeights returns the `count` smallest values of |3q − (n−m)| over
// integer q, ascending — the transverse quantization distances from the
// K point in units of the subband spacing.
func subbandWeights(n, m, count int) []int {
	d := n - m
	// Center the scan window on the minimizing q ≈ d/3: for large n−m the
	// closest allowed line sits far from q = 0.
	q0 := d / 3
	var ws []int
	for q := q0 - count - 2; q <= q0+count+2; q++ {
		ws = append(ws, abs(3*q-d))
	}
	// Insertion-sort the short list (count+5 entries).
	for i := 1; i < len(ws); i++ {
		for j := i; j > 0 && ws[j] < ws[j-1]; j-- {
			ws[j], ws[j-1] = ws[j-1], ws[j]
		}
	}
	return ws[:count]
}

// Build generates the structure: shared synthetic geometry (phonons, SSE
// neighbor maps) with the zone-folded chain Hamiltonian installed.
func (c CNT) Build() (*Device, error) {
	if err := c.Validate(); err != nil {
		return nil, err
	}
	n := c.norm()
	deltas := n.SubbandHalfGaps()
	t := complex(-n.HopLong, 0)
	return NewWith(n.grid(), Model{
		Kind:       "cnt",
		FP:         n.Fingerprint(),
		Orthogonal: true,
		Onsite: func(a int, theta float64) *cmat.Dense {
			row, col := a%n.Subbands, a/n.Subbands
			sign := 1.0
			if col%2 == 1 {
				sign = -1
			}
			h := cmat.NewDense(1, 1)
			h.Set(0, 0, complex(sign*deltas[row], 0))
			return h
		},
		Hop: func(a, b int) *cmat.Dense {
			// Subband chains are independent: only same-row,
			// adjacent-column pairs couple.
			if a%n.Subbands != b%n.Subbands {
				return nil
			}
			h := cmat.NewDense(1, 1)
			h.Set(0, 0, t)
			return h
		},
	})
}
