package device_test

import (
	"math"
	"testing"

	"negfsim/internal/device"
	"negfsim/internal/rgf"
)

// Zone-folding physics of the device zoo, checked against the solver the
// zoo feeds: metallicity classes, the gap ∝ 1/d law, heterojunction band
// alignment, and the block-tridiagonal invariants every kind must hold.

func TestCNTMetallicityClasses(t *testing.T) {
	cases := []struct {
		n, m     int
		metallic bool
	}{
		{5, 5, true},   // armchair: always metallic
		{9, 0, true},   // zigzag with n ≡ 0 (mod 3)
		{6, 3, true},   // chiral, n−m = 3
		{10, 0, false}, // zigzag, n−m = 10 → 1 (mod 3)
		{7, 5, false},  // chiral, n−m = 2
		{8, 4, false},  // chiral, n−m = 4 → 1 (mod 3)
	}
	for _, c := range cases {
		cnt := device.CNT{N: c.n, M: c.m}
		if got := cnt.Metallic(); got != c.metallic {
			t.Errorf("(%d,%d): Metallic() = %v, want %v", c.n, c.m, got, c.metallic)
		}
		gap := cnt.GapEnergy()
		if c.metallic && gap != 0 {
			t.Errorf("(%d,%d): metallic tube has gap %g", c.n, c.m, gap)
		}
		if !c.metallic && gap <= 0 {
			t.Errorf("(%d,%d): semiconducting tube has gap %g", c.n, c.m, gap)
		}
	}
}

func TestCNTGapInverseDiameterLaw(t *testing.T) {
	// For semiconducting tubes E_g = 2γ·a_cc/d exactly under zone folding:
	// the product gap·diameter is a chirality-independent constant, and
	// the gap decreases monotonically with diameter.
	want := 2 * 2.7 * device.CarbonBond
	series := []device.CNT{{N: 7, M: 0}, {N: 10, M: 0}, {N: 11, M: 3}, {N: 13, M: 0}, {N: 16, M: 0}}
	prevD, prevGap := 0.0, math.Inf(1)
	for _, c := range series {
		d, gap := c.Diameter(), c.GapEnergy()
		if d <= prevD {
			t.Fatalf("series not ordered by diameter at (%d,%d)", c.N, c.M)
		}
		if gap >= prevGap {
			t.Errorf("(%d,%d): gap %g did not decrease with diameter", c.N, c.M, gap)
		}
		if got := gap * d; math.Abs(got-want) > 1e-12 {
			t.Errorf("(%d,%d): gap·d = %g, want %g", c.N, c.M, got, want)
		}
		prevD, prevGap = d, gap
	}
}

// ballisticT solves one energy point of the built device's kz=0 slab.
func ballisticT(t *testing.T, d *device.Device, e float64) float64 {
	t.Helper()
	h, s := d.Hamiltonian(0), d.Overlap(0)
	_, trans, err := rgf.SolveElectronBallistic(h, s, e, rgf.Contacts{MuL: 0.1, MuR: -0.1, KT: 0.025}, 1e-6)
	if err != nil {
		t.Fatalf("E=%g: %v", e, err)
	}
	return trans
}

func TestCNTTransportGap(t *testing.T) {
	// A metallic tube conducts at E = 0; a semiconducting one is dead
	// inside its zone-folding gap and alive mid-band. Cols is odd so both
	// edge columns carry the +Δ staggering sign: the contact model repeats
	// the edge column as the lead cell, and matched leads keep the whole
	// device band inside the lead band.
	metal := device.CNT{N: 6, M: 6, Cols: 15, NE: 8, Nw: 4}
	md, err := metal.Build()
	if err != nil {
		t.Fatal(err)
	}
	if trans := ballisticT(t, md, 0); trans < 0.5 {
		t.Fatalf("metallic (6,6): T(0) = %g, want ≥ 0.5", trans)
	}

	semi := device.CNT{N: 7, M: 0, Cols: 15, NE: 8, Nw: 4}
	delta := semi.SubbandHalfGaps()[0]
	sd, err := semi.Build()
	if err != nil {
		t.Fatal(err)
	}
	if trans := ballisticT(t, sd, 0); trans > 1e-3 {
		t.Fatalf("semiconducting (7,0): T(0) = %g inside the gap (Δ = %g)", trans, delta)
	}
	mid := (delta + math.Sqrt(delta*delta+4*0.9*0.9)) / 2 // middle of the first band
	if trans := ballisticT(t, sd, mid); trans < 0.5 {
		t.Fatalf("semiconducting (7,0): T(%g) = %g mid-band, want ≥ 0.5", mid, trans)
	}
}

func TestChainJunctionStepAlignment(t *testing.T) {
	// The dimerized chain's positive band is [|t1−t2|, t1+t2] = [0.4, 1.6].
	// A potential step V = 0.8 on the right half shifts the right band to
	// [1.2, 2.4]: energies in the left band but below the shifted right
	// edge are blocked, energies in the overlap [1.2, 1.6] transmit. The
	// flat chain shows Fabry–Pérot mismatch ripple against its uniform
	// leads, so "open" means order 1, not exactly 1.
	flat := device.Chain{Cols: 24, T1: 1, T2: 0.6, NE: 8, Nw: 4}
	fd, err := flat.Build()
	if err != nil {
		t.Fatal(err)
	}
	stepped := device.Chain{Cols: 24, T1: 1, T2: 0.6, Step: 0.8, NE: 8, Nw: 4}
	sd, err := stepped.Build()
	if err != nil {
		t.Fatal(err)
	}
	const blocked, open = 0.6, 1.4 // below the shifted edge vs inside the overlap
	if trans := ballisticT(t, fd, blocked); trans < 0.9 {
		t.Fatalf("flat chain: T(%g) = %g, want ≥ 0.9", blocked, trans)
	}
	if trans := ballisticT(t, sd, blocked); trans > 0.05 {
		t.Fatalf("stepped chain: T(%g) = %g below the shifted band edge, want ≈ 0", blocked, trans)
	}
	if trans := ballisticT(t, sd, open); trans < 0.5 {
		t.Fatalf("stepped chain: T(%g) = %g in the band overlap, want order 1", open, trans)
	}
}

func TestZooBlockTridiagonalInvariants(t *testing.T) {
	// Every kind must emit the same structure device.New produces: the
	// declared grid, a kind-tagged fingerprint, a Hermitian Hamiltonian in
	// Bnum blocks of ElectronBlockSize, and (for orthogonal models) an
	// identity overlap.
	specs := []device.Spec{
		device.Nanowire{Params: device.Mini()},
		device.CNT{N: 6, M: 3, Cols: 8, NE: 8, Nw: 4},
		device.Chain{Cols: 8, Step: 0.2, NE: 8, Nw: 4},
		device.GNR{Width: 2, Layers: 2, Cols: 6, NE: 8, Nw: 4},
	}
	for _, s := range specs {
		s = s.Canonical()
		d, err := s.Build()
		if err != nil {
			t.Fatalf("%s: build: %v", s.Kind(), err)
		}
		if d.Kind != s.Kind() {
			t.Fatalf("%s: device kind %q", s.Kind(), d.Kind)
		}
		if d.Fingerprint() != s.Fingerprint() {
			t.Fatalf("%s: device fingerprint differs from spec", s.Kind())
		}
		grid := s.Grid()
		if d.P != grid {
			t.Fatalf("%s: device grid %+v != spec grid %+v", s.Kind(), d.P, grid)
		}
		h := d.Hamiltonian(0)
		if h.N != grid.Bnum || h.Bs != grid.ElectronBlockSize() {
			t.Fatalf("%s: Hamiltonian is %d blocks of %d, want %d of %d",
				s.Kind(), h.N, h.Bs, grid.Bnum, grid.ElectronBlockSize())
		}
		// Hermiticity: diagonal blocks self-adjoint, off-diagonals mutual
		// adjoints.
		for i, blk := range h.Diag {
			for r := 0; r < h.Bs; r++ {
				for c := 0; c < h.Bs; c++ {
					if math.Abs(real(blk.At(r, c)-blk.At(c, r))) > 1e-12 ||
						math.Abs(imag(blk.At(r, c)+blk.At(c, r))) > 1e-12 {
						t.Fatalf("%s: diag block %d not Hermitian at (%d,%d)", s.Kind(), i, r, c)
					}
				}
			}
		}
		for i := range h.Upper {
			for r := 0; r < h.Bs; r++ {
				for c := 0; c < h.Bs; c++ {
					up, lo := h.Upper[i].At(r, c), h.Lower[i].At(c, r)
					if math.Abs(real(up-lo)) > 1e-12 || math.Abs(imag(up+lo)) > 1e-12 {
						t.Fatalf("%s: off-diag pair %d not mutually adjoint at (%d,%d)", s.Kind(), i, r, c)
					}
				}
			}
		}
		if s.Kind() != "nanowire" {
			sOv := d.Overlap(0)
			for i, blk := range sOv.Diag {
				for r := 0; r < sOv.Bs; r++ {
					for c := 0; c < sOv.Bs; c++ {
						want := complex(0, 0)
						if r == c {
							want = 1
						}
						if blk.At(r, c) != want {
							t.Fatalf("%s: overlap diag block %d not identity", s.Kind(), i)
						}
					}
				}
			}
			for i := range sOv.Upper {
				for _, v := range sOv.Upper[i].Data {
					if v != 0 {
						t.Fatalf("%s: orthogonal overlap has off-diagonal coupling in block %d", s.Kind(), i)
					}
				}
			}
		}
	}
}
