package device

import (
	"testing"
	"testing/quick"
)

func TestValidate(t *testing.T) {
	good := Mini()
	if err := good.Validate(); err != nil {
		t.Fatalf("Mini should validate: %v", err)
	}
	cases := []func(*Params){
		func(p *Params) { p.NA = 0 },
		func(p *Params) { p.Norb = 0 },
		func(p *Params) { p.Rows = 5 },      // NA not divisible
		func(p *Params) { p.Bnum = 4 },      // cols not divisible
		func(p *Params) { p.NB = p.NA },     // too many neighbors
		func(p *Params) { p.Emax = p.Emin }, // empty window
		func(p *Params) { p.Nw = p.NE },     // phonon grid too large
	}
	for i, mutate := range cases {
		p := Mini()
		mutate(&p)
		if err := p.Validate(); err == nil {
			t.Fatalf("case %d: expected validation error", i)
		}
	}
}

func TestPaperPresetsValidate(t *testing.T) {
	for _, p := range []Params{Paper4864(7), Paper10240(21), PaperValidation2112()} {
		if err := p.Validate(); err != nil {
			t.Fatalf("paper preset invalid: %v", err)
		}
	}
	if got := Paper4864(7).NA; got != 4864 {
		t.Fatalf("NA = %d", got)
	}
	if got := Paper10240(21).NE; got != 1000 {
		t.Fatalf("NE = %d", got)
	}
}

func TestGeometryOrdering(t *testing.T) {
	d, err := New(Mini())
	if err != nil {
		t.Fatal(err)
	}
	p := d.P
	for a := 0; a < p.NA; a++ {
		if d.Col(a) != a/p.Rows || d.Row(a) != a%p.Rows {
			t.Fatalf("atom %d has col/row (%d,%d)", a, d.Col(a), d.Row(a))
		}
		if x := d.Pos[a][0]; x != float64(d.Col(a))*LatticeConst {
			t.Fatalf("atom %d x = %g", a, x)
		}
	}
	// Block assignment: contiguous column ranges.
	if d.BlockOf(0) != 0 || d.BlockOf(p.NA-1) != p.Bnum-1 {
		t.Fatal("block assignment endpoints wrong")
	}
}

func TestNeighborsAreNearestAndSymmetricish(t *testing.T) {
	d, err := New(Mini())
	if err != nil {
		t.Fatal(err)
	}
	for a := range d.Neigh {
		seen := map[int]bool{a: true}
		for slot, f := range d.Neigh[a] {
			if f < 0 {
				continue
			}
			if seen[f] {
				t.Fatalf("atom %d lists neighbor %d twice (slot %d)", a, f, slot)
			}
			seen[f] = true
			if f >= d.P.NA {
				t.Fatalf("neighbor index %d out of range", f)
			}
		}
	}
	// Interior atoms must have a full neighbor list.
	interior := (d.P.Cols()/2)*d.P.Rows + d.P.Rows/2
	for slot, f := range d.Neigh[interior] {
		if f < 0 {
			t.Fatalf("interior atom %d has missing neighbor at slot %d", interior, slot)
		}
	}
}

func TestNeighborSlotInverse(t *testing.T) {
	d, _ := New(Mini())
	for a := range d.Neigh {
		for slot, f := range d.Neigh[a] {
			if f < 0 {
				continue
			}
			if got := d.NeighborSlot(a, f); got != slot {
				t.Fatalf("NeighborSlot(%d,%d) = %d, want %d", a, f, got, slot)
			}
		}
	}
	if d.NeighborSlot(0, d.P.NA-1) != -1 {
		t.Fatal("distant atom should not be a neighbor")
	}
}

func TestBondDirUnitNorm(t *testing.T) {
	d, _ := New(Mini())
	for a := range d.BondDir {
		for slot, e := range d.BondDir[a] {
			if d.Neigh[a][slot] < 0 {
				continue
			}
			n := e[0]*e[0] + e[1]*e[1] + e[2]*e[2]
			if n < 0.999 || n > 1.001 {
				t.Fatalf("bond (%d,%d) direction norm² = %g", a, slot, n)
			}
		}
	}
}

func TestHamiltonianHermitianProperty(t *testing.T) {
	d, _ := New(Mini())
	f := func(k uint8) bool {
		kz := int(k) % d.P.Nkz
		return d.Hamiltonian(kz).IsHermitian(1e-12)
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 6}); err != nil {
		t.Fatal(err)
	}
}

func TestOverlapHermitianNearIdentity(t *testing.T) {
	d, _ := New(Mini())
	s := d.Overlap(1)
	if !s.IsHermitian(1e-12) {
		t.Fatal("S(kz) must be Hermitian")
	}
	dense := s.ToDense()
	for i := 0; i < dense.Rows; i++ {
		if got := dense.At(i, i); real(got) != 1 || imag(got) != 0 {
			t.Fatalf("S diagonal element %d = %v, want 1", i, got)
		}
	}
}

func TestDynamicalHermitianAndStable(t *testing.T) {
	d, _ := New(Mini())
	for qz := 0; qz < d.P.Nqz; qz++ {
		phi := d.Dynamical(qz)
		if !phi.IsHermitian(1e-12) {
			t.Fatalf("Φ(qz=%d) must be Hermitian", qz)
		}
		// Positive semidefinite ⇒ real diagonal entries ≥ 0.
		dd := phi.ToDense()
		for i := 0; i < dd.Rows; i++ {
			if real(dd.At(i, i)) < -1e-12 {
				t.Fatalf("Φ diagonal %d = %g < 0", i, real(dd.At(i, i)))
			}
		}
	}
}

func TestDynamicalAcousticSumRule(t *testing.T) {
	// At qz = 0 a rigid translation costs no energy: Φ(0)·u = 0 for u the
	// constant displacement field, up to the small periodic-z term which
	// vanishes at θ = 0.
	d, _ := New(Mini())
	phi := d.Dynamical(0).ToDense()
	n := phi.Rows
	for i := 0; i < n; i++ {
		var row complex128
		for j := i % 3; j < n; j += 3 {
			row += phi.At(i, j)
		}
		if r := real(row); r > 1e-10 || r < -1e-10 {
			t.Fatalf("acoustic sum rule violated at row %d: %g", i, r)
		}
	}
}

func TestHamiltonianDeterminism(t *testing.T) {
	p := Mini()
	d1, _ := New(p)
	d2, _ := New(p)
	h1 := d1.Hamiltonian(2).ToDense()
	h2 := d2.Hamiltonian(2).ToDense()
	if !h1.Equalish(h2, 0) {
		t.Fatal("identical params must generate identical Hamiltonians")
	}
	p.Seed++
	d3, _ := New(p)
	if d3.Hamiltonian(2).ToDense().Equalish(h1, 1e-9) {
		t.Fatal("different seeds must generate different Hamiltonians")
	}
}

func TestKzDependence(t *testing.T) {
	d, _ := New(Mini())
	if d.Hamiltonian(0).ToDense().Equalish(d.Hamiltonian(1).ToDense(), 1e-9) {
		t.Fatal("H must depend on kz")
	}
	if d.Dynamical(0).ToDense().Equalish(d.Dynamical(1).ToDense(), 1e-9) {
		t.Fatal("Φ must depend on qz")
	}
}

func TestGradHShapeAndDirectionScaling(t *testing.T) {
	d, _ := New(Mini())
	g := d.GradH(0, 0, 0)
	if g == nil || g.Rows != d.P.Norb || g.Cols != d.P.Norb {
		t.Fatal("GradH shape wrong")
	}
	all := d.GradHAll()
	if len(all) != d.P.NA || len(all[0]) != d.P.NB || len(all[0][0]) != d.P.N3D {
		t.Fatal("GradHAll shape wrong")
	}
	// Missing neighbors yield nil.
	corner := 0
	missing := false
	for b := 0; b < d.P.NB; b++ {
		if d.Neigh[corner][b] < 0 {
			missing = true
			if all[corner][b][0] != nil {
				t.Fatal("GradH of missing neighbor should be nil")
			}
		}
	}
	_ = missing
	// Deterministic.
	g2 := d.GradH(0, 0, 0)
	if !g.Equalish(g2, 0) {
		t.Fatal("GradH must be deterministic")
	}
}

func TestEnergyGrid(t *testing.T) {
	p := Mini()
	if p.EStep() <= 0 {
		t.Fatal("EStep must be positive")
	}
	if p.Energy(0) <= p.Emin || p.Energy(p.NE-1) >= p.Emax {
		t.Fatal("energies must lie strictly inside the window")
	}
	if p.PhononShift(0) != 1 || p.PhononShift(3) != 4 {
		t.Fatal("phonon shifts must be 1-based grid displacements")
	}
}

func TestMaxNeighborBlockSpan(t *testing.T) {
	d, _ := New(Mini())
	span := d.MaxNeighborBlockSpan()
	if span < 0 || span > d.P.Bnum {
		t.Fatalf("implausible neighbor block span %d", span)
	}
}

func TestBlockSizes(t *testing.T) {
	p := Mini()
	if p.ElectronBlockSize() != p.AtomsPerBlock()*p.Norb {
		t.Fatal("electron block size")
	}
	if p.PhononBlockSize() != p.AtomsPerBlock()*p.N3D {
		t.Fatal("phonon block size")
	}
	h, _ := New(p)
	bt := h.Hamiltonian(0)
	if bt.N != p.Bnum || bt.Bs != p.ElectronBlockSize() {
		t.Fatalf("Hamiltonian blocks %d×(%d) want %d×(%d)", bt.N, bt.Bs, p.Bnum, p.ElectronBlockSize())
	}
}
