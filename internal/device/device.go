package device

import (
	"fmt"
	"math"
	"sort"

	"negfsim/internal/cmat"
)

// LatticeConst is the atom spacing of the synthetic 2-D slice in nm,
// chosen near half the Si lattice constant so paper-sized structures have
// paper-sized physical dimensions.
const LatticeConst = 0.2715

// Device is a generated nano-structure: atom positions on a 2-D slice,
// the SSE neighbor map f(a, b), and everything needed to assemble the
// synthetic operators.
type Device struct {
	P Params

	// Kind names the device-zoo spec that built this structure ("" and
	// "nanowire" both mean the original synthetic FinFET family).
	Kind string

	// FP, when nonzero, overrides P.Fingerprint() as the content identity
	// of the structure. Zoo kinds set it so that two kinds sharing a grid
	// never collide in the front tier's content-addressed cache.
	FP uint64

	// Pos[a] is the (x, y) position of atom a in nm. Atoms are ordered
	// column-major along the transport direction x: atom a sits at column
	// a/Rows, row a%Rows.
	Pos [][2]float64

	// Neigh[a][b] is f(a, b), the index of the b-th neighbor of atom a,
	// or -1 if the atom has fewer than NB neighbors (structure edge).
	Neigh [][]int

	// BondDir[a][b] is the unit direction (x, y, z) of bond f(a,b)−a.
	// The z component is nonzero for the synthetic out-of-plane partner
	// bonds so all three vibration directions couple.
	BondDir [][][3]float64

	// onsite0/hop0 are optional electron-model overrides installed by zoo
	// kinds (CNT, chain, GNR). A nil hop0 result drops that bond from H.
	onsite0 func(a int, theta float64) *cmat.Dense
	hop0    func(a, b int) *cmat.Dense
	// orthogonal marks kinds whose basis is orthonormal: Overlap(kz) = I.
	orthogonal bool
}

// Model carries the electron-structure overrides a device-zoo spec installs
// on top of the shared geometry (positions, SSE neighbor map, phonon
// springs). Onsite and Hop replace the synthetic random-matrix entries with
// the kind's tight-binding blocks; Hop may return nil to drop a bond.
type Model struct {
	Kind       string
	FP         uint64
	Onsite     func(a int, theta float64) *cmat.Dense
	Hop        func(a, b int) *cmat.Dense
	Orthogonal bool
}

// New generates the structure for the given parameters.
func New(p Params) (*Device, error) {
	if err := p.Validate(); err != nil {
		return nil, err
	}
	d := &Device{P: p}
	d.Pos = make([][2]float64, p.NA)
	for a := 0; a < p.NA; a++ {
		col, row := a/p.Rows, a%p.Rows
		d.Pos[a] = [2]float64{float64(col) * LatticeConst, float64(row) * LatticeConst}
	}
	d.buildNeighbors()
	if err := d.checkBlockStructure(); err != nil {
		return nil, err
	}
	return d, nil
}

// NewWith generates the structure for p and installs a zoo kind's electron
// model on it. Geometry, neighbor maps and the phonon spring model are the
// shared synthetic ones, so SSE scattering works identically for every kind;
// only H(kz) (and optionally S(kz)) differ.
func NewWith(p Params, m Model) (*Device, error) {
	d, err := New(p)
	if err != nil {
		return nil, err
	}
	d.Kind = m.Kind
	d.FP = m.FP
	d.onsite0 = m.Onsite
	d.hop0 = m.Hop
	d.orthogonal = m.Orthogonal
	return d, nil
}

// Fingerprint returns the content identity of the generated structure: the
// spec-level fingerprint for zoo kinds, P.Fingerprint() otherwise.
func (d *Device) Fingerprint() uint64 {
	if d.FP != 0 {
		return d.FP
	}
	return d.P.Fingerprint()
}

// Col returns the transport-direction column of atom a.
func (d *Device) Col(a int) int { return a / d.P.Rows }

// Row returns the width-direction row of atom a.
func (d *Device) Row(a int) int { return a % d.P.Rows }

// BlockOf returns the RGF block index of atom a.
func (d *Device) BlockOf(a int) int {
	colsPerBlock := d.P.Cols() / d.P.Bnum
	return d.Col(a) / colsPerBlock
}

// buildNeighbors selects, for every atom, its NB nearest atoms (Euclidean
// distance on the slice, ties broken by atom index for determinism). This is
// the neighbor indirection f(a, b) of Eq. (3): atoms with neighboring
// indices are very often neighbors in the coupling matrix — the property
// §4.1 exploits when propagating the SSE memlets.
func (d *Device) buildNeighbors() {
	p := d.P
	d.Neigh = make([][]int, p.NA)
	d.BondDir = make([][][3]float64, p.NA)

	// Candidate window: columns within ±win of the atom are sufficient to
	// contain the NB nearest atoms (each column holds Rows atoms).
	win := p.NB/p.Rows + 2

	type cand struct {
		idx  int
		dist float64
	}
	for a := 0; a < p.NA; a++ {
		ca, ra := d.Col(a), d.Row(a)
		var cands []cand
		for dc := -win; dc <= win; dc++ {
			c := ca + dc
			if c < 0 || c >= p.Cols() {
				continue
			}
			for r := 0; r < p.Rows; r++ {
				b := c*p.Rows + r
				if b == a {
					continue
				}
				dx := float64(dc)
				dy := float64(r - ra)
				cands = append(cands, cand{b, math.Hypot(dx, dy)})
			}
		}
		sort.Slice(cands, func(i, j int) bool {
			if cands[i].dist != cands[j].dist {
				return cands[i].dist < cands[j].dist
			}
			return cands[i].idx < cands[j].idx
		})
		d.Neigh[a] = make([]int, p.NB)
		d.BondDir[a] = make([][3]float64, p.NB)
		for b := 0; b < p.NB; b++ {
			if b >= len(cands) {
				d.Neigh[a][b] = -1
				continue
			}
			f := cands[b].idx
			d.Neigh[a][b] = f
			dx := d.Pos[f][0] - d.Pos[a][0]
			dy := d.Pos[f][1] - d.Pos[a][1]
			// Give every bond a small synthetic out-of-plane tilt so the
			// z vibration direction participates (the slice represents a
			// periodic 3-D fin).
			dz := 0.35 * LatticeConst * symFloat(mix(d.P.Seed, tagGradH, uint64(min(a, f)), uint64(max(a, f))))
			n := math.Sqrt(dx*dx + dy*dy + dz*dz)
			d.BondDir[a][b] = [3]float64{dx / n, dy / n, dz / n}
		}
	}
}

// NeighborSlot returns the slot index b with Neigh[a][b] == f, or -1.
func (d *Device) NeighborSlot(a, f int) int {
	for b, g := range d.Neigh[a] {
		if g == f {
			return b
		}
	}
	return -1
}

// checkBlockStructure verifies that nearest-neighbor Hamiltonian hopping
// (±1 column) never couples non-adjacent RGF blocks, the prerequisite for
// the block-tridiagonal form RGF relies on.
func (d *Device) checkBlockStructure() error {
	colsPerBlock := d.P.Cols() / d.P.Bnum
	if colsPerBlock < 1 {
		return fmt.Errorf("device: %d columns cannot form %d blocks", d.P.Cols(), d.P.Bnum)
	}
	return nil
}

// MaxNeighborBlockSpan returns the largest |block(a) − block(f(a,b))| over
// all SSE bonds. SSE neighbor lists may span several RGF blocks; this is
// reported so the communication model can account for halo exchange.
func (d *Device) MaxNeighborBlockSpan() int {
	span := 0
	for a := range d.Neigh {
		for _, f := range d.Neigh[a] {
			if f < 0 {
				continue
			}
			if s := abs(d.BlockOf(a) - d.BlockOf(f)); s > span {
				span = s
			}
		}
	}
	return span
}

func abs(x int) int {
	if x < 0 {
		return -x
	}
	return x
}

func min(a, b int) int {
	if a < b {
		return a
	}
	return b
}

func max(a, b int) int {
	if a > b {
		return a
	}
	return b
}
