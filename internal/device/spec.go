package device

import (
	"bytes"
	"encoding/json"
	"fmt"
	"sort"
)

// Spec is a device-zoo entry: a named recipe that produces a simulable
// structure. Every kind emits the same block-tridiagonal operator shapes
// `New` produces, so rgf/sse/core consume zoo devices unchanged.
//
// Implementations are small comparable value types (no pointers, no
// slices): core.RunConfig embeds a SpecConfig and must stay ==-comparable,
// and the front tier relies on value semantics when canonicalizing specs
// for its content-addressed cache.
type Spec interface {
	// Kind returns the registry name used as the JSON "kind" tag.
	Kind() string
	// Validate checks the spec. Error messages name the offending JSON
	// field path (device.<field>) for usable 400 bodies.
	Validate() error
	// Grid returns the simulation grid (energies, momenta, blocks) the
	// built device runs on.
	Grid() Params
	// Build generates the structure.
	Build() (*Device, error)
	// Fingerprint returns the content identity of the built structure:
	// equal fingerprints generate bit-identical devices. Two different
	// kinds never share a fingerprint.
	Fingerprint() uint64
	// Canonical returns the spec with defaults filled and free-form
	// fields folded, so equivalent spellings canonicalize identically.
	// It must be idempotent.
	Canonical() Spec
}

// specDecoders maps the JSON "kind" tag to a strict decoder for the
// concrete spec type.
var specDecoders = map[string]func([]byte) (Spec, error){
	"nanowire": decodeSpec[Nanowire],
	"cnt":      decodeSpec[CNT],
	"chain":    decodeSpec[Chain],
	"gnr":      decodeSpec[GNR],
}

// Kinds returns the registered spec kinds in sorted order.
func Kinds() []string {
	out := make([]string, 0, len(specDecoders))
	for k := range specDecoders {
		out = append(out, k)
	}
	sort.Strings(out)
	return out
}

func decodeSpec[T Spec](data []byte) (Spec, error) {
	var v T
	dec := json.NewDecoder(bytes.NewReader(data))
	dec.DisallowUnknownFields()
	if err := dec.Decode(&v); err != nil {
		return nil, err
	}
	return v, nil
}

// SpecConfig is the polymorphic "device" section of core.RunConfig. Its
// JSON form is the tagged union {"kind": "nanowire"|"cnt"|"chain"|"gnr",
// ...kind-specific fields}; the legacy flat Params object (no "kind" key)
// is still accepted and means kind "nanowire". The zero value is invalid
// (Validate reports it); construct with WrapParams or WrapSpec.
type SpecConfig struct {
	spec Spec
}

// WrapParams wraps a flat nanowire parameter set.
func WrapParams(p Params) SpecConfig { return SpecConfig{Nanowire{p}} }

// WrapSpec wraps any registered spec.
func WrapSpec(s Spec) SpecConfig { return SpecConfig{s} }

// Spec returns the wrapped spec (nil for the zero value).
func (s SpecConfig) Spec() Spec { return s.spec }

// IsZero reports whether the config holds no spec.
func (s SpecConfig) IsZero() bool { return s.spec == nil }

// Kind returns the wrapped spec's kind, or "" for the zero value.
func (s SpecConfig) Kind() string {
	if s.spec == nil {
		return ""
	}
	return s.spec.Kind()
}

// Validate checks the wrapped spec.
func (s SpecConfig) Validate() error {
	if s.spec == nil {
		return fmt.Errorf("device: missing \"device\" section (expected {\"kind\": %q|...})", "nanowire")
	}
	return s.spec.Validate()
}

// Grid returns the simulation grid of the wrapped spec (zero Params for
// the zero value, which fails validation downstream rather than panicking).
func (s SpecConfig) Grid() Params {
	if s.spec == nil {
		return Params{}
	}
	return s.spec.Grid()
}

// Build generates the structure.
func (s SpecConfig) Build() (*Device, error) {
	if err := s.Validate(); err != nil {
		return nil, err
	}
	return s.spec.Build()
}

// Fingerprint returns the content identity of the wrapped spec (0 for the
// zero value).
func (s SpecConfig) Fingerprint() uint64 {
	if s.spec == nil {
		return 0
	}
	return s.spec.Fingerprint()
}

// Canonical returns the config with the wrapped spec canonicalized.
func (s SpecConfig) Canonical() SpecConfig {
	if s.spec == nil {
		return s
	}
	return SpecConfig{s.spec.Canonical()}
}

// MarshalJSON emits the tagged form: the spec's own fields with "kind"
// spliced in as the first key (deterministic field order, so digests of
// the canonical JSON are stable).
func (s SpecConfig) MarshalJSON() ([]byte, error) {
	if s.spec == nil {
		return nil, fmt.Errorf("device: cannot marshal empty device spec")
	}
	b, err := json.Marshal(s.spec)
	if err != nil {
		return nil, err
	}
	if len(b) < 2 || b[0] != '{' {
		return nil, fmt.Errorf("device: spec kind %q does not marshal to a JSON object", s.spec.Kind())
	}
	var out bytes.Buffer
	fmt.Fprintf(&out, "{\"kind\":%q", s.spec.Kind())
	if !bytes.Equal(b, []byte("{}")) {
		out.WriteByte(',')
	}
	out.Write(b[1:])
	return out.Bytes(), nil
}

// UnmarshalJSON accepts both the tagged union and the legacy flat Params
// object (treated as kind "nanowire"). Unknown fields are rejected in
// either form.
func (s *SpecConfig) UnmarshalJSON(data []byte) error {
	var probe struct {
		Kind *string `json:"kind"`
	}
	if err := json.Unmarshal(data, &probe); err != nil {
		return fmt.Errorf("device: invalid device spec: %w", err)
	}
	if probe.Kind == nil {
		// Legacy flat form: the bare Params fields.
		sp, err := decodeSpec[Nanowire](data)
		if err != nil {
			return fmt.Errorf("device: invalid flat device spec (hint: tagged specs need a \"kind\" field): %w", err)
		}
		s.spec = sp
		return nil
	}
	decode, ok := specDecoders[*probe.Kind]
	if !ok {
		return fmt.Errorf("device: device.kind: unknown kind %q (known: %v)", *probe.Kind, Kinds())
	}
	// Strip the discriminator so strict decoding of the concrete type
	// does not see it as an unknown field.
	var fields map[string]json.RawMessage
	if err := json.Unmarshal(data, &fields); err != nil {
		return fmt.Errorf("device: invalid device spec: %w", err)
	}
	delete(fields, "kind")
	rest, err := json.Marshal(fields)
	if err != nil {
		return err
	}
	sp, err := decode(rest)
	if err != nil {
		return fmt.Errorf("device: invalid %q device spec: %w", *probe.Kind, err)
	}
	s.spec = sp
	return nil
}

// Nanowire is the original synthetic nanowire/FinFET family behind the
// flat Params struct, wrapped as a zoo kind. Its fingerprint is the
// legacy Params fingerprint, so cache keys and warm-start families minted
// before the device zoo remain valid.
type Nanowire struct {
	Params
}

// Kind returns "nanowire".
func (n Nanowire) Kind() string { return "nanowire" }

// Grid returns the parameter set itself.
func (n Nanowire) Grid() Params { return n.Params }

// Build generates the synthetic nanowire structure. The device carries
// the zoo kind but keeps FP 0, so its Fingerprint stays the legacy
// Params fingerprint (cache keys minted before the zoo remain valid).
func (n Nanowire) Build() (*Device, error) {
	d, err := New(n.Params)
	if err != nil {
		return nil, err
	}
	d.Kind = "nanowire"
	return d, nil
}

// Canonical returns the spec unchanged (the flat form has no defaults).
func (n Nanowire) Canonical() Spec { return n }

// kindTag folds a kind name into the fingerprint key stream so distinct
// kinds sharing field values never collide.
func kindTag(kind string) uint64 {
	h := uint64(0x6b696e64) // "kind"
	for _, c := range []byte(kind) {
		h = splitmix64(h ^ uint64(c))
	}
	return h
}
