package device

import (
	"testing"

	"negfsim/internal/cmat"
)

func TestDynamicalMatrixPositiveSemiDefinite(t *testing.T) {
	// The spring construction must yield ω² ≥ 0 for every phonon momentum —
	// verified directly on the spectrum, not just the diagonal.
	d, err := New(Mini())
	if err != nil {
		t.Fatal(err)
	}
	for qz := 0; qz < d.P.Nqz; qz++ {
		lo, _, err := cmat.SpectralBounds(d.Dynamical(qz).ToDense(), 0)
		if err != nil {
			t.Fatalf("qz=%d: %v", qz, err)
		}
		if lo < -1e-9 {
			t.Fatalf("qz=%d: Φ has negative eigenvalue %g", qz, lo)
		}
	}
}

func TestHamiltonianSpectrumInsideWindow(t *testing.T) {
	// The electronic spectrum must sit inside the paper's [−1, 1] eV energy
	// window so the NE grid actually resolves it.
	d, err := New(Mini())
	if err != nil {
		t.Fatal(err)
	}
	for kz := 0; kz < d.P.Nkz; kz++ {
		lo, hi, err := cmat.SpectralBounds(d.Hamiltonian(kz).ToDense(), 0)
		if err != nil {
			t.Fatalf("kz=%d: %v", kz, err)
		}
		if lo < d.P.Emin || hi > d.P.Emax {
			t.Fatalf("kz=%d: spectrum [%g, %g] escapes the window [%g, %g]",
				kz, lo, hi, d.P.Emin, d.P.Emax)
		}
	}
}
