// Package device generates the nano-structures that the simulator studies:
// a 2-D slice (x–y plane) of a Silicon FinFET, the neighbor coupling map
// f(a, b), and synthetic DFT-like operators — Hamiltonian H(kz), overlap
// S(kz), dynamical matrix Φ(qz) and Hamiltonian derivatives ∇H — with
// exactly the shapes, Hermiticity and block-tridiagonal sparsity that the
// paper's CP2K-produced inputs have (§2, Table 1).
//
// Substitution note (see DESIGN.md): the numerical entries are deterministic
// synthetic values, not ab initio ones. Every consumer in this repository
// (RGF, SSE, communication schemes) depends only on the operator shapes and
// structure, which are reproduced faithfully.
package device

import (
	"fmt"
)

// Params collects the simulation parameters of Table 1 of the paper. The
// JSON tags are the schema of the "device" section of core.RunConfig, so
// renaming one is a config-format change (bump core.RunConfigVersion).
type Params struct {
	Nkz  int `json:"nkz"`  // electron momentum points            [1, 21]
	Nqz  int `json:"nqz"`  // phonon momentum points               [1, 21]
	NE   int `json:"ne"`   // energy points                        [700, 1500]
	Nw   int `json:"nw"`   // phonon frequencies                   [10, 100]
	NA   int `json:"na"`   // total atoms in the structure
	NB   int `json:"nb"`   // neighbors considered per atom        [4, 50]
	Norb int `json:"norb"` // orbitals per atom                    [1, 30]
	N3D  int `json:"n3d"`  // crystal vibration directions (always 3)
	Bnum int `json:"bnum"` // RGF blocks (block tri-diagonal split)

	Rows int `json:"rows"` // atoms per column in the 2-D slice (fin height direction)

	// Emin, Emax bound the electron energy window [eV].
	Emin float64 `json:"emin"`
	Emax float64 `json:"emax"`
	// Seed is the deterministic structure seed.
	Seed uint64 `json:"seed"`
}

// Validate checks internal consistency of the parameters. Error messages
// name the offending JSON field path (device.<field>) so the 400 bodies the
// qtsimd/qtfront services return point a client at the exact key to fix
// instead of dumping the whole struct.
func (p Params) Validate() error {
	for _, f := range []struct {
		name string
		v    int
	}{
		{"device.nkz", p.Nkz}, {"device.nqz", p.Nqz}, {"device.ne", p.NE},
		{"device.nw", p.Nw}, {"device.na", p.NA}, {"device.nb", p.NB},
		{"device.norb", p.Norb}, {"device.n3d", p.N3D},
		{"device.rows", p.Rows}, {"device.bnum", p.Bnum},
	} {
		if f.v <= 0 {
			return fmt.Errorf("device: %s: must be positive, got %d", f.name, f.v)
		}
	}
	switch {
	case p.NE < 2:
		return fmt.Errorf("device: device.ne: need at least 2 energy points to span [emin, emax], got %d", p.NE)
	case p.NA%p.Rows != 0:
		return fmt.Errorf("device: device.na: %d atoms not divisible into device.rows=%d columns", p.NA, p.Rows)
	case (p.NA/p.Rows)%p.Bnum != 0:
		return fmt.Errorf("device: device.bnum: %d columns not divisible into %d blocks", p.NA/p.Rows, p.Bnum)
	case p.NB >= p.NA:
		return fmt.Errorf("device: device.nb: %d must be smaller than device.na=%d", p.NB, p.NA)
	case p.Emax <= p.Emin:
		return fmt.Errorf("device: device.emax: energy window [%g, %g] is empty", p.Emin, p.Emax)
	case p.Nw >= p.NE:
		return fmt.Errorf("device: device.nw: %d must be below device.ne=%d (phonon energies live on the electron grid)", p.Nw, p.NE)
	}
	return nil
}

// Cols returns the number of atom columns along the transport direction.
func (p Params) Cols() int { return p.NA / p.Rows }

// AtomsPerBlock returns NA/Bnum, the atoms per RGF block.
func (p Params) AtomsPerBlock() int { return p.NA / p.Bnum }

// EStep returns the electron energy grid spacing.
func (p Params) EStep() float64 { return (p.Emax - p.Emin) / float64(p.NE) }

// Energy returns the energy of grid point e.
func (p Params) Energy(e int) float64 { return p.Emin + (float64(e)+0.5)*p.EStep() }

// PhononShift returns the electron-grid index shift of phonon frequency w.
// Phonon energies are commensurate with the electron grid: ℏω_w = (w+1)·ΔE,
// so the SSE shift E−ℏω is an integer grid displacement (OMEN uses the same
// commensurate-grid convention for the scattering integrals).
func (p Params) PhononShift(w int) int { return w + 1 }

// ElectronBlockSize returns the RGF block dimension NA/Bnum · Norb.
func (p Params) ElectronBlockSize() int { return p.AtomsPerBlock() * p.Norb }

// PhononBlockSize returns the phonon RGF block dimension NA/Bnum · N3D.
func (p Params) PhononBlockSize() int { return p.AtomsPerBlock() * p.N3D }

// Paper4864 returns the 4,864-atom Silicon structure used throughout §5 of
// the paper (W = 2.1 nm, L = 35 nm): NB = 34, Norb = 12, NE = 706, Nω = 70.
// Nkz is a free parameter in the paper's sweeps, so it is an argument.
func Paper4864(nkz int) Params {
	return Params{
		Nkz: nkz, Nqz: nkz, NE: 706, Nw: 70,
		NA: 4864, NB: 34, Norb: 12, N3D: 3,
		Rows: 8, Bnum: 19, // 608 columns → 19 blocks of 32 columns
		Emin: -1.0, Emax: 1.0, Seed: 4864,
	}
}

// Paper10240 returns the 10,240-atom extreme-scale structure of Table 8
// (W = 4.8 nm, L = 35 nm): NE = 1,000, Nω = 70.
func Paper10240(nkz int) Params {
	return Params{
		Nkz: nkz, Nqz: nkz, NE: 1000, Nw: 70,
		NA: 10240, NB: 34, Norb: 12, N3D: 3,
		Rows: 16, Bnum: 20, // 640 columns → 20 blocks of 32 columns
		Emin: -1.0, Emax: 1.0, Seed: 10240,
	}
}

// PaperValidation2112 returns the small validation structure mentioned in
// §2.1 (NA=2,112, Norb=4, Nkz=Nqz=11, NE=650, Nω=30, NB=13).
func PaperValidation2112() Params {
	return Params{
		Nkz: 11, Nqz: 11, NE: 650, Nw: 30,
		NA: 2112, NB: 13, Norb: 4, N3D: 3,
		Rows: 8, Bnum: 12, // 264 columns → 12 blocks of 22 columns
		Emin: -1.0, Emax: 1.0, Seed: 2112,
	}
}

// Mini returns a laptop-scale structure that exercises every code path
// (used by tests, examples and measured benchmarks).
func Mini() Params {
	return Params{
		Nkz: 3, Nqz: 3, NE: 16, Nw: 4,
		NA: 24, NB: 4, Norb: 2, N3D: 3,
		Rows: 4, Bnum: 3, // 6 columns → 3 blocks of 2 columns
		Emin: -1.0, Emax: 1.0, Seed: 7,
	}
}
