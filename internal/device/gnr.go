package device

import (
	"fmt"
	"math"

	"negfsim/internal/cmat"
)

// GNR is a graphene-nanoribbon-like stack: Layers ribbons of Width
// transverse sites each, coupled by a weak interlayer hopping. Within a
// ribbon, sites couple transversally with THop and longitudinally with a
// dimerized t1/t2 pattern (armchair-edge ribbons map onto coupled
// dimerized chains under the standard ladder reduction, which is what
// opens width-dependent gaps). The slice has Width·Layers rows: row r is
// strip-row r mod Width of layer r / Width.
type GNR struct {
	Width  int `json:"width"`  // transverse sites per ribbon (default 3)
	Layers int `json:"layers"` // stacked ribbons (default 1)
	Cols   int `json:"cols"`   // sites along transport (default 24)

	THop       float64 `json:"thop"`       // transverse hopping [eV] (default 0.8)
	T1         float64 `json:"t1"`         // longitudinal intra-cell hopping [eV] (default 1.0)
	T2         float64 `json:"t2"`         // longitudinal inter-cell hopping [eV] (default 0.7)
	Interlayer float64 `json:"interlayer"` // layer coupling [eV] (default 0.2)

	Bnum int `json:"bnum"` // RGF blocks (default Cols)
	NE   int `json:"ne"`   // energy points (default 64)
	Nw   int `json:"nw"`   // phonon frequencies (default 8)
	Nkz  int `json:"nkz"`  // momentum points (default 1)
	NB   int `json:"nb"`   // SSE neighbors per atom (default 4)

	Emin float64 `json:"emin"` // energy window low edge [eV] (default −3)
	Emax float64 `json:"emax"` // energy window high edge [eV] (default +3)

	Seed uint64 `json:"seed"` // structure seed for the phonon/SSE geometry
}

// Kind returns "gnr".
func (g GNR) Kind() string { return "gnr" }

// Canonical fills defaults.
func (g GNR) Canonical() Spec {
	if g.Width == 0 {
		g.Width = 3
	}
	if g.Layers == 0 {
		g.Layers = 1
	}
	if g.Cols == 0 {
		g.Cols = 24
	}
	if g.THop == 0 {
		g.THop = 0.8
	}
	if g.T1 == 0 {
		g.T1 = 1.0
	}
	if g.T2 == 0 {
		g.T2 = 0.7
	}
	if g.Interlayer == 0 {
		g.Interlayer = 0.2
	}
	if g.Bnum == 0 {
		g.Bnum = g.Cols
	}
	if g.NE == 0 {
		g.NE = 64
	}
	if g.Nw == 0 {
		g.Nw = 8
	}
	if g.Nkz == 0 {
		g.Nkz = 1
	}
	if g.NB == 0 {
		g.NB = 4
	}
	if g.Emin == 0 && g.Emax == 0 {
		g.Emin, g.Emax = -3, 3
	}
	return g
}

func (g GNR) norm() GNR { return g.Canonical().(GNR) }

// Validate checks the stack layout and grid. Errors name JSON field paths.
func (g GNR) Validate() error {
	n := g.norm()
	switch {
	case n.Width < 1:
		return fmt.Errorf("device: device.width: must be ≥ 1, got %d", n.Width)
	case n.Layers < 1:
		return fmt.Errorf("device: device.layers: must be ≥ 1, got %d", n.Layers)
	case n.Cols < 2:
		return fmt.Errorf("device: device.cols: need ≥ 2 sites, got %d", n.Cols)
	case n.THop <= 0:
		return fmt.Errorf("device: device.thop: must be positive, got %g", n.THop)
	case n.T1 <= 0:
		return fmt.Errorf("device: device.t1: must be positive, got %g", n.T1)
	case n.T2 <= 0:
		return fmt.Errorf("device: device.t2: must be positive, got %g", n.T2)
	case n.Interlayer < 0:
		return fmt.Errorf("device: device.interlayer: must be non-negative, got %g", n.Interlayer)
	case n.Cols%n.Bnum != 0:
		return fmt.Errorf("device: device.bnum: %d columns not divisible into %d blocks", n.Cols, n.Bnum)
	}
	return n.grid().Validate()
}

func (g GNR) grid() Params {
	return Params{
		Nkz: g.Nkz, Nqz: g.Nkz, NE: g.NE, Nw: g.Nw,
		NA: g.Width * g.Layers * g.Cols, NB: g.NB, Norb: 1, N3D: 3,
		Rows: g.Width * g.Layers, Bnum: g.Bnum,
		Emin: g.Emin, Emax: g.Emax, Seed: g.Seed,
	}
}

// Grid returns the simulation grid: Width·Layers rows × Cols columns.
func (g GNR) Grid() Params { return g.norm().grid() }

// Fingerprint mixes the kind tag with the canonical fields.
func (g GNR) Fingerprint() uint64 {
	n := g.norm()
	return mix(kindTag("gnr"),
		uint64(n.Width), uint64(n.Layers), uint64(n.Cols),
		math.Float64bits(n.THop), math.Float64bits(n.T1), math.Float64bits(n.T2),
		math.Float64bits(n.Interlayer),
		uint64(n.Bnum), uint64(n.NE), uint64(n.Nw), uint64(n.Nkz), uint64(n.NB),
		math.Float64bits(n.Emin), math.Float64bits(n.Emax), n.Seed)
}

// Build generates the structure with the ribbon-stack Hamiltonian.
func (g GNR) Build() (*Device, error) {
	if err := g.Validate(); err != nil {
		return nil, err
	}
	n := g.norm()
	rows := n.Width * n.Layers
	return NewWith(n.grid(), Model{
		Kind:       "gnr",
		FP:         n.Fingerprint(),
		Orthogonal: true,
		Onsite: func(a int, theta float64) *cmat.Dense {
			return cmat.NewDense(1, 1)
		},
		Hop: func(a, b int) *cmat.Dense {
			ra, rb := a%rows, b%rows
			ca, cb := a/rows, b/rows
			h := cmat.NewDense(1, 1)
			switch {
			case ca == cb && rb == ra+1:
				if ra%n.Width == n.Width-1 {
					// Last strip-row of a layer: couples to the next
					// layer's first strip-row.
					if n.Interlayer == 0 {
						return nil
					}
					h.Set(0, 0, complex(-n.Interlayer, 0))
				} else {
					h.Set(0, 0, complex(-n.THop, 0))
				}
			case ra == rb && cb == ca+1:
				t := n.T1
				if ca%2 == 1 {
					t = n.T2
				}
				h.Set(0, 0, complex(-t, 0))
			default:
				return nil // no diagonal bonds in the ribbon lattice
			}
			return h
		},
	})
}
