package device

import (
	"fmt"
	"math"

	"negfsim/internal/cmat"
)

// Chain is a dimerized-chain (SSH-like) heterojunction: alternating
// hoppings t1/t2 along the transport axis open a band gap 2|t1 − t2|
// centered at 0, and a rigid potential step shifts the spectrum of every
// column at or beyond the junction plane. Transmission through the
// junction is possible only where the left band [|t1−t2|, t1+t2] (and its
// negative mirror) overlaps the right band shifted by Step — the
// band-alignment physics of a biased heterojunction. Rows independent
// parallel chains share the same profile.
type Chain struct {
	Cols int `json:"cols"` // sites along transport (default 24)
	Rows int `json:"rows"` // parallel chains (default 1)

	T1 float64 `json:"t1"` // intra-cell hopping [eV] (default 1.0)
	T2 float64 `json:"t2"` // inter-cell hopping [eV] (default 0.6)

	Step     float64 `json:"step"`     // onsite potential for col ≥ Junction [eV]
	Junction int     `json:"junction"` // junction column (default Cols/2)

	Bnum int `json:"bnum"` // RGF blocks (default Cols)
	NE   int `json:"ne"`   // energy points (default 64)
	Nw   int `json:"nw"`   // phonon frequencies (default 8)
	Nkz  int `json:"nkz"`  // momentum points (default 1)
	NB   int `json:"nb"`   // SSE neighbors per atom (default 4)

	Emin float64 `json:"emin"` // energy window low edge [eV] (default −2.5)
	Emax float64 `json:"emax"` // energy window high edge [eV] (default +2.5)

	Seed uint64 `json:"seed"` // structure seed for the phonon/SSE geometry
}

// Kind returns "chain".
func (c Chain) Kind() string { return "chain" }

// Canonical fills defaults.
func (c Chain) Canonical() Spec {
	if c.Cols == 0 {
		c.Cols = 24
	}
	if c.Rows == 0 {
		c.Rows = 1
	}
	if c.T1 == 0 {
		c.T1 = 1.0
	}
	if c.T2 == 0 {
		c.T2 = 0.6
	}
	if c.Junction == 0 {
		c.Junction = c.Cols / 2
	}
	if c.Bnum == 0 {
		c.Bnum = c.Cols
	}
	if c.NE == 0 {
		c.NE = 64
	}
	if c.Nw == 0 {
		c.Nw = 8
	}
	if c.Nkz == 0 {
		c.Nkz = 1
	}
	if c.NB == 0 {
		c.NB = 4
	}
	if c.Emin == 0 && c.Emax == 0 {
		c.Emin, c.Emax = -2.5, 2.5
	}
	return c
}

func (c Chain) norm() Chain { return c.Canonical().(Chain) }

// Validate checks the junction layout and grid. Errors name JSON field
// paths.
func (c Chain) Validate() error {
	n := c.norm()
	switch {
	case n.Cols < 2:
		return fmt.Errorf("device: device.cols: need ≥ 2 sites, got %d", n.Cols)
	case n.T1 <= 0:
		return fmt.Errorf("device: device.t1: must be positive, got %g", n.T1)
	case n.T2 <= 0:
		return fmt.Errorf("device: device.t2: must be positive, got %g", n.T2)
	case n.Junction < 1 || n.Junction >= n.Cols:
		return fmt.Errorf("device: device.junction: plane must sit inside (0, cols=%d), got %d", n.Cols, n.Junction)
	case n.Cols%n.Bnum != 0:
		return fmt.Errorf("device: device.bnum: %d columns not divisible into %d blocks", n.Cols, n.Bnum)
	}
	return n.grid().Validate()
}

func (c Chain) grid() Params {
	return Params{
		Nkz: c.Nkz, Nqz: c.Nkz, NE: c.NE, Nw: c.Nw,
		NA: c.Rows * c.Cols, NB: c.NB, Norb: 1, N3D: 3,
		Rows: c.Rows, Bnum: c.Bnum,
		Emin: c.Emin, Emax: c.Emax, Seed: c.Seed,
	}
}

// Grid returns the simulation grid.
func (c Chain) Grid() Params { return c.norm().grid() }

// Fingerprint mixes the kind tag with the canonical fields.
func (c Chain) Fingerprint() uint64 {
	n := c.norm()
	return mix(kindTag("chain"),
		uint64(n.Cols), uint64(n.Rows),
		math.Float64bits(n.T1), math.Float64bits(n.T2),
		math.Float64bits(n.Step), uint64(n.Junction),
		uint64(n.Bnum), uint64(n.NE), uint64(n.Nw), uint64(n.Nkz), uint64(n.NB),
		math.Float64bits(n.Emin), math.Float64bits(n.Emax), n.Seed)
}

// BandGap returns the dimerization gap 2|t1 − t2|.
func (c Chain) BandGap() float64 {
	n := c.norm()
	return 2 * math.Abs(n.T1-n.T2)
}

// BandEdges returns the positive-band edges [|t1−t2|, t1+t2]; the full
// spectrum is this interval and its negative mirror (plus Step on the
// right side of the junction).
func (c Chain) BandEdges() (lo, hi float64) {
	n := c.norm()
	return math.Abs(n.T1 - n.T2), n.T1 + n.T2
}

// Build generates the structure with the dimerized-junction Hamiltonian.
func (c Chain) Build() (*Device, error) {
	if err := c.Validate(); err != nil {
		return nil, err
	}
	n := c.norm()
	return NewWith(n.grid(), Model{
		Kind:       "chain",
		FP:         n.Fingerprint(),
		Orthogonal: true,
		Onsite: func(a int, theta float64) *cmat.Dense {
			h := cmat.NewDense(1, 1)
			if a/n.Rows >= n.Junction {
				h.Set(0, 0, complex(n.Step, 0))
			}
			return h
		},
		Hop: func(a, b int) *cmat.Dense {
			if a%n.Rows != b%n.Rows {
				return nil // chains are independent
			}
			t := n.T1
			if min(a/n.Rows, b/n.Rows)%2 == 1 {
				t = n.T2
			}
			h := cmat.NewDense(1, 1)
			h.Set(0, 0, complex(-t, 0))
			return h
		},
	})
}
