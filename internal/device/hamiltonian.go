package device

import (
	"math"
	"math/cmplx"

	"negfsim/internal/cmat"
)

// Hopping amplitudes of the synthetic operators (eV and eV/nm scales chosen
// so the resulting spectra sit inside the paper's [−1, 1] eV energy window).
const (
	onsiteSpread  = 0.20 // spread of orbital onsite energies
	hopScale      = 0.12 // in-plane hopping magnitude
	periodicScale = 0.08 // out-of-plane (kz) coupling magnitude
	overlapScale  = 0.04 // GTO non-orthogonality
	springScale   = 0.30 // dynamical-matrix spring constant scale
	springZScale  = 0.10 // periodic (qz) spring constant
	gradHScale    = 0.06 // ∇H magnitude (eV/nm-like units)
	etaContact    = 1e-6 // numerical broadening used by boundary solvers
)

// KzPhase returns the Bloch phase angle of momentum index k in [0, Nkz):
// θ_k = 2π·k/Nkz, covering the periodic z axis of Fig. 1(b).
func (d *Device) KzPhase(k int) float64 { return 2 * math.Pi * float64(k) / float64(d.P.Nkz) }

// QzPhase returns the phonon momentum phase angle of index q.
func (d *Device) QzPhase(q int) float64 { return 2 * math.Pi * float64(q) / float64(d.P.Nqz) }

// onsite returns the Hermitian Norb×Norb onsite block of atom a at kz phase
// θ: H0_aa + T_a·e^{iθ} + T_a^H·e^{−iθ}, where T_a couples the atom to its
// periodic image along z.
func (d *Device) onsite(a int, theta float64) *cmat.Dense {
	no := d.P.Norb
	h := cmat.NewDense(no, no)
	for m := 0; m < no; m++ {
		// Orbital ladder: deterministic onsite energies.
		h.Set(m, m, complex(onsiteSpread*symFloat(mix(d.P.Seed, tagOnsite, uint64(a), uint64(m))), 0))
		for n := 0; n < no; n++ {
			t := complex(
				periodicScale*symFloat(mix(d.P.Seed, tagPeriodic, uint64(a), uint64(m), uint64(n))),
				periodicScale*symFloat(mix(d.P.Seed, tagPeriodic, uint64(a), uint64(m), uint64(n), 1)))
			ph := cmplx.Exp(complex(0, theta))
			h.Set(m, n, h.At(m, n)+t*ph)
			h.Set(n, m, h.At(n, m)+cmplx.Conj(t*ph))
		}
	}
	return h
}

// hop returns the Norb×Norb hopping block H_ab for an ordered atom pair
// a < b; H_ba is its conjugate transpose. The magnitude falls off with bond
// length so farther pairs couple more weakly.
func (d *Device) hop(a, b int) *cmat.Dense {
	no := d.P.Norb
	h := cmat.NewDense(no, no)
	dx := d.Pos[b][0] - d.Pos[a][0]
	dy := d.Pos[b][1] - d.Pos[a][1]
	decay := hopScale / (1 + math.Hypot(dx, dy)/LatticeConst)
	for m := 0; m < no; m++ {
		for n := 0; n < no; n++ {
			h.Set(m, n, complex(
				decay*symFloat(mix(d.P.Seed, tagHop, uint64(a), uint64(b), uint64(m), uint64(n))),
				decay*symFloat(mix(d.P.Seed, tagHop, uint64(a), uint64(b), uint64(m), uint64(n), 1))))
		}
	}
	return h
}

// onsiteAt returns the onsite block honoring a zoo kind's override.
func (d *Device) onsiteAt(a int, theta float64) *cmat.Dense {
	if d.onsite0 != nil {
		return d.onsite0(a, theta)
	}
	return d.onsite(a, theta)
}

// hopAt returns the hopping block honoring a zoo kind's override; a nil
// result means the kind has no bond on that pair (dropped from H).
func (d *Device) hopAt(a, b int) *cmat.Dense {
	if d.hop0 != nil {
		return d.hop0(a, b)
	}
	return d.hop(a, b)
}

// hopPairs enumerates the in-plane Hamiltonian bonds: ordered pairs (a, b)
// with a < b, |Δcol| ≤ 1 and |Δrow| ≤ 1. This nearest-neighbor hopping
// range is what keeps H block-tridiagonal for any block of ≥1 column.
func (d *Device) hopPairs(yield func(a, b int)) {
	p := d.P
	for a := 0; a < p.NA; a++ {
		ca, ra := d.Col(a), d.Row(a)
		for dc := 0; dc <= 1; dc++ {
			for dr := -1; dr <= 1; dr++ {
				if dc == 0 && dr <= 0 {
					continue // keep a < b only
				}
				c, r := ca+dc, ra+dr
				if c >= p.Cols() || r < 0 || r >= p.Rows {
					continue
				}
				yield(a, c*p.Rows+r)
			}
		}
	}
}

// assembleElectron places per-atom Norb×Norb blocks into the bnum-block
// tridiagonal container.
func (d *Device) assembleElectron(diagBlock func(a int) *cmat.Dense, bond func(a, b int) *cmat.Dense) *cmat.BlockTri {
	p := d.P
	bt := cmat.NewBlockTri(p.Bnum, p.ElectronBlockSize())
	apb := p.AtomsPerBlock()
	place := func(a, b int, m *cmat.Dense) {
		ba, bb := d.BlockOf(a), d.BlockOf(b)
		ra := (a - ba*apb) * p.Norb
		rb := (b - bb*apb) * p.Norb
		switch {
		case ba == bb:
			bt.Diag[ba].SetSubmatrix(ra, rb, m)
		case bb == ba+1:
			bt.Upper[ba].SetSubmatrix(ra, rb, m)
		case bb == ba-1:
			bt.Lower[bb].SetSubmatrix(ra, rb, m)
		default:
			panic("device: bond couples non-adjacent blocks")
		}
	}
	for a := 0; a < p.NA; a++ {
		place(a, a, diagBlock(a))
	}
	d.hopPairs(func(a, b int) {
		m := bond(a, b)
		if m == nil {
			return // kind has no bond on this pair
		}
		place(a, b, m)
		place(b, a, m.ConjTranspose())
	})
	return bt
}

// Hamiltonian returns H(kz) as a Hermitian block-tridiagonal matrix of
// Bnum blocks, each (NA/Bnum)·Norb square.
func (d *Device) Hamiltonian(kz int) *cmat.BlockTri {
	theta := d.KzPhase(kz)
	return d.assembleElectron(
		func(a int) *cmat.Dense { return d.onsiteAt(a, theta) },
		func(a, b int) *cmat.Dense { return d.hopAt(a, b) })
}

// Overlap returns S(kz): identity plus a small Hermitian non-orthogonality
// on the same bond pattern as H (Gaussian-type orbitals overlap). Zoo kinds
// with orthonormal tight-binding bases get the exact identity.
func (d *Device) Overlap(kz int) *cmat.BlockTri {
	no := d.P.Norb
	if d.orthogonal {
		return d.assembleElectron(
			func(a int) *cmat.Dense { return cmat.Identity(no) },
			func(a, b int) *cmat.Dense { return nil })
	}
	return d.assembleElectron(
		func(a int) *cmat.Dense { return cmat.Identity(no) },
		func(a, b int) *cmat.Dense {
			s := cmat.NewDense(no, no)
			for m := 0; m < no; m++ {
				for n := 0; n < no; n++ {
					s.Set(m, n, complex(overlapScale*symFloat(mix(d.P.Seed, tagOverlap, uint64(a), uint64(b), uint64(m), uint64(n))), 0))
				}
			}
			return s
		})
}

// springBlock returns the 3×3 force-constant matrix of the bond a—f with
// unit direction e: k·(e eᵀ) + k_t·(I − e eᵀ), symmetric positive definite.
func (d *Device) springBlock(a, slot int) *cmat.Dense {
	f := d.Neigh[a][slot]
	e := d.BondDir[a][slot]
	k := springScale * (0.75 + 0.5*unitFloat(mix(d.P.Seed, tagSpring, uint64(min(a, f)), uint64(max(a, f)))))
	kt := 0.35 * k
	m := cmat.NewDense(3, 3)
	for i := 0; i < 3; i++ {
		for j := 0; j < 3; j++ {
			v := k * e[i] * e[j]
			if i == j {
				v += kt * (1 - e[i]*e[j])
			} else {
				v += kt * (0 - e[i]*e[j])
			}
			m.Set(i, j, complex(v, 0))
		}
	}
	return m
}

// Dynamical returns the phonon dynamical matrix Φ(qz) as a Hermitian
// block-tridiagonal matrix of Bnum blocks, each (NA/Bnum)·N3D square.
// The construction is a valence-force spring model obeying the acoustic sum
// rule at qz = 0 (Φ_aa = Σ_b K_ab, Φ_ab = −K_ab), which makes Φ positive
// semi-definite — the physical requirement ω² ≥ 0.
func (d *Device) Dynamical(qz int) *cmat.BlockTri {
	p := d.P
	theta := d.QzPhase(qz)
	bt := cmat.NewBlockTri(p.Bnum, p.PhononBlockSize())
	apb := p.AtomsPerBlock()
	place := func(a, b int, m *cmat.Dense, add bool) {
		ba, bb := d.BlockOf(a), d.BlockOf(b)
		ra := (a - ba*apb) * p.N3D
		rb := (b - bb*apb) * p.N3D
		var dst *cmat.Dense
		switch {
		case ba == bb:
			dst = bt.Diag[ba]
		case bb == ba+1:
			dst = bt.Upper[ba]
		case bb == ba-1:
			dst = bt.Lower[bb]
		default:
			panic("device: phonon bond couples non-adjacent blocks")
		}
		for i := 0; i < p.N3D; i++ {
			for j := 0; j < p.N3D; j++ {
				if add {
					dst.Set(ra+i, rb+j, dst.At(ra+i, rb+j)+m.At(i, j))
				} else {
					dst.Set(ra+i, rb+j, m.At(i, j))
				}
			}
		}
	}
	// Spring bonds follow the Hamiltonian's nearest-neighbor pattern so the
	// block tridiagonal structure is preserved; the SSE neighbor list (NB
	// atoms) is wider and used only by the self-energy kernels.
	d.hopPairs(func(a, b int) {
		slot := d.NeighborSlot(a, b)
		if slot < 0 {
			return
		}
		k := d.springBlock(a, slot)
		place(a, b, k.Scale(-1), false)
		place(b, a, k.Transpose().Scale(-1), false)
		place(a, a, k, true)
		place(b, b, k.Transpose(), true)
	})
	// Periodic z springs: (1 − cos θ) stiffening of the diagonal, the 1-D
	// chain dispersion along the fin height.
	for a := 0; a < p.NA; a++ {
		ba := d.BlockOf(a)
		ra := (a - ba*apb) * p.N3D
		kz := springZScale * (0.75 + 0.5*unitFloat(mix(p.Seed, tagSpring, uint64(a), 999)))
		v := complex(2*kz*(1-math.Cos(theta)), 0)
		for i := 0; i < p.N3D; i++ {
			bt.Diag[ba].Set(ra+i, ra+i, bt.Diag[ba].At(ra+i, ra+i)+v)
		}
	}
	return bt
}

// GradH returns ∇_i H_ab, the derivative of the Hamiltonian block coupling
// atom a to its slot-b neighbor w.r.t. direction i ∈ {x, y, z} of the bond
// vector (Eq. 3). Returns nil for missing neighbors (structure edge).
// The derivative is proportional to the bond's direction cosine along i,
// mirroring how ab initio ∇H projects onto bond displacements.
func (d *Device) GradH(a, slot, i int) *cmat.Dense {
	f := d.Neigh[a][slot]
	if f < 0 {
		return nil
	}
	no := d.P.Norb
	m := cmat.NewDense(no, no)
	dir := d.BondDir[a][slot][i]
	for p := 0; p < no; p++ {
		for q := 0; q < no; q++ {
			m.Set(p, q, complex(
				gradHScale*dir*symFloat(mix(d.P.Seed, tagGradH, uint64(a), uint64(f), uint64(i), uint64(p), uint64(q))),
				gradHScale*dir*symFloat(mix(d.P.Seed, tagGradH, uint64(a), uint64(f), uint64(i), uint64(p), uint64(q), 1))))
		}
	}
	return m
}

// GradHAll precomputes ∇H for all (atom, neighbor slot, direction) triples;
// the [a][b][i] entry is nil where the neighbor is missing.
func (d *Device) GradHAll() [][][]*cmat.Dense {
	p := d.P
	out := make([][][]*cmat.Dense, p.NA)
	for a := 0; a < p.NA; a++ {
		out[a] = make([][]*cmat.Dense, p.NB)
		for b := 0; b < p.NB; b++ {
			out[a][b] = make([]*cmat.Dense, p.N3D)
			for i := 0; i < p.N3D; i++ {
				out[a][b][i] = d.GradH(a, b, i)
			}
		}
	}
	return out
}

// Eta returns the small imaginary broadening used when inverting the
// boundary problem (keeps the contact Green's functions causal).
func Eta() float64 { return etaContact }
