package device

import "fmt"

// FinFET geometry helpers: the paper characterizes devices by their
// physical dimensions (Fig. 1: width w ≤ 7 nm, height h ≥ 40 nm, length
// L ≤ 100 nm; the evaluation uses W = 2.1 nm / L = 35 nm for the
// 4,864-atom fin and W = 4.8 nm / L = 35 nm for the 10,240-atom one).
// FinFET converts dimensions to grid parameters: the height is the
// periodic z direction (momentum points), width spans the rows, length the
// columns.

// FinFETSpec describes a fin in physical units.
type FinFETSpec struct {
	WidthNM, LengthNM float64 // the 2-D simulated cross-section
	Nkz               int     // momentum points resolving the periodic height
	NE, Nw            int     // energy and frequency grids
	NB, Norb          int     // coupling ranges and basis size
	ColumnsPerBlock   int     // RGF granularity
	Seed              uint64
}

// FinFET builds Params for the given physical fin. Atom counts follow the
// synthetic lattice constant; columns are rounded to fill whole RGF blocks.
func FinFET(spec FinFETSpec) (Params, error) {
	if spec.WidthNM <= 0 || spec.LengthNM <= 0 {
		return Params{}, fmt.Errorf("device: non-positive fin dimensions %g×%g nm", spec.WidthNM, spec.LengthNM)
	}
	if spec.WidthNM > 7 {
		return Params{}, fmt.Errorf("device: fin width %g nm exceeds the FinFET regime (≤ 7 nm, Fig. 1)", spec.WidthNM)
	}
	if spec.LengthNM > 100 {
		return Params{}, fmt.Errorf("device: fin length %g nm exceeds the FinFET regime (≤ 100 nm, Fig. 1)", spec.LengthNM)
	}
	rows := int(spec.WidthNM/LatticeConst + 0.5)
	if rows < 2 {
		rows = 2
	}
	cols := int(spec.LengthNM/LatticeConst + 0.5)
	cpb := spec.ColumnsPerBlock
	if cpb < 1 {
		cpb = 8
	}
	if cols < 2*cpb {
		cols = 2 * cpb
	}
	cols = (cols / cpb) * cpb // whole blocks
	p := Params{
		Nkz: spec.Nkz, Nqz: spec.Nkz, NE: spec.NE, Nw: spec.Nw,
		NA: rows * cols, NB: spec.NB, Norb: spec.Norb, N3D: 3,
		Rows: rows, Bnum: cols / cpb,
		Emin: -1, Emax: 1, Seed: spec.Seed,
	}
	if err := p.Validate(); err != nil {
		return Params{}, err
	}
	return p, nil
}

// Dimensions reports the physical width and length of a parameter set in
// nm (the inverse of FinFET, up to rounding).
func (p Params) Dimensions() (widthNM, lengthNM float64) {
	return float64(p.Rows) * LatticeConst, float64(p.Cols()) * LatticeConst
}
