package serve

import (
	"bufio"
	"bytes"
	"encoding/json"
	"fmt"
	"io"
	"net/http"
	"net/http/httptest"
	"strings"
	"testing"
	"time"

	"negfsim/internal/core"
	"negfsim/internal/device"
)

// postConfig submits a RunConfig through the HTTP API and decodes the
// response envelope.
func postConfig(t *testing.T, ts *httptest.Server, cfg core.RunConfig) (*http.Response, Status) {
	t.Helper()
	raw, err := cfg.Marshal()
	if err != nil {
		t.Fatal(err)
	}
	resp, err := http.Post(ts.URL+"/v1/jobs", "application/json", bytes.NewReader(raw))
	if err != nil {
		t.Fatal(err)
	}
	defer resp.Body.Close()
	var st Status
	if resp.StatusCode == http.StatusAccepted {
		if err := json.NewDecoder(resp.Body).Decode(&st); err != nil {
			t.Fatal(err)
		}
	} else {
		io.Copy(io.Discard, resp.Body)
	}
	return resp, st
}

// getJSON fetches a URL and decodes its JSON body into out, returning the
// status code.
func getJSON(t *testing.T, url string, out any) int {
	t.Helper()
	resp, err := http.Get(url)
	if err != nil {
		t.Fatal(err)
	}
	defer resp.Body.Close()
	if out != nil && resp.StatusCode == http.StatusOK {
		if err := json.NewDecoder(resp.Body).Decode(out); err != nil {
			t.Fatal(err)
		}
	} else {
		io.Copy(io.Discard, resp.Body)
	}
	return resp.StatusCode
}

// TestHTTPLifecycle drives a job through the full API surface: submit,
// status, stream, result, checkpoint, list, healthz, metrics.
func TestHTTPLifecycle(t *testing.T) {
	s := New(Config{MaxConcurrent: 1})
	defer closeSched(t, s)
	ts := httptest.NewServer(NewAPI(s))
	defer ts.Close()

	resp, st := postConfig(t, ts, testConfig(51, 3))
	if resp.StatusCode != http.StatusAccepted {
		t.Fatalf("submit: status %d, want 202", resp.StatusCode)
	}
	if st.ID == "" || st.State != Queued {
		t.Fatalf("submit returned %+v, want a queued job with an id", st)
	}
	base := ts.URL + "/v1/jobs/" + st.ID

	// Stream the full run as NDJSON; the connection closes on completion.
	streamResp, err := http.Get(base + "/stream")
	if err != nil {
		t.Fatal(err)
	}
	defer streamResp.Body.Close()
	if got := streamResp.Header.Get("Content-Type"); got != "application/x-ndjson" {
		t.Errorf("stream Content-Type = %q", got)
	}
	var recs []IterRecord
	sc := bufio.NewScanner(streamResp.Body)
	for sc.Scan() {
		var rec IterRecord
		if err := json.Unmarshal(sc.Bytes(), &rec); err != nil {
			t.Fatalf("stream line %q: %v", sc.Text(), err)
		}
		recs = append(recs, rec)
	}
	if err := sc.Err(); err != nil {
		t.Fatal(err)
	}
	if len(recs) == 0 {
		t.Fatal("stream delivered no iteration records")
	}
	for i, rec := range recs {
		if rec.Iter != i+1 {
			t.Fatalf("stream record %d has Iter %d", i, rec.Iter)
		}
	}

	var final Status
	if code := getJSON(t, base, &final); code != http.StatusOK {
		t.Fatalf("status: %d", code)
	}
	if final.State != Succeeded || final.Iterations != len(recs) {
		t.Fatalf("final status %+v, want succeeded with %d iterations", final, len(recs))
	}

	var doc ResultDoc
	if code := getJSON(t, base+"/result", &doc); code != http.StatusOK {
		t.Fatalf("result: %d", code)
	}
	if doc.ID != st.ID || doc.Iterations != len(recs) || len(doc.Residuals) == 0 {
		t.Fatalf("result doc %+v inconsistent with run", doc)
	}

	// The checkpoint endpoint serves a gob the core loader accepts.
	ckResp, err := http.Get(base + "/checkpoint")
	if err != nil {
		t.Fatal(err)
	}
	defer ckResp.Body.Close()
	if ckResp.StatusCode != http.StatusOK {
		t.Fatalf("checkpoint: %d", ckResp.StatusCode)
	}
	ck, err := core.LoadCheckpoint(ckResp.Body)
	if err != nil {
		t.Fatalf("checkpoint not loadable: %v", err)
	}
	if ck.Iterations != len(recs) {
		t.Errorf("checkpoint records %d iterations, run had %d", ck.Iterations, len(recs))
	}

	var listing []Status
	if code := getJSON(t, ts.URL+"/v1/jobs", &listing); code != http.StatusOK || len(listing) != 1 {
		t.Fatalf("list: code %d, %d jobs", code, len(listing))
	}
	var health healthDoc
	if code := getJSON(t, ts.URL+"/healthz", &health); code != http.StatusOK || !health.OK {
		t.Fatalf("healthz: code %d, %+v", code, health)
	}
	metrics, err := http.Get(ts.URL + "/metrics")
	if err != nil {
		t.Fatal(err)
	}
	defer metrics.Body.Close()
	body, _ := io.ReadAll(metrics.Body)
	if !strings.Contains(string(body), "negfsim_serve_jobs_submitted") {
		t.Errorf("metrics exposition missing serve counters")
	}
}

// TestHTTPCancelAndErrors covers the failure surface: bad configs, unknown
// jobs, premature result fetches, queue overflow as 429, and cancellation
// through the API.
func TestHTTPCancelAndErrors(t *testing.T) {
	s := New(Config{MaxConcurrent: 1, QueueDepth: 1})
	defer closeSched(t, s)
	ts := httptest.NewServer(NewAPI(s))
	defer ts.Close()

	// Malformed and invalid submissions are 400s.
	resp, err := http.Post(ts.URL+"/v1/jobs", "application/json", strings.NewReader(`{"version":`))
	if err != nil {
		t.Fatal(err)
	}
	io.Copy(io.Discard, resp.Body)
	resp.Body.Close()
	if resp.StatusCode != http.StatusBadRequest {
		t.Errorf("malformed body: %d, want 400", resp.StatusCode)
	}
	bad := testConfig(61, 2)
	bad.Mixing = 7
	if resp, _ := postConfig(t, ts, bad); resp.StatusCode != http.StatusBadRequest {
		t.Errorf("invalid config: %d, want 400", resp.StatusCode)
	}
	future := testConfig(61, 2)
	future.Version = core.RunConfigVersion + 1
	if resp, _ := postConfig(t, ts, future); resp.StatusCode != http.StatusBadRequest {
		t.Errorf("future version: %d, want 400", resp.StatusCode)
	}

	// Unknown ids are 404s across the job endpoints.
	if code := getJSON(t, ts.URL+"/v1/jobs/nope", nil); code != http.StatusNotFound {
		t.Errorf("unknown job status: %d, want 404", code)
	}
	if code := getJSON(t, ts.URL+"/v1/jobs/nope/result", nil); code != http.StatusNotFound {
		t.Errorf("unknown job result: %d, want 404", code)
	}

	// Fill the service: one running, one queued, then 429.
	resp, running := postConfig(t, ts, longConfig(62))
	if resp.StatusCode != http.StatusAccepted {
		t.Fatalf("submit running: %d", resp.StatusCode)
	}
	resp, queued := postConfig(t, ts, testConfig(63, 2))
	if resp.StatusCode != http.StatusAccepted {
		t.Fatalf("submit queued: %d", resp.StatusCode)
	}
	if resp, _ := postConfig(t, ts, testConfig(64, 2)); resp.StatusCode != http.StatusTooManyRequests {
		t.Fatalf("overflow submit: %d, want 429", resp.StatusCode)
	}

	// A result fetch before completion is a 409.
	if code := getJSON(t, ts.URL+"/v1/jobs/"+running.ID+"/result", nil); code != http.StatusConflict {
		t.Errorf("premature result: %d, want 409", code)
	}

	// Cancel both over HTTP; the running one must drain to cancelled.
	for _, id := range []string{queued.ID, running.ID} {
		resp, err := http.Post(ts.URL+"/v1/jobs/"+id+"/cancel", "", nil)
		if err != nil {
			t.Fatal(err)
		}
		io.Copy(io.Discard, resp.Body)
		resp.Body.Close()
		if resp.StatusCode != http.StatusOK {
			t.Fatalf("cancel %s: %d", id, resp.StatusCode)
		}
	}
	deadline := time.Now().Add(60 * time.Second)
	for {
		var st Status
		getJSON(t, ts.URL+"/v1/jobs/"+running.ID, &st)
		if st.State == Cancelled {
			break
		}
		if time.Now().After(deadline) {
			t.Fatalf("running job stuck in %q after cancel", st.State)
		}
		time.Sleep(5 * time.Millisecond)
	}
}

// TestHTTPStreamFollowsLiveJob attaches a streaming client mid-run and
// checks it receives records it did not miss: the replay starts at 0 even
// though iterations already happened, and ?from skips exactly as asked.
func TestHTTPStreamFollowsLiveJob(t *testing.T) {
	s := New(Config{MaxConcurrent: 1})
	defer closeSched(t, s)
	ts := httptest.NewServer(NewAPI(s))
	defer ts.Close()

	resp, st := postConfig(t, ts, testConfig(71, 4))
	if resp.StatusCode != http.StatusAccepted {
		t.Fatalf("submit: %d", resp.StatusCode)
	}
	j, _ := s.Get(st.ID)
	waitState(t, j, Succeeded, 60*time.Second)
	n := j.Status().Iterations

	streamResp, err := http.Get(fmt.Sprintf("%s/v1/jobs/%s/stream?from=%d", ts.URL, st.ID, n-1))
	if err != nil {
		t.Fatal(err)
	}
	defer streamResp.Body.Close()
	var got []IterRecord
	sc := bufio.NewScanner(streamResp.Body)
	for sc.Scan() {
		var rec IterRecord
		if err := json.Unmarshal(sc.Bytes(), &rec); err != nil {
			t.Fatal(err)
		}
		got = append(got, rec)
	}
	if len(got) != 1 || got[0].Iter != n {
		t.Fatalf("stream from=%d returned %+v, want exactly iteration %d", n-1, got, n)
	}

	if code := getJSON(t, ts.URL+"/v1/jobs/"+st.ID+"/stream?from=-1", nil); code != http.StatusBadRequest {
		t.Errorf("negative from: %d, want 400", code)
	}
}

// TestHTTPWarmStartEnvelope drives the checkpoint round trip over HTTP: a
// finished job's /checkpoint seeds an envelope submission at an adjacent
// bias, which must report warm_start, converge in fewer Born iterations
// than the cold run, and reject incompatible or distributed warm starts.
func TestHTTPWarmStartEnvelope(t *testing.T) {
	s := New(Config{MaxConcurrent: 1})
	defer closeSched(t, s)
	ts := httptest.NewServer(NewAPI(s))
	defer ts.Close()

	mkCfg := func(bias float64) core.RunConfig {
		cfg := testConfig(11, 40)
		cfg.Mixer = "anderson"
		cfg.Mixing = 0.8
		cfg.Tol = 1e-9
		cfg.Bias = bias
		return cfg
	}

	// Converge the seed point and collect its checkpoint.
	resp, st := postConfig(t, ts, mkCfg(0.40))
	if resp.StatusCode != http.StatusAccepted {
		t.Fatalf("seed submit: %d", resp.StatusCode)
	}
	j, _ := s.Get(st.ID)
	waitState(t, j, Succeeded, 120*time.Second)
	ckResp, err := http.Get(ts.URL + "/v1/jobs/" + st.ID + "/checkpoint")
	if err != nil {
		t.Fatal(err)
	}
	ck, err := io.ReadAll(ckResp.Body)
	ckResp.Body.Close()
	if err != nil || ckResp.StatusCode != http.StatusOK {
		t.Fatalf("checkpoint fetch: %d, %v", ckResp.StatusCode, err)
	}

	postEnvelope := func(cfg core.RunConfig, ck []byte) (*http.Response, Status) {
		t.Helper()
		cfgRaw, err := json.Marshal(cfg)
		if err != nil {
			t.Fatal(err)
		}
		body, err := json.Marshal(submitEnvelope{Config: cfgRaw, Checkpoint: ck})
		if err != nil {
			t.Fatal(err)
		}
		resp, err := http.Post(ts.URL+"/v1/jobs", "application/json", bytes.NewReader(body))
		if err != nil {
			t.Fatal(err)
		}
		defer resp.Body.Close()
		var est Status
		if resp.StatusCode == http.StatusAccepted {
			if err := json.NewDecoder(resp.Body).Decode(&est); err != nil {
				t.Fatal(err)
			}
		} else {
			io.Copy(io.Discard, resp.Body)
		}
		return resp, est
	}

	// Cold baseline at the target bias.
	coldResp, coldSt := postConfig(t, ts, mkCfg(0.44))
	if coldResp.StatusCode != http.StatusAccepted {
		t.Fatalf("cold submit: %d", coldResp.StatusCode)
	}
	jc, _ := s.Get(coldSt.ID)
	waitState(t, jc, Succeeded, 120*time.Second)
	coldIters := jc.Status().Iterations

	// Warm envelope at the target bias.
	wResp, wSt := postEnvelope(mkCfg(0.44), ck)
	if wResp.StatusCode != http.StatusAccepted {
		t.Fatalf("warm submit: %d", wResp.StatusCode)
	}
	if !wSt.WarmStart {
		t.Error("envelope submission did not report warm_start")
	}
	jw, _ := s.Get(wSt.ID)
	waitState(t, jw, Succeeded, 120*time.Second)
	if got := jw.Status().Iterations; got >= coldIters {
		t.Errorf("warm run took %d iterations, cold took %d — no head start", got, coldIters)
	}
	rw, _ := jw.Result()
	rc, _ := jc.Result()
	if d := obsDiff(rw.Obs, rc.Obs); d > 1e-8 {
		t.Errorf("warm observables differ from cold by %g, want <= 1e-8", d)
	}

	// A checkpoint from a different device is rejected up front.
	other := mkCfg(0.44)
	og := other.Device.Grid()
	og.Seed = 99
	other.Device = device.WrapParams(og)
	if resp, _ := postEnvelope(other, ck); resp.StatusCode != http.StatusBadRequest {
		t.Errorf("incompatible checkpoint: %d, want 400", resp.StatusCode)
	}

	// Warm starts apply to plain serial runs only.
	dist := mkCfg(0.44)
	dist.Dist = "2x1"
	if resp, _ := postEnvelope(dist, ck); resp.StatusCode != http.StatusBadRequest {
		t.Errorf("distributed warm start: %d, want 400", resp.StatusCode)
	}

	// A corrupt checkpoint is a 400, not a crash.
	if resp, _ := postEnvelope(mkCfg(0.44), []byte("not a gob")); resp.StatusCode != http.StatusBadRequest {
		t.Errorf("corrupt checkpoint: %d, want 400", resp.StatusCode)
	}
}
