package serve

import (
	"testing"
	"time"

	"negfsim/internal/cmat"
	"negfsim/internal/tune"
)

// TestTuningBesideLiveJobs pins the race-safety contract between the
// autotuner and the multi-tenant scheduler: a measured tuning pass runs
// through cmat's explicit-parameter probe entries and touches no global
// state, so probing while jobs execute must neither perturb the installed
// blocking nor change job results. Run under -race this also proves the
// probe kernels share no unsynchronized state with the solver.
func TestTuningBesideLiveJobs(t *testing.T) {
	installed := cmat.CurrentBlocking()
	s := New(Config{MaxConcurrent: 2})
	defer closeSched(t, s)

	cfg := testConfig(23, 3)
	j1, err := s.Submit(cfg)
	if err != nil {
		t.Fatal(err)
	}
	j2, err := s.Submit(cfg)
	if err != nil {
		t.Fatal(err)
	}

	// A real measured search, concurrent with both jobs.
	done := make(chan tune.Schedule, 1)
	go func() {
		tn := &tune.Tuner{Budget: 250 * time.Millisecond, Sizes: []int{48, 64}, MaxWorkers: 2}
		done <- tn.Search()
	}()

	waitState(t, j1, Succeeded, 60*time.Second)
	waitState(t, j2, Succeeded, 60*time.Second)
	sched := <-done
	if err := sched.Validate(); err != nil {
		t.Fatal(err)
	}

	if got := cmat.CurrentBlocking(); got != installed {
		t.Fatalf("tuning beside live jobs changed the installed blocking: %+v -> %+v", installed, got)
	}

	// Job results must match a direct run of the same config exactly —
	// concurrent probing contributed nothing to their numerics.
	opts, err := cfg.Options()
	if err != nil {
		t.Fatal(err)
	}
	opts.Workers = s.PerJobWorkers()
	sim, err := cfg.NewSimulatorWith(opts)
	if err != nil {
		t.Fatal(err)
	}
	want, err := sim.Run()
	if err != nil {
		t.Fatal(err)
	}
	for _, j := range []*Job{j1, j2} {
		got, ok := j.Result()
		if !ok {
			t.Fatalf("job %s has no result", j.ID())
		}
		if d := obsDiff(got.Obs, want.Obs); d != 0 {
			t.Fatalf("job %s diverged from the direct run by %g under concurrent tuning", j.ID(), d)
		}
	}
}
