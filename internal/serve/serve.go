// Package serve is the multi-tenant simulation service behind cmd/qtsimd:
// a bounded job queue with admission control and a scheduler that
// multiplexes N concurrent self-consistent simulations over the process's
// shared worker pool (internal/pool) and matrix arena (internal/cmat).
//
// The shape is an inference-serving frontend transplanted onto the NEGF
// solver. A job is one core.RunConfig — the same versioned document qtsim
// consumes — and its lifecycle is queued → running → succeeded | failed |
// cancelled. Running jobs execute under a per-job context.Context threaded
// through the context-aware core entrypoints (RunCtx, RunDistributedFTCtx,
// RunWithPoissonCtx), so a cancel request lands within one Born iteration:
// the GF phase checks the context per grid point and the simulated
// cluster's Send/Recv unblock on it directly.
//
// Capacity discipline: the scheduler runs at most MaxConcurrent jobs at
// once and grants each a Workers share of the pool budget
// (WorkerBudget/MaxConcurrent), so the combined grid-point parallelism of
// all tenants never oversubscribes GOMAXPROCS — the pool's direct-handoff
// design degrades saturated submissions to inline execution rather than
// queueing oversubscribed goroutines. Admission control bounds the queue:
// past QueueDepth waiting jobs, Submit fails fast (HTTP 429) instead of
// accepting unbounded backlog.
//
// Every job is individually visible at /metrics: per-job labelled series
// (serve.job_state{job="..."}, serve.job_iterations{job="..."}) are
// registered while the job lives in the store and unregistered when the
// retention ring evicts it, keeping the registry bounded. See
// docs/OBSERVABILITY.md.
package serve

import (
	"context"
	"errors"
	"fmt"
	"math"
	"runtime"
	"strconv"
	"sync"
	"time"

	"negfsim/internal/core"
	"negfsim/internal/obs"
)

// Service-level telemetry (see docs/OBSERVABILITY.md). Queue depth and
// running count are gauge funcs registered per scheduler in New.
var (
	obsSubmitted = obs.GetCounter("serve.jobs_submitted")
	obsRejected  = obs.GetCounter("serve.jobs_rejected")
	obsSucceeded = obs.GetCounter("serve.jobs_succeeded")
	obsFailed    = obs.GetCounter("serve.jobs_failed")
	obsCancelled = obs.GetCounter("serve.jobs_cancelled")
	obsJobSpan   = obs.GetTimer("serve.job")
)

// ErrQueueFull is returned by Submit when the waiting queue is at
// QueueDepth — the admission-control signal behind HTTP 429.
var ErrQueueFull = errors.New("serve: job queue full")

// ErrClosed is returned by Submit after Close has begun.
var ErrClosed = errors.New("serve: scheduler is shut down")

// Config sizes the scheduler.
type Config struct {
	// MaxConcurrent is the number of simulations run simultaneously
	// (default 2).
	MaxConcurrent int
	// QueueDepth bounds the jobs waiting beyond the running ones; a Submit
	// past it fails with ErrQueueFull (default 16).
	QueueDepth int
	// WorkerBudget is the total grid-point parallelism shared by all
	// running jobs (default GOMAXPROCS). Each job runs with
	// max(1, WorkerBudget/MaxConcurrent) workers unless its config pins
	// Workers explicitly.
	WorkerBudget int
	// Retain is how many finished jobs stay queryable before the oldest is
	// evicted, its per-job metrics unregistered with it (default 64).
	Retain int
	// DefaultAdapt, when non-nil, is applied to every plain serial
	// submission that carries no adapt block of its own — the daemon-wide
	// adaptive-grid policy (qtsimd -adapt). Submissions with an explicit
	// block (including mode "off") keep theirs.
	DefaultAdapt *core.AdaptSpec
}

// withDefaults fills the zero fields of a Config.
func (c Config) withDefaults() Config {
	if c.MaxConcurrent <= 0 {
		c.MaxConcurrent = 2
	}
	if c.QueueDepth <= 0 {
		c.QueueDepth = 16
	}
	if c.WorkerBudget <= 0 {
		c.WorkerBudget = runtime.GOMAXPROCS(0)
	}
	if c.Retain <= 0 {
		c.Retain = 64
	}
	return c
}

// JobState is a job's lifecycle phase.
type JobState string

// The job lifecycle: Queued → Running → one of the three terminal states.
const (
	// Queued: admitted, waiting for a runner slot.
	Queued JobState = "queued"
	// Running: executing on a runner.
	Running JobState = "running"
	// Succeeded: finished with a result.
	Succeeded JobState = "succeeded"
	// Failed: finished with an error that was not a cancellation.
	Failed JobState = "failed"
	// Cancelled: stopped by a cancel request (or scheduler shutdown).
	Cancelled JobState = "cancelled"
)

// stateCode is the numeric encoding of the serve.job_state gauge.
func stateCode(s JobState) int64 {
	switch s {
	case Queued:
		return 0
	case Running:
		return 1
	case Succeeded:
		return 2
	case Failed:
		return 3
	case Cancelled:
		return 4
	}
	return -1
}

// IterRecord is one Born iteration of a job as streamed to clients —
// the service-side shape of core.IterStats (qtsim's trace line schema).
type IterRecord struct {
	// Iter is the 1-based Born iteration index.
	Iter int `json:"iter"`
	// WallNs is the iteration wall time in nanoseconds; GFNs/SSENs/MixNs
	// are the phase breakdown.
	WallNs int64 `json:"wall_ns"`
	GFNs   int64 `json:"gf_ns"`
	SSENs  int64 `json:"sse_ns"`
	MixNs  int64 `json:"mix_ns"`
	// Residual is the relative G change; omitted on the first iteration.
	Residual *float64 `json:"residual,omitempty"`
	// Converged reports whether this iteration met the tolerance.
	Converged bool `json:"converged"`
}

// Job is one submitted simulation. All fields behind mu; accessors return
// snapshots.
type Job struct {
	id  string
	cfg core.RunConfig
	ck  *core.Checkpoint // warm-start seed, nil for cold runs

	mu   sync.Mutex
	cond *sync.Cond // broadcast on every iteration append and state change

	state    JobState
	err      string
	result   *core.Result
	bytes    int64 // distributed exchange traffic
	gummel   int   // Gummel outer iterations (gated runs only)
	iters    []IterRecord
	queued   time.Time
	started  time.Time
	finished time.Time
	cancel   context.CancelFunc // non-nil while running

	obsIters *obs.Counter // serve.job_iterations{job="id"}
}

// ID returns the job's identifier.
func (j *Job) ID() string { return j.id }

// Config returns the job's run configuration.
func (j *Job) Config() core.RunConfig { return j.cfg }

// Status is a point-in-time public snapshot of a job.
type Status struct {
	// ID identifies the job; State is its lifecycle phase.
	ID    string   `json:"id"`
	State JobState `json:"state"`
	// Queued/Started/Finished are lifecycle timestamps (zero = not yet).
	Queued   time.Time  `json:"queued"`
	Started  *time.Time `json:"started,omitempty"`
	Finished *time.Time `json:"finished,omitempty"`
	// Iterations counts the Born iterations recorded so far.
	Iterations int `json:"iterations"`
	// Converged reports whether the run met its tolerance (terminal only).
	Converged bool `json:"converged"`
	// WarmStart reports whether the job was seeded with a Σ≷/Π≷ checkpoint
	// instead of starting the Born loop from zero self-energies.
	WarmStart bool `json:"warm_start,omitempty"`
	// Error carries the failure or cancellation message (terminal only).
	Error string `json:"error,omitempty"`
}

// Status returns the job's current snapshot.
func (j *Job) Status() Status {
	j.mu.Lock()
	defer j.mu.Unlock()
	st := Status{
		ID:         j.id,
		State:      j.state,
		Queued:     j.queued,
		Iterations: len(j.iters),
		WarmStart:  j.ck != nil,
		Error:      j.err,
	}
	if !j.started.IsZero() {
		t := j.started
		st.Started = &t
	}
	if !j.finished.IsZero() {
		t := j.finished
		st.Finished = &t
	}
	if j.result != nil {
		st.Converged = j.result.Converged
	}
	return st
}

// Result returns the job's result once it has succeeded, and whether it is
// available.
func (j *Job) Result() (*core.Result, bool) {
	j.mu.Lock()
	defer j.mu.Unlock()
	if j.state != Succeeded || j.result == nil {
		return nil, false
	}
	return j.result, true
}

// Bytes returns the distributed exchange traffic of a finished distributed
// job (zero for serial jobs).
func (j *Job) Bytes() int64 {
	j.mu.Lock()
	defer j.mu.Unlock()
	return j.bytes
}

// Done reports whether the job has reached a terminal state.
func (j *Job) Done() bool {
	j.mu.Lock()
	defer j.mu.Unlock()
	return j.state == Succeeded || j.state == Failed || j.state == Cancelled
}

// WaitIter blocks until iteration record i exists, the job reaches a
// terminal state, or ctx is cancelled. It returns the record and true when
// available; false means no more records will come (terminal and i is past
// the end, or ctx fired). This is the pull side of the streaming endpoint:
// every consumer replays from any index with no per-subscriber buffers and
// no dropped records.
func (j *Job) WaitIter(ctx context.Context, i int) (IterRecord, bool) {
	// A cond has no context integration; a watcher goroutine per WaitIter
	// call would leak on abandoned streams, so poke the cond when ctx dies.
	stop := context.AfterFunc(ctx, func() {
		j.mu.Lock()
		j.cond.Broadcast()
		j.mu.Unlock()
	})
	defer stop()
	j.mu.Lock()
	defer j.mu.Unlock()
	for {
		if i < len(j.iters) {
			return j.iters[i], true
		}
		if ctx.Err() != nil || j.state == Succeeded || j.state == Failed || j.state == Cancelled {
			return IterRecord{}, false
		}
		j.cond.Wait()
	}
}

// recordIteration is the job's core.Options.OnIteration hook. It runs on
// the solver goroutine: append, count, wake streamers — nothing heavier.
func (j *Job) recordIteration(st core.IterStats) {
	rec := IterRecord{
		Iter:      st.Iter,
		WallNs:    st.Wall.Nanoseconds(),
		GFNs:      st.GF.Nanoseconds(),
		SSENs:     st.SSE.Nanoseconds(),
		MixNs:     st.Mix.Nanoseconds(),
		Converged: st.Converged,
	}
	if !math.IsNaN(st.Residual) {
		r := st.Residual
		rec.Residual = &r
	}
	j.obsIters.Inc()
	j.mu.Lock()
	j.iters = append(j.iters, rec)
	j.cond.Broadcast()
	j.mu.Unlock()
}

// metricNames returns the job's labelled series, registered at submit and
// unregistered at eviction.
func (j *Job) metricNames() (iters, state string) {
	return obs.Labeled("serve.job_iterations", "job", j.id),
		obs.Labeled("serve.job_state", "job", j.id)
}

// Scheduler owns the job store, the admission-controlled queue and the
// runner goroutines. Create one with New; it is safe for concurrent use.
type Scheduler struct {
	cfg     Config
	baseCtx context.Context
	stop    context.CancelFunc
	wg      sync.WaitGroup

	mu       sync.Mutex
	cond     *sync.Cond // signals runners that pending has work (or closed)
	pending  []*Job
	jobs     map[string]*Job
	order    []string // submission order, for listing
	doneRing []string // finished ids in completion order, for eviction
	running  int
	closed   bool
	nextID   int
}

// New builds a scheduler and starts its MaxConcurrent runner goroutines.
func New(cfg Config) *Scheduler {
	s := &Scheduler{cfg: cfg.withDefaults(), jobs: map[string]*Job{}}
	s.cond = sync.NewCond(&s.mu)
	s.baseCtx, s.stop = context.WithCancel(context.Background())
	obs.RegisterGaugeFunc("serve.queue_depth", func() int64 {
		s.mu.Lock()
		defer s.mu.Unlock()
		return int64(len(s.pending))
	})
	obs.RegisterGaugeFunc("serve.jobs_running", func() int64 {
		s.mu.Lock()
		defer s.mu.Unlock()
		return int64(s.running)
	})
	for i := 0; i < s.cfg.MaxConcurrent; i++ {
		s.wg.Add(1)
		go s.runner()
	}
	return s
}

// PerJobWorkers is the grid-point parallelism granted to a job that does
// not pin Workers itself: the worker budget split evenly across the
// concurrency slots, never below one.
func (s *Scheduler) PerJobWorkers() int {
	w := s.cfg.WorkerBudget / s.cfg.MaxConcurrent
	if w < 1 {
		w = 1
	}
	return w
}

// Submit validates and admits a job. It fails fast with ErrQueueFull when
// QueueDepth jobs are already waiting, and with ErrClosed during shutdown.
func (s *Scheduler) Submit(cfg core.RunConfig) (*Job, error) {
	return s.SubmitFrom(cfg, nil)
}

// SubmitFrom is Submit with an optional warm-start checkpoint: a non-nil ck
// seeds the Born loop with the saved Σ≷/Π≷ instead of zeros (the same
// continuation RunFromCtx performs), which lets a front tier start a run
// from an adjacent bias point's converged state. The checkpoint must match
// the config's device exactly and the run must be a plain serial one —
// distributed and Gummel-coupled runs manage their own checkpointing.
func (s *Scheduler) SubmitFrom(cfg core.RunConfig, ck *core.Checkpoint) (*Job, error) {
	if s.cfg.DefaultAdapt != nil && cfg.Adapt == nil &&
		cfg.Dist == "" && cfg.Space < 2 && cfg.Gate == nil {
		a := *s.cfg.DefaultAdapt
		cfg.Adapt = &a
	}
	if err := cfg.Validate(); err != nil {
		return nil, err
	}
	if ck != nil {
		if cfg.Dist != "" || cfg.Space >= 2 || cfg.Gate != nil {
			return nil, errors.New("serve: warm start applies to plain serial runs only (no dist, no space, no gate)")
		}
		if err := ck.Compatible(cfg.Device); err != nil {
			return nil, err
		}
		if err := ck.CompatibleGrid(cfg.AdaptEnabled()); err != nil {
			return nil, err
		}
	}
	s.mu.Lock()
	defer s.mu.Unlock()
	if s.closed {
		return nil, ErrClosed
	}
	if len(s.pending) >= s.cfg.QueueDepth {
		obsRejected.Inc()
		return nil, ErrQueueFull
	}
	s.nextID++
	j := &Job{
		id:     "j" + strconv.Itoa(s.nextID),
		cfg:    cfg,
		ck:     ck,
		state:  Queued,
		queued: time.Now(),
	}
	j.cond = sync.NewCond(&j.mu)
	itersName, stateName := j.metricNames()
	j.obsIters = obs.GetCounter(itersName)
	obs.RegisterGaugeFunc(stateName, func() int64 {
		j.mu.Lock()
		defer j.mu.Unlock()
		return stateCode(j.state)
	})
	s.jobs[j.id] = j
	s.order = append(s.order, j.id)
	s.pending = append(s.pending, j)
	obsSubmitted.Inc()
	s.cond.Signal()
	return j, nil
}

// Get returns the job with the given id, if it is still in the store.
func (s *Scheduler) Get(id string) (*Job, bool) {
	s.mu.Lock()
	defer s.mu.Unlock()
	j, ok := s.jobs[id]
	return j, ok
}

// Jobs returns the stored jobs in submission order.
func (s *Scheduler) Jobs() []*Job {
	s.mu.Lock()
	defer s.mu.Unlock()
	out := make([]*Job, 0, len(s.order))
	for _, id := range s.order {
		if j, ok := s.jobs[id]; ok {
			out = append(out, j)
		}
	}
	return out
}

// Cancel stops the job with the given id: a queued job leaves the queue
// immediately (freeing its admission slot), a running job has its context
// cancelled and drains within one Born iteration. Cancelling a finished job
// is a no-op. The returned state is the job's state after the request.
func (s *Scheduler) Cancel(id string) (JobState, error) {
	s.mu.Lock()
	j, ok := s.jobs[id]
	if !ok {
		s.mu.Unlock()
		return "", fmt.Errorf("serve: no such job %q", id)
	}
	// Remove from pending under the scheduler lock so a runner cannot pick
	// it up concurrently with the state change below. If a runner popped it
	// already (removed stays false), the runner owns the completion
	// accounting: its execute sees the Cancelled state and returns.
	removed := false
	for i, p := range s.pending {
		if p == j {
			s.pending = append(s.pending[:i], s.pending[i+1:]...)
			removed = true
			break
		}
	}
	s.mu.Unlock()

	j.mu.Lock()
	switch j.state {
	case Queued:
		j.state = Cancelled
		j.err = "cancelled while queued"
		j.finished = time.Now()
		j.cond.Broadcast()
		j.mu.Unlock()
		obsCancelled.Inc()
		if removed {
			s.noteFinished(j)
		}
		return Cancelled, nil
	case Running:
		cancel := j.cancel
		st := j.state
		j.mu.Unlock()
		if cancel != nil {
			cancel()
		}
		return st, nil
	default:
		st := j.state
		j.mu.Unlock()
		return st, nil
	}
}

// Close shuts the scheduler down: no new admissions, queued jobs are
// cancelled, running jobs have their contexts cancelled, and Close blocks
// until every runner has drained or ctx expires.
func (s *Scheduler) Close(ctx context.Context) error {
	s.mu.Lock()
	if s.closed {
		s.mu.Unlock()
		return nil
	}
	s.closed = true
	pending := s.pending
	s.pending = nil
	s.cond.Broadcast()
	s.mu.Unlock()

	for _, j := range pending {
		j.mu.Lock()
		j.state = Cancelled
		j.err = "scheduler shut down"
		j.finished = time.Now()
		j.cond.Broadcast()
		j.mu.Unlock()
		obsCancelled.Inc()
	}
	s.stop() // cancels every running job's context

	done := make(chan struct{})
	go func() { s.wg.Wait(); close(done) }()
	select {
	case <-done:
		return nil
	case <-ctx.Done():
		return fmt.Errorf("serve: shutdown timed out: %w", ctx.Err())
	}
}

// runner is one concurrency slot: pop, execute, account, repeat.
func (s *Scheduler) runner() {
	defer s.wg.Done()
	for {
		s.mu.Lock()
		for len(s.pending) == 0 && !s.closed {
			s.cond.Wait()
		}
		if s.closed {
			s.mu.Unlock()
			return
		}
		j := s.pending[0]
		s.pending = s.pending[1:]
		s.running++
		s.mu.Unlock()

		s.execute(j)

		s.mu.Lock()
		s.running--
		s.mu.Unlock()
		s.noteFinished(j)
	}
}

// execute runs one job start to finish on the calling runner goroutine.
func (s *Scheduler) execute(j *Job) {
	ctx, cancel := context.WithCancel(s.baseCtx)
	defer cancel()

	j.mu.Lock()
	if j.state != Queued { // cancelled between pop and start
		j.mu.Unlock()
		return
	}
	j.state = Running
	j.started = time.Now()
	j.cancel = cancel
	j.cond.Broadcast()
	j.mu.Unlock()

	res, bytes, gummel, err := s.runConfigured(ctx, j)

	j.mu.Lock()
	j.cancel = nil
	j.finished = time.Now()
	j.result = res
	j.bytes = bytes
	j.gummel = gummel
	switch {
	case err == nil:
		j.state = Succeeded
	case ctx.Err() != nil || errors.Is(err, context.Canceled):
		j.state = Cancelled
		j.err = err.Error()
	default:
		j.state = Failed
		j.err = err.Error()
	}
	state := j.state
	obsJobSpan.Observe(j.finished.Sub(j.started))
	j.cond.Broadcast()
	j.mu.Unlock()

	switch state {
	case Succeeded:
		obsSucceeded.Inc()
	case Cancelled:
		obsCancelled.Inc()
	default:
		obsFailed.Inc()
	}
}

// runConfigured dispatches a job to the execution mode its config selects:
// adaptive-grid (optionally over the distributed runner), distributed
// fault-tolerant, Gummel-coupled, or plain serial.
func (s *Scheduler) runConfigured(ctx context.Context, j *Job) (res *core.Result, bytes int64, gummel int, err error) {
	opts, err := j.cfg.Options()
	if err != nil {
		return nil, 0, 0, err
	}
	if opts.Workers <= 0 || opts.Workers > s.cfg.WorkerBudget {
		opts.Workers = s.PerJobWorkers()
	}
	opts.OnIteration = j.recordIteration
	sim, err := j.cfg.NewSimulatorWith(opts)
	if err != nil {
		return nil, 0, 0, err
	}
	if ac, adaptive := j.cfg.AdaptConfig(); adaptive {
		ac.Resume = j.ck
		if dc, distributed, derr := j.cfg.DistConfig(); derr != nil {
			return nil, 0, 0, derr
		} else if distributed {
			ac.Dist = &dc
		}
		res, bytes, err = sim.RunAdaptiveCtx(ctx, ac)
		return res, bytes, 0, err
	}
	if dc, distributed, derr := j.cfg.DistConfig(); derr != nil {
		return nil, 0, 0, derr
	} else if distributed {
		res, bytes, err = sim.RunDistributedFTCtx(ctx, dc)
		return res, bytes, 0, err
	}
	if j.cfg.Gate != nil {
		es, gerr := sim.RunWithPoissonCtx(ctx, *j.cfg.Gate)
		if gerr != nil {
			return nil, 0, 0, gerr
		}
		return es.Result, 0, es.OuterIterations, nil
	}
	if j.ck != nil {
		res, err = sim.RunFromCtx(ctx, j.ck)
		return res, 0, 0, err
	}
	res, err = sim.RunCtx(ctx)
	return res, 0, 0, err
}

// noteFinished appends a terminal job to the retention ring and evicts the
// oldest finished jobs past Retain, unregistering their per-job metrics so
// the registry stays bounded in a long-lived daemon.
func (s *Scheduler) noteFinished(j *Job) {
	s.mu.Lock()
	defer s.mu.Unlock()
	s.doneRing = append(s.doneRing, j.id)
	for len(s.doneRing) > s.cfg.Retain {
		id := s.doneRing[0]
		s.doneRing = s.doneRing[1:]
		old, ok := s.jobs[id]
		if !ok {
			continue
		}
		delete(s.jobs, id)
		for i, oid := range s.order {
			if oid == id {
				s.order = append(s.order[:i], s.order[i+1:]...)
				break
			}
		}
		itersName, stateName := old.metricNames()
		obs.Unregister(itersName)
		obs.Unregister(stateName)
	}
}
