package serve

import (
	"bytes"
	"encoding/json"
	"errors"
	"fmt"
	"io"
	"net/http"
	"strconv"

	"negfsim/internal/core"
	"negfsim/internal/obs"
)

// API is the HTTP/JSON face of a Scheduler. All endpoints are under /v1:
//
//	POST /v1/jobs               submit a core.RunConfig → 202 + Status;
//	                            a {"config": …, "checkpoint": base64-gob}
//	                            envelope warm-starts from saved Σ≷/Π≷
//	GET  /v1/jobs               list jobs in submission order
//	GET  /v1/jobs/{id}          one job's Status
//	POST /v1/jobs/{id}/cancel   request cancellation → Status after
//	GET  /v1/jobs/{id}/stream   NDJSON IterRecords, live until terminal
//	GET  /v1/jobs/{id}/result   converged observables of a succeeded job
//	GET  /v1/jobs/{id}/checkpoint  gob checkpoint of a succeeded job
//	GET  /healthz               liveness + queue snapshot
//	GET  /metrics               obs exposition (Prometheus text format)
//
// Admission failures map to the HTTP status codes clients expect from a
// bounded service: a full queue is 429 Too Many Requests, a draining
// scheduler is 503 Service Unavailable.
type API struct {
	s   *Scheduler
	mux *http.ServeMux
}

// NewAPI wraps a scheduler in its HTTP handler.
func NewAPI(s *Scheduler) *API {
	a := &API{s: s, mux: http.NewServeMux()}
	a.mux.HandleFunc("POST /v1/jobs", a.submit)
	a.mux.HandleFunc("GET /v1/jobs", a.list)
	a.mux.HandleFunc("GET /v1/jobs/{id}", a.status)
	a.mux.HandleFunc("POST /v1/jobs/{id}/cancel", a.cancel)
	a.mux.HandleFunc("GET /v1/jobs/{id}/stream", a.stream)
	a.mux.HandleFunc("GET /v1/jobs/{id}/result", a.result)
	a.mux.HandleFunc("GET /v1/jobs/{id}/checkpoint", a.checkpoint)
	a.mux.HandleFunc("GET /healthz", a.healthz)
	a.mux.Handle("GET /metrics", obs.Handler())
	return a
}

// ServeHTTP implements http.Handler.
func (a *API) ServeHTTP(w http.ResponseWriter, r *http.Request) { a.mux.ServeHTTP(w, r) }

// apiError is the JSON error envelope every non-2xx response carries.
type apiError struct {
	Error string `json:"error"`
}

func writeJSON(w http.ResponseWriter, code int, v any) {
	w.Header().Set("Content-Type", "application/json")
	w.WriteHeader(code)
	enc := json.NewEncoder(w)
	enc.SetIndent("", "  ")
	_ = enc.Encode(v)
}

func writeError(w http.ResponseWriter, code int, format string, args ...any) {
	writeJSON(w, code, apiError{Error: fmt.Sprintf(format, args...)})
}

// job resolves the {id} path value, writing a 404 when it is gone (never
// submitted, or evicted by retention).
func (a *API) job(w http.ResponseWriter, r *http.Request) (*Job, bool) {
	id := r.PathValue("id")
	j, ok := a.s.Get(id)
	if !ok {
		writeError(w, http.StatusNotFound, "no such job %q", id)
		return nil, false
	}
	return j, true
}

// submitEnvelope is the warm-start submission body: the run config plus a
// gob checkpoint (base64 in JSON) whose Σ≷/Π≷ seed the Born loop. A plain
// RunConfig body remains the cold-start form; the handler distinguishes the
// two by the presence of the "config" key.
type submitEnvelope struct {
	// Config is the run configuration (a core.RunConfig document).
	Config json.RawMessage `json:"config"`
	// Checkpoint is the gob-encoded core.Checkpoint seeding the run; it
	// must match Config's device exactly. Optional: an envelope without it
	// is an ordinary cold submission.
	Checkpoint []byte `json:"checkpoint,omitempty"`
}

func (a *API) submit(w http.ResponseWriter, r *http.Request) {
	raw, err := io.ReadAll(http.MaxBytesReader(w, r.Body, 16<<20))
	if err != nil {
		writeError(w, http.StatusBadRequest, "reading body: %v", err)
		return
	}
	cfgRaw := raw
	var ck *core.Checkpoint
	var env submitEnvelope
	envDec := json.NewDecoder(bytes.NewReader(raw))
	envDec.DisallowUnknownFields()
	if err := envDec.Decode(&env); err == nil && env.Config != nil {
		cfgRaw = env.Config
		if len(env.Checkpoint) > 0 {
			ck, err = core.LoadCheckpoint(bytes.NewReader(env.Checkpoint))
			if err != nil {
				writeError(w, http.StatusBadRequest, "%v", err)
				return
			}
		}
	}
	var cfg core.RunConfig
	dec := json.NewDecoder(bytes.NewReader(cfgRaw))
	dec.DisallowUnknownFields()
	if err := dec.Decode(&cfg); err != nil {
		writeError(w, http.StatusBadRequest, "decoding run config: %v", err)
		return
	}
	if cfg.Version == 0 {
		cfg.Version = core.RunConfigVersion
	}
	if !core.VersionSupported(cfg.Version) {
		writeError(w, http.StatusBadRequest,
			"run config version %d not supported (this build speaks version %d and still accepts %d)",
			cfg.Version, core.RunConfigVersion, core.RunConfigLegacyVersion)
		return
	}
	j, err := a.s.SubmitFrom(cfg, ck)
	switch {
	case errors.Is(err, ErrQueueFull):
		writeError(w, http.StatusTooManyRequests, "%v", err)
	case errors.Is(err, ErrClosed):
		writeError(w, http.StatusServiceUnavailable, "%v", err)
	case err != nil:
		writeError(w, http.StatusBadRequest, "%v", err)
	default:
		writeJSON(w, http.StatusAccepted, j.Status())
	}
}

func (a *API) list(w http.ResponseWriter, r *http.Request) {
	jobs := a.s.Jobs()
	out := make([]Status, len(jobs))
	for i, j := range jobs {
		out[i] = j.Status()
	}
	writeJSON(w, http.StatusOK, out)
}

func (a *API) status(w http.ResponseWriter, r *http.Request) {
	if j, ok := a.job(w, r); ok {
		writeJSON(w, http.StatusOK, j.Status())
	}
}

func (a *API) cancel(w http.ResponseWriter, r *http.Request) {
	j, ok := a.job(w, r)
	if !ok {
		return
	}
	if _, err := a.s.Cancel(j.ID()); err != nil {
		writeError(w, http.StatusNotFound, "%v", err)
		return
	}
	writeJSON(w, http.StatusOK, j.Status())
}

// stream writes the job's iteration records as NDJSON, one object per
// line, starting at ?from= (default 0) and following live until the job
// reaches a terminal state or the client disconnects. Records are replayed
// from the job's log, so a client connecting late sees every iteration —
// there is no subscription window to miss.
func (a *API) stream(w http.ResponseWriter, r *http.Request) {
	j, ok := a.job(w, r)
	if !ok {
		return
	}
	from := 0
	if s := r.URL.Query().Get("from"); s != "" {
		v, err := strconv.Atoi(s)
		if err != nil || v < 0 {
			writeError(w, http.StatusBadRequest, "from must be a non-negative integer, got %q", s)
			return
		}
		from = v
	}
	w.Header().Set("Content-Type", "application/x-ndjson")
	w.WriteHeader(http.StatusOK)
	flusher, _ := w.(http.Flusher)
	enc := json.NewEncoder(w)
	for i := from; ; i++ {
		rec, more := j.WaitIter(r.Context(), i)
		if !more {
			return
		}
		if err := enc.Encode(rec); err != nil {
			return
		}
		if flusher != nil {
			flusher.Flush()
		}
	}
}

// ResultDoc is the JSON body of the result endpoint: the scalar run
// outcome plus the physical observables — the same quantities qtsim
// prints, so service and CLI runs can be diffed field by field.
type ResultDoc struct {
	// ID is the job; Iterations/Converged/Recoveries summarize the run.
	ID         string `json:"id"`
	Iterations int    `json:"iterations"`
	Converged  bool   `json:"converged"`
	Recoveries int    `json:"recoveries"`
	// Residuals is the per-iteration relative G change.
	Residuals []float64 `json:"residuals"`
	// Observables are the physical outputs (currents, heat, dissipation).
	Observables core.Observables `json:"observables"`
	// Bytes is the simulated exchange traffic of a distributed run.
	Bytes int64 `json:"bytes,omitempty"`
	// Adapt is the refinement summary of an adaptive-grid run (absent
	// for uniform runs).
	Adapt *core.AdaptReport `json:"adapt,omitempty"`
}

func (a *API) result(w http.ResponseWriter, r *http.Request) {
	j, ok := a.job(w, r)
	if !ok {
		return
	}
	res, ok := j.Result()
	if !ok {
		writeError(w, http.StatusConflict, "job %q has no result (state %q)", j.ID(), j.Status().State)
		return
	}
	writeJSON(w, http.StatusOK, ResultDoc{
		ID:          j.ID(),
		Iterations:  res.Iterations,
		Converged:   res.Converged,
		Recoveries:  res.Recoveries,
		Residuals:   res.Residuals,
		Observables: res.Obs,
		Bytes:       j.Bytes(),
		Adapt:       res.Adapt,
	})
}

// checkpoint serves the succeeded job's converged self-energies as a gob
// checkpoint — the same format qtsim's -checkpoint flag writes, so a
// service result can seed a local RunFrom continuation.
func (a *API) checkpoint(w http.ResponseWriter, r *http.Request) {
	j, ok := a.job(w, r)
	if !ok {
		return
	}
	res, ok := j.Result()
	if !ok {
		writeError(w, http.StatusConflict, "job %q has no result (state %q)", j.ID(), j.Status().State)
		return
	}
	ck := core.CheckpointOf(j.Config().Device, res)
	w.Header().Set("Content-Type", "application/octet-stream")
	if err := ck.Save(w); err != nil {
		// Headers are out; the broken body is the best signal left.
		return
	}
}

// healthDoc is the healthz body: liveness plus a queue snapshot.
type healthDoc struct {
	// OK is always true when the handler answers.
	OK bool `json:"ok"`
	// Queued and Running are the scheduler's current load.
	Queued  int `json:"queued"`
	Running int `json:"running"`
}

func (a *API) healthz(w http.ResponseWriter, r *http.Request) {
	a.s.mu.Lock()
	doc := healthDoc{OK: true, Queued: len(a.s.pending), Running: a.s.running}
	a.s.mu.Unlock()
	writeJSON(w, http.StatusOK, doc)
}
