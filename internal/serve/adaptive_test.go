package serve

import (
	"context"
	"strings"
	"testing"
	"time"

	"negfsim/internal/core"
	"negfsim/internal/egrid"
)

// An adaptive job through the scheduler: the dispatch runs the
// refinement loop and the result carries the grid state and report.
func TestAdaptiveJobDispatch(t *testing.T) {
	s := New(Config{MaxConcurrent: 1})
	defer s.Close(context.Background())
	cfg := testConfig(7, 6)
	cfg.Adapt = &core.AdaptSpec{Mode: "grid+sigma", TolCurrent: 1e-6}
	j, err := s.Submit(cfg)
	if err != nil {
		t.Fatal(err)
	}
	waitState(t, j, Succeeded, 60*time.Second)
	res, ok := j.Result()
	if !ok {
		t.Fatalf("no result: %+v", j.Status())
	}
	if res.Adapt == nil || res.EGrid == nil {
		t.Fatal("adaptive job result missing Adapt report / EGrid state")
	}
	if res.Adapt.Rounds < 1 || res.Adapt.PointsActive < 2 {
		t.Fatalf("implausible adapt report: %+v", res.Adapt)
	}
}

// DefaultAdapt is the daemon-wide policy: serial submissions without
// their own adapt block inherit it; explicit blocks (including "off")
// and non-serial runs do not.
func TestDefaultAdaptApplied(t *testing.T) {
	s := New(Config{MaxConcurrent: 1,
		DefaultAdapt: &core.AdaptSpec{Mode: "grid+sigma", TolCurrent: 1e-6}})
	defer s.Close(context.Background())

	j, err := s.Submit(testConfig(7, 6))
	if err != nil {
		t.Fatal(err)
	}
	waitState(t, j, Succeeded, 60*time.Second)
	res, _ := j.Result()
	if res == nil || res.Adapt == nil {
		t.Fatal("serial job did not inherit the daemon's adapt default")
	}

	off := testConfig(8, 2)
	off.Adapt = &core.AdaptSpec{Mode: "off"}
	j2, err := s.Submit(off)
	if err != nil {
		t.Fatal(err)
	}
	waitState(t, j2, Succeeded, 60*time.Second)
	res2, _ := j2.Result()
	if res2 == nil || res2.Adapt != nil {
		t.Fatal(`explicit "off" block must override the daemon default`)
	}

	dist := testConfig(9, 2)
	dist.Dist = "2x1"
	j3, err := s.Submit(dist)
	if err != nil {
		t.Fatal(err)
	}
	waitState(t, j3, Succeeded, 60*time.Second)
	res3, _ := j3.Result()
	if res3 == nil || res3.Adapt != nil {
		t.Fatal("distributed submission must not inherit the serial adapt default")
	}
}

// The warm-start grid gate: a partial-grid checkpoint (converged with
// interpolation-filled gaps) can only seed a run that itself adapts.
func TestSubmitFromRejectsPartialGridForUniformRun(t *testing.T) {
	s := New(Config{MaxConcurrent: 1})
	defer s.Close(context.Background())
	cfg := testConfig(7, 6)
	adaptive := cfg
	adaptive.Adapt = &core.AdaptSpec{Mode: "grid+sigma", TolCurrent: 1e-6}
	j, err := s.Submit(adaptive)
	if err != nil {
		t.Fatal(err)
	}
	waitState(t, j, Succeeded, 60*time.Second)
	res, _ := j.Result()
	if res == nil || res.EGrid == nil {
		t.Fatal("adaptive job produced no grid state")
	}
	ck := core.CheckpointOf(cfg.Device, res)
	if ck.EGrid.IsFull() {
		t.Skip("grid resolved to full on this device; the gate has nothing to reject")
	}

	if _, err := s.SubmitFrom(cfg, ck); err == nil {
		t.Fatal("partial-grid checkpoint seeded a uniform run")
	} else if !strings.Contains(err.Error(), "energy points active") {
		t.Fatalf("unexpected gate error: %v", err)
	}
	// The same checkpoint is a legal seed for an adaptive run…
	j2, err := s.SubmitFrom(adaptive, ck)
	if err != nil {
		t.Fatal(err)
	}
	waitState(t, j2, Succeeded, 60*time.Second)
	// …and a full-grid state passes the uniform gate.
	full := *ck
	full.EGrid = egrid.Uniform(cfg.Device.Grid().NE, cfg.Device.Grid().Emin, cfg.Device.Grid().Emax).State()
	if _, err := s.SubmitFrom(cfg, &full); err != nil {
		t.Fatalf("full-grid state rejected: %v", err)
	}
}
