package serve

import (
	"context"
	"math"
	"strings"
	"testing"
	"time"

	"negfsim/internal/core"
	"negfsim/internal/device"
	"negfsim/internal/obs"
)

func init() { obs.Enable() }

// testConfig is a seconds-scale job: a device small enough that a full
// self-consistent run is fast, but with every phase (RGF, SSE, mixing)
// exercised.
func testConfig(seed uint64, maxIter int) core.RunConfig {
	cfg := core.DefaultRunConfig()
	cfg.Device = device.WrapParams(device.Params{
		Nkz: 2, Nqz: 2, NE: 10, Nw: 3,
		NA: 12, NB: 3, Norb: 2, N3D: 3,
		Rows: 2, Bnum: 3,
		Emin: -1, Emax: 1, Seed: seed,
	})
	cfg.MaxIter = maxIter
	return cfg
}

// longConfig is a job that will not finish on its own before a test gets
// to cancel it: the (slower) default device, an unreachable tolerance and
// an iteration budget far past any test timeout.
func longConfig(seed uint64) core.RunConfig {
	cfg := core.DefaultRunConfig()
	g := cfg.Device.Grid()
	g.Seed = seed
	cfg.Device = device.WrapParams(g)
	cfg.MaxIter = 100_000
	cfg.Tol = 1e-300
	return cfg
}

// waitState blocks until the job reaches a terminal state or the deadline
// expires.
func waitState(t *testing.T, j *Job, want JobState, timeout time.Duration) {
	t.Helper()
	deadline := time.Now().Add(timeout)
	for time.Now().Before(deadline) {
		if st := j.Status().State; st == want {
			return
		} else if st == Succeeded || st == Failed || st == Cancelled {
			t.Fatalf("job %s reached terminal state %q, want %q (err %q)", j.ID(), st, want, j.Status().Error)
		}
		time.Sleep(2 * time.Millisecond)
	}
	t.Fatalf("job %s stuck in state %q, want %q within %v", j.ID(), j.Status().State, want, timeout)
}

// closeSched shuts a test scheduler down with a bounded grace period.
func closeSched(t *testing.T, s *Scheduler) {
	t.Helper()
	ctx, cancel := context.WithTimeout(context.Background(), 30*time.Second)
	defer cancel()
	if err := s.Close(ctx); err != nil {
		t.Errorf("Close: %v", err)
	}
}

// obsDiff returns the largest absolute difference across the scalar
// observables and the per-entry vectors of two runs.
func obsDiff(a, b core.Observables) float64 {
	d := 0.0
	acc := func(x, y float64) {
		if v := math.Abs(x - y); v > d {
			d = v
		}
	}
	acc(a.CurrentL, b.CurrentL)
	acc(a.CurrentR, b.CurrentR)
	acc(a.EnergyCurrentL, b.EnergyCurrentL)
	acc(a.EnergyCurrentR, b.EnergyCurrentR)
	acc(a.HeatL, b.HeatL)
	acc(a.HeatR, b.HeatR)
	for i := range a.CurrentPerEnergy {
		acc(a.CurrentPerEnergy[i], b.CurrentPerEnergy[i])
	}
	for i := range a.DissipationPerAtom {
		acc(a.DissipationPerAtom[i], b.DissipationPerAtom[i])
	}
	return d
}

// TestJobMatchesDirectRun pins the service-parity acceptance criterion:
// observables of a job executed by the scheduler match a direct
// Simulator.Run of the same config to 1e-8 (they are in fact the same code
// path, so the diff must be exactly zero).
func TestJobMatchesDirectRun(t *testing.T) {
	s := New(Config{MaxConcurrent: 1})
	defer closeSched(t, s)

	cfg := testConfig(11, 4)
	j, err := s.Submit(cfg)
	if err != nil {
		t.Fatal(err)
	}
	waitState(t, j, Succeeded, 60*time.Second)
	got, ok := j.Result()
	if !ok {
		t.Fatal("succeeded job has no result")
	}

	opts, err := cfg.Options()
	if err != nil {
		t.Fatal(err)
	}
	opts.Workers = s.PerJobWorkers()
	sim, err := cfg.NewSimulatorWith(opts)
	if err != nil {
		t.Fatal(err)
	}
	want, err := sim.Run()
	if err != nil {
		t.Fatal(err)
	}

	if got.Iterations != want.Iterations || got.Converged != want.Converged {
		t.Fatalf("run shape diverged: service %d/%v, direct %d/%v",
			got.Iterations, got.Converged, want.Iterations, want.Converged)
	}
	if d := obsDiff(got.Obs, want.Obs); d > 1e-8 {
		t.Errorf("observables diverged by %g between service and direct run", d)
	}
	if st := j.Status(); st.Iterations != got.Iterations {
		t.Errorf("streamed %d iteration records, result reports %d", st.Iterations, got.Iterations)
	}
}

// TestConcurrentJobsSharedPool is the multi-tenancy acceptance test: more
// concurrent jobs than the worker budget comfortably fits, all on the
// shared process pool, every result identical to its serial reference.
// Run under -race this also proves the scheduler and the pool are
// data-race free with at least 4 simulations in flight.
func TestConcurrentJobsSharedPool(t *testing.T) {
	const jobs = 6
	// Serial references first, one simulator at a time.
	want := make([]*core.Result, jobs)
	for i := 0; i < jobs; i++ {
		cfg := testConfig(uint64(100+i), 3)
		opts, err := cfg.Options()
		if err != nil {
			t.Fatal(err)
		}
		opts.Workers = 1
		sim, err := cfg.NewSimulatorWith(opts)
		if err != nil {
			t.Fatal(err)
		}
		want[i], err = sim.Run()
		if err != nil {
			t.Fatal(err)
		}
	}

	s := New(Config{MaxConcurrent: 4, QueueDepth: jobs})
	defer closeSched(t, s)
	admitted := make([]*Job, jobs)
	for i := range admitted {
		j, err := s.Submit(testConfig(uint64(100+i), 3))
		if err != nil {
			t.Fatal(err)
		}
		admitted[i] = j
	}
	for i, j := range admitted {
		waitState(t, j, Succeeded, 120*time.Second)
		got, ok := j.Result()
		if !ok {
			t.Fatalf("job %d has no result", i)
		}
		if got.Iterations != want[i].Iterations {
			t.Errorf("job %d: %d iterations, serial reference %d", i, got.Iterations, want[i].Iterations)
		}
		if d := obsDiff(got.Obs, want[i].Obs); d > 1e-8 {
			t.Errorf("job %d: observables diverged by %g from serial reference", i, d)
		}
	}
}

// TestCancelRunningJob pins the cancellation-latency criterion: a cancel
// lands within one Born iteration of a running job, the job reports
// Cancelled (not Failed), and its slot immediately serves the next queued
// job.
func TestCancelRunningJob(t *testing.T) {
	s := New(Config{MaxConcurrent: 1, QueueDepth: 4})
	defer closeSched(t, s)

	victim, err := s.Submit(longConfig(7))
	if err != nil {
		t.Fatal(err)
	}
	next, err := s.Submit(testConfig(8, 2))
	if err != nil {
		t.Fatal(err)
	}

	// Wait for the victim to produce at least one iteration, proving it is
	// genuinely mid-run when the cancel arrives.
	ctx, cancel := context.WithTimeout(context.Background(), 60*time.Second)
	defer cancel()
	if _, ok := victim.WaitIter(ctx, 0); !ok {
		t.Fatalf("victim produced no iterations (state %q)", victim.Status().State)
	}
	if _, err := s.Cancel(victim.ID()); err != nil {
		t.Fatal(err)
	}
	waitState(t, victim, Cancelled, 60*time.Second)
	if msg := victim.Status().Error; !strings.Contains(msg, "cancel") {
		t.Errorf("cancelled job error %q does not mention cancellation", msg)
	}

	// The freed slot must run the queued job to completion.
	waitState(t, next, Succeeded, 60*time.Second)
}

// TestCancelQueuedJobFreesSlot pins the admission-control interaction: a
// cancel of a queued job frees its queue slot synchronously, so a
// previously-rejected submission is admitted immediately after.
func TestCancelQueuedJobFreesSlot(t *testing.T) {
	s := New(Config{MaxConcurrent: 1, QueueDepth: 1})
	defer closeSched(t, s)

	running, err := s.Submit(longConfig(3))
	if err != nil {
		t.Fatal(err)
	}
	waitState(t, running, Running, 60*time.Second)

	queued, err := s.Submit(testConfig(4, 2))
	if err != nil {
		t.Fatal(err)
	}
	if _, err := s.Submit(testConfig(5, 2)); err != ErrQueueFull {
		t.Fatalf("third submit: err = %v, want ErrQueueFull", err)
	}

	if st, err := s.Cancel(queued.ID()); err != nil || st != Cancelled {
		t.Fatalf("cancel queued job: state %q, err %v", st, err)
	}
	admitted, err := s.Submit(testConfig(5, 2))
	if err != nil {
		t.Fatalf("submit after cancelling queued job: %v (slot not freed)", err)
	}

	if _, err := s.Cancel(running.ID()); err != nil {
		t.Fatal(err)
	}
	waitState(t, admitted, Succeeded, 60*time.Second)
}

// TestPerJobMetricsEvicted pins the per-job observability scoping: while a
// job is retained its labelled series are scraped, and eviction removes
// them so a long-lived daemon's registry does not grow without bound.
func TestPerJobMetricsEvicted(t *testing.T) {
	s := New(Config{MaxConcurrent: 1, Retain: 1})
	defer closeSched(t, s)

	first, err := s.Submit(testConfig(21, 2))
	if err != nil {
		t.Fatal(err)
	}
	waitState(t, first, Succeeded, 60*time.Second)

	var sb strings.Builder
	obs.WriteMetrics(&sb)
	if !strings.Contains(sb.String(), `job="`+first.ID()+`"`) {
		t.Fatalf("retained job %s has no labelled series in scrape", first.ID())
	}

	second, err := s.Submit(testConfig(22, 2))
	if err != nil {
		t.Fatal(err)
	}
	waitState(t, second, Succeeded, 60*time.Second)

	if _, ok := s.Get(first.ID()); ok {
		t.Fatalf("job %s still in store after eviction (Retain=1)", first.ID())
	}
	sb.Reset()
	obs.WriteMetrics(&sb)
	scrape := sb.String()
	if strings.Contains(scrape, `job="`+first.ID()+`"`) {
		t.Errorf("evicted job %s still has labelled series in scrape", first.ID())
	}
	if !strings.Contains(scrape, `job="`+second.ID()+`"`) {
		t.Errorf("retained job %s lost its labelled series", second.ID())
	}
}

// TestCloseCancelsEverything pins graceful shutdown: Close cancels the
// running job, cancels the queued ones, rejects new submissions, and
// returns once the runners have drained.
func TestCloseCancelsEverything(t *testing.T) {
	s := New(Config{MaxConcurrent: 1, QueueDepth: 4})

	running, err := s.Submit(longConfig(31))
	if err != nil {
		t.Fatal(err)
	}
	waitState(t, running, Running, 60*time.Second)
	queued, err := s.Submit(testConfig(32, 2))
	if err != nil {
		t.Fatal(err)
	}

	ctx, cancel := context.WithTimeout(context.Background(), 60*time.Second)
	defer cancel()
	if err := s.Close(ctx); err != nil {
		t.Fatalf("Close: %v", err)
	}
	if st := running.Status().State; st != Cancelled {
		t.Errorf("running job state after Close = %q, want cancelled", st)
	}
	if st := queued.Status().State; st != Cancelled {
		t.Errorf("queued job state after Close = %q, want cancelled", st)
	}
	if _, err := s.Submit(testConfig(33, 2)); err != ErrClosed {
		t.Errorf("submit after Close: err = %v, want ErrClosed", err)
	}
	if err := s.Close(context.Background()); err != nil {
		t.Errorf("second Close: %v", err)
	}
}

// TestWaitIterReplaysFromAnyIndex pins the streaming contract: every
// consumer replays the full iteration log regardless of when it attaches,
// and WaitIter reports completion (not a hang) past the end of a finished
// job.
func TestWaitIterReplaysFromAnyIndex(t *testing.T) {
	s := New(Config{MaxConcurrent: 1})
	defer closeSched(t, s)

	j, err := s.Submit(testConfig(41, 3))
	if err != nil {
		t.Fatal(err)
	}
	waitState(t, j, Succeeded, 60*time.Second)
	n := j.Status().Iterations
	if n == 0 {
		t.Fatal("job recorded no iterations")
	}
	ctx := context.Background()
	for i := 0; i < n; i++ {
		rec, ok := j.WaitIter(ctx, i)
		if !ok {
			t.Fatalf("WaitIter(%d) = done, want record", i)
		}
		if rec.Iter != i+1 {
			t.Fatalf("record %d has Iter %d, want %d", i, rec.Iter, i+1)
		}
	}
	if _, ok := j.WaitIter(ctx, n); ok {
		t.Errorf("WaitIter past the end of a finished job returned a record")
	}
	expired, cancel := context.WithCancel(context.Background())
	cancel()
	if _, ok := j.WaitIter(expired, n+1); ok {
		t.Errorf("WaitIter with cancelled context returned a record")
	}
}
