package sse

import (
	"negfsim/internal/cmat"
	"negfsim/internal/tensor"
)

// SigmaReference evaluates Eq. (3) with the naive dataflow of Fig. 8: a map
// over the full 8-D space [kz, E, qz, ω, i, j, a, b] in which both
// temporaries ∇H·G^≷ and ∇H·D^≷ are recomputed at every point. This is the
// SDFG produced directly from the Python source, before any transformation.
func (k *Kernel) SigmaReference(g *tensor.GTensor, d *PreD) *tensor.GTensor {
	p := k.Dev.P
	pref := k.sigmaPref()
	sigma := tensor.NewGTensor(p.Nkz, p.NE, p.NA, p.Norb)
	for kz := 0; kz < p.Nkz; kz++ {
		for e := 0; e < p.NE; e++ {
			for qz := 0; qz < p.Nqz; qz++ {
				for w := 0; w < p.Nw; w++ {
					e2 := e - p.PhononShift(w)
					if e2 < 0 {
						continue
					}
					k2 := wrapK(kz, qz, p.Nkz)
					for i := 0; i < p.N3D; i++ {
						for j := 0; j < p.N3D; j++ {
							for a := 0; a < p.NA; a++ {
								for b := 0; b < p.NB; b++ {
									f := k.Dev.Neigh[a][b]
									if f < 0 {
										continue
									}
									dHG := g.Block(k2, e2, f).Mul(k.dH[a][b][i])
									dHD := k.dH[a][b][j].Scale(d.At(qz, w, a, b, i, j))
									sigma.Block(kz, e, a).AddScaledInPlace(pref, dHG.Mul(dHD))
								}
							}
						}
					}
				}
			}
		}
	}
	return sigma
}

// SigmaOMEN evaluates Eq. (3) with the structure of the original C++ OMEN
// code: the bond loop outermost (as imposed by the three-level MPI
// decomposition), ∇H·G^≷ hoisted out of the innermost j loop, but still
// recomputed for every (qz, ω) pair — the redundancy the data-centric view
// exposes and removes.
//
// The ∇H·G^≷ recomputation is kept (it is what this variant demonstrates),
// but the many independent Norb×Norb products of one (bond, kz, E) point are
// dispatched as ONE batch over the worker pool, and every transient comes
// from the workspace arena. The accumulation runs in the original
// (qz, ω, i, j) order, so the values are bit-for-bit unchanged.
func (k *Kernel) SigmaOMEN(g *tensor.GTensor, d *PreD) *tensor.GTensor {
	p := k.Dev.P
	pref := k.sigmaPref()
	sigma := tensor.NewGTensor(p.Nkz, p.NE, p.NA, p.Norb)
	no := p.Norb
	nBatch := p.Nqz * p.Nw * p.N3D
	dHG := make([]*cmat.Dense, nBatch)
	for i := range dHG {
		dHG[i] = cmat.GetDense(no, no)
	}
	triples := make([]cmat.Triple, 0, nBatch)
	// gviews holds one block-view header per (qz, ω) pair of a point; the
	// headers are rebound every point, so the loop allocates nothing.
	gviews := make([]cmat.Dense, p.Nqz*p.Nw)
	var out cmat.Dense
	dHD := cmat.GetDense(no, no)
	t := cmat.GetDense(no, no)
	for a := 0; a < p.NA; a++ {
		for b := 0; b < p.NB; b++ {
			f := k.Dev.Neigh[a][b]
			if f < 0 {
				continue
			}
			for kz := 0; kz < p.Nkz; kz++ {
				for e := 0; e < p.NE; e++ {
					sigma.BlockInto(&out, kz, e, a)
					// Stage 1: every (qz, ω, i) product ∇iH·G^≷ of this point
					// is independent — one batched dispatch.
					triples = triples[:0]
					nv := 0
					for qz := 0; qz < p.Nqz; qz++ {
						k2 := wrapK(kz, qz, p.Nkz)
						for w := 0; w < p.Nw; w++ {
							e2 := e - p.PhononShift(w)
							if e2 < 0 {
								continue
							}
							gblk := &gviews[nv]
							nv++
							g.BlockInto(gblk, k2, e2, f)
							for i := 0; i < p.N3D; i++ {
								o := dHG[len(triples)]
								o.Zero()
								triples = append(triples, cmat.Triple{Out: o, A: gblk, B: k.dH[a][b][i]})
							}
						}
					}
					cmat.BatchMulAddInto(triples)
					// Stage 2: the j reduction, in the original order.
					idx := 0
					for qz := 0; qz < p.Nqz; qz++ {
						for w := 0; w < p.Nw; w++ {
							e2 := e - p.PhononShift(w)
							if e2 < 0 {
								continue
							}
							for i := 0; i < p.N3D; i++ {
								hg := dHG[idx]
								idx++
								for j := 0; j < p.N3D; j++ {
									dHD.CopyFrom(k.dH[a][b][j])
									dHD.ScaleInPlace(d.At(qz, w, a, b, i, j))
									hg.MulInto(t, dHD)
									out.AddScaledInPlace(pref, t)
								}
							}
						}
					}
				}
			}
		}
	}
	cmat.PutAll(dHG...)
	cmat.PutAll(dHD, t)
	return sigma
}

// SigmaDaCe evaluates Eq. (3) with the data-centric transformed kernel of
// Figs. 9–12:
//
//  1. Map fission splits the computation into the ∇H·G^≷ stage, the ∇H·D^≷
//     stage and the accumulation stage (Fig. 9).
//  2. Redundancy removal: ∇H·G^≷ is independent of (qz, ω) and computed
//     once per (a, b, i) over the whole (kz, E) grid (Fig. 10b).
//  3. Data-layout transformation: G^≷ is re-laid-out atom-major so that
//     stage is ONE (Nkz·NE·Norb) × Norb × Norb GEMM (Fig. 10c–d).
//  4. The j reduction is folded into the ∇H·D^≷ stage, and the accumulation
//     over ω becomes a windowed fused multiply over an Nω·Norb slab
//     (Fig. 11), re-fused per (a, b) to bound transient memory (Fig. 12).
func (k *Kernel) SigmaDaCe(g *tensor.GTensor, d *PreD) *tensor.GTensor {
	p := k.Dev.P
	pref := k.sigmaPref()
	sigma := tensor.NewGTensor(p.Nkz, p.NE, p.NA, p.Norb)
	am := g.ToAtomMajor() // Fig. 10(c): the data-layout transformation.
	no := p.Norb

	// Reusable per-bond transients (Fig. 12: three-dimensional, per (a,b)),
	// all drawn from the workspace arena.
	dHG := make([]*cmat.Dense, p.N3D)
	for i := range dHG {
		dHG[i] = cmat.GetDense(p.Nkz*p.NE*no, no)
	}
	dHD := make([][]*cmat.Dense, p.N3D) // [i][qz]: (Nω·Norb) × Norb stacks
	for i := range dHD {
		dHD[i] = make([]*cmat.Dense, p.Nqz)
		for qz := range dHD[i] {
			dHD[i][qz] = cmat.GetDense(p.Nw*no, no)
		}
	}

	var rowBlock, out, vb, cb cmat.Dense // reusable view headers
	for a := 0; a < p.NA; a++ {
		for b := 0; b < p.NB; b++ {
			f := k.Dev.Neigh[a][b]
			if f < 0 {
				continue
			}
			// Stage 1 (Fig. 10d): one fused GEMM per direction.
			for i := 0; i < p.N3D; i++ {
				am.Atom[f].MulInto(dHG[i], k.dH[a][b][i])
			}
			// Stage 2: ∇H·D^≷ with the j reduction folded in; the ω blocks
			// are stacked ascending-energy (descending ω) so stage 3 can
			// consume a contiguous window. The prefactor is folded in here.
			for i := 0; i < p.N3D; i++ {
				for qz := 0; qz < p.Nqz; qz++ {
					stack := dHD[i][qz]
					stack.Zero()
					for w := 0; w < p.Nw; w++ {
						cmat.ViewInto(&rowBlock, no, no,
							stack.Data[(p.Nw-1-w)*no*no:(p.Nw-w)*no*no])
						for j := 0; j < p.N3D; j++ {
							rowBlock.AddScaledInPlace(pref*d.At(qz, w, a, b, i, j), k.dH[a][b][j])
						}
					}
				}
			}
			// Stage 3 (Fig. 11c): windowed fused accumulation over ω.
			for i := 0; i < p.N3D; i++ {
				for qz := 0; qz < p.Nqz; qz++ {
					stack := dHD[i][qz]
					for kz := 0; kz < p.Nkz; kz++ {
						k2 := wrapK(kz, qz, p.Nkz)
						base := k2 * p.NE
						for e := 1; e < p.NE; e++ {
							smax := p.Nw
							if e < smax {
								smax = e
							}
							sigma.BlockInto(&out, kz, e, a)
							// Slab of ∇H·G^≷ at energies e−smax … e−1 and
							// the matching ∇H·D^≷ window (shift s = e−e').
							vlo := (base + e - smax) * no
							for t := 0; t < smax; t++ {
								cmat.ViewInto(&vb, no, no, dHG[i].Data[(vlo+t*no)*no:(vlo+(t+1)*no)*no])
								cmat.ViewInto(&cb, no, no, stack.Data[((p.Nw-smax)+t)*no*no:((p.Nw-smax)+t+1)*no*no])
								vb.MulAddInto(&out, &cb)
							}
						}
					}
				}
			}
		}
	}
	cmat.PutAll(dHG...)
	for i := range dHD {
		cmat.PutAll(dHD[i]...)
	}
	return sigma
}
