package sse

import (
	"negfsim/internal/cmat"
	"negfsim/internal/tensor"
)

// SigmaReference evaluates Eq. (3) with the naive dataflow of Fig. 8: a map
// over the full 8-D space [kz, E, qz, ω, i, j, a, b] in which both
// temporaries ∇H·G^≷ and ∇H·D^≷ are recomputed at every point. This is the
// SDFG produced directly from the Python source, before any transformation.
func (k *Kernel) SigmaReference(g *tensor.GTensor, d *PreD) *tensor.GTensor {
	p := k.Dev.P
	pref := k.sigmaPref()
	sigma := tensor.NewGTensor(p.Nkz, p.NE, p.NA, p.Norb)
	for kz := 0; kz < p.Nkz; kz++ {
		for e := 0; e < p.NE; e++ {
			for qz := 0; qz < p.Nqz; qz++ {
				for w := 0; w < p.Nw; w++ {
					e2 := e - p.PhononShift(w)
					if e2 < 0 {
						continue
					}
					k2 := wrapK(kz, qz, p.Nkz)
					for i := 0; i < p.N3D; i++ {
						for j := 0; j < p.N3D; j++ {
							for a := 0; a < p.NA; a++ {
								for b := 0; b < p.NB; b++ {
									f := k.Dev.Neigh[a][b]
									if f < 0 {
										continue
									}
									dHG := g.Block(k2, e2, f).Mul(k.dH[a][b][i])
									dHD := k.dH[a][b][j].Scale(d.At(qz, w, a, b, i, j))
									sigma.Block(kz, e, a).AddScaledInPlace(pref, dHG.Mul(dHD))
								}
							}
						}
					}
				}
			}
		}
	}
	return sigma
}

// SigmaOMEN evaluates Eq. (3) with the structure of the original C++ OMEN
// code: the bond loop outermost (as imposed by the three-level MPI
// decomposition), ∇H·G^≷ hoisted out of the innermost j loop, but still
// recomputed for every (qz, ω) pair — the redundancy the data-centric view
// exposes and removes.
func (k *Kernel) SigmaOMEN(g *tensor.GTensor, d *PreD) *tensor.GTensor {
	p := k.Dev.P
	pref := k.sigmaPref()
	sigma := tensor.NewGTensor(p.Nkz, p.NE, p.NA, p.Norb)
	for a := 0; a < p.NA; a++ {
		for b := 0; b < p.NB; b++ {
			f := k.Dev.Neigh[a][b]
			if f < 0 {
				continue
			}
			for kz := 0; kz < p.Nkz; kz++ {
				for e := 0; e < p.NE; e++ {
					out := sigma.Block(kz, e, a)
					for qz := 0; qz < p.Nqz; qz++ {
						k2 := wrapK(kz, qz, p.Nkz)
						for w := 0; w < p.Nw; w++ {
							e2 := e - p.PhononShift(w)
							if e2 < 0 {
								continue
							}
							gblk := g.Block(k2, e2, f)
							for i := 0; i < p.N3D; i++ {
								dHG := gblk.Mul(k.dH[a][b][i])
								for j := 0; j < p.N3D; j++ {
									dHD := k.dH[a][b][j].Scale(d.At(qz, w, a, b, i, j))
									out.AddScaledInPlace(pref, dHG.Mul(dHD))
								}
							}
						}
					}
				}
			}
		}
	}
	return sigma
}

// SigmaDaCe evaluates Eq. (3) with the data-centric transformed kernel of
// Figs. 9–12:
//
//  1. Map fission splits the computation into the ∇H·G^≷ stage, the ∇H·D^≷
//     stage and the accumulation stage (Fig. 9).
//  2. Redundancy removal: ∇H·G^≷ is independent of (qz, ω) and computed
//     once per (a, b, i) over the whole (kz, E) grid (Fig. 10b).
//  3. Data-layout transformation: G^≷ is re-laid-out atom-major so that
//     stage is ONE (Nkz·NE·Norb) × Norb × Norb GEMM (Fig. 10c–d).
//  4. The j reduction is folded into the ∇H·D^≷ stage, and the accumulation
//     over ω becomes a windowed fused multiply over an Nω·Norb slab
//     (Fig. 11), re-fused per (a, b) to bound transient memory (Fig. 12).
func (k *Kernel) SigmaDaCe(g *tensor.GTensor, d *PreD) *tensor.GTensor {
	p := k.Dev.P
	pref := k.sigmaPref()
	sigma := tensor.NewGTensor(p.Nkz, p.NE, p.NA, p.Norb)
	am := g.ToAtomMajor() // Fig. 10(c): the data-layout transformation.
	no := p.Norb

	// Reusable per-bond transients (Fig. 12: three-dimensional, per (a,b)).
	dHG := make([]*cmat.Dense, p.N3D)
	dHD := make([][]*cmat.Dense, p.N3D) // [i][qz]: (Nω·Norb) × Norb stacks
	for i := range dHD {
		dHD[i] = make([]*cmat.Dense, p.Nqz)
		for qz := range dHD[i] {
			dHD[i][qz] = cmat.NewDense(p.Nw*no, no)
		}
	}

	for a := 0; a < p.NA; a++ {
		for b := 0; b < p.NB; b++ {
			f := k.Dev.Neigh[a][b]
			if f < 0 {
				continue
			}
			// Stage 1 (Fig. 10d): one fused GEMM per direction.
			for i := 0; i < p.N3D; i++ {
				dHG[i] = am.Atom[f].Mul(k.dH[a][b][i])
			}
			// Stage 2: ∇H·D^≷ with the j reduction folded in; the ω blocks
			// are stacked ascending-energy (descending ω) so stage 3 can
			// consume a contiguous window. The prefactor is folded in here.
			for i := 0; i < p.N3D; i++ {
				for qz := 0; qz < p.Nqz; qz++ {
					stack := dHD[i][qz]
					stack.Zero()
					for w := 0; w < p.Nw; w++ {
						rowBlock := cmat.DenseFromSlice(no, no,
							stack.Data[(p.Nw-1-w)*no*no:(p.Nw-w)*no*no])
						for j := 0; j < p.N3D; j++ {
							rowBlock.AddScaledInPlace(pref*d.At(qz, w, a, b, i, j), k.dH[a][b][j])
						}
					}
				}
			}
			// Stage 3 (Fig. 11c): windowed fused accumulation over ω.
			for i := 0; i < p.N3D; i++ {
				for qz := 0; qz < p.Nqz; qz++ {
					stack := dHD[i][qz]
					for kz := 0; kz < p.Nkz; kz++ {
						k2 := wrapK(kz, qz, p.Nkz)
						base := k2 * p.NE
						for e := 1; e < p.NE; e++ {
							smax := p.Nw
							if e < smax {
								smax = e
							}
							out := sigma.Block(kz, e, a)
							// Slab of ∇H·G^≷ at energies e−smax … e−1 and
							// the matching ∇H·D^≷ window (shift s = e−e').
							vlo := (base + e - smax) * no
							slab := cmat.DenseFromSlice(smax*no, no,
								dHG[i].Data[vlo*no:(base+e)*no*no])
							win := cmat.DenseFromSlice(smax*no, no,
								stack.Data[(p.Nw-smax)*no*no:])
							for t := 0; t < smax; t++ {
								vb := cmat.DenseFromSlice(no, no, slab.Data[t*no*no:(t+1)*no*no])
								cb := cmat.DenseFromSlice(no, no, win.Data[t*no*no:(t+1)*no*no])
								vb.MulAddInto(out, cb)
							}
						}
					}
				}
			}
		}
	}
	return sigma
}
