package sse

import (
	"negfsim/internal/cmat"
	"negfsim/internal/tensor"
)

// Tile kernels: the communication-avoiding decomposition (§4.1) assigns
// each process an energy window × atom tile of the SSE output. These
// kernels compute exactly that tile, touching only the halo region of the
// inputs — energies [eLo−Nω, eHi) for Σ (the E−ℏω window), [eLo, eHi+Nω)
// for Π (the E+ℏω window), and the f(a, b) neighbor halo of the atom tile.
// The union of all tiles reproduces the full kernels exactly (tested), and
// the input footprint is the (NE/TE + 2Nω)·(NA/TA + NB) factor of the
// communication model.

// SigmaDaCeTile computes Σ^≷[kz, E, a] for E ∈ [eLo, eHi) and a ∈ [aLo,
// aHi) with the DaCe-transformed kernel. The output tensor is full-size
// with zeros outside the tile. g must hold valid data for energies
// [max(0, eLo−Nω), eHi) and for the tile's atoms plus their neighbors.
func (k *Kernel) SigmaDaCeTile(g *tensor.GTensor, d *PreD, eLo, eHi, aLo, aHi int) *tensor.GTensor {
	p := k.Dev.P
	pref := k.sigmaPref()
	sigma := tensor.NewGTensor(p.Nkz, p.NE, p.NA, p.Norb)
	no := p.Norb
	dHD := make([][]*cmat.Dense, p.N3D)
	for i := range dHD {
		dHD[i] = make([]*cmat.Dense, p.Nqz)
		for qz := range dHD[i] {
			dHD[i][qz] = cmat.NewDense(p.Nw*no, no)
		}
	}
	am := g.ToAtomMajor()
	for a := aLo; a < aHi; a++ {
		for b := 0; b < p.NB; b++ {
			f := k.Dev.Neigh[a][b]
			if f < 0 {
				continue
			}
			dHG := make([]*cmat.Dense, p.N3D)
			for i := 0; i < p.N3D; i++ {
				dHG[i] = am.Atom[f].Mul(k.dH[a][b][i])
			}
			for i := 0; i < p.N3D; i++ {
				for qz := 0; qz < p.Nqz; qz++ {
					stack := dHD[i][qz]
					stack.Zero()
					for w := 0; w < p.Nw; w++ {
						rowBlock := cmat.DenseFromSlice(no, no,
							stack.Data[(p.Nw-1-w)*no*no:(p.Nw-w)*no*no])
						for j := 0; j < p.N3D; j++ {
							rowBlock.AddScaledInPlace(pref*d.At(qz, w, a, b, i, j), k.dH[a][b][j])
						}
					}
				}
			}
			for i := 0; i < p.N3D; i++ {
				for qz := 0; qz < p.Nqz; qz++ {
					stack := dHD[i][qz]
					for kz := 0; kz < p.Nkz; kz++ {
						k2 := wrapK(kz, qz, p.Nkz)
						base := k2 * p.NE
						for e := max(eLo, 1); e < eHi; e++ {
							smax := p.Nw
							if e < smax {
								smax = e
							}
							out := sigma.Block(kz, e, a)
							vlo := (base + e - smax) * no
							for t := 0; t < smax; t++ {
								vb := cmat.DenseFromSlice(no, no, dHG[i].Data[(vlo+t*no)*no:(vlo+(t+1)*no)*no])
								cb := cmat.DenseFromSlice(no, no, stack.Data[((p.Nw-smax)+t)*no*no:((p.Nw-smax)+t+1)*no*no])
								vb.MulAddInto(out, cb)
							}
						}
					}
				}
			}
		}
	}
	return sigma
}

// PiDaCeTile computes the Π^≷ contributions of the trace terms whose
// unshifted energy E lies in [eLo, eHi) and whose atom a lies in [aLo,
// aHi). Because the (E, a) pairs partition across tiles, summing the
// returned tensors over all tiles reproduces PiDaCe exactly. g≷ must hold
// valid data for energies [eLo, eHi+Nω) and the tile's atoms plus halo.
func (k *Kernel) PiDaCeTile(gLess, gGtr *tensor.GTensor, eLo, eHi, aLo, aHi int) (piLess, piGtr *tensor.DTensor) {
	p := k.Dev.P
	pref := complex(0, k.piPref())
	piLess = tensor.NewDTensor(p.Nqz, p.Nw, p.NA, p.NB, p.N3D)
	piGtr = tensor.NewDTensor(p.Nqz, p.Nw, p.NA, p.NB, p.N3D)
	ne := eHi - eLo
	nke := p.Nkz * ne
	alloc := func() [][]*cmat.Dense {
		m := make([][]*cmat.Dense, p.N3D)
		for i := range m {
			m[i] = make([]*cmat.Dense, nke)
		}
		return m
	}
	wLess, wGtr := alloc(), alloc()
	for a := aLo; a < aHi; a++ {
		for b := 0; b < p.NB; b++ {
			f := k.Dev.Neigh[a][b]
			if f < 0 {
				continue
			}
			r := k.Dev.NeighborSlot(f, a)
			if r < 0 {
				continue
			}
			for kz := 0; kz < p.Nkz; kz++ {
				for e := eLo; e < eHi; e++ {
					idx := kz*ne + (e - eLo)
					for i := 0; i < p.N3D; i++ {
						wLess[i][idx] = k.dH[a][b][i].Mul(gLess.Block(kz, e, f))
						wGtr[i][idx] = k.dH[a][b][i].Mul(gGtr.Block(kz, e, f))
					}
				}
			}
			// U products at shifted energies (they live in the halo above
			// the tile), computed on demand and cached per bond.
			uLessCache := make([]map[int]*cmat.Dense, p.N3D)
			uGtrCache := make([]map[int]*cmat.Dense, p.N3D)
			for i := range uLessCache {
				uLessCache[i] = map[int]*cmat.Dense{}
				uGtrCache[i] = map[int]*cmat.Dense{}
			}
			for qz := 0; qz < p.Nqz; qz++ {
				for w := 0; w < p.Nw; w++ {
					shift := p.PhononShift(w)
					for kz := 0; kz < p.Nkz; kz++ {
						k2 := wrapK(kz, -qz, p.Nkz)
						for e := eLo; e < eHi && e+shift < p.NE; e++ {
							su := k2*p.NE + e + shift
							sw := kz*ne + (e - eLo)
							for i := 0; i < p.N3D; i++ {
								ul, ok := uLessCache[i][su]
								if !ok {
									ul = k.dH[f][r][i].Mul(gLess.Block(k2, e+shift, a))
									uLessCache[i][su] = ul
									uGtrCache[i][su] = k.dH[f][r][i].Mul(gGtr.Block(k2, e+shift, a))
								}
								ug := uGtrCache[i][su]
								for j := 0; j < p.N3D; j++ {
									piAccumulate(piLess, qz, w, a, b, i, j, p.NB, pref*ul.TraceMul(wGtr[j][sw]))
									piAccumulate(piGtr, qz, w, a, b, i, j, p.NB, pref*ug.TraceMul(wLess[j][sw]))
								}
							}
						}
					}
				}
			}
		}
	}
	return piLess, piGtr
}
