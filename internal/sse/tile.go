package sse

import (
	"negfsim/internal/cmat"
	"negfsim/internal/tensor"
)

// Tile kernels: the communication-avoiding decomposition (§4.1) assigns
// each process an energy window × atom tile of the SSE output. These
// kernels compute exactly that tile, touching only the halo region of the
// inputs — energies [eLo−Nω, eHi) for Σ (the E−ℏω window), [eLo, eHi+Nω)
// for Π (the E+ℏω window), and the f(a, b) neighbor halo of the atom tile.
// The union of all tiles reproduces the full kernels exactly (tested), and
// the input footprint is the (NE/TE + 2Nω)·(NA/TA + NB) factor of the
// communication model.

// SigmaDaCeTile computes Σ^≷[kz, E, a] for E ∈ [eLo, eHi) and a ∈ [aLo,
// aHi) with the DaCe-transformed kernel. The output tensor is full-size
// with zeros outside the tile. g must hold valid data for energies
// [max(0, eLo−Nω), eHi) and for the tile's atoms plus their neighbors.
func (k *Kernel) SigmaDaCeTile(g *tensor.GTensor, d *PreD, eLo, eHi, aLo, aHi int) *tensor.GTensor {
	p := k.Dev.P
	pref := k.sigmaPref()
	sigma := tensor.NewGTensor(p.Nkz, p.NE, p.NA, p.Norb)
	no := p.Norb
	dHD := make([][]*cmat.Dense, p.N3D)
	for i := range dHD {
		dHD[i] = make([]*cmat.Dense, p.Nqz)
		for qz := range dHD[i] {
			dHD[i][qz] = cmat.GetDense(p.Nw*no, no)
		}
	}
	dHG := make([]*cmat.Dense, p.N3D)
	for i := range dHG {
		dHG[i] = cmat.GetDense(p.Nkz*p.NE*no, no)
	}
	am := g.ToAtomMajor()
	var rowBlock, out, vb, cb cmat.Dense // reusable view headers
	for a := aLo; a < aHi; a++ {
		for b := 0; b < p.NB; b++ {
			f := k.Dev.Neigh[a][b]
			if f < 0 {
				continue
			}
			for i := 0; i < p.N3D; i++ {
				am.Atom[f].MulInto(dHG[i], k.dH[a][b][i])
			}
			for i := 0; i < p.N3D; i++ {
				for qz := 0; qz < p.Nqz; qz++ {
					stack := dHD[i][qz]
					stack.Zero()
					for w := 0; w < p.Nw; w++ {
						cmat.ViewInto(&rowBlock, no, no,
							stack.Data[(p.Nw-1-w)*no*no:(p.Nw-w)*no*no])
						for j := 0; j < p.N3D; j++ {
							rowBlock.AddScaledInPlace(pref*d.At(qz, w, a, b, i, j), k.dH[a][b][j])
						}
					}
				}
			}
			for i := 0; i < p.N3D; i++ {
				for qz := 0; qz < p.Nqz; qz++ {
					stack := dHD[i][qz]
					for kz := 0; kz < p.Nkz; kz++ {
						k2 := wrapK(kz, qz, p.Nkz)
						base := k2 * p.NE
						for e := max(eLo, 1); e < eHi; e++ {
							smax := p.Nw
							if e < smax {
								smax = e
							}
							sigma.BlockInto(&out, kz, e, a)
							vlo := (base + e - smax) * no
							for t := 0; t < smax; t++ {
								cmat.ViewInto(&vb, no, no, dHG[i].Data[(vlo+t*no)*no:(vlo+(t+1)*no)*no])
								cmat.ViewInto(&cb, no, no, stack.Data[((p.Nw-smax)+t)*no*no:((p.Nw-smax)+t+1)*no*no])
								vb.MulAddInto(&out, &cb)
							}
						}
					}
				}
			}
		}
	}
	cmat.PutAll(dHG...)
	for i := range dHD {
		cmat.PutAll(dHD[i]...)
	}
	return sigma
}

// PiDaCeTile computes the Π^≷ contributions of the trace terms whose
// unshifted energy E lies in [eLo, eHi) and whose atom a lies in [aLo,
// aHi). Because the (E, a) pairs partition across tiles, summing the
// returned tensors over all tiles reproduces PiDaCe exactly. g≷ must hold
// valid data for energies [eLo, eHi+Nω) and the tile's atoms plus halo.
func (k *Kernel) PiDaCeTile(gLess, gGtr *tensor.GTensor, eLo, eHi, aLo, aHi int) (piLess, piGtr *tensor.DTensor) {
	p := k.Dev.P
	pref := complex(0, k.piPref())
	piLess = tensor.NewDTensor(p.Nqz, p.Nw, p.NA, p.NB, p.N3D)
	piGtr = tensor.NewDTensor(p.Nqz, p.Nw, p.NA, p.NB, p.N3D)
	ne := eHi - eLo
	nke := p.Nkz * ne
	no := p.Norb
	alloc := func() [][]*cmat.Dense {
		m := make([][]*cmat.Dense, p.N3D)
		for i := range m {
			m[i] = make([]*cmat.Dense, nke)
			for s := range m[i] {
				m[i][s] = cmat.GetDense(no, no)
			}
		}
		return m
	}
	release := func(m [][]*cmat.Dense) {
		for i := range m {
			cmat.PutAll(m[i]...)
		}
	}
	wLess, wGtr := alloc(), alloc()
	var gvL, gvG cmat.Dense // reusable block-view headers
	for a := aLo; a < aHi; a++ {
		for b := 0; b < p.NB; b++ {
			f := k.Dev.Neigh[a][b]
			if f < 0 {
				continue
			}
			r := k.Dev.NeighborSlot(f, a)
			if r < 0 {
				continue
			}
			for kz := 0; kz < p.Nkz; kz++ {
				for e := eLo; e < eHi; e++ {
					idx := kz*ne + (e - eLo)
					gLess.BlockInto(&gvL, kz, e, f)
					gGtr.BlockInto(&gvG, kz, e, f)
					for i := 0; i < p.N3D; i++ {
						k.dH[a][b][i].MulInto(wLess[i][idx], &gvL)
						k.dH[a][b][i].MulInto(wGtr[i][idx], &gvG)
					}
				}
			}
			// U products at shifted energies (they live in the halo above
			// the tile), computed on demand and cached per bond; the cached
			// matrices go back to the arena when the bond is done.
			uLessCache := make([]map[int]*cmat.Dense, p.N3D)
			uGtrCache := make([]map[int]*cmat.Dense, p.N3D)
			for i := range uLessCache {
				uLessCache[i] = map[int]*cmat.Dense{}
				uGtrCache[i] = map[int]*cmat.Dense{}
			}
			for qz := 0; qz < p.Nqz; qz++ {
				for w := 0; w < p.Nw; w++ {
					shift := p.PhononShift(w)
					for kz := 0; kz < p.Nkz; kz++ {
						k2 := wrapK(kz, -qz, p.Nkz)
						for e := eLo; e < eHi && e+shift < p.NE; e++ {
							su := k2*p.NE + e + shift
							sw := kz*ne + (e - eLo)
							for i := 0; i < p.N3D; i++ {
								ul, ok := uLessCache[i][su]
								if !ok {
									ul = cmat.GetDense(no, no)
									k.dH[f][r][i].MulInto(ul, gLess.Block(k2, e+shift, a))
									uLessCache[i][su] = ul
									ug := cmat.GetDense(no, no)
									k.dH[f][r][i].MulInto(ug, gGtr.Block(k2, e+shift, a))
									uGtrCache[i][su] = ug
								}
								ug := uGtrCache[i][su]
								for j := 0; j < p.N3D; j++ {
									piAccumulate(piLess, qz, w, a, b, i, j, p.NB, pref*ul.TraceMul(wGtr[j][sw]))
									piAccumulate(piGtr, qz, w, a, b, i, j, p.NB, pref*ug.TraceMul(wLess[j][sw]))
								}
							}
						}
					}
				}
			}
			for i := range uLessCache {
				for _, m := range uLessCache[i] {
					cmat.PutDense(m)
				}
				for _, m := range uGtrCache[i] {
					cmat.PutDense(m)
				}
			}
		}
	}
	release(wLess)
	release(wGtr)
	return piLess, piGtr
}
