package sse

import (
	"negfsim/internal/cmat"
	"negfsim/internal/tensor"
)

// SigmaDaCeNoLayout is the ablation of the Fig. 10(c) data-layout
// transformation: identical algorithm to SigmaDaCe — map fission,
// redundancy removal, fused ω-window accumulation — but the ∇H·G^≷ stage
// reads G^≷ in its original (kz, E)-major layout, performing Nkz·NE small
// Norb³ multiplications per (bond, direction) instead of one fused
// (Nkz·NE·Norb) × Norb × Norb GEMM. Same values, same flop count, worse
// locality and call granularity — the quantity the ablation benchmark
// isolates.
func (k *Kernel) SigmaDaCeNoLayout(g *tensor.GTensor, d *PreD) *tensor.GTensor {
	p := k.Dev.P
	pref := k.sigmaPref()
	sigma := tensor.NewGTensor(p.Nkz, p.NE, p.NA, p.Norb)
	no := p.Norb
	dHD := make([][]*cmat.Dense, p.N3D)
	for i := range dHD {
		dHD[i] = make([]*cmat.Dense, p.Nqz)
		for qz := range dHD[i] {
			dHD[i][qz] = cmat.NewDense(p.Nw*no, no)
		}
	}
	dHG := make([]*cmat.Dense, p.N3D)
	for i := range dHG {
		dHG[i] = cmat.NewDense(p.Nkz*p.NE*no, no)
	}
	for a := 0; a < p.NA; a++ {
		for b := 0; b < p.NB; b++ {
			f := k.Dev.Neigh[a][b]
			if f < 0 {
				continue
			}
			// Stage 1 WITHOUT the layout transformation: one small product
			// per (kz, E) point, strided reads from the 5-D tensor.
			for i := 0; i < p.N3D; i++ {
				for kz := 0; kz < p.Nkz; kz++ {
					for e := 0; e < p.NE; e++ {
						row := (kz*p.NE + e) * no
						dst := cmat.DenseFromSlice(no, no, dHG[i].Data[row*no:(row+no)*no])
						g.Block(kz, e, f).MulInto(dst, k.dH[a][b][i])
					}
				}
			}
			for i := 0; i < p.N3D; i++ {
				for qz := 0; qz < p.Nqz; qz++ {
					stack := dHD[i][qz]
					stack.Zero()
					for w := 0; w < p.Nw; w++ {
						rowBlock := cmat.DenseFromSlice(no, no,
							stack.Data[(p.Nw-1-w)*no*no:(p.Nw-w)*no*no])
						for j := 0; j < p.N3D; j++ {
							rowBlock.AddScaledInPlace(pref*d.At(qz, w, a, b, i, j), k.dH[a][b][j])
						}
					}
				}
			}
			for i := 0; i < p.N3D; i++ {
				for qz := 0; qz < p.Nqz; qz++ {
					stack := dHD[i][qz]
					for kz := 0; kz < p.Nkz; kz++ {
						k2 := wrapK(kz, qz, p.Nkz)
						base := k2 * p.NE
						for e := 1; e < p.NE; e++ {
							smax := p.Nw
							if e < smax {
								smax = e
							}
							out := sigma.Block(kz, e, a)
							vlo := (base + e - smax) * no
							for t := 0; t < smax; t++ {
								vb := cmat.DenseFromSlice(no, no, dHG[i].Data[(vlo+t*no)*no:(vlo+(t+1)*no)*no])
								cb := cmat.DenseFromSlice(no, no, stack.Data[((p.Nw-smax)+t)*no*no:((p.Nw-smax)+t+1)*no*no])
								vb.MulAddInto(out, cb)
							}
						}
					}
				}
			}
		}
	}
	return sigma
}
