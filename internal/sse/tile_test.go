package sse

import (
	"math/rand"
	"testing"
)

func TestSigmaTilesCoverFullKernel(t *testing.T) {
	k := testKernel(t)
	p := k.Dev.P
	rng := rand.New(rand.NewSource(11))
	g := randomAntiHermG(rng, p)
	pre := k.PreprocessD(randomD(rng, p))
	full := k.SigmaDaCe(g, pre)
	// 2×2 tile grid over (energy, atoms).
	sum := k.SigmaDaCeTile(g, pre, 0, p.NE/2, 0, p.NA/2)
	for _, tile := range [][4]int{
		{0, p.NE / 2, p.NA / 2, p.NA},
		{p.NE / 2, p.NE, 0, p.NA / 2},
		{p.NE / 2, p.NE, p.NA / 2, p.NA},
	} {
		part := k.SigmaDaCeTile(g, pre, tile[0], tile[1], tile[2], tile[3])
		for i := range sum.Data {
			sum.Data[i] += part.Data[i]
		}
	}
	if d := full.MaxAbsDiff(sum); d > 1e-10*(1+gScale(full)) {
		t.Fatalf("tile union differs from full Σ by %g", d)
	}
}

func TestSigmaTileIsExactSlice(t *testing.T) {
	// A single tile must equal the corresponding slice of the full result,
	// not an approximation: the halo covers every needed input.
	k := testKernel(t)
	p := k.Dev.P
	rng := rand.New(rand.NewSource(12))
	g := randomAntiHermG(rng, p)
	pre := k.PreprocessD(randomD(rng, p))
	full := k.SigmaDaCe(g, pre)
	eLo, eHi, aLo, aHi := p.NE/4, 3*p.NE/4, p.NA/4, 3*p.NA/4
	tile := k.SigmaDaCeTile(g, pre, eLo, eHi, aLo, aHi)
	for kz := 0; kz < p.Nkz; kz++ {
		for e := 0; e < p.NE; e++ {
			for a := 0; a < p.NA; a++ {
				inside := e >= eLo && e < eHi && a >= aLo && a < aHi
				d := tile.Block(kz, e, a).MaxAbsDiff(full.Block(kz, e, a))
				if inside && d > 1e-10*(1+gScale(full)) {
					t.Fatalf("tile wrong inside at (%d,%d,%d): %g", kz, e, a, d)
				}
				if !inside && tile.Block(kz, e, a).MaxAbs() != 0 {
					t.Fatalf("tile nonzero outside at (%d,%d,%d)", kz, e, a)
				}
			}
		}
	}
}

func TestPiTilesSumToFullKernel(t *testing.T) {
	k := testKernel(t)
	p := k.Dev.P
	rng := rand.New(rand.NewSource(13))
	gl := randomAntiHermG(rng, p)
	gg := randomAntiHermG(rng, p)
	fullL, fullG := k.PiDaCe(gl, gg)
	sumL, sumG := k.PiDaCeTile(gl, gg, 0, p.NE/2, 0, p.NA/2)
	for _, tile := range [][4]int{
		{0, p.NE / 2, p.NA / 2, p.NA},
		{p.NE / 2, p.NE, 0, p.NA / 2},
		{p.NE / 2, p.NE, p.NA / 2, p.NA},
	} {
		pl, pg := k.PiDaCeTile(gl, gg, tile[0], tile[1], tile[2], tile[3])
		for i := range sumL.Data {
			sumL.Data[i] += pl.Data[i]
			sumG.Data[i] += pg.Data[i]
		}
	}
	// Tile sums accumulate in a different order than the full kernel, so
	// agreement is to rounding at the tensor's scale, not bit-exact.
	var scale float64
	for _, v := range fullL.Data {
		if a := cmplxAbs(v); a > scale {
			scale = a
		}
	}
	if d := fullL.MaxAbsDiff(sumL); d > 1e-9*(1+scale) {
		t.Fatalf("Π^< tile sum differs by %g (scale %g)", d, scale)
	}
	if d := fullG.MaxAbsDiff(sumG); d > 1e-9*(1+scale) {
		t.Fatalf("Π^> tile sum differs by %g (scale %g)", d, scale)
	}
}

func TestSigmaTileUsesOnlyHaloInputs(t *testing.T) {
	// Poison G outside the documented halo (energy window [eLo−Nω, eHi),
	// atoms in the tile's neighbor set); the tile result must be unchanged.
	k := testKernel(t)
	p := k.Dev.P
	rng := rand.New(rand.NewSource(14))
	g := randomAntiHermG(rng, p)
	pre := k.PreprocessD(randomD(rng, p))
	eLo, eHi, aLo, aHi := p.NE/2, p.NE, 0, p.NA/2
	want := k.SigmaDaCeTile(g, pre, eLo, eHi, aLo, aHi)

	// Atom halo: the tile's atoms and their neighbors.
	halo := map[int]bool{}
	for a := aLo; a < aHi; a++ {
		halo[a] = true
		for _, f := range k.Dev.Neigh[a] {
			if f >= 0 {
				halo[f] = true
			}
		}
	}
	poisoned := g.Clone()
	for kz := 0; kz < p.Nkz; kz++ {
		for e := 0; e < p.NE; e++ {
			for a := 0; a < p.NA; a++ {
				if e >= eLo-p.Nw && e < eHi && halo[a] {
					continue
				}
				blk := poisoned.Block(kz, e, a)
				for i := range blk.Data {
					blk.Data[i] = complex(1e6, -1e6)
				}
			}
		}
	}
	got := k.SigmaDaCeTile(poisoned, pre, eLo, eHi, aLo, aHi)
	if d := want.MaxAbsDiff(got); d != 0 {
		t.Fatalf("tile read outside its halo (diff %g)", d)
	}
}
