package sse

import (
	"math/rand"
	"testing"
	"testing/quick"
)

// Eq. (3) is bilinear: Σ is linear in G^≷ at fixed D^≷ and linear in D^≷
// at fixed G^≷. These properties pin the kernels against sign/prefactor
// regressions independent of any reference implementation.

func TestSigmaLinearInD(t *testing.T) {
	k := testKernel(t)
	p := k.Dev.P
	f := func(seed int64, scaleBits uint8) bool {
		rng := rand.New(rand.NewSource(seed))
		g := randomAntiHermG(rng, p)
		d := randomD(rng, p)
		alpha := complex(float64(scaleBits%7)+1, float64(scaleBits%3))
		pre := k.PreprocessD(d)
		scaled := d.Clone()
		for i := range scaled.Data {
			scaled.Data[i] *= alpha
		}
		preScaled := k.PreprocessD(scaled)
		want := k.SigmaDaCe(g, pre)
		for i := range want.Data {
			want.Data[i] *= alpha
		}
		got := k.SigmaDaCe(g, preScaled)
		return got.MaxAbsDiff(want) <= 1e-9*(1+gScale(want))
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 5}); err != nil {
		t.Fatal(err)
	}
}

func TestSigmaAdditiveInG(t *testing.T) {
	k := testKernel(t)
	p := k.Dev.P
	rng := rand.New(rand.NewSource(81))
	g1 := randomAntiHermG(rng, p)
	g2 := randomAntiHermG(rng, p)
	pre := k.PreprocessD(randomD(rng, p))
	sum := g1.Clone()
	for i := range sum.Data {
		sum.Data[i] += g2.Data[i]
	}
	want := k.SigmaDaCe(g1, pre)
	s2 := k.SigmaDaCe(g2, pre)
	for i := range want.Data {
		want.Data[i] += s2.Data[i]
	}
	got := k.SigmaDaCe(sum, pre)
	if d := got.MaxAbsDiff(want); d > 1e-9*(1+gScale(want)) {
		t.Fatalf("Σ(g1+g2) != Σ(g1)+Σ(g2): diff %g", d)
	}
}

func TestPiBilinearScaling(t *testing.T) {
	// Π(αG^<, βG^>) scales each component by α·β (one factor from each
	// Green's function in the trace).
	k := testKernel(t)
	p := k.Dev.P
	rng := rand.New(rand.NewSource(82))
	gl := randomAntiHermG(rng, p)
	gg := randomAntiHermG(rng, p)
	const alpha, beta = 2.0, 3.0
	glS := gl.Clone()
	ggS := gg.Clone()
	for i := range glS.Data {
		glS.Data[i] *= alpha
		ggS.Data[i] *= beta
	}
	wantL, wantG := k.PiDaCe(gl, gg)
	for i := range wantL.Data {
		wantL.Data[i] *= alpha * beta
		wantG.Data[i] *= alpha * beta
	}
	gotL, gotG := k.PiDaCe(glS, ggS)
	if d := gotL.MaxAbsDiff(wantL); d > 1e-9 {
		t.Fatalf("Π^< bilinearity violated: %g", d)
	}
	if d := gotG.MaxAbsDiff(wantG); d > 1e-9 {
		t.Fatalf("Π^> bilinearity violated: %g", d)
	}
}

func TestSigmaZeroInputs(t *testing.T) {
	k := testKernel(t)
	p := k.Dev.P
	rng := rand.New(rand.NewSource(83))
	g := randomAntiHermG(rng, p)
	zero := k.PreprocessD(randomD(rng, p))
	for i := range zero.Data {
		zero.Data[i] = 0
	}
	sig := k.SigmaDaCe(g, zero)
	for _, v := range sig.Data {
		if v != 0 {
			t.Fatal("zero phonons must give zero Σ")
		}
	}
}
