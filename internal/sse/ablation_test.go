package sse

import (
	"math/rand"
	"testing"
)

func TestSigmaDaCeNoLayoutMatches(t *testing.T) {
	k := testKernel(t)
	p := k.Dev.P
	rng := rand.New(rand.NewSource(61))
	g := randomAntiHermG(rng, p)
	pre := k.PreprocessD(randomD(rng, p))
	want := k.SigmaDaCe(g, pre)
	got := k.SigmaDaCeNoLayout(g, pre)
	if d := want.MaxAbsDiff(got); d > 1e-10*(1+gScale(want)) {
		t.Fatalf("no-layout ablation differs by %g", d)
	}
}
