package sse

import (
	"math"
	"math/rand"
	"testing"

	"negfsim/internal/cmat"
	"negfsim/internal/device"
	"negfsim/internal/tensor"
)

func cmplxAbs(v complex128) float64 {
	return math.Hypot(real(v), imag(v))
}

// gScale returns the largest element magnitude of a tensor, the reference
// scale for relative comparisons between kernel variants (their summation
// orders differ, so agreement is to rounding, not bit-exact).
func gScale(g *tensor.GTensor) float64 {
	var m float64
	for _, v := range g.Data {
		if a := cmplxAbs(v); a > m {
			m = a
		}
	}
	return m
}

func testKernel(t *testing.T) *Kernel {
	t.Helper()
	d, err := device.New(device.Mini())
	if err != nil {
		t.Fatal(err)
	}
	return NewKernel(d)
}

// randomAntiHermG fills an electron tensor with anti-Hermitian blocks, the
// structure physical G^≷ have.
func randomAntiHermG(rng *rand.Rand, p device.Params) *tensor.GTensor {
	g := tensor.NewGTensor(p.Nkz, p.NE, p.NA, p.Norb)
	for kz := 0; kz < p.Nkz; kz++ {
		for e := 0; e < p.NE; e++ {
			for a := 0; a < p.NA; a++ {
				h := cmat.RandomHermitian(rng, p.Norb, 0)
				g.Block(kz, e, a).CopyFrom(h.Scale(1i))
			}
		}
	}
	return g
}

func randomD(rng *rand.Rand, p device.Params) *tensor.DTensor {
	d := tensor.NewDTensor(p.Nqz, p.Nw, p.NA, p.NB, p.N3D)
	for i := range d.Data {
		d.Data[i] = complex(rng.Float64()-0.5, rng.Float64()-0.5)
	}
	return d
}

func TestPreprocessDCombination(t *testing.T) {
	k := testKernel(t)
	p := k.Dev.P
	rng := rand.New(rand.NewSource(1))
	d := randomD(rng, p)
	pre := k.PreprocessD(d)
	// Check one interior bond explicitly against the Eq. (3) combination.
	a := p.NA / 2
	b := 0
	f := k.Dev.Neigh[a][b]
	r := k.Dev.NeighborSlot(f, a)
	if f < 0 || r < 0 {
		t.Fatal("expected interior bond with reverse slot")
	}
	for i := 0; i < p.N3D; i++ {
		for j := 0; j < p.N3D; j++ {
			want := d.Block(1, 2, f, r).At(i, j) - d.Block(1, 2, f, p.NB).At(i, j) -
				d.Block(1, 2, a, p.NB).At(i, j) + d.Block(1, 2, a, b).At(i, j)
			if got := pre.At(1, 2, a, b, i, j); cmplxAbs(got-want) > 1e-14 {
				t.Fatalf("PreD(%d,%d) = %v, want %v", i, j, got, want)
			}
		}
	}
}

// The heart of the paper: the transformed kernels must compute exactly what
// the naive dataflow computes. The next two tests pin OMEN and DaCe to the
// Fig. 8 reference.
func TestSigmaOMENMatchesReference(t *testing.T) {
	k := testKernel(t)
	p := k.Dev.P
	rng := rand.New(rand.NewSource(2))
	g := randomAntiHermG(rng, p)
	pre := k.PreprocessD(randomD(rng, p))
	ref := k.SigmaReference(g, pre)
	omen := k.SigmaOMEN(g, pre)
	if d := ref.MaxAbsDiff(omen); d > 1e-9*(1+gScale(ref)) {
		t.Fatalf("OMEN Σ differs from reference by %g (scale %g)", d, gScale(ref))
	}
}

func TestSigmaDaCeMatchesReference(t *testing.T) {
	k := testKernel(t)
	p := k.Dev.P
	rng := rand.New(rand.NewSource(3))
	g := randomAntiHermG(rng, p)
	pre := k.PreprocessD(randomD(rng, p))
	ref := k.SigmaReference(g, pre)
	dace := k.SigmaDaCe(g, pre)
	if d := ref.MaxAbsDiff(dace); d > 1e-9*(1+gScale(ref)) {
		t.Fatalf("DaCe Σ differs from reference by %g (scale %g)", d, gScale(ref))
	}
}

func TestSigmaNonzeroAndLocalized(t *testing.T) {
	k := testKernel(t)
	p := k.Dev.P
	rng := rand.New(rand.NewSource(4))
	g := randomAntiHermG(rng, p)
	pre := k.PreprocessD(randomD(rng, p))
	sig := k.SigmaDaCe(g, pre)
	var norm float64
	for _, v := range sig.Data {
		norm += real(v)*real(v) + imag(v)*imag(v)
	}
	if norm == 0 {
		t.Fatal("Σ must be nonzero for nonzero inputs")
	}
	// Energy causality of the kernel: E=0 receives no contribution because
	// every phonon shift moves at least one grid step down.
	for kz := 0; kz < p.Nkz; kz++ {
		for a := 0; a < p.NA; a++ {
			if k.SigmaDaCe(g, pre).Block(kz, 0, a).MaxAbs() != 0 {
				t.Fatal("Σ at the lowest energy must vanish (no E−ω point on the grid)")
			}
		}
	}
}

func TestPiVariantsAgree(t *testing.T) {
	k := testKernel(t)
	p := k.Dev.P
	rng := rand.New(rand.NewSource(5))
	gl := randomAntiHermG(rng, p)
	gg := randomAntiHermG(rng, p)
	refL, refG := k.PiReference(gl, gg)
	omenL, omenG := k.PiOMEN(gl, gg)
	daceL, daceG := k.PiDaCe(gl, gg)
	if d := refL.MaxAbsDiff(omenL); d > 1e-12 {
		t.Fatalf("OMEN Π^< differs from reference by %g", d)
	}
	if d := refG.MaxAbsDiff(omenG); d > 1e-12 {
		t.Fatalf("OMEN Π^> differs from reference by %g", d)
	}
	if d := refL.MaxAbsDiff(daceL); d > 1e-12 {
		t.Fatalf("DaCe Π^< differs from reference by %g", d)
	}
	if d := refG.MaxAbsDiff(daceG); d > 1e-12 {
		t.Fatalf("DaCe Π^> differs from reference by %g", d)
	}
}

func TestPiDiagonalIsMinusSumOfTraceContributions(t *testing.T) {
	// Eq. (4) vs Eq. (5): the diagonal slot must equal minus the sum of the
	// off-diagonal slots for atoms whose every bond has a reverse slot.
	k := testKernel(t)
	p := k.Dev.P
	rng := rand.New(rand.NewSource(6))
	gl := randomAntiHermG(rng, p)
	gg := randomAntiHermG(rng, p)
	piL, _ := k.PiDaCe(gl, gg)
	a := p.NA / 2 // interior atom: full neighbor list with reverse slots
	for b := 0; b < p.NB; b++ {
		f := k.Dev.Neigh[a][b]
		if f < 0 || k.Dev.NeighborSlot(f, a) < 0 {
			t.Skip("interior atom unexpectedly missing reverse bonds")
		}
	}
	for qz := 0; qz < p.Nqz; qz++ {
		for w := 0; w < p.Nw; w++ {
			sum := cmat.NewDense(p.N3D, p.N3D)
			for b := 0; b < p.NB; b++ {
				sum.AddInPlace(piL.Block(qz, w, a, b))
			}
			diag := piL.Block(qz, w, a, p.NB)
			if d := sum.Scale(-1).MaxAbsDiff(diag); d > 1e-12 {
				t.Fatalf("(qz=%d, ω=%d): Π diag != −Σ_b Π offdiag, diff %g", qz, w, d)
			}
		}
	}
}

func TestComputePhaseVariantsAgree(t *testing.T) {
	k := testKernel(t)
	p := k.Dev.P
	rng := rand.New(rand.NewSource(7))
	in := PhaseInput{
		GLess: randomAntiHermG(rng, p), GGtr: randomAntiHermG(rng, p),
		DLess: randomD(rng, p), DGtr: randomD(rng, p),
	}
	ref := k.ComputePhase(in, Reference)
	for _, v := range []Variant{OMEN, DaCe} {
		got := k.ComputePhase(in, v)
		tol := 1e-9 * (1 + gScale(ref.SigmaLess))
		if d := ref.SigmaLess.MaxAbsDiff(got.SigmaLess); d > tol {
			t.Fatalf("%v Σ^< diff %g", v, d)
		}
		if d := ref.SigmaGtr.MaxAbsDiff(got.SigmaGtr); d > tol {
			t.Fatalf("%v Σ^> diff %g", v, d)
		}
		if d := ref.PiLess.MaxAbsDiff(got.PiLess); d > 1e-12 {
			t.Fatalf("%v Π^< diff %g", v, d)
		}
		if d := ref.PiGtr.MaxAbsDiff(got.PiGtr); d > 1e-12 {
			t.Fatalf("%v Π^> diff %g", v, d)
		}
	}
}

func TestRetardedRelation(t *testing.T) {
	k := testKernel(t)
	p := k.Dev.P
	rng := rand.New(rand.NewSource(8))
	less := randomAntiHermG(rng, p)
	gtr := randomAntiHermG(rng, p)
	r := Retarded(less, gtr)
	for i := range r.Data {
		want := 0.5 * (gtr.Data[i] - less.Data[i])
		if r.Data[i] != want {
			t.Fatal("Σ^R != (Σ^> − Σ^<)/2")
		}
	}
	dl := randomD(rng, p)
	dg := randomD(rng, p)
	rd := RetardedD(dl, dg)
	for i := range rd.Data {
		if rd.Data[i] != 0.5*(dg.Data[i]-dl.Data[i]) {
			t.Fatal("Π^R != (Π^> − Π^<)/2")
		}
	}
}

func TestAntiHermitize(t *testing.T) {
	k := testKernel(t)
	p := k.Dev.P
	rng := rand.New(rand.NewSource(9))
	g := tensor.NewGTensor(p.Nkz, p.NE, p.NA, p.Norb)
	for i := range g.Data {
		g.Data[i] = complex(rng.Float64(), rng.Float64())
	}
	AntiHermitize(g)
	for kz := 0; kz < p.Nkz; kz++ {
		for e := 0; e < p.NE; e++ {
			for a := 0; a < p.NA; a++ {
				blk := g.Block(kz, e, a)
				if blk.Add(blk.ConjTranspose()).MaxAbs() > 1e-14 {
					t.Fatal("block not anti-Hermitian after projection")
				}
			}
		}
	}
}

func TestFlopFormulasMatchTable3(t *testing.T) {
	// Table 3, Nkz ∈ {3,...,11}: the paper prints OMEN 24.41/67.80/132.89/
	// 219.67/328.15 Pflop and DaCe 12.38/34.19/66.85/110.36/164.71 Pflop.
	p := device.Paper4864(3)
	omen := SigmaFlopsOMEN(p) / 1e15
	dace := SigmaFlopsDaCe(p) / 1e15
	if math.Abs(omen-24.41) > 0.25 {
		t.Fatalf("OMEN Pflop at Nkz=3: got %.2f, Table 3 says 24.41", omen)
	}
	if math.Abs(dace-12.38) > 0.35 {
		t.Fatalf("DaCe Pflop at Nkz=3: got %.2f, Table 3 says 12.38", dace)
	}
	// Scaling shape across the Table 3 sweep: quadratic in Nkz, DaCe ≈ ½ OMEN.
	for _, nkz := range []int{5, 7, 9, 11} {
		pp := device.Paper4864(nkz)
		ratio := SigmaFlopsDaCe(pp) / SigmaFlopsOMEN(pp)
		if ratio < 0.49 || ratio > 0.52 {
			t.Fatalf("Nkz=%d: DaCe/OMEN flop ratio %.3f, want ≈ 0.5", nkz, ratio)
		}
	}
}

func TestMeasuredFlopsMatchModel(t *testing.T) {
	// cmat.Counter measurements of our kernels must track the analytic model
	// to within the edge-atom correction.
	k := testKernel(t)
	p := k.Dev.P
	rng := rand.New(rand.NewSource(10))
	g := randomAntiHermG(rng, p)
	pre := k.PreprocessD(randomD(rng, p))
	for _, v := range []Variant{Reference, OMEN, DaCe} {
		cmat.Counter.Reset()
		switch v {
		case Reference:
			k.SigmaReference(g, pre)
		case OMEN:
			k.SigmaOMEN(g, pre)
		case DaCe:
			k.SigmaDaCe(g, pre)
		}
		got := float64(cmat.Counter.Reset())
		model := SigmaFlopsMeasuredModel(p, v)
		// Mini has edge atoms with missing neighbors, so measured ≤ model,
		// but within a factor reflecting the boundary fraction.
		if got > model*1.001 || got < model*0.5 {
			t.Fatalf("%v: measured %g flops vs model %g", v, got, model)
		}
	}
}

func TestVariantString(t *testing.T) {
	if Reference.String() != "Reference" || OMEN.String() != "OMEN" || DaCe.String() != "DaCe" {
		t.Fatal("variant names")
	}
	if Variant(99).String() == "" {
		t.Fatal("unknown variant should still print")
	}
}
