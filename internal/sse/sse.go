// Package sse implements the scattering self-energy phase of the simulator:
// the electron self-energies Σ^≷ of Eq. (3) and the phonon self-energies
// Π^≷ of Eqs. (4)–(5), in three algorithmic variants:
//
//   - Reference: the naive 8-dimensional map of Fig. 8, exactly as parsed
//     from the Python source — every temporary recomputed at every point.
//   - OMEN: the hand-optimized structure of the original C++ code — ∇H·G
//     hoisted out of the innermost vibration-direction loop, but still
//     recomputed for every (qz, ω) pair.
//   - DaCe: the data-centric transformed kernel of Figs. 9–12 — map fission,
//     redundancy removal (∇H·G computed once per bond and direction for the
//     whole (kz, E) grid as one fused GEMM), data-layout transformation to
//     atom-major storage, and fused windowed accumulation over ω.
//
// All variants compute identical values (verified by tests); they differ in
// data movement and flop count, which is the point of the paper.
//
// Index semantics (OMEN's commensurate-grid convention): momentum
// differences wrap modulo Nkz (periodic z axis); phonon energies are
// (w+1)·ΔE so energy shifts are integer grid displacements; contributions
// whose shifted energy falls off the grid are dropped.
package sse

import (
	"fmt"
	"math"

	"negfsim/internal/cmat"
	"negfsim/internal/device"
	"negfsim/internal/obs"
	"negfsim/internal/tensor"
)

// Phase timers of the SSE phase, shared by the serial, shared-memory
// parallel and distributed execution paths (core's distributed tiles record
// on the same names). For parallel tiles the totals are cumulative across
// workers, so they can exceed elapsed wall clock.
var (
	obsSpanPreprocess = obs.GetTimer("sse.preprocess")
	obsSpanSigma      = obs.GetTimer("sse.sigma")
	obsSpanPi         = obs.GetTimer("sse.pi")
)

// Variant selects the algorithmic formulation of the SSE kernels.
type Variant int

const (
	// Reference is the naive dataflow of Fig. 8.
	Reference Variant = iota
	// OMEN is the hand-tuned original C++ structure.
	OMEN
	// DaCe is the data-centric transformed kernel (Figs. 9–12).
	DaCe
)

// String returns the variant name used in tables and benchmarks.
func (v Variant) String() string {
	switch v {
	case Reference:
		return "Reference"
	case OMEN:
		return "OMEN"
	case DaCe:
		return "DaCe"
	}
	return fmt.Sprintf("Variant(%d)", int(v))
}

// Kernel carries the structure-dependent inputs of the SSE phase: the
// neighbor map and the Hamiltonian derivatives ∇H.
type Kernel struct {
	Dev *device.Device
	dH  [][][]*cmat.Dense // [atom][neighbor slot][direction], nil at edges
}

// NewKernel precomputes ∇H for the device.
func NewKernel(dev *device.Device) *Kernel {
	return &Kernel{Dev: dev, dH: dev.GradHAll()}
}

// sigmaPref is the prefactor i·ΔE/(2π·Nqz) of the discretized Eq. (3):
// i from the equation, ΔE/2π from the frequency integral (commensurate
// grid), 1/Nqz from the momentum-zone average.
func (k *Kernel) sigmaPref() complex128 {
	p := k.Dev.P
	return complex(0, p.EStep()/(2*math.Pi*float64(p.Nqz)))
}

// piPref is the magnitude of the prefactor ΔE/(2π·Nkz) of Eqs. (4)–(5);
// the diagonal term carries −i, the off-diagonal +i.
func (k *Kernel) piPref() float64 {
	p := k.Dev.P
	return p.EStep() / (2 * math.Pi * float64(p.Nkz))
}

// wrapK returns (k − q) mod Nkz ≥ 0.
func wrapK(k, q, nkz int) int { return ((k-q)%nkz + nkz) % nkz }

// PreD is the preprocessed phonon Green's function of Eq. (3): for every
// (qz, ω, a, b, i, j) the scalar combination
//
//	D^≷ij_ba − D^≷ij_bb − D^≷ij_aa + D^≷ij_ab,
//
// stored as a flat 6-D array with NB neighbor slots (no self slot).
type PreD struct {
	Nqz, Nw, NA, NB, N3D int
	Data                 []complex128
}

// At returns the preprocessed value at (qz, w, a, b, i, j).
func (p *PreD) At(qz, w, a, b, i, j int) complex128 {
	return p.Data[((((qz*p.Nw+w)*p.NA+a)*p.NB+b)*p.N3D+i)*p.N3D+j]
}

// PreprocessD builds the PreD combination from a phonon tensor. Bonds whose
// reverse direction is missing from the neighbor list (structure edges)
// contribute their forward information only, matching what OMEN's
// preprocessing does at device boundaries.
func (k *Kernel) PreprocessD(d *tensor.DTensor) *PreD {
	p := k.Dev.P
	out := &PreD{Nqz: d.Nqz, Nw: d.Nw, NA: p.NA, NB: p.NB, N3D: p.N3D,
		Data: make([]complex128, d.Nqz*d.Nw*p.NA*p.NB*p.N3D*p.N3D)}
	idx := 0
	for qz := 0; qz < d.Nqz; qz++ {
		for w := 0; w < d.Nw; w++ {
			for a := 0; a < p.NA; a++ {
				for b := 0; b < p.NB; b++ {
					f := k.Dev.Neigh[a][b]
					if f < 0 {
						idx += p.N3D * p.N3D
						continue
					}
					dab := d.Block(qz, w, a, b)
					daa := d.Block(qz, w, a, p.NB)
					dbb := d.Block(qz, w, f, p.NB)
					var dba *cmat.Dense
					if r := k.Dev.NeighborSlot(f, a); r >= 0 {
						dba = d.Block(qz, w, f, r)
					}
					for i := 0; i < p.N3D; i++ {
						for j := 0; j < p.N3D; j++ {
							v := dab.At(i, j) - dbb.At(i, j) - daa.At(i, j)
							if dba != nil {
								v += dba.At(i, j)
							}
							out.Data[idx] = v
							idx++
						}
					}
				}
			}
		}
	}
	return out
}

// PhaseInput bundles the Green's functions entering one SSE phase.
type PhaseInput struct {
	GLess, GGtr *tensor.GTensor
	DLess, DGtr *tensor.DTensor
}

// PhaseOutput bundles the self-energies the SSE phase produces.
type PhaseOutput struct {
	SigmaLess, SigmaGtr *tensor.GTensor
	PiLess, PiGtr       *tensor.DTensor
}

// ComputePhase evaluates the full SSE phase (Σ^≷ and Π^≷) with the selected
// variant.
func (k *Kernel) ComputePhase(in PhaseInput, v Variant) PhaseOutput {
	spp := obsSpanPreprocess.Start()
	preLess := k.PreprocessD(in.DLess)
	preGtr := k.PreprocessD(in.DGtr)
	spp.End()
	var out PhaseOutput
	sps := obsSpanSigma.Start()
	switch v {
	case Reference:
		out.SigmaLess = k.SigmaReference(in.GLess, preLess)
		out.SigmaGtr = k.SigmaReference(in.GGtr, preGtr)
	case OMEN:
		out.SigmaLess = k.SigmaOMEN(in.GLess, preLess)
		out.SigmaGtr = k.SigmaOMEN(in.GGtr, preGtr)
	case DaCe:
		out.SigmaLess = k.SigmaDaCe(in.GLess, preLess)
		out.SigmaGtr = k.SigmaDaCe(in.GGtr, preGtr)
	default:
		panic("sse: unknown variant")
	}
	sps.End()
	spq := obsSpanPi.Start()
	switch v {
	case Reference:
		out.PiLess, out.PiGtr = k.PiReference(in.GLess, in.GGtr)
	case OMEN:
		out.PiLess, out.PiGtr = k.PiOMEN(in.GLess, in.GGtr)
	case DaCe:
		out.PiLess, out.PiGtr = k.PiDaCe(in.GLess, in.GGtr)
	}
	spq.End()
	return out
}

// Retarded returns the retarded component from the lesser/greater pair via
// the paper's relation Σ^R ≈ (Σ^> − Σ^<)/2 (also used for Π^R).
func Retarded(less, gtr *tensor.GTensor) *tensor.GTensor {
	out := tensor.NewGTensor(less.Nkz, less.NE, less.NA, less.Norb)
	for i := range out.Data {
		out.Data[i] = 0.5 * (gtr.Data[i] - less.Data[i])
	}
	return out
}

// RetardedD is the phonon analogue of Retarded: Π^R ≈ (Π^> − Π^<)/2.
func RetardedD(less, gtr *tensor.DTensor) *tensor.DTensor {
	out := tensor.NewDTensor(less.Nqz, less.Nw, less.NA, less.NB, less.N3D)
	for i := range out.Data {
		out.Data[i] = 0.5 * (gtr.Data[i] - less.Data[i])
	}
	return out
}

// AntiHermitize projects every diagonal (kz, E, a) block of t onto its
// anti-Hermitian part, t ← (t − t^H)/2 — the stabilization real NEGF codes
// apply to scattering self-energies before feeding them back into the GF
// phase.
func AntiHermitize(t *tensor.GTensor) {
	for kz := 0; kz < t.Nkz; kz++ {
		for e := 0; e < t.NE; e++ {
			for a := 0; a < t.NA; a++ {
				blk := t.Block(kz, e, a)
				h := blk.ConjTranspose()
				blk.AddScaledInPlace(-1, h)
				blk.ScaleInPlace(0.5)
			}
		}
	}
}

// DH returns the precomputed derivative block ∇_i H at (atom, neighbor
// slot, direction); nil for missing neighbors. Exposed for the distributed
// round kernels in internal/core.
func (k *Kernel) DH(a, b, i int) *cmat.Dense { return k.dH[a][b][i] }

// SigmaPrefactor exposes the Σ^≷ accumulation prefactor i·ΔE/(2π·Nqz).
func (k *Kernel) SigmaPrefactor() complex128 { return k.sigmaPref() }

// PiPrefactor exposes the magnitude of the Π^≷ prefactor ΔE/(2π·Nkz).
func (k *Kernel) PiPrefactor() float64 { return k.piPref() }
