//go:build !race

// The AllocsPerRun counters below measure steady-state heap traffic; the race
// runtime adds its own allocations, so these regressions only hold un-raced.

package sse

import (
	"math/rand"
	"testing"
)

// The SSE steady-state allocation tests pin the arena contract for the hot
// kernels: every per-point matrix transient must come from the workspace
// arena, so the per-call allocation count is a small constant (the output
// tensors plus fixed slice headers), independent of the Nkz·NE·Nqz·Nω inner
// trip count. Before pooling, each variant allocated a fresh Norb×Norb
// matrix per inner-loop iteration — thousands of allocations per call on the
// Mini device.

func TestAllocsSigmaVariantsSteadyState(t *testing.T) {
	k := testKernel(t)
	p := k.Dev.P
	rng := rand.New(rand.NewSource(23))
	g := randomAntiHermG(rng, p)
	d := k.PreprocessD(randomD(rng, p))
	for _, tc := range []struct {
		name  string
		run   func()
		bound float64
	}{
		{"OMEN", func() { k.SigmaOMEN(g, d) }, 60},
		{"DaCe", func() { k.SigmaDaCe(g, d) }, 120},
	} {
		tc.run() // warm the arena
		avg := testing.AllocsPerRun(5, tc.run)
		if avg > tc.bound {
			t.Errorf("Sigma%s steady state allocates %.1f/run, want ≤ %.0f (output + headers only)",
				tc.name, avg, tc.bound)
		}
	}
}

func TestAllocsPiVariantsSteadyState(t *testing.T) {
	k := testKernel(t)
	p := k.Dev.P
	rng := rand.New(rand.NewSource(29))
	gl := randomAntiHermG(rng, p)
	gg := randomAntiHermG(rng, p)
	for _, tc := range []struct {
		name  string
		run   func()
		bound float64
	}{
		{"OMEN", func() { k.PiOMEN(gl, gg) }, 60},
		{"DaCe", func() { k.PiDaCe(gl, gg) }, 120},
	} {
		tc.run()
		avg := testing.AllocsPerRun(5, tc.run)
		if avg > tc.bound {
			t.Errorf("Pi%s steady state allocates %.1f/run, want ≤ %.0f (output + headers only)",
				tc.name, avg, tc.bound)
		}
	}
}
