package sse

import (
	"sync"

	"negfsim/internal/pool"
	"negfsim/internal/tensor"
)

// ComputePhaseParallel evaluates the full SSE phase with the DaCe kernels
// parallelized over atom tiles — the shared-memory counterpart of the
// distributed decomposition: Σ tiles write disjoint atom ranges, Π tiles
// produce partials that are summed. Only the DaCe formulation parallelizes
// this way (its tiles are exact slices); other variants fall back to the
// serial path. Tiles are scheduled on the persistent worker pool rather than
// freshly spawned goroutines.
func (k *Kernel) ComputePhaseParallel(in PhaseInput, v Variant, workers int) PhaseOutput {
	p := k.Dev.P
	if v != DaCe || workers <= 1 || p.NA < 2*workers {
		return k.ComputePhase(in, v)
	}
	spp := obsSpanPreprocess.Start()
	preLess := k.PreprocessD(in.DLess)
	preGtr := k.PreprocessD(in.DGtr)
	spp.End()
	out := PhaseOutput{
		SigmaLess: tensor.NewGTensor(p.Nkz, p.NE, p.NA, p.Norb),
		SigmaGtr:  tensor.NewGTensor(p.Nkz, p.NE, p.NA, p.Norb),
		PiLess:    tensor.NewDTensor(p.Nqz, p.Nw, p.NA, p.NB, p.N3D),
		PiGtr:     tensor.NewDTensor(p.Nqz, p.Nw, p.NA, p.NB, p.N3D),
	}
	var mu sync.Mutex
	tasks := make([]pool.Task, 0, workers)
	for w := 0; w < workers; w++ {
		aLo := w * p.NA / workers
		aHi := (w + 1) * p.NA / workers
		if aLo == aHi {
			continue
		}
		tasks = append(tasks, func() {
			sps := obsSpanSigma.Start()
			sl := k.SigmaDaCeTile(in.GLess, preLess, 0, p.NE, aLo, aHi)
			sg := k.SigmaDaCeTile(in.GGtr, preGtr, 0, p.NE, aLo, aHi)
			sps.End()
			spq := obsSpanPi.Start()
			pl, pg := k.PiDaCeTile(in.GLess, in.GGtr, 0, p.NE, aLo, aHi)
			spq.End()
			// Σ tiles occupy disjoint atom slices of the output; copying
			// block-wise avoids write overlap entirely.
			for kz := 0; kz < p.Nkz; kz++ {
				for e := 0; e < p.NE; e++ {
					for a := aLo; a < aHi; a++ {
						out.SigmaLess.Block(kz, e, a).CopyFrom(sl.Block(kz, e, a))
						out.SigmaGtr.Block(kz, e, a).CopyFrom(sg.Block(kz, e, a))
					}
				}
			}
			// Π partials: atoms are also disjoint across tiles here
			// (energy range is full), but keep the reduction general.
			mu.Lock()
			for i := range out.PiLess.Data {
				out.PiLess.Data[i] += pl.Data[i]
				out.PiGtr.Data[i] += pg.Data[i]
			}
			mu.Unlock()
		})
	}
	pool.Do(tasks...)
	return out
}
