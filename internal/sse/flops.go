package sse

import "negfsim/internal/device"

// The paper's published flop-count formulas for the SSE kernel (§4.3),
// used to regenerate Table 3. The paper counts the full lesser+greater
// evaluation of Eq. (3) over the 8-D iteration space:
//
//	OMEN: 64·NA·NB·N3D·Nkz·Nqz·NE·Nω·Norb³
//	DaCe: 32·NA·NB·N3D·Nkz·Nqz·NE·Nω·Norb³ + 32·NA·NB·N3D·Nkz·NE·Norb³
//
// At the Table 3 configuration (NA=4864, NB=34, Norb=12, NE=706, Nω=70)
// these evaluate to 24.40 Pflop (OMEN, Nkz=3) and 12.26 Pflop (DaCe) — the
// paper prints 24.41 and 12.38.

// SigmaFlopsOMEN returns the paper's OMEN SSE flop count for the parameters.
func SigmaFlopsOMEN(p device.Params) float64 {
	n := float64(p.NA) * float64(p.NB) * float64(p.N3D) *
		float64(p.Nkz) * float64(p.Nqz) * float64(p.NE) * float64(p.Nw)
	return 64 * n * cube(p.Norb)
}

// SigmaFlopsDaCe returns the paper's DaCe SSE flop count for the parameters.
func SigmaFlopsDaCe(p device.Params) float64 {
	full := float64(p.NA) * float64(p.NB) * float64(p.N3D) *
		float64(p.Nkz) * float64(p.Nqz) * float64(p.NE) * float64(p.Nw)
	grid := float64(p.NA) * float64(p.NB) * float64(p.N3D) *
		float64(p.Nkz) * float64(p.NE)
	return 32*full*cube(p.Norb) + 32*grid*cube(p.Norb)
}

func cube(n int) float64 { x := float64(n); return x * x * x }

// Our own kernels' leading-order flop counts (complex MAC = 8 real flops,
// one ≷ type, GEMM terms only — the quantities cmat.Counter measures).
// These expose the same redundancy-removal factor the paper reports:
// the DaCe Σ variant drops the Nqz·Nω redundancy of the ∇H·G stage.

// SigmaFlopsMeasuredModel predicts the cmat.Counter flops of one
// lesser-or-greater SigmaDaCe/SigmaOMEN/SigmaReference call (interior atoms;
// edge atoms with missing neighbors contribute less).
func SigmaFlopsMeasuredModel(p device.Params, v Variant) float64 {
	bonds := float64(p.NA) * float64(p.NB)
	n3 := cube(p.Norb)
	grid := float64(p.Nkz) * float64(p.NE)
	// Energy clamping drops shifted points; on average the (qz, ω) sweep
	// keeps NE−(w+1) of NE energies: ≈ NE−(Nω+1)/2.
	avgE := float64(p.NE) - (float64(p.Nw)+1)/2
	sweep := float64(p.Nqz) * float64(p.Nw) * float64(p.Nkz) * avgE
	switch v {
	case Reference:
		// Two Norb³ GEMMs per (i, j) point of the sweep.
		return bonds * sweep * float64(2*p.N3D*p.N3D) * 8 * n3
	case OMEN:
		// ∇H·G hoisted out of j: N3D + N3D² GEMMs per sweep point.
		return bonds * sweep * float64(p.N3D+p.N3D*p.N3D) * 8 * n3
	case DaCe:
		// ∇H·G once per (a, b, i) on the full grid + one GEMM per (i, sweep).
		return bonds*float64(p.N3D)*grid*8*n3 + bonds*sweep*float64(p.N3D)*8*n3
	}
	panic("sse: unknown variant")
}
