package sse

import (
	"math/rand"
	"testing"
)

func TestComputePhaseParallelMatchesSerial(t *testing.T) {
	k := testKernel(t)
	p := k.Dev.P
	rng := rand.New(rand.NewSource(71))
	in := PhaseInput{
		GLess: randomAntiHermG(rng, p), GGtr: randomAntiHermG(rng, p),
		DLess: randomD(rng, p), DGtr: randomD(rng, p),
	}
	want := k.ComputePhase(in, DaCe)
	for _, workers := range []int{2, 3, 4} {
		got := k.ComputePhaseParallel(in, DaCe, workers)
		tol := 1e-9 * (1 + gScale(want.SigmaLess))
		if d := want.SigmaLess.MaxAbsDiff(got.SigmaLess); d > tol {
			t.Fatalf("workers=%d: Σ^< diff %g", workers, d)
		}
		if d := want.SigmaGtr.MaxAbsDiff(got.SigmaGtr); d > tol {
			t.Fatalf("workers=%d: Σ^> diff %g", workers, d)
		}
		if d := want.PiLess.MaxAbsDiff(got.PiLess); d > 1e-9 {
			t.Fatalf("workers=%d: Π^< diff %g", workers, d)
		}
		if d := want.PiGtr.MaxAbsDiff(got.PiGtr); d > 1e-9 {
			t.Fatalf("workers=%d: Π^> diff %g", workers, d)
		}
	}
}

func TestComputePhaseParallelFallsBack(t *testing.T) {
	// Non-DaCe variants and single workers take the serial path and must
	// still produce correct values.
	k := testKernel(t)
	p := k.Dev.P
	rng := rand.New(rand.NewSource(72))
	in := PhaseInput{
		GLess: randomAntiHermG(rng, p), GGtr: randomAntiHermG(rng, p),
		DLess: randomD(rng, p), DGtr: randomD(rng, p),
	}
	want := k.ComputePhase(in, OMEN)
	got := k.ComputePhaseParallel(in, OMEN, 4)
	if d := want.SigmaLess.MaxAbsDiff(got.SigmaLess); d != 0 {
		t.Fatalf("fallback path altered results by %g", d)
	}
}
