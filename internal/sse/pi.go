package sse

import (
	"negfsim/internal/cmat"
	"negfsim/internal/tensor"
)

// piAccumulate adds one bond's trace contribution to the phonon self-energy
// tensors: Eq. (5) fills the off-diagonal (a, b) slot with +i·pref·tr{…},
// Eq. (4) accumulates −i·pref·tr{…} into the diagonal (a, a) slot.
func piAccumulate(pi *tensor.DTensor, qz, w, a, slot, i, j, nb int, val complex128) {
	pi.Block(qz, w, a, slot).Set(i, j, pi.Block(qz, w, a, slot).At(i, j)+val)
	diag := pi.Block(qz, w, a, nb)
	diag.Set(i, j, diag.At(i, j)-val)
}

// PiReference evaluates Eqs. (4)–(5) with the naive dataflow: the trace
// tr{∇iH_ba · G^≷_aa(E+ℏω, kz+qz) · ∇jH_ab · G^≶_bb(E, kz)} recomputed from
// scratch — two fresh Norb³ products per (qz, ω, kz, E, i, j, a, b) point.
func (k *Kernel) PiReference(gLess, gGtr *tensor.GTensor) (piLess, piGtr *tensor.DTensor) {
	p := k.Dev.P
	pref := complex(0, k.piPref())
	piLess = tensor.NewDTensor(p.Nqz, p.Nw, p.NA, p.NB, p.N3D)
	piGtr = tensor.NewDTensor(p.Nqz, p.Nw, p.NA, p.NB, p.N3D)
	for qz := 0; qz < p.Nqz; qz++ {
		for w := 0; w < p.Nw; w++ {
			for a := 0; a < p.NA; a++ {
				for b := 0; b < p.NB; b++ {
					f := k.Dev.Neigh[a][b]
					if f < 0 {
						continue
					}
					r := k.Dev.NeighborSlot(f, a)
					if r < 0 {
						continue
					}
					for kz := 0; kz < p.Nkz; kz++ {
						k2 := wrapK(kz, -qz, p.Nkz) // kz + qz, wrapped
						for e := 0; e < p.NE; e++ {
							e2 := e + p.PhononShift(w)
							if e2 >= p.NE {
								continue
							}
							for i := 0; i < p.N3D; i++ {
								for j := 0; j < p.N3D; j++ {
									uLess := k.dH[f][r][i].Mul(gLess.Block(k2, e2, a))
									uGtr := k.dH[f][r][i].Mul(gGtr.Block(k2, e2, a))
									wLess := k.dH[a][b][j].Mul(gLess.Block(kz, e, f))
									wGtr := k.dH[a][b][j].Mul(gGtr.Block(kz, e, f))
									piAccumulate(piLess, qz, w, a, b, i, j, p.NB, pref*uLess.TraceMul(wGtr))
									piAccumulate(piGtr, qz, w, a, b, i, j, p.NB, pref*uGtr.TraceMul(wLess))
								}
							}
						}
					}
				}
			}
		}
	}
	return piLess, piGtr
}

// PiOMEN evaluates Eqs. (4)–(5) with the original code's structure: the two
// matrix products are hoisted out of the opposite direction loop (U_i out of
// j, W_j out of i), but both are still recomputed for every (qz, ω) round of
// the communication scheme.
func (k *Kernel) PiOMEN(gLess, gGtr *tensor.GTensor) (piLess, piGtr *tensor.DTensor) {
	p := k.Dev.P
	pref := complex(0, k.piPref())
	piLess = tensor.NewDTensor(p.Nqz, p.Nw, p.NA, p.NB, p.N3D)
	piGtr = tensor.NewDTensor(p.Nqz, p.Nw, p.NA, p.NB, p.N3D)
	uLess := make([]*cmat.Dense, p.N3D)
	uGtr := make([]*cmat.Dense, p.N3D)
	wLess := make([]*cmat.Dense, p.N3D)
	wGtr := make([]*cmat.Dense, p.N3D)
	for qz := 0; qz < p.Nqz; qz++ {
		for w := 0; w < p.Nw; w++ {
			for a := 0; a < p.NA; a++ {
				for b := 0; b < p.NB; b++ {
					f := k.Dev.Neigh[a][b]
					if f < 0 {
						continue
					}
					r := k.Dev.NeighborSlot(f, a)
					if r < 0 {
						continue
					}
					for kz := 0; kz < p.Nkz; kz++ {
						k2 := wrapK(kz, -qz, p.Nkz)
						for e := 0; e < p.NE; e++ {
							e2 := e + p.PhononShift(w)
							if e2 >= p.NE {
								continue
							}
							for i := 0; i < p.N3D; i++ {
								uLess[i] = k.dH[f][r][i].Mul(gLess.Block(k2, e2, a))
								uGtr[i] = k.dH[f][r][i].Mul(gGtr.Block(k2, e2, a))
							}
							for j := 0; j < p.N3D; j++ {
								wLess[j] = k.dH[a][b][j].Mul(gLess.Block(kz, e, f))
								wGtr[j] = k.dH[a][b][j].Mul(gGtr.Block(kz, e, f))
							}
							for i := 0; i < p.N3D; i++ {
								for j := 0; j < p.N3D; j++ {
									piAccumulate(piLess, qz, w, a, b, i, j, p.NB, pref*uLess[i].TraceMul(wGtr[j]))
									piAccumulate(piGtr, qz, w, a, b, i, j, p.NB, pref*uGtr[i].TraceMul(wLess[j]))
								}
							}
						}
					}
				}
			}
		}
	}
	return piLess, piGtr
}

// PiDaCe evaluates Eqs. (4)–(5) with the data-centric transformation: the
// products U_i = ∇iH_ba·G^≷_aa and W_j = ∇jH_ab·G^≶_bb depend only on the
// unshifted (kz, E) grid, so they are computed ONCE per bond — outside the
// (qz, ω) loops — and the (qz, ω) sweep reduces to Norb² trace contractions.
// This is the same redundancy-removal step as Fig. 10(b) applied to Π.
func (k *Kernel) PiDaCe(gLess, gGtr *tensor.GTensor) (piLess, piGtr *tensor.DTensor) {
	p := k.Dev.P
	pref := complex(0, k.piPref())
	piLess = tensor.NewDTensor(p.Nqz, p.Nw, p.NA, p.NB, p.N3D)
	piGtr = tensor.NewDTensor(p.Nqz, p.Nw, p.NA, p.NB, p.N3D)
	nke := p.Nkz * p.NE
	// Per-bond transients, reused across bonds: U^≷[i], W^≷[j] on the whole
	// (kz, E) grid.
	alloc := func() [][]*cmat.Dense {
		m := make([][]*cmat.Dense, p.N3D)
		for i := range m {
			m[i] = make([]*cmat.Dense, nke)
		}
		return m
	}
	uLess, uGtr, wLess, wGtr := alloc(), alloc(), alloc(), alloc()

	for a := 0; a < p.NA; a++ {
		for b := 0; b < p.NB; b++ {
			f := k.Dev.Neigh[a][b]
			if f < 0 {
				continue
			}
			r := k.Dev.NeighborSlot(f, a)
			if r < 0 {
				continue
			}
			for kz := 0; kz < p.Nkz; kz++ {
				for e := 0; e < p.NE; e++ {
					idx := kz*p.NE + e
					for i := 0; i < p.N3D; i++ {
						uLess[i][idx] = k.dH[f][r][i].Mul(gLess.Block(kz, e, a))
						uGtr[i][idx] = k.dH[f][r][i].Mul(gGtr.Block(kz, e, a))
						wLess[i][idx] = k.dH[a][b][i].Mul(gLess.Block(kz, e, f))
						wGtr[i][idx] = k.dH[a][b][i].Mul(gGtr.Block(kz, e, f))
					}
				}
			}
			for qz := 0; qz < p.Nqz; qz++ {
				for w := 0; w < p.Nw; w++ {
					shift := p.PhononShift(w)
					for kz := 0; kz < p.Nkz; kz++ {
						k2 := wrapK(kz, -qz, p.Nkz)
						for e := 0; e+shift < p.NE; e++ {
							su := k2*p.NE + e + shift
							sw := kz*p.NE + e
							for i := 0; i < p.N3D; i++ {
								for j := 0; j < p.N3D; j++ {
									piAccumulate(piLess, qz, w, a, b, i, j, p.NB, pref*uLess[i][su].TraceMul(wGtr[j][sw]))
									piAccumulate(piGtr, qz, w, a, b, i, j, p.NB, pref*uGtr[i][su].TraceMul(wLess[j][sw]))
								}
							}
						}
					}
				}
			}
		}
	}
	return piLess, piGtr
}
