package sse

import (
	"negfsim/internal/cmat"
	"negfsim/internal/tensor"
)

// piAccumulate adds one bond's trace contribution to the phonon self-energy
// tensors: Eq. (5) fills the off-diagonal (a, b) slot with +i·pref·tr{…},
// Eq. (4) accumulates −i·pref·tr{…} into the diagonal (a, a) slot.
func piAccumulate(pi *tensor.DTensor, qz, w, a, slot, i, j, nb int, val complex128) {
	pi.AddAt(qz, w, a, slot, i, j, val)
	pi.AddAt(qz, w, a, nb, i, j, -val)
}

// PiReference evaluates Eqs. (4)–(5) with the naive dataflow: the trace
// tr{∇iH_ba · G^≷_aa(E+ℏω, kz+qz) · ∇jH_ab · G^≶_bb(E, kz)} recomputed from
// scratch — two fresh Norb³ products per (qz, ω, kz, E, i, j, a, b) point.
func (k *Kernel) PiReference(gLess, gGtr *tensor.GTensor) (piLess, piGtr *tensor.DTensor) {
	p := k.Dev.P
	pref := complex(0, k.piPref())
	piLess = tensor.NewDTensor(p.Nqz, p.Nw, p.NA, p.NB, p.N3D)
	piGtr = tensor.NewDTensor(p.Nqz, p.Nw, p.NA, p.NB, p.N3D)
	for qz := 0; qz < p.Nqz; qz++ {
		for w := 0; w < p.Nw; w++ {
			for a := 0; a < p.NA; a++ {
				for b := 0; b < p.NB; b++ {
					f := k.Dev.Neigh[a][b]
					if f < 0 {
						continue
					}
					r := k.Dev.NeighborSlot(f, a)
					if r < 0 {
						continue
					}
					for kz := 0; kz < p.Nkz; kz++ {
						k2 := wrapK(kz, -qz, p.Nkz) // kz + qz, wrapped
						for e := 0; e < p.NE; e++ {
							e2 := e + p.PhononShift(w)
							if e2 >= p.NE {
								continue
							}
							for i := 0; i < p.N3D; i++ {
								for j := 0; j < p.N3D; j++ {
									uLess := k.dH[f][r][i].Mul(gLess.Block(k2, e2, a))
									uGtr := k.dH[f][r][i].Mul(gGtr.Block(k2, e2, a))
									wLess := k.dH[a][b][j].Mul(gLess.Block(kz, e, f))
									wGtr := k.dH[a][b][j].Mul(gGtr.Block(kz, e, f))
									piAccumulate(piLess, qz, w, a, b, i, j, p.NB, pref*uLess.TraceMul(wGtr))
									piAccumulate(piGtr, qz, w, a, b, i, j, p.NB, pref*uGtr.TraceMul(wLess))
								}
							}
						}
					}
				}
			}
		}
	}
	return piLess, piGtr
}

// PiOMEN evaluates Eqs. (4)–(5) with the original code's structure: the two
// matrix products are hoisted out of the opposite direction loop (U_i out of
// j, W_j out of i), but both are still recomputed for every (qz, ω) round of
// the communication scheme.
func (k *Kernel) PiOMEN(gLess, gGtr *tensor.GTensor) (piLess, piGtr *tensor.DTensor) {
	p := k.Dev.P
	pref := complex(0, k.piPref())
	piLess = tensor.NewDTensor(p.Nqz, p.Nw, p.NA, p.NB, p.N3D)
	piGtr = tensor.NewDTensor(p.Nqz, p.Nw, p.NA, p.NB, p.N3D)
	no := p.Norb
	// Arena-backed per-point transients, reused across the whole sweep.
	uLess := make([]*cmat.Dense, p.N3D)
	uGtr := make([]*cmat.Dense, p.N3D)
	wLess := make([]*cmat.Dense, p.N3D)
	wGtr := make([]*cmat.Dense, p.N3D)
	for i := 0; i < p.N3D; i++ {
		uLess[i] = cmat.GetDense(no, no)
		uGtr[i] = cmat.GetDense(no, no)
		wLess[i] = cmat.GetDense(no, no)
		wGtr[i] = cmat.GetDense(no, no)
	}
	var gvL, gvG cmat.Dense // reusable block-view headers
	for qz := 0; qz < p.Nqz; qz++ {
		for w := 0; w < p.Nw; w++ {
			for a := 0; a < p.NA; a++ {
				for b := 0; b < p.NB; b++ {
					f := k.Dev.Neigh[a][b]
					if f < 0 {
						continue
					}
					r := k.Dev.NeighborSlot(f, a)
					if r < 0 {
						continue
					}
					for kz := 0; kz < p.Nkz; kz++ {
						k2 := wrapK(kz, -qz, p.Nkz)
						for e := 0; e < p.NE; e++ {
							e2 := e + p.PhononShift(w)
							if e2 >= p.NE {
								continue
							}
							gLess.BlockInto(&gvL, k2, e2, a)
							gGtr.BlockInto(&gvG, k2, e2, a)
							for i := 0; i < p.N3D; i++ {
								k.dH[f][r][i].MulInto(uLess[i], &gvL)
								k.dH[f][r][i].MulInto(uGtr[i], &gvG)
							}
							gLess.BlockInto(&gvL, kz, e, f)
							gGtr.BlockInto(&gvG, kz, e, f)
							for j := 0; j < p.N3D; j++ {
								k.dH[a][b][j].MulInto(wLess[j], &gvL)
								k.dH[a][b][j].MulInto(wGtr[j], &gvG)
							}
							for i := 0; i < p.N3D; i++ {
								for j := 0; j < p.N3D; j++ {
									piAccumulate(piLess, qz, w, a, b, i, j, p.NB, pref*uLess[i].TraceMul(wGtr[j]))
									piAccumulate(piGtr, qz, w, a, b, i, j, p.NB, pref*uGtr[i].TraceMul(wLess[j]))
								}
							}
						}
					}
				}
			}
		}
	}
	for i := 0; i < p.N3D; i++ {
		cmat.PutAll(uLess[i], uGtr[i], wLess[i], wGtr[i])
	}
	return piLess, piGtr
}

// PiDaCe evaluates Eqs. (4)–(5) with the data-centric transformation: the
// products U_i = ∇iH_ba·G^≷_aa and W_j = ∇jH_ab·G^≶_bb depend only on the
// unshifted (kz, E) grid, so they are computed ONCE per bond — outside the
// (qz, ω) loops — and the (qz, ω) sweep reduces to Norb² trace contractions.
// This is the same redundancy-removal step as Fig. 10(b) applied to Π.
func (k *Kernel) PiDaCe(gLess, gGtr *tensor.GTensor) (piLess, piGtr *tensor.DTensor) {
	p := k.Dev.P
	pref := complex(0, k.piPref())
	piLess = tensor.NewDTensor(p.Nqz, p.Nw, p.NA, p.NB, p.N3D)
	piGtr = tensor.NewDTensor(p.Nqz, p.Nw, p.NA, p.NB, p.N3D)
	nke := p.Nkz * p.NE
	// Per-bond transients, reused across bonds: U^≷[i], W^≷[j] on the whole
	// (kz, E) grid.
	no := p.Norb
	alloc := func() [][]*cmat.Dense {
		m := make([][]*cmat.Dense, p.N3D)
		for i := range m {
			m[i] = make([]*cmat.Dense, nke)
			for s := range m[i] {
				m[i][s] = cmat.GetDense(no, no)
			}
		}
		return m
	}
	release := func(m [][]*cmat.Dense) {
		for i := range m {
			cmat.PutAll(m[i]...)
		}
	}
	uLess, uGtr, wLess, wGtr := alloc(), alloc(), alloc(), alloc()
	var gvL, gvG cmat.Dense // reusable block-view headers

	for a := 0; a < p.NA; a++ {
		for b := 0; b < p.NB; b++ {
			f := k.Dev.Neigh[a][b]
			if f < 0 {
				continue
			}
			r := k.Dev.NeighborSlot(f, a)
			if r < 0 {
				continue
			}
			for kz := 0; kz < p.Nkz; kz++ {
				for e := 0; e < p.NE; e++ {
					idx := kz*p.NE + e
					gLess.BlockInto(&gvL, kz, e, a)
					gGtr.BlockInto(&gvG, kz, e, a)
					for i := 0; i < p.N3D; i++ {
						k.dH[f][r][i].MulInto(uLess[i][idx], &gvL)
						k.dH[f][r][i].MulInto(uGtr[i][idx], &gvG)
					}
					gLess.BlockInto(&gvL, kz, e, f)
					gGtr.BlockInto(&gvG, kz, e, f)
					for i := 0; i < p.N3D; i++ {
						k.dH[a][b][i].MulInto(wLess[i][idx], &gvL)
						k.dH[a][b][i].MulInto(wGtr[i][idx], &gvG)
					}
				}
			}
			for qz := 0; qz < p.Nqz; qz++ {
				for w := 0; w < p.Nw; w++ {
					shift := p.PhononShift(w)
					for kz := 0; kz < p.Nkz; kz++ {
						k2 := wrapK(kz, -qz, p.Nkz)
						for e := 0; e+shift < p.NE; e++ {
							su := k2*p.NE + e + shift
							sw := kz*p.NE + e
							for i := 0; i < p.N3D; i++ {
								for j := 0; j < p.N3D; j++ {
									piAccumulate(piLess, qz, w, a, b, i, j, p.NB, pref*uLess[i][su].TraceMul(wGtr[j][sw]))
									piAccumulate(piGtr, qz, w, a, b, i, j, p.NB, pref*uGtr[i][su].TraceMul(wLess[j][sw]))
								}
							}
						}
					}
				}
			}
		}
	}
	release(uLess)
	release(uGtr)
	release(wLess)
	release(wGtr)
	return piLess, piGtr
}
