// Package num holds the tiny integer arithmetic helpers shared across the
// simulator's packages — previously re-implemented privately wherever a tile
// count or slice size needed rounding up.
package num

// CeilDiv returns ⌈a/b⌉ for non-negative a and positive b: the number of
// size-b tiles covering a items. It is the rounding used by every
// decomposition formula (§4.1 slice sizes, GEMM panel strips), so the copies
// agree by construction.
func CeilDiv(a, b int) int { return (a + b - 1) / b }
