package num

import "testing"

func TestCeilDiv(t *testing.T) {
	cases := []struct{ a, b, want int }{
		{0, 1, 0},
		{0, 7, 0},
		{1, 1, 1},
		{1, 2, 1},
		{2, 2, 1},
		{3, 2, 2},
		{6, 3, 2},
		{7, 3, 3},
		{705, 256, 3},
		{706, 256, 3},
		{768, 256, 3},
		{769, 256, 4},
	}
	for _, c := range cases {
		if got := CeilDiv(c.a, c.b); got != c.want {
			t.Errorf("CeilDiv(%d, %d) = %d, want %d", c.a, c.b, got, c.want)
		}
	}
	// Exactness: CeilDiv(a, b)·b is the smallest multiple of b covering a.
	for a := 0; a < 100; a++ {
		for b := 1; b < 12; b++ {
			n := CeilDiv(a, b)
			if n*b < a || (n-1)*b >= a {
				t.Fatalf("CeilDiv(%d, %d) = %d is not the minimal cover", a, b, n)
			}
		}
	}
}
