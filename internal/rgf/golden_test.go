package rgf

import (
	"math"
	"testing"

	"negfsim/internal/cmat"
)

// Golden-value regression tests: small systems with closed-form answers.

// uniformChain builds the block-tridiagonal operator of a perfect 1-D
// tight-binding chain: onsite 0, hopping −t, block size 1.
func uniformChain(blocks int, t float64) (*cmat.BlockTri, *cmat.BlockTri) {
	h := cmat.NewBlockTri(blocks, 1)
	s := cmat.NewBlockTri(blocks, 1)
	for i := 0; i < blocks; i++ {
		s.Diag[i].Set(0, 0, 1)
	}
	for i := 0; i < blocks-1; i++ {
		h.Upper[i].Set(0, 0, complex(-t, 0))
		h.Lower[i].Set(0, 0, complex(-t, 0))
		s.Upper[i] = cmat.NewDense(1, 1)
		s.Lower[i] = cmat.NewDense(1, 1)
	}
	return h, s
}

func TestPerfectChainUnitTransmission(t *testing.T) {
	// A homogeneous chain between matched leads is reflectionless: T(E) = 1
	// for every energy inside the band (−2t, 2t), and T = 0 outside.
	h, s := uniformChain(6, 0.5)
	for _, e := range []float64{-0.8, -0.3, 0.0, 0.4, 0.9} {
		_, trans, err := SolveElectronBallistic(h, s, e, Contacts{MuL: 0.1, MuR: -0.1, KT: 0.025}, 1e-6)
		if err != nil {
			t.Fatalf("E=%g: %v", e, err)
		}
		if math.Abs(e) < 1.0 { // inside the band (half-width 2t = 1)
			if math.Abs(trans-1) > 1e-3 {
				t.Fatalf("E=%g: perfect chain should transmit T=1, got %g", e, trans)
			}
		} else {
			if trans > 1e-3 {
				t.Fatalf("E=%g: outside the band T should vanish, got %g", e, trans)
			}
		}
	}
}

func TestChainWithBarrierAnalytic(t *testing.T) {
	// A single on-site barrier ε on one site of an otherwise perfect chain:
	// the textbook scattering result at energy E = −2t·cos(ka) is
	//
	//	T(E) = 1 / (1 + (ε / (2t·sin(ka)))²).
	const hop = 0.5
	const eps = 0.35
	h, s := uniformChain(6, hop)
	h.Diag[2].Set(0, 0, complex(eps, 0)) // barrier in the middle
	for _, e := range []float64{-0.6, -0.2, 0.0, 0.3, 0.7} {
		_, trans, err := SolveElectronBallistic(h, s, e, Contacts{}, 1e-6)
		if err != nil {
			t.Fatalf("E=%g: %v", e, err)
		}
		ka := math.Acos(-e / (2 * hop))
		v := 2 * hop * math.Sin(ka) // group velocity factor
		want := 1 / (1 + (eps/v)*(eps/v))
		if math.Abs(trans-want) > 1e-3*(1+want) {
			t.Fatalf("E=%g: T = %g, analytic %g", e, trans, want)
		}
	}
}

func TestSurfaceGFBandEdgeSquareRoot(t *testing.T) {
	// The chain's surface LDOS −Im g/π follows the semicircle-edge law:
	// it vanishes like sqrt(band edge − E) at the band edge. Check the
	// analytic surface GF magnitude at the band center: g(0) = −i/t.
	const hop = 0.5
	z := complex(0, 1e-5) // larger η: the decimation loses ~ε_mach/η² at the band center
	a00 := cmat.DenseFromSlice(1, 1, []complex128{z})
	tt := cmat.DenseFromSlice(1, 1, []complex128{complex(-hop, 0)})
	g, err := SurfaceGF(a00, tt, tt, 1e-14)
	if err != nil {
		t.Fatal(err)
	}
	if math.Abs(imag(g.At(0, 0))+1/hop) > 1e-3 {
		t.Fatalf("surface GF at band center = %v, want −i/t = %vi", g.At(0, 0), -1/hop)
	}
}
