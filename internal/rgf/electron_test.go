package rgf

import (
	"math"
	"testing"

	"negfsim/internal/cmat"
	"negfsim/internal/device"
)

func miniDevice(t *testing.T) *device.Device {
	t.Helper()
	d, err := device.New(device.Mini())
	if err != nil {
		t.Fatal(err)
	}
	return d
}

func TestSolveElectronBallisticCurrentConservation(t *testing.T) {
	d := miniDevice(t)
	h := d.Hamiltonian(0)
	s := d.Overlap(0)
	c := Contacts{MuL: 0.2, MuR: -0.2, KT: 0.025}
	var total float64
	for _, e := range []float64{-0.15, -0.05, 0.0, 0.05, 0.15} {
		res, err := SolveElectron(h, s, e, Scattering{}, c, 1e-6)
		if err != nil {
			t.Fatalf("E=%g: %v", e, err)
		}
		// Without scattering, what flows in left must flow out right.
		// The iη broadening absorbs O(η/Γ) of the current, hence the
		// relative tolerance.
		if math.Abs(res.CurrentL+res.CurrentR) > 1e-3*(1+math.Abs(res.CurrentL)) {
			t.Fatalf("E=%g: current not conserved: I_L=%g I_R=%g", e, res.CurrentL, res.CurrentR)
		}
		total += res.CurrentL
	}
	if total == 0 {
		t.Fatal("bias should drive a nonzero net current")
	}
}

func TestSolveElectronKeldyshIdentity(t *testing.T) {
	// G^> − G^< = G^R − G^A must hold when Σ^> − Σ^< = Σ^R − Σ^A, which the
	// contact self-energies satisfy by construction.
	d := miniDevice(t)
	h := d.Hamiltonian(1)
	s := d.Overlap(1)
	res, err := SolveElectron(h, s, 0.05, Scattering{}, Contacts{MuL: 0.1, MuR: -0.1, KT: 0.025}, 1e-6)
	if err != nil {
		t.Fatal(err)
	}
	for i := range res.GR {
		lhs := res.GGtr[i].Sub(res.GLess[i])
		rhs := res.GR[i].Sub(res.GR[i].ConjTranspose())
		// The iη broadening breaks the identity at O(η·‖G‖²), so compare
		// relative to the magnitude of the spectral function.
		if d := lhs.MaxAbsDiff(rhs); d > 1e-2*(1+rhs.MaxAbs()) {
			t.Fatalf("block %d: G^>−G^< vs G^R−G^A diff %g (scale %g)", i, d, rhs.MaxAbs())
		}
	}
}

func TestSolveElectronEquilibriumNoCurrent(t *testing.T) {
	d := miniDevice(t)
	h := d.Hamiltonian(0)
	s := d.Overlap(0)
	res, err := SolveElectron(h, s, 0.02, Scattering{}, Contacts{MuL: 0.1, MuR: 0.1, KT: 0.025}, 1e-6)
	if err != nil {
		t.Fatal(err)
	}
	if math.Abs(res.CurrentL) > 1e-8 || math.Abs(res.CurrentR) > 1e-8 {
		t.Fatalf("equal potentials must carry no current, got I_L=%g I_R=%g", res.CurrentL, res.CurrentR)
	}
}

func TestSolveElectronLesserAntiHermitian(t *testing.T) {
	d := miniDevice(t)
	res, err := SolveElectron(d.Hamiltonian(0), d.Overlap(0), 0.0, Scattering{},
		Contacts{MuL: 0.2, MuR: -0.2, KT: 0.025}, 1e-6)
	if err != nil {
		t.Fatal(err)
	}
	for i, g := range res.GLess {
		anti := g.Add(g.ConjTranspose())
		if anti.MaxAbs() > 1e-9 {
			t.Fatalf("block %d: G^< not anti-Hermitian (defect %g)", i, anti.MaxAbs())
		}
	}
}

func TestSolveElectronWithScattering(t *testing.T) {
	// A small anti-Hermitian scattering self-energy must broaden the states
	// and keep the solver stable; dissipation becomes nonzero.
	d := miniDevice(t)
	h := d.Hamiltonian(0)
	s := d.Overlap(0)
	n, bs := h.N, h.Bs
	scat := Scattering{R: make([]*cmat.Dense, n), Less: make([]*cmat.Dense, n), Gtr: make([]*cmat.Dense, n)}
	for i := 0; i < n; i++ {
		g := cmat.Identity(bs).Scale(complex(0, 0.01)) // Γ_S = 0.02·I
		scat.Less[i] = g                               // Σ^< = i·0.01·I
		scat.Gtr[i] = g.Scale(-1)                      // Σ^> = −i·0.01·I
		scat.R[i] = scat.Gtr[i].Sub(scat.Less[i]).Scale(0.5)
	}
	res, err := SolveElectron(h, s, 0.05, scat, Contacts{MuL: 0.2, MuR: -0.2, KT: 0.025}, 1e-6)
	if err != nil {
		t.Fatal(err)
	}
	var dissip float64
	for _, p := range res.DissipationPerBlock {
		dissip += math.Abs(p)
	}
	if dissip == 0 {
		t.Fatal("scattering should exchange energy with the bath")
	}
	// Contact currents no longer balance exactly; the mismatch is absorbed
	// by the bath: I_L + I_R + Σ dissipation = 0.
	var sum float64
	for _, p := range res.DissipationPerBlock {
		sum += p
	}
	if math.Abs(res.CurrentL+res.CurrentR+sum) > 1e-4*(1+math.Abs(res.CurrentL)) {
		t.Fatalf("current + bath exchange must balance: %g", res.CurrentL+res.CurrentR+sum)
	}
}

func TestSpectralPerAtomPositive(t *testing.T) {
	d := miniDevice(t)
	res, err := SolveElectron(d.Hamiltonian(0), d.Overlap(0), 0.0, Scattering{},
		Contacts{MuL: 0, MuR: 0, KT: 0.025}, 1e-6)
	if err != nil {
		t.Fatal(err)
	}
	ldos := SpectralPerAtom(res.GR, d.P.Norb)
	if len(ldos) != d.P.NA {
		t.Fatalf("LDOS entries = %d, want NA = %d", len(ldos), d.P.NA)
	}
	for a, v := range ldos {
		if v < -1e-9 {
			t.Fatalf("atom %d: negative LDOS %g", a, v)
		}
	}
}

func TestSolveElectronShapeMismatch(t *testing.T) {
	d := miniDevice(t)
	h := d.Hamiltonian(0)
	bad := cmat.NewBlockTri(h.N+1, h.Bs)
	if _, err := SolveElectron(h, bad, 0, Scattering{}, Contacts{}, 1e-6); err == nil {
		t.Fatal("expected shape-mismatch error")
	}
}

func TestSolvePhononStability(t *testing.T) {
	d := miniDevice(t)
	phi := d.Dynamical(1)
	c := PhononContacts{KTL: 0.026, KTR: 0.024}
	for _, hw := range []float64{0.01, 0.05, 0.12} {
		res, err := SolvePhonon(phi, hw, PhononScattering{}, c, 1e-6)
		if err != nil {
			t.Fatalf("ω=%g: %v", hw, err)
		}
		for i, g := range res.DLess {
			anti := g.Add(g.ConjTranspose())
			if anti.MaxAbs() > 1e-8 {
				t.Fatalf("ω=%g block %d: D^< not anti-Hermitian (%g)", hw, i, anti.MaxAbs())
			}
		}
		// Ballistic phonons: heat in = heat out.
		if math.Abs(res.HeatL+res.HeatR) > 1e-6*(1+math.Abs(res.HeatL)) {
			t.Fatalf("ω=%g: heat current not conserved: %g vs %g", hw, res.HeatL, res.HeatR)
		}
	}
}

func TestSolvePhononHotterLeadHeatsColder(t *testing.T) {
	d := miniDevice(t)
	phi := d.Dynamical(0)
	var net float64
	for _, hw := range []float64{0.02, 0.04, 0.06, 0.08} {
		res, err := SolvePhonon(phi, hw, PhononScattering{}, PhononContacts{KTL: 0.04, KTR: 0.02}, 1e-6)
		if err != nil {
			t.Fatal(err)
		}
		net += res.HeatL
	}
	if net == 0 {
		t.Fatal("temperature difference should drive heat flow")
	}
}

func TestSolvePhononRejectsNonPositiveFrequency(t *testing.T) {
	d := miniDevice(t)
	if _, err := SolvePhonon(d.Dynamical(0), 0, PhononScattering{}, PhononContacts{}, 1e-6); err == nil {
		t.Fatal("expected error for ω ≤ 0")
	}
}
