package rgf

import (
	"math/rand"
	"testing"

	"negfsim/internal/cmat"
	"negfsim/internal/comm"
	"negfsim/internal/perfmodel"
)

// sequentialDiag is the oracle: the plain recursion's diagonal.
func sequentialDiag(t *testing.T, a *cmat.BlockTri) []*cmat.Dense {
	t.Helper()
	ret, err := SolveRetarded(a)
	if err != nil {
		t.Fatalf("sequential solve: %v", err)
	}
	return ret.Diag
}

func maxDiagDiff(got, want []*cmat.Dense) float64 {
	var worst float64
	for i := range want {
		if d := got[i].MaxAbsDiff(want[i]); d > worst {
			worst = d
		}
	}
	return worst
}

// Minimum-size partitions: N = 2·segments−1 leaves every segment exactly
// one block. Pinned to the sequential recursion at 1e-12.
func TestPartitionedMinimumSizeSegments(t *testing.T) {
	rng := rand.New(rand.NewSource(11))
	for segments := 2; segments <= 5; segments++ {
		n := 2*segments - 1
		a := randomSystem(rng, n, 3, 2.5, 0.6)
		want := sequentialDiag(t, a)
		got, err := PartitionedRetarded(a, segments, segments)
		if err != nil {
			t.Fatalf("segments=%d: %v", segments, err)
		}
		if d := maxDiagDiff(got, want); d > 1e-12 {
			t.Errorf("segments=%d n=%d: max |Δ| = %g > 1e-12", segments, n, d)
		}
	}
}

// Adjacent separators couple directly through A (the s2 == s+1 branch) —
// unreachable from the even spread, so exercised through explicit
// placements, including separators at the chain ends.
func TestPartitionedAtAdjacentSeparators(t *testing.T) {
	rng := rand.New(rand.NewSource(12))
	cases := [][]int{
		{1, 2},       // adjacent pair mid-chain
		{2, 3},       // adjacent pair, segments on both sides
		{0, 1, 2},    // run of three from the left edge
		{3, 4, 5},    // run ending at the right edge (n = 6)
		{0, 2, 3, 5}, // mixed: edges, a gap and an adjacent pair
	}
	for _, seps := range cases {
		a := randomSystem(rng, 6, 2, 2.5, 0.6)
		want := sequentialDiag(t, a)
		got, err := PartitionedRetardedAt(a, seps, 4)
		if err != nil {
			t.Fatalf("seps=%v: %v", seps, err)
		}
		if d := maxDiagDiff(got, want); d > 1e-12 {
			t.Errorf("seps=%v: max |Δ| = %g > 1e-12", seps, d)
		}
	}
}

func TestPartitionedTwoSegments(t *testing.T) {
	rng := rand.New(rand.NewSource(13))
	for _, n := range []int{3, 4, 8, 11} {
		a := randomSystem(rng, n, 3, 2.5, 0.6)
		want := sequentialDiag(t, a)
		got, err := PartitionedRetarded(a, 2, 2)
		if err != nil {
			t.Fatalf("n=%d: %v", n, err)
		}
		if d := maxDiagDiff(got, want); d > 1e-12 {
			t.Errorf("n=%d: max |Δ| = %g > 1e-12", n, d)
		}
	}
}

// More workers than segments must change nothing (and the -race run of
// `make partition-test` checks the oversubscribed pool is clean).
func TestPartitionedWorkersExceedSegments(t *testing.T) {
	rng := rand.New(rand.NewSource(14))
	a := randomSystem(rng, 9, 3, 2.5, 0.6)
	want := sequentialDiag(t, a)
	got, err := PartitionedRetarded(a, 3, 16)
	if err != nil {
		t.Fatal(err)
	}
	if d := maxDiagDiff(got, want); d > 1e-12 {
		t.Errorf("workers=16 segments=3: max |Δ| = %g > 1e-12", d)
	}
}

func TestPartitionedAtRejectsBadSeparators(t *testing.T) {
	rng := rand.New(rand.NewSource(15))
	a := randomSystem(rng, 5, 2, 2.5, 0.6)
	for _, seps := range [][]int{{}, {-1}, {5}, {2, 2}, {3, 1}} {
		if _, err := PartitionedRetardedAt(a, seps, 1); err == nil {
			t.Errorf("seps=%v: want error, got none", seps)
		}
	}
}

// Every rank of the in-process cluster must return the full replicated
// diagonal of the sequential solve.
func TestDistributedRetardedMatchesSequential(t *testing.T) {
	rng := rand.New(rand.NewSource(21))
	for p := 2; p <= 5; p++ {
		for _, n := range []int{2*p - 1, 4 * p} {
			a := randomSystem(rng, n, 3, 2.5, 0.6)
			want := sequentialDiag(t, a)
			cluster := comm.NewCluster(p)
			worst := make([]float64, p)
			err := cluster.Run(func(r *comm.Rank) error {
				out, err := DistributedRetarded(r, a)
				if err != nil {
					return err
				}
				worst[r.ID] = maxDiagDiff(out, want)
				return nil
			})
			if err != nil {
				t.Fatalf("p=%d n=%d: %v", p, n, err)
			}
			for rank, d := range worst {
				if d > 1e-12 {
					t.Errorf("p=%d n=%d rank %d: max |Δ| = %g > 1e-12", p, n, rank, d)
				}
			}
		}
	}
}

func TestDistributedRetardedSingleRankFallsBack(t *testing.T) {
	rng := rand.New(rand.NewSource(22))
	a := randomSystem(rng, 5, 2, 2.5, 0.6)
	want := sequentialDiag(t, a)
	cluster := comm.NewCluster(1)
	if err := cluster.Run(func(r *comm.Rank) error {
		out, err := DistributedRetarded(r, a)
		if err != nil {
			return err
		}
		if d := maxDiagDiff(out, want); d > 1e-12 {
			t.Errorf("single rank: max |Δ| = %g", d)
		}
		return nil
	}); err != nil {
		t.Fatal(err)
	}
}

func TestDistributedRetardedTooFewBlocks(t *testing.T) {
	rng := rand.New(rand.NewSource(23))
	a := randomSystem(rng, 4, 2, 2.5, 0.6) // 3 ranks need ≥ 5 blocks
	cluster := comm.NewCluster(3)
	if err := cluster.Run(func(r *comm.Rank) error {
		_, err := DistributedRetarded(r, a)
		return err
	}); err == nil {
		t.Fatal("want partition-infeasible error, got none")
	}
}

// The solver's counted traffic must agree with the perfmodel spatial-split
// byte formula exactly (the in-process half of the conformance pin; the
// TCP half lives in the comm conformance suite).
func TestDistributedRetardedBytesMatchModel(t *testing.T) {
	rng := rand.New(rand.NewSource(24))
	for _, tc := range []struct{ p, n, bs int }{
		{2, 3, 2}, {2, 8, 3}, {3, 5, 2}, {3, 9, 4}, {4, 7, 2}, {5, 12, 3},
	} {
		a := randomSystem(rng, tc.n, tc.bs, 2.5, 0.6)
		cluster := comm.NewCluster(tc.p)
		if err := cluster.Run(func(r *comm.Rank) error {
			_, err := DistributedRetarded(r, a)
			return err
		}); err != nil {
			t.Fatalf("p=%d n=%d bs=%d: %v", tc.p, tc.n, tc.bs, err)
		}
		want := perfmodel.SpatialExchangeBytes(tc.n, tc.bs, tc.p)
		if got := cluster.TotalBytes(); got != want {
			t.Errorf("p=%d n=%d bs=%d: measured %d bytes, model %d", tc.p, tc.n, tc.bs, got, want)
		}
	}
}
