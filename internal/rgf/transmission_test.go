package rgf

import (
	"math"
	"math/rand"
	"testing"

	"negfsim/internal/cmat"
	"negfsim/internal/device"
)

func TestCornerBlockMatchesDense(t *testing.T) {
	rng := rand.New(rand.NewSource(41))
	a := randomSystem(rng, 5, 3, 2.0, 0.5)
	ret, err := SolveRetarded(a)
	if err != nil {
		t.Fatal(err)
	}
	full, err := cmat.Inverse(a.ToDense())
	if err != nil {
		t.Fatal(err)
	}
	bs := a.Bs
	want := full.Submatrix((a.N-1)*bs, a.N*bs, 0, bs)
	if d := ret.CornerBlock().MaxAbsDiff(want); d > 1e-9 {
		t.Fatalf("corner block vs dense diff %g", d)
	}
}

func TestLandauerEqualsMeirWingreen(t *testing.T) {
	// For coherent (ballistic) transport the Meir-Wingreen contact current
	// must equal the Landauer form T(E)·(f_L − f_R) at every energy — a
	// strong end-to-end identity linking the Keldysh and scattering
	// pictures of the same solver.
	d, err := device.New(device.Mini())
	if err != nil {
		t.Fatal(err)
	}
	h := d.Hamiltonian(0)
	s := d.Overlap(0)
	c := Contacts{MuL: 0.25, MuR: -0.15, KT: 0.03}
	var sawTransmission bool
	for _, e := range []float64{-0.2, -0.05, 0.0, 0.1, 0.2} {
		res, trans, err := SolveElectronBallistic(h, s, e, c, 1e-6)
		if err != nil {
			t.Fatalf("E=%g: %v", e, err)
		}
		if trans < -1e-9 {
			t.Fatalf("E=%g: negative transmission %g", e, trans)
		}
		if trans > 1e-6 {
			sawTransmission = true
		}
		landauer := trans * (FermiDirac(e, c.MuL, c.KT) - FermiDirac(e, c.MuR, c.KT))
		// Exact at η = 0; the iη broadening absorbs O(η/Γ) of the current.
		if diff := math.Abs(res.CurrentL - landauer); diff > 1e-3*(1+math.Abs(landauer)) {
			t.Fatalf("E=%g: Meir-Wingreen %g vs Landauer %g", e, res.CurrentL, landauer)
		}
	}
	if !sawTransmission {
		t.Fatal("no energy in the sweep transmitted — test vacuous")
	}
}

func TestTransmissionBoundedByChannels(t *testing.T) {
	// T(E) cannot exceed the number of conduction channels (the block size).
	d, err := device.New(device.Mini())
	if err != nil {
		t.Fatal(err)
	}
	h := d.Hamiltonian(1)
	s := d.Overlap(1)
	for e := -0.5; e <= 0.5; e += 0.1 {
		_, trans, err := SolveElectronBallistic(h, s, e, Contacts{MuL: 0.1, MuR: -0.1, KT: 0.025}, 1e-6)
		if err != nil {
			t.Fatal(err)
		}
		if trans > float64(h.Bs)+1e-6 {
			t.Fatalf("E=%g: transmission %g exceeds channel count %d", e, trans, h.Bs)
		}
	}
}
