package rgf

import "math"

// FermiDirac returns the electron occupation f(E) at chemical potential mu
// and thermal energy kT (all in eV). kT = 0 gives the step function.
func FermiDirac(e, mu, kT float64) float64 {
	if kT <= 0 {
		switch {
		case e < mu:
			return 1
		case e > mu:
			return 0
		default:
			return 0.5
		}
	}
	x := (e - mu) / kT
	// Guard the exponential to avoid overflow far from the step.
	if x > 40 {
		return math.Exp(-x)
	}
	if x < -40 {
		return 1
	}
	return 1 / (1 + math.Exp(x))
}

// BoseEinstein returns the phonon occupation N(ω) for phonon energy hw at
// thermal energy kT (both in eV).
func BoseEinstein(hw, kT float64) float64 {
	if kT <= 0 || hw <= 0 {
		return 0
	}
	x := hw / kT
	if x > 40 {
		return math.Exp(-x)
	}
	if x < 1e-9 {
		return 1/x - 0.5 // series expansion near zero keeps it finite
	}
	return 1 / (math.Exp(x) - 1)
}
