package rgf

import (
	"math"
	"math/cmplx"
	"math/rand"
	"testing"

	"negfsim/internal/cmat"
)

// randomSystem builds a Hermitian block-tridiagonal operator shifted into
// the complex plane so that it is safely invertible:
// A = (E + iη)·I − H with H random Hermitian.
func randomSystem(rng *rand.Rand, n, bs int, energy, eta float64) *cmat.BlockTri {
	a := cmat.NewBlockTri(n, bs)
	for i := 0; i < n; i++ {
		h := cmat.RandomHermitian(rng, bs, 0)
		a.Diag[i] = h.Scale(-1)
		for j := 0; j < bs; j++ {
			a.Diag[i].Set(j, j, a.Diag[i].At(j, j)+complex(energy, eta))
		}
	}
	for i := 0; i < n-1; i++ {
		a.Upper[i] = cmat.RandomDense(rng, bs, bs).Scale(0.3)
		a.Lower[i] = a.Upper[i].ConjTranspose().Scale(1)
	}
	return a
}

func randomScattering(rng *rand.Rand, n, bs int) []*cmat.Dense {
	out := make([]*cmat.Dense, n)
	for i := range out {
		// Anti-Hermitian blocks, like physical Σ^≷.
		h := cmat.RandomHermitian(rng, bs, 0)
		out[i] = h.Scale(1i)
	}
	return out
}

func TestSolveRetardedMatchesDense(t *testing.T) {
	rng := rand.New(rand.NewSource(1))
	for _, cfg := range []struct{ n, bs int }{{1, 4}, {2, 3}, {4, 5}, {7, 2}} {
		a := randomSystem(rng, cfg.n, cfg.bs, 3.0, 0.5)
		ret, err := SolveRetarded(a)
		if err != nil {
			t.Fatalf("n=%d bs=%d: %v", cfg.n, cfg.bs, err)
		}
		want, _, err := DenseReference(a, make([]*cmat.Dense, cfg.n))
		if err != nil {
			t.Fatal(err)
		}
		for i := 0; i < cfg.n; i++ {
			if d := ret.Diag[i].MaxAbsDiff(want[i]); d > 1e-9 {
				t.Fatalf("n=%d bs=%d block %d: RGF vs dense diff %g", cfg.n, cfg.bs, i, d)
			}
		}
	}
}

func TestSolveKeldyshMatchesDense(t *testing.T) {
	rng := rand.New(rand.NewSource(2))
	for _, cfg := range []struct{ n, bs int }{{1, 3}, {2, 4}, {5, 3}} {
		a := randomSystem(rng, cfg.n, cfg.bs, 2.5, 0.4)
		sig := randomScattering(rng, cfg.n, cfg.bs)
		ret, err := SolveRetarded(a)
		if err != nil {
			t.Fatal(err)
		}
		got := ret.SolveKeldysh(sig)
		_, want, err := DenseReference(a, sig)
		if err != nil {
			t.Fatal(err)
		}
		for i := 0; i < cfg.n; i++ {
			if d := got[i].MaxAbsDiff(want[i]); d > 1e-9 {
				t.Fatalf("n=%d bs=%d block %d: Keldysh RGF vs dense diff %g", cfg.n, cfg.bs, i, d)
			}
		}
	}
}

func TestOffDiagLowerMatchesDense(t *testing.T) {
	rng := rand.New(rand.NewSource(3))
	a := randomSystem(rng, 4, 3, 2.0, 0.5)
	ret, err := SolveRetarded(a)
	if err != nil {
		t.Fatal(err)
	}
	full, err := cmat.Inverse(a.ToDense())
	if err != nil {
		t.Fatal(err)
	}
	bs := a.Bs
	for n := 0; n < a.N-1; n++ {
		want := full.Submatrix((n+1)*bs, (n+2)*bs, n*bs, (n+1)*bs)
		if d := ret.OffDiagLower(n).MaxAbsDiff(want); d > 1e-9 {
			t.Fatalf("off-diagonal block (%d+1,%d): diff %g", n, n, d)
		}
	}
}

func TestSurfaceGFScalarChain(t *testing.T) {
	// 1-D chain, onsite 0, hopping t: the retarded surface GF obeys
	// t²·g² − (E+iη)·g + 1 = 0 with Im g < 0 inside the band.
	// η = 1e-6 matches the broadening the solvers use; much smaller values
	// hit the decimation's ε_mach/η² cancellation limit at the band center.
	hop := 0.5
	for _, e := range []float64{-0.7, 0.0, 0.4, 0.9} {
		z := complex(e, 1e-6)
		a00 := cmat.DenseFromSlice(1, 1, []complex128{z})
		a01 := cmat.DenseFromSlice(1, 1, []complex128{complex(-hop, 0)})
		a10 := cmat.DenseFromSlice(1, 1, []complex128{complex(-hop, 0)})
		g, err := SurfaceGF(a00, a01, a10, 1e-14)
		if err != nil {
			t.Fatalf("E=%g: %v", e, err)
		}
		gv := g.At(0, 0)
		resid := complex(hop*hop, 0)*gv*gv - z*gv + 1
		if cmplx.Abs(resid) > 1e-4 {
			t.Fatalf("E=%g: surface GF residual %g", e, cmplx.Abs(resid))
		}
		if math.Abs(e) < 2*hop && imag(gv) >= 0 {
			t.Fatalf("E=%g: retarded branch must have Im g < 0 in band, got %g", e, imag(gv))
		}
	}
}

func TestSurfaceGFOutsideBandIsReal(t *testing.T) {
	hop := 0.25
	z := complex(3.0, 1e-9) // far outside the band [−0.5, 0.5]
	a00 := cmat.DenseFromSlice(1, 1, []complex128{z})
	tt := cmat.DenseFromSlice(1, 1, []complex128{complex(-hop, 0)})
	g, err := SurfaceGF(a00, tt, tt, 1e-14)
	if err != nil {
		t.Fatal(err)
	}
	if math.Abs(imag(g.At(0, 0))) > 1e-6 {
		t.Fatalf("outside the band Im g should vanish, got %g", imag(g.At(0, 0)))
	}
}

func TestBoundarySelfEnergiesNeedTwoBlocks(t *testing.T) {
	a := cmat.NewBlockTri(1, 2)
	if _, _, err := BoundarySelfEnergies(a, 1e-10); err == nil {
		t.Fatal("expected error for single-block operator")
	}
}

func TestBroadeningHermitianPositive(t *testing.T) {
	rng := rand.New(rand.NewSource(4))
	sig := cmat.RandomDense(rng, 4, 4)
	gam := Broadening(sig)
	if !gam.IsHermitian(1e-12) {
		t.Fatal("Γ must be Hermitian")
	}
}

func TestFermiDirac(t *testing.T) {
	if FermiDirac(-1, 0, 0.025) < 0.999 {
		t.Fatal("deep below mu, f ≈ 1")
	}
	if FermiDirac(1, 0, 0.025) > 1e-10 {
		t.Fatal("far above mu, f ≈ 0")
	}
	if got := FermiDirac(0, 0, 0.025); math.Abs(got-0.5) > 1e-12 {
		t.Fatalf("f(mu) = %g, want 0.5", got)
	}
	// Zero-temperature step.
	if FermiDirac(-0.01, 0, 0) != 1 || FermiDirac(0.01, 0, 0) != 0 || FermiDirac(0, 0, 0) != 0.5 {
		t.Fatal("zero-temperature step wrong")
	}
	// Monotone decreasing.
	prev := 2.0
	for e := -1.0; e <= 1.0; e += 0.05 {
		f := FermiDirac(e, 0, 0.05)
		if f > prev {
			t.Fatal("Fermi function must be non-increasing")
		}
		prev = f
	}
}

func TestBoseEinstein(t *testing.T) {
	if BoseEinstein(0.5, 0.025) > 1e-8 {
		t.Fatal("high-energy phonons barely occupied")
	}
	if BoseEinstein(0.001, 0.025) < 20 {
		t.Fatal("low-energy phonons heavily occupied")
	}
	if BoseEinstein(0.01, 0) != 0 {
		t.Fatal("zero temperature, zero occupation")
	}
	// Detailed balance: N(ω)·e^{ω/kT} = N(ω) + 1.
	n := BoseEinstein(0.02, 0.025)
	if math.Abs(n*math.Exp(0.02/0.025)-(n+1)) > 1e-9 {
		t.Fatal("detailed balance violated")
	}
}
