package rgf

import (
	"fmt"

	"negfsim/internal/cmat"
)

// PhononScattering carries the per-RGF-block phonon self-energy matrices
// Π^R, Π^≷ for one (ω, qz) point; entries may be nil.
type PhononScattering struct {
	R, Less, Gtr []*cmat.Dense
}

// PhononContacts sets the lattice temperature of the two contacts via their
// Bose occupations.
type PhononContacts struct {
	KTL, KTR float64 // thermal energies of the left/right heat bath [eV]
}

// PhononResult is the solution of Eq. (2) at one (ω, qz) point.
type PhononResult struct {
	DR, DLess, DGtr []*cmat.Dense // diagonal blocks

	// HeatL/HeatR are the phonon (energy) currents at the contacts,
	// Tr[Π^<_c·D^> − Π^>_c·D^<] in natural units.
	HeatL, HeatR float64
}

// SolvePhonon solves one (ω, qz) point of Eq. (2):
// (ω²·I − Φ(qz) − Π^R)·D^R = I and D^≷ = D^R·Π^≷·D^A.
// hw is the phonon energy ℏω in eV; the squared frequency enters the
// operator directly.
func SolvePhonon(phi *cmat.BlockTri, hw float64, scat PhononScattering, c PhononContacts, eta float64) (*PhononResult, error) {
	if hw <= 0 {
		return nil, fmt.Errorf("rgf: phonon energy must be positive, got %g", hw)
	}
	n := phi.N
	// A = (ω² + iη)·I − Φ. ShiftDiag needs an S operand: block identity.
	eye := cmat.NewBlockTri(phi.N, phi.Bs)
	for i := 0; i < phi.N; i++ {
		eye.Diag[i] = cmat.Identity(phi.Bs)
	}
	w2 := complex(hw*hw, eta)
	a0 := phi.ShiftDiag(w2, eye)
	sigL, sigR, err := BoundarySelfEnergies(a0, 1e-10)
	if err != nil {
		return nil, err
	}
	gamL, gamR := Broadening(sigL), Broadening(sigR)

	a := a0.Clone()
	a.Diag[0] = a.Diag[0].Sub(sigL)
	a.Diag[n-1] = a.Diag[n-1].Sub(sigR)
	if scat.R != nil {
		for i := 0; i < n; i++ {
			if scat.R[i] != nil {
				a.Diag[i] = a.Diag[i].Sub(scat.R[i])
			}
		}
	}

	ret, err := SolveRetarded(a)
	if err != nil {
		return nil, err
	}

	nL := BoseEinstein(hw, c.KTL)
	nR := BoseEinstein(hw, c.KTR)
	// Π^< = −i·N·Γ and Π^> = −i·(N+1)·Γ at the contacts, so that
	// Π^> − Π^< = −i·Γ = Π^R − Π^A holds.
	piLess := make([]*cmat.Dense, n)
	piGtr := make([]*cmat.Dense, n)
	for i := 0; i < n; i++ {
		less := cmat.NewDense(phi.Bs, phi.Bs)
		gtr := cmat.NewDense(phi.Bs, phi.Bs)
		if scat.Less != nil && scat.Less[i] != nil {
			less.AddInPlace(scat.Less[i])
		}
		if scat.Gtr != nil && scat.Gtr[i] != nil {
			gtr.AddInPlace(scat.Gtr[i])
		}
		piLess[i] = less
		piGtr[i] = gtr
	}
	piLess[0].AddScaledInPlace(complex(0, -nL), gamL)
	piGtr[0].AddScaledInPlace(complex(0, -(nL+1)), gamL)
	piLess[n-1].AddScaledInPlace(complex(0, -nR), gamR)
	piGtr[n-1].AddScaledInPlace(complex(0, -(nR+1)), gamR)

	res := &PhononResult{DR: ret.Diag}
	res.DLess = ret.SolveKeldysh(piLess)
	res.DGtr = ret.SolveKeldysh(piGtr)

	cLessL := gamL.Scale(complex(0, -nL))
	cGtrL := gamL.Scale(complex(0, -(nL + 1)))
	cLessR := gamR.Scale(complex(0, -nR))
	cGtrR := gamR.Scale(complex(0, -(nR + 1)))
	res.HeatL = real(cLessL.Mul(res.DGtr[0]).Trace() - cGtrL.Mul(res.DLess[0]).Trace())
	res.HeatR = real(cLessR.Mul(res.DGtr[n-1]).Trace() - cGtrR.Mul(res.DLess[n-1]).Trace())
	return res, nil
}
