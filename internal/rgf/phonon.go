package rgf

import (
	"fmt"

	"negfsim/internal/cmat"
)

// PhononScattering carries the per-RGF-block phonon self-energy matrices
// Π^R, Π^≷ for one (ω, qz) point; entries may be nil.
type PhononScattering struct {
	R, Less, Gtr []*cmat.Dense
}

// Release returns arena-backed scattering blocks to the workspace arena,
// for callers that assembled them with cmat.GetDense.
func (s PhononScattering) Release() {
	cmat.PutAll(s.R...)
	cmat.PutAll(s.Less...)
	cmat.PutAll(s.Gtr...)
}

// PhononContacts sets the lattice temperature of the two contacts via their
// Bose occupations.
type PhononContacts struct {
	KTL, KTR float64 // thermal energies of the left/right heat bath [eV]
}

// PhononResult is the solution of Eq. (2) at one (ω, qz) point.
type PhononResult struct {
	DR, DLess, DGtr []*cmat.Dense // diagonal blocks

	// HeatL/HeatR are the phonon (energy) currents at the contacts,
	// Tr[Π^<_c·D^> − Π^>_c·D^<] in natural units.
	HeatL, HeatR float64
}

// Release returns every Green's function block of the result to the
// workspace arena. The result must not be used afterwards.
func (r *PhononResult) Release() {
	cmat.PutAll(r.DR...)
	cmat.PutAll(r.DLess...)
	cmat.PutAll(r.DGtr...)
	r.DR, r.DLess, r.DGtr = nil, nil, nil
}

// SolvePhonon solves one (ω, qz) point of Eq. (2):
// (ω²·I − Φ(qz) − Π^R)·D^R = I and D^≷ = D^R·Π^≷·D^A.
// hw is the phonon energy ℏω in eV; the squared frequency enters the
// operator directly.
//
// Like SolveElectron, the solve is arena-backed throughout: the operator
// ω²·I − Φ is assembled in one pass into a pooled matrix (no block identity
// is materialized) and mutated in place; result blocks are released via
// (*PhononResult).Release.
func SolvePhonon(phi *cmat.BlockTri, hw float64, scat PhononScattering, c PhononContacts, eta float64) (*PhononResult, error) {
	if hw <= 0 {
		return nil, fmt.Errorf("rgf: phonon energy must be positive, got %g", hw)
	}
	sp := obsSpanPhonon.Start()
	defer sp.End()
	n, bs := phi.N, phi.Bs
	// A = (ω² + iη)·I − Φ.
	a := cmat.GetBlockTri(n, bs)
	defer cmat.PutBlockTri(a)
	phi.ShiftIdentityInto(a, complex(hw*hw, eta))
	spb := obsSpanBoundary.Start()
	sigL, sigR, err := BoundarySelfEnergies(a, 1e-10)
	spb.End()
	if err != nil {
		return nil, err
	}
	gamL := cmat.GetDense(bs, bs)
	gamR := cmat.GetDense(bs, bs)
	broadeningInto(gamL, sigL)
	broadeningInto(gamR, sigR)

	a.Diag[0].SubInPlace(sigL)
	a.Diag[n-1].SubInPlace(sigR)
	cmat.PutAll(sigL, sigR)
	if scat.R != nil {
		for i := 0; i < n; i++ {
			if scat.R[i] != nil {
				a.Diag[i].SubInPlace(scat.R[i])
			}
		}
	}

	ret, err := SolveRetarded(a)
	if err != nil {
		cmat.PutAll(gamL, gamR)
		return nil, err
	}

	nL := BoseEinstein(hw, c.KTL)
	nR := BoseEinstein(hw, c.KTR)
	// Π^< = −i·N·Γ and Π^> = −i·(N+1)·Γ at the contacts, so that
	// Π^> − Π^< = −i·Γ = Π^R − Π^A holds.
	piLess := make([]*cmat.Dense, n)
	piGtr := make([]*cmat.Dense, n)
	for i := 0; i < n; i++ {
		less := cmat.GetDense(bs, bs)
		gtr := cmat.GetDense(bs, bs)
		if scat.Less != nil && scat.Less[i] != nil {
			less.AddInPlace(scat.Less[i])
		}
		if scat.Gtr != nil && scat.Gtr[i] != nil {
			gtr.AddInPlace(scat.Gtr[i])
		}
		piLess[i] = less
		piGtr[i] = gtr
	}
	piLess[0].AddScaledInPlace(complex(0, -nL), gamL)
	piGtr[0].AddScaledInPlace(complex(0, -(nL+1)), gamL)
	piLess[n-1].AddScaledInPlace(complex(0, -nR), gamR)
	piGtr[n-1].AddScaledInPlace(complex(0, -(nR+1)), gamR)

	res := &PhononResult{DR: ret.Diag}
	res.DLess = ret.SolveKeldysh(piLess)
	res.DGtr = ret.SolveKeldysh(piGtr)
	ret.releaseGL()
	cmat.PutAll(piLess...)
	cmat.PutAll(piGtr...)

	// Contact heat currents via trace products, no matrix intermediates:
	// Tr[Π^<_c·D^> − Π^>_c·D^<] with Π^<_c = −i·N·Γ, Π^>_c = −i·(N+1)·Γ.
	tL := gamL.TraceMul(res.DGtr[0])
	uL := gamL.TraceMul(res.DLess[0])
	res.HeatL = real(complex(0, -nL)*tL - complex(0, -(nL+1))*uL)
	tR := gamR.TraceMul(res.DGtr[n-1])
	uR := gamR.TraceMul(res.DLess[n-1])
	res.HeatR = real(complex(0, -nR)*tR - complex(0, -(nR+1))*uR)
	cmat.PutAll(gamL, gamR)
	return res, nil
}
