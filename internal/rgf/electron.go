package rgf

import (
	"fmt"

	"negfsim/internal/cmat"
	"negfsim/internal/comm"
	"negfsim/internal/obs"
)

// Phase timers of the GF phase. One span per solve (and per boundary
// decimation inside it); allocation-free and near-nops while obs recording
// is disabled, so the per-grid-point hot loop is unaffected.
var (
	obsSpanElectron = obs.GetTimer("rgf.electron")
	obsSpanPhonon   = obs.GetTimer("rgf.phonon")
	obsSpanBoundary = obs.GetTimer("rgf.boundary")
)

// Scattering carries the per-RGF-block scattering self-energy matrices for
// one (E, kz) point. Entries may be nil (treated as zero): the first GF pass
// of the Born iteration runs with Σ = 0. Only the diagonal blocks of Σ^S are
// retained, as in the paper (§2).
type Scattering struct {
	R, Less, Gtr []*cmat.Dense
}

// Release returns arena-backed scattering blocks to the workspace arena,
// for callers that assembled them with cmat.GetDense.
func (s Scattering) Release() {
	cmat.PutAll(s.R...)
	cmat.PutAll(s.Less...)
	cmat.PutAll(s.Gtr...)
}

// Contacts sets the occupation of the two leads.
type Contacts struct {
	MuL, MuR float64 // chemical potentials [eV]
	KT       float64 // thermal energy [eV]
}

// ElectronResult is the solution of Eq. (1) at one (E, kz) point.
type ElectronResult struct {
	GR, GLess, GGtr []*cmat.Dense // diagonal blocks

	// CurrentL/CurrentR are the Meir-Wingreen contact currents
	// Tr[Σ^<_c·G^> − Σ^>_c·G^<] evaluated at the left/right contact
	// (per-energy spectral current in natural units q/ℏ = 1; positive means
	// net electron flow into the device through that contact).
	CurrentL, CurrentR float64

	// DissipationPerBlock is Tr[Σ^<_S·G^> − Σ^>_S·G^<] per RGF block: the
	// energy exchanged with the phonon bath, driving the self-heating map.
	DissipationPerBlock []float64
}

// Release returns every Green's function block of the result to the
// workspace arena. The result must not be used afterwards. Callers that keep
// the blocks (tests, public results) simply never call it.
func (r *ElectronResult) Release() {
	cmat.PutAll(r.GR...)
	cmat.PutAll(r.GLess...)
	cmat.PutAll(r.GGtr...)
	r.GR, r.GLess, r.GGtr = nil, nil, nil
}

// SolveElectron solves one (E, kz) point of Eq. (1): boundary self-energies
// by Sancho-Rubio on the pristine operator, then the retarded and Keldysh
// RGF passes with the supplied scattering self-energies.
//
// The whole solve runs on workspace-arena buffers: the device operator is
// assembled once into a pooled block-tridiagonal matrix and mutated in place
// (no per-call Clone or Sub chains), and all intermediates are returned to
// the arena before the function exits. The result blocks are pooled too —
// call (*ElectronResult).Release once their contents have been consumed.
func SolveElectron(h, s *cmat.BlockTri, energy float64, scat Scattering, c Contacts, eta float64) (*ElectronResult, error) {
	return solveElectron(nil, true, h, s, energy, scat, c, eta)
}

// SolveElectronSpatial is SolveElectron with the retarded solve partitioned
// across the ranks of a cluster (DistributedRetarded): every rank assembles
// the identical operator and participates in the spatial exchange. Ranks
// with closure=true then run the Keldysh pass, currents and dissipation on
// the replicated diagonal and return the full result; the others return
// (nil, nil) once the collective solve is done. Exactly the closure ranks
// get a result, so a caller accumulating observables must pick closure
// ranks that cover each grid point exactly once per process.
func SolveElectronSpatial(r *comm.Rank, closure bool, h, s *cmat.BlockTri, energy float64, scat Scattering, c Contacts, eta float64) (*ElectronResult, error) {
	return solveElectron(r, closure, h, s, energy, scat, c, eta)
}

func solveElectron(rank *comm.Rank, closure bool, h, s *cmat.BlockTri, energy float64, scat Scattering, c Contacts, eta float64) (*ElectronResult, error) {
	if h.N != s.N || h.Bs != s.Bs {
		return nil, fmt.Errorf("rgf: H and S shapes differ: (%d,%d) vs (%d,%d)", h.N, h.Bs, s.N, s.Bs)
	}
	sp := obsSpanElectron.Start()
	defer sp.End()
	n, bs := h.N, h.Bs
	// A = (E + iη)·S − H, before scattering: the leads are ballistic.
	a := cmat.GetBlockTri(n, bs)
	defer cmat.PutBlockTri(a)
	h.ShiftDiagInto(a, complex(energy, eta), s)
	spb := obsSpanBoundary.Start()
	sigL, sigR, err := BoundarySelfEnergies(a, 1e-10)
	spb.End()
	if err != nil {
		return nil, err
	}
	gamL := cmat.GetDense(bs, bs)
	gamR := cmat.GetDense(bs, bs)
	broadeningInto(gamL, sigL)
	broadeningInto(gamR, sigR)

	// Fold boundary and scattering retarded parts into the device operator.
	a.Diag[0].SubInPlace(sigL)
	a.Diag[n-1].SubInPlace(sigR)
	cmat.PutAll(sigL, sigR)
	if scat.R != nil {
		for i := 0; i < n; i++ {
			if scat.R[i] != nil {
				a.Diag[i].SubInPlace(scat.R[i])
			}
		}
	}

	var ret *Retarded
	if rank == nil {
		ret, err = SolveRetarded(a)
		if err != nil {
			cmat.PutAll(gamL, gamR)
			return nil, err
		}
	} else {
		// Spatial split: the diagonal comes out of the distributed solve
		// (replicated on every rank); the closure rank rebuilds the
		// left-connected gL it needs for the Keldysh pass locally.
		diag, derr := DistributedRetarded(rank, a)
		if derr != nil {
			cmat.PutAll(gamL, gamR)
			return nil, derr
		}
		if !closure {
			cmat.PutAll(gamL, gamR)
			return nil, nil
		}
		gl, gerr := forwardGL(a)
		if gerr != nil {
			cmat.PutAll(gamL, gamR)
			return nil, gerr
		}
		ret = &Retarded{Diag: diag, gL: gl, a: a}
	}

	fL := FermiDirac(energy, c.MuL, c.KT)
	fR := FermiDirac(energy, c.MuR, c.KT)
	// Σ^< = i·f·Γ and Σ^> = i·(f−1)·Γ at the contacts.
	sigLessBlocks := make([]*cmat.Dense, n)
	sigGtrBlocks := make([]*cmat.Dense, n)
	for i := 0; i < n; i++ {
		less := cmat.GetDense(bs, bs)
		gtr := cmat.GetDense(bs, bs)
		if scat.Less != nil && scat.Less[i] != nil {
			less.AddInPlace(scat.Less[i])
		}
		if scat.Gtr != nil && scat.Gtr[i] != nil {
			gtr.AddInPlace(scat.Gtr[i])
		}
		sigLessBlocks[i] = less
		sigGtrBlocks[i] = gtr
	}
	sigLessBlocks[0].AddScaledInPlace(complex(0, fL), gamL)
	sigGtrBlocks[0].AddScaledInPlace(complex(0, fL-1), gamL)
	sigLessBlocks[n-1].AddScaledInPlace(complex(0, fR), gamR)
	sigGtrBlocks[n-1].AddScaledInPlace(complex(0, fR-1), gamR)

	res := &ElectronResult{GR: ret.Diag}
	res.GLess = ret.SolveKeldysh(sigLessBlocks)
	res.GGtr = ret.SolveKeldysh(sigGtrBlocks)
	ret.releaseGL()
	cmat.PutAll(sigLessBlocks...)
	cmat.PutAll(sigGtrBlocks...)

	// Meir-Wingreen contact currents, via O(bs²) trace products:
	// Tr[Σ^<_c·G^> − Σ^>_c·G^<] with Σ^≷_c = i·f·Γ / i·(f−1)·Γ.
	tL := gamL.TraceMul(res.GGtr[0])
	uL := gamL.TraceMul(res.GLess[0])
	res.CurrentL = real(complex(0, fL)*tL - complex(0, fL-1)*uL)
	tR := gamR.TraceMul(res.GGtr[n-1])
	uR := gamR.TraceMul(res.GLess[n-1])
	res.CurrentR = real(complex(0, fR)*tR - complex(0, fR-1)*uR)
	cmat.PutAll(gamL, gamR)

	res.DissipationPerBlock = make([]float64, n)
	if scat.Less != nil && scat.Gtr != nil {
		for i := 0; i < n; i++ {
			if scat.Less[i] == nil || scat.Gtr[i] == nil {
				continue
			}
			res.DissipationPerBlock[i] = real(scat.Less[i].TraceMul(res.GGtr[i]) -
				scat.Gtr[i].TraceMul(res.GLess[i]))
		}
	}
	return res, nil
}

// SpectralPerAtom returns −Im diag(G^R)/π aggregated per atom (local density
// of states), given the per-block diagonal G^R and orbitals per atom.
func SpectralPerAtom(gr []*cmat.Dense, norb int) []float64 {
	var out []float64
	for _, g := range gr {
		atoms := g.Rows / norb
		for a := 0; a < atoms; a++ {
			var s float64
			for o := 0; o < norb; o++ {
				s -= imag(g.At(a*norb+o, a*norb+o))
			}
			out = append(out, s/3.141592653589793)
		}
	}
	return out
}
