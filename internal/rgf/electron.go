package rgf

import (
	"fmt"

	"negfsim/internal/cmat"
)

// Scattering carries the per-RGF-block scattering self-energy matrices for
// one (E, kz) point. Entries may be nil (treated as zero): the first GF pass
// of the Born iteration runs with Σ = 0. Only the diagonal blocks of Σ^S are
// retained, as in the paper (§2).
type Scattering struct {
	R, Less, Gtr []*cmat.Dense
}

// Contacts sets the occupation of the two leads.
type Contacts struct {
	MuL, MuR float64 // chemical potentials [eV]
	KT       float64 // thermal energy [eV]
}

// ElectronResult is the solution of Eq. (1) at one (E, kz) point.
type ElectronResult struct {
	GR, GLess, GGtr []*cmat.Dense // diagonal blocks

	// CurrentL/CurrentR are the Meir-Wingreen contact currents
	// Tr[Σ^<_c·G^> − Σ^>_c·G^<] evaluated at the left/right contact
	// (per-energy spectral current in natural units q/ℏ = 1; positive means
	// net electron flow into the device through that contact).
	CurrentL, CurrentR float64

	// DissipationPerBlock is Tr[Σ^<_S·G^> − Σ^>_S·G^<] per RGF block: the
	// energy exchanged with the phonon bath, driving the self-heating map.
	DissipationPerBlock []float64
}

// SolveElectron solves one (E, kz) point of Eq. (1): boundary self-energies
// by Sancho-Rubio on the pristine operator, then the retarded and Keldysh
// RGF passes with the supplied scattering self-energies.
func SolveElectron(h, s *cmat.BlockTri, energy float64, scat Scattering, c Contacts, eta float64) (*ElectronResult, error) {
	if h.N != s.N || h.Bs != s.Bs {
		return nil, fmt.Errorf("rgf: H and S shapes differ: (%d,%d) vs (%d,%d)", h.N, h.Bs, s.N, s.Bs)
	}
	n := h.N
	// A = (E + iη)·S − H, before scattering: the leads are ballistic.
	a0 := h.ShiftDiag(complex(energy, eta), s)
	sigL, sigR, err := BoundarySelfEnergies(a0, 1e-10)
	if err != nil {
		return nil, err
	}
	gamL, gamR := Broadening(sigL), Broadening(sigR)

	// Device operator: subtract boundary and scattering retarded parts.
	a := a0.Clone()
	a.Diag[0] = a.Diag[0].Sub(sigL)
	a.Diag[n-1] = a.Diag[n-1].Sub(sigR)
	if scat.R != nil {
		for i := 0; i < n; i++ {
			if scat.R[i] != nil {
				a.Diag[i] = a.Diag[i].Sub(scat.R[i])
			}
		}
	}

	ret, err := SolveRetarded(a)
	if err != nil {
		return nil, err
	}

	fL := FermiDirac(energy, c.MuL, c.KT)
	fR := FermiDirac(energy, c.MuR, c.KT)
	// Σ^< = i·f·Γ and Σ^> = i·(f−1)·Γ at the contacts.
	sigLessBlocks := make([]*cmat.Dense, n)
	sigGtrBlocks := make([]*cmat.Dense, n)
	for i := 0; i < n; i++ {
		less := cmat.NewDense(h.Bs, h.Bs)
		gtr := cmat.NewDense(h.Bs, h.Bs)
		if scat.Less != nil && scat.Less[i] != nil {
			less.AddInPlace(scat.Less[i])
		}
		if scat.Gtr != nil && scat.Gtr[i] != nil {
			gtr.AddInPlace(scat.Gtr[i])
		}
		sigLessBlocks[i] = less
		sigGtrBlocks[i] = gtr
	}
	sigLessBlocks[0].AddScaledInPlace(complex(0, fL), gamL)
	sigGtrBlocks[0].AddScaledInPlace(complex(0, fL-1), gamL)
	sigLessBlocks[n-1].AddScaledInPlace(complex(0, fR), gamR)
	sigGtrBlocks[n-1].AddScaledInPlace(complex(0, fR-1), gamR)

	res := &ElectronResult{GR: ret.Diag}
	res.GLess = ret.SolveKeldysh(sigLessBlocks)
	res.GGtr = ret.SolveKeldysh(sigGtrBlocks)

	// Meir-Wingreen contact currents.
	sigLessL := gamL.Scale(complex(0, fL))
	sigGtrL := gamL.Scale(complex(0, fL-1))
	sigLessR := gamR.Scale(complex(0, fR))
	sigGtrR := gamR.Scale(complex(0, fR-1))
	res.CurrentL = real(sigLessL.Mul(res.GGtr[0]).Trace() - sigGtrL.Mul(res.GLess[0]).Trace())
	res.CurrentR = real(sigLessR.Mul(res.GGtr[n-1]).Trace() - sigGtrR.Mul(res.GLess[n-1]).Trace())

	res.DissipationPerBlock = make([]float64, n)
	if scat.Less != nil && scat.Gtr != nil {
		for i := 0; i < n; i++ {
			if scat.Less[i] == nil || scat.Gtr[i] == nil {
				continue
			}
			res.DissipationPerBlock[i] = real(scat.Less[i].Mul(res.GGtr[i]).Trace() -
				scat.Gtr[i].Mul(res.GLess[i]).Trace())
		}
	}
	return res, nil
}

// SpectralPerAtom returns −Im diag(G^R)/π aggregated per atom (local density
// of states), given the per-block diagonal G^R and orbitals per atom.
func SpectralPerAtom(gr []*cmat.Dense, norb int) []float64 {
	var out []float64
	for _, g := range gr {
		atoms := g.Rows / norb
		for a := 0; a < atoms; a++ {
			var s float64
			for o := 0; o < norb; o++ {
				s -= imag(g.At(a*norb+o, a*norb+o))
			}
			out = append(out, s/3.141592653589793)
		}
	}
	return out
}
