package rgf

import (
	"math/rand"
	"testing"

	"negfsim/internal/cmat"
)

func TestPartitionedRetardedMatchesSequential(t *testing.T) {
	rng := rand.New(rand.NewSource(91))
	for _, cfg := range []struct{ n, bs, segments int }{
		{5, 3, 2}, {7, 2, 3}, {9, 4, 2}, {12, 3, 4}, {11, 2, 5}, {3, 2, 2},
	} {
		a := randomSystem(rng, cfg.n, cfg.bs, 2.5, 0.6)
		want, err := SolveRetarded(a)
		if err != nil {
			t.Fatal(err)
		}
		got, err := PartitionedRetarded(a, cfg.segments, 4)
		if err != nil {
			t.Fatalf("n=%d segments=%d: %v", cfg.n, cfg.segments, err)
		}
		for i := 0; i < cfg.n; i++ {
			if d := got[i].MaxAbsDiff(want.Diag[i]); d > 1e-8 {
				t.Fatalf("n=%d bs=%d segments=%d block %d: diff %g",
					cfg.n, cfg.bs, cfg.segments, i, d)
			}
		}
	}
}

func TestPartitionedRetardedFallbackAndErrors(t *testing.T) {
	rng := rand.New(rand.NewSource(92))
	a := randomSystem(rng, 4, 2, 2.0, 0.5)
	// segments ≤ 1 falls back to the sequential solver.
	got, err := PartitionedRetarded(a, 1, 2)
	if err != nil {
		t.Fatal(err)
	}
	want, _ := SolveRetarded(a)
	for i := range got {
		if d := got[i].MaxAbsDiff(want.Diag[i]); d > 1e-12 {
			t.Fatalf("fallback differs at block %d by %g", i, d)
		}
	}
	// Too many segments for the chain length.
	if _, err := PartitionedRetarded(a, 4, 2); err == nil {
		t.Fatal("4 segments over 4 blocks must be rejected")
	}
}

func TestPartitionedWorkerCountInvariance(t *testing.T) {
	rng := rand.New(rand.NewSource(93))
	a := randomSystem(rng, 13, 3, 2.2, 0.5)
	ref, err := PartitionedRetarded(a, 4, 1)
	if err != nil {
		t.Fatal(err)
	}
	for _, workers := range []int{2, 4, 8} {
		got, err := PartitionedRetarded(a, 4, workers)
		if err != nil {
			t.Fatal(err)
		}
		for i := range got {
			if d := got[i].MaxAbsDiff(ref[i]); d != 0 {
				t.Fatalf("workers=%d: result depends on worker count (block %d, %g)", workers, i, d)
			}
		}
	}
}

func TestOffDiagUpperMatchesDense(t *testing.T) {
	rng := rand.New(rand.NewSource(94))
	a := randomSystem(rng, 4, 3, 2.0, 0.5)
	ret, err := SolveRetarded(a)
	if err != nil {
		t.Fatal(err)
	}
	full, err := cmat.Inverse(a.ToDense())
	if err != nil {
		t.Fatal(err)
	}
	bs := a.Bs
	for n := 0; n < a.N-1; n++ {
		want := full.Submatrix(n*bs, (n+1)*bs, (n+1)*bs, (n+2)*bs)
		if d := ret.OffDiagUpper(n).MaxAbsDiff(want); d > 1e-9 {
			t.Fatalf("off-diagonal block (%d,%d+1): diff %g", n, n, d)
		}
	}
}
