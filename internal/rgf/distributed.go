package rgf

import (
	"fmt"

	"negfsim/internal/cmat"
	"negfsim/internal/comm"
)

// Distributed device-partitioned RGF — the spatial level of OMEN's
// momentum/energy/space MPI hierarchy, run over a comm.Cluster. The three
// phases of PartitionedRetarded map onto ranks:
//
//	rank k owns segment k of the even-spread layout (evenSeps);
//	phase 1 (interior elimination) is local;
//	phase 2 gathers every segment's Schur-complement separator
//	  contributions at rank 0, which solves the reduced (P−1)-separator
//	  system and broadcasts the packed solution;
//	phase 3 (interior recovery) is local again, followed by an allgather
//	  of the interior diagonal blocks so every rank holds the full
//	  replicated diagonal.
//
// Counted wire traffic is exactly
//
//	16·bs²·[(4P−7) + (P−1)(3P−5) + (P−1)(n−P+1)]
//
// bytes per solve for P ≥ 2 ranks and n blocks: 4P−7 gathered contribution
// blocks (rank 0's own is local), (P−1) copies of the 3P−5 packed separator
// solution blocks, and (P−1) copies of the n−(P−1) interior blocks. The
// perfmodel spatial-split volume model mirrors this formula and the comm
// conformance suite pins the two against each other on both transports.

// DistributedRetarded computes the diagonal blocks of A⁻¹ across the ranks
// of a cluster, each rank eliminating its own contiguous run of device
// blocks. Every rank must pass an identical operator A; every rank returns
// the full replicated diagonal. A cluster of size 1 degenerates to the
// sequential solve. Requires A.N ≥ 2·Size−1 so every rank owns at least one
// interior block.
func DistributedRetarded(r *comm.Rank, a *cmat.BlockTri) ([]*cmat.Dense, error) {
	p := r.Size()
	n, bs := a.N, a.Bs
	if p <= 1 {
		ret, err := SolveRetarded(a)
		if err != nil {
			return nil, err
		}
		ret.releaseGL()
		return ret.Diag, nil
	}
	if n < 2*p-1 {
		return nil, fmt.Errorf("rgf: %d blocks cannot be partitioned across %d ranks", n, p)
	}
	seps := evenSeps(n, p)
	segs := buildSegments(n, seps)
	sg := segs[r.ID]

	// Phase 1: eliminate the local interior.
	if err := sg.localInverse(a); err != nil {
		return nil, err
	}

	// Phase 2a: gather Schur-complement contributions at rank 0. Segment k
	// contributes [toL?, toR?, up?, lo?] — the subset is determined by the
	// rank id alone, so the wire format needs no headers.
	toL, toR, up, lo := sg.schurContribution(a)
	if r.ID == 0 {
		red := cmat.NewBlockTri(len(seps), bs)
		contribs := make([][4]*cmat.Dense, p)
		contribs[0] = [4]*cmat.Dense{toL, toR, up, lo}
		for k := 1; k < p; k++ {
			buf, err := r.Recv(k)
			if err != nil {
				return nil, fmt.Errorf("rgf: gathering separator contributions from rank %d: %w", k, err)
			}
			var c [4]*cmat.Dense
			want := 0
			for slot := 0; slot < 4; slot++ {
				if !contribPresent(k, p, slot) {
					continue
				}
				c[slot] = cmat.DenseFromSlice(bs, bs, buf[want*bs*bs:(want+1)*bs*bs])
				want++
			}
			if len(buf) != want*bs*bs {
				return nil, fmt.Errorf("rgf: rank %d sent %d values, want %d contribution blocks", k, len(buf), want)
			}
			contribs[k] = c
		}
		assembleReduced(red, a, seps, contribs)
		ret, err := SolveRetarded(red)
		if err != nil {
			return nil, fmt.Errorf("rgf: reduced separator system: %w", err)
		}
		sol := solutionOf(ret)
		ret.releaseGL()
		if _, err := r.Bcast(0, packSolution(sol, bs)); err != nil {
			return nil, fmt.Errorf("rgf: broadcasting separator solution: %w", err)
		}
		return finishDistributed(r, a, seps, segs, sg, sol)
	}
	buf := make([]complex128, 0, 4*bs*bs)
	for _, b := range []*cmat.Dense{toL, toR, up, lo} {
		if b != nil {
			buf = append(buf, b.Data...)
		}
	}
	if err := r.Send(0, buf); err != nil {
		return nil, fmt.Errorf("rgf: sending separator contributions: %w", err)
	}
	// Phase 2b: receive the packed separator solution.
	wire, err := r.Bcast(0, nil)
	if err != nil {
		return nil, fmt.Errorf("rgf: receiving separator solution: %w", err)
	}
	sol, err := unpackSolution(wire, len(seps), bs)
	if err != nil {
		return nil, err
	}
	return finishDistributed(r, a, seps, segs, sg, sol)
}

// contribPresent reports whether segment k of p contributes the given slot
// (0 = toL, 1 = toR, 2 = up, 3 = lo) — the shared wire-format contract.
func contribPresent(k, p, slot int) bool {
	switch slot {
	case 0:
		return k > 0
	default:
		return k < p-1 && (slot == 1 || k > 0)
	}
}

// schurContribution computes the segment's additions to the reduced system:
// toL/toR fold into the diagonal of the left/right separator, up/lo are the
// couplings between them through this interior.
func (sg *segment) schurContribution(a *cmat.BlockTri) (toL, toR, up, lo *cmat.Dense) {
	m := sg.hi - sg.lo + 1
	if sg.sepL >= 0 {
		s := sg.sepL
		toL = a.Upper[s].Mul(sg.diag[0]).Mul(a.Lower[s])
	}
	if sg.sepR >= 0 {
		s := sg.sepR
		toR = a.Lower[s-1].Mul(sg.diag[m-1]).Mul(a.Upper[s-1])
	}
	if sg.sepL >= 0 && sg.sepR >= 0 {
		up = a.Upper[sg.sepL].Mul(sg.colLast[0]).Mul(a.Upper[sg.sepR-1]).Scale(-1)
		lo = a.Lower[sg.sepR-1].Mul(sg.colFirst[m-1]).Mul(a.Lower[sg.sepL]).Scale(-1)
	}
	return toL, toR, up, lo
}

// assembleReduced builds the reduced separator system from the gathered
// per-segment contributions. Segment k sits between separators k−1 and k,
// so separator j collects toR from segment j and toL from segment j+1, and
// the couplings of segment j+1 land at off-diagonal index j.
func assembleReduced(red, a *cmat.BlockTri, seps []int, contribs [][4]*cmat.Dense) {
	for j, s := range seps {
		red.Diag[j] = a.Diag[s].Clone()
		if toR := contribs[j][1]; toR != nil {
			red.Diag[j].SubInPlace(toR)
		}
		if toL := contribs[j+1][0]; toL != nil {
			red.Diag[j].SubInPlace(toL)
		}
		if j+1 < len(seps) {
			red.Upper[j] = contribs[j+1][2]
			red.Lower[j] = contribs[j+1][3]
		}
	}
}

// packSolution flattens the separator solution as k diag blocks, then k−1
// upper and k−1 lower off-diagonal blocks.
func packSolution(sol *sepSolution, bs int) []complex128 {
	k := len(sol.diag)
	buf := make([]complex128, 0, (3*k-2)*bs*bs)
	for _, d := range sol.diag {
		buf = append(buf, d.Data...)
	}
	for _, d := range sol.up {
		buf = append(buf, d.Data...)
	}
	for _, d := range sol.lo {
		buf = append(buf, d.Data...)
	}
	return buf
}

func unpackSolution(buf []complex128, k, bs int) (*sepSolution, error) {
	if len(buf) != (3*k-2)*bs*bs {
		return nil, fmt.Errorf("rgf: separator solution has %d values, want %d blocks of %d", len(buf), 3*k-2, bs*bs)
	}
	// Copy out of the wire buffer: received slices may be shared between
	// in-process ranks, and result blocks must be safe to hand to the
	// workspace arena when the caller releases them.
	next := func() *cmat.Dense {
		d := cmat.NewDense(bs, bs)
		copy(d.Data, buf[:bs*bs])
		buf = buf[bs*bs:]
		return d
	}
	sol := &sepSolution{
		diag: make([]*cmat.Dense, k),
		up:   make([]*cmat.Dense, k-1),
		lo:   make([]*cmat.Dense, k-1),
	}
	for j := range sol.diag {
		sol.diag[j] = next()
	}
	for j := range sol.up {
		sol.up[j] = next()
	}
	for j := range sol.lo {
		sol.lo[j] = next()
	}
	return sol, nil
}

// finishDistributed runs phase 3: recover the local interior from the
// separator solution, then allgather every segment's interior diagonal so
// all ranks return the full replicated diagonal.
func finishDistributed(r *comm.Rank, a *cmat.BlockTri, seps []int, segs []*segment, sg *segment, sol *sepSolution) ([]*cmat.Dense, error) {
	n, bs := a.N, a.Bs
	out := make([]*cmat.Dense, n)
	sepIdx := map[int]int{}
	for j, s := range seps {
		out[s] = sol.diag[j]
		sepIdx[s] = j
	}
	if err := sg.recover(a, sol, sepIdx, out); err != nil {
		return nil, err
	}
	for k, src := range segs {
		m := src.hi - src.lo + 1
		var payload []complex128
		if k == r.ID {
			payload = make([]complex128, 0, m*bs*bs)
			for i := src.lo; i <= src.hi; i++ {
				payload = append(payload, out[i].Data...)
			}
		}
		got, err := r.Bcast(k, payload)
		if err != nil {
			return nil, fmt.Errorf("rgf: allgather of segment %d interior: %w", k, err)
		}
		if k == r.ID {
			continue
		}
		if len(got) != m*bs*bs {
			return nil, fmt.Errorf("rgf: segment %d interior has %d values, want %d blocks of %d", k, len(got), m, bs*bs)
		}
		for i := 0; i < m; i++ {
			d := cmat.NewDense(bs, bs)
			copy(d.Data, got[i*bs*bs:(i+1)*bs*bs])
			out[src.lo+i] = d
		}
	}
	return out, nil
}
