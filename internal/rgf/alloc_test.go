//go:build !race

// The AllocsPerRun counters below measure steady-state heap traffic; the race
// runtime adds its own allocations, so these regressions only hold un-raced.

package rgf

import (
	"testing"
)

// TestAllocsSolveElectronSteadyState proves the arena pays off at the solver
// level: once the workspace arena is warm, one full per-energy RGF chain
// (operator assembly, boundary self-energies, retarded + two Keldysh sweeps,
// observables) performs only a small constant number of heap allocations —
// the result headers and block-pointer slices — independent of the matrix
// work, provided the caller releases the result back to the arena.
//
// Before pooling, a single SolveElectron call allocated hundreds of dense
// matrices; the bound here would be in the thousands of allocations.
func TestAllocsSolveElectronSteadyState(t *testing.T) {
	d := miniDevice(t)
	h := d.Hamiltonian(0)
	s := d.Overlap(0)
	c := Contacts{MuL: 0.2, MuR: -0.2, KT: 0.025}
	run := func() {
		res, err := SolveElectron(h, s, 0.05, Scattering{}, c, 1e-6)
		if err != nil {
			t.Fatal(err)
		}
		res.Release()
	}
	run() // warm the arena
	avg := testing.AllocsPerRun(20, run)
	// Small slice headers (result blocks, pivot boxing) remain; the dense
	// matrix traffic must be gone. The device has N blocks of Bs² complex
	// entries — ~60 matrix temporaries per solve before pooling.
	if avg > 40 {
		t.Fatalf("SolveElectron steady state allocates %.1f/run, want bounded small constant", avg)
	}
}

// TestAllocsSolvePhononSteadyState is the phonon-side twin.
func TestAllocsSolvePhononSteadyState(t *testing.T) {
	d := miniDevice(t)
	phi := d.Dynamical(0)
	c := PhononContacts{KTL: 0.026, KTR: 0.024}
	run := func() {
		res, err := SolvePhonon(phi, 0.05, PhononScattering{}, c, 1e-6)
		if err != nil {
			t.Fatal(err)
		}
		res.Release()
	}
	run()
	avg := testing.AllocsPerRun(20, run)
	if avg > 40 {
		t.Fatalf("SolvePhonon steady state allocates %.1f/run, want bounded small constant", avg)
	}
}
