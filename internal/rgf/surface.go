// Package rgf implements the recursive Green's function algorithm of
// Svizhenko et al. used by the GF phase of the paper (§2): a forward and a
// backward pass over the bnum blocks of the block-tridiagonal system
//
//	(E·S(kz) − H(kz) − Σ^R(E,kz)) · G^R = I,
//	G^≷ = G^R · Σ^≷ · G^A,
//
// together with open-boundary self-energies computed by Sancho-Rubio
// decimation (the numerical stand-in for OMEN's contour-integral boundary
// solver — both produce the contact self-energy Σ^RB; see DESIGN.md), and
// the analogous phonon system (ω²·I − Φ(qz) − Π^R)·D^R = I.
package rgf

import (
	"errors"
	"fmt"

	"negfsim/internal/cmat"
)

// surfaceGFMaxIter bounds the Sancho-Rubio decimation. Convergence is
// quadratic away from band edges but degrades to roughly one bit per
// doubling at the band center when the broadening η is tiny, so the cap is
// generous; each iteration is cheap (a handful of block operations).
const surfaceGFMaxIter = 400

// ErrNoConvergence is returned when the boundary decimation stalls.
var ErrNoConvergence = errors.New("rgf: surface Green's function did not converge")

// SurfaceGF computes the surface (edge-cell) retarded Green's function of a
// semi-infinite periodic chain with onsite inverse-GF block a00 and
// inter-cell couplings a01 (towards the bulk) and a10 (back), using
// Sancho-Rubio decimation: g = (a00 − a01·g·a10)⁻¹.
func SurfaceGF(a00, a01, a10 *cmat.Dense, tol float64) (*cmat.Dense, error) {
	epsS := a00.Clone()
	eps := a00.Clone()
	alpha := a01.Clone()
	beta := a10.Clone()
	for iter := 0; iter < surfaceGFMaxIter; iter++ {
		g, err := cmat.Inverse(eps)
		if err != nil {
			return nil, fmt.Errorf("rgf: decimation step %d: %w", iter, err)
		}
		agb := alpha.Mul(g).Mul(beta)
		bga := beta.Mul(g).Mul(alpha)
		epsS = epsS.Sub(agb)
		eps = eps.Sub(agb).Sub(bga)
		alpha = alpha.Mul(g).Mul(alpha)
		beta = beta.Mul(g).Mul(beta)
		// Converged when the remaining couplings can no longer move ε_s:
		// the next correction is bounded by ‖α‖·‖g‖·‖β‖.
		if alpha.FrobNorm()*g.FrobNorm()*beta.FrobNorm() < tol*(1+epsS.FrobNorm()) {
			return cmat.Inverse(epsS)
		}
	}
	return nil, ErrNoConvergence
}

// BoundarySelfEnergies returns the retarded contact self-energies (Σ_L, Σ_R)
// for the open system described by the inverse-GF operator A = E·S − H (or
// ω²·I − Φ): the left lead repeats A's first block, the right lead its last.
// Σ_L is added to block 0 and Σ_R to block N−1 of the device.
func BoundarySelfEnergies(a *cmat.BlockTri, tol float64) (sigL, sigR *cmat.Dense, err error) {
	if a.N < 2 {
		return nil, nil, errors.New("rgf: boundary self-energies need at least 2 blocks")
	}
	// Left lead grows to the left: from the surface cell, the coupling
	// deeper into the lead is A10-like (towards smaller indices).
	gL, err := SurfaceGF(a.Diag[0], a.Lower[0], a.Upper[0], tol)
	if err != nil {
		return nil, nil, fmt.Errorf("rgf: left contact: %w", err)
	}
	// Σ_L = A(0,-1)·g_L·A(-1,0) with A(0,-1) ≡ A10 pattern, A(-1,0) ≡ A01.
	sigL = a.Lower[0].Mul(gL).Mul(a.Upper[0])

	n := a.N
	gR, err := SurfaceGF(a.Diag[n-1], a.Upper[n-2], a.Lower[n-2], tol)
	if err != nil {
		return nil, nil, fmt.Errorf("rgf: right contact: %w", err)
	}
	sigR = a.Upper[n-2].Mul(gR).Mul(a.Lower[n-2])
	return sigL, sigR, nil
}

// Broadening returns Γ = i(Σ − Σ^H), the contact broadening matrix of a
// retarded boundary self-energy.
func Broadening(sigma *cmat.Dense) *cmat.Dense {
	return sigma.Sub(sigma.ConjTranspose()).Scale(1i)
}
