// Package rgf implements the recursive Green's function algorithm of
// Svizhenko et al. used by the GF phase of the paper (§2): a forward and a
// backward pass over the bnum blocks of the block-tridiagonal system
//
//	(E·S(kz) − H(kz) − Σ^R(E,kz)) · G^R = I,
//	G^≷ = G^R · Σ^≷ · G^A,
//
// together with open-boundary self-energies computed by Sancho-Rubio
// decimation (the numerical stand-in for OMEN's contour-integral boundary
// solver — both produce the contact self-energy Σ^RB; see DESIGN.md), and
// the analogous phonon system (ω²·I − Φ(qz) − Π^R)·D^R = I.
package rgf

import (
	"errors"
	"fmt"

	"negfsim/internal/cmat"
)

// surfaceGFMaxIter bounds the Sancho-Rubio decimation. Convergence is
// quadratic away from band edges but degrades to roughly one bit per
// doubling at the band center when the broadening η is tiny, so the cap is
// generous; each iteration is cheap (a handful of block operations).
const surfaceGFMaxIter = 400

// ErrNoConvergence is returned when the boundary decimation stalls.
var ErrNoConvergence = errors.New("rgf: surface Green's function did not converge")

// SurfaceGF computes the surface (edge-cell) retarded Green's function of a
// semi-infinite periodic chain with onsite inverse-GF block a00 and
// inter-cell couplings a01 (towards the bulk) and a10 (back), using
// Sancho-Rubio decimation: g = (a00 − a01·g·a10)⁻¹.
func SurfaceGF(a00, a01, a10 *cmat.Dense, tol float64) (*cmat.Dense, error) {
	dst := cmat.NewDense(a00.Rows, a00.Cols)
	if err := surfaceGFInto(dst, a00, a01, a10, tol); err != nil {
		return nil, err
	}
	return dst, nil
}

// surfaceGFInto is SurfaceGF with the result written into dst and all
// iteration scratch drawn from (and returned to) the workspace arena.
func surfaceGFInto(dst, a00, a01, a10 *cmat.Dense, tol float64) error {
	bs := a00.Rows
	epsS := cmat.GetDense(bs, bs)
	eps := cmat.GetDense(bs, bs)
	alpha := cmat.GetDense(bs, bs)
	beta := cmat.GetDense(bs, bs)
	g := cmat.GetDense(bs, bs)
	ag := cmat.GetDense(bs, bs)
	bg := cmat.GetDense(bs, bs)
	t := cmat.GetDense(bs, bs)
	defer cmat.PutAll(epsS, eps, alpha, beta, g, ag, bg, t)
	epsS.CopyFrom(a00)
	eps.CopyFrom(a00)
	alpha.CopyFrom(a01)
	beta.CopyFrom(a10)
	for iter := 0; iter < surfaceGFMaxIter; iter++ {
		if err := cmat.InverseInto(g, eps); err != nil {
			return fmt.Errorf("rgf: decimation step %d: %w", iter, err)
		}
		alpha.MulInto(ag, g) // α·g
		beta.MulInto(bg, g)  // β·g
		ag.MulInto(t, beta)  // α·g·β
		epsS.SubInPlace(t)
		eps.SubInPlace(t)
		bg.MulInto(t, alpha) // β·g·α
		eps.SubInPlace(t)
		ag.MulInto(t, alpha) // α' = α·g·α
		alpha.CopyFrom(t)
		bg.MulInto(t, beta) // β' = β·g·β
		beta.CopyFrom(t)
		// Converged when the remaining couplings can no longer move ε_s:
		// the next correction is bounded by ‖α‖·‖g‖·‖β‖.
		if alpha.FrobNorm()*g.FrobNorm()*beta.FrobNorm() < tol*(1+epsS.FrobNorm()) {
			return cmat.InverseInto(dst, epsS)
		}
	}
	return ErrNoConvergence
}

// BoundarySelfEnergies returns the retarded contact self-energies (Σ_L, Σ_R)
// for the open system described by the inverse-GF operator A = E·S − H (or
// ω²·I − Φ): the left lead repeats A's first block, the right lead its last.
// Σ_L is added to block 0 and Σ_R to block N−1 of the device.
func BoundarySelfEnergies(a *cmat.BlockTri, tol float64) (sigL, sigR *cmat.Dense, err error) {
	if a.N < 2 {
		return nil, nil, errors.New("rgf: boundary self-energies need at least 2 blocks")
	}
	bs := a.Bs
	g := cmat.GetDense(bs, bs)
	t := cmat.GetDense(bs, bs)
	defer cmat.PutAll(g, t)
	// Left lead grows to the left: from the surface cell, the coupling
	// deeper into the lead is A10-like (towards smaller indices).
	if err := surfaceGFInto(g, a.Diag[0], a.Lower[0], a.Upper[0], tol); err != nil {
		return nil, nil, fmt.Errorf("rgf: left contact: %w", err)
	}
	// Σ_L = A(0,-1)·g_L·A(-1,0) with A(0,-1) ≡ A10 pattern, A(-1,0) ≡ A01.
	// The returned matrices are arena-backed; hot callers PutDense them.
	sigL = cmat.GetDense(bs, bs)
	a.Lower[0].MulInto(t, g)
	t.MulInto(sigL, a.Upper[0])

	n := a.N
	if err := surfaceGFInto(g, a.Diag[n-1], a.Upper[n-2], a.Lower[n-2], tol); err != nil {
		cmat.PutDense(sigL)
		return nil, nil, fmt.Errorf("rgf: right contact: %w", err)
	}
	sigR = cmat.GetDense(bs, bs)
	a.Upper[n-2].MulInto(t, g)
	t.MulInto(sigR, a.Lower[n-2])
	return sigL, sigR, nil
}

// Broadening returns Γ = i(Σ − Σ^H), the contact broadening matrix of a
// retarded boundary self-energy.
func Broadening(sigma *cmat.Dense) *cmat.Dense {
	out := cmat.NewDense(sigma.Rows, sigma.Cols)
	broadeningInto(out, sigma)
	return out
}

// broadeningInto computes dst = i(σ − σ^H) in a single pass with no
// intermediates.
func broadeningInto(dst, sigma *cmat.Dense) {
	n := sigma.Rows
	for i := 0; i < n; i++ {
		for j := 0; j < n; j++ {
			s := sigma.Data[i*n+j]
			sh := sigma.Data[j*n+i]
			dst.Data[i*n+j] = 1i * (s - complex(real(sh), -imag(sh)))
		}
	}
}
