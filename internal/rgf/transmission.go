package rgf

import (
	"fmt"

	"negfsim/internal/cmat"
)

// CornerBlock returns G^R[N−1, 0], the corner block of the retarded Green's
// function connecting the two contacts, via the standard product form
//
//	G^R[N−1, 0] = G^R[N−1, N−1] · ∏_{m=N−1..1} (−A[m, m−1]·gL[m−1]).
func (r *Retarded) CornerBlock() *cmat.Dense {
	n := r.a.N
	out := r.Diag[n-1].Clone()
	for m := n - 1; m >= 1; m-- {
		out = out.Mul(r.a.Lower[m-1]).Mul(r.gL[m-1]).Scale(-1)
	}
	return out
}

// Transmission computes the Caroli transmission function at one energy:
//
//	T(E) = Tr[Γ_R · G^R[N−1,0] · Γ_L · (G^R[N−1,0])^H],
//
// the coherent-transport observable of Landauer theory. gamL/gamR are the
// contact broadenings of the operator A used to build r (with the boundary
// self-energies already folded into its corner blocks).
func (r *Retarded) Transmission(gamL, gamR *cmat.Dense) float64 {
	g := r.CornerBlock()
	t := gamR.Mul(g).Mul(gamL).Mul(g.ConjTranspose()).Trace()
	return real(t)
}

// SolveElectronBallistic solves one (E, kz) point without scattering and
// additionally returns the transmission function — used to cross-validate
// the Meir-Wingreen current against the Landauer picture:
// I(E) = T(E)·(f_L − f_R) must equal the contact current exactly.
func SolveElectronBallistic(h, s *cmat.BlockTri, energy float64, c Contacts, eta float64) (*ElectronResult, float64, error) {
	if h.N != s.N || h.Bs != s.Bs {
		return nil, 0, fmt.Errorf("rgf: H and S shapes differ")
	}
	n := h.N
	a0 := h.ShiftDiag(complex(energy, eta), s)
	sigL, sigR, err := BoundarySelfEnergies(a0, 1e-10)
	if err != nil {
		return nil, 0, err
	}
	gamL, gamR := Broadening(sigL), Broadening(sigR)
	a := a0.Clone()
	a.Diag[0] = a.Diag[0].Sub(sigL)
	a.Diag[n-1] = a.Diag[n-1].Sub(sigR)
	ret, err := SolveRetarded(a)
	if err != nil {
		return nil, 0, err
	}
	fL := FermiDirac(energy, c.MuL, c.KT)
	fR := FermiDirac(energy, c.MuR, c.KT)
	sigLess := make([]*cmat.Dense, n)
	sigGtr := make([]*cmat.Dense, n)
	for i := 0; i < n; i++ {
		sigLess[i] = cmat.NewDense(h.Bs, h.Bs)
		sigGtr[i] = cmat.NewDense(h.Bs, h.Bs)
	}
	sigLess[0].AddScaledInPlace(complex(0, fL), gamL)
	sigGtr[0].AddScaledInPlace(complex(0, fL-1), gamL)
	sigLess[n-1].AddScaledInPlace(complex(0, fR), gamR)
	sigGtr[n-1].AddScaledInPlace(complex(0, fR-1), gamR)

	res := &ElectronResult{GR: ret.Diag}
	res.GLess = ret.SolveKeldysh(sigLess)
	res.GGtr = ret.SolveKeldysh(sigGtr)
	cLessL := gamL.Scale(complex(0, fL))
	cGtrL := gamL.Scale(complex(0, fL-1))
	cLessR := gamR.Scale(complex(0, fR))
	cGtrR := gamR.Scale(complex(0, fR-1))
	res.CurrentL = real(cLessL.Mul(res.GGtr[0]).Trace() - cGtrL.Mul(res.GLess[0]).Trace())
	res.CurrentR = real(cLessR.Mul(res.GGtr[n-1]).Trace() - cGtrR.Mul(res.GLess[n-1]).Trace())
	res.DissipationPerBlock = make([]float64, n)
	return res, ret.Transmission(gamL, gamR), nil
}
