package rgf

import (
	"fmt"

	"negfsim/internal/cmat"
)

// Retarded holds the output of the retarded RGF pass: the diagonal blocks of
// G^R = A⁻¹ and the left-connected Green's functions gL needed by the lesser
// pass.
type Retarded struct {
	Diag []*cmat.Dense // G^R[n,n]
	gL   []*cmat.Dense // left-connected g^L[n]
	a    *cmat.BlockTri
}

// SolveRetarded runs the forward/backward recursion on the block-tridiagonal
// inverse-GF operator A (boundary self-energies must already be folded into
// A's corner blocks):
//
//	forward:  gL[0] = A[0,0]⁻¹,  gL[n] = (A[n,n] − A[n,n−1]·gL[n−1]·A[n−1,n])⁻¹
//	backward: G[N−1] = gL[N−1], G[n] = gL[n] + gL[n]·A[n,n+1]·G[n+1]·A[n+1,n]·gL[n]
func SolveRetarded(a *cmat.BlockTri) (*Retarded, error) {
	n := a.N
	r := &Retarded{Diag: make([]*cmat.Dense, n), gL: make([]*cmat.Dense, n), a: a}
	g, err := cmat.Inverse(a.Diag[0])
	if err != nil {
		return nil, fmt.Errorf("rgf: forward block 0: %w", err)
	}
	r.gL[0] = g
	for i := 1; i < n; i++ {
		m := a.Diag[i].Sub(a.Lower[i-1].Mul(r.gL[i-1]).Mul(a.Upper[i-1]))
		g, err = cmat.Inverse(m)
		if err != nil {
			return nil, fmt.Errorf("rgf: forward block %d: %w", i, err)
		}
		r.gL[i] = g
	}
	r.Diag[n-1] = r.gL[n-1]
	for i := n - 2; i >= 0; i-- {
		corr := r.gL[i].Mul(a.Upper[i]).Mul(r.Diag[i+1]).Mul(a.Lower[i]).Mul(r.gL[i])
		r.Diag[i] = r.gL[i].Add(corr)
	}
	return r, nil
}

// OffDiagLower returns G^R[n+1, n] = −G^R[n+1,n+1]·A[n+1,n]·gL[n], the
// sub-diagonal block of the retarded Green's function.
func (r *Retarded) OffDiagLower(n int) *cmat.Dense {
	return r.Diag[n+1].Mul(r.a.Lower[n]).Mul(r.gL[n]).Scale(-1)
}

// SolveKeldysh computes the diagonal blocks of G^≷ = G^R·Σ^≷·G^A for a
// block-diagonal Σ^≷ (per-RGF-block matrices; contact Σ^≷ is folded into the
// corner blocks by the caller). The recursion is
//
//	g<L[0] = gL[0]·Σ[0]·gL[0]^H
//	g<L[n] = gL[n]·(Σ[n] + A[n,n−1]·g<L[n−1]·A[n,n−1]^H)·gL[n]^H
//	G<[N−1] = g<L[N−1]
//	G<[n] = g<L[n] + gL[n]·A[n,n+1]·G<[n+1]·A[n,n+1]^H·gL[n]^H
//	        + M·g<L[n] + g<L[n]·M^H,   M = gL[n]·A[n,n+1]·G^R[n+1]·A[n+1,n]
func (r *Retarded) SolveKeldysh(sigma []*cmat.Dense) []*cmat.Dense {
	n := r.a.N
	if len(sigma) != n {
		panic(fmt.Sprintf("rgf: SolveKeldysh got %d self-energy blocks for %d RGF blocks", len(sigma), n))
	}
	a := r.a
	gLess := make([]*cmat.Dense, n)
	lLess := make([]*cmat.Dense, n)
	lLess[0] = r.gL[0].Mul(sigma[0]).Mul(r.gL[0].ConjTranspose())
	for i := 1; i < n; i++ {
		inner := sigma[i].Add(a.Lower[i-1].Mul(lLess[i-1]).Mul(a.Lower[i-1].ConjTranspose()))
		lLess[i] = r.gL[i].Mul(inner).Mul(r.gL[i].ConjTranspose())
	}
	gLess[n-1] = lLess[n-1]
	for i := n - 2; i >= 0; i-- {
		gli := r.gL[i]
		gliH := gli.ConjTranspose()
		t1 := gli.Mul(a.Upper[i]).Mul(gLess[i+1]).Mul(a.Upper[i].ConjTranspose()).Mul(gliH)
		m := gli.Mul(a.Upper[i]).Mul(r.Diag[i+1]).Mul(a.Lower[i])
		t2 := m.Mul(lLess[i])
		t3 := lLess[i].Mul(m.ConjTranspose())
		gLess[i] = lLess[i].Add(t1).Add(t2).Add(t3)
	}
	return gLess
}

// DenseReference solves the same system by full dense inversion; used by
// validation tests and the naive ("Python") benchmark variant of Table 7.
func DenseReference(a *cmat.BlockTri, sigma []*cmat.Dense) (grDiag, gLessDiag []*cmat.Dense, err error) {
	ad := a.ToDense()
	gr, err := cmat.Inverse(ad)
	if err != nil {
		return nil, nil, err
	}
	bs := a.Bs
	sig := cmat.NewDense(ad.Rows, ad.Cols)
	for i, s := range sigma {
		if s != nil {
			sig.SetSubmatrix(i*bs, i*bs, s)
		}
	}
	gLess := gr.Mul(sig).Mul(gr.ConjTranspose())
	grDiag = make([]*cmat.Dense, a.N)
	gLessDiag = make([]*cmat.Dense, a.N)
	for i := 0; i < a.N; i++ {
		grDiag[i] = gr.Submatrix(i*bs, (i+1)*bs, i*bs, (i+1)*bs)
		gLessDiag[i] = gLess.Submatrix(i*bs, (i+1)*bs, i*bs, (i+1)*bs)
	}
	return grDiag, gLessDiag, nil
}
