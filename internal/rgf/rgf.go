package rgf

import (
	"fmt"

	"negfsim/internal/cmat"
)

// Retarded holds the output of the retarded RGF pass: the diagonal blocks of
// G^R = A⁻¹ and the left-connected Green's functions gL needed by the lesser
// pass.
type Retarded struct {
	Diag []*cmat.Dense // G^R[n,n]
	gL   []*cmat.Dense // left-connected g^L[n]
	a    *cmat.BlockTri
}

// SolveRetarded runs the forward/backward recursion on the block-tridiagonal
// inverse-GF operator A (boundary self-energies must already be folded into
// A's corner blocks):
//
//	forward:  gL[0] = A[0,0]⁻¹,  gL[n] = (A[n,n] − A[n,n−1]·gL[n−1]·A[n−1,n])⁻¹
//	backward: G[N−1] = gL[N−1], G[n] = gL[n] + gL[n]·A[n,n+1]·G[n+1]·A[n+1,n]·gL[n]
//
// All result and intermediate blocks come from the workspace arena; call
// Release (or keep the blocks and let the GC take them) when done.
func SolveRetarded(a *cmat.BlockTri) (*Retarded, error) {
	n, bs := a.N, a.Bs
	gl, err := forwardGL(a)
	if err != nil {
		return nil, err
	}
	r := &Retarded{Diag: make([]*cmat.Dense, n), gL: gl, a: a}
	t1 := cmat.GetDense(bs, bs)
	t2 := cmat.GetDense(bs, bs)
	// Diag[n−1] is a pooled copy (not an alias of gL[n−1]) so Release can
	// blanket-return every block exactly once.
	last := cmat.GetDense(bs, bs)
	last.CopyFrom(r.gL[n-1])
	r.Diag[n-1] = last
	for i := n - 2; i >= 0; i-- {
		r.gL[i].MulInto(t1, a.Upper[i])
		t1.MulInto(t2, r.Diag[i+1])
		t2.MulInto(t1, a.Lower[i])
		d := cmat.GetDense(bs, bs)
		d.CopyFrom(r.gL[i])
		t1.MulAddInto(d, r.gL[i])
		r.Diag[i] = d
	}
	cmat.PutAll(t1, t2)
	return r, nil
}

// forwardGL runs only the forward recursion, returning the left-connected
// g^L blocks (all pooled). It is the first half of SolveRetarded, split out
// so the spatial solver can rebuild a full Retarded around an
// already-distributed diagonal.
func forwardGL(a *cmat.BlockTri) ([]*cmat.Dense, error) {
	n, bs := a.N, a.Bs
	gl := make([]*cmat.Dense, 0, n)
	g := cmat.GetDense(bs, bs)
	if err := cmat.InverseInto(g, a.Diag[0]); err != nil {
		cmat.PutDense(g)
		return nil, fmt.Errorf("rgf: forward block 0: %w", err)
	}
	gl = append(gl, g)
	t1 := cmat.GetDense(bs, bs)
	t2 := cmat.GetDense(bs, bs)
	for i := 1; i < n; i++ {
		a.Lower[i-1].MulInto(t1, gl[i-1])
		t1.MulInto(t2, a.Upper[i-1])
		t2.ScaleInPlace(-1)
		t2.AddInPlace(a.Diag[i])
		g = cmat.GetDense(bs, bs)
		if err := cmat.InverseInto(g, t2); err != nil {
			cmat.PutAll(g, t1, t2)
			cmat.PutAll(gl...)
			return nil, fmt.Errorf("rgf: forward block %d: %w", i, err)
		}
		gl = append(gl, g)
	}
	cmat.PutAll(t1, t2)
	return gl, nil
}

// Release returns every block the solve drew from the workspace arena. The
// Retarded value (including Diag and anything computed from gL) must not be
// used afterwards. The operator a is the caller's and is left alone.
func (r *Retarded) Release() {
	for _, d := range r.Diag {
		cmat.PutDense(d)
	}
	for _, g := range r.gL {
		cmat.PutDense(g)
	}
	r.Diag, r.gL = nil, nil
}

// releaseGL returns only the left-connected helper blocks, keeping Diag
// alive — for callers that hand Diag onward as a result.
func (r *Retarded) releaseGL() {
	for _, g := range r.gL {
		cmat.PutDense(g)
	}
	r.gL = nil
}

// OffDiagLower returns G^R[n+1, n] = −G^R[n+1,n+1]·A[n+1,n]·gL[n], the
// sub-diagonal block of the retarded Green's function.
func (r *Retarded) OffDiagLower(n int) *cmat.Dense {
	return r.Diag[n+1].Mul(r.a.Lower[n]).Mul(r.gL[n]).Scale(-1)
}

// SolveKeldysh computes the diagonal blocks of G^≷ = G^R·Σ^≷·G^A for a
// block-diagonal Σ^≷ (per-RGF-block matrices; contact Σ^≷ is folded into the
// corner blocks by the caller). The recursion is
//
//	g<L[0] = gL[0]·Σ[0]·gL[0]^H
//	g<L[n] = gL[n]·(Σ[n] + A[n,n−1]·g<L[n−1]·A[n,n−1]^H)·gL[n]^H
//	G<[N−1] = g<L[N−1]
//	G<[n] = g<L[n] + gL[n]·A[n,n+1]·G<[n+1]·A[n,n+1]^H·gL[n]^H
//	        + M·g<L[n] + g<L[n]·M^H,   M = gL[n]·A[n,n+1]·G^R[n+1]·A[n+1,n]
func (r *Retarded) SolveKeldysh(sigma []*cmat.Dense) []*cmat.Dense {
	n := r.a.N
	if len(sigma) != n {
		panic(fmt.Sprintf("rgf: SolveKeldysh got %d self-energy blocks for %d RGF blocks", len(sigma), n))
	}
	a := r.a
	bs := a.Bs
	gLess := make([]*cmat.Dense, n)
	lLess := make([]*cmat.Dense, n)
	t1 := cmat.GetDense(bs, bs)
	t2 := cmat.GetDense(bs, bs)
	t3 := cmat.GetDense(bs, bs)
	h := cmat.GetDense(bs, bs) // conjugate-transpose scratch
	r.gL[0].MulInto(t1, sigma[0])
	r.gL[0].ConjTransposeInto(h)
	l0 := cmat.GetDense(bs, bs)
	t1.MulInto(l0, h)
	lLess[0] = l0
	for i := 1; i < n; i++ {
		// inner = Σ[i] + A[i,i−1]·l<[i−1]·A[i,i−1]^H
		a.Lower[i-1].MulInto(t1, lLess[i-1])
		a.Lower[i-1].ConjTransposeInto(h)
		t1.MulInto(t2, h)
		t2.AddInPlace(sigma[i])
		r.gL[i].MulInto(t1, t2)
		r.gL[i].ConjTransposeInto(h)
		li := cmat.GetDense(bs, bs)
		t1.MulInto(li, h)
		lLess[i] = li
	}
	// gLess[n−1] is a pooled copy, so the lLess blocks can be returned
	// wholesale below without aliasing the result.
	gN := cmat.GetDense(bs, bs)
	gN.CopyFrom(lLess[n-1])
	gLess[n-1] = gN
	u := cmat.GetDense(bs, bs)
	p1 := cmat.GetDense(bs, bs)
	p2 := cmat.GetDense(bs, bs)
	m := cmat.GetDense(bs, bs)
	var batch [2]cmat.Triple
	for i := n - 2; i >= 0; i-- {
		gli := r.gL[i]
		gli.ConjTransposeInto(h)
		// u = gL[i]·A[i,i+1]; the two products against G<[i+1] and G^R[i+1]
		// share u and are independent — one batched dispatch.
		gli.MulInto(u, a.Upper[i])
		p1.Zero()
		p2.Zero()
		batch[0] = cmat.Triple{Out: p1, A: u, B: gLess[i+1]}
		batch[1] = cmat.Triple{Out: p2, A: u, B: r.Diag[i+1]}
		cmat.BatchMulAddInto(batch[:])
		// t1 = p1·A[i,i+1]^H·gL[i]^H
		a.Upper[i].ConjTransposeInto(t3)
		p1.MulInto(t2, t3)
		t2.MulInto(t1, h)
		// m = p2·A[i+1,i]
		p2.MulInto(m, a.Lower[i])
		// g = l<[i] + t1 + m·l<[i] + l<[i]·m^H; the two correction products
		// write disjoint accumulators, so batch them too.
		g := cmat.GetDense(bs, bs)
		g.CopyFrom(lLess[i])
		g.AddInPlace(t1)
		t2.Zero()
		t3.Zero()
		batch[0] = cmat.Triple{Out: t2, A: m, B: lLess[i]}
		m.ConjTransposeInto(h)
		batch[1] = cmat.Triple{Out: t3, A: lLess[i], B: h}
		cmat.BatchMulAddInto(batch[:])
		g.AddInPlace(t2)
		g.AddInPlace(t3)
		gLess[i] = g
	}
	cmat.PutAll(t1, t2, t3, h, u, p1, p2, m)
	cmat.PutAll(lLess...)
	return gLess
}

// DenseReference solves the same system by full dense inversion; used by
// validation tests and the naive ("Python") benchmark variant of Table 7.
func DenseReference(a *cmat.BlockTri, sigma []*cmat.Dense) (grDiag, gLessDiag []*cmat.Dense, err error) {
	ad := a.ToDense()
	gr, err := cmat.Inverse(ad)
	if err != nil {
		return nil, nil, err
	}
	bs := a.Bs
	sig := cmat.NewDense(ad.Rows, ad.Cols)
	for i, s := range sigma {
		if s != nil {
			sig.SetSubmatrix(i*bs, i*bs, s)
		}
	}
	gLess := gr.Mul(sig).Mul(gr.ConjTranspose())
	grDiag = make([]*cmat.Dense, a.N)
	gLessDiag = make([]*cmat.Dense, a.N)
	for i := 0; i < a.N; i++ {
		grDiag[i] = gr.Submatrix(i*bs, (i+1)*bs, i*bs, (i+1)*bs)
		gLessDiag[i] = gLess.Submatrix(i*bs, (i+1)*bs, i*bs, (i+1)*bs)
	}
	return grDiag, gLessDiag, nil
}
