package rgf

import (
	"fmt"
	"sync"

	"negfsim/internal/cmat"
)

// Spatial domain decomposition of the retarded solve — the third level of
// OMEN's momentum/energy/space MPI hierarchy (§2.1). The block-tridiagonal
// chain is split at separator blocks into independent segments:
//
//  1. every segment eliminates its interior in parallel (local two-sided
//     RGF), producing its Schur-complement contribution to the separators;
//  2. the reduced block-tridiagonal system over the separators is solved
//     with the ordinary RGF;
//  3. every segment recovers its interior diagonal Green's function blocks
//     in parallel from the separator solution via the block-inversion
//     identity G_II = M + M·A_IS·G_SS·A_SI·M, with the border strips of
//     M = A_II⁻¹ obtained from running product recursions.
//
// The result is exactly SolveRetarded's diagonal (tested against it and
// against dense inversion); the parallelism is over segments. The same
// three phases, with the per-segment work mapped onto cluster ranks and the
// reduced system carried over the wire, are the distributed solver in
// distributed.go.

// segment holds one interior run of blocks [lo, hi] (inclusive) between
// separators; sepL/sepR are the adjacent separator block indices or −1.
type segment struct {
	lo, hi     int
	sepL, sepR int

	diag              []*cmat.Dense // M[i,i]
	colFirst, colLast []*cmat.Dense // M[i,0], M[i,m−1]
	rowFirst, rowLast []*cmat.Dense // M[0,i], M[m−1,i]
}

// localInverse runs the two-sided recursion on the segment's blocks and
// fills the diagonal and border strips of M = B⁻¹.
func (sg *segment) localInverse(a *cmat.BlockTri) error {
	m := sg.hi - sg.lo + 1
	up := func(i int) *cmat.Dense { return a.Upper[sg.lo+i] } // A[i, i+1]
	lo := func(i int) *cmat.Dense { return a.Lower[sg.lo+i] } // A[i+1, i]
	dg := func(i int) *cmat.Dense { return a.Diag[sg.lo+i] }

	gL := make([]*cmat.Dense, m)
	gR := make([]*cmat.Dense, m)
	var err error
	if gL[0], err = cmat.Inverse(dg(0)); err != nil {
		return fmt.Errorf("rgf: segment [%d,%d] forward block 0: %w", sg.lo, sg.hi, err)
	}
	for i := 1; i < m; i++ {
		t := dg(i).Sub(lo(i - 1).Mul(gL[i-1]).Mul(up(i - 1)))
		if gL[i], err = cmat.Inverse(t); err != nil {
			return fmt.Errorf("rgf: segment [%d,%d] forward block %d: %w", sg.lo, sg.hi, i, err)
		}
	}
	if gR[m-1], err = cmat.Inverse(dg(m - 1)); err != nil {
		return fmt.Errorf("rgf: segment [%d,%d] backward block %d: %w", sg.lo, sg.hi, m-1, err)
	}
	for i := m - 2; i >= 0; i-- {
		t := dg(i).Sub(up(i).Mul(gR[i+1]).Mul(lo(i)))
		if gR[i], err = cmat.Inverse(t); err != nil {
			return fmt.Errorf("rgf: segment [%d,%d] backward block %d: %w", sg.lo, sg.hi, i, err)
		}
	}
	sg.diag = make([]*cmat.Dense, m)
	for i := 0; i < m; i++ {
		t := dg(i).Clone()
		if i > 0 {
			t = t.Sub(lo(i - 1).Mul(gL[i-1]).Mul(up(i - 1)))
		}
		if i < m-1 {
			t = t.Sub(up(i).Mul(gR[i+1]).Mul(lo(i)))
		}
		if sg.diag[i], err = cmat.Inverse(t); err != nil {
			return fmt.Errorf("rgf: segment [%d,%d] diagonal block %d: %w", sg.lo, sg.hi, i, err)
		}
	}
	// Border strips by running products:
	//   M[i,0]   = M[i,i]·R_i,  R_i = (−A[i,i−1]·gL[i−1])·R_{i−1}
	//   M[0,i]   = L_i·M[i,i],  L_i = L_{i−1}·(−gL[i−1]·A[i−1,i])
	//   M[i,m−1] = M[i,i]·Q_i,  Q_i = (−A[i,i+1]·gR[i+1])·Q_{i+1}
	//   M[m−1,i] = K_i·M[i,i],  K_i = K_{i+1}·(−gR[i+1]·A[i+1,i])
	bs := a.Bs
	sg.colFirst = make([]*cmat.Dense, m)
	sg.rowFirst = make([]*cmat.Dense, m)
	sg.colLast = make([]*cmat.Dense, m)
	sg.rowLast = make([]*cmat.Dense, m)
	r := cmat.Identity(bs)
	l := cmat.Identity(bs)
	for i := 0; i < m; i++ {
		if i > 0 {
			r = lo(i - 1).Mul(gL[i-1]).Scale(-1).Mul(r)
			l = l.Mul(gL[i-1].Mul(up(i - 1)).Scale(-1))
		}
		sg.colFirst[i] = sg.diag[i].Mul(r)
		sg.rowFirst[i] = l.Mul(sg.diag[i])
	}
	q := cmat.Identity(bs)
	k := cmat.Identity(bs)
	for i := m - 1; i >= 0; i-- {
		if i < m-1 {
			q = up(i).Mul(gR[i+1]).Scale(-1).Mul(q)
			k = k.Mul(gR[i+1].Mul(lo(i)).Scale(-1))
		}
		sg.colLast[i] = sg.diag[i].Mul(q)
		sg.rowLast[i] = k.Mul(sg.diag[i])
	}
	return nil
}

// OffDiagUpper returns G^R[n, n+1] = −gL[n]·A[n,n+1]·G^R[n+1,n+1].
func (r *Retarded) OffDiagUpper(n int) *cmat.Dense {
	return r.gL[n].Mul(r.a.Upper[n]).Mul(r.Diag[n+1]).Scale(-1)
}

// evenSeps returns the even-spread separator placement splitting n blocks
// into `segments` segments — the default layout PartitionedRetarded and the
// distributed solver share. Requires n ≥ 2·segments−1 so every segment is
// non-empty.
func evenSeps(n, segments int) []int {
	seps := make([]int, segments-1)
	for j := range seps {
		seps[j] = (j + 1) * n / segments
	}
	return seps
}

// buildSegments slices [0, n) into the interior segments delimited by the
// (strictly increasing) separator indices. Adjacent separators, or a
// separator at either end of the chain, simply produce no segment on that
// side.
func buildSegments(n int, seps []int) []*segment {
	isSep := make([]bool, n)
	for _, s := range seps {
		isSep[s] = true
	}
	segs := make([]*segment, 0, len(seps)+1)
	lo := 0
	for b := 0; b <= n; b++ {
		if b == n || isSep[b] {
			if lo <= b-1 {
				sg := &segment{lo: lo, hi: b - 1, sepL: lo - 1, sepR: b}
				if sg.sepR >= n {
					sg.sepR = -1
				}
				segs = append(segs, sg)
			}
			lo = b + 1
		}
	}
	return segs
}

// sepSolution is the solved reduced separator system in the form the
// interior recovery needs: the separator diagonal blocks plus the
// off-diagonal blocks between adjacent separators. The single-process solver
// fills it from the reduced Retarded directly; the distributed solver
// unpacks it from the root's broadcast.
type sepSolution struct {
	diag []*cmat.Dense // G[s_j, s_j]
	up   []*cmat.Dense // G[s_j, s_{j+1}]
	lo   []*cmat.Dense // G[s_{j+1}, s_j]
}

// solutionOf extracts a sepSolution from the solved reduced system.
func solutionOf(ret *Retarded) *sepSolution {
	k := len(ret.Diag)
	sol := &sepSolution{
		diag: ret.Diag,
		up:   make([]*cmat.Dense, k-1),
		lo:   make([]*cmat.Dense, k-1),
	}
	for j := 0; j < k-1; j++ {
		sol.up[j] = ret.OffDiagUpper(j)
		sol.lo[j] = ret.OffDiagLower(j)
	}
	return sol
}

// PartitionedRetarded computes the diagonal blocks of A⁻¹ by the
// Schur-complement domain decomposition described above, with `segments`
// independent segments processed by up to `workers` goroutines and the
// separators spread evenly. With segments ≤ 1 it falls back to the
// sequential recursion.
func PartitionedRetarded(a *cmat.BlockTri, segments, workers int) ([]*cmat.Dense, error) {
	n := a.N
	if segments <= 1 {
		ret, err := SolveRetarded(a)
		if err != nil {
			return nil, err
		}
		ret.releaseGL()
		return ret.Diag, nil
	}
	// segments segments need segments−1 separators and at least one block
	// per segment: N ≥ 2·segments − 1.
	if n < 2*segments-1 {
		return nil, fmt.Errorf("rgf: %d blocks cannot form %d segments", n, segments)
	}
	return PartitionedRetardedAt(a, evenSeps(n, segments), workers)
}

// PartitionedRetardedAt is PartitionedRetarded with caller-chosen separator
// block indices (strictly increasing, within [0, N)). Adjacent separators
// are legal — they couple directly through A instead of through a segment
// interior — which is how callers place separators around known-dense
// regions, and how tests reach that coupling branch (the even spread never
// produces it).
func PartitionedRetardedAt(a *cmat.BlockTri, seps []int, workers int) ([]*cmat.Dense, error) {
	n := a.N
	if len(seps) == 0 {
		return nil, fmt.Errorf("rgf: partitioned solve needs at least one separator")
	}
	for j, s := range seps {
		if s < 0 || s >= n {
			return nil, fmt.Errorf("rgf: separator %d out of range [0,%d)", s, n)
		}
		if j > 0 && s <= seps[j-1] {
			return nil, fmt.Errorf("rgf: separators must be strictly increasing, got %v", seps)
		}
	}
	if workers < 1 {
		workers = 1
	}
	segs := buildSegments(n, seps)

	// Phase 1: parallel interior elimination.
	var wg sync.WaitGroup
	errs := make([]error, len(segs))
	sem := make(chan struct{}, workers)
	for i, sg := range segs {
		wg.Add(1)
		go func(i int, sg *segment) {
			defer wg.Done()
			sem <- struct{}{}
			defer func() { <-sem }()
			errs[i] = sg.localInverse(a)
		}(i, sg)
	}
	wg.Wait()
	for _, err := range errs {
		if err != nil {
			return nil, err
		}
	}

	// Phase 2: reduced block-tridiagonal system over the separators.
	red := reducedSystem(a, seps, segs)
	ret, err := SolveRetarded(red)
	if err != nil {
		return nil, fmt.Errorf("rgf: reduced separator system: %w", err)
	}
	sol := solutionOf(ret)
	ret.releaseGL()
	out := make([]*cmat.Dense, n)
	sepIdx := map[int]int{}
	for j, s := range seps {
		out[s] = sol.diag[j]
		sepIdx[s] = j
	}

	// Phase 3: parallel interior recovery.
	for i, sg := range segs {
		wg.Add(1)
		go func(i int, sg *segment) {
			defer wg.Done()
			sem <- struct{}{}
			defer func() { <-sem }()
			errs[i] = sg.recover(a, sol, sepIdx, out)
		}(i, sg)
	}
	wg.Wait()
	for _, err := range errs {
		if err != nil {
			return nil, err
		}
	}
	return out, nil
}

// reducedSystem assembles the Schur complement over the separators from the
// segments' eliminated interiors: S[s,s] = A[s,s] − Σ couplings through the
// adjacent segments, S[s,s'] between neighboring separators through the
// segment between them (or A itself when they are adjacent).
func reducedSystem(a *cmat.BlockTri, seps []int, segs []*segment) *cmat.BlockTri {
	red := cmat.NewBlockTri(len(seps), a.Bs)
	segOf := map[int]*segment{} // keyed by left separator of the segment
	for _, sg := range segs {
		segOf[sg.sepL] = sg
	}
	for j, s := range seps {
		red.Diag[j] = a.Diag[s].Clone()
		// Contribution of the segment left of s (its sepR == s).
		if sg := segmentWithRightSep(segs, s); sg != nil {
			m := sg.hi - sg.lo + 1
			red.Diag[j] = red.Diag[j].Sub(
				a.Lower[s-1].Mul(sg.diag[m-1]).Mul(a.Upper[s-1]))
		}
		// Contribution of the segment right of s.
		if sg := segOf[s]; sg != nil {
			red.Diag[j] = red.Diag[j].Sub(
				a.Upper[s].Mul(sg.diag[0]).Mul(a.Lower[s]))
		}
		if j+1 < len(seps) {
			s2 := seps[j+1]
			if sg := segOf[s]; sg != nil && sg.sepR == s2 {
				m := sg.hi - sg.lo + 1
				// S[s,s2] = −A[s,first]·M[first,last]·A[last,s2] and the
				// mirrored S[s2,s] through the same segment.
				red.Upper[j] = a.Upper[s].Mul(sg.colLast[0]).Mul(a.Upper[s2-1]).Scale(-1)
				red.Lower[j] = a.Lower[s2-1].Mul(sg.colFirst[m-1]).Mul(a.Lower[s]).Scale(-1)
			} else if s2 == s+1 {
				// Adjacent separators couple directly.
				red.Upper[j] = a.Upper[s].Clone()
				red.Lower[j] = a.Lower[s].Clone()
			}
		}
	}
	return red
}

func segmentWithRightSep(segs []*segment, s int) *segment {
	for _, sg := range segs {
		if sg.sepR == s {
			return sg
		}
	}
	return nil
}

// recover applies G_II = M + M·A_IS·G_SS·A_SI·M for one segment.
func (sg *segment) recover(a *cmat.BlockTri, sol *sepSolution, sepIdx map[int]int, out []*cmat.Dense) error {
	m := sg.hi - sg.lo + 1
	hasL := sg.sepL >= 0
	hasR := sg.sepR >= 0
	// Couplings: A[first, L] = Lower[L], A[L, first] = Upper[L];
	//            A[last, R] = Upper[R−1], A[R, last] = Lower[R−1].
	var yl, xl, xr, yr *cmat.Dense
	if hasL {
		yl = a.Lower[sg.sepL] // A[first, L]
		xl = a.Upper[sg.sepL] // A[L, first]
	}
	if hasR {
		xr = a.Upper[sg.sepR-1] // A[last, R]
		yr = a.Lower[sg.sepR-1] // A[R, last]
	}
	// Separator Green's function blocks.
	var gLL, gRR, gLR, gRL *cmat.Dense
	if hasL {
		gLL = sol.diag[sepIdx[sg.sepL]]
	}
	if hasR {
		gRR = sol.diag[sepIdx[sg.sepR]]
	}
	if hasL && hasR {
		j := sepIdx[sg.sepL]
		gLR = sol.up[j] // G[L, R]
		gRL = sol.lo[j] // G[R, L]
	}
	for i := 0; i < m; i++ {
		g := sg.diag[i].Clone()
		// Left factor pieces: u_L = M[i,0]·A[first,L], u_R = M[i,m−1]·A[last,R];
		// right pieces: v_L = A[L,first]·M[0,i], v_R = A[R,last]·M[m−1,i].
		var uL, uR, vL, vR *cmat.Dense
		if hasL {
			uL = sg.colFirst[i].Mul(yl)
			vL = xl.Mul(sg.rowFirst[i])
		}
		if hasR {
			uR = sg.colLast[i].Mul(xr)
			vR = yr.Mul(sg.rowLast[i])
		}
		if hasL {
			g.AddInPlace(uL.Mul(gLL).Mul(vL))
		}
		if hasR {
			g.AddInPlace(uR.Mul(gRR).Mul(vR))
		}
		if hasL && hasR {
			g.AddInPlace(uL.Mul(gLR).Mul(vR))
			g.AddInPlace(uR.Mul(gRL).Mul(vL))
		}
		out[sg.lo+i] = g
	}
	return nil
}
