package rgf

import (
	"fmt"
	"math/rand"
	"testing"

	"negfsim/internal/cmat"
)

// BenchmarkRetardedSolve compares the sequential block-tridiagonal recursion
// against the Schur-complement partitioned solver at matching sizes — the
// single-process view of the spatial split's compute trade (the wire-volume
// side lives in perfmodel.SpatialExchangeBytes). The partitioned variants
// run their segments on as many workers as segments.
func BenchmarkRetardedSolve(b *testing.B) {
	const (
		n  = 32
		bs = 24
	)
	a := randomSystem(rand.New(rand.NewSource(41)), n, bs, 2.5, 0.6)

	b.Run("sequential", func(b *testing.B) {
		for i := 0; i < b.N; i++ {
			ret, err := SolveRetarded(a)
			if err != nil {
				b.Fatal(err)
			}
			ret.Release()
		}
	})
	for _, segments := range []int{2, 4} {
		b.Run(fmt.Sprintf("partitioned/%d", segments), func(b *testing.B) {
			for i := 0; i < b.N; i++ {
				diag, err := PartitionedRetarded(a, segments, segments)
				if err != nil {
					b.Fatal(err)
				}
				cmat.PutAll(diag...)
			}
		})
	}
}
