package egrid

import (
	"math"
	"testing"
)

// gaussian is a synthetic resonance: a peak of the given height, center
// and width — the spectral shape adaptive refinement exists for. Real
// spectral currents decay exponentially outside the bias window (the
// Fermi factors), which is what makes coarse far-field grids viable;
// Gaussian tails model that, where a Lorentzian's algebraic tails would
// genuinely need resolution everywhere at tight tolerance.
func gaussian(e, center, sigma, height float64) float64 {
	d := (e - center) / sigma
	return height * math.Exp(-d*d/2)
}

// runController drives a controller against an analytic integrand until
// Done, evaluating the function exactly at every active point each round
// (the stand-in for a converged Born solve), and returns the final plan.
func runController(t *testing.T, c *Controller, f func(e float64) float64) Plan {
	t.Helper()
	for round := 0; round < 50; round++ {
		g := c.Grid()
		v := make([]float64, g.NE())
		for _, e := range g.Active() {
			v[e] = f(g.Energy(e))
		}
		p := c.Plan(v)
		c.Apply(p)
		if p.Done {
			return p
		}
	}
	t.Fatalf("controller did not terminate in 50 rounds")
	return Plan{}
}

// TestControllerResolvesPeaks checks the core behavior: on a spectrum of
// two narrow resonances over a flat background, the controller refines
// the peaks to the fine resolution, keeps the flat regions coarse, and
// reproduces the fine-grid quadrature within tolerance with far fewer
// points.
func TestControllerResolvesPeaks(t *testing.T) {
	const ne = 256
	f := func(e float64) float64 {
		return gaussian(e, -0.31, 0.02, 1.0) + gaussian(e, 0.42, 0.03, 0.6)
	}
	c, err := NewController(ne, -1, 1, Config{TolCurrent: 1e-6})
	if err != nil {
		t.Fatal(err)
	}
	p := runController(t, c, f)
	if p.Reason != "resolved" {
		t.Fatalf("stopped with reason %q (round %d, %d active)", p.Reason, c.Round(), c.Grid().NumActive())
	}

	full := Uniform(ne, -1, 1)
	v := make([]float64, ne)
	for e := 0; e < ne; e++ {
		v[e] = f(full.Energy(e))
	}
	ref := full.Integrate(v)
	if d := math.Abs(p.Integrated - ref); d > 1e-4*math.Max(1, math.Abs(ref)) {
		t.Errorf("adaptive integral %v vs fine-grid %v (diff %g)", p.Integrated, ref, d)
	}
	if n := c.Grid().NumActive(); n > ne/2 {
		t.Errorf("used %d of %d points; want ≤ half", n, ne)
	}
	if c.Refined() == 0 {
		t.Errorf("no points were refined on a peaked spectrum")
	}
}

// TestControllerFlatSpectrum checks the other extreme: a zero integrand
// terminates immediately on the seed grid with no refinement.
func TestControllerFlatSpectrum(t *testing.T) {
	c, err := NewController(128, -1, 1, Config{TolCurrent: 1e-6})
	if err != nil {
		t.Fatal(err)
	}
	seed := c.Grid().NumActive()
	p := runController(t, c, func(e float64) float64 { return 0 })
	if p.Reason != "resolved" || c.Refined() != 0 {
		t.Fatalf("flat spectrum: reason %q, refined %d", p.Reason, c.Refined())
	}
	if n := c.Grid().NumActive(); n != seed {
		t.Errorf("flat spectrum grew the grid: %d → %d", seed, n)
	}
}

// TestControllerCoarsensSmooth checks that on a broad smooth integrand a
// deliberately oversized seed is thinned: the controller drops points the
// quadrature does not need while holding the integral.
func TestControllerCoarsensSmooth(t *testing.T) {
	const ne = 128
	f := func(e float64) float64 { return gaussian(e, 0, 0.8, 1.0) }
	c, err := NewController(ne, -1, 1, Config{TolCurrent: 1e-4, MinNE: 96})
	if err != nil {
		t.Fatal(err)
	}
	// A 96-point seed on a gentle bump is overkill; drive past round 0 so
	// coarsening (disabled on the blanket round) gets a chance.
	p := runController(t, c, f)
	if !p.Done {
		t.Fatal("controller did not finish")
	}
	if c.Coarsened() != 0 && c.Grid().NumActive() >= 96+c.Refined() {
		t.Errorf("coarsening removed %d points but the grid never shrank", c.Coarsened())
	}
}

// TestControllerMaxNEBudget checks the point budget is a hard cap.
func TestControllerMaxNEBudget(t *testing.T) {
	const ne, budget = 256, 24
	f := func(e float64) float64 { return gaussian(e, 0.1, 0.01, 1.0) }
	c, err := NewController(ne, -1, 1, Config{TolCurrent: 1e-9, MinNE: 9, MaxNE: budget})
	if err != nil {
		t.Fatal(err)
	}
	for round := 0; round < 50; round++ {
		g := c.Grid()
		if g.NumActive() > budget {
			t.Fatalf("round %d: %d active points exceed the %d budget", round, g.NumActive(), budget)
		}
		v := make([]float64, g.NE())
		for _, e := range g.Active() {
			v[e] = f(g.Energy(e))
		}
		p := c.Plan(v)
		c.Apply(p)
		if p.Done {
			return
		}
	}
	t.Fatal("budgeted controller did not terminate")
}

// TestControllerMaxRounds checks the round budget terminates a run that
// would otherwise keep going.
func TestControllerMaxRounds(t *testing.T) {
	c, err := NewController(1024, -1, 1, Config{TolCurrent: 1e-12, MinNE: 5, MaxRounds: 2})
	if err != nil {
		t.Fatal(err)
	}
	f := func(e float64) float64 { return gaussian(e, 0, 0.02, 1.0) }
	rounds := 0
	for {
		g := c.Grid()
		v := make([]float64, g.NE())
		for _, e := range g.Active() {
			v[e] = f(g.Energy(e))
		}
		p := c.Plan(v)
		c.Apply(p)
		rounds++
		if p.Done {
			if p.Reason != "max_rounds" && p.Reason != "resolved" {
				t.Fatalf("reason %q", p.Reason)
			}
			break
		}
	}
	if rounds > 2 {
		t.Fatalf("ran %d rounds past a MaxRounds=2 budget", rounds)
	}
}

// TestControllerWarmResume checks that resuming from a converged grid
// skips the blanket round: an already-resolved grid terminates without
// inserting points.
func TestControllerWarmResume(t *testing.T) {
	const ne = 256
	f := func(e float64) float64 {
		return gaussian(e, -0.31, 0.02, 1.0) + gaussian(e, 0.42, 0.03, 0.6)
	}
	cold, err := NewController(ne, -1, 1, Config{TolCurrent: 1e-6})
	if err != nil {
		t.Fatal(err)
	}
	runController(t, cold, f)
	st := cold.Grid().State()

	warm, err := ResumeController(st, Config{TolCurrent: 1e-6})
	if err != nil {
		t.Fatal(err)
	}
	p := runController(t, warm, f)
	if !p.Done {
		t.Fatal("warm controller did not finish")
	}
	if warm.Refined() > cold.Refined()/4 {
		t.Errorf("warm resume re-refined %d points (cold run needed %d)", warm.Refined(), cold.Refined())
	}
}

// TestControllerDefaults checks Config.withDefaults resolution.
func TestControllerDefaults(t *testing.T) {
	cfg := Config{}.withDefaults(64)
	if cfg.TolCurrent != 1e-6 || cfg.MinNE != DefaultSeedPoints(64) || cfg.MaxNE != 64 || cfg.MaxRounds != 12 {
		t.Errorf("defaults: %+v", cfg)
	}
	cfg = Config{MinNE: 100, MaxNE: 200}.withDefaults(64)
	if cfg.MinNE != 64 || cfg.MaxNE != 64 {
		t.Errorf("clamping: %+v", cfg)
	}
	if n := DefaultSeedPoints(4); n != 4 {
		t.Errorf("DefaultSeedPoints(4) = %d", n)
	}
	if n := DefaultSeedPoints(256); n != 33 {
		t.Errorf("DefaultSeedPoints(256) = %d", n)
	}
}
