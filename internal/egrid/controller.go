package egrid

import (
	"fmt"
	"math"
	"sort"
)

// Config tunes the refinement controller.
type Config struct {
	// TolCurrent is the tolerance on the integrated observable (the
	// energy-integrated current): the controller refines until its own
	// error indicators and the round-to-round change of the integral are
	// both below it. It is an absolute tolerance, relaxed to relative
	// via tol·max(1, |I|) when the integral is large. ≤ 0 means the
	// default 1e-6.
	TolCurrent float64
	// MinNE is the seed-grid size (and the floor coarsening never drops
	// below). ≤ 0 means DefaultSeedPoints of the fine grid.
	MinNE int
	// MaxNE caps the active point count; refinement past it stops with
	// reason "max_ne". ≤ 0 means the full fine grid.
	MaxNE int
	// MaxRounds bounds the refinement rounds (each round is one full
	// Born solve). ≤ 0 means 12.
	MaxRounds int
}

// withDefaults resolves the zero fields against a fine grid of ne points.
func (c Config) withDefaults(ne int) Config {
	if c.TolCurrent <= 0 {
		c.TolCurrent = 1e-6
	}
	if c.MinNE <= 0 {
		c.MinNE = DefaultSeedPoints(ne)
	}
	if c.MinNE > ne {
		c.MinNE = ne
	}
	if c.MaxNE <= 0 || c.MaxNE > ne {
		c.MaxNE = ne
	}
	if c.MaxNE < c.MinNE {
		c.MaxNE = c.MinNE
	}
	if c.MaxRounds <= 0 {
		c.MaxRounds = 12
	}
	return c
}

// The controller's indicator thresholds, as fractions of the per-round
// effective tolerance scaled by interval width. Refinement triggers at
// refineFrac of the budget; coarsening only below coarsenFrac of it, a
// 25× hysteresis band that keeps a point from oscillating in and out.
// blanketFloorFrac is the round-0 "is this region worth resolving at
// all" floor on the integrand magnitude.
const (
	refineFrac       = 0.25
	coarsenFrac      = 0.01
	blanketFloorFrac = 0.05
)

// Controller drives the refine/coarsen loop: feed it the per-energy
// integrand of each converged Born solve (Plan), apply the plan it
// returns (Apply), and re-solve on the new grid until Plan reports Done.
// It is not safe for concurrent use.
type Controller struct {
	grid *Grid
	cfg  Config

	round int
	prevI float64
	warm  bool // resumed from a previous grid: skip the blanket round

	inserted map[int]bool // points this controller added (never dropped)
	dropped  map[int]bool // points this controller removed (never re-added)

	refined, coarsened int
}

// NewController seeds a coarse grid over the fine window and returns the
// controller that will refine it.
func NewController(ne int, emin, emax float64, cfg Config) (*Controller, error) {
	cfg = cfg.withDefaults(ne)
	g, err := Seed(ne, emin, emax, cfg.MinNE)
	if err != nil {
		return nil, err
	}
	return &Controller{grid: g, cfg: cfg,
		inserted: map[int]bool{}, dropped: map[int]bool{}}, nil
}

// ResumeController starts from a previously converged grid (a campaign
// warm start, or a checkpoint resume): the saved active set replaces the
// seed, and the first round uses the curvature indicator instead of the
// blanket refinement pass, so a grid that already resolves the spectrum
// converges without re-inserting points it does not need.
func ResumeController(st *State, cfg Config) (*Controller, error) {
	g, err := st.Grid()
	if err != nil {
		return nil, err
	}
	cfg = cfg.withDefaults(st.NE)
	return &Controller{grid: g, cfg: cfg, warm: true,
		inserted: map[int]bool{}, dropped: map[int]bool{}}, nil
}

// Grid returns the current grid.
func (c *Controller) Grid() *Grid { return c.grid }

// Round returns the number of Plan/Apply rounds completed so far.
func (c *Controller) Round() int { return c.round }

// Refined and Coarsened report the cumulative point insertions and
// removals across all rounds.
func (c *Controller) Refined() int { return c.refined }

// Coarsened reports the cumulative point removals across all rounds.
func (c *Controller) Coarsened() int { return c.coarsened }

// Plan is one round's verdict: the fine-grid points to activate and
// deactivate, or Done with the reason refinement stopped.
type Plan struct {
	// Insert and Drop are the fine-grid indices to activate/deactivate.
	// Both are empty when Done.
	Insert, Drop []int
	// Done reports that the grid is final; Reason says why ("resolved",
	// "max_ne", "max_rounds").
	Done   bool
	Reason string
	// Integrated is the quadrature of the supplied values on the current
	// grid; EstError is the controller's error estimate for it (the
	// round-to-round change, NaN on the first round).
	Integrated float64
	EstError   float64
}

type flagged struct {
	mid int
	err float64
}

// Plan evaluates the refinement indicators on one converged solve's
// per-energy integrand (indexed by fine-grid point; only active entries
// are read) and returns the next move. It does not mutate the
// controller — call Apply to commit the plan.
func (c *Controller) Plan(values []float64) Plan {
	if len(values) != c.grid.ne {
		panic(fmt.Sprintf("egrid: Plan got %d values for a %d-point fine grid", len(values), c.grid.ne))
	}
	p := Plan{Integrated: c.grid.Integrate(values), EstError: math.NaN()}
	if c.round > 0 {
		p.EstError = math.Abs(p.Integrated - c.prevI)
	}
	tolEff := c.cfg.TolCurrent * math.Max(1, math.Abs(p.Integrated))
	window := c.grid.emax - c.grid.emin
	active := c.grid.active

	// Refinement indicators. The workhorse is the Richardson / interval-
	// halving estimate on each interior active triple (i, j, k): the
	// difference between the coarse trapezoid over [E_i, E_k] and the
	// fine pair over [E_i, E_j] + [E_j, E_k] is (E_k−E_i)/2 · |v_j −
	// lerp_{i,k}(E_j)|, i.e. exactly the local quadrature error revealed
	// by having the midpoint. Where it exceeds its share of the
	// tolerance budget, both flanking intervals are bisected.
	var flags []flagged
	flag := func(a, b int, err float64) {
		if b-a < 2 {
			return // already at fine resolution
		}
		mid := (a + b) / 2
		if c.dropped[mid] {
			return // coarsening removed it; do not oscillate
		}
		flags = append(flags, flagged{mid: mid, err: err})
	}
	blanket := c.round == 0 && !c.warm
	if blanket {
		// Round 0 on a cold seed: bisect every interval whose endpoints
		// carry non-negligible integrand, so the curvature indicator of
		// the following rounds has midpoints to work with. Flat regions
		// (|v| below the floor at both ends) stay coarse; their skipped
		// contribution is bounded by floor·window ≤ blanketFloorFrac·tol.
		floor := blanketFloorFrac * tolEff / window
		for i := 1; i < len(active); i++ {
			a, b := active[i-1], active[i]
			if math.Abs(values[a]) > floor || math.Abs(values[b]) > floor {
				flag(a, b, math.Inf(1))
			}
		}
	} else {
		for i := 1; i+1 < len(active); i++ {
			a, j, b := active[i-1], active[i], active[i+1]
			ea, ej, eb := c.grid.Energy(a), c.grid.Energy(j), c.grid.Energy(b)
			alpha := (ej - ea) / (eb - ea)
			lerp := (1-alpha)*values[a] + alpha*values[b]
			err := math.Abs(values[j]-lerp) * (eb - ea) / 2
			if err > refineFrac*tolEff*(eb-ea)/window {
				flag(a, j, err)
				flag(j, b, err)
			}
		}
	}

	// Deduplicate (a flagged point can be the midpoint of both the left
	// and right triple) keeping the larger error, then order by error so
	// a MaxNE budget spends itself on the worst intervals first.
	best := map[int]float64{}
	for _, f := range flags {
		if f.err > best[f.mid] {
			best[f.mid] = f.err
		}
	}
	insert := make([]flagged, 0, len(best))
	for mid, err := range best {
		insert = append(insert, flagged{mid: mid, err: err})
	}
	sort.Slice(insert, func(i, j int) bool {
		if insert[i].err != insert[j].err {
			return insert[i].err > insert[j].err
		}
		return insert[i].mid < insert[j].mid
	})
	room := c.cfg.MaxNE - len(active)
	capped := len(insert) > room
	if capped {
		insert = insert[:room]
	}
	for _, f := range insert {
		p.Insert = append(p.Insert, f.mid)
	}
	sort.Ints(p.Insert)

	// Coarsening: an interior point whose removal changes the quadrature
	// by far less than its share of the tolerance is dropped (points the
	// controller itself inserted are kept — they are the resolution the
	// indicators asked for). Adjacent drops are skipped so a flat region
	// thins gradually instead of collapsing in one round, and the active
	// count never falls below MinNE.
	if !blanket {
		keep := len(active) + len(p.Insert)
		insertSet := map[int]bool{}
		for _, m := range p.Insert {
			insertSet[m] = true
		}
		lastDrop := -2
		for i := 1; i+1 < len(active); i++ {
			if keep-len(p.Drop) <= c.cfg.MinNE {
				break
			}
			a, j, b := active[i-1], active[i], active[i+1]
			if c.inserted[j] || i-1 == lastDrop {
				continue
			}
			// Keep the mesh where this round is still inserting.
			if insertSet[(a+j)/2] || insertSet[(j+b)/2] {
				continue
			}
			ea, ej, eb := c.grid.Energy(a), c.grid.Energy(j), c.grid.Energy(b)
			alpha := (ej - ea) / (eb - ea)
			lerp := (1-alpha)*values[a] + alpha*values[b]
			err := math.Abs(values[j]-lerp) * (eb - ea) / 2
			if err < coarsenFrac*tolEff*(eb-ea)/window {
				p.Drop = append(p.Drop, j)
				lastDrop = i
			}
		}
	}

	// Termination: nothing left to insert and the integral has settled
	// (or the budgets are exhausted).
	switch {
	case len(p.Insert) == 0 && (c.round == 0 || p.EstError <= tolEff):
		p.Done, p.Reason = true, "resolved"
	case capped && len(p.Insert) == 0:
		p.Done, p.Reason = true, "max_ne"
	case c.round+1 >= c.cfg.MaxRounds:
		p.Done, p.Reason = true, "max_rounds"
	}
	if p.Done {
		p.Insert, p.Drop = nil, nil
	}
	return p
}

// Apply commits a plan: inserts and drops its points, rebuilding the
// grid, and advances the round counter. Applying a Done plan only
// advances the bookkeeping.
func (c *Controller) Apply(p Plan) {
	c.round++
	c.prevI = p.Integrated
	if p.Done || (len(p.Insert) == 0 && len(p.Drop) == 0) {
		return
	}
	dropSet := map[int]bool{}
	for _, d := range p.Drop {
		dropSet[d] = true
		c.dropped[d] = true
	}
	next := make([]int, 0, c.grid.NumActive()+len(p.Insert)-len(p.Drop))
	for _, e := range c.grid.active {
		if !dropSet[e] {
			next = append(next, e)
		}
	}
	next = append(next, p.Insert...)
	sort.Ints(next)
	for _, m := range p.Insert {
		c.inserted[m] = true
	}
	c.refined += len(p.Insert)
	c.coarsened += len(p.Drop)
	g, err := FromActive(c.grid.ne, c.grid.emin, c.grid.emax, next)
	if err != nil {
		panic(fmt.Sprintf("egrid: applying plan broke the grid: %v", err))
	}
	c.grid = g
}
