// Package egrid owns the adaptive energy grid of the simulator: a
// non-uniform set of energy points with trapezoid quadrature weights,
// plus the error-controlled refine/coarsen controller that grows and
// shrinks it between Born solves.
//
// The scattering self-energy kernels require a commensurate uniform
// grid — phonon energies are integer multiples of ΔE, so the SSE
// convolution is an integer index shift (device.Params.PhononShift) and
// the tile kernels slide contiguous energy windows. A truly non-uniform
// point set would break that structure, so the adaptive grid is instead
// an ACTIVE SUBSET of the fine uniform grid: tensors keep their full
// (Nkz, NE, NA, …) shape, the expensive per-energy RGF solves run only
// at the active points, and the Green's functions at inactive points are
// filled by linear interpolation between the nearest active neighbors
// before each SSE phase. The savings are the solves; the SSE phase,
// checkpoints and the distributed exchanges keep their layouts.
//
// Quadrature weights are exact on half-step integer boundaries (see
// Grid.Weight), so on the full grid every weight is bit-identical to the
// uniform spacing ΔE and the weight-aware observable accumulation in
// core reproduces the historical uniform-grid numbers bitwise.
package egrid

import (
	"fmt"
	"sort"
)

// Grid is a non-uniform energy grid: the active subset of a fine uniform
// grid of NE points over [Emin, Emax], with trapezoid quadrature weights
// supported on the active points. A Grid is immutable after construction
// and safe for concurrent readers; the controller builds a new Grid for
// every refinement round.
type Grid struct {
	ne         int
	emin, emax float64
	active     []int     // sorted fine indices, active[0]=0, last=ne-1
	weights    []float64 // len ne; zero at inactive points
}

// Uniform returns the full fine grid: every point active, every weight
// exactly the uniform spacing ΔE.
func Uniform(ne int, emin, emax float64) *Grid {
	active := make([]int, ne)
	for i := range active {
		active[i] = i
	}
	g, err := FromActive(ne, emin, emax, active)
	if err != nil {
		panic(err) // a full ascending index set always validates
	}
	return g
}

// FromActive builds a grid from an explicit active point set. The indices
// must be strictly ascending fine-grid indices including both endpoints 0
// and ne−1 (so interpolation at inactive points never extrapolates). The
// slice is copied.
func FromActive(ne int, emin, emax float64, active []int) (*Grid, error) {
	if ne < 1 {
		return nil, fmt.Errorf("egrid: need at least 1 fine point, got %d", ne)
	}
	if !(emax > emin) {
		return nil, fmt.Errorf("egrid: energy window [%g, %g] is empty", emin, emax)
	}
	if len(active) < 1 || (ne >= 2 && len(active) < 2) {
		return nil, fmt.Errorf("egrid: need both endpoint points active, got %d points", len(active))
	}
	if active[0] != 0 || active[len(active)-1] != ne-1 {
		return nil, fmt.Errorf("egrid: active set must span [0, %d], got [%d, %d]",
			ne-1, active[0], active[len(active)-1])
	}
	for i := 1; i < len(active); i++ {
		if active[i] <= active[i-1] {
			return nil, fmt.Errorf("egrid: active indices not strictly ascending at position %d", i)
		}
	}
	g := &Grid{ne: ne, emin: emin, emax: emax, active: append([]int(nil), active...)}
	g.computeWeights()
	return g, nil
}

// Seed returns a coarse starting grid of approximately n evenly spaced
// active points (always including both endpoints). n is clamped to
// [2, ne].
func Seed(ne int, emin, emax float64, n int) (*Grid, error) {
	if n < 2 {
		n = 2
	}
	if n > ne {
		n = ne
	}
	active := make([]int, 0, n)
	last := -1
	for i := 0; i < n; i++ {
		idx := (i*(ne-1) + (n-1)/2) / (n - 1) // round(i·(ne−1)/(n−1))
		if idx > last {
			active = append(active, idx)
			last = idx
		}
	}
	return FromActive(ne, emin, emax, active)
}

// DefaultSeedPoints is the default coarse-grid size for a fine grid of ne
// points: an eighth of the fine resolution, floored at 9 points so narrow
// features still land near a seed point, capped at ne.
func DefaultSeedPoints(ne int) int {
	n := ne/8 + 1
	if n < 9 {
		n = 9
	}
	if n > ne {
		n = ne
	}
	return n
}

// computeWeights fills the trapezoid quadrature weights. Each active
// point owns the window between the midpoints to its active neighbors
// (the grid edges for the endpoints). Boundaries live on half-step
// integers — point e sits at 2e+1 in units of ΔE/2 — so the weight is
// float64(span)·(ΔE/2) with span an exact small integer. On the full
// grid span is always 2 and the weight is bitwise ΔE, which is what
// keeps the weight-aware accumulation in core bit-compatible with the
// historical uniform-grid code.
func (g *Grid) computeWeights() {
	g.weights = make([]float64, g.ne)
	half := g.Step() / 2
	for i, e := range g.active {
		lb := 0
		if i > 0 {
			lb = g.active[i-1] + e + 1
		}
		rb := 2 * g.ne
		if i < len(g.active)-1 {
			rb = e + g.active[i+1] + 1
		}
		g.weights[e] = float64(rb-lb) * half
	}
}

// NE returns the fine-grid point count.
func (g *Grid) NE() int { return g.ne }

// Emin returns the lower edge of the energy window.
func (g *Grid) Emin() float64 { return g.emin }

// Emax returns the upper edge of the energy window.
func (g *Grid) Emax() float64 { return g.emax }

// Step returns the fine-grid spacing ΔE = (Emax−Emin)/NE, matching
// device.Params.EStep.
func (g *Grid) Step() float64 { return (g.emax - g.emin) / float64(g.ne) }

// Energy returns the energy of fine-grid point e, matching
// device.Params.Energy.
func (g *Grid) Energy(e int) float64 { return g.emin + (float64(e)+0.5)*g.Step() }

// NumActive returns the number of active points.
func (g *Grid) NumActive() int { return len(g.active) }

// Active returns a copy of the sorted active fine-grid indices.
func (g *Grid) Active() []int { return append([]int(nil), g.active...) }

// Full reports whether every fine-grid point is active.
func (g *Grid) Full() bool { return len(g.active) == g.ne }

// IsActive reports whether fine-grid point e is active.
func (g *Grid) IsActive(e int) bool { return e >= 0 && e < g.ne && g.weights[e] != 0 }

// Equal reports whether two grids have the same fine grid, window and
// active point set.
func (g *Grid) Equal(o *Grid) bool {
	if g.ne != o.ne || g.emin != o.emin || g.emax != o.emax || len(g.active) != len(o.active) {
		return false
	}
	for i, e := range g.active {
		if o.active[i] != e {
			return false
		}
	}
	return true
}

// Weight returns the quadrature weight of fine-grid point e (zero for
// inactive points).
func (g *Grid) Weight(e int) float64 { return g.weights[e] }

// Integrate evaluates the quadrature Σ w_e·v_e over the active points.
// values is indexed by fine-grid point; inactive entries are ignored.
func (g *Grid) Integrate(values []float64) float64 {
	var sum float64
	for _, e := range g.active {
		sum += g.weights[e] * values[e]
	}
	return sum
}

// InterpolateValues fills the inactive entries of a fine-grid-indexed
// slice by linear interpolation between the nearest active neighbors.
// Active entries are left untouched.
func (g *Grid) InterpolateValues(v []float64) {
	for i := 1; i < len(g.active); i++ {
		a, b := g.active[i-1], g.active[i]
		for e := a + 1; e < b; e++ {
			alpha := float64(e-a) / float64(b-a)
			v[e] = (1-alpha)*v[a] + alpha*v[b]
		}
	}
}

// ChunkBounds partitions the fine index range [0, NE) into parts
// contiguous chunks whose boundaries balance the ACTIVE point count —
// the point-list generalization of the count split i·n/parts used by
// the distributed GF decomposition. Chunk i is [lo, hi); the chunks
// tile [0, NE) exactly, and on the full grid the boundaries coincide
// with i·NE/parts, so uniform-grid distributed runs keep their
// historical ownership (and byte accounting) unchanged.
func (g *Grid) ChunkBounds(parts, i int) (lo, hi int) {
	bound := func(k int) int {
		if k <= 0 {
			return 0
		}
		if k >= parts {
			return g.ne
		}
		return g.active[k*len(g.active)/parts]
	}
	return bound(i), bound(i + 1)
}

// SplitPoints distributes an ascending point list into parts contiguous
// balanced sublists (the first n%parts get the extra point). It is the
// list-valued view of the same decomposition ChunkBounds bounds.
func SplitPoints(points []int, parts int) [][]int {
	out := make([][]int, parts)
	n := len(points)
	for i := 0; i < parts; i++ {
		out[i] = points[i*n/parts : (i+1)*n/parts]
	}
	return out
}

// State is the serializable form of a Grid, embedded in core checkpoints
// so a converged adaptive grid travels with the Σ≷ it was solved on.
type State struct {
	// NE, Emin, Emax identify the fine grid.
	NE   int
	Emin float64
	Emax float64
	// Active is the sorted active fine-index set.
	Active []int
}

// State captures the grid for serialization.
func (g *Grid) State() *State {
	return &State{NE: g.ne, Emin: g.emin, Emax: g.emax, Active: g.Active()}
}

// IsFull reports whether the state describes the full fine grid.
func (s *State) IsFull() bool { return s != nil && len(s.Active) == s.NE }

// Grid reconstructs the grid a State describes.
func (s *State) Grid() (*Grid, error) {
	if s == nil {
		return nil, fmt.Errorf("egrid: nil grid state")
	}
	if !sort.IntsAreSorted(s.Active) {
		return nil, fmt.Errorf("egrid: grid state active set not sorted")
	}
	return FromActive(s.NE, s.Emin, s.Emax, s.Active)
}
