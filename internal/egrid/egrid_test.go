package egrid

import (
	"math"
	"testing"
)

// TestUniformWeightsBitCompatible pins the satellite guarantee the core
// accumulation depends on: on the full fine grid every quadrature weight
// is BITWISE equal to the uniform spacing ΔE, for step sizes that are
// not exactly representable (window 2 over 16 points is; e.g. 0.7/12 is
// not).
func TestUniformWeightsBitCompatible(t *testing.T) {
	cases := []struct {
		ne         int
		emin, emax float64
	}{
		{16, -1, 1},
		{12, -0.3, 0.4},
		{64, -1.1, 0.97},
		{7, 0, 1e-3},
		{1, -1, 1},
	}
	for _, c := range cases {
		g := Uniform(c.ne, c.emin, c.emax)
		step := (c.emax - c.emin) / float64(c.ne)
		for e := 0; e < c.ne; e++ {
			if w := g.Weight(e); w != step {
				t.Errorf("ne=%d window=[%g,%g]: weight(%d)=%v != ΔE=%v (diff %g)",
					c.ne, c.emin, c.emax, e, w, step, w-step)
			}
		}
		if !g.Full() {
			t.Errorf("ne=%d: uniform grid not Full", c.ne)
		}
	}
}

// TestWeightsSumToWindow checks the partition-of-unity property on
// non-uniform grids: the weights of any valid active set sum exactly to
// the energy window (each boundary is an exact half-step integer, so the
// telescoping sum is float-exact up to the final multiply).
func TestWeightsSumToWindow(t *testing.T) {
	g, err := FromActive(32, -1, 1, []int{0, 1, 4, 5, 9, 17, 30, 31})
	if err != nil {
		t.Fatal(err)
	}
	var sum float64
	for e := 0; e < g.NE(); e++ {
		sum += g.Weight(e)
	}
	if math.Abs(sum-2) > 1e-12 {
		t.Errorf("weights sum to %v, want the window width 2", sum)
	}
	// Inactive points carry zero weight.
	if g.Weight(2) != 0 || g.IsActive(2) {
		t.Errorf("inactive point has weight %v", g.Weight(2))
	}
	if !g.IsActive(17) {
		t.Errorf("active point 17 reported inactive")
	}
}

// TestFromActiveValidation rejects active sets that would make
// interpolation extrapolate or the weights ill-defined.
func TestFromActiveValidation(t *testing.T) {
	bad := [][]int{
		{1, 5, 15},    // missing left endpoint
		{0, 5, 14},    // missing right endpoint
		{0, 5, 5, 15}, // duplicate
		{0, 9, 5, 15}, // unsorted
	}
	for _, a := range bad {
		if _, err := FromActive(16, -1, 1, a); err == nil {
			t.Errorf("FromActive(%v) accepted an invalid set", a)
		}
	}
	if _, err := FromActive(16, 1, 1, []int{0, 15}); err == nil {
		t.Errorf("empty energy window accepted")
	}
}

// TestSeedShape checks that seeds are evenly spread, include both
// endpoints, and clamp to the fine grid.
func TestSeedShape(t *testing.T) {
	g, err := Seed(64, -1, 1, 9)
	if err != nil {
		t.Fatal(err)
	}
	a := g.Active()
	if len(a) != 9 || a[0] != 0 || a[len(a)-1] != 63 {
		t.Fatalf("Seed(64, 9) = %v", a)
	}
	for i := 1; i < len(a); i++ {
		if d := a[i] - a[i-1]; d < 7 || d > 9 {
			t.Errorf("seed stride %d between %d and %d", d, a[i-1], a[i])
		}
	}
	// Oversized request degrades to the full grid.
	g, err = Seed(8, -1, 1, 100)
	if err != nil {
		t.Fatal(err)
	}
	if !g.Full() {
		t.Errorf("Seed(8, 100) not full: %v", g.Active())
	}
}

// TestChunkBoundsUniformEquivalence pins the distributed-decomposition
// satellite: on the full grid the active-balanced chunk boundaries must
// coincide with the historical count split i·n/parts for every (n,
// parts, i), so uniform distributed runs keep byte-identical ownership.
func TestChunkBoundsUniformEquivalence(t *testing.T) {
	for _, ne := range []int{4, 16, 17, 64, 706} {
		g := Uniform(ne, -1, 1)
		for parts := 1; parts <= 8; parts++ {
			if parts > ne {
				continue
			}
			for i := 0; i < parts; i++ {
				lo, hi := g.ChunkBounds(parts, i)
				wlo, whi := i*ne/parts, (i+1)*ne/parts
				if lo != wlo || hi != whi {
					t.Fatalf("ne=%d parts=%d i=%d: ChunkBounds=[%d,%d) want [%d,%d)",
						ne, parts, i, lo, hi, wlo, whi)
				}
			}
		}
	}
}

// TestChunkBoundsBalanced checks that on a sparse grid the chunks tile
// [0, NE) and split the active points to within one point of evenly.
func TestChunkBoundsBalanced(t *testing.T) {
	g, err := FromActive(64, -1, 1, []int{0, 1, 2, 3, 4, 5, 6, 7, 30, 63})
	if err != nil {
		t.Fatal(err)
	}
	parts := 4
	prev := 0
	for i := 0; i < parts; i++ {
		lo, hi := g.ChunkBounds(parts, i)
		if lo != prev {
			t.Fatalf("chunk %d starts at %d, want %d (chunks must tile)", i, lo, prev)
		}
		prev = hi
		n := 0
		for _, e := range g.Active() {
			if e >= lo && e < hi {
				n++
			}
		}
		want := g.NumActive() / parts
		if n != want && n != want+1 {
			t.Errorf("chunk %d owns %d active points, want %d or %d", i, n, want, want+1)
		}
	}
	if prev != g.NE() {
		t.Fatalf("chunks end at %d, want %d", prev, g.NE())
	}
}

// TestSplitPoints checks the list-valued split covers the input in order
// with balanced sizes.
func TestSplitPoints(t *testing.T) {
	pts := []int{0, 3, 4, 9, 12, 15, 20}
	chunks := SplitPoints(pts, 3)
	var flat []int
	for _, c := range chunks {
		flat = append(flat, c...)
	}
	if len(flat) != len(pts) {
		t.Fatalf("split lost points: %v", chunks)
	}
	for i := range flat {
		if flat[i] != pts[i] {
			t.Fatalf("split reordered points: %v", chunks)
		}
	}
	for _, c := range chunks {
		if len(c) < 2 || len(c) > 3 {
			t.Errorf("unbalanced chunk %v", c)
		}
	}
}

// TestInterpolateValues checks linear fill between active neighbors.
func TestInterpolateValues(t *testing.T) {
	g, err := FromActive(8, 0, 8, []int{0, 4, 7})
	if err != nil {
		t.Fatal(err)
	}
	v := []float64{0, -1, -1, -1, 8, -1, -1, 2}
	g.InterpolateValues(v)
	want := []float64{0, 2, 4, 6, 8, 6, 4, 2}
	for i := range v {
		if math.Abs(v[i]-want[i]) > 1e-12 {
			t.Errorf("v[%d] = %v, want %v", i, v[i], want[i])
		}
	}
}

// TestStateRoundTrip checks Grid ↔ State fidelity and validation.
func TestStateRoundTrip(t *testing.T) {
	g, err := FromActive(32, -0.5, 0.5, []int{0, 3, 9, 31})
	if err != nil {
		t.Fatal(err)
	}
	st := g.State()
	if st.IsFull() {
		t.Errorf("sparse grid state reports full")
	}
	g2, err := st.Grid()
	if err != nil {
		t.Fatal(err)
	}
	a, b := g.Active(), g2.Active()
	if len(a) != len(b) {
		t.Fatalf("round trip changed active count")
	}
	for i := range a {
		if a[i] != b[i] {
			t.Fatalf("round trip changed active set: %v vs %v", a, b)
		}
		if g.Weight(a[i]) != g2.Weight(b[i]) {
			t.Fatalf("round trip changed weights")
		}
	}
	var nilState *State
	if _, err := nilState.Grid(); err == nil {
		t.Errorf("nil state produced a grid")
	}
	if nilState.IsFull() {
		t.Errorf("nil state reports full")
	}
}
