package perfmodel

import (
	"negfsim/internal/comm"
	"negfsim/internal/device"
)

// Memory feasibility (§5.2.1): the paper's extreme-scale run "is not
// possible on the original OMEN, due to infeasible memory requirements of
// the algorithm" — OMEN's SSE phase replicates the full 5-D electron
// tensors on every process, while the tensor-free CA variant holds only an
// energy-window × atom-tile slice.

// OMENPerProcessMemory returns the bytes one OMEN process needs during the
// SSE phase: its own G^≷/Σ^≷ energy slices plus equally-sized receive
// buffers for the two shifted replicas of each round, and — the actual
// blow-up — the full phonon-momentum-resolved D^≷ pair that the per-round
// broadcasts accumulate on every process (the 6-D tensors the paper's
// "tensor-free" variant eliminates).
func OMENPerProcessMemory(p device.Params, procs int) float64 {
	slice := float64(p.Nkz) * float64(p.NE) / float64(procs) *
		float64(p.NA) * float64(p.Norb*p.Norb)
	electron := 8 * 16 * slice // G^≷ + Σ^≷ + two shifted receive pairs
	phonon := 2 * 16 * float64(p.Nqz) * float64(p.Nw) * float64(p.NA) *
		float64(p.NB) * float64(p.N3D*p.N3D) // replicated D^≷ pair
	return electron + phonon
}

// MemoryFeasible reports whether a scheme fits in the machine's per-node
// memory at the given node count (RanksPerNode processes share a node).
func MemoryFeasible(m Machine, p device.Params, s Scheme, nodes int, nodeMemBytes float64) bool {
	procs := nodes * m.RanksPerNode
	var perProc float64
	switch s {
	case DaCe:
		best, feasible := comm.SearchTiles(p, procs, 0)
		if len(feasible) == 0 {
			perProc = comm.PerProcessMemory(p, 1, procs)
		} else {
			perProc = comm.PerProcessMemory(p, best.TE, best.TA)
		}
	default:
		perProc = OMENPerProcessMemory(p, procs)
	}
	return perProc*float64(m.RanksPerNode) <= nodeMemBytes
}
