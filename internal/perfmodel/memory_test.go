package perfmodel

import (
	"testing"

	"negfsim/internal/device"
)

func TestExtremeScaleInfeasibleForOMEN(t *testing.T) {
	// §5.2.1: "a setup that is not possible on the original OMEN, due to
	// infeasible memory requirements of the algorithm". Summit nodes have
	// 512 GiB; OMEN's replicated tensors need terabytes per process at the
	// 10,240-atom, 21-kz-point configuration, while the CA variant fits.
	p := device.Paper10240(21)
	const summitNodeMem = 512 * float64(1<<30)
	if MemoryFeasible(Summit, p, OMEN, 3525, summitNodeMem) {
		t.Fatal("OMEN should NOT fit the extreme-scale configuration")
	}
	if !MemoryFeasible(Summit, p, DaCe, 3525, summitNodeMem) {
		t.Fatal("the CA variant must fit the extreme-scale configuration")
	}
	// Quantify: the replicated phonon tensors alone exceed 100 GiB per
	// process at this configuration.
	if got := OMENPerProcessMemory(p, 3525*6); got < 100*float64(1<<30) {
		t.Fatalf("OMEN per-process memory %g bytes, expected > 100 GiB", got)
	}
}

func TestSmallRunsFeasibleForBoth(t *testing.T) {
	// The 4,864-atom strong-scaling runs fit both schemes (the paper could
	// only compare against OMEN where OMEN runs).
	p := device.Paper4864(7)
	const daintNodeMem = 64 * float64(1<<30)
	if !MemoryFeasible(PizDaint, p, OMEN, 1800, daintNodeMem) {
		t.Fatal("OMEN fits the 4,864-atom configuration in the paper's runs")
	}
	if !MemoryFeasible(PizDaint, p, DaCe, 1800, daintNodeMem) {
		t.Fatal("DaCe fits the 4,864-atom configuration")
	}
}
