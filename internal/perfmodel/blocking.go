package perfmodel

import (
	"sort"
	"time"
)

// This file is the model half of the autotuner's "model + tune" loop
// (internal/tune): a first-principles cost prior over GEMM cache-blocking
// candidates, used to order the measured probes so a small wall-clock
// budget lands on the most promising configurations first, and a
// reconciliation statistic comparing the prior's ranking to what the
// probes actually measured. The prior does not need to predict absolute
// times — only to rank candidates well enough that the budgeted probe
// sweep visits the winners early. The reconciliation coefficient is
// reported by the tuner so schedule files record how informative the model
// was on this host (a persistently low value means the machine's cache
// hierarchy diverges from the assumed one and the probe budget should be
// raised).

// Cache geometry the prior assumes. These are deliberately conservative
// round numbers for contemporary x86/ARM server parts; the measured probes
// correct for any divergence, which is the entire point of seeding rather
// than trusting the model.
const (
	// PriorL1Bytes is the assumed per-core L1 data cache.
	PriorL1Bytes = 32 << 10
	// PriorL2Bytes is the assumed per-core L2 cache.
	PriorL2Bytes = 512 << 10
	// priorComplexBytes is the storage of one complex128 element.
	priorComplexBytes = 16
	// priorStripWidth is the packed strip width of the micro-kernel
	// (cmat's gemmNR); one strip is KC·priorStripWidth elements.
	priorStripWidth = 4
)

// BlockingPrior returns a unitless predicted cost for running a
// size×size×size complex GEMM with K-panels of kc and column-panels of nc.
// Lower is better. The terms mirror the classical packed-GEMM capacity
// analysis:
//
//   - a packed panel of kc·nc elements should fit in L2 with room for the
//     A rows streaming through — exceeding a half-L2 budget incurs a
//     capacity-miss penalty proportional to the overflow;
//   - one strip (kc·4 elements) plus the A row segment (kc elements) should
//     sit in L1 across the micro-kernel loop — same penalty shape;
//   - small panels repack and re-dispatch more often: overhead terms decay
//     as 1/kc and 1/nc;
//   - panels that do not divide the problem leave ragged tails handled by
//     the scalar path: a mild penalty on the remainder fraction.
func BlockingPrior(kc, nc, size int) float64 {
	if kc < 1 || nc < 1 || size < 1 {
		return 1e300
	}
	fkc, fnc, fsz := float64(kc), float64(nc), float64(size)

	cost := 1.0

	// L2 capacity: packed B panel + the streaming A row segments.
	l2Need := (fkc*fnc + 2*fkc) * priorComplexBytes
	if budget := float64(PriorL2Bytes) / 2; l2Need > budget {
		cost += 0.5 * (l2Need/budget - 1)
	}

	// L1 capacity: one strip and one A row segment live across the kc loop.
	l1Need := (fkc*priorStripWidth + fkc) * priorComplexBytes
	if budget := float64(PriorL1Bytes) / 2; l1Need > budget {
		cost += 0.5 * (l1Need/budget - 1)
	}

	// Packing and dispatch overhead amortized over the panel volume.
	cost += 24/fkc + 12/fnc

	// Ragged tails: remainder fraction of the last panel in each dimension.
	if r := size % kc; r != 0 && size > kc {
		cost += 0.05 * (1 - float64(r)/fkc) * fkc / fsz
	}
	if r := size % nc; r != 0 && size > nc {
		cost += 0.05 * (1 - float64(r)/fnc) * fnc / fsz
	}
	return cost
}

// RankBlockings sorts candidate (kc, nc) pairs by ascending BlockingPrior
// for the given problem size, returning the permutation indices — the order
// in which a budgeted tuner should spend its probes.
func RankBlockings(kcs, ncs []int, size int) []int {
	if len(kcs) != len(ncs) {
		panic("perfmodel: RankBlockings length mismatch")
	}
	idx := make([]int, len(kcs))
	for i := range idx {
		idx[i] = i
	}
	sort.SliceStable(idx, func(a, b int) bool {
		return BlockingPrior(kcs[idx[a]], ncs[idx[a]], size) < BlockingPrior(kcs[idx[b]], ncs[idx[b]], size)
	})
	return idx
}

// Reconcile compares the model's predicted costs against measured probe
// times for the same candidates and returns the Kendall rank-correlation
// coefficient in [-1, 1]: 1 means the prior ordered every probed pair the
// way the measurements did, 0 means the model was uninformative, negative
// means actively misleading. Pairs tied in either list are skipped.
func Reconcile(predicted []float64, measured []time.Duration) float64 {
	if len(predicted) != len(measured) {
		panic("perfmodel: Reconcile length mismatch")
	}
	concordant, discordant := 0, 0
	for i := 0; i < len(predicted); i++ {
		for j := i + 1; j < len(predicted); j++ {
			dp := predicted[i] - predicted[j]
			dm := measured[i] - measured[j]
			if dp == 0 || dm == 0 {
				continue
			}
			if (dp < 0) == (dm < 0) {
				concordant++
			} else {
				discordant++
			}
		}
	}
	if concordant+discordant == 0 {
		return 0
	}
	return float64(concordant-discordant) / float64(concordant+discordant)
}
