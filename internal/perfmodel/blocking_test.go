package perfmodel

import (
	"testing"
	"time"
)

// TestBlockingPriorPrefersCacheFit checks the capacity terms: a panel
// blowing far past L2 must cost more than one that fits, and a degenerate
// tiny panel must pay the amortization overhead.
func TestBlockingPriorPrefersCacheFit(t *testing.T) {
	fits := BlockingPrior(192, 64, 256)      // ≈192 KiB packed panel, inside L2/2
	blows := BlockingPrior(2048, 2048, 4096) // 64 MiB panel, far past L2
	if fits >= blows {
		t.Fatalf("prior prefers cache-blowing panel: fit=%g blown=%g", fits, blows)
	}
	tiny := BlockingPrior(2, 4, 256)
	if fits >= tiny {
		t.Fatalf("prior prefers degenerate tiny panel: fit=%g tiny=%g", fits, tiny)
	}
	if BlockingPrior(0, 64, 256) < 1e200 {
		t.Fatal("invalid kc not rejected")
	}
}

// TestBlockingPriorDefaultNearTop checks the hand-tuned default (192, 64)
// ranks within the top third of a realistic candidate grid — the property
// the budgeted tuner relies on to find good configurations early.
func TestBlockingPriorDefaultNearTop(t *testing.T) {
	var kcs, ncs []int
	defIdx := -1
	for _, kc := range []int{16, 32, 64, 96, 128, 192, 256, 384, 512, 1024} {
		for _, nc := range []int{8, 16, 32, 48, 64, 96, 128, 256, 512} {
			if kc == 192 && nc == 64 {
				defIdx = len(kcs)
			}
			kcs = append(kcs, kc)
			ncs = append(ncs, nc)
		}
	}
	order := RankBlockings(kcs, ncs, 256)
	pos := -1
	for rank, i := range order {
		if i == defIdx {
			pos = rank
			break
		}
	}
	if pos < 0 || pos > len(order)/3 {
		t.Fatalf("default (192, 64) ranked %d of %d", pos, len(order))
	}
}

// TestReconcileExtremes pins the reconciliation statistic: perfectly
// concordant → 1, perfectly reversed → −1, all-tied → 0.
func TestReconcileExtremes(t *testing.T) {
	pred := []float64{1, 2, 3, 4}
	asc := []time.Duration{10, 20, 30, 40}
	desc := []time.Duration{40, 30, 20, 10}
	if got := Reconcile(pred, asc); got != 1 {
		t.Fatalf("concordant: got %g, want 1", got)
	}
	if got := Reconcile(pred, desc); got != -1 {
		t.Fatalf("reversed: got %g, want -1", got)
	}
	tied := []float64{5, 5, 5, 5}
	if got := Reconcile(tied, asc); got != 0 {
		t.Fatalf("tied predictions: got %g, want 0", got)
	}
}
