package perfmodel

import (
	"negfsim/internal/comm"
	"negfsim/internal/device"
)

// Spatial-split communication model: the wire volume of the distributed
// device-partitioned retarded solve (internal/rgf.DistributedRetarded),
// the third axis of OMEN's momentum/energy/space hierarchy. The counted
// traffic of one solve over P ranks and n device blocks of size bs is
//
//	16·bs²·[(4P−7)  +  (P−1)(3P−5)  +  (P−1)(n−P+1)]
//	        gather       solution bcast   interior allgather
//
// — the Schur-complement contribution gather at rank 0 (rank 0's own block
// is local), the (P−1)-way broadcast of the 3P−5 packed separator solution
// blocks, and the (P−1)-way allgather of the n−(P−1) interior diagonal
// blocks. The comm conformance suite pins this formula against the
// cluster's measured byte counters on both transports.

// SpatialExchangeBytes returns the counted wire bytes of one distributed
// retarded solve of n blocks of size bs over `ranks` cluster ranks. Zero
// when the solve degenerates to a local one (ranks ≤ 1) or the partition is
// infeasible (n < 2·ranks−1).
func SpatialExchangeBytes(n, bs, ranks int) int64 {
	if ranks <= 1 || n < 2*ranks-1 {
		return 0
	}
	p := int64(ranks)
	blocks := (4*p - 7) + (p-1)*(3*p-5) + (p-1)*int64(n-ranks+1)
	return 16 * int64(bs) * int64(bs) * blocks
}

// SpatialGFVolume returns the wire bytes of one GF phase under the spatial
// split: one distributed electron solve per (kz, E) grid point. Phonon
// points stay process-local (their small block count is not worth the
// latency), so they contribute nothing.
func SpatialGFVolume(p device.Params, ranks int) float64 {
	per := SpatialExchangeBytes(p.Bnum, p.ElectronBlockSize(), ranks)
	return float64(p.Nkz) * float64(p.NE) * float64(per)
}

// SplitPlacement is the outcome of placing procs processes on one of the
// two distribution axes: the (energy × momentum) grid of the SSE phase or
// the spatial device partition of the GF phase.
type SplitPlacement struct {
	// Mode is "energy", "space" or "none" (neither axis feasible).
	Mode string
	// TE, TA is the best grid when the energy axis is feasible.
	TE, TA int
	// Space is the spatial rank count when that axis is feasible.
	Space int
	// GridBytes and SpaceBytes are the per-iteration wire volumes of the
	// two placements (0 when infeasible).
	GridBytes, SpaceBytes float64
}

// PlaceSplit decides which distribution axis procs processes should use for
// the given device, by comparing the per-iteration communication volume of
// the best (TE, TA) grid decomposition against the spatial device
// partition. Smaller wire volume wins; infeasible axes (too few energies,
// too few device blocks) lose by default.
func PlaceSplit(p device.Params, procs int) SplitPlacement {
	out := SplitPlacement{Mode: "none"}
	if best, feasible := comm.SearchTiles(p, procs, 0); len(feasible) > 0 {
		out.TE, out.TA = best.TE, best.TA
		out.GridBytes = best.Bytes
	}
	if procs >= 2 && p.Bnum >= 2*procs-1 {
		out.Space = procs
		out.SpaceBytes = SpatialGFVolume(p, procs)
	}
	switch {
	case out.TE > 0 && (out.Space == 0 || out.GridBytes <= out.SpaceBytes):
		out.Mode = "energy"
	case out.Space > 0:
		out.Mode = "space"
	}
	return out
}
