package perfmodel

import (
	"math"

	"negfsim/internal/device"
)

// Adaptive energy-grid model: the refinement loop (internal/egrid) solves
// RGF only at active energy points, so its saving over the uniform grid
// is the fraction of fine-grid points it never activates, discounted by
// the extra Born rounds the controller spends converging the grid. The
// model below predicts that saving from the spectral structure a device
// kind implies — used by qtsim to decide whether -adapt is worth it
// before running, and pinned against measured AdaptReports in the tests.

// Spectral-concentration fractions per device kind: the fraction of the
// energy window carrying structure the controller must resolve at
// tolerance (resonances plus the bias-window edges). Calibrated against
// the adaptive-vs-uniform runs recorded in BENCH_10.json / EXPERIMENTS.md:
// quasi-1D kinds with few propagating modes (chain, cnt) concentrate
// current in narrow resonances; wider structures (nanowire, gnr) spread
// it over more of the window.
var spectralFraction = map[string]float64{
	"chain":    0.20,
	"cnt":      0.25,
	"nanowire": 0.35,
	"gnr":      0.35,
}

// defaultSpectralFraction covers unknown kinds conservatively.
const defaultSpectralFraction = 0.5

// adaptRoundOverhead is the Born-solve multiplier of the refinement loop
// relative to a single uniform solve: early rounds run on small grids,
// so the round ladder costs roughly this factor in re-solved points
// (measured ≈1.3–1.6 across the BENCH_10 devices; Σ-chained rounds
// converge in fewer Born iterations, landing at the low end).
const adaptRoundOverhead = 1.45

// AdaptPointsSaved predicts the active-point saving of an adaptive run:
// the expected final active count and the fraction of per-round RGF
// solves avoided relative to the uniform grid (0 when the model predicts
// adaptation would not pay, e.g. tiny grids that seed near-full).
func AdaptPointsSaved(p device.Params, kind string) (activePoints int, savedFrac float64) {
	frac, ok := spectralFraction[kind]
	if !ok {
		frac = defaultSpectralFraction
	}
	// The controller's floor: the coarse seed (~NE/8, at least 9) plus
	// the structured fraction resolved to full fine-grid density.
	seed := float64(p.NE)/8 + 1
	if seed < 9 {
		seed = 9
	}
	active := math.Ceil(seed + frac*float64(p.NE))
	if active > float64(p.NE) {
		active = float64(p.NE)
	}
	saved := 1 - active/float64(p.NE)
	if saved < 0 {
		saved = 0
	}
	return int(active), saved
}

// AdaptSpeedup predicts the wall-time ratio uniform/adaptive for the GF
// phase (the phase adaptation accelerates; the SSE phase still runs on
// the full commensurate grid). >1 means adaptation pays. The prediction
// folds the refinement ladder's re-solve overhead into the saving.
func AdaptSpeedup(p device.Params, kind string) float64 {
	_, saved := AdaptPointsSaved(p, kind)
	cost := (1 - saved) * adaptRoundOverhead
	if cost <= 0 {
		return 1
	}
	s := 1 / cost
	if s < 1 {
		return 1
	}
	return s
}

// AdaptRGFFlops returns the predicted per-iteration RGF flops of an
// adaptive run — RGFFlops scaled to the predicted active point count.
func AdaptRGFFlops(p device.Params, kind string) float64 {
	active, _ := AdaptPointsSaved(p, kind)
	return RGFFlops(p) * float64(active) / float64(p.NE)
}
