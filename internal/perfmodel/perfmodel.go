// Package perfmodel projects iteration times of the quantum transport
// simulation onto the paper's two evaluation machines, Piz Daint and
// Summit, from first-principles flop counts (§4.3) and the communication
// volumes of internal/comm. It regenerates the shapes of Fig. 13 (strong
// and weak scaling) and Table 8 (extreme scale).
//
// Calibration: the flop-count constants are fitted to the paper's own
// empirical Table 3 (they are consistent with Table 8 to within 2%); the
// efficiency constants are fitted to Table 7 (single-node runtimes) and the
// quoted 44.5%/6.2% of peak on Summit. All fitted values are documented at
// their declarations and recorded in EXPERIMENTS.md.
package perfmodel

import (
	"math"

	"negfsim/internal/comm"
	"negfsim/internal/device"
	"negfsim/internal/sse"
)

// Flop-count constants per (kz, E) grid point, in units of (NA·Norb)³.
// Fitted to Table 3 (NA = 4,864, Norb = 12, NE = 706):
//
//	RGF:              52.95 Pflop / (3·706 points) → 0.1257·(NA·Norb)³
//	Contour integral:  8.45 Pflop / (3·706 points) → 0.0201·(NA·Norb)³
//
// The same constants reproduce Table 8's GF column for the 10,240-atom
// structure to 2% (265.7 Pflop per kz point), confirming the paper's own
// observation that GF cost scales with NE·(NA·Norb)³ at fixed bnum.
const (
	rgfFlopConst = 0.1257
	ciFlopConst  = 0.0201
)

// RGFFlops returns the recursive Green's function flops of one iteration.
func RGFFlops(p device.Params) float64 {
	dim := float64(p.NA) * float64(p.Norb)
	return rgfFlopConst * float64(p.Nkz) * float64(p.NE) * dim * dim * dim
}

// ContourFlops returns the open-boundary-condition (contour integral)
// flops of one iteration.
func ContourFlops(p device.Params) float64 {
	dim := float64(p.NA) * float64(p.Norb)
	return ciFlopConst * float64(p.Nkz) * float64(p.NE) * dim * dim * dim
}

// GFFlops returns the total Green's-function-phase flops (contour + RGF).
func GFFlops(p device.Params) float64 { return RGFFlops(p) + ContourFlops(p) }

// Scheme selects the algorithm variant being modeled.
type Scheme int

const (
	// OMEN is the original C++ implementation.
	OMEN Scheme = iota
	// DaCe is the data-centric transformed implementation.
	DaCe
	// Python is the naive reference (Table 7 only).
	Python
)

// Machine describes one evaluation platform. Peak numbers come from the
// machine specifications; efficiency fractions are calibrated to Table 7
// (Piz Daint) and to the Summit percentages quoted in §5.2.1.
type Machine struct {
	Name         string
	Nodes        int     // total nodes in the system
	GPUsPerNode  int     // accelerators per node
	RanksPerNode int     // MPI processes per node (§5: 2 on Daint, 6 on Summit)
	GPUPeak      float64 // FP64 flop/s per accelerator
	NodeBW       float64 // injection bandwidth per node, bytes/s

	// Achieved fraction of peak per phase and scheme.
	EffGF, EffSSE             float64 // DaCe
	EffGFOMEN, EffSSEOMEN     float64 // original C++
	EffGFPython, EffSSEPython float64 // interpreted reference

	// Effective fraction of injection bandwidth the exchange patterns
	// achieve at scale (software + topology overheads).
	CommEffDaCe, CommEffOMEN float64

	// SerialPerIter is the fixed per-iteration cost (boundary
	// factorization, bookkeeping) that survives any amount of parallelism.
	SerialPerIter float64

	// Imbalance is the load-imbalance/granularity coefficient: compute
	// time is multiplied by (1 + Imbalance·ranks/(Nkz·NE)). As the rank
	// count approaches the number of independent (kz, E) work items, slices
	// thin out and per-rank efficiency drops — the mechanism behind the
	// efficiency decay annotated in Fig. 13. Fitted so the strong-scaling
	// curves decay while the Table 8 extreme-scale anchors stay within a
	// few percent.
	Imbalance float64
}

// PizDaint models the Cray XC50 partition: one P100 per node, Aries
// interconnect. Efficiencies fitted to Table 7: DaCe ran 1/1112 of the
// Nkz=3 load in 111 s (GF) and 97 s (SSE) on one node.
var PizDaint = Machine{
	Name: "Piz Daint", Nodes: 5704, GPUsPerNode: 1, RanksPerNode: 2,
	GPUPeak: 4.7e12, NodeBW: 10.5e9,
	EffGF: 0.105, EffSSE: 0.0245,
	EffGFOMEN: 0.082, EffSSEOMEN: 0.0048,
	EffGFPython: 0.0087, EffSSEPython: 0.000153,
	CommEffDaCe: 0.010, CommEffOMEN: 0.003,
	SerialPerIter: 1, Imbalance: 0.165,
}

// Summit models the IBM AC922 system: six V100s per node, dual-rail EDR.
// DaCe efficiencies are the paper's quoted 44.5% (GF) and 6.2% (SSE) of
// effective peak; the OMEN efficiencies encode the paper's observation that
// its external libraries are not tuned for POWER9 (total speedup 24.5×).
var Summit = Machine{
	Name: "Summit", Nodes: 4608, GPUsPerNode: 6, RanksPerNode: 6,
	GPUPeak: 7.8e12, NodeBW: 25e9,
	EffGF: 0.445, EffSSE: 0.062,
	EffGFOMEN: 0.30, EffSSEOMEN: 0.030,
	EffGFPython: 0.02, EffSSEPython: 0.0004,
	CommEffDaCe: 0.0055, CommEffOMEN: 0.007,
	SerialPerIter: 1, Imbalance: 0.05,
}

// IterationTime is the modeled cost of one GF+SSE iteration.
type IterationTime struct {
	GF, SSE, Comm float64 // seconds
}

// Total returns the full iteration wall time.
func (t IterationTime) Total() float64 { return t.GF + t.SSE + t.Comm }

// Compute returns the computation-only time (the "comp." curves of Fig. 13).
func (t IterationTime) Compute() float64 { return t.GF + t.SSE }

// Project models one iteration of the simulation on `nodes` nodes of m.
func (m Machine) Project(p device.Params, nodes int, s Scheme) IterationTime {
	gpus := float64(nodes * m.GPUsPerNode)
	procs := nodes * m.RanksPerNode
	imbalance := 1 + m.Imbalance*float64(procs)/float64(p.Nkz*p.NE)
	var t IterationTime
	switch s {
	case DaCe:
		t.GF = GFFlops(p)/(gpus*m.GPUPeak*m.EffGF)*imbalance + m.SerialPerIter
		t.SSE = sse.SigmaFlopsDaCe(p) / (gpus * m.GPUPeak * m.EffSSE) * imbalance
		best, _ := comm.SearchTiles(p, procs, 0)
		vol := best.Bytes
		if math.IsInf(vol, 1) { // no exact factorization fits; fall back
			vol = comm.DaCeVolume(p, 1, procs)
		}
		t.Comm = vol / (float64(nodes) * m.NodeBW * m.CommEffDaCe)
	case OMEN:
		t.GF = GFFlops(p)/(gpus*m.GPUPeak*m.EffGFOMEN)*imbalance + m.SerialPerIter
		t.SSE = sse.SigmaFlopsOMEN(p) / (gpus * m.GPUPeak * m.EffSSEOMEN) * imbalance
		t.Comm = comm.OMENVolume(p, procs) / (float64(nodes) * m.NodeBW * m.CommEffOMEN)
	case Python:
		t.GF = GFFlops(p) / (gpus * m.GPUPeak * m.EffGFPython)
		t.SSE = sse.SigmaFlopsOMEN(p) / (gpus * m.GPUPeak * m.EffSSEPython)
		t.Comm = 0
	}
	return t
}

// ScalingPoint is one x-axis point of a Fig. 13 curve.
type ScalingPoint struct {
	Nodes, GPUs       int
	DaCe, OMEN        IterationTime
	ScalingEfficiency float64 // DaCe compute efficiency vs the first point
	TotalSpeedup      float64 // OMEN total / DaCe total
	CommSpeedup       float64 // OMEN comm / DaCe comm
}

// StrongScaling evaluates the fixed-size scaling curve of Fig. 13
// (NA = 4,864, Nkz = 7 in the paper) over the given node counts. Scaling
// efficiency is ideal time (first point scaled by the node ratio) over
// modeled time, the convention of the figure's annotations.
func StrongScaling(m Machine, p device.Params, nodeCounts []int) []ScalingPoint {
	out := make([]ScalingPoint, 0, len(nodeCounts))
	var baseCompute float64
	var baseNodes int
	for i, n := range nodeCounts {
		pt := ScalingPoint{Nodes: n, GPUs: n * m.GPUsPerNode,
			DaCe: m.Project(p, n, DaCe), OMEN: m.Project(p, n, OMEN)}
		if i == 0 {
			baseCompute, baseNodes = pt.DaCe.Compute(), n
		}
		ideal := baseCompute * float64(baseNodes) / float64(n)
		pt.ScalingEfficiency = ideal / pt.DaCe.Compute()
		pt.TotalSpeedup = pt.OMEN.Total() / pt.DaCe.Total()
		pt.CommSpeedup = pt.OMEN.Comm / pt.DaCe.Comm
		out = append(out, pt)
	}
	return out
}

// WeakScaling evaluates the Fig. 13 weak-scaling curve: the kz count and
// the node count grow together (nodesPerKz nodes per momentum point). The
// paper annotates ideal weak scaling with "proportional increases in the
// number of kz points and nodes, since the GF and SSE phases scale
// differently (by Nkz and Nkz²)": with nodes ∝ Nkz, the ideal per-node GF
// time is constant and the ideal SSE time grows ∝ Nkz. Efficiency is that
// ideal over the modeled time.
func WeakScaling(m Machine, nkzList []int, nodesPerKz int) []ScalingPoint {
	out := make([]ScalingPoint, 0, len(nkzList))
	var baseGF, baseSSE, baseComm float64
	baseNkz := 0
	for i, nkz := range nkzList {
		p := device.Paper4864(nkz)
		n := nodesPerKz * nkz
		pt := ScalingPoint{Nodes: n, GPUs: n * m.GPUsPerNode,
			DaCe: m.Project(p, n, DaCe), OMEN: m.Project(p, n, OMEN)}
		if i == 0 {
			baseGF, baseSSE, baseComm, baseNkz = pt.DaCe.GF, pt.DaCe.SSE, pt.DaCe.Comm, nkz
		}
		ideal := baseGF + baseSSE*float64(nkz)/float64(baseNkz) + baseComm
		pt.ScalingEfficiency = ideal / pt.DaCe.Total()
		pt.TotalSpeedup = pt.OMEN.Total() / pt.DaCe.Total()
		pt.CommSpeedup = pt.OMEN.Comm / pt.DaCe.Comm
		out = append(out, pt)
	}
	return out
}

// Table8Row models one row of Table 8: the 10,240-atom extreme-scale run
// on Summit.
type Table8Row struct {
	Nkz, Nodes        int
	GFPflop, SSEPflop float64
	GFTime, SSETime   float64
	CommTime          float64
}

// Table8 evaluates the paper's four extreme-scale configurations.
func Table8(rows []struct{ Nkz, Nodes int }) []Table8Row {
	out := make([]Table8Row, 0, len(rows))
	for _, r := range rows {
		p := device.Paper10240(r.Nkz)
		t := Summit.Project(p, r.Nodes, DaCe)
		out = append(out, Table8Row{
			Nkz: r.Nkz, Nodes: r.Nodes,
			GFPflop:  GFFlops(p) / 1e15,
			SSEPflop: sse.SigmaFlopsDaCe(p) / 1e15,
			GFTime:   t.GF, SSETime: t.SSE, CommTime: t.Comm,
		})
	}
	return out
}

// PaperTable8Configs are the (Nkz, nodes) pairs of Table 8.
var PaperTable8Configs = []struct{ Nkz, Nodes int }{
	{11, 1852}, {15, 2580}, {21, 1763}, {21, 3525},
}

// SustainedPflops returns the modeled sustained performance of a projected
// iteration (flops executed / total time), the metric behind the paper's
// 19.71 Pflop/s headline.
func SustainedPflops(p device.Params, t IterationTime) float64 {
	return (GFFlops(p) + sse.SigmaFlopsDaCe(p)) / t.Total() / 1e15
}
