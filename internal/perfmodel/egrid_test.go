package perfmodel

import (
	"testing"

	"negfsim/internal/device"
)

func paperGrid() device.Params {
	return device.Params{
		Nkz: 3, Nqz: 3, NE: 706, Nw: 70,
		NA: 4864, NB: 4, Norb: 12, N3D: 3,
		Rows: 8, Bnum: 19,
		Emin: -1, Emax: 1,
	}
}

func TestAdaptPointsSavedBounds(t *testing.T) {
	p := paperGrid()
	for _, kind := range []string{"chain", "cnt", "nanowire", "gnr", "unknown"} {
		active, saved := AdaptPointsSaved(p, kind)
		if active < 2 || active > p.NE {
			t.Errorf("%s: active %d outside [2, %d]", kind, active, p.NE)
		}
		if saved < 0 || saved >= 1 {
			t.Errorf("%s: saved fraction %g outside [0, 1)", kind, saved)
		}
		wantSaved := 1 - float64(active)/float64(p.NE)
		if diff := saved - wantSaved; diff > 1e-12 || diff < -1e-12 {
			t.Errorf("%s: saved %g inconsistent with active %d (want %g)", kind, saved, active, wantSaved)
		}
	}
}

// The ISSUE's acceptance target: on resonance-dominated devices the model
// must predict the measured ≥50% point saving (BENCH_10.json records the
// measured runs), and the window-spanning kinds still a material one.
func TestAdaptPointsSavedPredictsHalving(t *testing.T) {
	p := paperGrid()
	for _, tc := range []struct {
		kind     string
		minSaved float64
	}{
		{"chain", 0.5}, {"cnt", 0.5}, {"nanowire", 0.4}, {"gnr", 0.4},
	} {
		if _, saved := AdaptPointsSaved(p, tc.kind); saved < tc.minSaved {
			t.Errorf("%s: predicted saving %.2f below %.2f", tc.kind, saved, tc.minSaved)
		}
	}
}

func TestAdaptPointsSavedTinyGridNeverPays(t *testing.T) {
	p := paperGrid()
	p.NE = 12
	active, saved := AdaptPointsSaved(p, "cnt")
	if active > p.NE {
		t.Fatalf("active %d exceeds fine grid %d", active, p.NE)
	}
	// A 12-point grid seeds at 9 points: nothing meaningful to save.
	if saved > 0.25 {
		t.Errorf("tiny grid predicted %.2f saving; the seed floor should dominate", saved)
	}
}

func TestAdaptSpeedupMonotoneInSaving(t *testing.T) {
	p := paperGrid()
	sCNT := AdaptSpeedup(p, "cnt")
	sNW := AdaptSpeedup(p, "nanowire")
	if sCNT < 1 || sNW < 1 {
		t.Fatalf("speedups must be ≥ 1, got cnt=%.2f nanowire=%.2f", sCNT, sNW)
	}
	if sCNT < sNW {
		t.Errorf("cnt (more concentrated spectrum) should out-speed nanowire: %.2f < %.2f", sCNT, sNW)
	}
	// The paper-scale CNT prediction must clear break-even despite the
	// refinement ladder's re-solve overhead.
	if sCNT <= 1.2 {
		t.Errorf("paper-scale cnt speedup %.2f should clear 1.2", sCNT)
	}
}

func TestAdaptRGFFlopsScalesWithActive(t *testing.T) {
	p := paperGrid()
	active, _ := AdaptPointsSaved(p, "cnt")
	got := AdaptRGFFlops(p, "cnt")
	want := RGFFlops(p) * float64(active) / float64(p.NE)
	if got != want {
		t.Fatalf("AdaptRGFFlops = %g, want %g", got, want)
	}
	if full := RGFFlops(p); got >= full {
		t.Errorf("adaptive flops %g not below uniform %g", got, full)
	}
}
