package perfmodel

import (
	"math"
	"testing"

	"negfsim/internal/device"
	"negfsim/internal/sse"
)

func TestTable3FlopAnchors(t *testing.T) {
	// Table 3, Nkz sweep on the 4,864-atom device. Contour-integral and RGF
	// rows are linear in Nkz; the constants were fitted at Nkz=3 and must
	// reproduce the whole row.
	ci := []float64{8.45, 14.12, 19.77, 25.42, 31.06}
	rgf := []float64{52.95, 88.25, 123.55, 158.85, 194.15}
	for i, nkz := range []int{3, 5, 7, 9, 11} {
		p := device.Paper4864(nkz)
		if got := ContourFlops(p) / 1e15; math.Abs(got-ci[i]) > 0.03*ci[i] {
			t.Fatalf("Nkz=%d: contour %.2f Pflop, Table 3 prints %.2f", nkz, got, ci[i])
		}
		if got := RGFFlops(p) / 1e15; math.Abs(got-rgf[i]) > 0.03*rgf[i] {
			t.Fatalf("Nkz=%d: RGF %.2f Pflop, Table 3 prints %.2f", nkz, got, rgf[i])
		}
	}
}

func TestGFFlopsConsistentWithTable8(t *testing.T) {
	// The Table-3-fitted constants must reproduce Table 8's GF Pflop column
	// for the larger structure: 2,922 / 3,985 / 5,579 at Nkz 11/15/21.
	want := map[int]float64{11: 2922, 15: 3985, 21: 5579}
	for nkz, pf := range want {
		got := GFFlops(device.Paper10240(nkz)) / 1e15
		if math.Abs(got-pf) > 0.03*pf {
			t.Fatalf("Nkz=%d: GF %.0f Pflop, Table 8 prints %.0f", nkz, got, pf)
		}
	}
	// And the SSE column comes from the paper's own DaCe formula:
	// 490 / 910 / 1,784 Pflop.
	wantSSE := map[int]float64{11: 490, 15: 910, 21: 1784}
	for nkz, pf := range wantSSE {
		got := sse.SigmaFlopsDaCe(device.Paper10240(nkz)) / 1e15
		if math.Abs(got-pf) > 0.01*pf {
			t.Fatalf("Nkz=%d: SSE %.0f Pflop, Table 8 prints %.0f", nkz, got, pf)
		}
	}
}

func TestTable8TimesMatchPaperShape(t *testing.T) {
	rows := Table8(PaperTable8Configs)
	// Paper: GF 75.84 s at (11, 1852); 76.09 s at (21, 3525); 150.38 s at
	// (21, 1763) — doubling nodes at fixed Nkz halves the GF time.
	if math.Abs(rows[0].GFTime-75.84) > 12 {
		t.Fatalf("GF time at (11,1852) = %.1f s, paper prints 75.84", rows[0].GFTime)
	}
	if r := rows[2].GFTime / rows[3].GFTime; math.Abs(r-2) > 0.1 {
		t.Fatalf("doubling nodes should halve GF time, ratio %.2f", r)
	}
	// SSE grows ~ quadratically with Nkz at fixed nodes; compare (11,1852)
	// against (21,1763): paper 95.46 → 346.56 s (3.63×).
	if r := rows[2].SSETime / rows[0].SSETime; r < 2.5 || r > 5 {
		t.Fatalf("SSE growth (Nkz 11→21) ratio %.2f implausible", r)
	}
	// Communication stays a small fraction of the iteration.
	for _, r := range rows {
		if r.CommTime > 0.5*(r.GFTime+r.SSETime) {
			t.Fatalf("comm %.1f s should not dominate compute %.1f s", r.CommTime, r.GFTime+r.SSETime)
		}
	}
	// The headline: an iteration of the 10,240-atom, 21-kz-point system
	// completes in minutes ("under 7 minutes per iteration").
	last := rows[3]
	if total := last.GFTime + last.SSETime + last.CommTime; total > 7*60 {
		t.Fatalf("extreme-scale iteration %.0f s, paper achieves < 7 min", total)
	}
}

func TestSustainedPerformanceOrder(t *testing.T) {
	// Paper: 19.71 Pflop/s sustained at the full-scale run. The model
	// should land in the same ballpark (same order of magnitude).
	p := device.Paper10240(21)
	t21 := Summit.Project(p, 3525, DaCe)
	got := SustainedPflops(p, t21)
	if got < 10 || got > 40 {
		t.Fatalf("sustained %.1f Pflop/s, paper reports 19.71", got)
	}
}

func TestStrongScalingShape(t *testing.T) {
	for _, m := range []Machine{PizDaint, Summit} {
		nodes := []int{112, 224, 448, 900, 1800}
		if m.Name == "Summit" {
			nodes = []int{19, 38, 76, 152, 228}
		}
		pts := StrongScaling(m, device.Paper4864(7), nodes)
		// DaCe total time decreases monotonically.
		for i := 1; i < len(pts); i++ {
			if pts[i].DaCe.Total() >= pts[i-1].DaCe.Total() {
				t.Fatalf("%s: DaCe time not decreasing at %d nodes", m.Name, pts[i].Nodes)
			}
		}
		// Efficiency starts near 1 and decays gracefully (Fig. 13 annotates
		// 99.8%→74% on Daint, 97%→80% on Summit).
		if pts[0].ScalingEfficiency != 1 {
			t.Fatalf("%s: first point efficiency %.2f", m.Name, pts[0].ScalingEfficiency)
		}
		last := pts[len(pts)-1].ScalingEfficiency
		if last < 0.55 || last > 0.997 {
			t.Fatalf("%s: final strong-scaling efficiency %.2f outside plausible band", m.Name, last)
		}
		// DaCe beats OMEN by more than an order of magnitude at scale.
		sp := pts[len(pts)-1].TotalSpeedup
		if sp < 10 {
			t.Fatalf("%s: total speedup %.1f×, paper reports 16.3× (Daint) / 24.5× (Summit)", m.Name, sp)
		}
		// Communication improves even more (417× Daint, 79.7× Summit).
		if cs := pts[len(pts)-1].CommSpeedup; cs < 50 {
			t.Fatalf("%s: comm speedup %.0f×", m.Name, cs)
		}
		// OMEN is communication-dominated at scale; DaCe is not.
		lastPt := pts[len(pts)-1]
		if lastPt.OMEN.Comm < lastPt.OMEN.Compute() {
			t.Fatalf("%s: OMEN should be comm-bound at scale", m.Name)
		}
		if lastPt.DaCe.Comm > lastPt.DaCe.Compute() {
			t.Fatalf("%s: DaCe should be compute-bound at scale", m.Name)
		}
	}
}

func TestWeakScalingShape(t *testing.T) {
	pts := WeakScaling(PizDaint, []int{3, 5, 7, 9, 11}, 128)
	for i := 1; i < len(pts); i++ {
		// SSE load grows ∝ Nkz² while resources grow ∝ Nkz, so per-kz cost
		// rises; efficiency (per-kz) decays but stays within Fig. 13's band.
		if pts[i].ScalingEfficiency > pts[i-1].ScalingEfficiency+1e-9 {
			t.Fatalf("weak-scaling efficiency should not increase: %v", pts)
		}
	}
	if last := pts[len(pts)-1].ScalingEfficiency; last < 0.3 {
		t.Fatalf("weak-scaling efficiency collapsed to %.2f", last)
	}
	// DaCe remains an order of magnitude ahead throughout.
	for _, pt := range pts {
		if pt.TotalSpeedup < 5 {
			t.Fatalf("weak scaling: speedup %.1f at %d nodes", pt.TotalSpeedup, pt.Nodes)
		}
	}
}

func TestTable7SingleNodeRuntimes(t *testing.T) {
	// Table 7: one Piz Daint node executes 1/1112 of the Nkz=3 load.
	// Paper: GF 144.14 / 1342.77 / 111.25 s and SSE 965.45 / 30560.13 /
	// 96.79 s for OMEN / Python / DaCe. The efficiencies were calibrated on
	// these numbers, so the model must reproduce them closely; the test
	// guards the calibration against regressions.
	p := device.Paper4864(3)
	shrink := 1.0 / 1112.0
	check := func(scheme Scheme, wantGF, wantSSE float64) {
		t.Helper()
		full := PizDaint.Project(p, 1, scheme)
		gf := (full.GF - PizDaint.SerialPerIter) * shrink
		if scheme == Python {
			gf = full.GF * shrink
		}
		sse := full.SSE * shrink
		if math.Abs(gf-wantGF) > 0.1*wantGF {
			t.Fatalf("scheme %d: GF %.1f s, Table 7 prints %.1f", scheme, gf, wantGF)
		}
		if math.Abs(sse-wantSSE) > 0.1*wantSSE {
			t.Fatalf("scheme %d: SSE %.1f s, Table 7 prints %.1f", scheme, sse, wantSSE)
		}
	}
	check(OMEN, 144.14, 965.45)
	check(Python, 1342.77, 30560.13)
	check(DaCe, 111.25, 96.79)
}
