package perfmodel

import (
	"testing"

	"negfsim/internal/device"
)

func TestCrossoverOMENBeforeDaCe(t *testing.T) {
	p := device.Paper4864(7)
	for _, m := range []Machine{PizDaint, Summit} {
		omen := CommCrossoverNodes(m, p, OMEN)
		dace := CommCrossoverNodes(m, p, DaCe)
		if omen == 0 {
			t.Fatalf("%s: OMEN must become communication-bound somewhere", m.Name)
		}
		if dace != 0 && dace <= omen {
			t.Fatalf("%s: DaCe crossover (%d nodes) must lie beyond OMEN's (%d)", m.Name, dace, omen)
		}
		// The CA algorithm stays compute-bound across the whole machine for
		// this structure on Piz Daint (the paper's strong-scaling story).
		if m.Name == "Piz Daint" && dace != 0 {
			t.Fatalf("DaCe should remain compute-bound on all of %s, crossed at %d", m.Name, dace)
		}
	}
}
