package perfmodel

import "negfsim/internal/device"

// CommCrossoverNodes returns the smallest node count (probed by doubling
// from 2 up to the machine size) at which communication time exceeds
// compute time for the given scheme — "where crossovers fall" in the
// paper's evaluation narrative: the original algorithm becomes
// communication-bound at a tiny fraction of the machine, the
// communication-avoiding one stays compute-bound through full scale.
// Returns 0 if the scheme never becomes communication-bound.
func CommCrossoverNodes(m Machine, p device.Params, s Scheme) int {
	for n := 2; n <= m.Nodes; n *= 2 {
		t := m.Project(p, n, s)
		if t.Comm > t.Compute() {
			return n
		}
	}
	t := m.Project(p, m.Nodes, s)
	if t.Comm > t.Compute() {
		return m.Nodes
	}
	return 0
}
