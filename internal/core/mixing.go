package core

import (
	"negfsim/internal/cmat"
)

// Self-consistency acceleration. The paper's Born loop iterates
// Σ_{k+1} = g(Σ_k) with plain (optionally damped) updates; production NEGF
// codes accelerate this fixed-point iteration. Two mixers are provided:
//
//   - Linear: Σ_{k+1} = (1−β)·Σ_k + β·g(Σ_k) — the default, always stable
//     for β small enough;
//   - Anderson: type-II Anderson acceleration with a short history, which
//     extrapolates through the residual space and typically converges in
//     far fewer GF phases (each of which is the expensive part).

// MixerKind selects the self-consistency update rule.
type MixerKind int

const (
	// Linear is damped fixed-point mixing.
	Linear MixerKind = iota
	// Anderson is Anderson acceleration (type II) with a short history.
	Anderson
)

// andersonState holds the iterate/residual history for Anderson mixing.
type andersonState struct {
	history int
	xs, fs  [][]complex128 // iterates x_k and residuals f_k = g(x_k) − x_k
}

func newAndersonState(history int) *andersonState {
	if history < 1 {
		history = 1
	}
	return &andersonState{history: history}
}

// update consumes the current iterate x and its fixed-point image g,
// returning the next iterate. With an empty history it reduces to damped
// mixing with factor beta.
func (a *andersonState) update(x, g []complex128, beta float64) []complex128 {
	f := make([]complex128, len(x))
	for i := range f {
		f[i] = g[i] - x[i]
	}
	a.xs = append(a.xs, append([]complex128(nil), x...))
	a.fs = append(a.fs, f)
	if len(a.xs) > a.history+1 {
		a.xs = a.xs[1:]
		a.fs = a.fs[1:]
	}
	m := len(a.xs) - 1 // history depth actually available
	bc := complex(beta, 0)
	if m == 0 {
		out := make([]complex128, len(x))
		for i := range out {
			out[i] = x[i] + bc*f[i]
		}
		return out
	}
	// Solve min ‖f_k − Σ_j γ_j (f_k − f_{k−j-1})‖ via the normal equations
	// of the residual-difference matrix (m is tiny, 2–4).
	df := make([][]complex128, m)
	for j := 0; j < m; j++ {
		col := make([]complex128, len(f))
		prev := a.fs[m-1-j]
		for i := range col {
			col[i] = f[i] - prev[i]
		}
		df[j] = col
	}
	gram := cmat.NewDense(m, m)
	rhs := cmat.NewDense(m, 1)
	for r := 0; r < m; r++ {
		for c := 0; c < m; c++ {
			gram.Set(r, c, dot(df[r], df[c]))
		}
		rhs.Set(r, 0, dot(df[r], f))
		// Tikhonov regularization keeps near-collinear histories harmless.
		gram.Set(r, r, gram.At(r, r)+complex(1e-12, 0))
	}
	gamma, err := cmat.Solve(gram, rhs)
	if err != nil {
		// Degenerate history: fall back to damped mixing.
		out := make([]complex128, len(x))
		for i := range out {
			out[i] = x[i] + bc*f[i]
		}
		return out
	}
	out := make([]complex128, len(x))
	for i := range out {
		// x̄ = x_k − Σ γ_j (x_k − x_{k−j−1}), f̄ analogous; next = x̄ + β·f̄.
		xb := x[i]
		fb := f[i]
		for j := 0; j < m; j++ {
			gj := gamma.At(j, 0)
			xb -= gj * (x[i] - a.xs[m-1-j][i])
			fb -= gj * (f[i] - a.fs[m-1-j][i])
		}
		out[i] = xb + bc*fb
	}
	return out
}

func dot(a, b []complex128) complex128 {
	var s complex128
	for i := range a {
		s += conj(a[i]) * b[i]
	}
	return s
}

func conj(v complex128) complex128 { return complex(real(v), -imag(v)) }
