package core

import (
	"strings"
	"testing"
)

func TestAdaptSpecValidate(t *testing.T) {
	check := func(mut func(*RunConfig), frag string) {
		t.Helper()
		c := DefaultRunConfig()
		mut(&c)
		err := c.Validate()
		if frag == "" {
			if err != nil {
				t.Errorf("valid config rejected: %v", err)
			}
			return
		}
		if err == nil {
			t.Errorf("invalid config accepted (want error mentioning %q)", frag)
		} else if !strings.Contains(err.Error(), frag) {
			t.Errorf("error %q does not name the JSON path %q", err, frag)
		}
	}
	check(func(c *RunConfig) { c.Adapt = &AdaptSpec{Mode: "grid"} }, "")
	check(func(c *RunConfig) { c.Adapt = &AdaptSpec{Mode: "GRID+SIGMA"} }, "")
	check(func(c *RunConfig) { c.Adapt = &AdaptSpec{Mode: "off"} }, "")
	check(func(c *RunConfig) { c.Adapt = &AdaptSpec{Mode: "bisect"} }, "adapt.mode")
	check(func(c *RunConfig) { c.Adapt = &AdaptSpec{Mode: "grid", TolCurrent: -1e-6} }, "adapt.tol_current")
	check(func(c *RunConfig) { c.Adapt = &AdaptSpec{Mode: "grid", MinNE: 1} }, "adapt.min_ne")
	check(func(c *RunConfig) { c.Adapt = &AdaptSpec{Mode: "grid", MinNE: -3} }, "adapt.min_ne")
	check(func(c *RunConfig) { c.Adapt = &AdaptSpec{Mode: "grid", MaxNE: -1} }, "adapt.max_ne")
	// Bounds are checked against the device's fine grid (default NE=16).
	check(func(c *RunConfig) { c.Adapt = &AdaptSpec{Mode: "grid", MinNE: 17} }, "adapt.min_ne")
	check(func(c *RunConfig) { c.Adapt = &AdaptSpec{Mode: "grid", MaxNE: 17} }, "adapt.max_ne")
	check(func(c *RunConfig) { c.Adapt = &AdaptSpec{Mode: "grid", MinNE: 12, MaxNE: 8} }, "adapt.min_ne")
	check(func(c *RunConfig) {
		g := DefaultGate(0.2, 0)
		c.Gate = &g
		c.Adapt = &AdaptSpec{Mode: "grid"}
	}, "adapt and gate")
	// An "off" block composes with anything.
	check(func(c *RunConfig) {
		g := DefaultGate(0.2, 0)
		c.Gate = &g
		c.Adapt = &AdaptSpec{Mode: "off"}
	}, "")
}

// Strict parsing: typos inside the adapt block fail at parse time, like
// everywhere else in the schema.
func TestParseRejectsUnknownAdaptFields(t *testing.T) {
	base := `{"device": {"kind": "nanowire", "nkz": 3, "nqz": 3, "ne": 16, "nw": 4,
		"na": 24, "nb": 4, "norb": 2, "n3d": 3, "rows": 4, "bnum": 3,
		"emin": -1, "emax": 1, "seed": 7},
		"variant": "dace", "max_iter": 6, "tol": 1e-4, "mixing": 0.5,
		"bias": 0.4, "kt": 0.025, "adapt": %s}`
	for _, tc := range []struct {
		name, adapt string
		ok          bool
	}{
		{"well-formed", `{"mode": "grid+sigma", "tol_current": 1e-6, "max_ne": 12, "min_ne": 4}`, true},
		{"typo tolcurrent", `{"mode": "grid", "tolcurrent": 1e-6}`, false},
		{"typo tolerance", `{"mode": "grid", "tolerance": 1e-6}`, false},
		{"unknown rounds", `{"mode": "grid", "rounds": 3}`, false},
		{"bad mode", `{"mode": "newton"}`, false},
	} {
		_, err := ParseRunConfig([]byte(strings.Replace(base, "%s", tc.adapt, 1)))
		if tc.ok && err != nil {
			t.Errorf("%s: rejected: %v", tc.name, err)
		}
		if !tc.ok && err == nil {
			t.Errorf("%s: accepted", tc.name)
		}
	}
}

// Canonical folds an off/empty adapt block away (so "adapt": {"mode":
// "off"} and no block share a cache key) and fills the tolerance default
// on enabled blocks.
func TestAdaptSpecCanonical(t *testing.T) {
	c := DefaultRunConfig()
	if c.Canonical().Adapt != nil {
		t.Fatal("no adapt block must canonicalize to nil")
	}
	c.Adapt = &AdaptSpec{Mode: "off"}
	if c.Canonical().Adapt != nil {
		t.Fatal(`mode "off" must fold away`)
	}
	c.Adapt = &AdaptSpec{Mode: "OFF", TolCurrent: 1e-3}
	if c.Canonical().Adapt != nil {
		t.Fatal(`mode "OFF" (any case, any knobs) must fold away`)
	}
	c.Adapt = &AdaptSpec{}
	if c.Canonical().Adapt != nil {
		t.Fatal("empty-mode block must fold away")
	}
	c.Adapt = &AdaptSpec{Mode: "Grid+Sigma"}
	got := c.Canonical().Adapt
	if got == nil || got.Mode != "grid+sigma" || got.TolCurrent != 1e-6 {
		t.Fatalf("enabled block not normalized: %+v", got)
	}
	// The original config is untouched (Canonical copies).
	if c.Adapt.Mode != "Grid+Sigma" || c.Adapt.TolCurrent != 0 {
		t.Fatalf("Canonical mutated the receiver's adapt block: %+v", c.Adapt)
	}
}

func TestAdaptConfigResolver(t *testing.T) {
	c := DefaultRunConfig()
	if _, ok := c.AdaptConfig(); ok {
		t.Fatal("config without adapt block resolved an AdaptConfig")
	}
	c.Adapt = &AdaptSpec{Mode: "off"}
	if _, ok := c.AdaptConfig(); ok {
		t.Fatal(`mode "off" resolved an AdaptConfig`)
	}
	c.Adapt = &AdaptSpec{Mode: "grid", TolCurrent: 1e-5, MinNE: 4, MaxNE: 12}
	ac, ok := c.AdaptConfig()
	if !ok {
		t.Fatal("enabled block did not resolve")
	}
	if ac.SigmaReuse || ac.Tol != 1e-5 || ac.MinNE != 4 || ac.MaxNE != 12 {
		t.Fatalf("AdaptConfig = %+v", ac)
	}
	c.Adapt.Mode = "grid+sigma"
	if ac, _ := c.AdaptConfig(); !ac.SigmaReuse {
		t.Fatal(`"grid+sigma" must set SigmaReuse`)
	}
}
