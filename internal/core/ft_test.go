package core

import (
	"errors"
	"math"
	"os"
	"path/filepath"
	"testing"
	"time"

	"negfsim/internal/comm"
	"negfsim/internal/device"
	"negfsim/internal/obs"
)

// ftConfig is the baseline fault-tolerant configuration of the tests: a
// 2×2 grid with a short comm deadline so a genuinely hung failure path
// would fail the test quickly instead of stalling it.
func ftConfig() DistConfig {
	return DistConfig{TE: 2, TA: 2, CommTimeout: 5 * time.Second, RetryBackoff: time.Millisecond}
}

func TestRunDistributedFTSurvivesRankDeath(t *testing.T) {
	opts := DefaultOptions()
	opts.MaxIter = 4

	cleanStart := time.Now()
	clean, cleanBytes, err := miniSim(t, opts).RunDistributed(2, 2)
	cleanWall := time.Since(cleanStart)
	if err != nil {
		t.Fatal(err)
	}

	recBefore := obs.GetCounter("core.recoveries").Value()
	deathsBefore := obs.GetCounter("comm.rank_deaths").Value()
	obs.Enable()
	t.Cleanup(obs.Disable)

	cfg := ftConfig()
	cfg.Fault = &comm.FaultPlan{Kill: true, KillRank: 1, KillAtOp: 3}
	cfg.FaultIter = 1
	start := time.Now()
	res, bytes, err := miniSim(t, opts).RunDistributedFT(cfg)
	if err != nil {
		t.Fatal(err)
	}
	if res.Recoveries != 1 {
		t.Fatalf("Recoveries = %d, want 1", res.Recoveries)
	}
	// Metrics must report the event too (global counters; compare deltas).
	if d := obs.GetCounter("core.recoveries").Value() - recBefore; d < 1 {
		t.Errorf("core.recoveries advanced by %d, want ≥ 1", d)
	}
	if d := obs.GetCounter("comm.rank_deaths").Value() - deathsBefore; d < 1 {
		t.Errorf("comm.rank_deaths advanced by %d, want ≥ 1", d)
	}
	// Detection is cancellation-based: the run with one recovery redoes a
	// single iteration, so it must cost about one fault-free run — NOT a
	// fault-free run plus a blocked deadline (the old fixed 10 s). The
	// bound is relative to this machine's own clean-run time so it holds
	// under the race runtime too.
	if elapsed := time.Since(start); elapsed > 3*cleanWall+cfg.CommTimeout/2 {
		t.Errorf("run with recovery took %v (fault-free run: %v) — detection appears deadline-bound, not cancellation-based",
			elapsed, cleanWall)
	}
	if bytes == 0 || cleanBytes == 0 {
		t.Fatal("runs must move data")
	}

	// The recovered run must land on the fault-free observables: recovery
	// replays the iteration from the checkpointed Σ/Π, and the distributed
	// SSE phase is value-identical for every grid shape.
	if d := clean.GLess.MaxAbsDiff(res.GLess); d > 1e-8 {
		t.Fatalf("recovered trajectory diverged from fault-free run: %g", d)
	}
	if d := math.Abs(clean.Obs.CurrentL - res.Obs.CurrentL); d > 1e-8*(1+math.Abs(clean.Obs.CurrentL)) {
		t.Fatalf("recovered current differs: %g vs %g", res.Obs.CurrentL, clean.Obs.CurrentL)
	}
	if res.Iterations != clean.Iterations {
		t.Fatalf("iteration counts differ: %d vs %d", res.Iterations, clean.Iterations)
	}
}

func TestRunDistributedFTKillBeforeFirstCheckpoint(t *testing.T) {
	opts := DefaultOptions()
	opts.MaxIter = 2
	clean, _, err := miniSim(t, opts).RunDistributed(2, 2)
	if err != nil {
		t.Fatal(err)
	}
	cfg := ftConfig()
	cfg.Fault = &comm.FaultPlan{Kill: true, KillRank: 0, KillAtOp: 0}
	cfg.FaultIter = 0 // dies before any checkpoint exists
	res, _, err := miniSim(t, opts).RunDistributedFT(cfg)
	if err != nil {
		t.Fatal(err)
	}
	if res.Recoveries != 1 {
		t.Fatalf("Recoveries = %d, want 1", res.Recoveries)
	}
	if d := clean.GLess.MaxAbsDiff(res.GLess); d > 1e-8 {
		t.Fatalf("restart-from-zero trajectory diverged: %g", d)
	}
}

func TestRunDistributedFTFallsBackToSerialSSE(t *testing.T) {
	opts := DefaultOptions()
	opts.MaxIter = 3
	clean, _, err := miniSim(t, opts).RunDistributed(2, 2)
	if err != nil {
		t.Fatal(err)
	}
	// A 2-rank grid with one death leaves a single survivor: no feasible
	// distributed grid, so the run must degrade to shared-memory SSE and
	// still finish with the same values.
	cfg := ftConfig()
	cfg.TE, cfg.TA = 2, 1
	cfg.Fault = &comm.FaultPlan{Kill: true, KillRank: 1, KillAtOp: 1}
	cfg.FaultIter = 1
	res, _, err := miniSim(t, opts).RunDistributedFT(cfg)
	if err != nil {
		t.Fatal(err)
	}
	if res.Recoveries != 1 {
		t.Fatalf("Recoveries = %d, want 1", res.Recoveries)
	}
	if d := clean.GLess.MaxAbsDiff(res.GLess); d > 1e-8 {
		t.Fatalf("degraded run diverged from fault-free run: %g", d)
	}
}

func TestRunDistributedFTExhaustsRetries(t *testing.T) {
	opts := DefaultOptions()
	opts.MaxIter = 2
	cfg := ftConfig()
	cfg.MaxRecoveries = -1 // no recovery budget at all
	cfg.Fault = &comm.FaultPlan{Kill: true, KillRank: 1, KillAtOp: 0}
	cfg.FaultIter = 0
	_, _, err := miniSim(t, opts).RunDistributedFT(cfg)
	if !errors.Is(err, comm.ErrRankDead) {
		t.Fatalf("err = %v, want ErrRankDead after exhausted retries", err)
	}
}

func TestRunDistributedFTWritesResumableCheckpoints(t *testing.T) {
	opts := DefaultOptions()
	opts.MaxIter = 2
	dir := t.TempDir()
	path := filepath.Join(dir, "run.ckpt")
	cfg := ftConfig()
	cfg.CheckpointPath = path
	sim := miniSim(t, opts)
	res, _, err := sim.RunDistributedFT(cfg)
	if err != nil {
		t.Fatal(err)
	}
	f, err := os.Open(path)
	if err != nil {
		t.Fatalf("checkpoint file not written: %v", err)
	}
	defer f.Close()
	ck, err := LoadCheckpoint(f)
	if err != nil {
		t.Fatal(err)
	}
	if ck.Iterations != res.Iterations {
		t.Fatalf("checkpoint at iteration %d, run finished %d", ck.Iterations, res.Iterations)
	}
	if err := ck.Compatible(device.WrapParams(sim.Dev.P)); err != nil {
		t.Fatal(err)
	}
	if ck.SigmaLess.MaxAbsDiff(res.SigmaLess) != 0 {
		t.Fatal("checkpoint Σ differs from the final state")
	}

	// The file must seed both the serial resume path and a distributed one.
	if _, err := miniSim(t, opts).RunFrom(ck); err != nil {
		t.Fatalf("serial resume: %v", err)
	}
	cfg2 := ftConfig()
	cfg2.Resume = ck
	if _, _, err := miniSim(t, opts).RunDistributedFT(cfg2); err != nil {
		t.Fatalf("distributed resume: %v", err)
	}
}

func TestDeriveGrid(t *testing.T) {
	s := miniSim(t, DefaultOptions())
	for _, tc := range []struct {
		procs    int
		feasible bool
	}{
		{4, true}, {3, true}, {2, true}, {1, false}, {0, false},
	} {
		te, ta := s.deriveGrid(tc.procs)
		if tc.feasible {
			if te*ta != tc.procs {
				t.Errorf("deriveGrid(%d) = %d×%d, does not cover the ranks", tc.procs, te, ta)
			}
			if err := s.checkGrid(te, ta); err != nil {
				t.Errorf("deriveGrid(%d) = %d×%d: %v", tc.procs, te, ta, err)
			}
		} else if te != 0 || ta != 0 {
			t.Errorf("deriveGrid(%d) = %d×%d, want degraded marker (0, 0)", tc.procs, te, ta)
		}
	}
}
