package core

import "testing"

func TestAndersonAcceleratesConvergence(t *testing.T) {
	if testing.Short() {
		t.Skip("long self-consistent run; skipped under -short (race gate)")
	}
	run := func(kind MixerKind) (int, bool) {
		opts := DefaultOptions()
		opts.MaxIter = 14
		opts.Tol = 1e-6
		opts.Mixing = 0.5 // deliberately heavy damping: linear crawls
		opts.Mixer = kind
		res, err := miniSim(t, opts).Run()
		if err != nil {
			t.Fatal(err)
		}
		return res.Iterations, res.Converged
	}
	linIters, linConv := run(Linear)
	andIters, andConv := run(Anderson)
	if !andConv {
		t.Fatalf("Anderson failed to converge in %d iterations", andIters)
	}
	// Anderson must need no more GF phases than damped linear mixing, and
	// in this regime strictly fewer (linear at β=0.5 contracts ~2× per
	// iteration; Anderson extrapolates).
	if linConv && andIters > linIters {
		t.Fatalf("Anderson took %d iterations, linear only %d", andIters, linIters)
	}
	if !linConv && andIters >= 14 {
		t.Fatal("Anderson should converge where heavy linear damping does not")
	}
}

func TestAndersonMatchesLinearFixedPoint(t *testing.T) {
	if testing.Short() {
		t.Skip("long self-consistent run; skipped under -short (race gate)")
	}
	// Both mixers must find the same physical fixed point.
	res := map[MixerKind]*Result{}
	for _, kind := range []MixerKind{Linear, Anderson} {
		opts := DefaultOptions()
		opts.MaxIter = 14
		opts.Tol = 1e-7
		opts.Mixer = kind
		r, err := miniSim(t, opts).Run()
		if err != nil {
			t.Fatal(err)
		}
		res[kind] = r
	}
	d := res[Linear].GLess.MaxAbsDiff(res[Anderson].GLess)
	if d > 1e-4 {
		t.Fatalf("mixers converged to different G^< (diff %g)", d)
	}
}

func TestAndersonStateFallbacks(t *testing.T) {
	// Depth-0 history behaves like damped mixing.
	a := newAndersonState(0)
	x := []complex128{1, 2}
	g := []complex128{3, 6}
	out := a.update(x, g, 0.5)
	if out[0] != 2 || out[1] != 4 {
		t.Fatalf("first Anderson step should be damped mixing, got %v", out)
	}
	// Identical residuals (degenerate history) must not blow up.
	out = a.update(out, []complex128{out[0] + 2, out[1] + 4}, 0.5)
	for _, v := range out {
		if v != v { // NaN check
			t.Fatal("NaN from degenerate Anderson history")
		}
	}
}
