package core

import (
	"fmt"

	"negfsim/internal/comm"
	"negfsim/internal/sse"
	"negfsim/internal/tensor"
)

// Distributed execution of the SSE phase with OMEN's ORIGINAL
// momentum-energy decomposition (§4.1), carrying real tensor data — the
// baseline the communication-avoiding scheme is measured against. Each rank
// owns a round-robin share of the (kz, E) electron pairs and (qz, ω)
// phonon points. The SSE phase then runs in Nqz·Nω rounds; in every round
//
//   - the owner of (qz, ω) broadcasts the phonon Green's functions
//     D^≷(ω, qz) for ALL atoms;
//   - every rank receives, from their owners, the shifted electron Green's
//     functions G^≷(E−ℏω, kz−qz) and G^≷(E+ℏω, kz+qz) its pairs need —
//     again for ALL atoms (the full-5-D-tensor replication the paper
//     eliminates);
//   - the rank accumulates Σ^≷ for its own pairs and partial Π^≷(ω, qz),
//     which a reduction sums at the point's owner.
//
// The result is value-identical to the serial kernels; the traffic is the
// Table 4/5 OMEN volume.

// pairOwner assigns electron (kz, e) pairs round-robin.
func pairOwner(kz, e, ne, procs int) int { return (kz*ne + e) % procs }

// ownPairs lists the (kz, e) pairs a rank owns, in deterministic order.
func (s *Simulator) ownPairs(rank, procs int) [][2]int {
	p := s.Dev.P
	var out [][2]int
	for kz := 0; kz < p.Nkz; kz++ {
		for e := 0; e < p.NE; e++ {
			if pairOwner(kz, e, p.NE, procs) == rank {
				out = append(out, [2]int{kz, e})
			}
		}
	}
	return out
}

// packPoint serializes G^≷ at one (kz, e) point for all atoms.
func packPoint(g *tensor.GTensor, kz, e int, buf []complex128) []complex128 {
	for a := 0; a < g.NA; a++ {
		buf = append(buf, g.Block(kz, e, a).Data...)
	}
	return buf
}

// unpackPoint mirrors packPoint.
func unpackPoint(g *tensor.GTensor, kz, e int, buf []complex128) []complex128 {
	n2 := g.Norb * g.Norb
	for a := 0; a < g.NA; a++ {
		copy(g.Block(kz, e, a).Data, buf[:n2])
		buf = buf[n2:]
	}
	return buf
}

// shiftedPoints returns the down- and up-shifted grid points of a pair for
// round (qz, shift); invalid (off-grid) points return ok=false.
func shiftedPoints(kz, e, qz, shift, nkz, ne int) (down, up [2]int, downOK, upOK bool) {
	kd := ((kz-qz)%nkz + nkz) % nkz
	ku := (kz + qz) % nkz
	down = [2]int{kd, e - shift}
	up = [2]int{ku, e + shift}
	return down, up, e-shift >= 0, e+shift < ne
}

// DistributedSSEOMEN runs one SSE phase with the original decomposition on
// `procs` ranks of the simulated cluster.
func (s *Simulator) DistributedSSEOMEN(in sse.PhaseInput, procs int) (*DistributedResult, error) {
	if procs < 2 {
		return nil, fmt.Errorf("core: distributed SSE needs ≥ 2 ranks, got %d", procs)
	}
	return s.distributedSSEOMENOn(comm.NewCluster(procs), in, procs)
}

// distributedSSEOMENOn is DistributedSSEOMEN on a caller-provided cluster,
// so fault plans and deadlines configured by the caller apply to the
// baseline exchange pattern too.
func (s *Simulator) distributedSSEOMENOn(cluster *comm.Cluster, in sse.PhaseInput, procs int) (*DistributedResult, error) {
	p := s.Dev.P
	out := &DistributedResult{
		SigmaLess:  tensor.NewGTensor(p.Nkz, p.NE, p.NA, p.Norb),
		SigmaGtr:   tensor.NewGTensor(p.Nkz, p.NE, p.NA, p.Norb),
		PiLess:     tensor.NewDTensor(p.Nqz, p.Nw, p.NA, p.NB, p.N3D),
		PiGtr:      tensor.NewDTensor(p.Nqz, p.Nw, p.NA, p.NB, p.N3D),
		ModelBytes: comm.OMENVolume(p, procs),
	}
	pref := s.Kernel.SigmaPrefactor()
	piPref := s.Kernel.PiPrefactor()

	err := cluster.Run(func(r *comm.Rank) error {
		pairs := s.ownPairs(r.ID, procs)
		// Rank-local shifted-G store (filled round by round).
		shiftLess := tensor.NewGTensor(p.Nkz, p.NE, p.NA, p.Norb)
		shiftGtr := tensor.NewGTensor(p.Nkz, p.NE, p.NA, p.Norb)
		sigL := tensor.NewGTensor(p.Nkz, p.NE, p.NA, p.Norb)
		sigG := tensor.NewGTensor(p.Nkz, p.NE, p.NA, p.Norb)
		dRound := tensor.NewDTensor(1, 1, p.NA, p.NB, p.N3D)
		dRoundG := tensor.NewDTensor(1, 1, p.NA, p.NB, p.N3D)
		n2 := p.Norb * p.Norb
		piBuf := make([]complex128, 2*p.NA*(p.NB+1)*p.N3D*p.N3D)

		for qz := 0; qz < p.Nqz; qz++ {
			for w := 0; w < p.Nw; w++ {
				owner := (qz*p.Nw + w) % procs
				shift := p.PhononShift(w)

				// 1. Broadcast D^≷(ω, qz), all atoms and neighbor slots.
				var dbuf []complex128
				if r.ID == owner {
					dbuf = append(dbuf, packD(in.DLess, [][2]int{{qz, w}}, allAtoms(p.NA))...)
					dbuf = append(dbuf, packD(in.DGtr, [][2]int{{qz, w}}, allAtoms(p.NA))...)
				}
				got, err := r.Bcast(owner, dbuf)
				if err != nil {
					return fmt.Errorf("round (%d,%d) D bcast: %w", qz, w, err)
				}
				half := len(got) / 2
				unpackD(dRound, got[:half], [][2]int{{0, 0}}, allAtoms(p.NA), false)
				unpackD(dRoundG, got[half:], [][2]int{{0, 0}}, allAtoms(p.NA), false)

				// 2. Shifted G exchange: send what each peer's pairs need
				//    from my chunk, receive what my pairs need.
				for d := 0; d < procs; d++ {
					if d == r.ID {
						continue
					}
					var buf []complex128
					for _, pr := range s.ownPairsOf(d, procs) {
						down, up, dOK, uOK := shiftedPoints(pr[0], pr[1], qz, shift, p.Nkz, p.NE)
						if dOK && pairOwner(down[0], down[1], p.NE, procs) == r.ID {
							buf = packPoint(in.GLess, down[0], down[1], buf)
							buf = packPoint(in.GGtr, down[0], down[1], buf)
						}
						if uOK && pairOwner(up[0], up[1], p.NE, procs) == r.ID {
							buf = packPoint(in.GLess, up[0], up[1], buf)
							buf = packPoint(in.GGtr, up[0], up[1], buf)
						}
					}
					if err := r.Send(d, buf); err != nil {
						return err
					}
				}
				for from := 0; from < procs; from++ {
					if from == r.ID {
						continue
					}
					buf, err := r.Recv(from)
					if err != nil {
						return fmt.Errorf("round (%d,%d) G recv from %d: %w", qz, w, from, err)
					}
					for _, pr := range pairs {
						down, up, dOK, uOK := shiftedPoints(pr[0], pr[1], qz, shift, p.Nkz, p.NE)
						if dOK && pairOwner(down[0], down[1], p.NE, procs) == from {
							buf = unpackPoint(shiftLess, down[0], down[1], buf)
							buf = unpackPoint(shiftGtr, down[0], down[1], buf)
						}
						if uOK && pairOwner(up[0], up[1], p.NE, procs) == from {
							buf = unpackPoint(shiftLess, up[0], up[1], buf)
							buf = unpackPoint(shiftGtr, up[0], up[1], buf)
						}
					}
					if len(buf) != 0 {
						return fmt.Errorf("round (%d,%d): %d leftover elements from %d", qz, w, len(buf), from)
					}
				}
				// Points this rank owns itself are read locally.
				for _, pr := range pairs {
					down, up, dOK, uOK := shiftedPoints(pr[0], pr[1], qz, shift, p.Nkz, p.NE)
					if dOK && pairOwner(down[0], down[1], p.NE, procs) == r.ID {
						copyPoint(shiftLess, in.GLess, down[0], down[1], n2)
						copyPoint(shiftGtr, in.GGtr, down[0], down[1], n2)
					}
					if uOK && pairOwner(up[0], up[1], p.NE, procs) == r.ID {
						copyPoint(shiftLess, in.GLess, up[0], up[1], n2)
						copyPoint(shiftGtr, in.GGtr, up[0], up[1], n2)
					}
				}

				// 3. Accumulate Σ^≷ for my pairs and Π^≷ partials.
				preL := s.Kernel.PreprocessD(dRound)
				preG := s.Kernel.PreprocessD(dRoundG)
				piPartL := tensor.NewDTensor(1, 1, p.NA, p.NB, p.N3D)
				piPartG := tensor.NewDTensor(1, 1, p.NA, p.NB, p.N3D)
				for _, pr := range pairs {
					kz, e := pr[0], pr[1]
					down, up, dOK, uOK := shiftedPoints(kz, e, qz, shift, p.Nkz, p.NE)
					if dOK {
						s.sigmaRound(sigL, shiftLess, preL, kz, e, down, pref)
						s.sigmaRound(sigG, shiftGtr, preG, kz, e, down, pref)
					}
					if uOK {
						s.piRound(piPartL, shiftLess, in.GGtr, kz, e, up, piPref)
						s.piRound(piPartG, shiftGtr, in.GLess, kz, e, up, piPref)
					}
				}
				// 4. Reduce the partials at the round's owner.
				buf := piBuf[:0]
				buf = append(buf, packD(piPartL, [][2]int{{0, 0}}, allAtoms(p.NA))...)
				buf = append(buf, packD(piPartG, [][2]int{{0, 0}}, allAtoms(p.NA))...)
				sum, err := r.Reduce(owner, buf)
				if err != nil {
					return fmt.Errorf("round (%d,%d) Π reduce: %w", qz, w, err)
				}
				if r.ID == owner {
					half := len(sum) / 2
					unpackD(out.PiLess, sum[:half], [][2]int{{qz, w}}, allAtoms(p.NA), true)
					unpackD(out.PiGtr, sum[half:], [][2]int{{qz, w}}, allAtoms(p.NA), true)
				}
			}
		}
		// Assemble Σ: each rank owns its pairs' output (disjoint writes).
		for _, pr := range pairs {
			copyPoint(out.SigmaLess, sigL, pr[0], pr[1], n2)
			copyPoint(out.SigmaGtr, sigG, pr[0], pr[1], n2)
		}
		return nil
	})
	if err != nil {
		return nil, err
	}
	out.MeasuredBytes = cluster.TotalBytes()
	return out, nil
}

// ownPairsOf is ownPairs for an arbitrary rank.
func (s *Simulator) ownPairsOf(rank, procs int) [][2]int { return s.ownPairs(rank, procs) }

func allAtoms(na int) []int {
	out := make([]int, na)
	for i := range out {
		out[i] = i
	}
	return out
}

func copyPoint(dst, src *tensor.GTensor, kz, e, n2 int) {
	for a := 0; a < dst.NA; a++ {
		copy(dst.Block(kz, e, a).Data, src.Block(kz, e, a).Data)
	}
}

// sigmaRound accumulates one round's contribution to Σ^≷[kz, e] using the
// OMEN kernel structure (∇H·G hoisted out of j).
func (s *Simulator) sigmaRound(sigma, gShift *tensor.GTensor, pre *sse.PreD, kz, e int, down [2]int, pref complex128) {
	p := s.Dev.P
	for a := 0; a < p.NA; a++ {
		dst := sigma.Block(kz, e, a)
		for b := 0; b < p.NB; b++ {
			f := s.Dev.Neigh[a][b]
			if f < 0 {
				continue
			}
			gblk := gShift.Block(down[0], down[1], f)
			for i := 0; i < p.N3D; i++ {
				dHG := gblk.Mul(s.Kernel.DH(a, b, i))
				for j := 0; j < p.N3D; j++ {
					dHD := s.Kernel.DH(a, b, j).Scale(pre.At(0, 0, a, b, i, j))
					dst.AddScaledInPlace(pref, dHG.Mul(dHD))
				}
			}
		}
	}
}

// piRound accumulates one round's (single (kz, e) pair) contribution to the
// per-round Π^≷ partial: tr{∇iH_ba·G^≷(up)·∇jH_ab·G^≶(kz,e)}.
func (s *Simulator) piRound(pi *tensor.DTensor, gShift, gOwn *tensor.GTensor, kz, e int, up [2]int, pref float64) {
	p := s.Dev.P
	cpref := complex(0, pref)
	for a := 0; a < p.NA; a++ {
		for b := 0; b < p.NB; b++ {
			f := s.Dev.Neigh[a][b]
			if f < 0 {
				continue
			}
			rs := s.Dev.NeighborSlot(f, a)
			if rs < 0 {
				continue
			}
			gu := gShift.Block(up[0], up[1], a)
			gf := gOwn.Block(kz, e, f)
			for i := 0; i < p.N3D; i++ {
				u := s.Kernel.DH(f, rs, i).Mul(gu)
				for j := 0; j < p.N3D; j++ {
					wv := s.Kernel.DH(a, b, j).Mul(gf)
					val := cpref * u.TraceMul(wv)
					blk := pi.Block(0, 0, a, b)
					blk.Set(i, j, blk.At(i, j)+val)
					diag := pi.Block(0, 0, a, p.NB)
					diag.Set(i, j, diag.At(i, j)-val)
				}
			}
		}
	}
}
