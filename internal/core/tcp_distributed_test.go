package core

import (
	"context"
	"math"
	"net"
	"sync"
	"testing"
	"time"

	"negfsim/internal/comm"
	"negfsim/internal/transport"
)

// tcpPeers reserves n loopback listeners up front so the peer clusters can
// be built without port races, returning the address list and the per-rank
// transport configs carrying the pre-bound listeners.
func tcpPeers(t *testing.T, n int) ([]string, []transport.TCPConfig) {
	t.Helper()
	addrs := make([]string, n)
	cfgs := make([]transport.TCPConfig, n)
	for i := range addrs {
		ln, err := net.Listen("tcp", "127.0.0.1:0")
		if err != nil {
			t.Fatal(err)
		}
		addrs[i] = ln.Addr().String()
		cfgs[i] = transport.TCPConfig{Listener: ln}
	}
	return addrs, cfgs
}

// runTCPPeers executes one RunDistributedFTCtx per rank of a 2-peer TCP
// cluster, each on its own simulator (the SPMD layout: replicated GF phase,
// distributed SSE), and returns the per-rank results, byte totals and
// errors.
func runTCPPeers(t *testing.T, opts Options, mutate func(rank int, cfg *DistConfig)) ([]*Result, []int64, []error) {
	t.Helper()
	const n = 2
	addrs, cfgs := tcpPeers(t, n)
	sims := make([]*Simulator, n)
	for rank := range sims {
		sims[rank] = miniSim(t, opts)
	}
	results := make([]*Result, n)
	bytes := make([]int64, n)
	errs := make([]error, n)
	var wg sync.WaitGroup
	for rank := 0; rank < n; rank++ {
		wg.Add(1)
		go func(rank int) {
			defer wg.Done()
			cl, err := comm.NewClusterTCPWith(context.Background(), rank, addrs, cfgs[rank])
			if err != nil {
				errs[rank] = err
				return
			}
			defer cl.Close()
			cfg := DistConfig{TE: n, TA: 1, Cluster: cl,
				CommTimeout: 5 * time.Second, RetryBackoff: time.Millisecond}
			if mutate != nil {
				mutate(rank, &cfg)
			}
			results[rank], bytes[rank], errs[rank] = sims[rank].RunDistributedFTCtx(context.Background(), cfg)
		}(rank)
	}
	wg.Wait()
	return results, bytes, errs
}

func TestRunDistributedFTOverTCPMatchesInproc(t *testing.T) {
	opts := DefaultOptions()
	opts.MaxIter = 3
	clean, _, err := miniSim(t, opts).RunDistributed(2, 1)
	if err != nil {
		t.Fatal(err)
	}

	results, bytes, errs := runTCPPeers(t, opts, nil)
	for rank, err := range errs {
		if err != nil {
			t.Fatalf("peer %d: %v", rank, err)
		}
	}
	for rank, res := range results {
		if d := clean.GLess.MaxAbsDiff(res.GLess); d > 1e-8 {
			t.Errorf("peer %d GLess diverged from in-process run: %g", rank, d)
		}
		if d := math.Abs(clean.Obs.CurrentL - res.Obs.CurrentL); d > 1e-8*(1+math.Abs(clean.Obs.CurrentL)) {
			t.Errorf("peer %d current differs: %g vs %g", rank, res.Obs.CurrentL, clean.Obs.CurrentL)
		}
		if res.Iterations != clean.Iterations {
			t.Errorf("peer %d ran %d iterations, in-process ran %d", rank, res.Iterations, clean.Iterations)
		}
		if bytes[rank] == 0 {
			t.Errorf("peer %d reports zero exchange traffic", rank)
		}
	}
}

func TestRunDistributedFTOverTCPSurvivesPeerRankDeath(t *testing.T) {
	opts := DefaultOptions()
	opts.MaxIter = 4
	clean, _, err := miniSim(t, opts).RunDistributed(2, 1)
	if err != nil {
		t.Fatal(err)
	}

	// Rank 1's cluster kills its own (local) rank mid-iteration 1. Its
	// transport tears down, so peer 0 observes the death as a connection
	// loss → ErrRankDead; both survivors restore the last checkpoint,
	// degrade to the local shared-memory SSE kernels, and must still land
	// on the fault-free observables.
	results, _, errs := runTCPPeers(t, opts, func(rank int, cfg *DistConfig) {
		if rank == 1 {
			cfg.Fault = &comm.FaultPlan{Kill: true, KillRank: 1, KillAtOp: 3}
			cfg.FaultIter = 1
		}
	})
	for rank, err := range errs {
		if err != nil {
			t.Fatalf("peer %d: %v", rank, err)
		}
	}
	for rank, res := range results {
		if res.Recoveries != 1 {
			t.Errorf("peer %d Recoveries = %d, want 1", rank, res.Recoveries)
		}
		if d := clean.GLess.MaxAbsDiff(res.GLess); d > 1e-8 {
			t.Errorf("peer %d recovered trajectory diverged: %g", rank, d)
		}
		if d := math.Abs(clean.Obs.CurrentL - res.Obs.CurrentL); d > 1e-8*(1+math.Abs(clean.Obs.CurrentL)) {
			t.Errorf("peer %d recovered current differs: %g vs %g", rank, res.Obs.CurrentL, clean.Obs.CurrentL)
		}
	}
}

func TestRunDistributedFTRejectsMismatchedCluster(t *testing.T) {
	cl := comm.NewCluster(4)
	defer cl.Close()
	cfg := DistConfig{TE: 2, TA: 1, Cluster: cl}
	if _, _, err := miniSim(t, DefaultOptions()).RunDistributedFT(cfg); err == nil {
		t.Fatal("a 4-rank cluster must not carry a 2×1 grid")
	}
}
