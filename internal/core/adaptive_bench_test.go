package core

import (
	"context"
	"testing"

	"negfsim/internal/device"
)

// Uniform-vs-adaptive benchmarks on two zoo devices (BENCH_10.json): the
// same converged Born solve on the full fine grid and under the
// refinement loop. The "points" metric is the energy points actually
// solved (final active count for the adaptive runs); wall time is the
// benchmark's own ns/op.

func benchAdaptConfigs() map[string]RunConfig {
	mk := func(spec device.Spec) RunConfig {
		cfg := DefaultRunConfig()
		cfg.Device = device.WrapSpec(spec)
		cfg.MaxIter = 25
		cfg.Mixer = "anderson"
		cfg.Mixing = 0.8
		cfg.Tol = 1e-8
		cfg.Bias = 0.3
		return cfg
	}
	return map[string]RunConfig{
		"cnt": mk(device.CNT{N: 6, M: 0, Cols: 6, Subbands: 2,
			NE: 96, Nw: 4, NB: 3, Bnum: 3, Nkz: 1, Emin: -2.5, Emax: 2.5}),
		"nanowire": mk(device.Nanowire{Params: device.Params{
			Nkz: 1, Nqz: 1, NE: 96, Nw: 4, NA: 24, NB: 4, Norb: 2, N3D: 3,
			Rows: 4, Bnum: 3, Emin: -2.5, Emax: 2.5, Seed: 7}}),
	}
}

func BenchmarkAdaptUniform(b *testing.B) {
	for kind, cfg := range benchAdaptConfigs() {
		cfg := cfg
		b.Run(kind, func(b *testing.B) {
			for i := 0; i < b.N; i++ {
				sim, err := cfg.NewSimulator()
				if err != nil {
					b.Fatal(err)
				}
				res, err := sim.Run()
				if err != nil {
					b.Fatal(err)
				}
				b.ReportMetric(float64(cfg.Device.Grid().NE), "points")
				b.ReportMetric(float64(res.Iterations), "iters")
			}
		})
	}
}

func BenchmarkAdaptRefined(b *testing.B) {
	for kind, cfg := range benchAdaptConfigs() {
		cfg := cfg
		cfg.Adapt = &AdaptSpec{Mode: "grid+sigma", TolCurrent: 1e-6}
		b.Run(kind, func(b *testing.B) {
			for i := 0; i < b.N; i++ {
				sim, err := cfg.NewSimulator()
				if err != nil {
					b.Fatal(err)
				}
				ac, _ := cfg.AdaptConfig()
				res, _, err := sim.RunAdaptiveCtx(context.Background(), ac)
				if err != nil {
					b.Fatal(err)
				}
				b.ReportMetric(float64(res.Adapt.PointsActive), "points")
				b.ReportMetric(float64(res.Adapt.Rounds), "rounds")
				b.ReportMetric(float64(res.Adapt.Iterations), "iters")
			}
		})
	}
}
