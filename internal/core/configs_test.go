package core

import (
	"math"
	"testing"

	"negfsim/internal/device"
)

// TestBallisticAcrossConfigurations sweeps several structure shapes through
// a one-iteration run, guarding the whole pipeline (geometry → operators →
// boundaries → RGF → observables) against shape-specific regressions.
func TestBallisticAcrossConfigurations(t *testing.T) {
	configs := []device.Params{
		{Nkz: 2, Nqz: 2, NE: 10, Nw: 3, NA: 18, NB: 4, Norb: 2, N3D: 3,
			Rows: 3, Bnum: 3, Emin: -1, Emax: 1, Seed: 11},
		{Nkz: 4, Nqz: 4, NE: 8, Nw: 2, NA: 30, NB: 6, Norb: 3, N3D: 3,
			Rows: 5, Bnum: 2, Emin: -1, Emax: 1, Seed: 12},
		{Nkz: 3, Nqz: 3, NE: 12, Nw: 4, NA: 16, NB: 4, Norb: 2, N3D: 3,
			Rows: 2, Bnum: 4, Emin: -0.8, Emax: 0.8, Seed: 13},
	}
	for i, p := range configs {
		dev, err := device.New(p)
		if err != nil {
			t.Fatalf("config %d: %v", i, err)
		}
		opts := DefaultOptions()
		opts.MaxIter = 1
		res, err := New(dev, opts).Run()
		if err != nil {
			t.Fatalf("config %d: %v", i, err)
		}
		if res.Obs.CurrentL == 0 {
			t.Fatalf("config %d: no current under bias", i)
		}
		if rel := math.Abs(res.Obs.CurrentL+res.Obs.CurrentR) /
			(1 + math.Abs(res.Obs.CurrentL)); rel > 1e-2 {
			t.Fatalf("config %d: conservation violated (%g vs %g)", i, res.Obs.CurrentL, res.Obs.CurrentR)
		}
		for _, v := range res.GLess.Data {
			if math.IsNaN(real(v)) || math.IsNaN(imag(v)) {
				t.Fatalf("config %d: NaN in G^<", i)
			}
		}
	}
}
