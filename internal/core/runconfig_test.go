package core

import (
	"os"
	"strings"
	"testing"
	"time"

	"negfsim/internal/device"
	"negfsim/internal/sse"
)

// TestRunConfigGoldenRoundTrip pins the config wire format: the checked-in
// examples/run.json (which spells out the optional execution knobs — mixer,
// anderson_history, workers, dist, comm_timeout_ms — so readers can see
// them) must parse to the same canonical run as the built-in default, and
// the marshal/parse round trip must be a fixed point. A failure here means
// the schema changed — bump RunConfigVersion and regenerate the example
// deliberately, never by accident.
func TestRunConfigGoldenRoundTrip(t *testing.T) {
	golden, err := os.ReadFile("../../examples/run.json")
	if err != nil {
		t.Fatal(err)
	}
	parsed, err := ParseRunConfig(golden)
	if err != nil {
		t.Fatal(err)
	}
	def := DefaultRunConfig()
	if parsed.Canonical() != def.Canonical() {
		t.Fatalf("examples/run.json is not the canonical default run:\n got %+v\nwant %+v", parsed.Canonical(), def.Canonical())
	}
	// The marshalled default parses back to itself.
	out, err := def.Marshal()
	if err != nil {
		t.Fatal(err)
	}
	back, err := ParseRunConfig(out)
	if err != nil {
		t.Fatal(err)
	}
	if *back != def {
		t.Fatalf("default did not survive the round trip:\n got %+v\nwant %+v", *back, def)
	}
	// And marshalling the parsed golden is a fixed point: one more
	// parse/marshal cycle changes nothing.
	once, err := parsed.Marshal()
	if err != nil {
		t.Fatal(err)
	}
	reparsed, err := ParseRunConfig(once)
	if err != nil {
		t.Fatal(err)
	}
	twice, err := reparsed.Marshal()
	if err != nil {
		t.Fatal(err)
	}
	if string(twice) != string(once) {
		t.Fatalf("marshal is not a fixed point:\n--- first\n%s\n--- second\n%s", once, twice)
	}
}

func TestParseRunConfigRejectsUnknownFieldsAndVersions(t *testing.T) {
	if _, err := ParseRunConfig([]byte(`{"version": 1, "variannt": "dace"}`)); err == nil {
		t.Fatal("unknown field accepted")
	}
	if _, err := ParseRunConfig([]byte(`{"version": 99}`)); err == nil || !strings.Contains(err.Error(), "version") {
		t.Fatalf("future version accepted: %v", err)
	}
}

func TestParseRunConfigNormalizesMissingVersion(t *testing.T) {
	def := DefaultRunConfig()
	def.Version = 0
	raw, err := def.Marshal()
	if err != nil {
		t.Fatal(err)
	}
	c, err := ParseRunConfig(raw)
	if err != nil {
		t.Fatal(err)
	}
	if c.Version != RunConfigVersion {
		t.Fatalf("Version = %d, want %d", c.Version, RunConfigVersion)
	}
}

func TestRunConfigValidate(t *testing.T) {
	bad := func(mut func(*RunConfig)) error {
		c := DefaultRunConfig()
		mut(&c)
		return c.Validate()
	}
	for name, mut := range map[string]func(*RunConfig){
		"zero device": func(c *RunConfig) {
			g := c.Device.Grid()
			g.NA = 0
			c.Device = device.WrapParams(g)
		},
		"bad variant":      func(c *RunConfig) { c.Variant = "cuda" },
		"bad mixer":        func(c *RunConfig) { c.Mixer = "broyden" },
		"zero iters":       func(c *RunConfig) { c.MaxIter = 0 },
		"zero tol":         func(c *RunConfig) { c.Tol = 0 },
		"mixing too big":   func(c *RunConfig) { c.Mixing = 1.5 },
		"bad dist":         func(c *RunConfig) { c.Dist = "2by2" },
		"dist too wide":    func(c *RunConfig) { c.Dist = "8x8" },
		"dist plus gate":   func(c *RunConfig) { c.Dist = "2x2"; g := DefaultGate(0.2, 0); c.Gate = &g },
		"gate no outer":    func(c *RunConfig) { g := DefaultGate(0.2, 0); g.MaxOuter = 0; c.Gate = &g },
		"negative workers": func(c *RunConfig) { c.Workers = -1 },
	} {
		if err := bad(mut); err == nil {
			t.Errorf("%s: Validate accepted an invalid config", name)
		}
	}
	c := DefaultRunConfig()
	if err := c.Validate(); err != nil {
		t.Fatalf("default config invalid: %v", err)
	}
}

func TestRunConfigOptionsMapping(t *testing.T) {
	c := DefaultRunConfig()
	c.Variant = "omen"
	c.Mixer = "anderson"
	c.AndersonHistory = 5
	c.Bias = 0.6
	c.KT = 0.03
	c.Workers = 2
	opts, err := c.Options()
	if err != nil {
		t.Fatal(err)
	}
	if opts.Variant != sse.OMEN || opts.Mixer != Anderson || opts.AndersonHistory != 5 {
		t.Fatalf("solver selection not mapped: %+v", opts)
	}
	if opts.Contacts.MuL != 0.3 || opts.Contacts.MuR != -0.3 || opts.Contacts.KT != 0.03 {
		t.Fatalf("contacts not mapped: %+v", opts.Contacts)
	}
	if opts.Workers != 2 {
		t.Fatalf("Workers = %d, want 2", opts.Workers)
	}
	// Defaults the config does not cover come from DefaultOptions.
	if opts.Eta != DefaultOptions().Eta {
		t.Fatalf("Eta = %g, want default %g", opts.Eta, DefaultOptions().Eta)
	}
}

func TestRunConfigDistConfig(t *testing.T) {
	c := DefaultRunConfig()
	if _, ok, err := c.DistConfig(); ok || err != nil {
		t.Fatalf("serial config reported a distributed run (ok=%v, err=%v)", ok, err)
	}
	c.Dist = "2x2"
	c.CommTimeoutMs = 1500
	dc, ok, err := c.DistConfig()
	if err != nil || !ok {
		t.Fatalf("DistConfig: ok=%v, err=%v", ok, err)
	}
	if dc.TE != 2 || dc.TA != 2 || dc.CommTimeout != 1500*time.Millisecond {
		t.Fatalf("DistConfig = %+v", dc)
	}
}

// TestRunConfigRunMatchesHandBuiltRun pins the contract behind config-driven
// frontends: a run assembled through RunConfig must be digit-for-digit the
// run assembled by hand from the same numbers.
func TestRunConfigRunMatchesHandBuiltRun(t *testing.T) {
	c := DefaultRunConfig()
	c.MaxIter = 3
	sim, err := c.NewSimulator()
	if err != nil {
		t.Fatal(err)
	}
	got, err := sim.Run()
	if err != nil {
		t.Fatal(err)
	}

	opts := DefaultOptions()
	opts.MaxIter = 3
	opts.Tol = c.Tol
	opts.Mixing = c.Mixing
	opts.Contacts.MuL = c.Bias / 2
	opts.Contacts.MuR = -c.Bias / 2
	opts.Contacts.KT = c.KT
	want, err := miniSim(t, opts).Run()
	if err != nil {
		t.Fatal(err)
	}
	if d := want.GLess.MaxAbsDiff(got.GLess); d != 0 {
		t.Fatalf("config-built run diverged from hand-built run: %g", d)
	}
	if got.Obs.CurrentL != want.Obs.CurrentL {
		t.Fatalf("currents differ: %g vs %g", got.Obs.CurrentL, want.Obs.CurrentL)
	}
}
