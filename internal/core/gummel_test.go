package core

import (
	"math"
	"testing"
)

func gummelOpts() Options {
	o := DefaultOptions()
	o.MaxIter = 2 // short inner Born loops keep the outer test fast
	return o
}

func TestGummelZeroBiasFlatPotential(t *testing.T) {
	// All boundaries grounded and no gate: δn = 0 by construction, so the
	// converged potential is identically zero.
	s := miniSim(t, gummelOpts())
	g := DefaultGate(0, 0)
	res, err := s.RunWithPoisson(g)
	if err != nil {
		t.Fatal(err)
	}
	if !res.GummelConverged {
		t.Fatalf("zero-bias Gummel should converge immediately: residuals %v", res.PhiResiduals)
	}
	for a, v := range res.Potential {
		if math.Abs(v) > 1e-8 {
			t.Fatalf("atom %d: potential %g, want 0", a, v)
		}
	}
}

func TestGummelGateAttractsElectrons(t *testing.T) {
	if testing.Short() {
		t.Skip("long self-consistent run; skipped under -short (race gate)")
	}
	// A positive gate raises the interior potential, lowering electron
	// onsite energies under the gate and pulling in charge.
	s := miniSim(t, gummelOpts())
	g := DefaultGate(0.3, 0)
	g.MaxOuter = 5
	res, err := s.RunWithPoisson(g)
	if err != nil {
		t.Fatal(err)
	}
	var interiorMax float64
	for _, v := range res.Potential {
		if v > interiorMax {
			interiorMax = v
		}
	}
	if interiorMax <= 0 {
		t.Fatal("positive gate should raise the potential somewhere")
	}
	if interiorMax > 0.3+1e-6 {
		t.Fatalf("potential %g exceeds the gate voltage (maximum principle)", interiorMax)
	}
	// Gummel residuals decrease.
	rs := res.PhiResiduals
	if len(rs) >= 2 && rs[len(rs)-1] > rs[0] {
		t.Fatalf("Gummel residuals grew: %v", rs)
	}
	// The top row (under the gate) collected extra electrons relative to
	// the bottom row.
	p := s.Dev.P
	var top, bottom float64
	for c := 1; c < p.Cols()-1; c++ {
		top += res.ChargePerAtom[c*p.Rows+p.Rows-1]
		bottom += res.ChargePerAtom[c*p.Rows]
	}
	// ChargePerAtom stores −Coupling·δn: more electrons → more negative.
	if top >= bottom {
		t.Fatalf("gate should accumulate charge on the top row: top %g vs bottom %g", top, bottom)
	}
}

func TestGummelRestoresHamiltonian(t *testing.T) {
	if testing.Short() {
		t.Skip("long self-consistent run; skipped under -short (race gate)")
	}
	s := miniSim(t, gummelOpts())
	before := s.h[0].ToDense()
	if _, err := s.RunWithPoisson(DefaultGate(0.2, 0.1)); err != nil {
		t.Fatal(err)
	}
	if d := s.h[0].ToDense().MaxAbsDiff(before); d != 0 {
		t.Fatalf("Gummel left a shifted Hamiltonian behind (diff %g)", d)
	}
}

func TestGummelSpecValidation(t *testing.T) {
	s := miniSim(t, gummelOpts())
	bad := DefaultGate(0.1, 0)
	bad.MaxOuter = 0
	if _, err := s.RunWithPoisson(bad); err == nil {
		t.Fatal("MaxOuter = 0 must be rejected")
	}
	bad = DefaultGate(0.1, 0)
	bad.Damping = 1.5
	if _, err := s.RunWithPoisson(bad); err == nil {
		t.Fatal("damping > 1 must be rejected")
	}
}
