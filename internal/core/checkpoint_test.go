package core

import (
	"bytes"
	"testing"

	"negfsim/internal/device"
)

func TestCheckpointRoundTripAndResume(t *testing.T) {
	if testing.Short() {
		t.Skip("long self-consistent run; skipped under -short (race gate)")
	}
	opts := DefaultOptions()
	opts.MaxIter = 3
	s1 := miniSim(t, opts)
	first, err := s1.Run()
	if err != nil {
		t.Fatal(err)
	}
	var buf bytes.Buffer
	if err := CheckpointOf(device.WrapParams(s1.Dev.P), first).Save(&buf); err != nil {
		t.Fatal(err)
	}
	ck, err := LoadCheckpoint(&buf)
	if err != nil {
		t.Fatal(err)
	}
	if ck.SigmaLess.MaxAbsDiff(first.SigmaLess) != 0 {
		t.Fatal("checkpoint round trip altered Σ")
	}

	// A run that goes 3+3 iterations via checkpoint must land close to a
	// straight 6-iteration run (the mixing history restarts, so agreement
	// is to the convergence scale, not bit-exact).
	resumed, err := miniSim(t, opts).RunFrom(ck)
	if err != nil {
		t.Fatal(err)
	}
	optsFull := DefaultOptions()
	optsFull.MaxIter = 6
	full, err := miniSim(t, optsFull).Run()
	if err != nil {
		t.Fatal(err)
	}
	if d := resumed.GLess.MaxAbsDiff(full.GLess); d > 1e-3 {
		t.Fatalf("resumed run far from the straight-through run: %g", d)
	}
	// And the resumed run starts much closer to the fixed point than a
	// fresh one: its first residual is far below the cold-start residual.
	if len(resumed.Residuals) == 0 || len(full.Residuals) == 0 {
		t.Fatal("missing residual histories")
	}
	if resumed.Residuals[0] > full.Residuals[0]/2 {
		t.Fatalf("warm start residual %g should beat cold start %g",
			resumed.Residuals[0], full.Residuals[0])
	}
}

func TestCheckpointCompatibility(t *testing.T) {
	opts := DefaultOptions()
	opts.MaxIter = 2
	s := miniSim(t, opts)
	res, err := s.Run()
	if err != nil {
		t.Fatal(err)
	}
	ck := CheckpointOf(device.WrapParams(s.Dev.P), res)
	other := device.Mini()
	other.NE = 8
	if err := ck.Compatible(device.WrapParams(other)); err == nil {
		t.Fatal("mismatched parameters must be rejected")
	}
	dev, _ := device.New(other)
	if _, err := New(dev, opts).RunFrom(ck); err == nil {
		t.Fatal("RunFrom must reject incompatible checkpoints")
	}
}

func TestCheckpointRequiresSelfEnergies(t *testing.T) {
	var buf bytes.Buffer
	empty := &Checkpoint{}
	if err := empty.Save(&buf); err == nil {
		t.Fatal("empty checkpoint must not save")
	}
	if _, err := LoadCheckpoint(bytes.NewReader([]byte("garbage"))); err == nil {
		t.Fatal("corrupt checkpoint must fail to load")
	}
}
