// Package core is the paper's primary contribution assembled into a
// runnable simulator: the self-consistent NEGF loop coupling the Green's
// function (GF) phase — RGF solves of Eqs. (1) and (2) over all momentum,
// energy and frequency points — with the scattering self-energy (SSE)
// phase of Eqs. (3)–(5), in any of the three kernel variants (naive
// reference, OMEN-style, DaCe-transformed), plus the communication-avoiding
// distributed execution of the SSE phase on the simulated cluster.
package core

import (
	"context"
	"errors"
	"fmt"
	"math"
	"runtime"
	"sync"
	"sync/atomic"
	"time"

	"negfsim/internal/cmat"
	"negfsim/internal/device"
	"negfsim/internal/egrid"
	"negfsim/internal/obs"
	"negfsim/internal/pool"
	"negfsim/internal/rgf"
	"negfsim/internal/sse"
	"negfsim/internal/tensor"
)

// Top-level phase timers of the Born loop. core measures the phases with
// its own clock (the durations also feed Result.Timings and the
// OnIteration hook) and mirrors them onto the observability registry, so
// a scrape of /metrics sees the same breakdown the trace reports.
var (
	obsSpanGF  = obs.GetTimer("core.gf")
	obsSpanSSE = obs.GetTimer("core.sse")
	obsSpanMix = obs.GetTimer("core.mix")
)

// Options configures the self-consistent solver.
type Options struct {
	// Variant selects the SSE kernel formulation.
	Variant sse.Variant
	// MaxIter bounds the Born (GF↔SSE) iteration count.
	MaxIter int
	// Tol is the convergence threshold on the relative change of G^≷.
	Tol float64
	// Mixing linearly mixes new self-energies into the previous ones
	// (1 = full update). Values below 1 damp the Born iteration.
	Mixing float64
	// Contacts sets the electron reservoir occupations.
	Contacts rgf.Contacts
	// PhononKTL/R set the contact lattice temperatures (thermal energies).
	PhononKTL, PhononKTR float64
	// Eta is the numerical broadening of the retarded solves.
	Eta float64
	// Workers bounds the shared-memory parallelism over grid points;
	// 0 means GOMAXPROCS.
	Workers int
	// Mixer selects the self-consistency update rule (Linear or Anderson).
	Mixer MixerKind
	// AndersonHistory is the Anderson mixer's history depth (default 3).
	AndersonHistory int
	// OnIteration, when non-nil, is called after every Born iteration with
	// that iteration's phase breakdown — the hook behind cmd/qtsim's
	// -trace-out JSON trace. It runs on the solver goroutine; keep it
	// cheap (write a line, update a gauge) or the iteration time it
	// reports next will include itself.
	OnIteration func(IterStats)
}

// IterStats is one Born iteration's Table 7-style breakdown, delivered to
// Options.OnIteration. GF + SSE + Mix cover the phase work; Wall − (GF +
// SSE + Mix) is loop overhead (convergence norms, tensor bookkeeping).
type IterStats struct {
	// Iter is the 1-based Born iteration index within this run.
	Iter int
	// Wall is the full iteration wall time.
	Wall time.Duration
	// GF is the Green's-function phase: every (kz, E) electron and
	// (qz, ω) phonon RGF solve of the iteration.
	GF time.Duration
	// SSE is the scattering self-energy phase (Σ^≷ and Π^≷ kernels).
	// Zero on a final iteration that converged before the SSE phase ran.
	SSE time.Duration
	// Mix is self-energy mixing plus the retarded reconstruction.
	Mix time.Duration
	// Residual is the relative G change versus the previous iteration;
	// NaN on the first iteration, where no previous G exists.
	Residual float64
	// Converged reports whether this iteration met the tolerance.
	Converged bool
	// Spans holds the observability-timer activity recorded during the
	// iteration (rgf.electron, sse.sigma, comm.alltoallv, …). Nil unless
	// obs recording is enabled. Parallel phases accumulate worker time,
	// so span totals may exceed Wall.
	Spans []obs.TimerStat
}

// DefaultOptions returns a stable configuration for the synthetic devices.
func DefaultOptions() Options {
	return Options{
		Variant: sse.DaCe,
		MaxIter: 10,
		Tol:     1e-5,
		Mixing:  0.8,
		Contacts: rgf.Contacts{
			MuL: 0.2, MuR: -0.2, KT: 0.025,
		},
		PhononKTL: 0.026, PhononKTR: 0.025,
		Eta: 1e-6,
	}
}

// Observables are the physical outputs of a converged run.
type Observables struct {
	// CurrentL/R are the energy-integrated electron contact currents
	// (natural units; positive = into the device).
	CurrentL, CurrentR float64
	// EnergyCurrentL/R are the energy-weighted contact currents
	// ∫E·I(E)dE — the electronic heat injection that self-heating studies
	// track (§1).
	EnergyCurrentL, EnergyCurrentR float64
	// HeatL/R are the integrated phonon energy currents at the contacts.
	HeatL, HeatR float64
	// CurrentPerEnergy is the kz-summed spectral current at the left
	// contact, one entry per energy grid point.
	CurrentPerEnergy []float64
	// DissipationPerAtom is the per-atom electron-phonon particle
	// exchange, the quantity behind the self-heating map of Fig. 1(d).
	DissipationPerAtom []float64
	// EnergyDissipationPerAtom is the energy-weighted exchange
	// (Joule heat delivered to the lattice per atom).
	EnergyDissipationPerAtom []float64
}

// Timings records where a run's wall time went — the per-phase breakdown
// the paper reports in Tables 7 and 8.
type Timings struct {
	GF, SSE time.Duration
}

// Result is the outcome of a self-consistent run.
type Result struct {
	Iterations int
	Converged  bool
	// Recoveries counts the rank failures a fault-tolerant distributed run
	// survived by rebuilding the cluster and resuming from a checkpoint
	// (always zero for serial runs; see RunDistributedFT).
	Recoveries int
	// Residuals[i] is the relative G change after iteration i.
	Residuals []float64
	// Timings is the accumulated per-phase wall time.
	Timings Timings

	GLess, GGtr         *tensor.GTensor
	DLess, DGtr         *tensor.DTensor
	SigmaLess, SigmaGtr *tensor.GTensor
	PiLess, PiGtr       *tensor.DTensor

	Obs Observables

	// EGrid is the active energy grid the result was solved on (nil for
	// plain uniform-grid runs). CheckpointOf copies it into checkpoints
	// so a converged adaptive grid travels with the Σ≷ it produced.
	EGrid *egrid.State
	// Adapt summarizes the adaptive refinement loop that produced the
	// result (nil unless RunAdaptiveCtx ran it).
	Adapt *AdaptReport
}

// Simulator couples a device with solver options and cached operators.
type Simulator struct {
	Dev    *device.Device
	Kernel *sse.Kernel
	Opts   Options

	h, s []*cmat.BlockTri // per kz
	phi  []*cmat.BlockTri // per qz

	// grid is the active energy grid the GF phase solves on: the full
	// fine grid unless the adaptive runner installed a subset (SetGrid).
	grid *egrid.Grid
}

// New builds a simulator, generating and caching H(kz), S(kz), Φ(qz).
func New(dev *device.Device, opts Options) *Simulator {
	if opts.MaxIter <= 0 {
		opts.MaxIter = 1
	}
	if opts.Mixing <= 0 || opts.Mixing > 1 {
		opts.Mixing = 1
	}
	if opts.Workers <= 0 {
		opts.Workers = runtime.GOMAXPROCS(0)
	}
	s := &Simulator{Dev: dev, Kernel: sse.NewKernel(dev), Opts: opts}
	p := dev.P
	s.h = make([]*cmat.BlockTri, p.Nkz)
	s.s = make([]*cmat.BlockTri, p.Nkz)
	for kz := 0; kz < p.Nkz; kz++ {
		s.h[kz] = dev.Hamiltonian(kz)
		s.s[kz] = dev.Overlap(kz)
	}
	s.phi = make([]*cmat.BlockTri, p.Nqz)
	for qz := 0; qz < p.Nqz; qz++ {
		s.phi[qz] = dev.Dynamical(qz)
	}
	s.grid = egrid.Uniform(p.NE, p.Emin, p.Emax)
	return s
}

// SetGrid installs an active energy grid: subsequent GF phases solve the
// electron points only at its active energies (with its quadrature
// weights) and fill the skipped energies by interpolation. The grid must
// live on the device's fine grid. The adaptive runner calls this between
// refinement rounds; a nil grid restores the full uniform grid.
func (s *Simulator) SetGrid(g *egrid.Grid) error {
	p := s.Dev.P
	if g == nil {
		s.grid = egrid.Uniform(p.NE, p.Emin, p.Emax)
		return nil
	}
	if g.NE() != p.NE || g.Emin() != p.Emin || g.Emax() != p.Emax {
		return fmt.Errorf("core: grid over %d points on [%g, %g] does not match device (%d points on [%g, %g])",
			g.NE(), g.Emin(), g.Emax(), p.NE, p.Emin, p.Emax)
	}
	s.grid = g
	return nil
}

// EnergyGrid returns the active energy grid the GF phase currently
// solves on (the full uniform grid unless SetGrid installed a subset).
func (s *Simulator) EnergyGrid() *egrid.Grid { return s.grid }

// scatteringBlocks assembles the per-RGF-block electron scattering matrices
// for one (kz, E) point from the per-atom self-energy tensors (diagonal
// atom blocks only, as in the paper).
func (s *Simulator) scatteringBlocks(kz, e int, sigR, sigL, sigG *tensor.GTensor) rgf.Scattering {
	p := s.Dev.P
	if sigR == nil {
		return rgf.Scattering{}
	}
	bs := p.ElectronBlockSize()
	apb := p.AtomsPerBlock()
	out := rgf.Scattering{
		R:    make([]*cmat.Dense, p.Bnum),
		Less: make([]*cmat.Dense, p.Bnum),
		Gtr:  make([]*cmat.Dense, p.Bnum),
	}
	for blk := 0; blk < p.Bnum; blk++ {
		r := cmat.GetDense(bs, bs)
		l := cmat.GetDense(bs, bs)
		g := cmat.GetDense(bs, bs)
		for la := 0; la < apb; la++ {
			a := blk*apb + la
			off := la * p.Norb
			r.SetSubmatrix(off, off, sigR.Block(kz, e, a))
			l.SetSubmatrix(off, off, sigL.Block(kz, e, a))
			g.SetSubmatrix(off, off, sigG.Block(kz, e, a))
		}
		out.R[blk], out.Less[blk], out.Gtr[blk] = r, l, g
	}
	return out
}

// phononScatteringBlocks assembles the per-RGF-block phonon self-energy
// matrices for one (qz, ω) point. Neighbor couplings within an RGF block
// are kept; the few couplings that straddle block boundaries are dropped
// (a truncation the block-tridiagonal Keldysh recursion requires; the full
// couplings still travel through the SSE data path).
func (s *Simulator) phononScatteringBlocks(qz, w int, piR, piL, piG *tensor.DTensor) rgf.PhononScattering {
	p := s.Dev.P
	if piR == nil {
		return rgf.PhononScattering{}
	}
	bs := p.PhononBlockSize()
	apb := p.AtomsPerBlock()
	out := rgf.PhononScattering{
		R:    make([]*cmat.Dense, p.Bnum),
		Less: make([]*cmat.Dense, p.Bnum),
		Gtr:  make([]*cmat.Dense, p.Bnum),
	}
	for blk := 0; blk < p.Bnum; blk++ {
		out.R[blk] = cmat.GetDense(bs, bs)
		out.Less[blk] = cmat.GetDense(bs, bs)
		out.Gtr[blk] = cmat.GetDense(bs, bs)
	}
	place := func(dst []*cmat.Dense, t *tensor.DTensor, a, f, slot int) {
		blk := s.Dev.BlockOf(a)
		if s.Dev.BlockOf(f) != blk {
			return
		}
		ra := (a - blk*apb) * p.N3D
		rf := (f - blk*apb) * p.N3D
		dst[blk].SetSubmatrix(ra, rf, t.Block(qz, w, a, slot))
	}
	for a := 0; a < p.NA; a++ {
		place(out.R, piR, a, a, p.NB)
		place(out.Less, piL, a, a, p.NB)
		place(out.Gtr, piG, a, a, p.NB)
		for b := 0; b < p.NB; b++ {
			f := s.Dev.Neigh[a][b]
			if f < 0 {
				continue
			}
			place(out.R, piR, a, f, b)
			place(out.Less, piL, a, f, b)
			place(out.Gtr, piG, a, f, b)
		}
	}
	return out
}

// extractElectron copies the per-atom diagonal blocks of an RGF solution
// into the 5-D tensors at (kz, e).
func (s *Simulator) extractElectron(kz, e int, res *rgf.ElectronResult, gl, gg *tensor.GTensor) {
	p := s.Dev.P
	apb := p.AtomsPerBlock()
	for blk := 0; blk < p.Bnum; blk++ {
		for la := 0; la < apb; la++ {
			a := blk*apb + la
			off := la * p.Norb
			gl.Block(kz, e, a).CopyFrom(res.GLess[blk].Submatrix(off, off+p.Norb, off, off+p.Norb))
			gg.Block(kz, e, a).CopyFrom(res.GGtr[blk].Submatrix(off, off+p.Norb, off, off+p.Norb))
		}
	}
}

// extractPhonon copies the per-atom self blocks and in-block neighbor
// couplings of a phonon RGF solution into the 6-D tensors at (qz, w).
func (s *Simulator) extractPhonon(qz, w int, res *rgf.PhononResult, dl, dg *tensor.DTensor) {
	p := s.Dev.P
	apb := p.AtomsPerBlock()
	grab := func(src []*cmat.Dense, dst *tensor.DTensor, a, f, slot int) {
		blk := s.Dev.BlockOf(a)
		if s.Dev.BlockOf(f) != blk {
			return // cross-block coupling: not available from diagonal RGF blocks
		}
		ra := (a - blk*apb) * p.N3D
		rf := (f - blk*apb) * p.N3D
		dst.Block(qz, w, a, slot).CopyFrom(src[blk].Submatrix(ra, ra+p.N3D, rf, rf+p.N3D))
	}
	for a := 0; a < p.NA; a++ {
		grab(res.DLess, dl, a, a, p.NB)
		grab(res.DGtr, dg, a, a, p.NB)
		for b := 0; b < p.NB; b++ {
			f := s.Dev.Neigh[a][b]
			if f < 0 {
				continue
			}
			grab(res.DLess, dl, a, f, b)
			grab(res.DGtr, dg, a, f, b)
		}
	}
}

// gfPhase runs the full GF phase: all (kz, E) electron points and all
// (qz, ω) phonon points, dynamically scheduled over the persistent worker
// pool (at most Workers concurrent points). It returns fresh Green's
// function tensors and accumulated contact observables.
func (s *Simulator) gfPhase(ctx context.Context, sigR, sigL, sigG *tensor.GTensor, piR, piL, piG *tensor.DTensor) (
	gl, gg *tensor.GTensor, dl, dg *tensor.DTensor, o Observables, err error) {
	p := s.Dev.P
	gl = tensor.NewGTensor(p.Nkz, p.NE, p.NA, p.Norb)
	gg = tensor.NewGTensor(p.Nkz, p.NE, p.NA, p.Norb)
	dl = tensor.NewDTensor(p.Nqz, p.Nw, p.NA, p.NB, p.N3D)
	dg = tensor.NewDTensor(p.Nqz, p.Nw, p.NA, p.NB, p.N3D)
	o.CurrentPerEnergy = make([]float64, p.NE)

	// The electron points come from the active energy grid — the full
	// fine grid unless the adaptive runner installed a subset — with
	// each point's quadrature weight carried explicitly. On the full
	// grid every weight is bitwise the uniform ΔE (the egrid weight
	// pin), so this accumulation reproduces the historical uniform
	// numbers exactly.
	grid := s.grid
	activeE := grid.Active()
	type job struct{ kz, e, qz, w int } // e < 0 marks a phonon job
	jobs := make([]job, 0, p.Nkz*len(activeE)+p.Nqz*p.Nw)
	for kz := 0; kz < p.Nkz; kz++ {
		for _, e := range activeE {
			jobs = append(jobs, job{kz: kz, e: e})
		}
	}
	for qz := 0; qz < p.Nqz; qz++ {
		for w := 0; w < p.Nw; w++ {
			jobs = append(jobs, job{kz: 0, e: -1, qz: qz, w: w})
		}
	}
	var next atomic.Int64
	var mu sync.Mutex
	var firstErr error
	eWeight := p.EStep() / float64(p.Nkz)
	run := func(j job) {
		if j.e >= 0 {
			scat := s.scatteringBlocks(j.kz, j.e, sigR, sigL, sigG)
			res, e := rgf.SolveElectron(s.h[j.kz], s.s[j.kz], p.Energy(j.e), scat, s.Opts.Contacts, s.Opts.Eta)
			scat.Release()
			if e != nil {
				mu.Lock()
				if firstErr == nil {
					firstErr = fmt.Errorf("electron point (kz=%d, E=%d): %w", j.kz, j.e, e)
				}
				mu.Unlock()
				return
			}
			s.extractElectron(j.kz, j.e, res, gl, gg)
			res.Release()
			we := grid.Weight(j.e) / float64(p.Nkz)
			mu.Lock()
			o.CurrentL += res.CurrentL * we
			o.CurrentR += res.CurrentR * we
			o.EnergyCurrentL += p.Energy(j.e) * res.CurrentL * we
			o.EnergyCurrentR += p.Energy(j.e) * res.CurrentR * we
			o.CurrentPerEnergy[j.e] += res.CurrentL
			mu.Unlock()
		} else {
			scat := s.phononScatteringBlocks(j.qz, j.w, piR, piL, piG)
			hw := float64(p.PhononShift(j.w)) * p.EStep()
			res, e := rgf.SolvePhonon(s.phi[j.qz], hw, scat,
				rgf.PhononContacts{KTL: s.Opts.PhononKTL, KTR: s.Opts.PhononKTR}, s.Opts.Eta)
			scat.Release()
			if e != nil {
				mu.Lock()
				if firstErr == nil {
					firstErr = fmt.Errorf("phonon point (qz=%d, ω=%d): %w", j.qz, j.w, e)
				}
				mu.Unlock()
				return
			}
			s.extractPhonon(j.qz, j.w, res, dl, dg)
			res.Release()
			mu.Lock()
			o.HeatL += res.HeatL * eWeight
			o.HeatR += res.HeatR * eWeight
			mu.Unlock()
		}
	}
	workers := s.Opts.Workers
	if workers > len(jobs) {
		workers = len(jobs)
	}
	tasks := make([]pool.Task, workers)
	for i := range tasks {
		tasks[i] = func() {
			for {
				idx := int(next.Add(1)) - 1
				if idx >= len(jobs) {
					return
				}
				// Cancellation is checked per grid point, so a cancelled run
				// drains within one RGF solve rather than one full phase.
				if cerr := ctx.Err(); cerr != nil {
					mu.Lock()
					if firstErr == nil {
						firstErr = fmt.Errorf("core: GF phase cancelled: %w", cerr)
					}
					mu.Unlock()
					return
				}
				run(jobs[idx])
			}
		}
	}
	pool.Do(tasks...)
	if firstErr != nil {
		return nil, nil, nil, nil, o, firstErr
	}
	// On a partial grid, fill the skipped energies of G^≷ (and of the
	// spectral current, for reporting) by linear interpolation between
	// the nearest solved neighbors: the SSE convolution consumes every
	// fine-grid energy, so the tensors must be dense even when the
	// solves are not.
	if !grid.Full() {
		interpolateInactiveG(gl, grid)
		interpolateInactiveG(gg, grid)
		grid.InterpolateValues(o.CurrentPerEnergy)
	}
	return gl, gg, dl, dg, o, nil
}

// Run executes the self-consistent Born loop: Σ = Π = 0, GF phase, SSE
// phase, mix, repeat until the Green's functions stop changing (§2). It is
// RunCtx under context.Background() — uncancellable, for batch callers.
func (s *Simulator) Run() (*Result, error) { return s.RunCtx(context.Background()) }

// RunCtx is Run bound to a context. Cancellation is observed at every Born
// iteration boundary and inside the GF phase's per-grid-point loop, so a
// cancelled run returns (with an error wrapping ctx.Err()) well within one
// Born iteration. The partially computed result is discarded; callers that
// need restartability should checkpoint via OnIteration or use the
// fault-tolerant distributed runner.
func (s *Simulator) RunCtx(ctx context.Context) (*Result, error) { return s.run(ctx, nil) }

// run is the Born loop, optionally seeded with checkpointed self-energies.
func (s *Simulator) run(ctx context.Context, ck *Checkpoint) (*Result, error) {
	res := &Result{}
	var sigR, sigL, sigG *tensor.GTensor
	var piR, piL, piG *tensor.DTensor
	var prevL, prevG *tensor.GTensor
	if ck != nil {
		sigL, sigG = ck.SigmaLess.Clone(), ck.SigmaGtr.Clone()
		piL, piG = ck.PiLess.Clone(), ck.PiGtr.Clone()
		sigR = sse.Retarded(sigL, sigG)
		piR = sse.RetardedD(piL, piG)
	}
	var anderson *andersonState
	if s.Opts.Mixer == Anderson {
		h := s.Opts.AndersonHistory
		if h <= 0 {
			h = 3
		}
		anderson = newAndersonState(h)
	}

	for iter := 0; iter < s.Opts.MaxIter; iter++ {
		if cerr := ctx.Err(); cerr != nil {
			return nil, fmt.Errorf("core: run cancelled before iteration %d: %w", iter+1, cerr)
		}
		st := IterStats{Iter: iter + 1, Residual: math.NaN()}
		var snap []obs.TimerStat
		if s.Opts.OnIteration != nil && obs.Enabled() {
			snap = obs.TimerStats()
		}
		t0 := time.Now()
		gl, gg, dl, dg, o, err := s.gfPhase(ctx, sigR, sigL, sigG, piR, piL, piG)
		if err != nil {
			return nil, err
		}
		st.GF = time.Since(t0)
		res.Timings.GF += st.GF
		obsSpanGF.Observe(st.GF)
		res.GLess, res.GGtr, res.DLess, res.DGtr = gl, gg, dl, dg
		res.Obs = o
		res.Iterations = iter + 1

		if prevL != nil {
			r := relChange(prevL, gl)
			if rg := relChange(prevG, gg); rg > r {
				r = rg
			}
			if math.IsNaN(r) || math.IsInf(r, 0) {
				return res, errors.New("core: Born iteration diverged (non-finite Green's functions)")
			}
			res.Residuals = append(res.Residuals, r)
			st.Residual = r
			if r < s.Opts.Tol {
				res.Converged = true
				st.Converged = true
				s.emitIterStats(&st, t0, snap)
				break
			}
		}
		prevL, prevG = gl, gg

		t1 := time.Now()
		out := s.Kernel.ComputePhaseParallel(sse.PhaseInput{GLess: gl, GGtr: gg, DLess: dl, DGtr: dg}, s.Opts.Variant, s.Opts.Workers)
		st.SSE = time.Since(t1)
		res.Timings.SSE += st.SSE
		obsSpanSSE.Observe(st.SSE)
		t2 := time.Now()
		sse.AntiHermitize(out.SigmaLess)
		sse.AntiHermitize(out.SigmaGtr)
		switch {
		case anderson != nil:
			if sigL == nil {
				sigL = tensor.NewGTensor(gl.Nkz, gl.NE, gl.NA, gl.Norb)
				sigG = tensor.NewGTensor(gl.Nkz, gl.NE, gl.NA, gl.Norb)
				piL = tensor.NewDTensor(dl.Nqz, dl.Nw, dl.NA, dl.NB, dl.N3D)
				piG = tensor.NewDTensor(dl.Nqz, dl.Nw, dl.NA, dl.NB, dl.N3D)
			}
			x := concatSelfEnergies(sigL, sigG, piL, piG)
			g := concatSelfEnergies(out.SigmaLess, out.SigmaGtr, out.PiLess, out.PiGtr)
			scatterSelfEnergies(anderson.update(x, g, s.Opts.Mixing), sigL, sigG, piL, piG)
		case sigL == nil:
			sigL, sigG = out.SigmaLess, out.SigmaGtr
			piL, piG = out.PiLess, out.PiGtr
		default:
			mixG(sigL, out.SigmaLess, s.Opts.Mixing)
			mixG(sigG, out.SigmaGtr, s.Opts.Mixing)
			mixD(piL, out.PiLess, s.Opts.Mixing)
			mixD(piG, out.PiGtr, s.Opts.Mixing)
		}
		sigR = sse.Retarded(sigL, sigG)
		piR = sse.RetardedD(piL, piG)
		st.Mix = time.Since(t2)
		obsSpanMix.Observe(st.Mix)
		res.SigmaLess, res.SigmaGtr = sigL, sigG
		res.PiLess, res.PiGtr = piL, piG
		s.emitIterStats(&st, t0, snap)
	}
	res.Obs.DissipationPerAtom, res.Obs.EnergyDissipationPerAtom = s.dissipationPerAtom(res)
	return res, nil
}

// emitIterStats completes an iteration's stats (wall time, span deltas) and
// delivers them to the OnIteration hook, if any. iterStart is the instant
// the iteration began; snap is the obs timer snapshot taken then (nil when
// obs recording was off or no hook is set).
func (s *Simulator) emitIterStats(st *IterStats, iterStart time.Time, snap []obs.TimerStat) {
	if s.Opts.OnIteration == nil {
		return
	}
	st.Wall = time.Since(iterStart)
	if snap != nil {
		st.Spans = obs.TimerDelta(snap)
	}
	s.Opts.OnIteration(*st)
}

// relChange returns max|a−b| / (1 + max|b|).
func relChange(a, b *tensor.GTensor) float64 {
	return a.MaxAbsDiff(b) / (1 + maxAbsG(b))
}

func maxAbsG(g *tensor.GTensor) float64 {
	var m float64
	for _, v := range g.Data {
		if a := math.Hypot(real(v), imag(v)); a > m {
			m = a
		}
	}
	return m
}

func mixG(dst, fresh *tensor.GTensor, mix float64) {
	c := complex(mix, 0)
	for i := range dst.Data {
		dst.Data[i] = (1-c)*dst.Data[i] + c*fresh.Data[i]
	}
}

func mixD(dst, fresh *tensor.DTensor, mix float64) {
	c := complex(mix, 0)
	for i := range dst.Data {
		dst.Data[i] = (1-c)*dst.Data[i] + c*fresh.Data[i]
	}
}

// concatSelfEnergies flattens the four self-energy tensors into one vector
// for the Anderson mixer.
func concatSelfEnergies(sl, sg *tensor.GTensor, pl, pg *tensor.DTensor) []complex128 {
	out := make([]complex128, 0, 2*len(sl.Data)+2*len(pl.Data))
	out = append(out, sl.Data...)
	out = append(out, sg.Data...)
	out = append(out, pl.Data...)
	out = append(out, pg.Data...)
	return out
}

// scatterSelfEnergies is the inverse of concatSelfEnergies.
func scatterSelfEnergies(v []complex128, sl, sg *tensor.GTensor, pl, pg *tensor.DTensor) {
	n := len(sl.Data)
	m := len(pl.Data)
	copy(sl.Data, v[:n])
	copy(sg.Data, v[n:2*n])
	copy(pl.Data, v[2*n:2*n+m])
	copy(pg.Data, v[2*n+m:])
}

// dissipationPerAtom evaluates Tr[Σ^<_S·G^> − Σ^>_S·G^<] per atom, summed
// over the (kz, E) grid — the local electron-phonon exchange that paints
// the self-heating map — both unweighted (particle) and energy-weighted
// (Joule heat).
func (s *Simulator) dissipationPerAtom(r *Result) (particle, energy []float64) {
	p := s.Dev.P
	particle = make([]float64, p.NA)
	energy = make([]float64, p.NA)
	if r.SigmaLess == nil || r.GLess == nil {
		return particle, energy
	}
	// Quadrature weights come from the active grid (bitwise ΔE on the
	// full grid); inactive energies carry zero weight and are skipped.
	for kz := 0; kz < p.Nkz; kz++ {
		for e := 0; e < p.NE; e++ {
			w := s.grid.Weight(e) / float64(p.Nkz)
			if w == 0 {
				continue
			}
			for a := 0; a < p.NA; a++ {
				t := r.SigmaLess.Block(kz, e, a).TraceMul(r.GGtr.Block(kz, e, a)) -
					r.SigmaGtr.Block(kz, e, a).TraceMul(r.GLess.Block(kz, e, a))
				particle[a] += real(t) * w
				energy[a] += real(t) * w * p.Energy(e)
			}
		}
	}
	return particle, energy
}
