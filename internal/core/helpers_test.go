package core

import "negfsim/internal/sse"

// phaseInputOf extracts the SSE inputs from a run's final Green's functions.
func phaseInputOf(r *Result) sse.PhaseInput {
	return sse.PhaseInput{GLess: r.GLess, GGtr: r.GGtr, DLess: r.DLess, DGtr: r.DGtr}
}
