package core

import (
	"context"
	"math"
	"testing"

	"negfsim/internal/device"
	"negfsim/internal/egrid"
)

// adaptZooConfig is the adaptive-vs-uniform test workload: a small zoo
// device with a fine energy grid whose window is wide relative to the
// bias, so the spectral current concentrates in a narrow band — the
// regime adaptation is built for (the far field decays exponentially
// through the Fermi factors).
func adaptZooConfig(spec device.Spec, ne int) RunConfig {
	cfg := DefaultRunConfig()
	cfg.Device = device.WrapSpec(spec)
	cfg.MaxIter = 40
	cfg.Mixer = "anderson"
	cfg.Mixing = 0.8
	cfg.Tol = 1e-9
	cfg.Bias = 0.3
	_ = ne // the spec carries NE; kept for call-site readability
	return cfg
}

// runUniform converges the config on the full grid.
func runUniform(t *testing.T, cfg RunConfig) *Result {
	t.Helper()
	sim, err := cfg.NewSimulator()
	if err != nil {
		t.Fatal(err)
	}
	res, err := sim.Run()
	if err != nil {
		t.Fatal(err)
	}
	return res
}

// runAdaptive converges the config under the adaptive loop.
func runAdaptive(t *testing.T, cfg RunConfig) *Result {
	t.Helper()
	sim, err := cfg.NewSimulator()
	if err != nil {
		t.Fatal(err)
	}
	ac, ok := cfg.AdaptConfig()
	if !ok {
		t.Fatal("config has no adapt block")
	}
	res, _, err := sim.RunAdaptiveCtx(context.Background(), ac)
	if err != nil {
		t.Fatal(err)
	}
	return res
}

// The adaptive loop must reproduce the uniform-grid physics to the
// configured current tolerance on every device-zoo kind. On the
// resonance-dominated kinds (cnt, chain) it must do so with at most half
// the energy points — the ISSUE's acceptance bar.
func TestAdaptiveMatchesUniformZoo(t *testing.T) {
	if testing.Short() {
		t.Skip("long self-consistent runs; skipped under -short")
	}
	const ne = 96
	cases := []struct {
		kind      string
		spec      device.Spec
		maxActive int // 0 means "no point budget asserted"
	}{
		// N=6 zigzag: metallic, so the bias window actually conducts.
		{"cnt", device.CNT{N: 6, M: 0, Cols: 6, Subbands: 2,
			NE: ne, Nw: 4, NB: 3, Bnum: 3, Nkz: 1, Emin: -2.5, Emax: 2.5}, ne / 2},
		{"chain", device.Chain{Cols: 12, Rows: 1, Junction: 6,
			NE: ne, Nw: 4, NB: 3, Bnum: 4, Nkz: 1, Emin: -2.5, Emax: 2.5}, ne / 2},
		{"nanowire", device.Nanowire{Params: device.Params{
			Nkz: 1, Nqz: 1, NE: ne, Nw: 4, NA: 24, NB: 4, Norb: 2, N3D: 3,
			Rows: 4, Bnum: 3, Emin: -2.5, Emax: 2.5, Seed: 7}}, 0},
		{"gnr", device.GNR{Width: 3, Layers: 1, Cols: 8,
			NE: ne, Nw: 4, NB: 3, Bnum: 4, Nkz: 1, Emin: -3, Emax: 3}, 0},
	}
	for _, tc := range cases {
		tc := tc
		t.Run(tc.kind, func(t *testing.T) {
			t.Parallel()
			cfg := adaptZooConfig(tc.spec, ne)
			uni := runUniform(t, cfg)

			cfg.Adapt = &AdaptSpec{Mode: "grid+sigma", TolCurrent: 1e-6}
			ada := runAdaptive(t, cfg)
			if ada.Adapt == nil || ada.EGrid == nil {
				t.Fatal("adaptive result missing Adapt report / EGrid state")
			}
			rep := ada.Adapt

			tol := 1e-6 * math.Max(1, math.Abs(uni.Obs.CurrentL))
			if d := math.Abs(uni.Obs.CurrentL - ada.Obs.CurrentL); d > tol {
				t.Errorf("current differs by %g (> %g): uniform %g, adaptive %g on %d/%d points",
					d, tol, uni.Obs.CurrentL, ada.Obs.CurrentL, rep.PointsActive, rep.PointsFine)
			}
			// T(E): the interpolated spectral current must track the
			// uniform one everywhere, scaled to the spectrum's peak.
			var peak, worst float64
			for e := range uni.Obs.CurrentPerEnergy {
				peak = math.Max(peak, math.Abs(uni.Obs.CurrentPerEnergy[e]))
			}
			for e := range uni.Obs.CurrentPerEnergy {
				d := math.Abs(uni.Obs.CurrentPerEnergy[e] - ada.Obs.CurrentPerEnergy[e])
				worst = math.Max(worst, d)
			}
			if worst > 1e-3*peak+1e-12 {
				t.Errorf("per-energy current deviates by %g (peak %g)", worst, peak)
			}
			if math.Abs(uni.Obs.CurrentL) < 1e-9 {
				t.Errorf("test device carries no current (%g); the comparison is vacuous", uni.Obs.CurrentL)
			}
			t.Logf("%s: %d/%d points, %d rounds (%s), I=%g",
				tc.kind, rep.PointsActive, rep.PointsFine, rep.Rounds, rep.Reason, uni.Obs.CurrentL)
			if tc.maxActive > 0 && rep.PointsActive > tc.maxActive {
				t.Errorf("used %d of %d points, want ≤ %d", rep.PointsActive, ne, tc.maxActive)
			}
			if rep.Solves >= rep.UniformSolves {
				t.Errorf("adaptive ran %d solves, uniform equivalent %d — no saving", rep.Solves, rep.UniformSolves)
			}
			if rep.Reason == "" || rep.Rounds < 1 {
				t.Errorf("implausible report: %+v", rep)
			}
		})
	}
}

// A uniform-grid run through the weight-aware accumulation must be
// bit-identical to one with the grid installed explicitly, and its
// weights bitwise equal to the ΔE the pre-adaptive code multiplied by —
// the "no behavior change when adaptation is off" regression pin.
func TestUniformRunBitCompatible(t *testing.T) {
	opts := DefaultOptions()
	opts.MaxIter = 2
	opts.Workers = 1 // fixed accumulation order: bitwise comparison
	base := miniSim(t, opts)
	p := base.Dev.P
	for e := 0; e < p.NE; e++ {
		if w := base.EnergyGrid().Weight(e); w != p.EStep() {
			t.Fatalf("uniform weight at %d is %g, want EStep %g bitwise", e, w, p.EStep())
		}
	}
	a, err := base.Run()
	if err != nil {
		t.Fatal(err)
	}
	explicit := miniSim(t, opts)
	if err := explicit.SetGrid(egrid.Uniform(p.NE, p.Emin, p.Emax)); err != nil {
		t.Fatal(err)
	}
	b, err := explicit.Run()
	if err != nil {
		t.Fatal(err)
	}
	if a.Obs.CurrentL != b.Obs.CurrentL || a.Obs.CurrentR != b.Obs.CurrentR {
		t.Fatalf("explicit uniform grid changed the current: %v vs %v", a.Obs.CurrentL, b.Obs.CurrentL)
	}
	if a.Obs.HeatL != b.Obs.HeatL || a.Obs.EnergyCurrentL != b.Obs.EnergyCurrentL {
		t.Fatal("explicit uniform grid changed heat/energy current")
	}
	if d := a.GLess.MaxAbsDiff(b.GLess); d != 0 {
		t.Fatalf("G^< differs by %g", d)
	}
	for e, v := range a.Obs.CurrentPerEnergy {
		if v != b.Obs.CurrentPerEnergy[e] {
			t.Fatalf("per-energy current differs at %d", e)
		}
	}
}

// The integrated current must equal the weighted sum of the per-energy
// spectrum — the quadrature identity the controller relies on.
func TestIntegratedCurrentIsWeightedSpectrum(t *testing.T) {
	opts := DefaultOptions()
	opts.MaxIter = 1
	opts.Workers = 1
	s := miniSim(t, opts)
	res, err := s.Run()
	if err != nil {
		t.Fatal(err)
	}
	p := s.Dev.P
	sum := s.EnergyGrid().Integrate(res.Obs.CurrentPerEnergy) / float64(p.Nkz)
	if rel := math.Abs(sum-res.Obs.CurrentL) / math.Max(1e-30, math.Abs(res.Obs.CurrentL)); rel > 1e-12 {
		t.Fatalf("weighted spectrum %g vs integrated current %g (rel %g)", sum, res.Obs.CurrentL, rel)
	}
}

// Checkpoint/resume with adaptation on: the checkpoint carries the grid,
// a resumed adaptive run reconverges to the same answer (1e-8 pin)
// without re-running the refinement ladder, and a non-adaptive resume
// from a partial-grid checkpoint is refused.
func TestAdaptiveCheckpointResume(t *testing.T) {
	if testing.Short() {
		t.Skip("long self-consistent runs; skipped under -short")
	}
	cfg := adaptZooConfig(device.CNT{N: 6, M: 0, Cols: 6, Subbands: 2,
		NE: 96, Nw: 4, NB: 3, Bnum: 3, Nkz: 1, Emin: -2.5, Emax: 2.5}, 96)
	cfg.Adapt = &AdaptSpec{Mode: "grid+sigma", TolCurrent: 1e-6}
	first := runAdaptive(t, cfg)
	ck := CheckpointOf(cfg.Device, first)
	if ck.EGrid == nil {
		t.Fatal("adaptive checkpoint must carry the grid state")
	}
	if ck.EGrid.IsFull() {
		t.Fatal("test device resolved on the full grid; adaptation saved nothing")
	}
	if err := ck.CompatibleGrid(false); err == nil {
		t.Fatal("partial-grid checkpoint must not seed a non-adaptive run")
	}
	if err := ck.CompatibleGrid(true); err != nil {
		t.Fatal(err)
	}

	sim, err := cfg.NewSimulator()
	if err != nil {
		t.Fatal(err)
	}
	ac, _ := cfg.AdaptConfig()
	ac.Resume = ck
	resumed, _, err := sim.RunAdaptiveCtx(context.Background(), ac)
	if err != nil {
		t.Fatal(err)
	}
	if d := math.Abs(resumed.Obs.CurrentL - first.Obs.CurrentL); d > 1e-8 {
		t.Fatalf("resumed adaptive run drifted by %g", d)
	}
	if resumed.Adapt.Rounds > first.Adapt.Rounds {
		t.Fatalf("warm resume ran %d rounds, cold ran %d — the saved grid was ignored",
			resumed.Adapt.Rounds, first.Adapt.Rounds)
	}
	got, want := resumed.EGrid.Active, first.EGrid.Active
	if len(got) != len(want) {
		t.Fatalf("resumed grid has %d active points, want %d", len(got), len(want))
	}
}

// One adaptive run over the distributed fault-tolerant runner: every
// round's GF ownership rebalances over the active point set, and the
// result matches the serial adaptive trajectory.
func TestAdaptiveDistributedMatchesSerial(t *testing.T) {
	if testing.Short() {
		t.Skip("long self-consistent runs; skipped under -short")
	}
	cfg := adaptZooConfig(device.Chain{Cols: 12, Rows: 1, Junction: 6,
		NE: 64, Nw: 4, NB: 3, Bnum: 4, Nkz: 1, Emin: -2.5, Emax: 2.5}, 64)
	cfg.MaxIter = 12
	cfg.Adapt = &AdaptSpec{Mode: "grid", TolCurrent: 1e-6}
	serial := runAdaptive(t, cfg)

	sim, err := cfg.NewSimulator()
	if err != nil {
		t.Fatal(err)
	}
	ac, _ := cfg.AdaptConfig()
	ac.Dist = &DistConfig{TE: 2, TA: 2}
	dist, bytes, err := sim.RunAdaptiveCtx(context.Background(), ac)
	if err != nil {
		t.Fatal(err)
	}
	if bytes == 0 {
		t.Fatal("distributed rounds must move data")
	}
	if d := math.Abs(serial.Obs.CurrentL - dist.Obs.CurrentL); d > 1e-8 {
		t.Fatalf("distributed adaptive current differs from serial by %g", d)
	}
	if serial.Adapt.Rounds != dist.Adapt.Rounds || serial.Adapt.PointsActive != dist.Adapt.PointsActive {
		t.Fatalf("refinement trajectories diverged: serial %+v, dist %+v", serial.Adapt, dist.Adapt)
	}
}

// Sanity for the active-subset plumbing itself: a hand-built sparse grid
// still produces finite physics and fills every inactive energy of the
// spectral current by interpolation.
func TestSparseGridRunInterpolates(t *testing.T) {
	opts := DefaultOptions()
	opts.MaxIter = 1
	s := miniSim(t, opts)
	p := s.Dev.P
	g, err := egrid.FromActive(p.NE, p.Emin, p.Emax, []int{0, 3, 8, 12, p.NE - 1})
	if err != nil {
		t.Fatal(err)
	}
	if err := s.SetGrid(g); err != nil {
		t.Fatal(err)
	}
	res, err := s.Run()
	if err != nil {
		t.Fatal(err)
	}
	for e, v := range res.Obs.CurrentPerEnergy {
		if math.IsNaN(v) {
			t.Fatalf("NaN spectral current at %d", e)
		}
	}
	// An interior inactive point must sit on the chord of its active
	// neighbors (the interpolation actually ran).
	cpe := res.Obs.CurrentPerEnergy
	wantMid := cpe[3] + (cpe[8]-cpe[3])*float64(5-3)/float64(8-3)
	if d := math.Abs(cpe[5] - wantMid); d > 1e-12*math.Max(1, math.Abs(wantMid)) {
		t.Fatalf("inactive point not interpolated: %g vs %g", cpe[5], wantMid)
	}
	if err := s.SetGrid(nil); err != nil {
		t.Fatal(err)
	}
	if !s.EnergyGrid().Full() {
		t.Fatal("SetGrid(nil) must restore the uniform grid")
	}
}
