package core

import (
	"testing"
)

func TestRunDistributedMatchesSerialTrajectory(t *testing.T) {
	opts := DefaultOptions()
	opts.MaxIter = 3
	serial, err := miniSim(t, opts).Run()
	if err != nil {
		t.Fatal(err)
	}
	dist, bytes, err := miniSim(t, opts).RunDistributed(2, 2)
	if err != nil {
		t.Fatal(err)
	}
	if bytes == 0 {
		t.Fatal("distributed run must move data")
	}
	if d := serial.GLess.MaxAbsDiff(dist.GLess); d > 1e-8 {
		t.Fatalf("distributed trajectory diverged from serial: %g", d)
	}
	if serial.Iterations != dist.Iterations {
		t.Fatalf("iteration counts differ: %d vs %d", serial.Iterations, dist.Iterations)
	}
	// Per-iteration traffic is (iterations−?) × one exchange; sanity check
	// against the single-phase measurement.
	one, err := miniSim(t, opts).DistributedSSE(
		phaseInputOf(serial), 2, 2)
	if err != nil {
		t.Fatal(err)
	}
	if bytes < one.MeasuredBytes {
		t.Fatalf("full run (%d B) should move at least one phase's traffic (%d B)", bytes, one.MeasuredBytes)
	}
}

func TestTimingsPopulated(t *testing.T) {
	opts := DefaultOptions()
	opts.MaxIter = 2
	res, err := miniSim(t, opts).Run()
	if err != nil {
		t.Fatal(err)
	}
	if res.Timings.GF <= 0 || res.Timings.SSE <= 0 {
		t.Fatalf("phase timings not recorded: %+v", res.Timings)
	}
}
