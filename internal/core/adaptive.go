package core

import (
	"context"
	"fmt"

	"negfsim/internal/egrid"
	"negfsim/internal/obs"
	"negfsim/internal/tensor"
)

// Adaptive-grid telemetry (see docs/OBSERVABILITY.md): the active point
// gauge tracks the current grid size, the counters accumulate refinement
// work across runs, and the egrid.refine span times the controller's
// plan/apply step between Born solves.
var (
	obsPointsActive = obs.GetGauge("egrid.points_active")
	obsRefinedPts   = obs.GetCounter("egrid.refined")
	obsCoarsenedPts = obs.GetCounter("egrid.coarsened")
	obsSigmaInterp  = obs.GetCounter("egrid.sigma_interp_hits")
	obsSpanRefine   = obs.GetTimer("egrid.refine")
)

// AdaptConfig configures the adaptive energy-grid runner
// (RunAdaptiveCtx). The zero value of every optional field keeps the
// documented default.
type AdaptConfig struct {
	// SigmaReuse, when true ("grid+sigma" mode), seeds each refinement
	// round's Born loop from the previous round's converged Σ≷/Π≷ —
	// newly activated energy points start from the self-energies the
	// SSE phase derived from the interpolated Green's functions instead
	// of a cold Born restart. False ("grid" mode) restarts each round
	// from Σ = Π = 0.
	SigmaReuse bool
	// Tol is the integrated-current tolerance driving refinement
	// (egrid.Config.TolCurrent; ≤ 0 means 1e-6).
	Tol float64
	// MinNE / MaxNE bound the active point count (≤ 0: the egrid
	// defaults — a ~NE/8 seed, the full grid as cap).
	MinNE, MaxNE int
	// MaxRounds bounds the refinement rounds (≤ 0 means 12).
	MaxRounds int
	// Resume, when non-nil, seeds round 0 with a checkpoint: its Σ≷/Π≷
	// warm-start the Born loop and, when it carries a grid state, the
	// controller resumes from that active set instead of the coarse
	// seed — the campaign warm-chaining path.
	Resume *Checkpoint
	// Dist, when non-nil, runs every round's Born loop under the
	// fault-tolerant distributed runner with this configuration (its
	// Resume field is overwritten per round). The GF energy ownership
	// rebalances to the active point set each round. Multi-process peer
	// clusters are rejected: the refinement decisions must be taken by
	// exactly one controller.
	Dist *DistConfig
}

// AdaptReport summarizes an adaptive run: the grid the controller
// settled on and what it cost relative to the uniform grid.
type AdaptReport struct {
	// Rounds is the number of Born solves the refinement loop ran.
	Rounds int
	// Iterations is the total Born iterations across all rounds (the
	// Result's own Iterations field covers only the final round).
	Iterations int
	// PointsFine and PointsActive are the fine grid size and the final
	// active point count.
	PointsFine, PointsActive int
	// Refined, Coarsened and SigmaSeeded count the point insertions,
	// removals, and the inserted points that started from interpolated
	// self-energies instead of a cold Born restart.
	Refined, Coarsened, SigmaSeeded int
	// Solves is the electron RGF solves actually performed (points ×
	// kz × iterations, summed over rounds); UniformSolves is what the
	// same rounds would have cost on the full fine grid.
	Solves, UniformSolves int
	// EstError is the controller's final error estimate on the
	// integrated current (the last round-to-round change).
	EstError float64
	// Reason is why refinement stopped: "resolved", "max_ne" or
	// "max_rounds".
	Reason string
}

// RunAdaptive is RunAdaptiveCtx under context.Background().
func (s *Simulator) RunAdaptive(ac AdaptConfig) (*Result, int64, error) {
	return s.RunAdaptiveCtx(context.Background(), ac)
}

// RunAdaptiveCtx runs the error-controlled adaptive energy-grid loop:
// seed a coarse active grid, converge the Born loop on it (solving RGF
// only at active points, interpolating the Green's functions at the
// skipped energies for the SSE phase), feed the converged spectral
// current to the egrid controller, apply its refine/coarsen plan, and
// repeat until the integrated current is resolved to tolerance. The
// returned bytes are the accumulated distributed exchange traffic (zero
// for serial rounds). The final Result carries the grid (EGrid) and the
// refinement summary (Adapt); the simulator is left holding the final
// grid.
func (s *Simulator) RunAdaptiveCtx(ctx context.Context, ac AdaptConfig) (*Result, int64, error) {
	p := s.Dev.P
	if ac.Dist != nil && ac.Dist.Cluster != nil && ac.Dist.Cluster.MultiProcess() {
		return nil, 0, fmt.Errorf("core: adaptive refinement is not supported on multi-process clusters (the grid controller must be singular)")
	}
	cfg := egrid.Config{TolCurrent: ac.Tol, MinNE: ac.MinNE, MaxNE: ac.MaxNE, MaxRounds: ac.MaxRounds}

	var ctrl *egrid.Controller
	var err error
	seed := ac.Resume
	if seed != nil {
		if cerr := seed.CompatibleDevice(s.Dev); cerr != nil {
			return nil, 0, cerr
		}
	}
	if seed != nil && seed.EGrid != nil {
		ctrl, err = egrid.ResumeController(seed.EGrid, cfg)
	} else {
		ctrl, err = egrid.NewController(p.NE, p.Emin, p.Emax, cfg)
	}
	if err != nil {
		return nil, 0, fmt.Errorf("core: adaptive grid: %w", err)
	}

	// Refinement ("scout") rounds only need the spectrum's shape to place
	// grid points, not a fully converged Born loop, so they run two
	// orders of magnitude looser than the caller's tolerance (capped at
	// 1e-2). Once the grid is resolved, one final solve at the original
	// tolerance produces the returned result.
	origTol := s.Opts.Tol
	scoutTol := origTol * 100
	if scoutTol > 1e-2 {
		scoutTol = 1e-2
	}
	defer func() { s.Opts.Tol = origTol }()

	report := &AdaptReport{PointsFine: p.NE}
	var totalBytes int64
	solve := func(ctx context.Context, grid *egrid.Grid, seed *Checkpoint) (*Result, error) {
		if err := s.SetGrid(grid); err != nil {
			return nil, err
		}
		obsPointsActive.Set(int64(grid.NumActive()))
		var res *Result
		var err error
		if ac.Dist != nil {
			dc := *ac.Dist
			dc.Resume = seed
			var bytes int64
			res, bytes, err = s.RunDistributedFTCtx(ctx, dc)
			totalBytes += bytes
		} else {
			res, err = s.run(ctx, seed)
		}
		if err != nil {
			return nil, err
		}
		report.Rounds++
		report.Iterations += res.Iterations
		report.Solves += grid.NumActive() * p.Nkz * res.Iterations
		report.UniformSolves += p.NE * p.Nkz * res.Iterations
		return res, nil
	}
	chain := func(res *Result) *Checkpoint {
		return &Checkpoint{
			Params: p, Kind: s.Dev.Kind, DevFP: s.Dev.Fingerprint(),
			Iterations: res.Iterations,
			SigmaLess:  res.SigmaLess, SigmaGtr: res.SigmaGtr,
			PiLess: res.PiLess, PiGtr: res.PiGtr,
		}
	}
	for {
		grid := ctrl.Grid()
		s.Opts.Tol = scoutTol
		res, err := solve(ctx, grid, seed)
		if err != nil {
			return nil, totalBytes, err
		}

		// The controller consumes the kz-averaged spectral current at
		// the active points (CurrentPerEnergy is the kz sum).
		values := make([]float64, p.NE)
		for _, e := range grid.Active() {
			values[e] = res.Obs.CurrentPerEnergy[e] / float64(p.Nkz)
		}
		sp := obsSpanRefine.Start()
		plan := ctrl.Plan(values)
		ctrl.Apply(plan)
		sp.End()
		report.EstError = plan.EstError

		if plan.Done {
			final := ctrl.Grid()
			if scoutTol != origTol || !final.Equal(grid) {
				// One full-tolerance solve on the resolved grid (the
				// Done round may still have dropped redundant points).
				// Σ chaining seeds it from the last scout regardless of
				// mode — the scout state is this run's own, not another
				// round's approximation.
				s.Opts.Tol = origTol
				res, err = solve(ctx, final, chain(res))
				if err != nil {
					return nil, totalBytes, err
				}
			}
			report.PointsActive = final.NumActive()
			report.Refined = ctrl.Refined()
			report.Coarsened = ctrl.Coarsened()
			report.Reason = plan.Reason
			res.EGrid = final.State()
			res.Adapt = report
			return res, totalBytes, nil
		}
		obsRefinedPts.Add(int64(len(plan.Insert)))
		obsCoarsenedPts.Add(int64(len(plan.Drop)))
		if ac.SigmaReuse {
			// Chain the converged self-energies into the next round.
			// They are full-shape, so the freshly inserted points start
			// from the Σ≷ the SSE phase built out of the interpolated
			// G≷ — the "Σ≷ interpolation" seeding.
			seed = chain(res)
			obsSigmaInterp.Add(int64(len(plan.Insert)))
			report.SigmaSeeded += len(plan.Insert)
		} else {
			seed = nil
		}
	}
}

// interpolateInactiveG fills the blocks of a Green's-function tensor at
// inactive energies by linear interpolation between the nearest active
// neighbors (per kz, per atom, elementwise). The active endpoints of the
// grid guarantee no gap extends past the window edge.
func interpolateInactiveG(t *tensor.GTensor, g *egrid.Grid) {
	active := g.Active()
	for i := 1; i < len(active); i++ {
		a, b := active[i-1], active[i]
		if b-a < 2 {
			continue
		}
		for e := a + 1; e < b; e++ {
			alpha := complex(float64(e-a)/float64(b-a), 0)
			for kz := 0; kz < t.Nkz; kz++ {
				for at := 0; at < t.NA; at++ {
					lo := t.Block(kz, a, at).Data
					hi := t.Block(kz, b, at).Data
					dst := t.Block(kz, e, at).Data
					for m := range dst {
						dst[m] = (1-alpha)*lo[m] + alpha*hi[m]
					}
				}
			}
		}
	}
}
