package core

import (
	"fmt"
	"sort"

	"negfsim/internal/comm"
	"negfsim/internal/obs"
	"negfsim/internal/sse"
	"negfsim/internal/tensor"
)

// The distributed tile computations record on the same sse.* timers as the
// shared-memory kernels (per-rank spans accumulate, like parallel tiles),
// so one dashboard covers every execution path of the SSE phase.
var (
	obsSpanDistSigma = obs.GetTimer("sse.sigma")
	obsSpanDistPi    = obs.GetTimer("sse.pi")
)

// Distributed execution of the SSE phase with the communication-avoiding
// decomposition (§4.1), carrying real tensor data over the simulated
// cluster:
//
//  1. After the GF phase, every rank owns an energy chunk of G^≷ (all kz,
//     all atoms) and a round-robin share of the (qz, ω) phonon points —
//     the natural GF-phase layout.
//  2. One alltoallv redistributes the data into the SSE layout: each rank
//     receives G^≷ on its energy window (tile + E±ℏω halo) restricted to
//     its atom tile plus the f(a, b) neighbor halo, and D^≷ for all
//     (qz, ω) on the same atom halo.
//  3. Each rank computes its Σ^≷ tile and Π^≷ partial with the tile
//     kernels (bit-identical to a slice of the serial result).
//  4. A second alltoallv returns Σ^≷ tiles to the energy owners for the
//     next GF phase and reduces the Π^≷ partials at the (qz, ω) owners.
//
// Every transferred element is counted by the cluster, so the measured
// traffic can be compared against the closed-form DaCe volume model.

// DistributedResult is the outcome of one distributed SSE phase.
type DistributedResult struct {
	SigmaLess, SigmaGtr *tensor.GTensor
	PiLess, PiGtr       *tensor.DTensor
	// MeasuredBytes is the actual traffic the exchanges generated.
	MeasuredBytes int64
	// ModelBytes is the §4.1 closed-form prediction for this decomposition.
	ModelBytes float64
}

// split returns the balanced partition boundaries of n items into parts.
func split(n, parts, i int) (lo, hi int) {
	return i * n / parts, (i + 1) * n / parts
}

// gfChunk is rank i's energy ownership in the GF layout: a contiguous
// fine-grid window whose boundaries balance the ACTIVE (actually solved)
// energy points across ranks — the point-list generalization of the
// count split, recomputed from the current grid every call so ownership
// rebalances after each adaptive refinement round. On the full grid the
// boundaries coincide with split(NE, parts, i), keeping the historical
// uniform decomposition (and its byte accounting) bit-identical. The SSE
// tile split stays count-based: the convolution's cost is per fine
// energy regardless of which points were solved.
func (s *Simulator) gfChunk(parts, i int) (lo, hi int) {
	return s.grid.ChunkBounds(parts, i)
}

// rankGrid maps rank id ↔ (energy tile, atom tile) coordinates.
func rankGrid(id, ta int) (tE, tA int) { return id / ta, id % ta }

// atomHalo returns the sorted tile ∪ neighbor atom set of an atom tile.
func (s *Simulator) atomHalo(aLo, aHi int) []int {
	set := map[int]bool{}
	for a := aLo; a < aHi; a++ {
		set[a] = true
		for _, f := range s.Dev.Neigh[a] {
			if f >= 0 {
				set[f] = true
			}
		}
	}
	out := make([]int, 0, len(set))
	for a := range set {
		out = append(out, a)
	}
	sort.Ints(out)
	return out
}

// energyHalo returns the [lo, hi) energy window of SSE tile tE including
// the ±Nω halo, clamped to the grid.
func (s *Simulator) energyHalo(tE, te int) (lo, hi int) {
	p := s.Dev.P
	eLo, eHi := split(p.NE, te, tE)
	lo = eLo - p.Nw
	if lo < 0 {
		lo = 0
	}
	hi = eHi + p.Nw
	if hi > p.NE {
		hi = p.NE
	}
	return lo, hi
}

// intersect returns the ascending indices of [aLo, aHi) ∩ [bLo, bHi).
func intersect(aLo, aHi, bLo, bHi int) []int {
	lo, hi := aLo, aHi
	if bLo > lo {
		lo = bLo
	}
	if bHi < hi {
		hi = bHi
	}
	var out []int
	for e := lo; e < hi; e++ {
		out = append(out, e)
	}
	return out
}

// packG serializes the G blocks (all kz) at the given energies and atoms.
func packG(g *tensor.GTensor, energies, atoms []int) []complex128 {
	n2 := g.Norb * g.Norb
	buf := make([]complex128, 0, len(energies)*len(atoms)*g.Nkz*n2)
	for _, e := range energies {
		for _, a := range atoms {
			for kz := 0; kz < g.Nkz; kz++ {
				buf = append(buf, g.Block(kz, e, a).Data...)
			}
		}
	}
	return buf
}

// unpackG is the mirror of packG.
func unpackG(dst *tensor.GTensor, buf []complex128, energies, atoms []int) {
	n2 := dst.Norb * dst.Norb
	pos := 0
	for _, e := range energies {
		for _, a := range atoms {
			for kz := 0; kz < dst.Nkz; kz++ {
				copy(dst.Block(kz, e, a).Data, buf[pos:pos+n2])
				pos += n2
			}
		}
	}
}

// packD serializes the D blocks (all NB+1 slots) at the given (qz, ω)
// points and atoms.
func packD(d *tensor.DTensor, points [][2]int, atoms []int) []complex128 {
	n2 := d.N3D * d.N3D
	buf := make([]complex128, 0, len(points)*len(atoms)*(d.NB+1)*n2)
	for _, qw := range points {
		for _, a := range atoms {
			for slot := 0; slot <= d.NB; slot++ {
				buf = append(buf, d.Block(qw[0], qw[1], a, slot).Data...)
			}
		}
	}
	return buf
}

// unpackD mirrors packD; when add is true the payload accumulates (the Π
// reduction), otherwise it overwrites.
func unpackD(dst *tensor.DTensor, buf []complex128, points [][2]int, atoms []int, add bool) {
	n2 := dst.N3D * dst.N3D
	pos := 0
	for _, qw := range points {
		for _, a := range atoms {
			for slot := 0; slot <= dst.NB; slot++ {
				blk := dst.Block(qw[0], qw[1], a, slot)
				if add {
					for i := range blk.Data {
						blk.Data[i] += buf[pos+i]
					}
				} else {
					copy(blk.Data, buf[pos:pos+n2])
				}
				pos += n2
			}
		}
	}
}

// phononPointsOwnedBy lists the (qz, ω) points round-robin-assigned to a
// rank.
func (s *Simulator) phononPointsOwnedBy(rank, procs int) [][2]int {
	p := s.Dev.P
	var out [][2]int
	for qz := 0; qz < p.Nqz; qz++ {
		for w := 0; w < p.Nw; w++ {
			if (qz*p.Nw+w)%procs == rank {
				out = append(out, [2]int{qz, w})
			}
		}
	}
	return out
}

// checkGrid validates a TE×TA decomposition against the device: the
// distributed SSE phase needs at least two ranks and one energy point per
// rank.
func (s *Simulator) checkGrid(te, ta int) error {
	procs := te * ta
	if procs < 2 {
		return fmt.Errorf("core: distributed SSE needs ≥ 2 ranks, got %d", procs)
	}
	if s.Dev.P.NE < procs {
		return fmt.Errorf("core: %d energies cannot feed %d ranks", s.Dev.P.NE, procs)
	}
	return nil
}

// DistributedSSE runs one SSE phase on a te×ta rank grid over the
// simulated cluster. The input tensors represent the GF phase's output in
// its natural layout; each rank only touches its own chunk of them.
func (s *Simulator) DistributedSSE(in sse.PhaseInput, te, ta int) (*DistributedResult, error) {
	if err := s.checkGrid(te, ta); err != nil {
		return nil, err
	}
	return s.distributedSSEOn(comm.NewCluster(te*ta), in, te, ta)
}

// distributedSSEOn is DistributedSSE on a caller-provided cluster, which
// may carry a shorter deadline or an armed fault plan (the fault-tolerant
// Born loop builds one per iteration), or host only one rank of a
// multi-process TCP cluster. The grid must already be validated.
//
// MeasuredBytes reports the traffic of THIS call (the cluster's byte total
// is snapshotted on entry), so persistent clusters reused across Born
// iterations account identically to the historical per-iteration ones.
func (s *Simulator) distributedSSEOn(cluster *comm.Cluster, in sse.PhaseInput, te, ta int) (*DistributedResult, error) {
	p := s.Dev.P
	procs := te * ta
	startBytes := cluster.TotalBytes()
	out := &DistributedResult{
		SigmaLess:  tensor.NewGTensor(p.Nkz, p.NE, p.NA, p.Norb),
		SigmaGtr:   tensor.NewGTensor(p.Nkz, p.NE, p.NA, p.Norb),
		PiLess:     tensor.NewDTensor(p.Nqz, p.Nw, p.NA, p.NB, p.N3D),
		PiGtr:      tensor.NewDTensor(p.Nqz, p.Nw, p.NA, p.NB, p.N3D),
		ModelBytes: comm.DaCeVolume(p, te, ta),
	}

	err := cluster.Run(func(r *comm.Rank) error {
		tE, tA := rankGrid(r.ID, ta)
		eLo, eHi := split(p.NE, te, tE)
		aLo, aHi := split(p.NA, ta, tA)
		halo := s.atomHalo(aLo, aHi)
		hLo, hHi := s.energyHalo(tE, te)

		// --- Exchange 1: GF layout → SSE layout --------------------------
		send := make([][]complex128, procs)
		for d := 0; d < procs; d++ {
			dtE, dtA := rankGrid(d, ta)
			daLo, daHi := split(p.NA, ta, dtA)
			dHalo := s.atomHalo(daLo, daHi)
			dhLo, dhHi := s.energyHalo(dtE, te)
			// My GF energy chunk intersected with d's halo window.
			myLo, myHi := s.gfChunk(procs, r.ID)
			energies := intersect(myLo, myHi, dhLo, dhHi)
			var buf []complex128
			buf = append(buf, packG(in.GLess, energies, dHalo)...)
			buf = append(buf, packG(in.GGtr, energies, dHalo)...)
			// My phonon points restricted to d's atom halo.
			pts := s.phononPointsOwnedBy(r.ID, procs)
			buf = append(buf, packD(in.DLess, pts, dHalo)...)
			buf = append(buf, packD(in.DGtr, pts, dHalo)...)
			send[d] = buf
		}
		recv, err := r.Alltoallv(send)
		if err != nil {
			return fmt.Errorf("rank %d exchange 1: %w", r.ID, err)
		}
		gl := tensor.NewGTensor(p.Nkz, p.NE, p.NA, p.Norb)
		gg := tensor.NewGTensor(p.Nkz, p.NE, p.NA, p.Norb)
		dl := tensor.NewDTensor(p.Nqz, p.Nw, p.NA, p.NB, p.N3D)
		dg := tensor.NewDTensor(p.Nqz, p.Nw, p.NA, p.NB, p.N3D)
		for from := 0; from < procs; from++ {
			fLo, fHi := s.gfChunk(procs, from)
			energies := intersect(fLo, fHi, hLo, hHi)
			n2 := p.Norb * p.Norb
			gLen := len(energies) * len(halo) * p.Nkz * n2
			buf := recv[from]
			unpackG(gl, buf[:gLen], energies, halo)
			unpackG(gg, buf[gLen:2*gLen], energies, halo)
			pts := s.phononPointsOwnedBy(from, procs)
			dLen := len(pts) * len(halo) * (p.NB + 1) * p.N3D * p.N3D
			unpackD(dl, buf[2*gLen:2*gLen+dLen], pts, halo, false)
			unpackD(dg, buf[2*gLen+dLen:], pts, halo, false)
		}

		// --- Tile computation --------------------------------------------
		preL := s.Kernel.PreprocessD(dl)
		preG := s.Kernel.PreprocessD(dg)
		sps := obsSpanDistSigma.Start()
		sigL := s.Kernel.SigmaDaCeTile(gl, preL, eLo, eHi, aLo, aHi)
		sigG := s.Kernel.SigmaDaCeTile(gg, preG, eLo, eHi, aLo, aHi)
		sps.End()
		spq := obsSpanDistPi.Start()
		piL, piG := s.Kernel.PiDaCeTile(gl, gg, eLo, eHi, aLo, aHi)
		spq.End()

		// --- Exchange 2: Σ tiles to energy owners, Π partials to point
		// owners ------------------------------------------------------------
		if cluster.MultiProcess() {
			// Ranks in other OS processes cannot assemble into this process's
			// shared tensors; replicate instead — every rank sends its full
			// tile everywhere, and each process assembles the complete result
			// locally, so the next (replicated) GF phase starts from identical
			// inputs on every peer.
			return s.assembleReplicated(r, out, sigL, sigG, piL, piG, eLo, eHi, aLo, aHi, te, ta)
		}
		tileAtoms := intersect(aLo, aHi, 0, p.NA)
		send2 := make([][]complex128, procs)
		for d := 0; d < procs; d++ {
			dLo, dHi := s.gfChunk(procs, d)
			energies := intersect(dLo, dHi, eLo, eHi)
			var buf []complex128
			buf = append(buf, packG(sigL, energies, tileAtoms)...)
			buf = append(buf, packG(sigG, energies, tileAtoms)...)
			pts := s.phononPointsOwnedBy(d, procs)
			buf = append(buf, packD(piL, pts, tileAtoms)...)
			buf = append(buf, packD(piG, pts, tileAtoms)...)
			send2[d] = buf
		}
		recv2, err := r.Alltoallv(send2)
		if err != nil {
			return fmt.Errorf("rank %d exchange 2: %w", r.ID, err)
		}
		// Assemble the shared result: every rank writes only the regions it
		// owns after exchange 2 (its GF energy chunk for Σ, its phonon
		// points for Π), so the writes are disjoint.
		myLo, myHi := s.gfChunk(procs, r.ID)
		myPts := s.phononPointsOwnedBy(r.ID, procs)
		for from := 0; from < procs; from++ {
			_, ftA := rankGrid(from, ta)
			faLo, faHi := split(p.NA, ta, ftA)
			fAtoms := intersect(faLo, faHi, 0, p.NA)
			fELo, fEHi := split(p.NE, te, from/ta)
			energies := intersect(myLo, myHi, fELo, fEHi)
			n2 := p.Norb * p.Norb
			gLen := len(energies) * len(fAtoms) * p.Nkz * n2
			buf := recv2[from]
			unpackG(out.SigmaLess, buf[:gLen], energies, fAtoms)
			unpackG(out.SigmaGtr, buf[gLen:2*gLen], energies, fAtoms)
			dLen := len(myPts) * len(fAtoms) * (p.NB + 1) * p.N3D * p.N3D
			unpackD(out.PiLess, buf[2*gLen:2*gLen+dLen], myPts, fAtoms, true)
			unpackD(out.PiGtr, buf[2*gLen+dLen:], myPts, fAtoms, true)
		}
		return nil
	})
	if err != nil {
		return nil, err
	}
	out.MeasuredBytes = cluster.TotalBytes() - startBytes
	return out, nil
}

// assembleReplicated is the multi-process variant of exchange 2: one
// alltoallv in which every rank contributes its full Σ^≷ tile and Π^≷
// partial to every peer. Receivers overwrite Σ by tile coordinates (tiles
// are disjoint across the TE×TA grid) and accumulate the Π partials (each
// covers a disjoint energy window), so every process — not just the owners
// of an energy chunk or a phonon point — ends with the complete
// self-energies. That replication costs more traffic than the
// owner-directed exchange (ModelBytes still reports the §4.1 prediction for
// the owner-directed pattern), but it is what lets the replicated GF phase
// of the SPMD peers proceed without a further broadcast.
func (s *Simulator) assembleReplicated(r *comm.Rank, out *DistributedResult,
	sigL, sigG *tensor.GTensor, piL, piG *tensor.DTensor,
	eLo, eHi, aLo, aHi, te, ta int) error {
	p := s.Dev.P
	procs := te * ta
	allPts := s.phononPointsOwnedBy(0, 1) // every (qz, ω) point
	tileAtoms := intersect(aLo, aHi, 0, p.NA)
	tileEnergies := intersect(eLo, eHi, 0, p.NE)
	var buf []complex128
	buf = append(buf, packG(sigL, tileEnergies, tileAtoms)...)
	buf = append(buf, packG(sigG, tileEnergies, tileAtoms)...)
	buf = append(buf, packD(piL, allPts, tileAtoms)...)
	buf = append(buf, packD(piG, allPts, tileAtoms)...)
	send := make([][]complex128, procs)
	for d := range send {
		send[d] = buf // Send copies; sharing one payload across peers is safe
	}
	recv, err := r.Alltoallv(send)
	if err != nil {
		return fmt.Errorf("rank %d replicated exchange 2: %w", r.ID, err)
	}
	n2 := p.Norb * p.Norb
	for from := 0; from < procs; from++ {
		ftE, ftA := rankGrid(from, ta)
		faLo, faHi := split(p.NA, ta, ftA)
		fAtoms := intersect(faLo, faHi, 0, p.NA)
		fELo, fEHi := split(p.NE, te, ftE)
		fEnergies := intersect(fELo, fEHi, 0, p.NE)
		gLen := len(fEnergies) * len(fAtoms) * p.Nkz * n2
		fbuf := recv[from]
		unpackG(out.SigmaLess, fbuf[:gLen], fEnergies, fAtoms)
		unpackG(out.SigmaGtr, fbuf[gLen:2*gLen], fEnergies, fAtoms)
		dLen := len(allPts) * len(fAtoms) * (p.NB + 1) * p.N3D * p.N3D
		unpackD(out.PiLess, fbuf[2*gLen:2*gLen+dLen], allPts, fAtoms, true)
		unpackD(out.PiGtr, fbuf[2*gLen+dLen:], allPts, fAtoms, true)
	}
	return nil
}
