package core

import (
	"math"
	"testing"
)

func TestEnergyCurrentBalance(t *testing.T) {
	if testing.Short() {
		t.Skip("long self-consistent run; skipped under -short (race gate)")
	}
	// Per energy point, particle current balances against the bath
	// (I_L(E) + I_R(E) + bath(E) = 0); weighting by E therefore balances
	// the energy flows: the Joule heat delivered to the lattice equals the
	// net electronic energy injected at the contacts.
	opts := DefaultOptions()
	opts.MaxIter = 8
	s := miniSim(t, opts)
	res, err := s.Run()
	if err != nil {
		t.Fatal(err)
	}
	var joule float64
	for _, e := range res.Obs.EnergyDissipationPerAtom {
		joule += e
	}
	lhs := res.Obs.EnergyCurrentL + res.Obs.EnergyCurrentR + joule
	scale := math.Abs(res.Obs.EnergyCurrentL) + math.Abs(res.Obs.EnergyCurrentR) + 1e-12
	// The balance is exact at the self-consistent fixed point; after a
	// finite number of Born iterations a residual of order the convergence
	// tolerance remains, plus the iη leakage.
	if math.Abs(lhs)/scale > 5e-2 {
		t.Fatalf("energy balance violated: E_L=%g E_R=%g Joule=%g (sum %g)",
			res.Obs.EnergyCurrentL, res.Obs.EnergyCurrentR, joule, lhs)
	}
	if res.Obs.EnergyCurrentL == 0 {
		t.Fatal("biased device should inject energy")
	}
}

func TestBallisticEnergyCurrentConserved(t *testing.T) {
	opts := DefaultOptions()
	opts.MaxIter = 1
	res, err := miniSim(t, opts).Run()
	if err != nil {
		t.Fatal(err)
	}
	if rel := math.Abs(res.Obs.EnergyCurrentL+res.Obs.EnergyCurrentR) /
		(1 + math.Abs(res.Obs.EnergyCurrentL)); rel > 1e-3 {
		t.Fatalf("ballistic energy current not conserved: %g vs %g",
			res.Obs.EnergyCurrentL, res.Obs.EnergyCurrentR)
	}
	// Note: even after one iteration the SSE phase has produced a first
	// Born estimate of Σ, so the dissipation map is populated — but the
	// Green's functions themselves are still ballistic, which is what the
	// conservation check above verifies.
}
