package core

import (
	"context"
	"errors"
	"fmt"
	"math"
	"os"
	"time"

	"negfsim/internal/comm"
	"negfsim/internal/obs"
	"negfsim/internal/sse"
	"negfsim/internal/tensor"
)

// Fault-tolerance telemetry of the distributed Born loop (see
// docs/OBSERVABILITY.md): recovery events and latency, and checkpoint
// traffic. The counters are global and cumulative, like every obs
// instrument.
var (
	obsRecoveries   = obs.GetCounter("core.recoveries")
	obsCkptSaves    = obs.GetCounter("core.checkpoint_saves")
	obsCkptRestores = obs.GetCounter("core.checkpoint_restores")
	obsSpanRecovery = obs.GetTimer("core.recovery")
)

// DistConfig configures a fault-tolerant distributed Born run
// (RunDistributedFT). The zero value of every optional field keeps the
// documented default, so DistConfig{TE: te, TA: ta} reproduces the plain
// RunDistributed behavior.
type DistConfig struct {
	// TE, TA are the initial energy×atom rank grid of the SSE phase.
	TE, TA int

	// Space, when ≥ 2, additionally partitions every electron retarded
	// solve of the GF phase across a spatial cluster of that many ranks —
	// the device-dimension split (rgf.DistributedRetarded). Requires
	// Bnum ≥ 2·Space−1 so every rank owns at least one interior block.
	// A persistent Cluster serves both phases, so when both axes are
	// requested its size must equal TE·TA and Space alike. When a spatial
	// rank dies, in-process runs shrink the spatial cluster by one rank
	// (degrading to the local solver below 2) and multi-process runs finish
	// fully local, always from the last checkpoint.
	Space int

	// CommTimeout bounds every Send/Recv on the simulated cluster — the
	// detection backstop for failures the cancellation channel cannot see.
	// 0 keeps comm.DefaultTimeout. Prompt detection does not depend on it:
	// a rank death cancels the cluster and unblocks survivors immediately.
	CommTimeout time.Duration

	// MaxRecoveries bounds how many rank failures the run survives before
	// giving up and returning the failure (default 2).
	MaxRecoveries int

	// RetryBackoff is the pause before a recovery attempt, scaled linearly
	// with the attempt number (default 10ms).
	RetryBackoff time.Duration

	// Fault, when non-nil, is armed on the cluster of Born iteration
	// FaultIter (0-based) and fires exactly once — the hook behind qtsim
	// -inject-fault and the recovery tests.
	Fault     *comm.FaultPlan
	FaultIter int

	// CheckpointPath, when non-empty, additionally persists the in-memory
	// checkpoint to this gob file after every completed iteration (the file
	// qtsim -checkpoint writes and LoadCheckpoint reads).
	CheckpointPath string

	// Resume, when non-nil, seeds the run with a checkpoint's self-energies
	// instead of starting from Σ = Π = 0.
	Resume *Checkpoint

	// Cluster, when non-nil, is a caller-provided persistent communicator —
	// typically one peer of a multi-process TCP cluster
	// (comm.NewClusterTCP) — used for every Born iteration instead of the
	// per-iteration in-process clusters. Its size must equal TE·TA. The
	// caller owns its lifecycle (Close); the run never unregisters it.
	// When a peer process dies mid-run, the survivors restore the last
	// checkpoint and degrade to the local shared-memory SSE kernels — a
	// multi-process grid cannot be re-derived over the survivors the way an
	// in-process one can — so the run still completes with the same
	// observables.
	Cluster *comm.Cluster
}

// memCheckpoint is the in-memory restart state the fault-tolerant loop
// snapshots after every completed iteration: deep copies of the mixed
// self-energies plus enough bookkeeping to rewind the result.
type memCheckpoint struct {
	iterations int
	nResiduals int
	sigL, sigG *tensor.GTensor
	piL, piG   *tensor.DTensor
}

// RunDistributed executes the full self-consistent Born loop with the SSE
// phase running under the communication-avoiding decomposition on the
// simulated TE×TA cluster (the GF phase stays shared-memory parallel, as
// on one node of the paper's runs). The trajectory is identical to Run()
// with the DaCe variant — the decomposition changes data movement, not
// values — and the result additionally reports the accumulated exchange
// traffic, so the communication cost of a full simulation can be measured
// rather than modeled.
func (s *Simulator) RunDistributed(te, ta int) (*Result, int64, error) {
	return s.RunDistributedFT(DistConfig{TE: te, TA: ta})
}

// RunDistributedFT is RunDistributed with fault tolerance: it checkpoints
// the mixed self-energies after every iteration, and when a rank dies
// mid-SSE (promptly surfaced as comm.ErrRankDead by the cluster's
// cancellation channel) it rebuilds a cluster over the surviving rank
// count, re-derives the volume-minimizing TE×TA decomposition for it, and
// resumes the Born loop from the last checkpoint — bounded by
// MaxRecoveries attempts with linear backoff. When the survivors can no
// longer feed a ≥2-rank grid, the loop degrades to the shared-memory SSE
// kernels instead of dying, so a run always either completes or reports a
// non-transient error.
func (s *Simulator) RunDistributedFT(cfg DistConfig) (*Result, int64, error) {
	return s.RunDistributedFTCtx(context.Background(), cfg)
}

// RunDistributedFTCtx is RunDistributedFT bound to a context. Cancellation
// is observed at Born iteration boundaries, per GF grid point, and inside
// every blocked Send/Recv of the simulated cluster (the per-iteration
// cluster is built with NewClusterCtx), so a cancelled run releases all of
// its rank goroutines within microseconds of the cancel. A cancelled run is
// terminal — it is never treated as a rank failure to recover from — and it
// unregisters the abandoned cluster's per-rank byte gauges so scrapes do not
// keep reporting a dead instance.
func (s *Simulator) RunDistributedFTCtx(ctx context.Context, cfg DistConfig) (*Result, int64, error) {
	te, ta := cfg.TE, cfg.TA
	space := cfg.Space
	if space < 2 {
		space = 0
	}
	if space > 0 && s.Dev.P.Bnum < 2*space-1 {
		return nil, 0, fmt.Errorf("core: %d device blocks cannot be partitioned across %d spatial ranks",
			s.Dev.P.Bnum, space)
	}
	// A spatial-only run needs no SSE grid; anything else must name one.
	if te > 0 || space == 0 {
		if err := s.checkGrid(te, ta); err != nil {
			return nil, 0, err
		}
	}
	if cfg.Cluster != nil {
		if te > 0 && cfg.Cluster.Size() != te*ta {
			return nil, 0, fmt.Errorf("core: cluster of %d ranks cannot carry a %d×%d grid",
				cfg.Cluster.Size(), te, ta)
		}
		if space > 0 && cfg.Cluster.Size() != space {
			return nil, 0, fmt.Errorf("core: cluster of %d ranks cannot carry a %d-way spatial split",
				cfg.Cluster.Size(), space)
		}
	}
	maxRec := cfg.MaxRecoveries
	if maxRec == 0 {
		maxRec = 2
	}
	backoff := cfg.RetryBackoff
	if backoff == 0 {
		backoff = 10 * time.Millisecond
	}

	res := &Result{}
	var sigR, sigL, sigG *tensor.GTensor
	var piR, piL, piG *tensor.DTensor
	var prevL, prevG *tensor.GTensor
	var totalBytes int64
	var ck *memCheckpoint
	faultArmed := cfg.Fault != nil
	// lastCluster is the most recent per-iteration cluster, the current
	// owner of the per-rank byte gauges. Every cancelled return unregisters
	// it so scrapes stop reporting the abandoned run; normal completions
	// keep the series live for post-run scraping.
	var lastCluster *comm.Cluster
	unregister := func() {
		if lastCluster != nil {
			lastCluster.Unregister()
		}
	}
	if cfg.Resume != nil {
		if err := cfg.Resume.CompatibleDevice(s.Dev); err != nil {
			return nil, 0, err
		}
		sigL, sigG = cfg.Resume.SigmaLess.Clone(), cfg.Resume.SigmaGtr.Clone()
		piL, piG = cfg.Resume.PiLess.Clone(), cfg.Resume.PiGtr.Clone()
		sigR = sse.Retarded(sigL, sigG)
		piR = sse.RetardedD(piL, piG)
	}

	for iter := 0; iter < s.Opts.MaxIter; iter++ {
		if cerr := ctx.Err(); cerr != nil {
			unregister()
			return nil, totalBytes, fmt.Errorf("core: distributed run cancelled before iteration %d: %w", iter+1, cerr)
		}
		st := IterStats{Iter: iter + 1, Residual: math.NaN()}
		var snap []obs.TimerStat
		if s.Opts.OnIteration != nil && obs.Enabled() {
			snap = obs.TimerStats()
		}
		t0 := time.Now()
		var gl, gg *tensor.GTensor
		var dl, dg *tensor.DTensor
		var o Observables
		var err error
		if space > 0 {
			// Spatial GF phase on its own cluster (the persistent one when
			// provided — it serves both phases). The fault plan arms here:
			// the spatial exchange is the first collective of the iteration.
			var plan *comm.FaultPlan
			if faultArmed && iter == cfg.FaultIter {
				plan = cfg.Fault
				faultArmed = false
			}
			cluster := cfg.Cluster
			persistent := cluster != nil
			if !persistent {
				cluster = comm.NewClusterCtx(ctx, space)
				lastCluster = cluster
			}
			if cfg.CommTimeout > 0 {
				cluster.SetTimeout(cfg.CommTimeout)
			}
			if plan != nil {
				cluster.InjectFaults(plan)
			}
			before := cluster.TotalBytes()
			gl, gg, dl, dg, o, err = s.gfPhaseSpatial(ctx, cluster, sigR, sigL, sigG, piR, piL, piG)
			totalBytes += cluster.TotalBytes() - before // traffic even of a failed attempt
			if err != nil {
				if cerr := ctx.Err(); cerr != nil {
					if !persistent {
						cluster.Unregister()
					}
					return nil, totalBytes,
						fmt.Errorf("core: distributed run cancelled during iteration %d: %w", iter+1, cerr)
				}
				if !errors.Is(err, comm.ErrRankDead) {
					return nil, totalBytes, err
				}
				if res.Recoveries >= maxRec {
					return nil, totalBytes, fmt.Errorf("core: giving up after %d recoveries: %w", res.Recoveries, err)
				}
				res.Recoveries++
				obsRecoveries.Inc()
				sp := obsSpanRecovery.Start()
				time.Sleep(backoff * time.Duration(res.Recoveries))
				if persistent {
					// A dead peer process leaves no spatial cluster to rebuild
					// and no SSE grid either: finish fully local.
					space = 0
					te, ta = 0, 0
				} else if space--; space < 2 {
					space = 0
				}
				iter = s.restoreCheckpoint(ck, res, &sigR, &sigL, &sigG, &piR, &piL, &piG)
				prevL, prevG = nil, nil
				sp.End()
				continue
			}
		} else {
			gl, gg, dl, dg, o, err = s.gfPhase(ctx, sigR, sigL, sigG, piR, piL, piG)
			if err != nil {
				if ctx.Err() != nil {
					unregister()
				}
				return nil, totalBytes, err
			}
		}
		st.GF = time.Since(t0)
		res.Timings.GF += st.GF
		obsSpanGF.Observe(st.GF)
		res.GLess, res.GGtr, res.DLess, res.DGtr = gl, gg, dl, dg
		res.Obs = o
		res.Iterations = iter + 1

		if prevL != nil {
			r := relChange(prevL, gl)
			if rg := relChange(prevG, gg); rg > r {
				r = rg
			}
			if math.IsNaN(r) || math.IsInf(r, 0) {
				return res, totalBytes, errors.New("core: distributed Born iteration diverged")
			}
			res.Residuals = append(res.Residuals, r)
			st.Residual = r
			if r < s.Opts.Tol {
				res.Converged = true
				st.Converged = true
				s.emitIterStats(&st, t0, snap)
				break
			}
		}
		prevL, prevG = gl, gg

		t1 := time.Now()
		in := sse.PhaseInput{GLess: gl, GGtr: gg, DLess: dl, DGtr: dg}
		var dist *DistributedResult
		if te > 0 {
			var plan *comm.FaultPlan
			if faultArmed && iter == cfg.FaultIter {
				plan = cfg.Fault
				faultArmed = false
			}
			cluster := cfg.Cluster
			persistent := cluster != nil
			if !persistent {
				cluster = comm.NewClusterCtx(ctx, te*ta)
				lastCluster = cluster
			}
			if cfg.CommTimeout > 0 {
				cluster.SetTimeout(cfg.CommTimeout)
			}
			if plan != nil {
				cluster.InjectFaults(plan)
			}
			before := cluster.TotalBytes()
			dist, err = s.distributedSSEOn(cluster, in, te, ta)
			if err != nil {
				if cerr := ctx.Err(); cerr != nil {
					// Cancellation, not a rank failure: release the abandoned
					// cluster's gauge series (the caller owns a persistent
					// one) and return without recovering.
					if !persistent {
						cluster.Unregister()
					}
					return nil, totalBytes + cluster.TotalBytes() - before,
						fmt.Errorf("core: distributed run cancelled during iteration %d: %w", iter+1, cerr)
				}
				if !errors.Is(err, comm.ErrRankDead) {
					return nil, totalBytes, err
				}
				totalBytes += cluster.TotalBytes() - before // traffic of the failed attempt
				if res.Recoveries >= maxRec {
					return nil, totalBytes, fmt.Errorf("core: giving up after %d recoveries: %w", res.Recoveries, err)
				}
				res.Recoveries++
				obsRecoveries.Inc()
				sp := obsSpanRecovery.Start()
				time.Sleep(backoff * time.Duration(res.Recoveries))
				if persistent {
					// A dead peer process cannot be re-gridded from here:
					// finish on the local shared-memory kernels instead.
					te, ta = 0, 0
				} else {
					te, ta = s.deriveGrid(te*ta - 1)
				}
				iter = s.restoreCheckpoint(ck, res, &sigR, &sigL, &sigG, &piR, &piL, &piG)
				prevL, prevG = nil, nil
				sp.End()
				continue
			}
		} else {
			// Degraded mode: too few survivors for a distributed grid; the
			// SSE phase runs on the shared-memory kernels (zero traffic).
			out := s.Kernel.ComputePhaseParallel(in, sse.DaCe, s.Opts.Workers)
			dist = &DistributedResult{SigmaLess: out.SigmaLess, SigmaGtr: out.SigmaGtr,
				PiLess: out.PiLess, PiGtr: out.PiGtr}
		}
		st.SSE = time.Since(t1)
		res.Timings.SSE += st.SSE
		obsSpanSSE.Observe(st.SSE)
		totalBytes += dist.MeasuredBytes
		t2 := time.Now()
		sse.AntiHermitize(dist.SigmaLess)
		sse.AntiHermitize(dist.SigmaGtr)
		if sigL == nil {
			sigL, sigG = dist.SigmaLess, dist.SigmaGtr
			piL, piG = dist.PiLess, dist.PiGtr
		} else {
			mixG(sigL, dist.SigmaLess, s.Opts.Mixing)
			mixG(sigG, dist.SigmaGtr, s.Opts.Mixing)
			mixD(piL, dist.PiLess, s.Opts.Mixing)
			mixD(piG, dist.PiGtr, s.Opts.Mixing)
		}
		sigR = sse.Retarded(sigL, sigG)
		piR = sse.RetardedD(piL, piG)
		st.Mix = time.Since(t2)
		obsSpanMix.Observe(st.Mix)
		res.SigmaLess, res.SigmaGtr = sigL, sigG
		res.PiLess, res.PiGtr = piL, piG

		ck = &memCheckpoint{
			iterations: iter + 1, nResiduals: len(res.Residuals),
			sigL: sigL.Clone(), sigG: sigG.Clone(),
			piL: piL.Clone(), piG: piG.Clone(),
		}
		obsCkptSaves.Inc()
		if cfg.CheckpointPath != "" {
			if err := s.saveCheckpointFile(cfg.CheckpointPath, ck); err != nil {
				return nil, totalBytes, err
			}
		}
		s.emitIterStats(&st, t0, snap)
	}
	res.Obs.DissipationPerAtom, res.Obs.EnergyDissipationPerAtom = s.dissipationPerAtom(res)
	return res, totalBytes, nil
}

// deriveGrid picks the TE×TA decomposition for a surviving rank count: the
// volume-minimizing feasible factorization (the §4.1 exhaustive search).
// When no ≥2-rank grid fits the device, it returns (0, 0), the degraded
// shared-memory marker.
func (s *Simulator) deriveGrid(procs int) (te, ta int) {
	if procs < 2 || s.Dev.P.NE < procs {
		return 0, 0
	}
	best, feasible := comm.SearchTiles(s.Dev.P, procs, 0)
	if len(feasible) == 0 {
		return 0, 0
	}
	return best.TE, best.TA
}

// restoreCheckpoint rewinds the loop state to the last completed iteration:
// it re-points the self-energy tensors at deep copies of the checkpoint
// (nil when the failure predates the first checkpoint — the run restarts
// from Σ = Π = 0), truncates the residual history, and returns the loop
// index to continue from (the for-loop increment lands on the first
// unfinished iteration).
func (s *Simulator) restoreCheckpoint(ck *memCheckpoint, res *Result,
	sigR, sigL, sigG **tensor.GTensor, piR, piL, piG **tensor.DTensor) int {
	obsCkptRestores.Inc()
	if ck == nil {
		*sigR, *sigL, *sigG = nil, nil, nil
		*piR, *piL, *piG = nil, nil, nil
		res.Residuals = res.Residuals[:0]
		return -1
	}
	*sigL, *sigG = ck.sigL.Clone(), ck.sigG.Clone()
	*piL, *piG = ck.piL.Clone(), ck.piG.Clone()
	*sigR = sse.Retarded(*sigL, *sigG)
	*piR = sse.RetardedD(*piL, *piG)
	res.Residuals = res.Residuals[:ck.nResiduals]
	return ck.iterations - 1
}

// saveCheckpointFile persists an in-memory checkpoint as a gob file,
// written atomically (temp file + rename) so a crash mid-write never
// corrupts the previous checkpoint.
func (s *Simulator) saveCheckpointFile(path string, ck *memCheckpoint) error {
	tmp := path + ".tmp"
	f, err := os.Create(tmp)
	if err != nil {
		return fmt.Errorf("core: checkpoint: %w", err)
	}
	full := &Checkpoint{
		Params: s.Dev.P, Kind: s.Dev.Kind, DevFP: s.Dev.Fingerprint(),
		Iterations: ck.iterations,
		SigmaLess:  ck.sigL, SigmaGtr: ck.sigG,
		PiLess: ck.piL, PiGtr: ck.piG,
	}
	if !s.grid.Full() {
		full.EGrid = s.grid.State()
	}
	if err := full.Save(f); err != nil {
		f.Close()
		os.Remove(tmp)
		return err
	}
	if err := f.Close(); err != nil {
		os.Remove(tmp)
		return fmt.Errorf("core: checkpoint: %w", err)
	}
	if err := os.Rename(tmp, path); err != nil {
		return fmt.Errorf("core: checkpoint: %w", err)
	}
	return nil
}
