package core

import (
	"errors"
	"math"
	"time"

	"negfsim/internal/obs"
	"negfsim/internal/sse"
	"negfsim/internal/tensor"
)

// RunDistributed executes the full self-consistent Born loop with the SSE
// phase running under the communication-avoiding decomposition on the
// simulated TE×TA cluster (the GF phase stays shared-memory parallel, as
// on one node of the paper's runs). The trajectory is identical to Run()
// with the DaCe variant — the decomposition changes data movement, not
// values — and the result additionally reports the accumulated exchange
// traffic, so the communication cost of a full simulation can be measured
// rather than modeled.
func (s *Simulator) RunDistributed(te, ta int) (*Result, int64, error) {
	res := &Result{}
	var sigR, sigL, sigG *tensor.GTensor
	var piR, piL, piG *tensor.DTensor
	var prevL, prevG *tensor.GTensor
	var totalBytes int64

	for iter := 0; iter < s.Opts.MaxIter; iter++ {
		st := IterStats{Iter: iter + 1, Residual: math.NaN()}
		var snap []obs.TimerStat
		if s.Opts.OnIteration != nil && obs.Enabled() {
			snap = obs.TimerStats()
		}
		t0 := time.Now()
		gl, gg, dl, dg, o, err := s.gfPhase(sigR, sigL, sigG, piR, piL, piG)
		if err != nil {
			return nil, totalBytes, err
		}
		st.GF = time.Since(t0)
		res.Timings.GF += st.GF
		obsSpanGF.Observe(st.GF)
		res.GLess, res.GGtr, res.DLess, res.DGtr = gl, gg, dl, dg
		res.Obs = o
		res.Iterations = iter + 1

		if prevL != nil {
			r := relChange(prevL, gl)
			if rg := relChange(prevG, gg); rg > r {
				r = rg
			}
			if math.IsNaN(r) || math.IsInf(r, 0) {
				return res, totalBytes, errors.New("core: distributed Born iteration diverged")
			}
			res.Residuals = append(res.Residuals, r)
			st.Residual = r
			if r < s.Opts.Tol {
				res.Converged = true
				st.Converged = true
				s.emitIterStats(&st, t0, snap)
				break
			}
		}
		prevL, prevG = gl, gg

		t1 := time.Now()
		dist, err := s.DistributedSSE(sse.PhaseInput{GLess: gl, GGtr: gg, DLess: dl, DGtr: dg}, te, ta)
		if err != nil {
			return nil, totalBytes, err
		}
		st.SSE = time.Since(t1)
		res.Timings.SSE += st.SSE
		obsSpanSSE.Observe(st.SSE)
		totalBytes += dist.MeasuredBytes
		t2 := time.Now()
		sse.AntiHermitize(dist.SigmaLess)
		sse.AntiHermitize(dist.SigmaGtr)
		if sigL == nil {
			sigL, sigG = dist.SigmaLess, dist.SigmaGtr
			piL, piG = dist.PiLess, dist.PiGtr
		} else {
			mixG(sigL, dist.SigmaLess, s.Opts.Mixing)
			mixG(sigG, dist.SigmaGtr, s.Opts.Mixing)
			mixD(piL, dist.PiLess, s.Opts.Mixing)
			mixD(piG, dist.PiGtr, s.Opts.Mixing)
		}
		sigR = sse.Retarded(sigL, sigG)
		piR = sse.RetardedD(piL, piG)
		st.Mix = time.Since(t2)
		obsSpanMix.Observe(st.Mix)
		res.SigmaLess, res.SigmaGtr = sigL, sigG
		res.PiLess, res.PiGtr = piL, piG
		s.emitIterStats(&st, t0, snap)
	}
	res.Obs.DissipationPerAtom, res.Obs.EnergyDissipationPerAtom = s.dissipationPerAtom(res)
	return res, totalBytes, nil
}
