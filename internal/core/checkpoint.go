package core

import (
	"context"
	"encoding/gob"
	"fmt"
	"io"

	"negfsim/internal/device"
	"negfsim/internal/tensor"
)

// Checkpointing: extreme-scale NEGF runs are restarted from saved
// self-energies (a converged Σ is by far the most expensive object a run
// produces). A Checkpoint captures everything needed to resume the Born
// loop mid-flight; the encoding is stdlib gob.

// Checkpoint is a restartable snapshot of a self-consistent run.
type Checkpoint struct {
	Params     device.Params
	Iterations int

	SigmaLess, SigmaGtr *tensor.GTensor
	PiLess, PiGtr       *tensor.DTensor
}

// CheckpointOf captures the current self-energies of a result.
func CheckpointOf(p device.Params, res *Result) *Checkpoint {
	return &Checkpoint{
		Params: p, Iterations: res.Iterations,
		SigmaLess: res.SigmaLess, SigmaGtr: res.SigmaGtr,
		PiLess: res.PiLess, PiGtr: res.PiGtr,
	}
}

// Save writes the checkpoint.
func (c *Checkpoint) Save(w io.Writer) error {
	if c.SigmaLess == nil || c.PiLess == nil {
		return fmt.Errorf("core: checkpoint has no self-energies (run at least one full iteration)")
	}
	return gob.NewEncoder(w).Encode(c)
}

// LoadCheckpoint reads a checkpoint written by Save.
func LoadCheckpoint(r io.Reader) (*Checkpoint, error) {
	var c Checkpoint
	if err := gob.NewDecoder(r).Decode(&c); err != nil {
		return nil, fmt.Errorf("core: decoding checkpoint: %w", err)
	}
	return &c, nil
}

// Compatible reports whether the checkpoint can seed a simulator for p.
func (c *Checkpoint) Compatible(p device.Params) error {
	if c.Params != p {
		return fmt.Errorf("core: checkpoint is for %+v, simulator has %+v", c.Params, p)
	}
	return nil
}

// RunFrom resumes the Born loop from a checkpoint's self-energies. The
// first GF phase immediately uses the saved Σ/Π, so a resumed run continues
// where the saved one stopped (up to the mixing state, which restarts).
func (s *Simulator) RunFrom(ck *Checkpoint) (*Result, error) {
	return s.RunFromCtx(context.Background(), ck)
}

// RunFromCtx is RunFrom bound to a context, with RunCtx's cancellation
// semantics (checked at iteration boundaries and per GF grid point).
func (s *Simulator) RunFromCtx(ctx context.Context, ck *Checkpoint) (*Result, error) {
	if err := ck.Compatible(s.Dev.P); err != nil {
		return nil, err
	}
	return s.run(ctx, ck)
}
