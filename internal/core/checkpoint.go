package core

import (
	"context"
	"encoding/gob"
	"fmt"
	"io"

	"negfsim/internal/device"
	"negfsim/internal/egrid"
	"negfsim/internal/tensor"
)

// Checkpointing: extreme-scale NEGF runs are restarted from saved
// self-energies (a converged Σ is by far the most expensive object a run
// produces). A Checkpoint captures everything needed to resume the Born
// loop mid-flight; the encoding is stdlib gob.

// Checkpoint is a restartable snapshot of a self-consistent run.
type Checkpoint struct {
	Params     device.Params
	Iterations int

	// Kind and DevFP pin the device-zoo identity of the structure the
	// self-energies belong to. Checkpoints written before the device zoo
	// decode with DevFP 0, which means "grid-equality only" — exactly the
	// compatibility rule of that era, when the grid WAS the identity.
	Kind  string
	DevFP uint64

	SigmaLess, SigmaGtr *tensor.GTensor
	PiLess, PiGtr       *tensor.DTensor

	// EGrid is the active energy grid the self-energies were converged
	// on: nil (checkpoints from uniform-grid runs, and every checkpoint
	// written before the adaptive subsystem) means the full fine grid.
	// It travels with Σ≷ so an adaptive resume or a campaign warm start
	// continues on the exact grid the saved state belongs to.
	EGrid *egrid.State
}

// CheckpointOf captures the current self-energies of a result.
func CheckpointOf(spec device.SpecConfig, res *Result) *Checkpoint {
	return &Checkpoint{
		Params: spec.Grid(), Kind: spec.Kind(), DevFP: spec.Fingerprint(),
		Iterations: res.Iterations,
		SigmaLess:  res.SigmaLess, SigmaGtr: res.SigmaGtr,
		PiLess: res.PiLess, PiGtr: res.PiGtr,
		EGrid: res.EGrid,
	}
}

// Save writes the checkpoint.
func (c *Checkpoint) Save(w io.Writer) error {
	if c.SigmaLess == nil || c.PiLess == nil {
		return fmt.Errorf("core: checkpoint has no self-energies (run at least one full iteration)")
	}
	return gob.NewEncoder(w).Encode(c)
}

// LoadCheckpoint reads a checkpoint written by Save.
func LoadCheckpoint(r io.Reader) (*Checkpoint, error) {
	var c Checkpoint
	if err := gob.NewDecoder(r).Decode(&c); err != nil {
		return nil, fmt.Errorf("core: decoding checkpoint: %w", err)
	}
	return &c, nil
}

// Compatible reports whether the checkpoint can seed a run of spec.
func (c *Checkpoint) Compatible(spec device.SpecConfig) error {
	if p := spec.Grid(); c.Params != p {
		return fmt.Errorf("core: checkpoint grid is %+v, config has %+v", c.Params, p)
	}
	if c.DevFP != 0 && c.DevFP != spec.Fingerprint() {
		return fmt.Errorf("core: checkpoint is for device kind %q (fp %016x), config has kind %q (fp %016x)",
			c.Kind, c.DevFP, spec.Kind(), spec.Fingerprint())
	}
	return nil
}

// CompatibleDevice reports whether the checkpoint can seed a simulator
// holding the already-built device d.
func (c *Checkpoint) CompatibleDevice(d *device.Device) error {
	if c.Params != d.P {
		return fmt.Errorf("core: checkpoint grid is %+v, simulator has %+v", c.Params, d.P)
	}
	if c.DevFP != 0 && c.DevFP != d.Fingerprint() {
		return fmt.Errorf("core: checkpoint is for device kind %q (fp %016x), simulator has kind %q (fp %016x)",
			c.Kind, c.DevFP, d.Kind, d.Fingerprint())
	}
	return nil
}

// CompatibleGrid reports whether the checkpoint's energy-grid state can
// seed a run whose adaptation is on (adaptive true) or off. A nil or
// full grid state seeds anything; a partial grid — Σ≷ converged with
// interpolation-filled gaps — can only seed a run that itself adapts,
// where the controller resumes from the saved active set. The device
// fine-grid identity (NE, window) is already pinned by Params equality
// in Compatible/CompatibleDevice.
func (c *Checkpoint) CompatibleGrid(adaptive bool) error {
	if c.EGrid == nil || c.EGrid.IsFull() || adaptive {
		return nil
	}
	return fmt.Errorf("core: checkpoint grid has %d of %d energy points active; a non-adaptive run needs a full-grid (or pre-adaptive) checkpoint",
		len(c.EGrid.Active), c.EGrid.NE)
}

// RunFrom resumes the Born loop from a checkpoint's self-energies. The
// first GF phase immediately uses the saved Σ/Π, so a resumed run continues
// where the saved one stopped (up to the mixing state, which restarts).
func (s *Simulator) RunFrom(ck *Checkpoint) (*Result, error) {
	return s.RunFromCtx(context.Background(), ck)
}

// RunFromCtx is RunFrom bound to a context, with RunCtx's cancellation
// semantics (checked at iteration boundaries and per GF grid point).
func (s *Simulator) RunFromCtx(ctx context.Context, ck *Checkpoint) (*Result, error) {
	if err := ck.CompatibleDevice(s.Dev); err != nil {
		return nil, err
	}
	return s.run(ctx, ck)
}
