package core

import (
	"bytes"
	"encoding/json"
	"fmt"
	"os"
	"strings"
	"time"

	"negfsim/internal/device"
	"negfsim/internal/sse"
)

// RunConfig is the one versioned description of a simulation run, shared by
// every frontend: cmd/qtsim consumes it from -config (with flags overriding
// individual fields) and cmd/qtsimd accepts it as the body of a job
// submission. It replaces the ad-hoc flag soup as the single way to say
// "run this device under these solver settings", so a config that produced
// a result on the command line can be POSTed to the service unchanged.
//
// The schema is flat JSON with snake_case keys (see examples/run.json).
// Unknown fields are rejected, so typos fail at parse time instead of
// silently running defaults.
type RunConfig struct {
	// Version is the config schema version; this build writes and accepts
	// RunConfigVersion. Zero means "current" so hand-written configs may
	// omit it, but persisted configs always carry it explicitly.
	Version int `json:"version"`

	// Device is the structure to simulate: a tagged device-zoo spec
	// ({"kind": "nanowire"|"cnt"|"chain"|"gnr", ...}). The legacy flat
	// Params object (version 1, no "kind" key) is accepted as a nanowire.
	Device device.SpecConfig `json:"device"`

	// Variant selects the SSE kernel: "reference", "omen" or "dace".
	Variant string `json:"variant"`
	// MaxIter bounds the Born iteration count.
	MaxIter int `json:"max_iter"`
	// Tol is the convergence threshold on the relative change of G^≷.
	Tol float64 `json:"tol"`
	// Mixing is the self-energy mixing factor in (0, 1].
	Mixing float64 `json:"mixing"`
	// Mixer selects the update rule: "linear" (default) or "anderson".
	Mixer string `json:"mixer,omitempty"`
	// AndersonHistory is the Anderson mixer's history depth (0 = default).
	AndersonHistory int `json:"anderson_history,omitempty"`
	// Bias is the source-drain bias MuL−MuR in eV (split symmetrically).
	Bias float64 `json:"bias"`
	// KT is the electron thermal energy in eV.
	KT float64 `json:"kt"`
	// Workers bounds the shared-memory parallelism of this run; 0 lets the
	// runner choose (GOMAXPROCS for qtsim, the per-job share for qtsimd).
	Workers int `json:"workers,omitempty"`

	// Dist, when non-empty, runs the SSE phase on a simulated TExTA rank
	// grid ("2x2") with fault tolerance.
	Dist string `json:"dist,omitempty"`
	// Space, when ≥ 2, partitions every electron retarded solve of the GF
	// phase across a spatial cluster of that many ranks — the
	// device-dimension split. Requires Bnum ≥ 2·Space−1. Composes with
	// Dist (each axis gets its own cluster) and is mutually exclusive with
	// Gate.
	Space int `json:"space,omitempty"`
	// CommTimeoutMs bounds every Send/Recv of the simulated cluster in
	// milliseconds; 0 keeps comm.DefaultTimeout.
	CommTimeoutMs int `json:"comm_timeout_ms,omitempty"`

	// Gate, when non-nil, wraps the run in the coupled NEGF–Poisson
	// (Gummel) loop. Mutually exclusive with Dist.
	Gate *GateSpec `json:"gate,omitempty"`

	// Adapt, when non-nil with a mode other than "off", runs the run
	// under the adaptive energy-grid refinement loop (internal/egrid).
	// Mutually exclusive with Gate.
	Adapt *AdaptSpec `json:"adapt,omitempty"`
}

// AdaptSpec is the RunConfig "adapt" block: the error-controlled
// energy-grid refinement settings. The zero value of every optional
// field keeps the documented default.
type AdaptSpec struct {
	// Mode selects the refinement strategy: "off" (uniform grid, same
	// as omitting the block), "grid" (refine the point set, cold Born
	// restart each round) or "grid+sigma" (refine and chain the
	// converged Σ≷/Π≷ into the next round, seeding new points from
	// interpolated self-energies).
	Mode string `json:"mode"`
	// TolCurrent is the tolerance on the integrated current driving
	// refinement; 0 means 1e-6.
	TolCurrent float64 `json:"tol_current,omitempty"`
	// MaxNE caps the active point count (0: the full device.ne grid).
	MaxNE int `json:"max_ne,omitempty"`
	// MinNE is the seed-grid size and the coarsening floor (0: ~ne/8,
	// at least 9).
	MinNE int `json:"min_ne,omitempty"`
}

// enabled reports whether the spec actually requests adaptation.
func (a *AdaptSpec) enabled() bool {
	if a == nil {
		return false
	}
	m := strings.ToLower(a.Mode)
	return m != "" && m != "off"
}

// AdaptEnabled reports whether the config requests adaptive energy-grid
// refinement.
func (c *RunConfig) AdaptEnabled() bool { return c.Adapt.enabled() }

// AdaptConfig translates the config's adapt block into the adaptive
// runner's configuration; false when the config does not request
// adaptation. Resume and Dist are left for the dispatching frontend.
func (c *RunConfig) AdaptConfig() (AdaptConfig, bool) {
	if !c.Adapt.enabled() {
		return AdaptConfig{}, false
	}
	return AdaptConfig{
		SigmaReuse: strings.ToLower(c.Adapt.Mode) == "grid+sigma",
		Tol:        c.Adapt.TolCurrent,
		MinNE:      c.Adapt.MinNE,
		MaxNE:      c.Adapt.MaxNE,
	}, true
}

// RunConfigVersion is the RunConfig schema version this build writes:
// version 2, whose "device" section is the tagged polymorphic spec.
const RunConfigVersion = 2

// RunConfigLegacyVersion is the oldest schema version this build still
// accepts: version 1, whose "device" section was the flat nanowire Params
// object (decoded as kind "nanowire").
const RunConfigLegacyVersion = 1

// VersionSupported reports whether this build accepts config version v
// (0 means "current" and is normalized before this check).
func VersionSupported(v int) bool {
	return v == RunConfigVersion || v == RunConfigLegacyVersion
}

// DefaultRunConfig returns the laptop-scale baseline configuration — the
// same run the zero-flag qtsim invocation has always performed.
func DefaultRunConfig() RunConfig {
	return RunConfig{
		Version: RunConfigVersion,
		Device: device.WrapParams(device.Params{
			Nkz: 3, Nqz: 3, NE: 16, Nw: 4,
			NA: 24, NB: 4, Norb: 2, N3D: 3,
			Rows: 4, Bnum: 3,
			Emin: -1, Emax: 1, Seed: 7,
		}),
		Variant: "dace",
		MaxIter: 6,
		Tol:     1e-4,
		Mixing:  0.5,
		Bias:    0.4,
		KT:      0.025,
	}
}

// ParseRunConfig decodes a RunConfig from JSON. Decoding is strict (unknown
// fields are errors), a missing version is normalized to the current one,
// and the result is validated.
func ParseRunConfig(data []byte) (*RunConfig, error) {
	dec := json.NewDecoder(bytes.NewReader(data))
	dec.DisallowUnknownFields()
	var c RunConfig
	if err := dec.Decode(&c); err != nil {
		return nil, fmt.Errorf("core: parsing run config: %w", err)
	}
	if c.Version == 0 {
		c.Version = RunConfigVersion
	}
	if !VersionSupported(c.Version) {
		return nil, fmt.Errorf("core: run config version %d not supported (this build speaks version %d and still accepts %d)",
			c.Version, RunConfigVersion, RunConfigLegacyVersion)
	}
	if err := c.Validate(); err != nil {
		return nil, err
	}
	return &c, nil
}

// LoadRunConfig reads and parses a RunConfig file.
func LoadRunConfig(path string) (*RunConfig, error) {
	data, err := os.ReadFile(path)
	if err != nil {
		return nil, fmt.Errorf("core: reading run config: %w", err)
	}
	c, err := ParseRunConfig(data)
	if err != nil {
		return nil, fmt.Errorf("core: %s: %w", path, err)
	}
	return c, nil
}

// Marshal renders the config as indented JSON (the format LoadRunConfig
// reads back and the golden file in examples/ pins).
func (c *RunConfig) Marshal() ([]byte, error) {
	out, err := json.MarshalIndent(c, "", "  ")
	if err != nil {
		return nil, err
	}
	return append(out, '\n'), nil
}

// Validate checks the config: device parameters, solver ranges, variant and
// mixer names, and the distributed grid shape.
func (c *RunConfig) Validate() error {
	if err := c.Device.Validate(); err != nil {
		return err
	}
	if _, err := c.SSEVariant(); err != nil {
		return err
	}
	if _, err := c.mixerKind(); err != nil {
		return err
	}
	if c.MaxIter <= 0 {
		return fmt.Errorf("core: run config: max_iter must be positive, got %d", c.MaxIter)
	}
	if c.Tol <= 0 {
		return fmt.Errorf("core: run config: tol must be positive, got %g", c.Tol)
	}
	if c.Mixing <= 0 || c.Mixing > 1 {
		return fmt.Errorf("core: run config: mixing %g outside (0, 1]", c.Mixing)
	}
	if c.Workers < 0 {
		return fmt.Errorf("core: run config: workers must be non-negative, got %d", c.Workers)
	}
	if c.CommTimeoutMs < 0 {
		return fmt.Errorf("core: run config: comm_timeout_ms must be non-negative, got %d", c.CommTimeoutMs)
	}
	if c.Dist != "" {
		te, ta, err := c.DistGrid()
		if err != nil {
			return err
		}
		if c.Gate != nil {
			return fmt.Errorf("core: run config: dist and gate are mutually exclusive (the Poisson loop runs serial)")
		}
		if procs := te * ta; c.Device.Grid().NE < procs {
			return fmt.Errorf("core: run config: dist: device.ne=%d energies cannot feed %d ranks", c.Device.Grid().NE, procs)
		}
	}
	if c.Space < 0 {
		return fmt.Errorf("core: run config: space must be non-negative, got %d", c.Space)
	}
	if c.Space >= 2 {
		if c.Gate != nil {
			return fmt.Errorf("core: run config: space and gate are mutually exclusive (the Poisson loop runs serial)")
		}
		if bnum := c.Device.Grid().Bnum; bnum < 2*c.Space-1 {
			return fmt.Errorf("core: run config: space: device.bnum=%d blocks cannot be partitioned across space=%d spatial ranks (need bnum ≥ %d)",
				bnum, c.Space, 2*c.Space-1)
		}
	}
	if c.Gate != nil {
		if c.Gate.MaxOuter <= 0 {
			return fmt.Errorf("core: run config: gate.max_outer must be positive, got %d", c.Gate.MaxOuter)
		}
		if c.Gate.Damping <= 0 || c.Gate.Damping > 1 {
			return fmt.Errorf("core: run config: gate.damping %g outside (0, 1]", c.Gate.Damping)
		}
	}
	if c.Adapt != nil {
		switch strings.ToLower(c.Adapt.Mode) {
		case "", "off", "grid", "grid+sigma":
		default:
			return fmt.Errorf("core: run config: adapt.mode %q unknown (want off, grid or grid+sigma)", c.Adapt.Mode)
		}
		if c.Adapt.TolCurrent < 0 {
			return fmt.Errorf("core: run config: adapt.tol_current must be non-negative, got %g", c.Adapt.TolCurrent)
		}
		ne := c.Device.Grid().NE
		if c.Adapt.MinNE < 0 || c.Adapt.MinNE == 1 || c.Adapt.MinNE > ne {
			return fmt.Errorf("core: run config: adapt.min_ne %d outside {0} ∪ [2, device.ne=%d]", c.Adapt.MinNE, ne)
		}
		if c.Adapt.MaxNE < 0 || c.Adapt.MaxNE > ne {
			return fmt.Errorf("core: run config: adapt.max_ne %d outside [0, device.ne=%d]", c.Adapt.MaxNE, ne)
		}
		if c.Adapt.MinNE > 0 && c.Adapt.MaxNE > 0 && c.Adapt.MinNE > c.Adapt.MaxNE {
			return fmt.Errorf("core: run config: adapt.min_ne %d exceeds adapt.max_ne %d", c.Adapt.MinNE, c.Adapt.MaxNE)
		}
		if c.Adapt.enabled() && c.Gate != nil {
			return fmt.Errorf("core: run config: adapt and gate are mutually exclusive (the Poisson outer loop owns the run)")
		}
	}
	return nil
}

// Canonical returns the config reduced to its semantic content: the form in
// which two configs describing the same physics compare (and hash) equal.
// Defaults are filled explicitly (version, variant "dace", mixer "linear",
// the Anderson history depth), enum names are lower-cased, and the knobs
// that change how a run executes but not what it computes — Workers and
// CommTimeoutMs — are zeroed. Dist and Gate stay: a distributed or
// Poisson-coupled run is a different computation. The front tier's
// content-addressed cache keys on exactly this form, so a submission with
// reordered JSON fields, an omitted default, or a different worker count
// dedupes onto the same cached result. The receiver is copied; the Gate
// pointer (never mutated here) is shared.
func (c RunConfig) Canonical() RunConfig {
	c.Version = RunConfigVersion
	c.Device = c.Device.Canonical()
	c.Variant = strings.ToLower(c.Variant)
	if c.Variant == "" {
		c.Variant = "dace"
	}
	c.Mixer = strings.ToLower(c.Mixer)
	if c.Mixer == "" {
		c.Mixer = "linear"
	}
	if c.Mixer != "anderson" {
		c.AndersonHistory = 0
	} else if c.AndersonHistory <= 0 {
		c.AndersonHistory = 3
	}
	c.Workers = 0
	c.CommTimeoutMs = 0
	// A sub-2 Space is the local solver; ≥ 2 changes the computation
	// (partitioned solve) and stays, like Dist.
	if c.Space < 2 {
		c.Space = 0
	}
	// An "off" (or empty-mode) adapt block is the uniform grid — the
	// same computation as no block at all, so it folds away and the two
	// spellings share a cache key. An enabled block is normalized: mode
	// lower-cased, the tolerance default filled.
	if c.Adapt != nil {
		if !c.Adapt.enabled() {
			c.Adapt = nil
		} else {
			a := *c.Adapt
			a.Mode = strings.ToLower(a.Mode)
			if a.TolCurrent <= 0 {
				a.TolCurrent = 1e-6
			}
			c.Adapt = &a
		}
	}
	return c
}

// SSEVariant parses the config's variant name.
func (c *RunConfig) SSEVariant() (sse.Variant, error) {
	switch strings.ToLower(c.Variant) {
	case "reference":
		return sse.Reference, nil
	case "omen":
		return sse.OMEN, nil
	case "", "dace":
		return sse.DaCe, nil
	}
	return 0, fmt.Errorf("core: run config: unknown variant %q (want reference, omen or dace)", c.Variant)
}

// mixerKind parses the config's mixer name.
func (c *RunConfig) mixerKind() (MixerKind, error) {
	switch strings.ToLower(c.Mixer) {
	case "", "linear":
		return Linear, nil
	case "anderson":
		return Anderson, nil
	}
	return 0, fmt.Errorf("core: run config: unknown mixer %q (want linear or anderson)", c.Mixer)
}

// DistGrid parses the "TExTA" distributed grid spec; (0, 0) when the config
// does not request a distributed run.
func (c *RunConfig) DistGrid() (te, ta int, err error) {
	if c.Dist == "" {
		return 0, 0, nil
	}
	if _, err := fmt.Sscanf(c.Dist, "%dx%d", &te, &ta); err != nil || te < 1 || ta < 1 {
		return 0, 0, fmt.Errorf("core: run config: dist must look like TExTA (e.g. 2x2), got %q", c.Dist)
	}
	return te, ta, nil
}

// Options translates the config into solver Options. The config is assumed
// validated; defaults fill the fields RunConfig does not cover (broadening,
// phonon contact temperatures).
func (c *RunConfig) Options() (Options, error) {
	variant, err := c.SSEVariant()
	if err != nil {
		return Options{}, err
	}
	mixer, err := c.mixerKind()
	if err != nil {
		return Options{}, err
	}
	opts := DefaultOptions()
	opts.Variant = variant
	opts.MaxIter = c.MaxIter
	opts.Tol = c.Tol
	opts.Mixing = c.Mixing
	opts.Mixer = mixer
	opts.AndersonHistory = c.AndersonHistory
	opts.Contacts.MuL = c.Bias / 2
	opts.Contacts.MuR = -c.Bias / 2
	opts.Contacts.KT = c.KT
	opts.Workers = c.Workers
	return opts, nil
}

// DistConfig translates the config's distributed section (the Dist grid
// and/or the Space split) into the fault-tolerant runner's configuration;
// the zero DistConfig (and false) when the config requests neither axis.
func (c *RunConfig) DistConfig() (DistConfig, bool, error) {
	te, ta, err := c.DistGrid()
	if err != nil {
		return DistConfig{}, false, err
	}
	space := c.Space
	if space < 2 {
		space = 0
	}
	if te == 0 && space == 0 {
		return DistConfig{}, false, nil
	}
	return DistConfig{
		TE: te, TA: ta, Space: space,
		CommTimeout: time.Duration(c.CommTimeoutMs) * time.Millisecond,
	}, true, nil
}

// NewSimulator builds the device and simulator the config describes.
func (c *RunConfig) NewSimulator() (*Simulator, error) {
	opts, err := c.Options()
	if err != nil {
		return nil, err
	}
	return c.NewSimulatorWith(opts)
}

// NewSimulatorWith builds the configured device and a simulator over it
// using caller-prepared options — for frontends that decorate the config's
// Options (iteration hooks, per-job worker budgets) before construction.
func (c *RunConfig) NewSimulatorWith(opts Options) (*Simulator, error) {
	dev, err := c.Device.Build()
	if err != nil {
		return nil, err
	}
	return New(dev, opts), nil
}
