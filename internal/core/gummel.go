package core

import (
	"context"
	"errors"
	"fmt"
	"math"
	"time"

	"negfsim/internal/device"
	"negfsim/internal/obs"
	"negfsim/internal/poisson"
)

// Timers of the electrostatic coupling: one core.gummel span per outer
// iteration (NEGF run + charge integration + Poisson solve + damping) and
// one core.poisson span per Poisson solve inside it.
var (
	obsSpanGummel  = obs.GetTimer("core.gummel")
	obsSpanPoisson = obs.GetTimer("core.poisson")
)

// NEGF–Poisson (Gummel) coupling: the gate/drain biases of the FinFET in
// Fig. 1 enter the quantum solver through the electrostatic potential. The
// outer loop alternates (i) a self-consistent NEGF run under the current
// potential, (ii) the electron density it implies, (iii) a Poisson solve
// with the charge imbalance as source, damped back into the potential —
// the standard TCAD construction OMEN embeds its transport kernel in.
//
// The charge model is the δn convention: the first NEGF run under the flat
// potential defines the neutral reference density, so the equilibrium
// device is charge-neutral by construction and the first potential is the
// pure Laplace (geometry) solution.

// GateSpec drives the electrostatic boundary and the Gummel iteration. The
// JSON tags are the schema of the optional "gate" section of RunConfig.
type GateSpec struct {
	// VG is the gate voltage (top row between the contacts).
	VG float64 `json:"vg"`
	// VS, VD are the source/drain contact potentials.
	VS float64 `json:"vs"`
	VD float64 `json:"vd"`

	// Coupling converts charge imbalance to Poisson source strength
	// (absorbs q²/ε into one synthetic constant).
	Coupling float64 `json:"coupling"`
	// Damping is the Gummel potential update factor in (0, 1].
	Damping float64 `json:"damping"`
	// MaxOuter bounds the Gummel iterations.
	MaxOuter int `json:"max_outer"`
	// Tol is the convergence threshold on max |Δφ| (volts).
	Tol float64 `json:"tol"`
}

// DefaultGate returns a stable Gummel configuration.
func DefaultGate(vg, vd float64) GateSpec {
	return GateSpec{VG: vg, VD: vd, Coupling: 0.1, Damping: 0.6, MaxOuter: 8, Tol: 1e-4}
}

// ElectrostaticResult is the outcome of a coupled run.
type ElectrostaticResult struct {
	*Result
	// Potential is the converged per-atom electrostatic potential.
	Potential []float64
	// ChargePerAtom is the final electron density (relative to the neutral
	// reference).
	ChargePerAtom []float64
	// OuterIterations and PhiResiduals trace the Gummel loop.
	OuterIterations int
	PhiResiduals    []float64
	GummelConverged bool
}

// chargePerAtom integrates the electron density from G^<:
// n_a = Σ_{kz,E} Im tr G^<[kz,E,a] · ΔE/(2π·Nkz).
func (s *Simulator) chargePerAtom(r *Result) []float64 {
	p := s.Dev.P
	out := make([]float64, p.NA)
	w := p.EStep() / (2 * math.Pi * float64(p.Nkz))
	for kz := 0; kz < p.Nkz; kz++ {
		for e := 0; e < p.NE; e++ {
			for a := 0; a < p.NA; a++ {
				out[a] += imag(r.GLess.Block(kz, e, a).Trace()) * w
			}
		}
	}
	return out
}

// applyPotential rebuilds the cached Hamiltonians with the onsite shift
// −φ_a on every orbital of atom a (electron potential energy in natural
// units q = 1).
func (s *Simulator) applyPotential(phi []float64) {
	p := s.Dev.P
	apb := p.AtomsPerBlock()
	for kz := 0; kz < p.Nkz; kz++ {
		h := s.Dev.Hamiltonian(kz)
		for a := 0; a < p.NA; a++ {
			blk := s.Dev.BlockOf(a)
			off := (a - blk*apb) * p.Norb
			for o := 0; o < p.Norb; o++ {
				h.Diag[blk].Set(off+o, off+o, h.Diag[blk].At(off+o, off+o)-complex(phi[a], 0))
			}
		}
		s.h[kz] = h
	}
}

// RunWithPoisson executes the coupled NEGF–Poisson loop. The simulator's
// contact chemical potentials are shifted by the applied source/drain
// potentials so the electrochemical picture stays consistent.
func (s *Simulator) RunWithPoisson(g GateSpec) (*ElectrostaticResult, error) {
	return s.RunWithPoissonCtx(context.Background(), g)
}

// RunWithPoissonCtx is RunWithPoisson bound to a context: cancellation is
// observed at every Gummel outer iteration boundary and, through RunCtx,
// inside the NEGF run of each outer iteration, so cancel latency stays
// bounded by one Born iteration even mid-Gummel.
func (s *Simulator) RunWithPoissonCtx(ctx context.Context, g GateSpec) (*ElectrostaticResult, error) {
	p := s.Dev.P
	if g.MaxOuter <= 0 {
		return nil, errors.New("core: GateSpec.MaxOuter must be positive")
	}
	if g.Damping <= 0 || g.Damping > 1 {
		return nil, fmt.Errorf("core: GateSpec.Damping %g outside (0, 1]", g.Damping)
	}
	dirichlet := poisson.GateStack(p.Cols(), p.Rows, g.VS, g.VD, g.VG)
	phi := make([]float64, p.NA)
	var reference []float64
	out := &ElectrostaticResult{Potential: phi}

	for outer := 0; outer < g.MaxOuter; outer++ {
		if cerr := ctx.Err(); cerr != nil {
			return nil, fmt.Errorf("core: Gummel loop cancelled before outer %d: %w", outer, cerr)
		}
		outerStart := time.Now()
		s.applyPotential(phi)
		res, err := s.RunCtx(ctx)
		if err != nil {
			return nil, fmt.Errorf("core: Gummel outer %d: %w", outer, err)
		}
		out.Result = res
		out.OuterIterations = outer + 1
		n := s.chargePerAtom(res)
		if reference == nil {
			reference = n // neutral reference: the flat-potential density
		}
		charge := make([]float64, p.NA)
		for a := range charge {
			// Electrons carry negative charge: an excess of density lowers
			// the potential.
			charge[a] = -g.Coupling * (n[a] - reference[a])
			out.ChargePerAtom = charge
		}
		spp := obsSpanPoisson.Start()
		next, err := poisson.Solve(poisson.Problem{
			Cols: p.Cols(), Rows: p.Rows, H: device.LatticeConst,
			Dirichlet: dirichlet, Charge: charge,
		}, 1e-10, 0)
		spp.End()
		if err != nil {
			return nil, fmt.Errorf("core: Gummel outer %d Poisson: %w", outer, err)
		}
		var dmax float64
		for a := range phi {
			updated := (1-g.Damping)*phi[a] + g.Damping*next[a]
			if d := math.Abs(updated - phi[a]); d > dmax {
				dmax = d
			}
			phi[a] = updated
		}
		out.PhiResiduals = append(out.PhiResiduals, dmax)
		obsSpanGummel.Observe(time.Since(outerStart))
		if dmax < g.Tol {
			out.GummelConverged = true
			break
		}
	}
	// Restore the pristine Hamiltonians for subsequent uses of the
	// simulator.
	for kz := 0; kz < p.Nkz; kz++ {
		s.h[kz] = s.Dev.Hamiltonian(kz)
	}
	return out, nil
}
