package core

import (
	"context"
	"fmt"
	"sync"
	"sync/atomic"

	"negfsim/internal/comm"
	"negfsim/internal/pool"
	"negfsim/internal/rgf"
	"negfsim/internal/tensor"
)

// gfPhaseSpatial is gfPhase with every electron retarded solve partitioned
// across the ranks of a spatial cluster (rgf.DistributedRetarded): the
// device-dimension split of OMEN's momentum/energy/space hierarchy. The
// (kz, E) points run sequentially — each point's solve already spreads its
// block elimination over every rank — and the Keldysh closure runs on the
// replicated diagonal: in-process exactly rank 0 closes each point, while
// each process of a multi-process cluster closes every point on its own
// replica, so every process accumulates the full observables and tensors
// (bit-identical across peers) exactly once. Phonon points stay local —
// their small systems are not worth the exchange latency — and run on the
// worker pool as in gfPhase. The caller reads the cluster's byte counters
// around the call; a failed point surfaces the cluster error (including
// comm.ErrRankDead) wrapped with its grid coordinates.
func (s *Simulator) gfPhaseSpatial(ctx context.Context, cluster *comm.Cluster,
	sigR, sigL, sigG *tensor.GTensor, piR, piL, piG *tensor.DTensor) (
	gl, gg *tensor.GTensor, dl, dg *tensor.DTensor, o Observables, err error) {
	p := s.Dev.P
	gl = tensor.NewGTensor(p.Nkz, p.NE, p.NA, p.Norb)
	gg = tensor.NewGTensor(p.Nkz, p.NE, p.NA, p.Norb)
	dl = tensor.NewDTensor(p.Nqz, p.Nw, p.NA, p.NB, p.N3D)
	dg = tensor.NewDTensor(p.Nqz, p.Nw, p.NA, p.NB, p.N3D)
	o.CurrentPerEnergy = make([]float64, p.NE)
	eWeight := p.EStep() / float64(p.Nkz)
	multi := cluster.MultiProcess()

	// As in gfPhase, electron points come from the active energy grid
	// with explicit quadrature weights (bitwise ΔE on the full grid).
	grid := s.grid
	for kz := 0; kz < p.Nkz; kz++ {
		for _, e := range grid.Active() {
			if cerr := ctx.Err(); cerr != nil {
				return nil, nil, nil, nil, o, fmt.Errorf("core: GF phase cancelled: %w", cerr)
			}
			scat := s.scatteringBlocks(kz, e, sigR, sigL, sigG)
			var res *rgf.ElectronResult
			rerr := cluster.Run(func(r *comm.Rank) error {
				// In-process, rank 0 closes the point; each process of a
				// multi-process cluster closes it on its own replica.
				closure := multi || r.ID == 0
				pt, perr := rgf.SolveElectronSpatial(r, closure, s.h[kz], s.s[kz],
					p.Energy(e), scat, s.Opts.Contacts, s.Opts.Eta)
				if perr != nil {
					return perr
				}
				if pt != nil {
					res = pt
				}
				return nil
			})
			scat.Release()
			if rerr != nil {
				return nil, nil, nil, nil, o, fmt.Errorf("electron point (kz=%d, E=%d): %w", kz, e, rerr)
			}
			s.extractElectron(kz, e, res, gl, gg)
			we := grid.Weight(e) / float64(p.Nkz)
			o.CurrentL += res.CurrentL * we
			o.CurrentR += res.CurrentR * we
			o.EnergyCurrentL += p.Energy(e) * res.CurrentL * we
			o.EnergyCurrentR += p.Energy(e) * res.CurrentR * we
			o.CurrentPerEnergy[e] += res.CurrentL
			res.Release()
		}
	}

	// Phonon points: process-local, worker-pool parallel as in gfPhase.
	type job struct{ qz, w int }
	jobs := make([]job, 0, p.Nqz*p.Nw)
	for qz := 0; qz < p.Nqz; qz++ {
		for w := 0; w < p.Nw; w++ {
			jobs = append(jobs, job{qz, w})
		}
	}
	var next atomic.Int64
	var mu sync.Mutex
	var firstErr error
	run := func(j job) {
		scat := s.phononScatteringBlocks(j.qz, j.w, piR, piL, piG)
		hw := float64(p.PhononShift(j.w)) * p.EStep()
		res, perr := rgf.SolvePhonon(s.phi[j.qz], hw, scat,
			rgf.PhononContacts{KTL: s.Opts.PhononKTL, KTR: s.Opts.PhononKTR}, s.Opts.Eta)
		scat.Release()
		if perr != nil {
			mu.Lock()
			if firstErr == nil {
				firstErr = fmt.Errorf("phonon point (qz=%d, ω=%d): %w", j.qz, j.w, perr)
			}
			mu.Unlock()
			return
		}
		s.extractPhonon(j.qz, j.w, res, dl, dg)
		res.Release()
		mu.Lock()
		o.HeatL += res.HeatL * eWeight
		o.HeatR += res.HeatR * eWeight
		mu.Unlock()
	}
	workers := s.Opts.Workers
	if workers > len(jobs) {
		workers = len(jobs)
	}
	tasks := make([]pool.Task, workers)
	for i := range tasks {
		tasks[i] = func() {
			for {
				idx := int(next.Add(1)) - 1
				if idx >= len(jobs) {
					return
				}
				if cerr := ctx.Err(); cerr != nil {
					mu.Lock()
					if firstErr == nil {
						firstErr = fmt.Errorf("core: GF phase cancelled: %w", cerr)
					}
					mu.Unlock()
					return
				}
				run(jobs[idx])
			}
		}
	}
	pool.Do(tasks...)
	if firstErr != nil {
		return nil, nil, nil, nil, o, firstErr
	}
	// Dense-fill the skipped energies for the SSE phase, as in gfPhase.
	if !grid.Full() {
		interpolateInactiveG(gl, grid)
		interpolateInactiveG(gg, grid)
		grid.InterpolateValues(o.CurrentPerEnergy)
	}
	return gl, gg, dl, dg, o, nil
}
