package core

import (
	"context"
	"math"
	"testing"

	"negfsim/internal/comm"
	"negfsim/internal/device"
	"negfsim/internal/sse"
)

func miniSim(t *testing.T, opts Options) *Simulator {
	t.Helper()
	dev, err := device.New(device.Mini())
	if err != nil {
		t.Fatal(err)
	}
	return New(dev, opts)
}

func TestBallisticFirstIteration(t *testing.T) {
	// One iteration with Σ = Π = 0 is the ballistic solve: current flows,
	// is conserved, and all tensors are finite.
	opts := DefaultOptions()
	opts.MaxIter = 1
	s := miniSim(t, opts)
	res, err := s.Run()
	if err != nil {
		t.Fatal(err)
	}
	if res.Iterations != 1 {
		t.Fatalf("iterations = %d", res.Iterations)
	}
	if res.Obs.CurrentL == 0 {
		t.Fatal("bias must drive current")
	}
	if rel := math.Abs(res.Obs.CurrentL+res.Obs.CurrentR) / math.Abs(res.Obs.CurrentL); rel > 1e-3 {
		t.Fatalf("ballistic current not conserved: %g vs %g", res.Obs.CurrentL, res.Obs.CurrentR)
	}
	for _, v := range res.GLess.Data {
		if math.IsNaN(real(v)) || math.IsNaN(imag(v)) {
			t.Fatal("NaN in G^<")
		}
	}
	if len(res.Obs.CurrentPerEnergy) != s.Dev.P.NE {
		t.Fatal("per-energy current length")
	}
}

func TestBornIterationConverges(t *testing.T) {
	if testing.Short() {
		t.Skip("long self-consistent run; skipped under -short (race gate)")
	}
	opts := DefaultOptions()
	opts.MaxIter = 10
	opts.Tol = 1e-4
	s := miniSim(t, opts)
	res, err := s.Run()
	if err != nil {
		t.Fatal(err)
	}
	if len(res.Residuals) == 0 {
		t.Fatal("no residual history")
	}
	// Residuals must decrease overall (damped Born iteration).
	first, last := res.Residuals[0], res.Residuals[len(res.Residuals)-1]
	if last > first {
		t.Fatalf("residuals grew: %v", res.Residuals)
	}
	if !res.Converged && res.Iterations == opts.MaxIter && last > 10*opts.Tol {
		t.Fatalf("iteration made no progress: %v", res.Residuals)
	}
	// Scattering redistributes energy: the dissipation map is nonzero and
	// sums to (minus) the net energy the contacts inject.
	var dissip float64
	for _, d := range res.Obs.DissipationPerAtom {
		dissip += math.Abs(d)
	}
	if dissip == 0 {
		t.Fatal("electron-phonon coupling should dissipate energy")
	}
	if len(res.Obs.DissipationPerAtom) != s.Dev.P.NA {
		t.Fatal("dissipation map length")
	}
}

func TestVariantsGiveSameSelfConsistentResult(t *testing.T) {
	if testing.Short() {
		t.Skip("long self-consistent run; skipped under -short (race gate)")
	}
	// The three SSE formulations must drive the Born loop to the same
	// fixed point trajectory.
	run := func(v sse.Variant) *Result {
		opts := DefaultOptions()
		opts.MaxIter = 3
		opts.Variant = v
		res, err := miniSim(t, opts).Run()
		if err != nil {
			t.Fatal(err)
		}
		return res
	}
	ref := run(sse.Reference)
	for _, v := range []sse.Variant{sse.OMEN, sse.DaCe} {
		got := run(v)
		if d := ref.GLess.MaxAbsDiff(got.GLess); d > 1e-8 {
			t.Fatalf("%v: G^< differs from reference trajectory by %g", v, d)
		}
		if rel := math.Abs(ref.Obs.CurrentL-got.Obs.CurrentL) / (1 + math.Abs(ref.Obs.CurrentL)); rel > 1e-8 {
			t.Fatalf("%v: current differs: %g vs %g", v, got.Obs.CurrentL, ref.Obs.CurrentL)
		}
	}
}

func TestHeatCurrentsFlowFromHotContact(t *testing.T) {
	opts := DefaultOptions()
	opts.MaxIter = 1
	opts.PhononKTL = 0.040
	opts.PhononKTR = 0.020
	s := miniSim(t, opts)
	res, err := s.Run()
	if err != nil {
		t.Fatal(err)
	}
	if res.Obs.HeatL == 0 || res.Obs.HeatR == 0 {
		t.Fatal("temperature difference should drive heat current")
	}
	// Ballistic phonons: conservation.
	if rel := math.Abs(res.Obs.HeatL+res.Obs.HeatR) / math.Abs(res.Obs.HeatL); rel > 1e-3 {
		t.Fatalf("heat current not conserved: %g vs %g", res.Obs.HeatL, res.Obs.HeatR)
	}
}

func TestDistributedSSEMatchesSerial(t *testing.T) {
	opts := DefaultOptions()
	s := miniSim(t, opts)
	gl, gg, dl, dg, _, err := s.gfPhase(context.Background(), nil, nil, nil, nil, nil, nil)
	if err != nil {
		t.Fatal(err)
	}
	in := sse.PhaseInput{GLess: gl, GGtr: gg, DLess: dl, DGtr: dg}
	serial := s.Kernel.ComputePhase(in, sse.DaCe)

	dist, err := s.DistributedSSE(in, 2, 2)
	if err != nil {
		t.Fatal(err)
	}
	scale := 1e-9 * (1 + maxAbsG(serial.SigmaLess))
	if d := serial.SigmaLess.MaxAbsDiff(dist.SigmaLess); d > scale {
		t.Fatalf("distributed Σ^< differs from serial by %g", d)
	}
	if d := serial.SigmaGtr.MaxAbsDiff(dist.SigmaGtr); d > scale {
		t.Fatalf("distributed Σ^> differs from serial by %g", d)
	}
	if d := serial.PiLess.MaxAbsDiff(dist.PiLess); d > 1e-9 {
		t.Fatalf("distributed Π^< differs from serial by %g", d)
	}
	if d := serial.PiGtr.MaxAbsDiff(dist.PiGtr); d > 1e-9 {
		t.Fatalf("distributed Π^> differs from serial by %g", d)
	}
}

func TestDistributedSSETrafficNearModel(t *testing.T) {
	opts := DefaultOptions()
	s := miniSim(t, opts)
	gl, gg, dl, dg, _, err := s.gfPhase(context.Background(), nil, nil, nil, nil, nil, nil)
	if err != nil {
		t.Fatal(err)
	}
	in := sse.PhaseInput{GLess: gl, GGtr: gg, DLess: dl, DGtr: dg}
	dist, err := s.DistributedSSE(in, 2, 2)
	if err != nil {
		t.Fatal(err)
	}
	if dist.MeasuredBytes == 0 {
		t.Fatal("no traffic measured")
	}
	// The closed-form model uses the contiguous-range halo approximation of
	// §4.1; the real neighbor-set halo at mini scale differs by a bounded
	// factor.
	ratio := float64(dist.MeasuredBytes) / dist.ModelBytes
	if ratio < 0.2 || ratio > 3 {
		t.Fatalf("measured/model traffic ratio %.2f (measured %d, model %.0f)",
			ratio, dist.MeasuredBytes, dist.ModelBytes)
	}
}

func TestDistributedSSEErrors(t *testing.T) {
	s := miniSim(t, DefaultOptions())
	gl, gg, dl, dg, _, err := s.gfPhase(context.Background(), nil, nil, nil, nil, nil, nil)
	if err != nil {
		t.Fatal(err)
	}
	in := sse.PhaseInput{GLess: gl, GGtr: gg, DLess: dl, DGtr: dg}
	if _, err := s.DistributedSSE(in, 1, 1); err == nil {
		t.Fatal("single rank must be rejected")
	}
	if _, err := s.DistributedSSE(in, 17, 17); err == nil {
		t.Fatal("more ranks than energies must be rejected")
	}
}

func TestSearchTilesIntegration(t *testing.T) {
	// The decomposition the tile search picks must be runnable end-to-end.
	s := miniSim(t, DefaultOptions())
	best, _ := comm.SearchTiles(s.Dev.P, 4, 0)
	if best.TE*best.TA != 4 {
		t.Fatalf("search returned %d×%d", best.TE, best.TA)
	}
	gl, gg, dl, dg, _, err := s.gfPhase(context.Background(), nil, nil, nil, nil, nil, nil)
	if err != nil {
		t.Fatal(err)
	}
	in := sse.PhaseInput{GLess: gl, GGtr: gg, DLess: dl, DGtr: dg}
	if _, err := s.DistributedSSE(in, best.TE, best.TA); err != nil {
		t.Fatal(err)
	}
}
