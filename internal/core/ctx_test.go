package core

import (
	"context"
	"errors"
	"math"
	"runtime"
	"strings"
	"sync"
	"testing"
	"time"

	"negfsim/internal/obs"
)

// cancelAfter returns Options whose OnIteration hook cancels ctx once
// iteration n completes, plus the context to run under.
func cancelAfter(opts Options, n int) (Options, context.Context) {
	ctx, cancel := context.WithCancel(context.Background())
	var once sync.Once
	prev := opts.OnIteration
	opts.OnIteration = func(st IterStats) {
		if prev != nil {
			prev(st)
		}
		if st.Iter >= n {
			once.Do(cancel)
		}
	}
	return opts, ctx
}

// TestRunCtxCancelStopsWithinOneIteration pins the serial cancellation
// contract: a cancel fired after iteration n stops the run before
// iteration n+2 begins, and the error unwraps to context.Canceled.
func TestRunCtxCancelStopsWithinOneIteration(t *testing.T) {
	opts := DefaultOptions()
	opts.MaxIter = 50
	opts.Tol = 1e-300
	opts, ctx := cancelAfter(opts, 1)

	res, err := miniSim(t, opts).RunCtx(ctx)
	if err == nil {
		t.Fatalf("cancelled run returned nil error (result: %+v)", res)
	}
	if !errors.Is(err, context.Canceled) {
		t.Fatalf("error %v does not unwrap to context.Canceled", err)
	}
}

// TestRunDistributedFTCtxCancelReleasesRanksAndGauges is the regression
// test for the distributed-cancellation leak: a cancelled run must not
// strand cluster rank goroutines, must not recover (cancellation is
// terminal, never treated as a rank failure), and must unregister its
// per-rank byte gauges so a /metrics scrape stops reporting the dead
// cluster.
func TestRunDistributedFTCtxCancelReleasesRanksAndGauges(t *testing.T) {
	obs.Enable()
	t.Cleanup(obs.Disable)
	opts := DefaultOptions()
	opts.MaxIter = 50
	opts.Tol = 1e-300

	// Warm the persistent worker pool (its goroutines live for the whole
	// process and must not count against the leak budget) and leave the
	// per-rank gauges of a completed run registered, as a daemon would.
	warm := DefaultOptions()
	warm.MaxIter = 1
	if _, _, err := miniSim(t, warm).RunDistributed(2, 2); err != nil {
		t.Fatal(err)
	}
	var sb strings.Builder
	obs.WriteMetrics(&sb)
	if !strings.Contains(sb.String(), `negfsim_comm_sent_bytes{rank="0"}`) {
		t.Fatalf("completed run left no per-rank gauges; scrape:\n%s", sb.String())
	}
	baseline := runtime.NumGoroutine()

	opts, ctx := cancelAfter(opts, 1)
	res, _, err := miniSim(t, opts).RunDistributedFTCtx(ctx, ftConfig())
	if err == nil {
		t.Fatalf("cancelled distributed run returned nil error (result: %+v)", res)
	}
	if !errors.Is(err, context.Canceled) {
		t.Fatalf("error %v does not unwrap to context.Canceled", err)
	}
	if res != nil && res.Recoveries != 0 {
		t.Errorf("cancellation was treated as a recoverable rank failure (%d recoveries)", res.Recoveries)
	}
	if !strings.Contains(err.Error(), "cancelled") {
		t.Errorf("error %q does not describe the cancellation", err)
	}

	// Rank goroutines must drain back to the pre-run count.
	deadline := time.Now().Add(10 * time.Second)
	for runtime.NumGoroutine() > baseline {
		if time.Now().After(deadline) {
			t.Fatalf("goroutines leaked: %d now, %d before the cancelled run", runtime.NumGoroutine(), baseline)
		}
		time.Sleep(5 * time.Millisecond)
	}

	// The scrape must no longer carry the dead cluster's per-rank series.
	sb.Reset()
	obs.WriteMetrics(&sb)
	scrape := sb.String()
	for _, family := range []string{"negfsim_comm_sent_bytes{rank=", "negfsim_comm_recvd_bytes{rank=", "negfsim_comm_total_bytes"} {
		if strings.Contains(scrape, family) {
			t.Errorf("cancelled run left %s* registered in the scrape", family)
		}
	}
}

// TestTwoSimulatorsConcurrentSharedPool pins multi-tenancy at the core
// level: two independent simulators running at the same time over the
// process-wide worker pool and cmat workspace arena must produce the same
// results they produce serially (the arena hands each goroutine disjoint
// scratch, so sharing cannot bleed state between tenants), and the arena
// must keep serving pooled buffers while both are active. The Green's
// function tensors are compared exactly — every grid point writes a
// disjoint slot, so scheduling cannot perturb them — while the scalar
// contact currents accumulate in completion order and are held to a
// last-ulp relative tolerance instead. Run under -race this is also the
// core data-race check for concurrent runs.
func TestTwoSimulatorsConcurrentSharedPool(t *testing.T) {
	obs.Enable()
	t.Cleanup(obs.Disable)

	mkOpts := func(variant int) Options {
		opts := DefaultOptions()
		opts.MaxIter = 3
		opts.Workers = 2
		if variant == 1 {
			opts.Mixing = 0.7
		}
		return opts
	}
	serial := make([]*Result, 2)
	for i := range serial {
		res, err := miniSim(t, mkOpts(i)).Run()
		if err != nil {
			t.Fatal(err)
		}
		serial[i] = res
	}

	hitsBefore := obs.GetCounter("cmat.pool.hit").Value()
	concurrent := make([]*Result, 2)
	errs := make([]error, 2)
	var wg sync.WaitGroup
	for i := 0; i < 2; i++ {
		wg.Add(1)
		go func(i int) {
			defer wg.Done()
			concurrent[i], errs[i] = miniSim(t, mkOpts(i)).RunCtx(context.Background())
		}(i)
	}
	wg.Wait()
	for i := 0; i < 2; i++ {
		if errs[i] != nil {
			t.Fatalf("concurrent run %d: %v", i, errs[i])
		}
		if d := serial[i].GLess.MaxAbsDiff(concurrent[i].GLess); d != 0 {
			t.Errorf("run %d: concurrent G^< differs from serial by %g, want exact equality", i, d)
		}
		if rel := math.Abs(serial[i].Obs.CurrentL-concurrent[i].Obs.CurrentL) /
			(1 + math.Abs(serial[i].Obs.CurrentL)); rel > 1e-12 {
			t.Errorf("run %d: concurrent CurrentL %g differs from serial %g (rel %g)",
				i, concurrent[i].Obs.CurrentL, serial[i].Obs.CurrentL, rel)
		}
	}
	if d := obs.GetCounter("cmat.pool.hit").Value() - hitsBefore; d == 0 {
		t.Error("workspace arena served no pooled buffers during the concurrent runs")
	}
}
