package core

import (
	"math"
	"strings"
	"testing"
	"time"

	"negfsim/internal/comm"
	"negfsim/internal/device"
	"negfsim/internal/perfmodel"
)

// spatialConfig is the baseline spatial-split configuration: the GF phase
// partitioned over `space` ranks, the SSE phase local.
func spatialConfig(space int) DistConfig {
	return DistConfig{Space: space, CommTimeout: 5 * time.Second, RetryBackoff: time.Millisecond}
}

func TestSpatialRunMatchesSerial(t *testing.T) {
	opts := DefaultOptions()
	opts.MaxIter = 3
	clean, _, err := miniSim(t, opts).RunDistributed(2, 2)
	if err != nil {
		t.Fatal(err)
	}

	sim := miniSim(t, opts)
	res, bytes, err := sim.RunDistributedFT(spatialConfig(2))
	if err != nil {
		t.Fatal(err)
	}
	if res.Iterations != clean.Iterations {
		t.Fatalf("iteration counts differ: %d vs %d", res.Iterations, clean.Iterations)
	}
	if d := clean.GLess.MaxAbsDiff(res.GLess); d > 1e-8 {
		t.Fatalf("spatial trajectory diverged from serial run: %g", d)
	}
	if d := math.Abs(clean.Obs.CurrentL - res.Obs.CurrentL); d > 1e-8*(1+math.Abs(clean.Obs.CurrentL)) {
		t.Fatalf("spatial current differs: %g vs %g", res.Obs.CurrentL, clean.Obs.CurrentL)
	}
	// Every iteration moves exactly the modeled spatial GF volume: Nkz·NE
	// distributed electron solves, phonons local.
	want := int64(res.Iterations) * int64(perfmodel.SpatialGFVolume(sim.Dev.P, 2))
	if bytes != want {
		t.Fatalf("moved %d bytes, spatial-split model predicts %d", bytes, want)
	}
}

// spatialSim builds a device with enough RGF blocks for a 3-way split
// (Bnum = 5 ≥ 2·3−1).
func spatialSim(t *testing.T, opts Options) *Simulator {
	t.Helper()
	p := device.Mini()
	p.NA, p.Bnum = 40, 5
	p.Nkz, p.Nqz, p.NE, p.Nw = 2, 2, 8, 3
	dev, err := device.New(p)
	if err != nil {
		t.Fatal(err)
	}
	return New(dev, opts)
}

func TestSpatialRecoverySurvivesRankDeath(t *testing.T) {
	opts := DefaultOptions()
	opts.MaxIter = 3
	clean, _, err := spatialSim(t, opts).RunDistributedFT(spatialConfig(3))
	if err != nil {
		t.Fatal(err)
	}

	cfg := spatialConfig(3)
	cfg.Fault = &comm.FaultPlan{Kill: true, KillRank: 2, KillAtOp: 3}
	cfg.FaultIter = 1
	res, _, err := spatialSim(t, opts).RunDistributedFT(cfg)
	if err != nil {
		t.Fatal(err)
	}
	if res.Recoveries != 1 {
		t.Fatalf("Recoveries = %d, want 1", res.Recoveries)
	}
	// The survivors re-partition over a 2-rank spatial cluster and replay
	// from the checkpoint; the result must be the fault-free one.
	if d := clean.GLess.MaxAbsDiff(res.GLess); d > 1e-8 {
		t.Fatalf("recovered spatial trajectory diverged: %g", d)
	}
	if d := math.Abs(clean.Obs.CurrentL - res.Obs.CurrentL); d > 1e-8*(1+math.Abs(clean.Obs.CurrentL)) {
		t.Fatalf("recovered current differs: %g vs %g", res.Obs.CurrentL, clean.Obs.CurrentL)
	}
	if res.Iterations != clean.Iterations {
		t.Fatalf("iteration counts differ: %d vs %d", res.Iterations, clean.Iterations)
	}
}

func TestSpatialSplitValidation(t *testing.T) {
	opts := DefaultOptions()
	opts.MaxIter = 1
	// Mini has Bnum = 3: a 3-way split needs 5 blocks.
	if _, _, err := miniSim(t, opts).RunDistributedFT(spatialConfig(3)); err == nil ||
		!strings.Contains(err.Error(), "cannot be partitioned") {
		t.Fatalf("want partition-infeasible error, got %v", err)
	}
	// A persistent cluster must match the spatial rank count.
	cl := comm.NewCluster(3)
	defer cl.Close()
	cfg := spatialConfig(2)
	cfg.Cluster = cl
	if _, _, err := miniSim(t, opts).RunDistributedFT(cfg); err == nil ||
		!strings.Contains(err.Error(), "spatial split") {
		t.Fatalf("want cluster-size error, got %v", err)
	}
}

func TestRunConfigSpatialValidationAndCanonical(t *testing.T) {
	cfg := DefaultRunConfig()
	cfg.Space = -1
	if err := cfg.Validate(); err == nil {
		t.Fatal("negative space must be rejected")
	}
	cfg = DefaultRunConfig()
	cfg.Space = 3 // Bnum = 3 < 5
	if err := cfg.Validate(); err == nil {
		t.Fatal("space too large for the device must be rejected")
	}
	cfg = DefaultRunConfig()
	cfg.Space = 2
	cfg.Gate = &GateSpec{MaxOuter: 2, Damping: 0.5}
	if err := cfg.Validate(); err == nil {
		t.Fatal("space and gate must be mutually exclusive")
	}
	cfg = DefaultRunConfig()
	cfg.Space = 1
	if err := cfg.Validate(); err != nil {
		t.Fatalf("space = 1 (local solve) must validate: %v", err)
	}
	if got := cfg.Canonical().Space; got != 0 {
		t.Fatalf("Canonical space = %d, want 0 for a sub-2 split", got)
	}
	cfg.Space = 2
	if got := cfg.Canonical().Space; got != 2 {
		t.Fatalf("Canonical space = %d, want 2 preserved", got)
	}
	dc, ok, err := cfg.DistConfig()
	if err != nil || !ok {
		t.Fatalf("DistConfig: ok=%v err=%v", ok, err)
	}
	if dc.Space != 2 || dc.TE != 0 {
		t.Fatalf("DistConfig = %+v, want spatial-only", dc)
	}
}
