package core

import (
	"context"
	"testing"

	"negfsim/internal/sse"
)

func TestDistributedOMENMatchesSerial(t *testing.T) {
	s := miniSim(t, DefaultOptions())
	gl, gg, dl, dg, _, err := s.gfPhase(context.Background(), nil, nil, nil, nil, nil, nil)
	if err != nil {
		t.Fatal(err)
	}
	in := sse.PhaseInput{GLess: gl, GGtr: gg, DLess: dl, DGtr: dg}
	serial := s.Kernel.ComputePhase(in, sse.OMEN)
	dist, err := s.DistributedSSEOMEN(in, 3)
	if err != nil {
		t.Fatal(err)
	}
	tol := 1e-9 * (1 + maxAbsG(serial.SigmaLess))
	if d := serial.SigmaLess.MaxAbsDiff(dist.SigmaLess); d > tol {
		t.Fatalf("OMEN-distributed Σ^< differs from serial by %g", d)
	}
	if d := serial.SigmaGtr.MaxAbsDiff(dist.SigmaGtr); d > tol {
		t.Fatalf("OMEN-distributed Σ^> differs from serial by %g", d)
	}
	if d := serial.PiLess.MaxAbsDiff(dist.PiLess); d > 1e-9 {
		t.Fatalf("OMEN-distributed Π^< differs from serial by %g", d)
	}
	if d := serial.PiGtr.MaxAbsDiff(dist.PiGtr); d > 1e-9 {
		t.Fatalf("OMEN-distributed Π^> differs from serial by %g", d)
	}
}

func TestOMENDistributedMovesMoreThanCA(t *testing.T) {
	if testing.Short() {
		t.Skip("long self-consistent run; skipped under -short (race gate)")
	}
	// The headline of the paper, measured end-to-end with real data: the
	// original decomposition transfers far more bytes than the CA one for
	// the same result.
	s := miniSim(t, DefaultOptions())
	gl, gg, dl, dg, _, err := s.gfPhase(context.Background(), nil, nil, nil, nil, nil, nil)
	if err != nil {
		t.Fatal(err)
	}
	in := sse.PhaseInput{GLess: gl, GGtr: gg, DLess: dl, DGtr: dg}
	omen, err := s.DistributedSSEOMEN(in, 4)
	if err != nil {
		t.Fatal(err)
	}
	dace, err := s.DistributedSSE(in, 2, 2)
	if err != nil {
		t.Fatal(err)
	}
	// At mini scale (Nqz·Nω = 12 rounds, NE/P = 4) the replication factor
	// is bounded; at paper scale the same ratio is 60–90× (Table 4). Here
	// the OMEN pattern must still move a multiple of the CA traffic.
	if omen.MeasuredBytes < 2*dace.MeasuredBytes {
		t.Fatalf("OMEN exchange (%d B) should exceed the CA exchange (%d B)",
			omen.MeasuredBytes, dace.MeasuredBytes)
	}
	// And both schemes produce the same self-energies.
	tol := 1e-9 * (1 + maxAbsG(omen.SigmaLess))
	if d := omen.SigmaLess.MaxAbsDiff(dace.SigmaLess); d > tol {
		t.Fatalf("the two distributed schemes disagree by %g", d)
	}
	// Measured OMEN traffic tracks the closed-form model (energy clamping
	// drops some shifted transfers, so measured ≤ model).
	ratio := float64(omen.MeasuredBytes) / omen.ModelBytes
	if ratio < 0.4 || ratio > 1.05 {
		t.Fatalf("OMEN measured/model ratio %.2f (measured %d, model %.0f)",
			ratio, omen.MeasuredBytes, omen.ModelBytes)
	}
}
