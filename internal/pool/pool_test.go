package pool

import (
	"sync/atomic"
	"testing"
)

// TestDoRunsAllTasks checks that every task runs exactly once and Do blocks
// until all have finished.
func TestDoRunsAllTasks(t *testing.T) {
	for _, n := range []int{0, 1, 2, 7, 64, 257} {
		var ran atomic.Int64
		tasks := make([]Task, n)
		for i := range tasks {
			tasks[i] = func() { ran.Add(1) }
		}
		Do(tasks...)
		if got := ran.Load(); got != int64(n) {
			t.Fatalf("Do(%d tasks): %d ran", n, got)
		}
	}
}

// TestNestedDoNoDeadlock saturates the pool with tasks that themselves call
// Do (and ParallelFor). The direct-handoff + inline-fallback design must
// degrade to inline execution rather than deadlock.
func TestNestedDoNoDeadlock(t *testing.T) {
	outer := 4 * Size()
	var ran atomic.Int64
	tasks := make([]Task, outer)
	for i := range tasks {
		tasks[i] = func() {
			inner := make([]Task, 2*Size())
			for j := range inner {
				inner[j] = func() { ran.Add(1) }
			}
			Do(inner...)
			ParallelFor(8, Size(), func(lo, hi int) {
				ran.Add(int64(hi - lo))
			})
		}
	}
	Do(tasks...) // hangs here if nesting can deadlock
	want := int64(outer * (2*Size() + 8))
	if got := ran.Load(); got != want {
		t.Fatalf("nested work: ran %d, want %d", got, want)
	}
}

// TestParallelForCovers checks that ParallelFor visits every index exactly
// once for a range of (n, parts) combinations including the degenerate ones.
func TestParallelForCovers(t *testing.T) {
	cases := [][2]int{{0, 4}, {1, 4}, {5, 1}, {5, 0}, {5, -3}, {7, 3}, {100, 7}, {3, 100}}
	for _, c := range cases {
		n, parts := c[0], c[1]
		hits := make([]atomic.Int32, n)
		ParallelFor(n, parts, func(lo, hi int) {
			if lo < 0 || hi > n || lo > hi {
				t.Errorf("ParallelFor(%d, %d): bad chunk [%d, %d)", n, parts, lo, hi)
			}
			for i := lo; i < hi; i++ {
				hits[i].Add(1)
			}
		})
		for i := range hits {
			if h := hits[i].Load(); h != 1 {
				t.Fatalf("ParallelFor(%d, %d): index %d visited %d times", n, parts, i, h)
			}
		}
	}
}
