// Package pool provides the persistent shared worker pool behind the
// runtime-level parallelism of the simulator: the batched small-matrix GEMM
// dispatch in cmat, the row-banded parallel GEMM, the SSE tile parallelism
// and core's per-grid-point loops. It replaces the fork/join goroutine
// spawning those call sites used to perform on every invocation with a fixed
// set of workers started once per process.
//
// The pool uses direct (unbuffered) handoff: a task is either picked up by an
// idle worker immediately or executed inline by the submitter. Tasks
// therefore never sit in a queue, the calling goroutine always participates,
// and nested Do calls from inside pool tasks cannot deadlock — a saturated
// pool simply degrades to inline execution.
package pool

import (
	"runtime"
	"sync"

	"negfsim/internal/obs"
)

// Task is one unit of work.
type Task func()

var (
	initOnce sync.Once
	handoff  chan func()
	size     int
)

// Utilization telemetry: tasks picked up by an idle worker versus tasks the
// submitting goroutine had to run inline because the pool was saturated
// (plus the submitter's own share — tasks[0] of every Do). A high inline
// fraction means the pool is the bottleneck; see docs/OBSERVABILITY.md.
var (
	obsTasksHandoff = obs.GetCounter("pool.tasks_handoff")
	obsTasksInline  = obs.GetCounter("pool.tasks_inline")
)

func ensure() {
	initOnce.Do(func() {
		size = runtime.GOMAXPROCS(0)
		handoff = make(chan func())
		obs.RegisterGaugeFunc("pool.workers", func() int64 { return int64(size) })
		for i := 0; i < size; i++ {
			go func() {
				for f := range handoff {
					f()
				}
			}()
		}
	})
}

// Size returns the number of persistent workers (GOMAXPROCS at first use).
func Size() int {
	ensure()
	return size
}

// Do runs the tasks over the persistent workers and returns when all have
// completed. Tasks no idle worker can accept run inline on the calling
// goroutine, so Do is safe to call from inside a pool task.
func Do(tasks ...Task) {
	if len(tasks) == 0 {
		return
	}
	if len(tasks) == 1 {
		tasks[0]()
		return
	}
	ensure()
	var wg sync.WaitGroup
	for _, t := range tasks[1:] {
		t := t
		wg.Add(1)
		wrapped := func() { defer wg.Done(); t() }
		select {
		case handoff <- wrapped:
			obsTasksHandoff.Inc()
		default:
			obsTasksInline.Inc()
			wrapped()
		}
	}
	obsTasksInline.Inc() // tasks[0] always runs on the submitter
	tasks[0]()
	wg.Wait()
}

// ParallelFor partitions [0, n) into at most parts contiguous chunks and
// runs fn(lo, hi) for each over the pool. parts values below 1 (and chunks
// that would be empty) collapse toward serial execution.
func ParallelFor(n, parts int, fn func(lo, hi int)) {
	if n <= 0 {
		return
	}
	if parts > n {
		parts = n
	}
	if parts <= 1 {
		fn(0, n)
		return
	}
	tasks := make([]Task, 0, parts)
	for w := 0; w < parts; w++ {
		lo := w * n / parts
		hi := (w + 1) * n / parts
		if lo == hi {
			continue
		}
		tasks = append(tasks, func() { fn(lo, hi) })
	}
	Do(tasks...)
}
