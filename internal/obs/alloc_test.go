//go:build !race

// The AllocsPerRun pins below guarantee the instrumentation layer stays off
// the heap on the steady-state hot path; the race runtime adds its own
// allocations, so they only hold un-raced.

package obs

import (
	"testing"
	"time"
)

// TestAllocsSpan pins zero allocations for a span start/stop pair with
// recording enabled — the contract that lets rgf/sse/core instrument their
// per-grid-point solves without perturbing the arena's zero-alloc steady
// state.
func TestAllocsSpan(t *testing.T) {
	withRecording(t)
	tm := GetTimer("test.alloc.span")
	avg := testing.AllocsPerRun(100, func() {
		sp := tm.Start()
		sp.End()
	})
	if avg > 0 {
		t.Fatalf("span start/stop allocates %.2f/run, want 0", avg)
	}
}

// TestAllocsSpanByName pins the registry-lookup form obs.Span(name): the
// read-locked map hit must not allocate either.
func TestAllocsSpanByName(t *testing.T) {
	withRecording(t)
	GetTimer("test.alloc.byname") // pre-register; lookups are the hot path
	avg := testing.AllocsPerRun(100, func() {
		sp := Span("test.alloc.byname")
		sp.End()
	})
	if avg > 0 {
		t.Fatalf("obs.Span allocates %.2f/run, want 0", avg)
	}
}

// TestAllocsCounterGauge pins counter increments and gauge stores.
func TestAllocsCounterGauge(t *testing.T) {
	withRecording(t)
	c := GetCounter("test.alloc.counter")
	g := GetGauge("test.alloc.gauge")
	avg := testing.AllocsPerRun(100, func() {
		c.Inc()
		c.Add(3)
		g.Set(17)
		g.Add(1)
	})
	if avg > 0 {
		t.Fatalf("counter/gauge ops allocate %.2f/run, want 0", avg)
	}
}

// TestAllocsHistogram pins direct histogram observations.
func TestAllocsHistogram(t *testing.T) {
	withRecording(t)
	var h Histogram
	avg := testing.AllocsPerRun(100, func() {
		h.Observe(12345)
	})
	if avg > 0 {
		t.Fatalf("Histogram.Observe allocates %.2f/run, want 0", avg)
	}
}

// TestAllocsDisabled pins the disabled path: with no sink registered the
// whole layer must cost nothing on the heap (and nearly nothing off it).
func TestAllocsDisabled(t *testing.T) {
	Disable()
	tm := GetTimer("test.alloc.disabled")
	c := GetCounter("test.alloc.disabled.c")
	avg := testing.AllocsPerRun(100, func() {
		sp := tm.Start()
		sp.End()
		c.Inc()
		tm.Observe(time.Millisecond)
	})
	if avg > 0 {
		t.Fatalf("disabled instrumentation allocates %.2f/run, want 0", avg)
	}
}
