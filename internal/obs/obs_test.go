package obs

import (
	"math"
	"strings"
	"testing"
	"time"
)

// withRecording enables recording for one test and restores the disabled
// default (plus a clean registry state) afterwards.
func withRecording(t *testing.T) {
	t.Helper()
	Enable()
	t.Cleanup(func() {
		Disable()
		Reset()
	})
}

func TestCounterGate(t *testing.T) {
	c := GetCounter("test.gate.counter")
	c.Add(5)
	if got := c.Value(); got != 0 {
		t.Fatalf("disabled counter recorded %d, want 0", got)
	}
	withRecording(t)
	c.Add(5)
	c.Inc()
	if got := c.Value(); got != 6 {
		t.Fatalf("enabled counter = %d, want 6", got)
	}
}

func TestRegistryIdentity(t *testing.T) {
	if GetCounter("test.identity") != GetCounter("test.identity") {
		t.Fatal("GetCounter returned distinct instances for one name")
	}
	if GetTimer("test.identity.t") != GetTimer("test.identity.t") {
		t.Fatal("GetTimer returned distinct instances for one name")
	}
	if GetGauge("test.identity.g") != GetGauge("test.identity.g") {
		t.Fatal("GetGauge returned distinct instances for one name")
	}
}

// TestHistogramEdgeCases pins the bucketing of the degenerate inputs a span
// timer can produce: exact zero, sub-nanosecond (clock ticks shorter than
// the 1 ns resolution arrive as 0), negative (monotonic-clock anomalies),
// and durations beyond one hour.
func TestHistogramEdgeCases(t *testing.T) {
	withRecording(t)
	var h Histogram

	h.Observe(0)                                   // zero duration
	h.Observe(int64(500 * time.Nanosecond / 1000)) // sub-nanosecond: 0.5 ns truncates to 0
	h.Observe(-3)                                  // clock anomaly
	b := h.Buckets()
	if b[0] != 3 {
		t.Fatalf("zero/sub-ns/negative observations in bucket 0 = %d, want 3", b[0])
	}
	if h.Sum() != 0 {
		t.Fatalf("sum after non-positive observations = %d, want 0", h.Sum())
	}

	h.Observe(1) // smallest positive: [1,2) is bucket 1
	if b := h.Buckets(); b[1] != 1 {
		t.Fatalf("Observe(1) landed outside bucket 1: %v", b[:4])
	}

	twoHours := int64(2 * time.Hour)
	h.Observe(twoHours)
	idx := bucketOf(twoHours)
	if lo, hi := BucketBound(idx-1), BucketBound(idx); int64(2*time.Hour) <= lo || twoHours > hi {
		t.Fatalf("2h observation bucket %d has bounds (%d, %d] that exclude it", idx, lo, hi)
	}
	if b := h.Buckets(); b[idx] != 1 {
		t.Fatalf("2h observation missing from bucket %d", idx)
	}

	h.Observe(math.MaxInt64)
	if b := h.Buckets(); b[histBuckets-1] != 1 {
		t.Fatalf("MaxInt64 observation missing from final bucket")
	}
	if h.Count() != 6 {
		t.Fatalf("count = %d, want 6", h.Count())
	}
}

func TestBucketBoundsArePartition(t *testing.T) {
	// Every bucket's range must start right after the previous bound.
	for i := 1; i < histBuckets; i++ {
		lo := BucketBound(i-1) + 1
		if bucketOf(lo) != i {
			t.Fatalf("value %d should open bucket %d, got %d", lo, i, bucketOf(lo))
		}
		hi := BucketBound(i)
		if hi > 0 && bucketOf(hi) != i {
			t.Fatalf("value %d should close bucket %d, got %d", hi, i, bucketOf(hi))
		}
	}
	if BucketBound(histBuckets-1) != math.MaxInt64 {
		t.Fatalf("final bound = %d, want MaxInt64", BucketBound(histBuckets-1))
	}
}

func TestSpanRecords(t *testing.T) {
	withRecording(t)
	tm := GetTimer("test.span")
	sp := tm.Start()
	time.Sleep(2 * time.Millisecond)
	sp.End()
	if tm.Count() != 1 {
		t.Fatalf("span count = %d, want 1", tm.Count())
	}
	if tm.Total() < time.Millisecond {
		t.Fatalf("span total %v implausibly short", tm.Total())
	}
	// Convenience form shares the same timer.
	sp2 := Span("test.span")
	sp2.End()
	if tm.Count() != 2 {
		t.Fatalf("obs.Span did not hit the registered timer (count %d)", tm.Count())
	}
}

func TestSpanDisabledIsInert(t *testing.T) {
	Disable()
	tm := GetTimer("test.span.disabled")
	sp := tm.Start()
	Enable() // enabling mid-span must not resurrect a span started disabled
	defer func() { Disable(); Reset() }()
	sp.End()
	if tm.Count() != 0 {
		t.Fatalf("disabled-start span recorded (count %d)", tm.Count())
	}
}

func TestTimerDelta(t *testing.T) {
	withRecording(t)
	tm := GetTimer("test.delta")
	tm.Observe(time.Millisecond)
	snap := TimerStats()
	tm.Observe(3 * time.Millisecond)
	d := TimerDelta(snap)
	var found *TimerStat
	for i := range d {
		if d[i].Name == "test.delta" {
			found = &d[i]
		}
	}
	if found == nil {
		t.Fatalf("delta missing test.delta: %v", d)
	}
	if found.Count != 1 || found.Total != 3*time.Millisecond {
		t.Fatalf("delta = %+v, want count 1 total 3ms", *found)
	}
}

func TestGaugeFuncAndLabels(t *testing.T) {
	withRecording(t)
	name := Labeled("test.bytes", "rank", "2")
	if name != `test.bytes{rank="2"}` {
		t.Fatalf("Labeled = %q", name)
	}
	var v int64 = 41
	RegisterGaugeFunc(name, func() int64 { return v })
	got, ok := GaugeValue(name)
	if !ok || got != 41 {
		t.Fatalf("GaugeValue = %d, %v", got, ok)
	}
	v = 42 // funcs read live state
	if got, _ := GaugeValue(name); got != 42 {
		t.Fatalf("gauge func not live: %d", got)
	}
}

func TestWriteMetricsExposition(t *testing.T) {
	withRecording(t)
	GetCounter("test.expo.hits").Add(7)
	RegisterGaugeFunc(Labeled("test.expo.bytes", "rank", "0"), func() int64 { return 9 })
	GetTimer("test.expo.phase").Observe(time.Microsecond)

	var sb strings.Builder
	WriteMetrics(&sb)
	out := sb.String()
	for _, want := range []string{
		"# TYPE negfsim_test_expo_hits counter",
		"negfsim_test_expo_hits 7",
		`negfsim_test_expo_bytes{rank="0"} 9`,
		"# TYPE negfsim_test_expo_phase_seconds histogram",
		"negfsim_test_expo_phase_seconds_count 1",
		`negfsim_test_expo_phase_seconds_bucket{le="+Inf"} 1`,
	} {
		if !strings.Contains(out, want) {
			t.Fatalf("exposition missing %q:\n%s", want, out)
		}
	}
}

func TestWriteSummary(t *testing.T) {
	withRecording(t)
	GetTimer("test.summary.phase").Observe(50 * time.Millisecond)
	GetCounter("test.summary.count").Add(3)
	var sb strings.Builder
	WriteSummary(&sb, 100*time.Millisecond)
	out := sb.String()
	if !strings.Contains(out, "test.summary.phase") || !strings.Contains(out, "50.0%") {
		t.Fatalf("summary missing phase share:\n%s", out)
	}
	if !strings.Contains(out, "test.summary.count") {
		t.Fatalf("summary missing counter:\n%s", out)
	}
}

func TestReset(t *testing.T) {
	withRecording(t)
	GetCounter("test.reset.c").Add(2)
	GetTimer("test.reset.t").Observe(time.Second)
	Reset()
	if GetCounter("test.reset.c").Value() != 0 {
		t.Fatal("counter survived Reset")
	}
	if GetTimer("test.reset.t").Count() != 0 {
		t.Fatal("timer survived Reset")
	}
}
