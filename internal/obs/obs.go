// Package obs is the zero-dependency observability layer of the simulator:
// a named registry of atomic counters, gauges and log-scale histograms, plus
// lightweight span timers recording per-phase wall time and invocation
// counts for the NEGF loop phases (boundary self-energies, RGF sweeps, SSE
// Σ/Π kernels, communication exchanges, Poisson/Gummel outer iterations).
//
// The package is built for hot paths:
//
//   - Recording is allocation-free: counters and histograms are atomics,
//     span handles are stack values, and no instrument allocates after
//     registration (pinned by AllocsPerRun tests).
//   - Recording is globally gated by Enable/Disable and compiles to a
//     single atomic load plus an untaken branch while disabled, so
//     instrumented kernels run at full speed when no sink is registered.
//     The gate starts disabled; consumers (cmd/qtsim's -metrics-addr and
//     -trace-out flags, tests) enable it explicitly.
//
// Instruments are registered lazily by name: GetCounter, GetGauge, GetTimer
// and RegisterGaugeFunc all create-or-return, so producers can hold package
// variables and avoid the registry lookup on hot paths. Names are dotted
// lowercase paths ("cmat.pool.hit"); per-instance dimensions use the
// Prometheus-style label suffix produced by Labeled ("comm.sent_bytes" +
// rank → `comm.sent_bytes{rank="3"}`). See docs/OBSERVABILITY.md for the
// full metric reference and the exposition formats.
package obs

import (
	"fmt"
	"sort"
	"strings"
	"sync"
	"sync/atomic"
)

// enabled is the global recording gate. All Add/Set/Observe/Start entry
// points check it first, so instrumentation is a near-nop while disabled.
var enabled atomic.Bool

// Enable turns recording on. Instruments registered while disabled exist
// but hold zeros until enabled.
func Enable() { enabled.Store(true) }

// Disable turns recording off. Values recorded so far are retained.
func Disable() { enabled.Store(false) }

// Enabled reports whether recording is on. Producers with non-trivial
// instrumentation paths (building a label string, walking a structure) may
// check it to skip the work entirely.
func Enabled() bool { return enabled.Load() }

// Counter is a monotonically increasing atomic counter.
type Counter struct {
	v atomic.Int64
}

// Add increments the counter by n while recording is enabled.
func (c *Counter) Add(n int64) {
	if enabled.Load() {
		c.v.Add(n)
	}
}

// Inc increments the counter by one while recording is enabled.
func (c *Counter) Inc() { c.Add(1) }

// Value returns the current count.
func (c *Counter) Value() int64 { return c.v.Load() }

// Gauge is an atomic instantaneous value (a level, not an accumulation).
type Gauge struct {
	v atomic.Int64
}

// Set stores v while recording is enabled.
func (g *Gauge) Set(v int64) {
	if enabled.Load() {
		g.v.Store(v)
	}
}

// Add offsets the gauge by n while recording is enabled.
func (g *Gauge) Add(n int64) {
	if enabled.Load() {
		g.v.Add(n)
	}
}

// Value returns the current level.
func (g *Gauge) Value() int64 { return g.v.Load() }

// registry is the process-global name → instrument store. Lookups take the
// read lock only; hot paths are expected to cache the returned pointers in
// package variables so the registry is off the steady-state path entirely.
var registry struct {
	mu         sync.RWMutex
	counters   map[string]*Counter
	gauges     map[string]*Gauge
	gaugeFuncs map[string]func() int64
	timers     map[string]*Timer
}

// getOrCreate returns m[name], creating it with mk under the write lock if
// absent. The double-checked locking keeps the common path on RLock.
func getOrCreate[T any](mu *sync.RWMutex, m *map[string]*T, name string, mk func() *T) *T {
	mu.RLock()
	v := (*m)[name]
	mu.RUnlock()
	if v != nil {
		return v
	}
	mu.Lock()
	defer mu.Unlock()
	if *m == nil {
		*m = make(map[string]*T)
	}
	if v := (*m)[name]; v != nil {
		return v
	}
	v = mk()
	(*m)[name] = v
	return v
}

// GetCounter returns the counter registered under name, creating it on
// first use.
func GetCounter(name string) *Counter {
	return getOrCreate(&registry.mu, &registry.counters, name, func() *Counter { return new(Counter) })
}

// GetGauge returns the gauge registered under name, creating it on first
// use.
func GetGauge(name string) *Gauge {
	return getOrCreate(&registry.mu, &registry.gauges, name, func() *Gauge { return new(Gauge) })
}

// RegisterGaugeFunc registers (or replaces) a gauge whose value is computed
// by fn at read time. Use it to surface state an existing structure already
// tracks — e.g. the per-rank byte counters of a comm.Cluster — without
// double-counting on the hot path. Re-registration overwrites, so
// structures recreated per run (clusters in tests) always export the most
// recent instance.
func RegisterGaugeFunc(name string, fn func() int64) {
	registry.mu.Lock()
	defer registry.mu.Unlock()
	if registry.gaugeFuncs == nil {
		registry.gaugeFuncs = make(map[string]func() int64)
	}
	registry.gaugeFuncs[name] = fn
}

// Unregister removes whatever instrument is registered under name —
// counter, gauge, gauge func and timer alike. Producers holding a cached
// pointer can keep recording into it harmlessly; the series simply stops
// being scraped. Use it to retire per-instance labelled series whose
// instance is gone for good — e.g. the per-job counters of an evicted
// qtsimd job — so a long-lived process's registry stays bounded.
func Unregister(name string) {
	registry.mu.Lock()
	defer registry.mu.Unlock()
	delete(registry.counters, name)
	delete(registry.gauges, name)
	delete(registry.gaugeFuncs, name)
	delete(registry.timers, name)
}

// UnregisterGaugeFunc removes the gauge func registered under name, if any.
// Use it when the structure a func reads is being retired and no successor
// replaces the series — e.g. the per-rank byte gauges of a comm.Cluster
// whose replacement has fewer ranks — so scrapes don't keep reporting a
// dead instance.
func UnregisterGaugeFunc(name string) {
	registry.mu.Lock()
	defer registry.mu.Unlock()
	delete(registry.gaugeFuncs, name)
}

// GaugeValue returns the current value of the named gauge or gauge func,
// and whether it exists. Plain gauges shadow gauge funcs of the same name.
func GaugeValue(name string) (int64, bool) {
	registry.mu.RLock()
	g := registry.gauges[name]
	fn := registry.gaugeFuncs[name]
	registry.mu.RUnlock()
	if g != nil {
		return g.Value(), true
	}
	if fn != nil {
		return fn(), true
	}
	return 0, false
}

// Labeled appends Prometheus-style labels to a metric name from key/value
// pairs: Labeled("comm.sent_bytes", "rank", "3") →
// `comm.sent_bytes{rank="3"}`, and additional pairs extend the label set
// (`comm.sent_bytes{cluster="tcp-r0",rank="3"}`). The exposition handler
// splits the suffix back out, so labeled series group under one metric
// family when scraped. An odd trailing key is ignored.
func Labeled(name string, kv ...string) string {
	var b strings.Builder
	b.WriteString(name)
	b.WriteByte('{')
	for i := 0; i+1 < len(kv); i += 2 {
		if i > 0 {
			b.WriteByte(',')
		}
		fmt.Fprintf(&b, "%s=%q", kv[i], kv[i+1])
	}
	b.WriteByte('}')
	return b.String()
}

// Stat is one named int64 reading (a counter, gauge or gauge-func value).
type Stat struct {
	Name  string
	Value int64
}

// CounterStats returns every registered counter's current value, sorted by
// name.
func CounterStats() []Stat {
	registry.mu.RLock()
	out := make([]Stat, 0, len(registry.counters))
	for name, c := range registry.counters {
		out = append(out, Stat{Name: name, Value: c.Value()})
	}
	registry.mu.RUnlock()
	sort.Slice(out, func(i, j int) bool { return out[i].Name < out[j].Name })
	return out
}

// GaugeStats returns every registered gauge and gauge func's current value,
// sorted by name. Plain gauges shadow same-named funcs.
func GaugeStats() []Stat {
	registry.mu.RLock()
	fns := make(map[string]func() int64, len(registry.gaugeFuncs))
	for name, fn := range registry.gaugeFuncs {
		if _, shadowed := registry.gauges[name]; !shadowed {
			fns[name] = fn
		}
	}
	out := make([]Stat, 0, len(registry.gauges)+len(fns))
	for name, g := range registry.gauges {
		out = append(out, Stat{Name: name, Value: g.Value()})
	}
	registry.mu.RUnlock()
	// Funcs run outside the registry lock: they may take their own locks.
	for name, fn := range fns {
		out = append(out, Stat{Name: name, Value: fn()})
	}
	sort.Slice(out, func(i, j int) bool { return out[i].Name < out[j].Name })
	return out
}

// Reset zeroes every registered counter, gauge and timer (gauge funcs read
// live state and are left alone). Intended for tests and benchmark setup;
// concurrent recorders may interleave, so quiesce producers first.
func Reset() {
	registry.mu.RLock()
	defer registry.mu.RUnlock()
	for _, c := range registry.counters {
		c.v.Store(0)
	}
	for _, g := range registry.gauges {
		g.v.Store(0)
	}
	for _, t := range registry.timers {
		t.reset()
	}
}
