package obs

import (
	"math/bits"
	"sync/atomic"
)

// histBuckets is the number of log₂ buckets: bucket 0 holds zero (and
// clamped negative) observations, bucket i ≥ 1 holds values in
// [2^(i−1), 2^i). 64 buckets cover the whole non-negative int64 range, so
// nanosecond durations from sub-nanosecond (recorded as zero) through hours
// and beyond land in a well-defined bucket with no configuration.
const histBuckets = 64

// Histogram is a fixed-footprint log₂-bucketed histogram of non-negative
// int64 values (span durations in nanoseconds, sizes in bytes). All fields
// are atomics: concurrent Observe calls are safe and allocation-free.
type Histogram struct {
	counts [histBuckets]atomic.Int64
	sum    atomic.Int64
	count  atomic.Int64
}

// bucketOf returns the bucket index of v: 0 for v ≤ 0, otherwise
// bits.Len64(v) = ⌊log₂ v⌋ + 1, so bucket i covers [2^(i−1), 2^i).
func bucketOf(v int64) int {
	if v <= 0 {
		return 0
	}
	return bits.Len64(uint64(v))
}

// BucketBound returns the inclusive upper bound of bucket i
// (2^i − 1; bucket 0's bound is 0). The last bucket's bound saturates at
// the maximum int64.
func BucketBound(i int) int64 {
	if i <= 0 {
		return 0
	}
	if i >= 63 {
		return int64(1)<<62 - 1 + int64(1)<<62 // MaxInt64 without overflow
	}
	return int64(1)<<i - 1
}

// Observe records one value while recording is enabled. Negative values
// clamp into the zero bucket (durations can only be negative through clock
// anomalies; losing their sign beats corrupting a log-scale bucket index).
func (h *Histogram) Observe(v int64) {
	if !enabled.Load() {
		return
	}
	h.observe(v)
}

// observe is Observe without the gate, for callers that already checked it.
func (h *Histogram) observe(v int64) {
	h.counts[bucketOf(v)].Add(1)
	if v > 0 {
		h.sum.Add(v)
	}
	h.count.Add(1)
}

// Count returns the number of observations.
func (h *Histogram) Count() int64 { return h.count.Load() }

// Sum returns the sum of all observed values (negatives contribute zero).
func (h *Histogram) Sum() int64 { return h.sum.Load() }

// Buckets copies the per-bucket observation counts; Buckets()[i] is the
// number of observations in [2^(i−1), 2^i) (index 0: values ≤ 0).
func (h *Histogram) Buckets() [histBuckets]int64 {
	var out [histBuckets]int64
	for i := range h.counts {
		out[i] = h.counts[i].Load()
	}
	return out
}

// reset zeroes the histogram.
func (h *Histogram) reset() {
	for i := range h.counts {
		h.counts[i].Store(0)
	}
	h.sum.Store(0)
	h.count.Store(0)
}
