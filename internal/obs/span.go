package obs

import (
	"sort"
	"time"
)

// Timer accumulates the invocation count, total wall time and a log-scale
// duration histogram of one named phase. Timers are the backing store of
// spans: each Start/End pair observes one duration. Concurrent spans on the
// same timer are safe and simply accumulate — nested or overlapping phases
// (an rgf.electron span inside a core.gf span, parallel SSE tiles on worker
// goroutines) each record their own wall time, so a timer's Total is
// cumulative time spent in the phase, which for parallel phases can exceed
// elapsed wall clock.
type Timer struct {
	name string
	hist Histogram
}

// GetTimer returns the timer registered under name, creating it on first
// use. Hot paths should call this once (package variable) and keep the
// pointer; Span is the convenience wrapper that looks up per call.
func GetTimer(name string) *Timer {
	return getOrCreate(&registry.mu, &registry.timers, name, func() *Timer { return &Timer{name: name} })
}

// Span looks up (or registers) the named timer and starts a span on it:
//
//	sp := obs.Span("rgf.electron")
//	... phase body ...
//	sp.End()
//
// The handle is a stack value; starting and ending a span performs no heap
// allocation, and while recording is disabled the returned handle is inert
// and no clock is read.
func Span(name string) SpanHandle {
	if !enabled.Load() {
		return SpanHandle{}
	}
	return SpanHandle{t: GetTimer(name), start: time.Now()}
}

// Start begins a span on t. Equivalent to obs.Span(name) without the
// registry lookup — the form hot paths should use.
func (t *Timer) Start() SpanHandle {
	if !enabled.Load() {
		return SpanHandle{}
	}
	return SpanHandle{t: t, start: time.Now()}
}

// Observe records an externally measured duration as one invocation, for
// phases whose boundaries are timed by the caller.
func (t *Timer) Observe(d time.Duration) {
	if !enabled.Load() {
		return
	}
	t.hist.observe(int64(d))
}

// Name returns the timer's registered name.
func (t *Timer) Name() string { return t.name }

// Count returns the number of completed spans.
func (t *Timer) Count() int64 { return t.hist.Count() }

// Total returns the accumulated duration of all completed spans.
func (t *Timer) Total() time.Duration { return time.Duration(t.hist.Sum()) }

// Hist returns the timer's duration histogram (nanosecond buckets).
func (t *Timer) Hist() *Histogram { return &t.hist }

// reset zeroes the timer.
func (t *Timer) reset() { t.hist.reset() }

// SpanHandle is an in-flight span. The zero value (returned while recording
// is disabled) is valid and End on it is a no-op.
type SpanHandle struct {
	t     *Timer
	start time.Time
}

// End stops the span and records its duration on the owning timer. Spans
// started while recording was disabled record nothing even if recording was
// enabled in between (their start time was never taken).
func (s SpanHandle) End() {
	if s.t == nil {
		return
	}
	s.t.hist.observe(int64(time.Since(s.start)))
}

// TimerStat is one timer's cumulative reading.
type TimerStat struct {
	Name  string
	Count int64
	Total time.Duration
}

// TimerStats returns every registered timer's count and total, sorted by
// name. Timers that have never completed a span are omitted.
func TimerStats() []TimerStat {
	registry.mu.RLock()
	out := make([]TimerStat, 0, len(registry.timers))
	for name, t := range registry.timers {
		if c := t.Count(); c > 0 {
			out = append(out, TimerStat{Name: name, Count: c, Total: t.Total()})
		}
	}
	registry.mu.RUnlock()
	sort.Slice(out, func(i, j int) bool { return out[i].Name < out[j].Name })
	return out
}

// TimerDelta subtracts a previous TimerStats snapshot from the current
// state, returning the per-timer activity in between (timers with no new
// spans are omitted). It is how per-iteration phase breakdowns are carved
// out of the cumulative registry.
func TimerDelta(prev []TimerStat) []TimerStat {
	base := make(map[string]TimerStat, len(prev))
	for _, s := range prev {
		base[s.Name] = s
	}
	cur := TimerStats()
	out := cur[:0]
	for _, s := range cur {
		b := base[s.Name]
		if s.Count == b.Count && s.Total == b.Total {
			continue
		}
		out = append(out, TimerStat{Name: s.Name, Count: s.Count - b.Count, Total: s.Total - b.Total})
	}
	return out
}
