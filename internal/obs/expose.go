package obs

import (
	"expvar"
	"fmt"
	"io"
	"net/http"
	"strings"
	"sync"
	"time"
)

// This file holds the consumer side of the registry: the Prometheus-style
// text exposition (served by cmd/qtsim's -metrics-addr endpoint), the
// expvar bridge, and the human-readable end-of-run summary table.

// promName converts a registry name to a Prometheus metric name: the
// "negfsim_" namespace prefix, dots to underscores, any label suffix
// produced by Labeled passed through untouched.
func promName(name string) string {
	base, labels, _ := strings.Cut(name, "{")
	base = "negfsim_" + strings.ReplaceAll(base, ".", "_")
	if labels == "" {
		return base
	}
	return base + "{" + labels
}

// promFamily returns the metric family (name without labels) of a registry
// name, in Prometheus form.
func promFamily(name string) string {
	base, _, _ := strings.Cut(name, "{")
	return "negfsim_" + strings.ReplaceAll(base, ".", "_")
}

// writeTyped writes one # TYPE header per metric family followed by its
// samples. stats must be sorted by name, which groups label variants of a
// family together.
func writeTyped(w io.Writer, stats []Stat, kind string) {
	lastFamily := ""
	for _, s := range stats {
		if fam := promFamily(s.Name); fam != lastFamily {
			fmt.Fprintf(w, "# TYPE %s %s\n", fam, kind)
			lastFamily = fam
		}
		fmt.Fprintf(w, "%s %d\n", promName(s.Name), s.Value)
	}
}

// WriteMetrics writes the whole registry in Prometheus text exposition
// format: counters and gauges as plain samples, timers as cumulative
// histograms in seconds with _sum and _count series.
func WriteMetrics(w io.Writer) {
	writeTyped(w, CounterStats(), "counter")
	writeTyped(w, GaugeStats(), "gauge")

	registry.mu.RLock()
	timers := make(map[string]*Timer, len(registry.timers))
	for name, t := range registry.timers {
		timers[name] = t
	}
	registry.mu.RUnlock()
	for _, st := range TimerStats() {
		t := timers[st.Name]
		if t == nil {
			continue
		}
		fam := promFamily(st.Name) + "_seconds"
		fmt.Fprintf(w, "# TYPE %s histogram\n", fam)
		buckets := t.Hist().Buckets()
		var cum int64
		for i, n := range buckets {
			if n == 0 {
				continue // empty buckets add nothing; emit only informative bounds
			}
			cum += n
			fmt.Fprintf(w, "%s_bucket{le=%q} %d\n", fam, formatSeconds(BucketBound(i)), cum)
		}
		fmt.Fprintf(w, "%s_bucket{le=\"+Inf\"} %d\n", fam, st.Count)
		fmt.Fprintf(w, "%s_sum %g\n", fam, st.Total.Seconds())
		fmt.Fprintf(w, "%s_count %d\n", fam, st.Count)
	}
}

// formatSeconds renders a nanosecond bound as seconds for a le label.
func formatSeconds(ns int64) string {
	return fmt.Sprintf("%g", float64(ns)/1e9)
}

// Handler serves the text exposition, for mounting at /metrics.
func Handler() http.Handler {
	return http.HandlerFunc(func(w http.ResponseWriter, _ *http.Request) {
		w.Header().Set("Content-Type", "text/plain; version=0.0.4; charset=utf-8")
		WriteMetrics(w)
	})
}

var expvarOnce sync.Once

// PublishExpvar publishes the registry under the expvar key "negfsim" as a
// JSON object of counters, gauges and timers (count + total nanoseconds),
// so /debug/vars carries the simulator's metrics next to the runtime's.
// Safe to call more than once; only the first call registers.
func PublishExpvar() {
	expvarOnce.Do(func() {
		expvar.Publish("negfsim", expvar.Func(func() any {
			counters := map[string]int64{}
			for _, s := range CounterStats() {
				counters[s.Name] = s.Value
			}
			gauges := map[string]int64{}
			for _, s := range GaugeStats() {
				gauges[s.Name] = s.Value
			}
			timers := map[string]map[string]int64{}
			for _, s := range TimerStats() {
				timers[s.Name] = map[string]int64{"count": s.Count, "total_ns": int64(s.Total)}
			}
			return map[string]any{"counters": counters, "gauges": gauges, "timers": timers}
		}))
	})
}

// WriteSummary writes the human-readable end-of-run table: every timer with
// calls, total, mean and (when wall > 0) the share of the given wall time,
// followed by the non-zero counters and the gauges. Shares of nested or
// parallel phases legitimately sum past 100%: they measure cumulative time
// inside the phase, not exclusive time.
func WriteSummary(w io.Writer, wall time.Duration) {
	stats := TimerStats()
	if len(stats) > 0 {
		fmt.Fprintf(w, "--- phase timers %s\n", strings.Repeat("-", 48))
		if wall > 0 {
			fmt.Fprintf(w, "%-28s %9s %12s %12s %7s\n", "span", "calls", "total", "mean", "%wall")
		} else {
			fmt.Fprintf(w, "%-28s %9s %12s %12s\n", "span", "calls", "total", "mean")
		}
		for _, s := range stats {
			mean := time.Duration(0)
			if s.Count > 0 {
				mean = s.Total / time.Duration(s.Count)
			}
			if wall > 0 {
				fmt.Fprintf(w, "%-28s %9d %12s %12s %6.1f%%\n",
					s.Name, s.Count, round(s.Total), round(mean),
					100*float64(s.Total)/float64(wall))
			} else {
				fmt.Fprintf(w, "%-28s %9d %12s %12s\n", s.Name, s.Count, round(s.Total), round(mean))
			}
		}
	}
	if cs := CounterStats(); len(cs) > 0 {
		fmt.Fprintf(w, "--- counters %s\n", strings.Repeat("-", 52))
		for _, s := range cs {
			fmt.Fprintf(w, "%-40s %14d\n", s.Name, s.Value)
		}
	}
	if gs := GaugeStats(); len(gs) > 0 {
		fmt.Fprintf(w, "--- gauges %s\n", strings.Repeat("-", 54))
		for _, s := range gs {
			fmt.Fprintf(w, "%-40s %14d\n", s.Name, s.Value)
		}
	}
}

// round trims a duration to three significant sub-unit digits for tables.
func round(d time.Duration) time.Duration {
	switch {
	case d >= time.Second:
		return d.Round(time.Millisecond)
	case d >= time.Millisecond:
		return d.Round(time.Microsecond)
	default:
		return d
	}
}
