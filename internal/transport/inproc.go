package transport

// Inproc is the in-process transport: the mailbox matrix the simulated
// cluster has always run on, extracted behind the Transport interface. Every
// rank is local, a link is a buffered channel shared directly between sender
// and receiver (so SendCh and RecvCh return the same channel), and there is
// no failure mode — the only ways an in-process exchange ends early are the
// cluster-level fault plan, cancellation and deadline, none of which live in
// the transport.
type Inproc struct {
	n       int
	mailbox [][]chan []complex128 // mailbox[to][from]
}

// NewInproc builds the mailbox transport for n ranks.
func NewInproc(n int) *Inproc {
	t := &Inproc{n: n, mailbox: make([][]chan []complex128, n)}
	for to := 0; to < n; to++ {
		t.mailbox[to] = make([]chan []complex128, n)
		for from := 0; from < n; from++ {
			t.mailbox[to][from] = make(chan []complex128, LinkDepth)
		}
	}
	return t
}

// Size returns the number of ranks.
func (t *Inproc) Size() int { return t.n }

// Local reports true for every rank: the whole cluster shares this process.
func (t *Inproc) Local(int) bool { return true }

// SendCh returns the mailbox channel of the from→to link.
func (t *Inproc) SendCh(from, to int) chan<- []complex128 { return t.mailbox[to][from] }

// RecvCh returns the same mailbox channel the sender posts on — delivery is
// the channel receive itself.
func (t *Inproc) RecvCh(to, from int) <-chan []complex128 { return t.mailbox[to][from] }

// Dead returns nil: the in-process transport has no failure mode. A nil
// channel blocks forever in a select, so callers need no special casing.
func (t *Inproc) Dead() <-chan struct{} { return nil }

// DeadRank returns -1: no peer can die.
func (t *Inproc) DeadRank() int { return -1 }

// DeadErr returns nil: no link can fail.
func (t *Inproc) DeadErr() error { return nil }

// Close is a no-op: mailbox channels are garbage-collected with the
// transport, and closing them would panic concurrent senders.
func (t *Inproc) Close() error { return nil }
