package transport

import (
	"bufio"
	"bytes"
	"context"
	"fmt"
	"net"
	"strings"
	"testing"
	"time"
)

// listeners reserves n loopback listeners on ephemeral ports and returns
// them with their addresses, so a test cluster's peer list is conflict-free
// by construction.
func listeners(t *testing.T, n int) ([]net.Listener, []string) {
	t.Helper()
	lns := make([]net.Listener, n)
	addrs := make([]string, n)
	for i := range lns {
		ln, err := net.Listen("tcp", "127.0.0.1:0")
		if err != nil {
			t.Fatal(err)
		}
		lns[i] = ln
		addrs[i] = ln.Addr().String()
	}
	return lns, addrs
}

// tcpPair builds a connected 2-rank transport over loopback and registers
// teardown.
func tcpPair(t *testing.T, ctx context.Context) (*TCP, *TCP) {
	t.Helper()
	lns, addrs := listeners(t, 2)
	t0, err := NewTCPWith(ctx, 0, addrs, TCPConfig{Listener: lns[0]})
	if err != nil {
		t.Fatal(err)
	}
	t1, err := NewTCPWith(ctx, 1, addrs, TCPConfig{Listener: lns[1]})
	if err != nil {
		t.Fatal(err)
	}
	t.Cleanup(func() { t0.Close(); t1.Close() })
	return t0, t1
}

func TestFrameRoundTrip(t *testing.T) {
	var scratch [16 * 512]byte
	for _, n := range []int{0, 1, 511, 512, 513, 4097} {
		msg := make([]complex128, n)
		for i := range msg {
			msg[i] = complex(float64(i)+0.25, -float64(i)*3)
		}
		var buf bytes.Buffer
		if err := writeFrame(&buf, msg, scratch[:]); err != nil {
			t.Fatal(err)
		}
		if want := 4 + 16*n; buf.Len() != want {
			t.Fatalf("n=%d: frame is %d bytes, want %d", n, buf.Len(), want)
		}
		got, err := readFrame(bufio.NewReader(&buf))
		if err != nil {
			t.Fatal(err)
		}
		if len(got) != n {
			t.Fatalf("n=%d: decoded %d elements", n, len(got))
		}
		for i := range got {
			if got[i] != msg[i] {
				t.Fatalf("n=%d: element %d = %v, want %v", n, i, got[i], msg[i])
			}
		}
	}
}

func TestTCPDeliversOrderedBothDirections(t *testing.T) {
	t0, t1 := tcpPair(t, context.Background())
	const msgs = 200
	go func() {
		for i := 0; i < msgs; i++ {
			t0.SendCh(0, 1) <- []complex128{complex(float64(i), 0)}
			t1.SendCh(1, 0) <- []complex128{complex(0, float64(i))}
		}
	}()
	for i := 0; i < msgs; i++ {
		if got := <-t1.RecvCh(1, 0); real(got[0]) != float64(i) {
			t.Fatalf("rank 1 message %d out of order: %v", i, got)
		}
		if got := <-t0.RecvCh(0, 1); imag(got[0]) != float64(i) {
			t.Fatalf("rank 0 message %d out of order: %v", i, got)
		}
	}
}

func TestTCPSelfLinkStaysLocal(t *testing.T) {
	t0, _ := tcpPair(t, context.Background())
	t0.SendCh(0, 0) <- []complex128{42}
	if got := <-t0.RecvCh(0, 0); got[0] != 42 {
		t.Fatalf("self link delivered %v", got)
	}
}

func TestTCPPeerCloseMarksDead(t *testing.T) {
	t0, t1 := tcpPair(t, context.Background())
	// Establish the link, then tear down rank 1: rank 0 must see the death.
	t0.SendCh(0, 1) <- []complex128{1}
	<-t1.RecvCh(1, 0)
	t1.Close()
	select {
	case <-t0.Dead():
	case <-time.After(5 * time.Second):
		t.Fatal("peer close not detected")
	}
	if r := t0.DeadRank(); r != 1 {
		t.Fatalf("dead rank %d, want 1", r)
	}
	if t0.DeadErr() == nil {
		t.Fatal("dead link must carry a cause")
	}
}

func TestTCPHandshakeRejectsWrongTarget(t *testing.T) {
	lns, addrs := listeners(t, 2)
	tr, err := NewTCPWith(context.Background(), 1, addrs, TCPConfig{Listener: lns[1]})
	if err != nil {
		t.Fatal(err)
	}
	defer tr.Close()
	lns[0].Close()
	conn, err := net.Dial("tcp", addrs[1])
	if err != nil {
		t.Fatal(err)
	}
	defer conn.Close()
	// Claim to be rank 0 dialing rank 0 (wrong target): the acceptor must
	// drop the connection without acking.
	if err := shakeHands(conn, 0, 0, 2); err == nil {
		t.Fatal("mis-addressed handshake should not be acked")
	}
}

func TestTCPDialRetriesUntilPeerUp(t *testing.T) {
	lns, addrs := listeners(t, 2)
	ctx := context.Background()
	t0, err := NewTCPWith(ctx, 0, addrs, TCPConfig{Listener: lns[0], RetryInterval: 20 * time.Millisecond})
	if err != nil {
		t.Fatal(err)
	}
	defer t0.Close()
	// Rank 1 is not up yet: close its reserved listener so dials are refused,
	// then bring the real transport up on the same address shortly after.
	addr := addrs[1]
	lns[1].Close()
	t0.SendCh(0, 1) <- []complex128{7}
	time.Sleep(100 * time.Millisecond)
	ln, err := net.Listen("tcp", addr)
	if err != nil {
		t.Skipf("ephemeral port %s not reusable: %v", addr, err)
	}
	t1, err := NewTCPWith(ctx, 1, addrs, TCPConfig{Listener: ln})
	if err != nil {
		t.Fatal(err)
	}
	defer t1.Close()
	select {
	case got := <-t1.RecvCh(1, 0):
		if got[0] != 7 {
			t.Fatalf("delivered %v", got)
		}
	case <-time.After(5 * time.Second):
		t.Fatal("message not delivered after peer came up")
	}
}

// A dead peer must surface the dial timeout close to DialTimeout, not
// DialTimeout plus however much of a retry pause was already under way: the
// deadline is checked before sleeping and the final pause is capped at the
// time remaining. With DialTimeout 200ms and RetryInterval 150ms the old
// after-the-sleep check gave up only at ~300ms.
func TestTCPDialTimeoutHonored(t *testing.T) {
	lns, addrs := listeners(t, 2)
	lns[1].Close() // rank 1 stays down: every dial is refused immediately
	tr, err := NewTCPWith(context.Background(), 0, addrs, TCPConfig{
		Listener:      lns[0],
		DialTimeout:   200 * time.Millisecond,
		RetryInterval: 150 * time.Millisecond,
	})
	if err != nil {
		t.Fatal(err)
	}
	defer tr.Close()
	start := time.Now()
	tr.SendCh(0, 1) <- []complex128{1}
	select {
	case <-tr.Dead():
	case <-time.After(5 * time.Second):
		t.Fatal("dial timeout never surfaced")
	}
	elapsed := time.Since(start)
	if elapsed < 150*time.Millisecond {
		t.Fatalf("gave up after %v, before the deadline", elapsed)
	}
	if elapsed > 280*time.Millisecond {
		t.Fatalf("gave up after %v, overshooting the 200ms deadline by a retry interval", elapsed)
	}
	if err := tr.DeadErr(); err == nil || !strings.Contains(err.Error(), "no answer after") {
		t.Fatalf("dead link error = %v, want the dial-timeout cause", err)
	}
}

func TestTCPRejectsBadConfigs(t *testing.T) {
	if _, err := NewTCP(context.Background(), 2, []string{"a", "b"}); err == nil {
		t.Fatal("out-of-range rank must be rejected")
	}
	if _, err := NewTCP(context.Background(), 0, []string{"a"}); err == nil {
		t.Fatal("single-peer cluster must be rejected")
	}
}

func TestInprocLinksAreSharedChannels(t *testing.T) {
	tr := NewInproc(3)
	if tr.Size() != 3 || !tr.Local(2) {
		t.Fatal("inproc must host every rank")
	}
	tr.SendCh(0, 1) <- []complex128{9}
	if got := <-tr.RecvCh(1, 0); got[0] != 9 {
		t.Fatalf("delivered %v", got)
	}
	if tr.Dead() != nil || tr.DeadRank() != -1 || tr.DeadErr() != nil {
		t.Fatal("inproc has no failure mode")
	}
	if err := tr.Close(); err != nil {
		t.Fatal(err)
	}
}

// TestTCPManyRanksAllToAll exercises the full mesh: 4 single-rank
// transports over loopback, every ordered pair exchanging one message.
func TestTCPManyRanksAllToAll(t *testing.T) {
	const n = 4
	lns, addrs := listeners(t, n)
	trs := make([]*TCP, n)
	for i := 0; i < n; i++ {
		tr, err := NewTCPWith(context.Background(), i, addrs, TCPConfig{Listener: lns[i]})
		if err != nil {
			t.Fatal(err)
		}
		trs[i] = tr
	}
	t.Cleanup(func() {
		for _, tr := range trs {
			tr.Close()
		}
	})
	errc := make(chan error, n)
	for i := 0; i < n; i++ {
		go func(i int) {
			for j := 0; j < n; j++ {
				trs[i].SendCh(i, j) <- []complex128{complex(float64(10*i+j), 0)}
			}
			for j := 0; j < n; j++ {
				got := <-trs[i].RecvCh(i, j)
				if want := complex(float64(10*j+i), 0); got[0] != want {
					errc <- fmt.Errorf("rank %d from %d: %v, want %v", i, j, got[0], want)
					return
				}
			}
			errc <- nil
		}(i)
	}
	for i := 0; i < n; i++ {
		if err := <-errc; err != nil {
			t.Fatal(err)
		}
	}
}
