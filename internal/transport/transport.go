// Package transport carries the simulated cluster's messages between ranks:
// ordered []complex128 payloads moving over directed rank→rank links. Two
// implementations share one interface — Inproc, the channel mailboxes the
// in-process cluster has always used, and TCP, which frames the same payloads
// onto one duplex loopback-or-network connection per rank pair — so
// comm.Cluster runs the same exchange patterns whether its ranks are
// goroutines in one process or peers spread across machines.
//
// The interface is deliberately channel-shaped: links are exposed as Go
// channels, so the cluster composes them in a select with its cancellation,
// failure and deadline channels without the transport knowing any of those
// policies. A transport only moves bytes; timeouts, fault injection and byte
// accounting stay in comm.
package transport

// Transport moves ordered messages over directed rank→rank links.
//
// Contract, shared by every implementation and pinned by the conformance
// suite in internal/comm:
//
//   - Per-link FIFO: messages posted on SendCh(i, j) are delivered on the
//     peer's RecvCh(j, i) in post order. No ordering holds across links.
//   - Bounded buffering: a link absorbs a bounded number of in-flight
//     messages (LinkDepth); past that, posting blocks until the receiver
//     drains, which is how backpressure propagates to senders.
//   - Payload isolation: a delivered slice is owned by the receiver; the
//     transport never aliases it with a sender's buffer.
//   - Failure: a transport that can lose a peer (TCP) closes Dead() on the
//     first unrecoverable link error and reports the peer and cause through
//     DeadRank/DeadErr. In-process transports cannot lose a peer and return
//     a nil Dead channel (which blocks forever in a select, by design).
type Transport interface {
	// Size returns the number of ranks the transport connects.
	Size() int

	// Local reports whether rank r executes in this process. The in-process
	// transport hosts every rank; the TCP transport hosts exactly one.
	Local(r int) bool

	// SendCh returns the channel on which local rank `from` posts messages
	// bound for rank `to`. Posting may block when the link is congested;
	// callers select on it together with their own cancellation channels.
	SendCh(from, to int) chan<- []complex128

	// RecvCh returns the channel delivering messages from rank `from` to
	// local rank `to`, in send order.
	RecvCh(to, from int) <-chan []complex128

	// Dead returns a channel closed when the transport detects an
	// unrecoverable peer failure (connection reset, EOF, handshake
	// mismatch), or nil when the transport has no failure mode.
	Dead() <-chan struct{}

	// DeadRank returns the peer whose link failed first, or -1 while every
	// link is healthy.
	DeadRank() int

	// DeadErr returns the cause of the first link failure, or nil.
	DeadErr() error

	// Close tears the transport down: connections, listeners and goroutines.
	// Pending and future link operations on a closed TCP transport fail as
	// peer death on the remote side, which is how a graceful process exit
	// mid-exchange surfaces to survivors. Safe to call more than once.
	Close() error
}

// LinkDepth is the number of in-flight messages a link buffers before
// posting blocks. It is the historical mailbox depth of the in-process
// cluster, kept identical across transports so exchange patterns tuned
// against one backpressure profile behave the same on the other.
const LinkDepth = 64
