package transport

import (
	"bufio"
	"context"
	"encoding/binary"
	"fmt"
	"io"
	"math"
	"net"
	"sync"
	"sync/atomic"
	"time"

	"negfsim/internal/obs"
)

// TCP connects one local rank to its peers over real sockets: one duplex
// connection per rank pair, established lazily by the lower rank on first
// use of the link, with a handshake carrying rank identities so the accept
// side can route the connection. Messages are length-prefixed binary frames
// of complex128 elements; a per-link writer goroutine coalesces bursts of
// small messages into one flush, and a per-link reader demultiplexes frames
// into the link's delivery channel. Any unrecoverable link error — dial
// budget exhausted, handshake mismatch, reset, EOF — closes Dead() with the
// peer's rank, which the cluster layer maps to comm.ErrRankDead so a peer
// process dying mid-exchange looks exactly like an injected rank death.
//
// Telemetry (see docs/OBSERVABILITY.md): per-link counters
// transport.tcp.sent_bytes{link="i->j"}, transport.tcp.recvd_bytes and
// transport.tcp.frames{dir}, plus transport.tcp.dials,
// transport.tcp.reconnects (dial retries while a peer is not yet up) and
// transport.tcp.accepts. Byte counters record payload bytes (16 per
// element), matching the cluster's accounting; framing overhead is excluded.
type TCP struct {
	ctx   context.Context
	rank  int
	peers []string
	ln    net.Listener
	cfg   TCPConfig

	self  chan []complex128
	links []*tcpLink

	closeCh   chan struct{}
	closeOnce sync.Once
	closed    atomic.Bool
	wg        sync.WaitGroup
	writerWg  sync.WaitGroup // write loops only: Close waits for their drain first

	dead     chan struct{}
	deadOnce sync.Once
	deadMu   sync.Mutex
	deadRank int
	deadErr  error
}

// TCPConfig carries the optional knobs of a TCP transport. The zero value
// selects the documented defaults.
type TCPConfig struct {
	// Listener, when non-nil, is used instead of listening on peers[rank] —
	// tests inject pre-bound ephemeral-port listeners this way.
	Listener net.Listener

	// DialTimeout bounds how long the dialing side keeps retrying a peer
	// that is not accepting yet (default 10s). Retries beyond the first
	// attempt count as reconnects in the transport metrics.
	DialTimeout time.Duration

	// RetryInterval is the pause between dial attempts (default 50ms).
	RetryInterval time.Duration
}

// tcpLink is the state of one rank pair: the outbound queue the local rank
// posts on, the inbound queue frames are delivered to, and the connection
// machinery shared by the dialer and acceptor paths.
type tcpLink struct {
	peer     int
	out      chan []complex128
	in       chan []complex128
	started  atomic.Bool
	acceptCh chan net.Conn // handed over by the accept loop (cap 1)
	connMu   sync.Mutex
	conn     net.Conn

	sentBytes, recvdBytes *obs.Counter
	sentFrames            *obs.Counter
	recvFrames            *obs.Counter
	reconnects            *obs.Counter
}

// Transport-wide TCP telemetry.
var (
	obsTCPDials   = obs.GetCounter("transport.tcp.dials")
	obsTCPAccepts = obs.GetCounter("transport.tcp.accepts")
	obsTCPDeaths  = obs.GetCounter("transport.tcp.link_deaths")
)

// Wire protocol constants: the handshake magic/version exchanged once per
// connection, and the sanity bound on a single frame's element count.
const (
	handshakeMagic   = "NGFT"
	handshakeVersion = 1
	ackMagic         = "NGFA"
	maxFrameElems    = 1 << 28 // 4 GiB of payload; larger frames are protocol errors
)

// NewTCP builds the transport for the local rank over the given peer
// addresses (index = rank) and starts listening on peers[rank]. Connections
// to other peers are dialed lazily on first use of each link.
func NewTCP(ctx context.Context, rank int, peers []string) (*TCP, error) {
	return NewTCPWith(ctx, rank, peers, TCPConfig{})
}

// NewTCPWith is NewTCP with explicit configuration.
func NewTCPWith(ctx context.Context, rank int, peers []string, cfg TCPConfig) (*TCP, error) {
	if rank < 0 || rank >= len(peers) {
		return nil, fmt.Errorf("transport: rank %d outside peer list of %d", rank, len(peers))
	}
	if len(peers) < 2 {
		return nil, fmt.Errorf("transport: a TCP cluster needs at least 2 peers, got %d", len(peers))
	}
	if ctx == nil {
		ctx = context.Background()
	}
	if cfg.DialTimeout <= 0 {
		cfg.DialTimeout = 10 * time.Second
	}
	if cfg.RetryInterval <= 0 {
		cfg.RetryInterval = 50 * time.Millisecond
	}
	ln := cfg.Listener
	if ln == nil {
		var err error
		ln, err = net.Listen("tcp", peers[rank])
		if err != nil {
			return nil, fmt.Errorf("transport: rank %d listening on %s: %w", rank, peers[rank], err)
		}
	}
	t := &TCP{
		ctx: ctx, rank: rank, peers: peers, ln: ln, cfg: cfg,
		self:    make(chan []complex128, LinkDepth),
		links:   make([]*tcpLink, len(peers)),
		closeCh: make(chan struct{}),
		dead:    make(chan struct{}),
	}
	t.deadRank = -1
	for j := range peers {
		if j == rank {
			continue
		}
		link := fmt.Sprintf("%d->%d", rank, j)
		back := fmt.Sprintf("%d->%d", j, rank)
		t.links[j] = &tcpLink{
			peer:       j,
			out:        make(chan []complex128, LinkDepth),
			in:         make(chan []complex128, LinkDepth),
			acceptCh:   make(chan net.Conn, 1),
			sentBytes:  obs.GetCounter(obs.Labeled("transport.tcp.sent_bytes", "link", link)),
			recvdBytes: obs.GetCounter(obs.Labeled("transport.tcp.recvd_bytes", "link", back)),
			sentFrames: obs.GetCounter(obs.Labeled("transport.tcp.frames", "link", link)),
			recvFrames: obs.GetCounter(obs.Labeled("transport.tcp.frames", "link", back)),
			reconnects: obs.GetCounter(obs.Labeled("transport.tcp.reconnects", "link", link)),
		}
	}
	t.wg.Add(1)
	go t.acceptLoop()
	return t, nil
}

// Size returns the number of ranks (the peer list length).
func (t *TCP) Size() int { return len(t.peers) }

// Local reports whether r is the one rank this process hosts.
func (t *TCP) Local(r int) bool { return r == t.rank }

// Rank returns the local rank id.
func (t *TCP) Rank() int { return t.rank }

// SendCh returns the outbound queue of the from→to link. from must be the
// local rank; self-sends use an in-memory loopback channel and never touch
// the network.
func (t *TCP) SendCh(from, to int) chan<- []complex128 {
	if from != t.rank {
		panic(fmt.Sprintf("transport: rank %d cannot send as rank %d", t.rank, from))
	}
	if to == t.rank {
		return t.self
	}
	t.ensure(to)
	return t.links[to].out
}

// RecvCh returns the delivery queue of the from→to link. to must be the
// local rank. Asking for the channel arms the link, so a receive-only link
// still gets its connection established.
func (t *TCP) RecvCh(to, from int) <-chan []complex128 {
	if to != t.rank {
		panic(fmt.Sprintf("transport: rank %d cannot receive as rank %d", t.rank, to))
	}
	if from == t.rank {
		return t.self
	}
	t.ensure(from)
	return t.links[from].in
}

// Dead returns the failure channel, closed on the first unrecoverable link
// error.
func (t *TCP) Dead() <-chan struct{} { return t.dead }

// DeadRank returns the peer whose link failed first, or -1.
func (t *TCP) DeadRank() int {
	t.deadMu.Lock()
	defer t.deadMu.Unlock()
	return t.deadRank
}

// DeadErr returns the cause of the first link failure, or nil.
func (t *TCP) DeadErr() error {
	t.deadMu.Lock()
	defer t.deadMu.Unlock()
	return t.deadErr
}

// Close tears the transport down gracefully: queued outbound frames are
// flushed (bounded by a short write deadline, so a dead peer cannot hang
// the teardown), then the listener stops accepting, every established
// connection closes (surfacing as peer death to remotes still mid-
// exchange), and all link goroutines exit. The flush matters when ranks
// finish asynchronously — a peer completing its run must not strand the
// last exchange's frames in its buffers when it exits. Close blocks until
// the goroutines are gone.
func (t *TCP) Close() error {
	t.closeOnce.Do(func() {
		t.closed.Store(true)
		for _, l := range t.links {
			if l == nil {
				continue
			}
			l.connMu.Lock()
			if l.conn != nil {
				l.conn.SetWriteDeadline(time.Now().Add(2 * time.Second))
			}
			l.connMu.Unlock()
		}
		close(t.closeCh)
		t.writerWg.Wait() // writers drain their queues and flush before conns drop
		t.ln.Close()
		for _, l := range t.links {
			if l == nil {
				continue
			}
			l.connMu.Lock()
			if l.conn != nil {
				l.conn.Close()
			}
			l.connMu.Unlock()
			// A conn parked in the accept handoff never got a reader; close
			// it too so the dialing peer does not hang on a half-open link.
			select {
			case c := <-l.acceptCh:
				c.Close()
			default:
			}
		}
	})
	t.wg.Wait()
	return nil
}

// fail records the first unrecoverable error of a link and closes Dead().
// Failures observed during shutdown or after cancellation are not deaths —
// they are the teardown's own noise.
func (t *TCP) fail(peer int, err error) {
	if t.closed.Load() || t.ctx.Err() != nil {
		return
	}
	t.deadOnce.Do(func() {
		t.deadMu.Lock()
		t.deadRank = peer
		t.deadErr = err
		t.deadMu.Unlock()
		obsTCPDeaths.Inc()
		close(t.dead)
	})
}

// ensure arms the link to peer j: the first caller spawns the link runner,
// which establishes the connection (dialing or waiting for the accept
// handoff) and then pumps frames both ways until teardown.
func (t *TCP) ensure(j int) {
	l := t.links[j]
	if l.started.CompareAndSwap(false, true) {
		t.wg.Add(1)
		go t.runLink(l)
	}
}

// acceptLoop routes incoming connections: it reads the handshake, validates
// the claimed identity against the peer list, acks, and hands the connection
// to the claiming rank's link.
func (t *TCP) acceptLoop() {
	defer t.wg.Done()
	for {
		conn, err := t.ln.Accept()
		if err != nil {
			return // listener closed (Close or process exit)
		}
		obsTCPAccepts.Inc()
		t.wg.Add(1)
		go t.handleAccept(conn)
	}
}

// handleAccept validates one inbound connection's handshake and parks it for
// the link runner. Invalid or duplicate connections are dropped.
func (t *TCP) handleAccept(conn net.Conn) {
	defer t.wg.Done()
	conn.SetDeadline(time.Now().Add(5 * time.Second))
	from, err := readHandshake(conn, t.rank, len(t.peers))
	if err != nil || from == t.rank || from > t.rank {
		// Protocol violation (only lower ranks dial) — drop the connection;
		// the dialer will observe the close and report its own link dead.
		conn.Close()
		return
	}
	if _, err := conn.Write([]byte(ackMagic)); err != nil {
		conn.Close()
		return
	}
	conn.SetDeadline(time.Time{})
	select {
	case t.links[from].acceptCh <- conn:
		t.ensure(from) // arm the reader even if the local rank never initiates
		if t.closed.Load() {
			// Close may have drained the handoff before we parked: a
			// connection accepted concurrently with teardown must not
			// survive it, or the dialing peer keeps a healthy link to a
			// transport that no longer exists. If the link runner already
			// took the conn, its own closed check disposes of it.
			select {
			case c := <-t.links[from].acceptCh:
				c.Close()
			default:
			}
		}
	default:
		conn.Close() // duplicate connection for the pair
	}
}

// runLink establishes the link's connection and runs its reader and writer
// until teardown or failure.
func (t *TCP) runLink(l *tcpLink) {
	defer t.wg.Done()
	conn, err := t.connect(l)
	if err != nil {
		t.fail(l.peer, err)
		return
	}
	l.connMu.Lock()
	if t.closed.Load() {
		l.connMu.Unlock()
		conn.Close()
		return
	}
	l.conn = conn
	l.connMu.Unlock()
	t.wg.Add(1)
	t.writerWg.Add(1)
	go t.writeLoop(l, conn)
	t.readLoop(l, conn)
}

// connect returns the link's connection: the lower rank dials (with retries
// while the peer is still coming up), the higher rank waits for the accept
// loop's handoff.
func (t *TCP) connect(l *tcpLink) (net.Conn, error) {
	if t.rank < l.peer {
		return t.dial(l)
	}
	select {
	case conn := <-l.acceptCh:
		return conn, nil
	case <-t.closeCh:
		// Both arms can be ready at once when teardown races an accept;
		// if select picked this one, dispose of the parked conn so the
		// dialing peer observes the close instead of a half-open link.
		select {
		case conn := <-l.acceptCh:
			conn.Close()
		default:
		}
		return nil, fmt.Errorf("transport: closed while awaiting rank %d", l.peer)
	case <-t.ctx.Done():
		return nil, t.ctx.Err()
	}
}

// dial establishes the outbound connection to l.peer, retrying while the
// peer's listener is not up yet; retries beyond the first attempt count on
// the link's reconnect metric. One stoppable timer is reused across the
// retries (an allocation per attempt adds up on a slow peer), the deadline
// is checked before sleeping, and the last sleep is capped at the time
// remaining, so the loop never overshoots DialTimeout by a retry interval.
func (t *TCP) dial(l *tcpLink) (net.Conn, error) {
	deadline := time.Now().Add(t.cfg.DialTimeout)
	d := net.Dialer{Timeout: t.cfg.RetryInterval * 10}
	retry := time.NewTimer(t.cfg.RetryInterval)
	if !retry.Stop() {
		<-retry.C
	}
	defer retry.Stop()
	var lastErr error
	for attempt := 0; ; attempt++ {
		if attempt > 0 {
			l.reconnects.Inc()
			if remaining := time.Until(deadline); remaining > 0 {
				pause := t.cfg.RetryInterval
				if pause > remaining {
					pause = remaining
				}
				retry.Reset(pause)
				select {
				case <-retry.C:
				case <-t.closeCh:
					return nil, fmt.Errorf("transport: closed while dialing rank %d", l.peer)
				case <-t.ctx.Done():
					return nil, t.ctx.Err()
				}
			}
			if !time.Now().Before(deadline) {
				return nil, fmt.Errorf("transport: dialing rank %d at %s: no answer after %v: %w",
					l.peer, t.peers[l.peer], t.cfg.DialTimeout, lastErr)
			}
		}
		obsTCPDials.Inc()
		conn, err := d.DialContext(t.ctx, "tcp", t.peers[l.peer])
		if err != nil {
			lastErr = err
			continue
		}
		if err := shakeHands(conn, t.rank, l.peer, len(t.peers)); err != nil {
			conn.Close()
			lastErr = err
			continue
		}
		return conn, nil
	}
}

// writeLoop drains the link's outbound queue onto the connection, framing
// each message and coalescing bursts: the buffered writer is only flushed
// once the queue is momentarily empty, so a phase posting many tile slices
// back-to-back pays one syscall per burst, not per message.
func (t *TCP) writeLoop(l *tcpLink, conn net.Conn) {
	defer t.wg.Done()
	defer t.writerWg.Done()
	bw := bufio.NewWriterSize(conn, 256<<10)
	var scratch [16 * 512]byte
	for {
		var msg []complex128
		select {
		case msg = <-l.out:
		case <-t.closeCh:
			t.drainOnClose(l, bw, scratch[:])
			return
		case <-t.dead:
			return
		case <-t.ctx.Done():
			return
		}
		for {
			if err := writeFrame(bw, msg, scratch[:]); err != nil {
				t.fail(l.peer, fmt.Errorf("transport: writing to rank %d: %w", l.peer, err))
				return
			}
			l.sentFrames.Inc()
			l.sentBytes.Add(int64(16 * len(msg)))
			select {
			case msg = <-l.out:
				continue // coalesce: keep framing while the queue has more
			default:
			}
			break
		}
		if err := bw.Flush(); err != nil {
			t.fail(l.peer, fmt.Errorf("transport: flushing to rank %d: %w", l.peer, err))
			return
		}
	}
}

// drainOnClose writes whatever is still queued on the link and flushes, so
// a graceful teardown delivers every posted message. Errors are swallowed:
// the transport is closing and fail() would suppress them anyway, and the
// write deadline Close armed bounds how long a dead peer can stall this.
func (t *TCP) drainOnClose(l *tcpLink, bw *bufio.Writer, scratch []byte) {
	for {
		select {
		case msg := <-l.out:
			if err := writeFrame(bw, msg, scratch); err != nil {
				return
			}
			l.sentFrames.Inc()
			l.sentBytes.Add(int64(16 * len(msg)))
		default:
			bw.Flush()
			return
		}
	}
}

// readLoop parses frames off the connection and delivers them to the link's
// inbound queue in arrival order. A full queue exerts backpressure through
// the socket: the loop simply stops reading until the receiver drains.
func (t *TCP) readLoop(l *tcpLink, conn net.Conn) {
	br := bufio.NewReaderSize(conn, 256<<10)
	for {
		msg, err := readFrame(br)
		if err != nil {
			t.fail(l.peer, fmt.Errorf("transport: reading from rank %d: %w", l.peer, err))
			return
		}
		l.recvFrames.Inc()
		l.recvdBytes.Add(int64(16 * len(msg)))
		select {
		case l.in <- msg:
		case <-t.closeCh:
			return
		case <-t.ctx.Done():
			return
		}
	}
}

// shakeHands runs the dialer's half of the handshake: identify, then wait
// for the acceptor's ack so protocol mismatches surface before any frame.
func shakeHands(conn net.Conn, from, to, size int) error {
	conn.SetDeadline(time.Now().Add(5 * time.Second))
	defer conn.SetDeadline(time.Time{})
	var hs [20]byte
	copy(hs[:4], handshakeMagic)
	binary.LittleEndian.PutUint32(hs[4:], handshakeVersion)
	binary.LittleEndian.PutUint32(hs[8:], uint32(from))
	binary.LittleEndian.PutUint32(hs[12:], uint32(to))
	binary.LittleEndian.PutUint32(hs[16:], uint32(size))
	if _, err := conn.Write(hs[:]); err != nil {
		return fmt.Errorf("handshake write: %w", err)
	}
	var ack [4]byte
	if _, err := io.ReadFull(conn, ack[:]); err != nil {
		return fmt.Errorf("handshake ack: %w", err)
	}
	if string(ack[:]) != ackMagic {
		return fmt.Errorf("handshake ack %q, want %q", ack[:], ackMagic)
	}
	return nil
}

// readHandshake runs the acceptor's half: parse and validate the dialer's
// identity against the local rank and cluster size, returning the claimed
// rank.
func readHandshake(conn net.Conn, localRank, size int) (from int, err error) {
	var hs [20]byte
	if _, err := io.ReadFull(conn, hs[:]); err != nil {
		return -1, fmt.Errorf("handshake read: %w", err)
	}
	if string(hs[:4]) != handshakeMagic {
		return -1, fmt.Errorf("handshake magic %q, want %q", hs[:4], handshakeMagic)
	}
	if v := binary.LittleEndian.Uint32(hs[4:]); v != handshakeVersion {
		return -1, fmt.Errorf("handshake version %d, want %d", v, handshakeVersion)
	}
	from = int(binary.LittleEndian.Uint32(hs[8:]))
	to := int(binary.LittleEndian.Uint32(hs[12:]))
	n := int(binary.LittleEndian.Uint32(hs[16:]))
	if to != localRank {
		return -1, fmt.Errorf("handshake addressed to rank %d, this is rank %d", to, localRank)
	}
	if n != size {
		return -1, fmt.Errorf("handshake cluster size %d, this cluster has %d", n, size)
	}
	if from < 0 || from >= size {
		return -1, fmt.Errorf("handshake from invalid rank %d", from)
	}
	return from, nil
}

// writeFrame frames one message: a 4-byte little-endian element count
// followed by 16 bytes per element (real bits, then imaginary bits).
// scratch is a reusable encode buffer whose length must be a multiple of 16.
func writeFrame(w io.Writer, msg []complex128, scratch []byte) error {
	var hdr [4]byte
	binary.LittleEndian.PutUint32(hdr[:], uint32(len(msg)))
	if _, err := w.Write(hdr[:]); err != nil {
		return err
	}
	per := len(scratch) / 16
	for off := 0; off < len(msg); off += per {
		end := off + per
		if end > len(msg) {
			end = len(msg)
		}
		buf := scratch[:16*(end-off)]
		for i, c := range msg[off:end] {
			binary.LittleEndian.PutUint64(buf[16*i:], math.Float64bits(real(c)))
			binary.LittleEndian.PutUint64(buf[16*i+8:], math.Float64bits(imag(c)))
		}
		if _, err := w.Write(buf); err != nil {
			return err
		}
	}
	return nil
}

// readFrame parses one frame: the element count header, then the payload.
func readFrame(r io.Reader) ([]complex128, error) {
	var hdr [4]byte
	if _, err := io.ReadFull(r, hdr[:]); err != nil {
		return nil, err
	}
	n := int(binary.LittleEndian.Uint32(hdr[:]))
	if n > maxFrameElems {
		return nil, fmt.Errorf("frame of %d elements exceeds the %d limit", n, maxFrameElems)
	}
	msg := make([]complex128, n)
	var buf [16 * 512]byte
	for off := 0; off < n; {
		chunk := n - off
		if chunk > 512 {
			chunk = 512
		}
		b := buf[:16*chunk]
		if _, err := io.ReadFull(r, b); err != nil {
			return nil, err
		}
		for i := 0; i < chunk; i++ {
			re := math.Float64frombits(binary.LittleEndian.Uint64(b[16*i:]))
			im := math.Float64frombits(binary.LittleEndian.Uint64(b[16*i+8:]))
			msg[off+i] = complex(re, im)
		}
		off += chunk
	}
	return msg, nil
}
