package tune

import (
	"runtime"
	"sort"
	"time"

	"negfsim/internal/cmat"
	"negfsim/internal/perfmodel"
)

// Probe describes one measured experiment the tuner runs. The default
// executor times real kernels through cmat's explicit-parameter probe
// entries; tests inject a fixed table via Tuner.Measure to make the search
// deterministic.
type Probe struct {
	// Kind is "gemm" (blocked kernel under a candidate blocking),
	// "crossover" (naive vs blocked at a density) or "workers" (parallel
	// row-banded product under a worker count).
	Kind string
	// KC, NC are the candidate panel sizes ("gemm", "crossover" blocked side).
	KC, NC int
	// Size is the square problem size probed.
	Size int
	// Reps is how many kernel invocations the probe times.
	Reps int
	// Density is the left-operand fill ("crossover" probes).
	Density float64
	// Blocked selects the kernel side of a "crossover" probe.
	Blocked bool
	// Workers is the worker count of a "workers" probe.
	Workers int
}

// Tuner is a budgeted schedule search. The zero value is usable: it
// probes the default size classes under DefaultBudget with real
// measurements.
type Tuner struct {
	// Budget bounds the total wall time spent on measured probes
	// (default DefaultBudget). The model-seeded candidate order means the
	// most promising configurations are probed first, so a small budget
	// degrades gracefully toward the prior's choice.
	Budget time.Duration
	// Sizes are the square GEMM size classes to probe — callers pass the
	// block sizes the solver actually hits (device.ElectronBlockSize,
	// PhononBlockSize) plus a large dense class. Default {64, 128, 256}.
	Sizes []int
	// MaxWorkers bounds the worker-split search (default GOMAXPROCS).
	MaxWorkers int
	// Measure, when non-nil, replaces real probe execution — the fixed
	// probe table hook that makes tests deterministic. With Measure set the
	// wall budget is ignored (every candidate is "probed"), so a search
	// over a fixed table always visits the same candidates in the same
	// order regardless of host speed.
	Measure func(Probe) time.Duration
	// Log, when non-nil, receives progress lines.
	Log func(format string, args ...any)

	// probes tallies the measured probes of the current Search. It backs
	// Schedule.Probes independently of the obs gate (tune.probes_total
	// only records while obs is enabled).
	probes int
}

// DefaultBudget is the probe budget when Tuner.Budget is zero: enough for
// the seeded search to cover the candidate grid on the default size
// classes on a contemporary core, small enough to be an acceptable
// startup cost under -tune=force.
const DefaultBudget = 4 * time.Second

// Candidate panel grids the search crosses. The grid spans a quarter to
// double the default (192, 64) in each dimension; the perfmodel prior
// orders the cross product so the budget lands on cache-fitting
// configurations first.
var (
	candidateKCs = []int{64, 96, 128, 192, 256, 384}
	candidateNCs = []int{32, 48, 64, 96, 128}
)

// crossoverDensities is the grid the sparse-vs-dense search walks, in
// ascending order. The default threshold (0.25) sits mid-grid.
var crossoverDensities = []float64{0.05, 0.10, 0.15, 0.20, 0.25, 0.30, 0.40, 0.50}

// hysteresis is the winner's-curse guard: a candidate replaces the
// compile-time default only when its measured time beats the default's by
// this factor. Short probes on a shared machine are noisy, and the probe
// workloads cannot cover every product shape the solver hits, so a
// near-tie must resolve to the hand-tuned default rather than to whichever
// candidate got the luckiest timing. Real blocking wins are large (cache
// fits are step functions), so a 10% bar costs little and suppresses flips
// on machines with heavy timing interference.
const hysteresis = 0.90

// confirmRounds is how many interleaved re-measurement rounds the blocking
// search runs over its shortlist, and confirmWins how many of those rounds
// a candidate must beat the default in to displace it (a paired sign test:
// robust to the heavy-tailed interference of shared machines, where a
// minimum or mean can still be fooled by one quiet stretch). Taking each
// configuration's minimum across rounds additionally discards noise spikes
// — a timing can only be inflated by interference, never deflated — and
// interleaving cancels slow drift.
const (
	confirmRounds = 5
	confirmWins   = 4
)

// shortlistSize bounds the blocking candidates re-measured in the
// confirmation pass (the default is always included on top of these).
const shortlistSize = 3

// run executes (or table-looks-up) one probe and counts it.
func (t *Tuner) run(p Probe) time.Duration {
	obsProbes.Inc()
	if t.Measure != nil {
		return t.Measure(p)
	}
	b := cmat.DefaultBlocking()
	b.KC, b.NC = p.KC, p.NC
	switch p.Kind {
	case "gemm":
		return cmat.GEMMProbe(p.Size, p.Reps, b)
	case "crossover":
		if p.Blocked {
			return cmat.GEMMProbeBlockedDense(p.Size, p.Reps, p.Density, b)
		}
		return cmat.GEMMProbeNaive(p.Size, p.Reps, p.Density)
	case "workers":
		return cmat.MulParProbe(p.Size, p.Reps, p.Workers)
	}
	panic("tune: unknown probe kind " + p.Kind)
}

// logf forwards to Log when set.
func (t *Tuner) logf(format string, args ...any) {
	if t.Log != nil {
		t.Log(format, args...)
	}
}

// Search runs the budgeted model-seeded search and returns the winning
// schedule (host key unset; SaveCached stamps it). The stages split the
// budget 60/20/20 between blocking, crossover and worker probes; the
// decomposition part is model-only (SearchDecomposition) and is left to
// callers that know their process count.
func (t *Tuner) Search() Schedule {
	sp := obsSearchSpan.Start()
	defer sp.End()

	budget := t.Budget
	if budget <= 0 {
		budget = DefaultBudget
	}
	sizes := t.Sizes
	if len(sizes) == 0 {
		sizes = []int{64, 128, 256}
	}
	maxWorkers := t.MaxWorkers
	if maxWorkers <= 0 {
		maxWorkers = runtime.GOMAXPROCS(0)
	}

	s := DefaultSchedule()
	s.ProbeBudgetMs = budget.Milliseconds()
	t.probes = 0

	kc, nc, agreement := t.searchBlocking(sizes, time.Now().Add(budget*6/10))
	s.GEMM.KC, s.GEMM.NC = kc, nc
	s.ModelAgreement = agreement

	s.GEMM.MinDensity = t.searchCrossover(sizes, s.GEMM, time.Now().Add(budget*2/10))
	s.Workers = t.searchWorkers(maxWorkers, time.Now().Add(budget*2/10))

	s.Probes = t.probes
	t.logf("tune: schedule KC=%d NC=%d crossover=%.2f workers=%d (%d probes, model agreement %+.2f)",
		s.GEMM.KC, s.GEMM.NC, s.GEMM.MinDensity, s.Workers, s.Probes, s.ModelAgreement)
	return s
}

// searchBlocking probes the candidate panel grid in prior order until the
// stage deadline, returning the measured-best (kc, nc) and the
// model-vs-probe agreement over the probed subset.
func (t *Tuner) searchBlocking(sizes []int, deadline time.Time) (kc, nc int, agreement float64) {
	var kcs, ncs []int
	for _, k := range candidateKCs {
		for _, n := range candidateNCs {
			kcs = append(kcs, k)
			ncs = append(ncs, n)
		}
	}
	primary := sizes[len(sizes)-1]
	order := perfmodel.RankBlockings(kcs, ncs, primary)

	reps := 2
	def := cmat.DefaultBlocking()
	timeCandidate := func(kc, nc int) time.Duration {
		var total time.Duration
		for _, size := range sizes {
			total += t.countedRun(Probe{Kind: "gemm", KC: kc, NC: nc, Size: size, Reps: reps})
		}
		return total
	}

	// Screening pass: one timing per candidate, in prior order, under the
	// stage deadline. The default is measured first, unconditionally — it is
	// the baseline of the confirmation pass and the fallback of every
	// budget-exhaustion path.
	type scored struct {
		kc, nc int
		total  time.Duration
	}
	screened := []scored{{def.KC, def.NC, timeCandidate(def.KC, def.NC)}}
	preds := []float64{perfmodel.BlockingPrior(def.KC, def.NC, primary)}
	meas := []time.Duration{screened[0].total}
	for i, idx := range order {
		if kcs[idx] == def.KC && ncs[idx] == def.NC {
			continue // already measured as the baseline
		}
		// Always probe at least the top three model picks so a tiny budget
		// still returns a measured choice, then respect the deadline.
		if i >= 3 && t.Measure == nil && time.Now().After(deadline) {
			t.logf("tune: blocking budget exhausted after %d of %d candidates", i, len(order))
			break
		}
		total := timeCandidate(kcs[idx], ncs[idx])
		preds = append(preds, perfmodel.BlockingPrior(kcs[idx], ncs[idx], primary))
		meas = append(meas, total)
		screened = append(screened, scored{kcs[idx], ncs[idx], total})
	}
	agreement = perfmodel.Reconcile(preds, meas)

	// Confirmation pass: the screening winner of a noisy pass is the
	// luckiest timing among many, so re-measure a shortlist (screening's
	// best few) against the default baseline in interleaved rounds. A
	// candidate displaces the default only on a paired sign test — beating
	// it in at least confirmWins of confirmRounds rounds — AND a hysteresis
	// margin on the round minima. Both must agree: the sign test defeats
	// heavy-tailed interference, the margin defeats systematic near-ties.
	shortlist := screened[1:]
	sort.SliceStable(shortlist, func(i, j int) bool { return shortlist[i].total < shortlist[j].total })
	if len(shortlist) > shortlistSize {
		shortlist = shortlist[:shortlistSize]
	}
	wins := make([]int, len(shortlist))
	minsC := make([]time.Duration, len(shortlist))
	defMin := time.Duration(1<<63 - 1)
	for i := range minsC {
		minsC[i] = defMin
	}
	for round := 0; round < confirmRounds; round++ {
		dr := timeCandidate(def.KC, def.NC)
		if dr < defMin {
			defMin = dr
		}
		for i, c := range shortlist {
			cr := timeCandidate(c.kc, c.nc)
			if cr < minsC[i] {
				minsC[i] = cr
			}
			if cr < dr {
				wins[i]++
			}
		}
	}
	bestKC, bestNC := def.KC, def.NC
	best := defMin
	for i, c := range shortlist {
		if wins[i] >= confirmWins && minsC[i] < time.Duration(float64(defMin)*hysteresis) && minsC[i] < best {
			best, bestKC, bestNC = minsC[i], c.kc, c.nc
		}
	}
	if bestKC == def.KC && bestNC == def.NC && len(shortlist) > 0 {
		t.logf("tune: no blocking candidate confirmed against the default (%d, %d); keeping it", def.KC, def.NC)
	}
	return bestKC, bestNC, agreement
}

// searchCrossover measures the Table 6 sparse-vs-dense threshold at a
// mid-range size, timing the zero-skip kernel against the winning blocked
// configuration. The default threshold is judged first: only when one
// kernel clearly (by the hysteresis margin) wins at the default density
// does the search walk the grid away from it — lower when the blocked
// kernel already wins there, higher when the zero-skip kernel still wins —
// returning the first density where the blocked kernel catches up.
func (t *Tuner) searchCrossover(sizes []int, b cmat.Blocking, deadline time.Time) float64 {
	size := sizes[len(sizes)/2]
	if size < 48 {
		size = 48
	}
	reps := 2
	def := cmat.DefaultBlocking().MinDensity
	probe := func(d float64, blocked bool) time.Duration {
		return t.countedRun(Probe{Kind: "crossover", KC: b.KC, NC: b.NC, Size: size, Reps: reps, Density: d, Blocked: blocked})
	}
	// Judge the default threshold with the same paired sign test + margin
	// on minima the blocking confirmation uses: one noisy timing (or a
	// systematic near-tie) must not move it.
	blockedWins, naiveWins := 0, 0
	naiveDef := time.Duration(1<<63 - 1)
	blockedDef := naiveDef
	for round := 0; round < confirmRounds; round++ {
		n, bl := probe(def, false), probe(def, true)
		if n < naiveDef {
			naiveDef = n
		}
		if bl < blockedDef {
			blockedDef = bl
		}
		if bl < n {
			blockedWins++
		} else if n < bl {
			naiveWins++
		}
	}
	switch {
	case blockedWins >= confirmWins && blockedDef <= time.Duration(float64(naiveDef)*hysteresis):
		// Blocked clearly wins at the default density: the threshold can
		// move down to the first density where it started winning.
		for _, d := range crossoverDensities {
			if d >= def {
				break
			}
			if t.Measure == nil && time.Now().After(deadline) {
				t.logf("tune: crossover budget exhausted below density %.2f; keeping the default", d)
				return def
			}
			if probe(d, true) <= probe(d, false) {
				return d
			}
		}
		return def
	case naiveWins >= confirmWins && naiveDef <= time.Duration(float64(blockedDef)*hysteresis):
		// Zero-skip clearly wins at the default density: raise the
		// threshold to where the blocked kernel catches up.
		for _, d := range crossoverDensities {
			if d <= def {
				continue
			}
			if t.Measure == nil && time.Now().After(deadline) {
				t.logf("tune: crossover budget exhausted above density %.2f; keeping the default", d)
				return def
			}
			if probe(d, true) <= probe(d, false) {
				return d
			}
		}
		// The zero-skip kernel won everywhere probed: keep the blocked
		// path for effectively-dense operands only.
		last := crossoverDensities[len(crossoverDensities)-1]
		return last + (1-last)/2
	}
	return def
}

// searchWorkers probes the parallel row-banded product over doubling
// worker counts. The full GOMAXPROCS count — what callers run with when the
// schedule holds no preference — is the baseline; a smaller split is
// recorded only when it beats that baseline by the hysteresis margin, and
// a near-tie returns 0 ("no preference").
func (t *Tuner) searchWorkers(maxWorkers int, deadline time.Time) int {
	size := 2 * cmat.ParallelThreshold
	cands := []int{maxWorkers}
	for w := 1; w < maxWorkers; w *= 2 {
		cands = append(cands, w)
	}
	probe := func(w int) time.Duration {
		return t.countedRun(Probe{Kind: "workers", Size: size, Reps: 1, Workers: w})
	}
	defT := probe(maxWorkers)
	best, bestT := maxWorkers, defT
	for i, w := range cands[1:] {
		if i >= 1 && t.Measure == nil && time.Now().After(deadline) {
			t.logf("tune: worker budget exhausted after %d of %d counts", i+1, len(cands))
			break
		}
		d := probe(w)
		if d < bestT {
			bestT, best = d, w
		}
	}
	if best == maxWorkers {
		return 0 // no preference: the default (GOMAXPROCS) stands
	}
	// Confirm the screening winner against the GOMAXPROCS baseline with
	// the paired sign test + margin on minima (see searchBlocking).
	wins := 0
	defMin, bestMin := defT, bestT
	for round := 0; round < confirmRounds; round++ {
		dr, br := probe(maxWorkers), probe(best)
		if dr < defMin {
			defMin = dr
		}
		if br < bestMin {
			bestMin = br
		}
		if br < dr {
			wins++
		}
	}
	if wins < confirmWins || bestMin >= time.Duration(float64(defMin)*hysteresis) {
		return 0
	}
	return best
}

// countedRun is run plus the internal probe tally (the obs counter obeys
// the global gate; the tuner's own accounting must not).
func (t *Tuner) countedRun(p Probe) time.Duration {
	t.probes++
	return t.run(p)
}
