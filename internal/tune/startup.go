package tune

import (
	"fmt"
	"time"
)

// Startup resolves the schedule a binary runs under and installs its
// process-global part — the single entry point behind the -tune and
// -schedule flags of qtsim and qtsimd. The contract:
//
//   - schedulePath, when non-empty, wins: the explicit file is loaded
//     (strict schema version, host mismatch warns) and applied.
//   - mode "off" skips the cache and the tuner: the compile-time defaults
//     stay installed.
//   - mode "cached" loads the per-host cache if present — zero probe time —
//     and falls back to the defaults otherwise. It never runs the tuner.
//   - mode "force" runs a budgeted search now, saves the result to the
//     per-host cache and applies it.
//
// logf (may be nil) receives cache warnings and tuner progress.
func Startup(mode, schedulePath string, budget time.Duration, logf func(format string, args ...any)) (Schedule, error) {
	if schedulePath != "" {
		s, err := LoadFile(schedulePath, logf)
		if err != nil {
			return Schedule{}, err
		}
		if err := s.ApplyGlobal(); err != nil {
			return Schedule{}, err
		}
		return *s, nil
	}
	switch mode {
	case "off":
		return DefaultSchedule(), nil
	case "cached":
		s, _ := LoadCached(logf)
		if err := s.ApplyGlobal(); err != nil {
			return Schedule{}, err
		}
		return s, nil
	case "force":
		t := &Tuner{Budget: budget, Log: logf}
		s := t.Search()
		if path, err := SaveCached(s); err != nil {
			if logf != nil {
				logf("tune: schedule not cached: %v", err)
			}
		} else if logf != nil {
			logf("tune: schedule cached at %s", path)
		}
		if err := s.ApplyGlobal(); err != nil {
			return Schedule{}, err
		}
		return s, nil
	}
	return Schedule{}, fmt.Errorf("tune: unknown mode %q (want off, cached or force)", mode)
}
