// Package tune automates the paper's "model + tune" loop for this runtime:
// a budgeted autotuner searches the GEMM cache-blocking parameters, the
// sparse-vs-dense crossover density (Table 6), the pool worker split and
// the (TE, TA) grid decomposition — seeding short measured probes from
// internal/perfmodel priors instead of sweeping exhaustively — and
// persists the winning Schedule as versioned JSON in a per-host cache that
// qtsim and qtsimd consult at startup (-tune=off|cached|force).
//
// Scope discipline: a Schedule has a process-global part (the cmat
// Blocking, installed once before run start via ApplyGlobal) and per-run
// parts (the worker split and decomposition, threaded through Options and
// DistConfig). Probing itself touches no global state — candidates run
// through cmat's explicit-parameter probe entries — so a tuning pass can
// execute next to live jobs, and per-job schedules in the daemon are
// restricted to the per-run parts (see internal/serve).
package tune

import (
	"bytes"
	"encoding/json"
	"fmt"

	"negfsim/internal/cmat"
	"negfsim/internal/comm"
	"negfsim/internal/device"
	"negfsim/internal/obs"
)

// ScheduleVersion is the schedule schema version this build writes and
// accepts. Bump it when the meaning of a field changes; cached files with
// another version are ignored (the kernels they were tuned for are gone).
const ScheduleVersion = 1

// LibraryVersion names the kernel generation a schedule was tuned against.
// It is folded into the host key, so a cache entry measured on older
// kernels is invalidated by a version bump here.
const LibraryVersion = "negfsim-kernels-2"

// Tile records the volume-minimizing (TE, TA) decomposition the search
// found for one device shape and process count — the §4.1 decision,
// persisted so a run at the same shape skips the search.
type Tile struct {
	// NA, Nkz, NE, Nw identify the device shape the search was run for.
	NA  int `json:"na"`
	Nkz int `json:"nkz"`
	NE  int `json:"ne"`
	Nw  int `json:"nw"`
	// Procs is the total process count the decomposition factorizes.
	Procs int `json:"procs"`
	// TE and TA are the energy and atom partition counts (Procs = TE·TA).
	TE int `json:"te"`
	TA int `json:"ta"`
	// Bytes is the predicted total exchange volume of the decomposition.
	Bytes float64 `json:"bytes"`
}

// Schedule is the persisted outcome of one tuning pass: everything the
// binaries need to reproduce the tuned configuration without re-probing.
type Schedule struct {
	// Version is the schema version (ScheduleVersion).
	Version int `json:"version"`
	// HostKey identifies the machine + GOMAXPROCS + kernel generation the
	// schedule was measured on; a cached schedule is only trusted when it
	// matches the loading host. Empty in fragments (tilesearch -json) that
	// carry no measured data.
	HostKey string `json:"host_key,omitempty"`
	// GEMM is the tuned kernel configuration installed into cmat.
	GEMM cmat.Blocking `json:"gemm"`
	// Workers is the measured best pool worker split for the parallel
	// phases; 0 means "no preference" (callers keep their own default).
	Workers int `json:"workers,omitempty"`
	// Tiles are the decompositions searched so far, most recent last.
	Tiles []Tile `json:"tiles,omitempty"`
	// Probes is the number of measured probes the search spent.
	Probes int `json:"probes,omitempty"`
	// ProbeBudgetMs is the wall budget the search was given, milliseconds.
	ProbeBudgetMs int64 `json:"probe_budget_ms,omitempty"`
	// ModelAgreement is the perfmodel.Reconcile coefficient between the
	// blocking prior's ranking and the measured probe times, recorded so a
	// schedule documents how informative the model was on this host.
	ModelAgreement float64 `json:"model_agreement,omitempty"`
}

// DefaultSchedule returns the schedule equivalent to running with no
// tuning at all: the compile-time blocking and no worker preference.
func DefaultSchedule() Schedule {
	return Schedule{Version: ScheduleVersion, GEMM: cmat.DefaultBlocking()}
}

// Validate checks the schedule is structurally sound and its blocking is
// installable.
func (s *Schedule) Validate() error {
	if s.Version != ScheduleVersion {
		return fmt.Errorf("tune: schedule version %d not supported (this build speaks version %d)",
			s.Version, ScheduleVersion)
	}
	if err := s.GEMM.Validate(); err != nil {
		return fmt.Errorf("tune: schedule: %w", err)
	}
	if s.Workers < 0 {
		return fmt.Errorf("tune: schedule: workers must be non-negative, got %d", s.Workers)
	}
	for i, tl := range s.Tiles {
		if tl.TE < 1 || tl.TA < 1 || tl.TE*tl.TA != tl.Procs {
			return fmt.Errorf("tune: schedule: tile %d: %dx%d does not factorize %d processes",
				i, tl.TE, tl.TA, tl.Procs)
		}
	}
	return nil
}

// Marshal renders the schedule as indented JSON, the format the cache and
// -schedule files use.
func (s *Schedule) Marshal() ([]byte, error) {
	out, err := json.MarshalIndent(s, "", "  ")
	if err != nil {
		return nil, err
	}
	return append(out, '\n'), nil
}

// ParseSchedule decodes and validates a schedule document. Unknown fields
// are rejected so schema typos fail loudly instead of silently running
// defaults.
func ParseSchedule(data []byte) (*Schedule, error) {
	dec := json.NewDecoder(bytes.NewReader(data))
	dec.DisallowUnknownFields()
	var s Schedule
	if err := dec.Decode(&s); err != nil {
		return nil, fmt.Errorf("tune: parsing schedule: %w", err)
	}
	if err := s.Validate(); err != nil {
		return nil, err
	}
	return &s, nil
}

// ApplyGlobal installs the schedule's process-global part: the cmat GEMM
// blocking. Call it once at startup, before any run begins — swapping
// blocking mid-run changes summation order under running kernels. The
// per-run parts (Workers, Tiles) are read by callers, not installed here.
func (s *Schedule) ApplyGlobal() error {
	return cmat.SetBlocking(s.GEMM)
}

// TileFor returns the recorded decomposition for the given device shape
// and process count, if the schedule holds one.
func (s *Schedule) TileFor(p device.Params, procs int) (Tile, bool) {
	for i := len(s.Tiles) - 1; i >= 0; i-- {
		t := s.Tiles[i]
		if t.NA == p.NA && t.Nkz == p.Nkz && t.NE == p.NE && t.Nw == p.Nw && t.Procs == procs {
			return t, true
		}
	}
	return Tile{}, false
}

// AddTile records (or refreshes) a decomposition in the schedule.
func (s *Schedule) AddTile(t Tile) {
	for i := range s.Tiles {
		if s.Tiles[i].NA == t.NA && s.Tiles[i].Nkz == t.Nkz && s.Tiles[i].NE == t.NE &&
			s.Tiles[i].Nw == t.Nw && s.Tiles[i].Procs == t.Procs {
			s.Tiles[i] = t
			return
		}
	}
	s.Tiles = append(s.Tiles, t)
}

// SearchDecomposition runs the §4.1 exhaustive (TE, TA) search for the
// given device shape and process count under an optional per-process
// memory limit, returning the volume-minimizing decomposition as a
// schedule Tile. The search is model-driven (comm.SearchTiles evaluates
// the closed-form volume formulas), so it costs microseconds and needs no
// probe budget.
func SearchDecomposition(p device.Params, procs int, memLimit float64) (Tile, error) {
	best, feasible := comm.SearchTiles(p, procs, memLimit)
	if len(feasible) == 0 {
		return Tile{}, fmt.Errorf("tune: no feasible decomposition for NA=%d NE=%d over %d processes",
			p.NA, p.NE, procs)
	}
	return Tile{
		NA: p.NA, Nkz: p.Nkz, NE: p.NE, Nw: p.Nw,
		Procs: procs, TE: best.TE, TA: best.TA, Bytes: best.Bytes,
	}, nil
}

// Telemetry of the tuning subsystem (see docs/OBSERVABILITY.md).
var (
	obsProbes      = obs.GetCounter("tune.probes_total")
	obsCacheHits   = obs.GetCounter("tune.cache_hits")
	obsCacheMisses = obs.GetCounter("tune.cache_misses")
	obsSearchSpan  = obs.GetTimer("tune.search")
)
