package tune

import (
	"fmt"
	"hash/fnv"
	"os"
	"path/filepath"
	"runtime"
	"strings"
	"sync"
)

// The per-host schedule cache: one JSON file per (CPU model, GOMAXPROCS,
// kernel generation) under the user cache directory, e.g.
// ~/.cache/negfsim/schedule-3f92ab17c04d55e6.json. Loading is fail-open:
// a corrupt file, a schema version mismatch or a host-key mismatch all
// fall back to the built-in defaults with a logged warning and a
// tune.cache_misses tick — a stale cache must never stop a run.

// hostKeyOnce memoizes the host key: /proc/cpuinfo does not change while
// the process lives, and GOMAXPROCS changes after startup should not
// silently re-key the cache mid-run.
var (
	hostKeyOnce sync.Once
	hostKeyVal  string
)

// HostKey identifies the tuning domain of this process: CPU model +
// GOMAXPROCS + kernel library version. Schedules are only trusted on the
// host key they were measured under.
func HostKey() string {
	hostKeyOnce.Do(func() {
		hostKeyVal = fmt.Sprintf("%s|gomaxprocs=%d|%s", cpuModel(), runtime.GOMAXPROCS(0), LibraryVersion)
	})
	return hostKeyVal
}

// cpuModel returns the CPU model string from /proc/cpuinfo on Linux,
// falling back to GOOS/GOARCH where unavailable.
func cpuModel() string {
	data, err := os.ReadFile("/proc/cpuinfo")
	if err == nil {
		for _, line := range strings.Split(string(data), "\n") {
			if name, ok := strings.CutPrefix(line, "model name"); ok {
				if _, v, ok := strings.Cut(name, ":"); ok {
					return strings.Join(strings.Fields(v), " ")
				}
			}
		}
	}
	return runtime.GOOS + "/" + runtime.GOARCH
}

// CacheDir returns the schedule cache directory, honouring the platform
// user cache root ($XDG_CACHE_HOME on Linux).
func CacheDir() (string, error) {
	root, err := os.UserCacheDir()
	if err != nil {
		return "", fmt.Errorf("tune: no user cache dir: %w", err)
	}
	return filepath.Join(root, "negfsim"), nil
}

// CachePath returns the schedule file path for this host.
func CachePath() (string, error) {
	dir, err := CacheDir()
	if err != nil {
		return "", err
	}
	h := fnv.New64a()
	h.Write([]byte(HostKey()))
	return filepath.Join(dir, fmt.Sprintf("schedule-%016x.json", h.Sum64())), nil
}

// LoadCached reads this host's cached schedule. On any failure — no file,
// unreadable, corrupt JSON, wrong schema version, wrong host key — it
// returns DefaultSchedule() and false, logging a warning through logf
// (which may be nil) for every case except a simply absent file. A hit
// ticks tune.cache_hits; every fallback ticks tune.cache_misses.
func LoadCached(logf func(format string, args ...any)) (Schedule, bool) {
	path, err := CachePath()
	if err != nil {
		return cacheMiss(logf, "schedule cache unavailable: %v", err)
	}
	data, err := os.ReadFile(path)
	if os.IsNotExist(err) {
		obsCacheMisses.Inc()
		return DefaultSchedule(), false
	}
	if err != nil {
		return cacheMiss(logf, "schedule cache %s unreadable: %v", path, err)
	}
	s, err := ParseSchedule(data)
	if err != nil {
		return cacheMiss(logf, "schedule cache %s ignored: %v", path, err)
	}
	if s.HostKey != HostKey() {
		return cacheMiss(logf, "schedule cache %s tuned for another host (%q, this host %q); using defaults",
			path, s.HostKey, HostKey())
	}
	obsCacheHits.Inc()
	return *s, true
}

// cacheMiss logs one fallback warning and returns the defaults.
func cacheMiss(logf func(format string, args ...any), format string, args ...any) (Schedule, bool) {
	obsCacheMisses.Inc()
	if logf != nil {
		logf("tune: "+format, args...)
	}
	return DefaultSchedule(), false
}

// SaveCached stamps the schedule with this host's key and writes it to the
// per-host cache path atomically (temp file + rename), creating the cache
// directory if needed. It returns the path written.
func SaveCached(s Schedule) (string, error) {
	s.HostKey = HostKey()
	if err := s.Validate(); err != nil {
		return "", err
	}
	path, err := CachePath()
	if err != nil {
		return "", err
	}
	if err := os.MkdirAll(filepath.Dir(path), 0o755); err != nil {
		return "", fmt.Errorf("tune: creating cache dir: %w", err)
	}
	data, err := s.Marshal()
	if err != nil {
		return "", err
	}
	tmp, err := os.CreateTemp(filepath.Dir(path), ".schedule-*")
	if err != nil {
		return "", fmt.Errorf("tune: writing schedule cache: %w", err)
	}
	if _, err := tmp.Write(data); err != nil {
		tmp.Close()
		os.Remove(tmp.Name())
		return "", fmt.Errorf("tune: writing schedule cache: %w", err)
	}
	if err := tmp.Close(); err != nil {
		os.Remove(tmp.Name())
		return "", fmt.Errorf("tune: writing schedule cache: %w", err)
	}
	if err := os.Rename(tmp.Name(), path); err != nil {
		os.Remove(tmp.Name())
		return "", fmt.Errorf("tune: writing schedule cache: %w", err)
	}
	return path, nil
}

// LoadFile reads an explicit schedule file (the -schedule flag). The
// schema version must match; a host-key mismatch is reported through logf
// as a warning but the schedule is still returned — handing a specific
// file to a binary is an explicit operator decision.
func LoadFile(path string, logf func(format string, args ...any)) (*Schedule, error) {
	data, err := os.ReadFile(path)
	if err != nil {
		return nil, fmt.Errorf("tune: reading schedule: %w", err)
	}
	s, err := ParseSchedule(data)
	if err != nil {
		return nil, fmt.Errorf("tune: %s: %w", path, err)
	}
	if s.HostKey != "" && s.HostKey != HostKey() && logf != nil {
		logf("tune: %s was tuned for another host (%q); applying anyway", path, s.HostKey)
	}
	return s, nil
}
