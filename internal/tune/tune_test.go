package tune

import (
	"fmt"
	"os"
	"path/filepath"
	"reflect"
	"strings"
	"testing"
	"time"

	"negfsim/internal/cmat"
	"negfsim/internal/comm"
	"negfsim/internal/device"
	"negfsim/internal/obs"
)

// fixedTable is a deterministic probe "measurement": a pure function of
// the probe parameters, constructed so the best blocking is (128, 48),
// the crossover lands at 0.20, and 4 workers win. It stands in for a real
// machine in the determinism test (make tune-test).
func fixedTable(p Probe) time.Duration {
	switch p.Kind {
	case "gemm":
		d := time.Duration(1000+10*abs(p.KC-128)+20*abs(p.NC-48)) * time.Microsecond
		return d * time.Duration(p.Size) / 64
	case "crossover":
		if p.Blocked {
			return 1500 * time.Microsecond
		}
		// Naive time grows with density; crosses 1500µs at 0.20.
		return time.Duration(float64(7500*time.Microsecond) * p.Density)
	case "workers":
		return time.Duration(1000+100*abs(p.Workers-4)) * time.Microsecond
	}
	panic("unknown probe " + p.Kind)
}

func abs(x int) int {
	if x < 0 {
		return -x
	}
	return x
}

// TestTunerDeterministicGivenFixedProbes is the tune-test gate: two
// searches over the same fixed probe table must produce identical
// schedules, and the table's planted optima must be found. With Measure
// injected, the wall budget must not influence candidate coverage.
func TestTunerDeterministicGivenFixedProbes(t *testing.T) {
	mk := func() Schedule {
		tn := &Tuner{Budget: time.Nanosecond, Sizes: []int{32, 64}, MaxWorkers: 8, Measure: fixedTable}
		return tn.Search()
	}
	a, b := mk(), mk()
	if !reflect.DeepEqual(a, b) {
		t.Fatalf("searches over a fixed probe table diverged:\n%+v\n%+v", a, b)
	}
	if a.GEMM.KC != 128 || a.GEMM.NC != 48 {
		t.Fatalf("planted blocking optimum (128, 48) not found: got (%d, %d)", a.GEMM.KC, a.GEMM.NC)
	}
	if a.GEMM.MinDensity != 0.20 {
		t.Fatalf("planted crossover 0.20 not found: got %g", a.GEMM.MinDensity)
	}
	if a.Workers != 4 {
		t.Fatalf("planted worker optimum 4 not found: got %d", a.Workers)
	}
	if a.Probes == 0 || a.Probes != b.Probes {
		t.Fatalf("probe counts unstable: %d vs %d", a.Probes, b.Probes)
	}
	if a.ModelAgreement < -1 || a.ModelAgreement > 1 {
		t.Fatalf("model agreement %g outside [-1, 1]", a.ModelAgreement)
	}
	if err := a.Validate(); err != nil {
		t.Fatal(err)
	}
}

// TestTunerRealProbesSmall runs a genuinely measured search under a tiny
// budget: it must terminate quickly, return a valid schedule, and count
// its probes.
func TestTunerRealProbesSmall(t *testing.T) {
	if testing.Short() {
		t.Skip("measured probes under -short")
	}
	tn := &Tuner{Budget: 300 * time.Millisecond, Sizes: []int{48, 64}, MaxWorkers: 2}
	s := tn.Search()
	if err := s.Validate(); err != nil {
		t.Fatal(err)
	}
	if s.Probes < 5 {
		t.Fatalf("suspiciously few probes: %d", s.Probes)
	}
	// Workers == 0 is the "no preference, keep GOMAXPROCS" verdict — the
	// expected outcome when no candidate clears the sign test + margin.
	if s.Workers < 0 || s.Workers > 2 {
		t.Fatalf("worker split %d outside probed range", s.Workers)
	}
}

// TestScheduleRoundTripGolden pins the JSON schema: a fully populated
// schedule must marshal to the committed golden file byte-for-byte and
// parse back to an identical value.
func TestScheduleRoundTripGolden(t *testing.T) {
	s := Schedule{
		Version: ScheduleVersion,
		HostKey: "Example CPU @ 2.10GHz|gomaxprocs=8|" + LibraryVersion,
		GEMM: cmat.Blocking{
			KC: 128, NC: 48, MinWork: 32768, MinDensity: 0.2, BatchWork: 65536,
		},
		Workers:        4,
		Tiles:          []Tile{{NA: 4864, Nkz: 3, NE: 706, Nw: 10, Procs: 768, TE: 3, TA: 256, Bytes: 2.2e12}},
		Probes:         42,
		ProbeBudgetMs:  4000,
		ModelAgreement: 0.62,
	}
	got, err := s.Marshal()
	if err != nil {
		t.Fatal(err)
	}
	golden := filepath.Join("testdata", "schedule_golden.json")
	want, err := os.ReadFile(golden)
	if err != nil {
		t.Fatalf("reading golden: %v (regenerate by writing the Marshal output)", err)
	}
	if string(got) != string(want) {
		t.Fatalf("schedule JSON drifted from golden:\n--- got ---\n%s\n--- want ---\n%s", got, want)
	}
	back, err := ParseSchedule(got)
	if err != nil {
		t.Fatal(err)
	}
	if !reflect.DeepEqual(*back, s) {
		t.Fatalf("round trip changed the schedule:\n%+v\n%+v", *back, s)
	}
}

// withTempCache points the platform cache root at a per-test directory.
func withTempCache(t *testing.T) string {
	t.Helper()
	dir := t.TempDir()
	t.Setenv("XDG_CACHE_HOME", dir)
	if _, err := os.UserCacheDir(); err != nil {
		t.Skipf("no user cache dir on this platform: %v", err)
	}
	return dir
}

// counterDelta samples an obs counter around fn.
func counterDelta(name string, fn func()) int64 {
	c := obs.GetCounter(name)
	before := c.Value()
	fn()
	return c.Value() - before
}

// TestCacheSaveThenLoadHits checks the happy path and the acceptance
// criterion: after SaveCached, LoadCached returns the schedule with zero
// probes spent and tune.cache_hits incremented.
func TestCacheSaveThenLoadHits(t *testing.T) {
	withTempCache(t)
	obs.Enable()
	defer obs.Disable()

	s := DefaultSchedule()
	s.GEMM.KC, s.GEMM.NC = 128, 48
	s.Workers = 4
	path, err := SaveCached(s)
	if err != nil {
		t.Fatal(err)
	}
	if _, err := os.Stat(path); err != nil {
		t.Fatal(err)
	}

	var got Schedule
	var hit bool
	probes := counterDelta("tune.probes_total", func() {
		hits := counterDelta("tune.cache_hits", func() {
			got, hit = LoadCached(t.Logf)
		})
		if hits != 1 {
			t.Fatalf("tune.cache_hits advanced by %d, want 1", hits)
		}
	})
	if probes != 0 {
		t.Fatalf("cache load spent %d probes, want 0", probes)
	}
	if !hit {
		t.Fatal("LoadCached missed a schedule SaveCached just wrote")
	}
	if got.GEMM.KC != 128 || got.GEMM.NC != 48 || got.Workers != 4 {
		t.Fatalf("loaded schedule lost fields: %+v", got)
	}
	if got.HostKey != HostKey() {
		t.Fatal("SaveCached did not stamp the host key")
	}
}

// TestCacheFallbacks drives every degraded-cache case — corrupt JSON,
// version mismatch, wrong host key — and checks each falls back to the
// defaults with a logged warning and a tune.cache_misses tick, never a
// hard failure.
func TestCacheFallbacks(t *testing.T) {
	cases := []struct {
		name    string
		content func() []byte
		warn    string
	}{
		{"corrupt", func() []byte { return []byte("{not json") }, "ignored"},
		{"version-mismatch", func() []byte {
			s := DefaultSchedule()
			s.Version = ScheduleVersion + 1
			s.HostKey = HostKey()
			out, _ := s.Marshal()
			return out
		}, "ignored"},
		{"wrong-host", func() []byte {
			s := DefaultSchedule()
			s.HostKey = "some other machine|gomaxprocs=1|" + LibraryVersion
			out, _ := s.Marshal()
			return out
		}, "another host"},
	}
	for _, tc := range cases {
		t.Run(tc.name, func(t *testing.T) {
			withTempCache(t)
			obs.Enable()
			defer obs.Disable()
			path, err := CachePath()
			if err != nil {
				t.Fatal(err)
			}
			if err := os.MkdirAll(filepath.Dir(path), 0o755); err != nil {
				t.Fatal(err)
			}
			if err := os.WriteFile(path, tc.content(), 0o644); err != nil {
				t.Fatal(err)
			}
			var warned []string
			var got Schedule
			var hit bool
			misses := counterDelta("tune.cache_misses", func() {
				got, hit = LoadCached(func(f string, a ...any) {
					warned = append(warned, fmt.Sprintf(f, a...))
				})
			})
			if misses != 1 {
				t.Fatalf("tune.cache_misses advanced by %d, want 1", misses)
			}
			if hit {
				t.Fatal("degraded cache reported as hit")
			}
			if !reflect.DeepEqual(got, DefaultSchedule()) {
				t.Fatalf("fallback is not the default schedule: %+v", got)
			}
			if len(warned) != 1 || !strings.Contains(warned[0], tc.warn) {
				t.Fatalf("warning %q does not mention %q", warned, tc.warn)
			}
		})
	}
}

// TestCacheAbsentIsSilent checks a simply-missing cache file warns
// nothing (first run on a host is not an anomaly) but still counts a miss.
func TestCacheAbsentIsSilent(t *testing.T) {
	withTempCache(t)
	obs.Enable()
	defer obs.Disable()
	var warned bool
	misses := counterDelta("tune.cache_misses", func() {
		if _, hit := LoadCached(func(string, ...any) { warned = true }); hit {
			t.Fatal("hit on an empty cache")
		}
	})
	if warned {
		t.Fatal("absent cache file produced a warning")
	}
	if misses != 1 {
		t.Fatalf("tune.cache_misses advanced by %d, want 1", misses)
	}
}

// TestLoadFileHostMismatchWarnsButApplies pins the -schedule contract:
// an explicit file from another host is applied, with a warning.
func TestLoadFileHostMismatchWarnsButApplies(t *testing.T) {
	dir := t.TempDir()
	s := DefaultSchedule()
	s.HostKey = "elsewhere|gomaxprocs=2|" + LibraryVersion
	s.GEMM.KC = 96
	data, err := s.Marshal()
	if err != nil {
		t.Fatal(err)
	}
	path := filepath.Join(dir, "sched.json")
	if err := os.WriteFile(path, data, 0o644); err != nil {
		t.Fatal(err)
	}
	var warned bool
	got, err := LoadFile(path, func(string, ...any) { warned = true })
	if err != nil {
		t.Fatal(err)
	}
	if !warned {
		t.Fatal("host mismatch on an explicit file did not warn")
	}
	if got.GEMM.KC != 96 {
		t.Fatal("explicit file not applied")
	}
	if _, err := LoadFile(filepath.Join(dir, "absent.json"), nil); err == nil {
		t.Fatal("absent explicit file must error (unlike the cache)")
	}
}

// TestSearchDecompositionMatchesComm pins the model-only tile search to
// comm.SearchTiles and the schedule's lookup/refresh semantics.
func TestSearchDecompositionMatchesComm(t *testing.T) {
	p := device.Paper4864(3)
	const procs = 768
	tile, err := SearchDecomposition(p, procs, 0)
	if err != nil {
		t.Fatal(err)
	}
	best, _ := comm.SearchTiles(p, procs, 0)
	if tile.TE != best.TE || tile.TA != best.TA || tile.Bytes != best.Bytes {
		t.Fatalf("tile %+v disagrees with comm.SearchTiles best %+v", tile, best)
	}
	var s Schedule
	s.AddTile(tile)
	got, ok := s.TileFor(p, procs)
	if !ok || got != tile {
		t.Fatalf("TileFor lost the tile: %+v", got)
	}
	if _, ok := s.TileFor(p, procs+1); ok {
		t.Fatal("TileFor matched a different process count")
	}
	tile.TE, tile.TA = best.TA, best.TE // refresh with swapped grid
	tile.Procs = tile.TE * tile.TA
	s.AddTile(tile)
	if len(s.Tiles) != 1 {
		t.Fatalf("AddTile appended instead of refreshing: %d tiles", len(s.Tiles))
	}
	if _, err := SearchDecomposition(p, procs, 1); err == nil {
		t.Fatal("impossible memory limit must fail the search")
	}
}

// TestApplyGlobalInstallsBlocking checks ApplyGlobal swaps the cmat
// configuration and an invalid schedule is rejected before touching it.
func TestApplyGlobalInstallsBlocking(t *testing.T) {
	saved := cmat.CurrentBlocking()
	defer func() {
		if err := cmat.SetBlocking(saved); err != nil {
			t.Fatal(err)
		}
	}()
	s := DefaultSchedule()
	s.GEMM.KC = 96
	if err := s.ApplyGlobal(); err != nil {
		t.Fatal(err)
	}
	if got := cmat.CurrentBlocking(); got.KC != 96 {
		t.Fatalf("ApplyGlobal did not install: %+v", got)
	}
	bad := DefaultSchedule()
	bad.GEMM.KC = 0
	if err := bad.ApplyGlobal(); err == nil {
		t.Fatal("invalid blocking accepted")
	}
	if got := cmat.CurrentBlocking(); got.KC != 96 {
		t.Fatal("rejected ApplyGlobal perturbed the installed blocking")
	}
}
