package front

import (
	"context"
	"sync"

	"negfsim/internal/serve"
)

// RunState is the lifecycle phase of a deduplicated run.
type RunState string

// The run lifecycle: Running until the worker-side job reaches a terminal
// state (possibly across re-placements), then one of the three terminal
// states.
const (
	// RunRunning: placed (or being placed) on a worker.
	RunRunning RunState = "running"
	// RunSucceeded: completed with a result and checkpoint in hand.
	RunSucceeded RunState = "succeeded"
	// RunFailed: failed permanently (solver error, or no healthy workers).
	RunFailed RunState = "failed"
	// RunCancelled: cancelled after its last attached submission cancelled.
	RunCancelled RunState = "cancelled"
)

// run is one deduplicated execution: the single in-flight (or cached)
// computation behind any number of front jobs with the same Key. The
// iteration log, result and checkpoint accumulate here; front jobs are thin
// handles that read it. All fields behind mu.
type run struct {
	key Key

	mu   sync.Mutex
	cond *sync.Cond // broadcast on iteration append and state change

	state      RunState
	iters      []serve.IterRecord
	result     *serve.ResultDoc // worker's result document (ID is the worker job id)
	checkpoint []byte           // gob checkpoint bytes fetched after success
	errmsg     string

	worker   string   // URL of the worker currently (or last) executing it
	warmBias *float64 // bias of the cached checkpoint that seeded it, if any
	reroutes int      // worker deaths survived by re-placement

	attached int                // submissions attached; last detach cancels
	cancel   context.CancelFunc // non-nil while the relay goroutine lives
}

func newRun(key Key) *run {
	r := &run{key: key, state: RunRunning}
	r.cond = sync.NewCond(&r.mu)
	return r
}

// WaitIter blocks until iteration record i exists, the run is terminal, or
// ctx fires — the same replay-from-any-index contract as serve.Job.WaitIter,
// one tier up: every attached client streams the one shared log, so
// deduplicated submissions observe byte-identical iteration sequences.
func (r *run) WaitIter(ctx context.Context, i int) (serve.IterRecord, bool) {
	stop := context.AfterFunc(ctx, func() {
		r.mu.Lock()
		r.cond.Broadcast()
		r.mu.Unlock()
	})
	defer stop()
	r.mu.Lock()
	defer r.mu.Unlock()
	for {
		if i < len(r.iters) {
			return r.iters[i], true
		}
		if ctx.Err() != nil || r.state != RunRunning {
			return serve.IterRecord{}, false
		}
		r.cond.Wait()
	}
}

// appendIter appends a worker iteration record, suppressing replays: after a
// re-placement the new worker re-executes the deterministic Born iterations
// the log already holds, so records at or below the high-water mark are
// dropped and the stream continues from the first unseen iteration — the
// HTTP-tier analogue of the checkpoint replay RunDistributedFT performs
// after an ErrRankDead recovery.
func (r *run) appendIter(rec serve.IterRecord) {
	r.mu.Lock()
	defer r.mu.Unlock()
	if len(r.iters) > 0 && rec.Iter <= r.iters[len(r.iters)-1].Iter {
		return
	}
	r.iters = append(r.iters, rec)
	r.cond.Broadcast()
}

// lastIter returns the highest Born iteration index logged so far.
func (r *run) lastIter() int {
	r.mu.Lock()
	defer r.mu.Unlock()
	if len(r.iters) == 0 {
		return 0
	}
	return r.iters[len(r.iters)-1].Iter
}

// finish moves the run to a terminal state and wakes every waiter.
func (r *run) finish(state RunState, errmsg string) {
	r.mu.Lock()
	r.state = state
	r.errmsg = errmsg
	r.cancel = nil
	r.cond.Broadcast()
	r.mu.Unlock()
}

// snapshot returns the fields a Status needs under one lock acquisition.
func (r *run) snapshot() (state RunState, iters int, worker string, warmBias *float64, reroutes int, errmsg string) {
	r.mu.Lock()
	defer r.mu.Unlock()
	return r.state, len(r.iters), r.worker, r.warmBias, r.reroutes, r.errmsg
}

// attach registers one more submission reading this run.
func (r *run) attach() {
	r.mu.Lock()
	r.attached++
	r.mu.Unlock()
}

// detach unregisters a submission; it returns true when this was the last
// one and the run is still in flight — the caller should then cancel the
// underlying worker job, since nobody is left to read its result.
func (r *run) detach() bool {
	r.mu.Lock()
	defer r.mu.Unlock()
	r.attached--
	return r.attached <= 0 && r.state == RunRunning
}
