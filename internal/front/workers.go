package front

import (
	"context"
	"net/http"
	"sync"
	"time"

	"negfsim/internal/obs"
)

// WorkerStatus is the public snapshot of one registered worker.
type WorkerStatus struct {
	// URL is the worker's base URL (scheme://host:port).
	URL string `json:"url"`
	// Alive reports whether the worker passed its last health probe (or has
	// not failed one yet).
	Alive bool `json:"alive"`
	// Active is the number of front-placed runs currently executing on it.
	Active int `json:"active"`
	// Evictions counts how many times the worker was declared dead and its
	// runs re-routed.
	Evictions int `json:"evictions"`
}

// worker is one registered qtsimd backend. The front is the sole dispatcher
// of its own runs, so Active is tracked locally instead of being probed.
type worker struct {
	url string

	mu        sync.Mutex
	alive     bool
	fails     int // consecutive health-probe failures
	active    int
	evictions int
}

func (w *worker) status() WorkerStatus {
	w.mu.Lock()
	defer w.mu.Unlock()
	return WorkerStatus{URL: w.url, Alive: w.alive, Active: w.active, Evictions: w.evictions}
}

// registry is the health-checked worker set behind placement decisions.
type registry struct {
	mu      sync.Mutex
	workers []*worker
}

func newRegistry(urls []string) *registry {
	r := &registry{}
	for _, u := range urls {
		r.workers = append(r.workers, &worker{url: u, alive: true})
	}
	return r
}

// pick returns the least-loaded alive worker (ties break on registration
// order, so placement is deterministic) and accounts the placement; nil when
// no worker is alive. release undoes the accounting when the run leaves the
// worker for any reason.
func (r *registry) pick() *worker {
	r.mu.Lock()
	defer r.mu.Unlock()
	var best *worker
	bestActive := 0
	for _, w := range r.workers {
		w.mu.Lock()
		alive, active := w.alive, w.active
		w.mu.Unlock()
		if !alive {
			continue
		}
		if best == nil || active < bestActive {
			best, bestActive = w, active
		}
	}
	if best != nil {
		best.mu.Lock()
		best.active++
		best.mu.Unlock()
	}
	return best
}

// release undoes pick's load accounting once a run leaves the worker.
func (r *registry) release(w *worker) {
	w.mu.Lock()
	w.active--
	w.mu.Unlock()
}

// aliveCount returns how many workers currently pass health checks.
func (r *registry) aliveCount() int64 {
	r.mu.Lock()
	defer r.mu.Unlock()
	var n int64
	for _, w := range r.workers {
		w.mu.Lock()
		if w.alive {
			n++
		}
		w.mu.Unlock()
	}
	return n
}

// statuses returns a snapshot of every worker in registration order.
func (r *registry) statuses() []WorkerStatus {
	r.mu.Lock()
	defer r.mu.Unlock()
	out := make([]WorkerStatus, len(r.workers))
	for i, w := range r.workers {
		out[i] = w.status()
	}
	return out
}

// evict marks a worker dead after a connection-level failure (a broken
// stream, a refused dial, consecutive health-probe misses). It returns true
// when this call performed the transition — the caller then counts the
// eviction and re-routes the worker's runs. A later successful health probe
// revives the worker; the mapping is the HTTP analogue of the cluster's
// ErrRankDead: connection loss ≡ rank death, re-placement ≡ grid rebuild.
func (r *registry) evict(w *worker) bool {
	w.mu.Lock()
	defer w.mu.Unlock()
	if !w.alive {
		return false
	}
	w.alive = false
	w.fails = 0
	w.evictions++
	return true
}

// healthLoop probes every worker's /healthz at interval until ctx is done.
// failThreshold consecutive misses evict; one success revives. Probes use a
// short per-request timeout so one hung worker never delays the sweep of the
// others past interval + timeout.
func (r *registry) healthLoop(ctx context.Context, client *http.Client, interval, timeout time.Duration, onEvict func(*worker)) {
	tick := time.NewTicker(interval)
	defer tick.Stop()
	for {
		select {
		case <-ctx.Done():
			return
		case <-tick.C:
		}
		r.mu.Lock()
		ws := append([]*worker(nil), r.workers...)
		r.mu.Unlock()
		for _, w := range ws {
			ok := probe(ctx, client, w.url, timeout)
			w.mu.Lock()
			if ok {
				w.fails = 0
				w.alive = true
				w.mu.Unlock()
				continue
			}
			w.fails++
			dead := w.alive && w.fails >= healthFailThreshold
			w.mu.Unlock()
			if dead && r.evict(w) {
				obsWorkerEvictions.Inc()
				onEvict(w)
			}
		}
	}
}

// healthFailThreshold is the consecutive health-probe misses after which a
// worker is declared dead and its runs re-routed.
const healthFailThreshold = 2

// probe performs one bounded /healthz request.
func probe(ctx context.Context, client *http.Client, url string, timeout time.Duration) bool {
	pctx, cancel := context.WithTimeout(ctx, timeout)
	defer cancel()
	req, err := http.NewRequestWithContext(pctx, http.MethodGet, url+"/healthz", nil)
	if err != nil {
		return false
	}
	resp, err := client.Do(req)
	if err != nil {
		return false
	}
	resp.Body.Close()
	return resp.StatusCode == http.StatusOK
}

// obsWorkerEvictions counts worker death transitions (see
// docs/OBSERVABILITY.md, front.* families).
var obsWorkerEvictions = obs.GetCounter("front.worker_evictions")
