package front

import (
	"crypto/sha256"
	"encoding/binary"
	"encoding/hex"
	"encoding/json"
	"fmt"

	"negfsim/internal/core"
)

// Key is the content address of a simulation: what a run computes, divorced
// from who asked for it and how it was spelled. Two submissions with equal
// Key.ID are the same computation — the front tier runs them once and lets
// every submitter read the one result. Keys are derived from the canonical
// form of the RunConfig (core.RunConfig.Canonical: defaults filled, enum
// case folded, execution-only knobs zeroed) plus the device fingerprint
// (device.Params.Fingerprint), so JSON field order, omitted defaults and
// worker counts never split the cache.
type Key struct {
	// ID is the full content address (hex SHA-256 of the canonical config
	// and the device fingerprint).
	ID string
	// Family is the ID recomputed with the bias forced to zero: the
	// warm-start group. Two keys with equal Family describe the same device
	// under the same solver settings at different bias points, so a cached
	// Σ≷/Π≷ checkpoint from one can seed the other.
	Family string
	// Bias is the canonical config's source-drain bias, used to pick the
	// nearest warm-start candidate within a family.
	Bias float64
}

// KeyOf validates cfg and computes its content-address key.
func KeyOf(cfg core.RunConfig) (Key, error) {
	if err := cfg.Validate(); err != nil {
		return Key{}, err
	}
	canon := cfg.Canonical()
	id, err := digest(canon)
	if err != nil {
		return Key{}, err
	}
	fam := canon
	fam.Bias = 0
	famID, err := digest(fam)
	if err != nil {
		return Key{}, err
	}
	return Key{ID: id, Family: famID, Bias: canon.Bias}, nil
}

// digest hashes a canonical config: its deterministic JSON encoding (struct
// field order is fixed by the Go type, independent of the submitted JSON's
// spelling) concatenated with the 64-bit device fingerprint.
func digest(c core.RunConfig) (string, error) {
	raw, err := json.Marshal(c)
	if err != nil {
		return "", fmt.Errorf("front: hashing run config: %w", err)
	}
	h := sha256.New()
	h.Write(raw)
	var fp [8]byte
	binary.BigEndian.PutUint64(fp[:], c.Device.Fingerprint())
	h.Write(fp[:])
	return hex.EncodeToString(h.Sum(nil)), nil
}
