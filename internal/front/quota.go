package front

import (
	"sync"
	"time"
)

// quotas is the per-tenant token-bucket admission layer: each tenant (the
// X-Tenant request header; "anonymous" when absent) owns a bucket of Burst
// tokens refilled at Rate tokens per second, and every submission — hit,
// join or miss alike — spends one. A dry bucket rejects with the duration
// until the next token, which the HTTP layer surfaces as 429 + Retry-After.
// Admission is charged per request, not per computation: dedup makes
// identical submissions nearly free to serve, but the quota still bounds how
// fast any one tenant can ask.
type quotas struct {
	rate  float64 // tokens per second; <= 0 disables quotas
	burst float64

	mu        sync.Mutex
	m         map[string]*bucket
	lastSweep time.Time
}

type bucket struct {
	tokens float64
	last   time.Time
}

func newQuotas(rate float64, burst int) *quotas {
	if burst < 1 {
		burst = 1
	}
	return &quotas{rate: rate, burst: float64(burst), m: make(map[string]*bucket)}
}

// take spends one token from tenant's bucket. When the bucket is dry it
// returns false and the wait until a token is available.
func (q *quotas) take(tenant string, now time.Time) (ok bool, retryAfter time.Duration) {
	if q.rate <= 0 {
		return true, 0
	}
	q.mu.Lock()
	defer q.mu.Unlock()
	q.evictIdle(now)
	b := q.m[tenant]
	if b == nil {
		b = &bucket{tokens: q.burst, last: now}
		q.m[tenant] = b
	}
	b.tokens += now.Sub(b.last).Seconds() * q.rate
	if b.tokens > q.burst {
		b.tokens = q.burst
	}
	b.last = now
	if b.tokens >= 1 {
		b.tokens--
		return true, 0
	}
	deficit := 1 - b.tokens
	return false, time.Duration(deficit / q.rate * float64(time.Second))
}

// evictIdle drops every bucket idle long enough to have refilled to a full
// burst — indistinguishable from a fresh one, so deleting it preserves
// admission decisions exactly while keeping the map bounded by the set of
// recently active tenants (one-shot tenant IDs would otherwise accumulate
// forever). The sweep is amortized to once per refill period, so take stays
// O(1) on the hot path. Caller holds q.mu.
func (q *quotas) evictIdle(now time.Time) {
	period := time.Duration(q.burst / q.rate * float64(time.Second))
	if now.Sub(q.lastSweep) < period {
		return
	}
	q.lastSweep = now
	for tenant, b := range q.m {
		if now.Sub(b.last) >= period {
			delete(q.m, tenant)
		}
	}
}
