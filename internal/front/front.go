// Package front is the horizontally sharded service tier in front of a
// fleet of qtsimd workers: a scheduler/router that makes fleet capacity
// multiplicative rather than additive. The paper's thesis — data movement,
// not FLOPs, bounds quantum-transport throughput — applied at the service
// level says the cheapest job is the one never recomputed, so the front
// tier's job is to move results, not re-derive them:
//
//   - Content-addressed result cache. Every submission is keyed by the
//     canonical RunConfig plus the device fingerprint (see Key); a
//     completed run's iteration log, result and gob checkpoint are served
//     straight from cache on the next identical submission.
//   - Singleflight dedup. Identical submissions from different tenants
//     while a run is in flight attach to the same execution and stream the
//     same iteration log — one worker run, N byte-identical streams.
//   - Warm starts. A near-miss — same device and solver settings, adjacent
//     bias point — is submitted to its worker with the nearest cached Σ≷/Π≷
//     checkpoint, so the Born loop starts near the fixed point instead of
//     at zero (the Σ-reuse direction of the atomistic-NEGF acceleration
//     literature).
//   - Admission control. Per-tenant token buckets reject over-rate
//     submitters with 429 + Retry-After before any placement work happens.
//   - Health-checked placement. Jobs go to the least-loaded alive worker;
//     a dead worker's runs are re-routed and their replayed iterations
//     suppressed — the HTTP-tier mapping of the cluster's ErrRankDead
//     recovery semantics.
//
// The worker protocol is the plain qtsimd HTTP/JSON job API (internal/
// serve): the front is itself a client of the same endpoints it offers,
// so any qtsimd — local, remote, behind a load balancer — can join the
// fleet unmodified.
package front

import (
	"bufio"
	"bytes"
	"context"
	"encoding/json"
	"errors"
	"fmt"
	"io"
	"net/http"
	"strconv"
	"sync"
	"time"

	"negfsim/internal/core"
	"negfsim/internal/obs"
	"negfsim/internal/serve"
)

// Front-tier telemetry (see docs/OBSERVABILITY.md, front.* families).
// front.worker_evictions lives in workers.go next to its producer.
var (
	obsSubmitted   = obs.GetCounter("front.jobs_submitted")
	obsCacheHits   = obs.GetCounter("front.cache_hits")
	obsDedupJoins  = obs.GetCounter("front.dedup_joins")
	obsQuotaRej    = obs.GetCounter("front.quota_rejections")
	obsRunsStarted = obs.GetCounter("front.runs_started")
	obsWarmStarts  = obs.GetCounter("front.warm_starts")
	obsReroutes    = obs.GetCounter("front.reroutes")

	obsCacheEvictions = obs.GetCounter("front.cache_evictions")

	obsPlacementSpan = obs.GetTimer("front.placement")
	obsCacheSpan     = obs.GetTimer("front.cache")
	obsRunSpan       = obs.GetTimer("front.run")
)

// Config sizes a Front.
type Config struct {
	// Workers are the base URLs of the qtsimd backends (http://host:port).
	Workers []string
	// HealthInterval is the period of the worker health sweep (default 1s).
	HealthInterval time.Duration
	// HealthTimeout bounds one health probe (default 500ms).
	HealthTimeout time.Duration
	// QuotaRate is the per-tenant admission rate in submissions per second;
	// 0 or negative disables quotas.
	QuotaRate float64
	// QuotaBurst is the per-tenant bucket capacity (default 8).
	QuotaBurst int
	// CacheMax bounds the completed-run cache entries (default 256).
	CacheMax int
	// MaxAttempts bounds the placements tried per run before it fails; each
	// worker death consumes one (default 3).
	MaxAttempts int
	// Retain is how many finished front jobs stay queryable before the
	// oldest is evicted (default 1024). The underlying cached runs are
	// governed by CacheMax, not Retain.
	Retain int
	// Client is the HTTP client used for worker calls (default
	// http.DefaultClient; streams disable its timeout per request via
	// contexts, never globally).
	Client *http.Client
}

// withDefaults fills the zero fields of a Config.
func (c Config) withDefaults() Config {
	if c.HealthInterval <= 0 {
		c.HealthInterval = time.Second
	}
	if c.HealthTimeout <= 0 {
		c.HealthTimeout = 500 * time.Millisecond
	}
	if c.QuotaBurst <= 0 {
		c.QuotaBurst = 8
	}
	if c.CacheMax <= 0 {
		c.CacheMax = 256
	}
	if c.MaxAttempts <= 0 {
		c.MaxAttempts = 3
	}
	if c.Retain <= 0 {
		c.Retain = 1024
	}
	if c.Client == nil {
		c.Client = http.DefaultClient
	}
	return c
}

// Source says how a front job was satisfied, for clients and experiments.
type Source string

// The three ways a submission resolves.
const (
	// SourceRun: this submission started the worker run.
	SourceRun Source = "run"
	// SourceJoined: attached to an identical in-flight run (singleflight).
	SourceJoined Source = "joined"
	// SourceCache: served entirely from the content-addressed cache.
	SourceCache Source = "cache"
)

// job is one accepted submission: a thin handle onto a shared run.
type job struct {
	id      string
	tenant  string
	source  Source
	r       *run
	created time.Time
}

// Front is the scheduler/router tier. Create one with New; it is safe for
// concurrent use. Close stops the health loop and cancels in-flight runs.
type Front struct {
	cfg      Config
	client   *http.Client
	registry *registry
	quotas   *quotas
	cache    *cache

	baseCtx context.Context
	stop    context.CancelFunc
	wg      sync.WaitGroup

	mu       sync.Mutex
	inflight map[string]*run // Key.ID → in-flight run (singleflight table)
	jobs     map[string]*job
	order    []string // submission order, for listing
	doneRing []string // finished job ids, for handle eviction
	nextID   int
	closed   bool
}

// New builds a Front over the configured worker fleet and starts its health
// loop.
func New(cfg Config) *Front {
	cfg = cfg.withDefaults()
	f := &Front{
		cfg:      cfg,
		client:   cfg.Client,
		registry: newRegistry(cfg.Workers),
		quotas:   newQuotas(cfg.QuotaRate, cfg.QuotaBurst),
		cache:    newCache(cfg.CacheMax),
		inflight: make(map[string]*run),
		jobs:     make(map[string]*job),
	}
	f.baseCtx, f.stop = context.WithCancel(context.Background())
	obs.RegisterGaugeFunc("front.workers_alive", f.registry.aliveCount)
	obs.RegisterGaugeFunc("front.runs_inflight", func() int64 {
		f.mu.Lock()
		defer f.mu.Unlock()
		return int64(len(f.inflight))
	})
	obs.RegisterGaugeFunc("front.cache_entries", f.cache.len)
	f.wg.Add(1)
	go func() {
		defer f.wg.Done()
		f.registry.healthLoop(f.baseCtx, f.client, f.cfg.HealthInterval, f.cfg.HealthTimeout, f.reroute)
	}()
	return f
}

// Close stops the health loop, cancels every in-flight run and waits for the
// relay goroutines to drain or ctx to expire.
func (f *Front) Close(ctx context.Context) error {
	f.mu.Lock()
	f.closed = true
	f.mu.Unlock()
	f.stop()
	done := make(chan struct{})
	go func() { f.wg.Wait(); close(done) }()
	select {
	case <-done:
		return nil
	case <-ctx.Done():
		return fmt.Errorf("front: shutdown timed out: %w", ctx.Err())
	}
}

// ErrQuota is returned by Submit when the tenant's token bucket is dry; the
// HTTP layer maps it to 429 with Retry-After.
var ErrQuota = errors.New("front: tenant over submission quota")

// ErrClosed is returned by Submit after Close has begun.
var ErrClosed = errors.New("front: shut down")

// QuotaError carries the wait until the tenant's next token.
type QuotaError struct {
	// Tenant is the rejected tenant; RetryAfter is the wait until its
	// bucket holds a token again.
	Tenant     string
	RetryAfter time.Duration
}

// Error implements error.
func (e *QuotaError) Error() string {
	return fmt.Sprintf("front: tenant %q over submission quota, retry in %s", e.Tenant, e.RetryAfter)
}

// Unwrap makes errors.Is(err, ErrQuota) work.
func (e *QuotaError) Unwrap() error { return ErrQuota }

// Submit admits one submission from tenant: quota check, content-address
// lookup, then — in order — attach to an identical in-flight run, serve from
// cache, or place a new run on the fleet. The returned job id is
// tenant-private even when the computation is shared.
func (f *Front) Submit(tenant string, cfg core.RunConfig) (*Status, error) {
	if tenant == "" {
		tenant = "anonymous"
	}
	if ok, retry := f.quotas.take(tenant, time.Now()); !ok {
		obsQuotaRej.Inc()
		return nil, &QuotaError{Tenant: tenant, RetryAfter: retry}
	}
	key, err := KeyOf(cfg)
	if err != nil {
		return nil, err
	}

	sp := obsCacheSpan.Start()
	f.mu.Lock()
	if f.closed {
		f.mu.Unlock()
		sp.End()
		return nil, ErrClosed
	}
	var r *run
	source := SourceRun
	if inflight, ok := f.inflight[key.ID]; ok {
		r, source = inflight, SourceJoined
		obsDedupJoins.Inc()
	} else if cached, ok := f.cache.get(key.ID); ok {
		r, source = cached, SourceCache
		obsCacheHits.Inc()
	} else {
		r = newRun(key)
		f.inflight[key.ID] = r
		obsRunsStarted.Inc()
	}
	j := f.addJobLocked(tenant, source, r)
	f.mu.Unlock()
	sp.End()

	r.attach()
	obsSubmitted.Inc()
	if source == SourceRun {
		warm := f.warmCandidate(key, cfg)
		ctx, cancel := context.WithCancel(f.baseCtx)
		r.mu.Lock()
		r.cancel = cancel
		r.mu.Unlock()
		f.wg.Add(1)
		go func() {
			defer f.wg.Done()
			f.execute(ctx, r, cfg, warm)
		}()
	}
	return f.status(j), nil
}

// addJobLocked mints a job handle; caller holds f.mu.
func (f *Front) addJobLocked(tenant string, source Source, r *run) *job {
	f.nextID++
	j := &job{
		id:      "f" + strconv.Itoa(f.nextID),
		tenant:  tenant,
		source:  source,
		r:       r,
		created: time.Now(),
	}
	f.jobs[j.id] = j
	f.order = append(f.order, j.id)
	return j
}

// noteJobDone retires a finished handle into the retention ring, evicting
// the oldest past Retain (the cached runs they point to live on in the
// cache).
func (f *Front) noteJobDone(id string) {
	f.mu.Lock()
	defer f.mu.Unlock()
	f.doneRing = append(f.doneRing, id)
	for len(f.doneRing) > f.cfg.Retain {
		victim := f.doneRing[0]
		f.doneRing = f.doneRing[1:]
		delete(f.jobs, victim)
		for i, oid := range f.order {
			if oid == victim {
				f.order = append(f.order[:i:i], f.order[i+1:]...)
				break
			}
		}
	}
}

// warmCandidate looks up the nearest cached checkpoint in cfg's family.
// Warm starts apply to plain serial runs only — distributed, spatially
// partitioned and Gummel-coupled runs manage their own checkpoint
// lifecycle.
func (f *Front) warmCandidate(key Key, cfg core.RunConfig) *run {
	if cfg.Dist != "" || cfg.Space >= 2 || cfg.Gate != nil {
		return nil
	}
	return f.cache.nearest(key)
}

// Get returns the job's status, if the handle is still retained.
func (f *Front) Get(id string) (*Status, bool) {
	f.mu.Lock()
	j, ok := f.jobs[id]
	f.mu.Unlock()
	if !ok {
		return nil, false
	}
	return f.status(j), true
}

// Jobs returns the retained jobs' statuses in submission order.
func (f *Front) Jobs() []*Status {
	f.mu.Lock()
	ids := append([]string(nil), f.order...)
	f.mu.Unlock()
	out := make([]*Status, 0, len(ids))
	for _, id := range ids {
		if st, ok := f.Get(id); ok {
			out = append(out, st)
		}
	}
	return out
}

// Cancel detaches the job from its run; the underlying worker job is
// cancelled only when the last attached submission lets go — cancelling one
// tenant's handle never tears down a computation other tenants still watch.
func (f *Front) Cancel(id string) (*Status, error) {
	f.mu.Lock()
	j, ok := f.jobs[id]
	f.mu.Unlock()
	if !ok {
		return nil, fmt.Errorf("front: no such job %q", id)
	}
	if j.r.detach() {
		j.r.mu.Lock()
		cancel := j.r.cancel
		j.r.mu.Unlock()
		if cancel != nil {
			cancel()
		}
	}
	return f.status(j), nil
}

// Status is the point-in-time public snapshot of a front job.
type Status struct {
	// ID is the front job id; Tenant submitted it.
	ID     string `json:"id"`
	Tenant string `json:"tenant"`
	// State mirrors the underlying run's lifecycle.
	State RunState `json:"state"`
	// Source records how the submission resolved: "run" (started the worker
	// run), "joined" (deduplicated onto an in-flight run) or "cache".
	Source Source `json:"source"`
	// Key is the content address shared by every deduplicated submission.
	Key string `json:"key"`
	// Worker is the backend executing (or last executing) the run.
	Worker string `json:"worker,omitempty"`
	// Iterations counts the Born iteration records logged so far.
	Iterations int `json:"iterations"`
	// WarmStartBias, when set, is the bias of the cached checkpoint that
	// seeded this run.
	WarmStartBias *float64 `json:"warm_start_bias,omitempty"`
	// Reroutes counts worker deaths this run survived by re-placement.
	Reroutes int `json:"reroutes,omitempty"`
	// Error carries the failure or cancellation message (terminal only).
	Error string `json:"error,omitempty"`
}

// status snapshots a job handle.
func (f *Front) status(j *job) *Status {
	state, iters, workerURL, warmBias, reroutes, errmsg := j.r.snapshot()
	return &Status{
		ID:            j.id,
		Tenant:        j.tenant,
		State:         state,
		Source:        j.source,
		Key:           j.r.key.ID,
		Worker:        workerURL,
		Iterations:    iters,
		WarmStartBias: warmBias,
		Reroutes:      reroutes,
		Error:         errmsg,
	}
}

// Workers returns the registry snapshot.
func (f *Front) Workers() []WorkerStatus { return f.registry.statuses() }

// WaitIter exposes the job's shared iteration log to in-process clients
// (the campaign runner): it blocks until record i exists, the run is
// terminal, or ctx fires — the same replay-from-any-index contract the
// streaming endpoint offers over HTTP.
func (f *Front) WaitIter(ctx context.Context, id string, i int) (serve.IterRecord, bool) {
	f.mu.Lock()
	j, ok := f.jobs[id]
	f.mu.Unlock()
	if !ok {
		return serve.IterRecord{}, false
	}
	return j.r.WaitIter(ctx, i)
}

// Result returns a succeeded job's result document (its ID rewritten to
// the front job id, as the HTTP endpoint does) and the gob checkpoint
// bytes of the finished run.
func (f *Front) Result(id string) (*serve.ResultDoc, []byte, error) {
	f.mu.Lock()
	j, ok := f.jobs[id]
	f.mu.Unlock()
	if !ok {
		return nil, nil, fmt.Errorf("front: no such job %q", id)
	}
	j.r.mu.Lock()
	state, doc, ck, errmsg := j.r.state, j.r.result, j.r.checkpoint, j.r.errmsg
	j.r.mu.Unlock()
	if state != RunSucceeded || doc == nil {
		if errmsg == "" {
			errmsg = string(state)
		}
		return nil, nil, fmt.Errorf("front: job %s has no result: %s", id, errmsg)
	}
	out := *doc
	out.ID = id
	return &out, ck, nil
}

// permanentError marks a failure that re-placement cannot fix (the solver
// rejected or failed the job); transient errors — connection loss, worker
// overload — trigger eviction and re-routing instead.
type permanentError struct{ err error }

func (e *permanentError) Error() string { return e.err.Error() }
func (e *permanentError) Unwrap() error { return e.err }

// execute drives one run to a terminal state: place, relay, re-place on
// worker death, then publish the artifacts into the cache.
func (f *Front) execute(ctx context.Context, r *run, cfg core.RunConfig, warm *run) {
	sp := obsRunSpan.Start()
	defer sp.End()
	if warm != nil {
		bias := warm.key.Bias
		r.mu.Lock()
		r.warmBias = &bias
		r.mu.Unlock()
		obsWarmStarts.Inc()
	}
	var lastErr error
	for attempt := 0; attempt < f.cfg.MaxAttempts; attempt++ {
		if ctx.Err() != nil {
			f.settle(r, RunCancelled, "cancelled")
			return
		}
		psp := obsPlacementSpan.Start()
		w := f.registry.pick()
		psp.End()
		if w == nil {
			lastErr = errors.New("no healthy workers")
			break
		}
		r.mu.Lock()
		r.worker = w.url
		if attempt > 0 {
			r.reroutes++
		}
		r.mu.Unlock()
		if attempt > 0 {
			obsReroutes.Inc()
		}
		err := f.runOn(ctx, r, w.url, cfg, warm)
		f.registry.release(w)
		if err == nil {
			f.settle(r, RunSucceeded, "")
			return
		}
		if ctx.Err() != nil {
			f.settle(r, RunCancelled, "cancelled: "+err.Error())
			return
		}
		var perm *permanentError
		if errors.As(err, &perm) {
			f.settle(r, RunFailed, perm.err.Error())
			return
		}
		lastErr = err
		if f.registry.evict(w) {
			obsWorkerEvictions.Inc()
		}
	}
	msg := "front: run failed"
	if lastErr != nil {
		msg = fmt.Sprintf("front: run failed after %d placement attempts: %v", f.cfg.MaxAttempts, lastErr)
	}
	f.settle(r, RunFailed, msg)
}

// settle finishes a run, removes it from the singleflight table and, on
// success, publishes it to the content-addressed cache.
func (f *Front) settle(r *run, state RunState, errmsg string) {
	r.finish(state, errmsg)
	f.mu.Lock()
	delete(f.inflight, r.key.ID)
	f.mu.Unlock()
	f.cache.put(r)
}

// reroute is the health loop's eviction callback: nothing to do eagerly —
// the relay goroutine of every run on the dead worker observes its broken
// stream and re-places itself — but the hook is where a future
// checkpoint-forwarding reroute would go.
func (f *Front) reroute(w *worker) {}

// runOn executes one placement attempt against a worker: submit (optionally
// with the warm-start checkpoint envelope), relay the NDJSON iteration
// stream into the shared log, then collect the result and checkpoint.
// Transport-level failures return transient errors (caller re-routes);
// worker-reported job failures return permanent ones.
func (f *Front) runOn(ctx context.Context, r *run, workerURL string, cfg core.RunConfig, warm *run) error {
	var body []byte
	var err error
	if warm != nil {
		cfgRaw, merr := json.Marshal(cfg)
		if merr != nil {
			return &permanentError{fmt.Errorf("encoding config: %w", merr)}
		}
		body, err = json.Marshal(struct {
			Config     json.RawMessage `json:"config"`
			Checkpoint []byte          `json:"checkpoint"`
		}{Config: cfgRaw, Checkpoint: warm.checkpoint})
	} else {
		body, err = json.Marshal(cfg)
	}
	if err != nil {
		return &permanentError{fmt.Errorf("encoding submission: %w", err)}
	}
	var st serve.Status
	if code, err := f.doJSON(ctx, http.MethodPost, workerURL+"/v1/jobs", body, &st); err != nil {
		return err
	} else if code != http.StatusAccepted {
		// 400s are permanent (the config is bad everywhere); 429/503 mean
		// this worker is saturated or draining — try another.
		if code == http.StatusBadRequest {
			return &permanentError{fmt.Errorf("worker rejected job: HTTP %d", code)}
		}
		return fmt.Errorf("worker %s refused job: HTTP %d", workerURL, code)
	}
	jobURL := workerURL + "/v1/jobs/" + st.ID

	if err := f.relayStream(ctx, r, jobURL); err != nil {
		f.cancelWorkerJob(jobURL)
		return err
	}

	var final serve.Status
	if code, err := f.doJSON(ctx, http.MethodGet, jobURL, nil, &final); err != nil {
		return err
	} else if code != http.StatusOK {
		return fmt.Errorf("worker %s lost job %s: HTTP %d", workerURL, st.ID, code)
	}
	switch final.State {
	case serve.Succeeded:
	case serve.Failed:
		return &permanentError{fmt.Errorf("worker run failed: %s", final.Error)}
	default:
		return fmt.Errorf("worker job %s ended in state %q: %s", st.ID, final.State, final.Error)
	}

	var doc serve.ResultDoc
	if code, err := f.doJSON(ctx, http.MethodGet, jobURL+"/result", nil, &doc); err != nil {
		return err
	} else if code != http.StatusOK {
		return fmt.Errorf("fetching result: HTTP %d", code)
	}
	ck, err := f.doBytes(ctx, jobURL+"/checkpoint")
	if err != nil {
		return err
	}
	r.mu.Lock()
	r.result = &doc
	r.checkpoint = ck
	r.mu.Unlock()
	return nil
}

// relayStream follows the worker's NDJSON iteration stream from the first
// unseen Born iteration, appending each record to the shared log (replayed
// iterations after a re-placement are suppressed by appendIter).
func (f *Front) relayStream(ctx context.Context, r *run, jobURL string) error {
	req, err := http.NewRequestWithContext(ctx, http.MethodGet, jobURL+"/stream?from=0", nil)
	if err != nil {
		return err
	}
	resp, err := f.client.Do(req)
	if err != nil {
		return fmt.Errorf("opening stream: %w", err)
	}
	defer resp.Body.Close()
	if resp.StatusCode != http.StatusOK {
		return fmt.Errorf("opening stream: HTTP %d", resp.StatusCode)
	}
	sc := bufio.NewScanner(resp.Body)
	sc.Buffer(make([]byte, 0, 64*1024), 1<<20)
	for sc.Scan() {
		var rec serve.IterRecord
		if err := json.Unmarshal(sc.Bytes(), &rec); err != nil {
			return fmt.Errorf("decoding stream record: %w", err)
		}
		r.appendIter(rec)
	}
	if err := sc.Err(); err != nil {
		return fmt.Errorf("stream broken: %w", err)
	}
	return nil
}

// cancelWorkerJob best-effort cancels an abandoned worker job so a worker
// doesn't burn its budget on a run nobody will read. It runs under its own
// short deadline because the caller's context is usually already dead.
func (f *Front) cancelWorkerJob(jobURL string) {
	ctx, cancel := context.WithTimeout(context.Background(), 2*time.Second)
	defer cancel()
	req, err := http.NewRequestWithContext(ctx, http.MethodPost, jobURL+"/cancel", nil)
	if err != nil {
		return
	}
	if resp, err := f.client.Do(req); err == nil {
		resp.Body.Close()
	}
}

// doJSON performs one bounded JSON request/response exchange.
func (f *Front) doJSON(ctx context.Context, method, url string, body []byte, out any) (int, error) {
	var rd io.Reader
	if body != nil {
		rd = bytes.NewReader(body)
	}
	req, err := http.NewRequestWithContext(ctx, method, url, rd)
	if err != nil {
		return 0, err
	}
	if body != nil {
		req.Header.Set("Content-Type", "application/json")
	}
	resp, err := f.client.Do(req)
	if err != nil {
		return 0, err
	}
	defer resp.Body.Close()
	raw, err := io.ReadAll(io.LimitReader(resp.Body, 64<<20))
	if err != nil {
		return 0, err
	}
	if resp.StatusCode < 300 && out != nil {
		if err := json.Unmarshal(raw, out); err != nil {
			return resp.StatusCode, fmt.Errorf("decoding %s response: %w", url, err)
		}
	}
	return resp.StatusCode, nil
}

// doBytes fetches a binary artifact (the gob checkpoint).
func (f *Front) doBytes(ctx context.Context, url string) ([]byte, error) {
	req, err := http.NewRequestWithContext(ctx, http.MethodGet, url, nil)
	if err != nil {
		return nil, err
	}
	resp, err := f.client.Do(req)
	if err != nil {
		return nil, err
	}
	defer resp.Body.Close()
	if resp.StatusCode != http.StatusOK {
		return nil, fmt.Errorf("fetching %s: HTTP %d", url, resp.StatusCode)
	}
	return io.ReadAll(io.LimitReader(resp.Body, 256<<20))
}
