package front

import (
	"context"
	"encoding/json"
	"errors"
	"fmt"
	"net/http"
	"strconv"
	"time"

	"negfsim/internal/core"
	"negfsim/internal/obs"
)

// API is the front tier's HTTP surface. It mirrors the qtsimd job API
// (docs/API.md documents both side by side) with the front-specific
// additions: the X-Tenant admission header, 429 + Retry-After on quota
// rejection, Source/Key fields in statuses, and GET /v1/workers.
//
//	POST /v1/jobs                submit a RunConfig (X-Tenant header optional)
//	GET  /v1/jobs                list retained jobs
//	GET  /v1/jobs/{id}           job status
//	GET  /v1/jobs/{id}/stream    NDJSON iteration stream (?from=N replays)
//	POST /v1/jobs/{id}/cancel    detach; cancels the run when last to leave
//	GET  /v1/jobs/{id}/result    final result document
//	GET  /v1/jobs/{id}/checkpoint  gob checkpoint of the finished run
//	GET  /v1/workers             fleet snapshot
//	GET  /healthz                liveness + fleet summary
//	GET  /metrics                obs metrics text dump
type API struct {
	f *Front
}

// NewAPI wraps a Front in its HTTP surface.
func NewAPI(f *Front) *API { return &API{f: f} }

// Handler returns the routed HTTP handler.
func (a *API) Handler() http.Handler {
	mux := http.NewServeMux()
	mux.HandleFunc("POST /v1/jobs", a.submit)
	mux.HandleFunc("GET /v1/jobs", a.list)
	mux.HandleFunc("GET /v1/jobs/{id}", a.status)
	mux.HandleFunc("GET /v1/jobs/{id}/stream", a.stream)
	mux.HandleFunc("POST /v1/jobs/{id}/cancel", a.cancel)
	mux.HandleFunc("GET /v1/jobs/{id}/result", a.result)
	mux.HandleFunc("GET /v1/jobs/{id}/checkpoint", a.checkpoint)
	mux.HandleFunc("GET /v1/workers", a.workers)
	mux.HandleFunc("GET /healthz", a.healthz)
	mux.Handle("GET /metrics", obs.Handler())
	return mux
}

func writeJSON(w http.ResponseWriter, code int, v any) {
	w.Header().Set("Content-Type", "application/json")
	w.WriteHeader(code)
	_ = json.NewEncoder(w).Encode(v)
}

func writeErr(w http.ResponseWriter, code int, format string, args ...any) {
	writeJSON(w, code, map[string]string{"error": fmt.Sprintf(format, args...)})
}

func (a *API) submit(w http.ResponseWriter, r *http.Request) {
	dec := json.NewDecoder(http.MaxBytesReader(w, r.Body, 4<<20))
	dec.DisallowUnknownFields()
	var cfg core.RunConfig
	if err := dec.Decode(&cfg); err != nil {
		writeErr(w, http.StatusBadRequest, "bad run config: %v", err)
		return
	}
	if cfg.Version != 0 && !core.VersionSupported(cfg.Version) {
		writeErr(w, http.StatusBadRequest, "unsupported config version %d (want %d, or legacy %d)",
			cfg.Version, core.RunConfigVersion, core.RunConfigLegacyVersion)
		return
	}
	st, err := a.f.Submit(r.Header.Get("X-Tenant"), cfg)
	if err != nil {
		var qe *QuotaError
		switch {
		case errors.As(err, &qe):
			secs := int(qe.RetryAfter.Seconds()) + 1
			w.Header().Set("Retry-After", strconv.Itoa(secs))
			writeErr(w, http.StatusTooManyRequests, "%v", err)
		case errors.Is(err, ErrClosed):
			writeErr(w, http.StatusServiceUnavailable, "%v", err)
		default:
			writeErr(w, http.StatusBadRequest, "%v", err)
		}
		return
	}
	writeJSON(w, http.StatusAccepted, st)
}

func (a *API) list(w http.ResponseWriter, r *http.Request) {
	writeJSON(w, http.StatusOK, a.f.Jobs())
}

func (a *API) status(w http.ResponseWriter, r *http.Request) {
	st, ok := a.f.Get(r.PathValue("id"))
	if !ok {
		writeErr(w, http.StatusNotFound, "no such job %q", r.PathValue("id"))
		return
	}
	writeJSON(w, http.StatusOK, st)
}

// stream replays the shared iteration log as NDJSON from ?from= (default 0)
// and follows it live until the run is terminal. Every attached client of a
// deduplicated run streams the same log, so their streams are
// byte-identical for the same ?from=.
func (a *API) stream(w http.ResponseWriter, r *http.Request) {
	id := r.PathValue("id")
	a.f.mu.Lock()
	j, ok := a.f.jobs[id]
	a.f.mu.Unlock()
	if !ok {
		writeErr(w, http.StatusNotFound, "no such job %q", id)
		return
	}
	from := 0
	if s := r.URL.Query().Get("from"); s != "" {
		v, err := strconv.Atoi(s)
		if err != nil || v < 0 {
			writeErr(w, http.StatusBadRequest, "bad from=%q", s)
			return
		}
		from = v
	}
	w.Header().Set("Content-Type", "application/x-ndjson")
	w.WriteHeader(http.StatusOK)
	fl, _ := w.(http.Flusher)
	enc := json.NewEncoder(w)
	for i := from; ; i++ {
		rec, ok := j.r.WaitIter(r.Context(), i)
		if !ok {
			return
		}
		if err := enc.Encode(rec); err != nil {
			return
		}
		if fl != nil {
			fl.Flush()
		}
	}
}

func (a *API) cancel(w http.ResponseWriter, r *http.Request) {
	st, err := a.f.Cancel(r.PathValue("id"))
	if err != nil {
		writeErr(w, http.StatusNotFound, "%v", err)
		return
	}
	writeJSON(w, http.StatusOK, st)
}

// result serves the finished run's result document with the document ID
// rewritten to the front job id, so a client never sees worker-internal ids.
func (a *API) result(w http.ResponseWriter, r *http.Request) {
	id := r.PathValue("id")
	a.f.mu.Lock()
	j, ok := a.f.jobs[id]
	a.f.mu.Unlock()
	if !ok {
		writeErr(w, http.StatusNotFound, "no such job %q", id)
		return
	}
	j.r.mu.Lock()
	state, doc := j.r.state, j.r.result
	errmsg := j.r.errmsg
	j.r.mu.Unlock()
	switch state {
	case RunRunning:
		writeErr(w, http.StatusConflict, "job %s still running", id)
	case RunSucceeded:
		out := *doc
		out.ID = id
		writeJSON(w, http.StatusOK, out)
	default:
		writeErr(w, http.StatusConflict, "job %s %s: %s", id, state, errmsg)
	}
}

func (a *API) checkpoint(w http.ResponseWriter, r *http.Request) {
	id := r.PathValue("id")
	a.f.mu.Lock()
	j, ok := a.f.jobs[id]
	a.f.mu.Unlock()
	if !ok {
		writeErr(w, http.StatusNotFound, "no such job %q", id)
		return
	}
	j.r.mu.Lock()
	state, ck := j.r.state, j.r.checkpoint
	j.r.mu.Unlock()
	if state != RunSucceeded {
		writeErr(w, http.StatusConflict, "job %s not succeeded (state %s)", id, state)
		return
	}
	w.Header().Set("Content-Type", "application/octet-stream")
	w.WriteHeader(http.StatusOK)
	_, _ = w.Write(ck)
}

func (a *API) workers(w http.ResponseWriter, r *http.Request) {
	writeJSON(w, http.StatusOK, a.f.Workers())
}

func (a *API) healthz(w http.ResponseWriter, r *http.Request) {
	a.f.mu.Lock()
	inflight := len(a.f.inflight)
	a.f.mu.Unlock()
	writeJSON(w, http.StatusOK, map[string]any{
		"ok":            true,
		"workers_alive": a.f.registry.aliveCount(),
		"runs_inflight": inflight,
		"cache_entries": a.f.cache.len(),
	})
}

// Serve runs the API on addr until ctx is cancelled, then drains with a
// bounded shutdown. It mirrors serve.Serve for symmetry between the tiers.
func Serve(ctx context.Context, addr string, f *Front) error {
	srv := &http.Server{Addr: addr, Handler: NewAPI(f).Handler()}
	errc := make(chan error, 1)
	go func() { errc <- srv.ListenAndServe() }()
	select {
	case err := <-errc:
		return err
	case <-ctx.Done():
	}
	sctx, cancel := context.WithTimeout(context.Background(), 5*time.Second)
	defer cancel()
	_ = srv.Shutdown(sctx)
	return f.Close(sctx)
}
