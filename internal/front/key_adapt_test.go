package front

import (
	"testing"

	"negfsim/internal/core"
)

// The adapt block is part of the computation's identity — except when it
// says "off", which is the same computation as no block at all.
func TestKeyOfAdaptCanonicalization(t *testing.T) {
	key := func(mut func(*core.RunConfig)) Key {
		t.Helper()
		cfg := core.DefaultRunConfig()
		mut(&cfg)
		k, err := KeyOf(cfg)
		if err != nil {
			t.Fatal(err)
		}
		return k
	}
	plain := key(func(c *core.RunConfig) {})
	off := key(func(c *core.RunConfig) { c.Adapt = &core.AdaptSpec{Mode: "off"} })
	offLoud := key(func(c *core.RunConfig) { c.Adapt = &core.AdaptSpec{Mode: "OFF", TolCurrent: 1e-3} })
	if off.ID != plain.ID || offLoud.ID != plain.ID {
		t.Fatal(`"adapt": {"mode": "off"} must hash like no adapt block`)
	}

	grid := key(func(c *core.RunConfig) { c.Adapt = &core.AdaptSpec{Mode: "grid"} })
	if grid.ID == plain.ID {
		t.Fatal("an enabled adapt block must change the key")
	}
	sigma := key(func(c *core.RunConfig) { c.Adapt = &core.AdaptSpec{Mode: "grid+sigma"} })
	if sigma.ID == grid.ID {
		t.Fatal(`"grid" and "grid+sigma" are different computations`)
	}
	// Case and the filled tolerance default don't split the cache.
	loud := key(func(c *core.RunConfig) { c.Adapt = &core.AdaptSpec{Mode: "Grid+Sigma", TolCurrent: 1e-6} })
	if loud.ID != sigma.ID {
		t.Fatal("mode case / explicit default tolerance split the cache key")
	}
	// A different tolerance is a different accuracy contract.
	loose := key(func(c *core.RunConfig) { c.Adapt = &core.AdaptSpec{Mode: "grid+sigma", TolCurrent: 1e-4} })
	if loose.ID == sigma.ID {
		t.Fatal("tolerance must be part of the key")
	}
	// Adaptation never splits the warm-start family's bias grouping
	// logic: same device + solver at different bias, both adaptive, share
	// a family.
	a := key(func(c *core.RunConfig) { c.Adapt = &core.AdaptSpec{Mode: "grid+sigma"}; c.Bias = 0.3 })
	b := key(func(c *core.RunConfig) { c.Adapt = &core.AdaptSpec{Mode: "grid+sigma"}; c.Bias = 0.4 })
	if a.Family != b.Family {
		t.Fatal("adaptive runs at different bias must share a warm-start family")
	}
	if a.Family == plain.Family {
		t.Fatal("adaptive and uniform runs must not share a warm-start family (their checkpoints differ in grid)")
	}
}
