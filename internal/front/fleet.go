package front

import (
	"bytes"
	"encoding/json"
	"fmt"
	"os"
	"time"
)

// FleetConfig is the on-disk deployment description consumed by qtfront
// (see examples/fleet.json and docs/DEPLOY.md). Unknown fields are
// rejected so typos fail loudly at startup rather than silently running
// with defaults.
type FleetConfig struct {
	// Listen is the front tier's bind address (default ":8090").
	Listen string `json:"listen"`
	// Workers are the qtsimd base URLs the front shards across.
	Workers []string `json:"workers"`
	// HealthIntervalMs is the worker health-sweep period in milliseconds
	// (default 1000).
	HealthIntervalMs int `json:"health_interval_ms,omitempty"`
	// QuotaRatePerSec is the per-tenant admission rate; 0 disables quotas.
	QuotaRatePerSec float64 `json:"quota_rate_per_sec,omitempty"`
	// QuotaBurst is the per-tenant bucket capacity (default 8).
	QuotaBurst int `json:"quota_burst,omitempty"`
	// CacheMax bounds the content-addressed result cache (default 256).
	CacheMax int `json:"cache_max,omitempty"`
}

// ParseFleetConfig strictly decodes a FleetConfig from JSON bytes.
func ParseFleetConfig(raw []byte) (FleetConfig, error) {
	dec := json.NewDecoder(bytes.NewReader(raw))
	dec.DisallowUnknownFields()
	var fc FleetConfig
	if err := dec.Decode(&fc); err != nil {
		return FleetConfig{}, fmt.Errorf("parsing fleet config: %w", err)
	}
	if fc.Listen == "" {
		fc.Listen = ":8090"
	}
	if len(fc.Workers) == 0 {
		return FleetConfig{}, fmt.Errorf("fleet config lists no workers")
	}
	return fc, nil
}

// LoadFleetConfig reads and parses a fleet config file.
func LoadFleetConfig(path string) (FleetConfig, error) {
	raw, err := os.ReadFile(path)
	if err != nil {
		return FleetConfig{}, err
	}
	return ParseFleetConfig(raw)
}

// FrontConfig converts the deployment description into the Front's runtime
// Config.
func (fc FleetConfig) FrontConfig() Config {
	return Config{
		Workers:        fc.Workers,
		HealthInterval: time.Duration(fc.HealthIntervalMs) * time.Millisecond,
		QuotaRate:      fc.QuotaRatePerSec,
		QuotaBurst:     fc.QuotaBurst,
		CacheMax:       fc.CacheMax,
	}
}
