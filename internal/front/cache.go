package front

import (
	"math"
	"sync"
)

// cache is the content-addressed result store: completed runs keyed by
// Key.ID, with an LRU bound and a per-family index for warm-start lookup.
// An entry holds the full artifact set of a finished run — iteration log,
// result document and gob checkpoint — so a cache hit serves status, stream
// replay, result and checkpoint without touching a worker.
type cache struct {
	mu      sync.Mutex
	max     int
	entries map[string]*run
	lru     []string            // least recently used first
	family  map[string][]string // Family → IDs, for warm-start candidates
}

func newCache(max int) *cache {
	return &cache{
		max:     max,
		entries: make(map[string]*run),
		family:  make(map[string][]string),
	}
}

// get returns the cached run for id, refreshing its LRU position.
func (c *cache) get(id string) (*run, bool) {
	c.mu.Lock()
	defer c.mu.Unlock()
	r, ok := c.entries[id]
	if ok {
		c.touch(id)
	}
	return r, ok
}

// touch moves id to the most-recently-used end. Caller holds c.mu.
func (c *cache) touch(id string) {
	for i, v := range c.lru {
		if v == id {
			c.lru = append(append(c.lru[:i:i], c.lru[i+1:]...), id)
			return
		}
	}
	c.lru = append(c.lru, id)
}

// put stores a completed run, evicting the least recently used entries past
// the bound. Only succeeded runs are cached: failures and cancellations must
// re-execute, not poison the address.
func (c *cache) put(r *run) {
	if r.state != RunSucceeded {
		return
	}
	c.mu.Lock()
	defer c.mu.Unlock()
	id := r.key.ID
	if _, exists := c.entries[id]; !exists {
		c.family[r.key.Family] = append(c.family[r.key.Family], id)
	}
	c.entries[id] = r
	c.touch(id)
	for len(c.entries) > c.max && len(c.lru) > 0 {
		victim := c.lru[0]
		c.lru = c.lru[1:]
		old, ok := c.entries[victim]
		if !ok {
			continue
		}
		delete(c.entries, victim)
		fam := c.family[old.key.Family]
		for i, v := range fam {
			if v == victim {
				c.family[old.key.Family] = append(fam[:i:i], fam[i+1:]...)
				break
			}
		}
		if len(c.family[old.key.Family]) == 0 {
			delete(c.family, old.key.Family)
		}
		obsCacheEvictions.Inc()
	}
}

// nearest returns the cached run in key's family (same device, same solver
// settings, different bias) with a checkpoint and the smallest bias
// distance — the warm-start candidate. Nil when the family has no other
// cached member.
func (c *cache) nearest(key Key) *run {
	c.mu.Lock()
	defer c.mu.Unlock()
	var best *run
	bestD := math.Inf(1)
	for _, id := range c.family[key.Family] {
		if id == key.ID {
			continue
		}
		r, ok := c.entries[id]
		if !ok || len(r.checkpoint) == 0 {
			continue
		}
		if d := math.Abs(r.key.Bias - key.Bias); d < bestD {
			best, bestD = r, d
		}
	}
	return best
}

// len returns the number of cached entries.
func (c *cache) len() int64 {
	c.mu.Lock()
	defer c.mu.Unlock()
	return int64(len(c.entries))
}
