package front

import (
	"testing"

	"negfsim/internal/core"
	"negfsim/internal/device"
)

// The content-address contract over the device zoo: equivalent spellings
// of the same physics share a key, every kind gets its own key space, and
// the bias-zeroed family is stable — the warm-start group a campaign's
// ladder points all fall into.

// zooConfig wraps a spec in an otherwise-default run config.
func zooConfig(s device.Spec) core.RunConfig {
	cfg := core.DefaultRunConfig()
	cfg.Device = device.WrapSpec(s)
	return cfg
}

func TestKeyOfZooSpellingInvariance(t *testing.T) {
	// Terse (defaults omitted) and fully explicit spellings of each kind,
	// with execution-only knobs (workers) varied on one side.
	pairs := []struct {
		name        string
		terse, full device.Spec
	}{
		{"cnt", device.CNT{N: 7, M: 0},
			device.CNT{N: 7, M: 0, Cols: 24, Subbands: 2, Gamma: 2.7, HopLong: 0.9, Bnum: 24, NE: 64, Nw: 8, Nkz: 1, NB: 4, Emin: -2.5, Emax: 2.5}},
		{"chain", device.Chain{},
			device.Chain{Cols: 24, Rows: 1, T1: 1, T2: 0.6, Junction: 12, Bnum: 24, NE: 64, Nw: 8, Nkz: 1, NB: 4, Emin: -2.5, Emax: 2.5}},
		{"gnr", device.GNR{},
			device.GNR{Width: 3, Layers: 1, Cols: 24, THop: 0.8, T1: 1, T2: 0.7, Interlayer: 0.2, Bnum: 24, NE: 64, Nw: 8, Nkz: 1, NB: 4, Emin: -3, Emax: 3}},
	}
	for _, p := range pairs {
		a := zooConfig(p.terse)
		a.Variant = "" // canonicalizes to "dace"
		a.Workers = 7  // execution-only: zeroed by Canonical
		b := zooConfig(p.full)
		ka, err := KeyOf(a)
		if err != nil {
			t.Fatalf("%s terse: %v", p.name, err)
		}
		kb, err := KeyOf(b)
		if err != nil {
			t.Fatalf("%s full: %v", p.name, err)
		}
		if ka.ID != kb.ID {
			t.Errorf("%s: terse and explicit spellings hash to different keys", p.name)
		}
		if ka.Family != kb.Family {
			t.Errorf("%s: terse and explicit spellings land in different warm-start families", p.name)
		}
	}
}

func TestKeyOfZooFamilies(t *testing.T) {
	// Two bias points of the same device: different keys, one family.
	lo := zooConfig(device.CNT{N: 7, M: 0, Cols: 12, NE: 16, Nw: 4})
	lo.Bias = 0.30
	hi := lo
	hi.Bias = 0.50
	klo, err := KeyOf(lo)
	if err != nil {
		t.Fatal(err)
	}
	khi, err := KeyOf(hi)
	if err != nil {
		t.Fatal(err)
	}
	if klo.ID == khi.ID {
		t.Error("different bias points share a key")
	}
	if klo.Family != khi.Family {
		t.Error("ladder points of one device split into different families")
	}
	if klo.Bias != 0.30 || khi.Bias != 0.50 {
		t.Errorf("key biases %g/%g, want 0.30/0.50", klo.Bias, khi.Bias)
	}

	// A different kind on a coinciding grid is a different family.
	other := zooConfig(device.Chain{Cols: 12, Rows: 1, NE: 16, Nw: 4})
	other.Bias = 0.30
	kother, err := KeyOf(other)
	if err != nil {
		t.Fatal(err)
	}
	if kother.Family == klo.Family {
		t.Error("chain and cnt devices share a warm-start family")
	}
}
