package front

import (
	"bytes"
	"context"
	"encoding/json"
	"fmt"
	"io"
	"math"
	"net/http"
	"net/http/httptest"
	"strings"
	"sync"
	"testing"
	"time"

	"negfsim/internal/core"
	"negfsim/internal/device"
	"negfsim/internal/obs"
	"negfsim/internal/serve"
)

func init() { obs.Enable() }

// testConfig is the same seconds-scale device the serve tests use: small
// enough for fast self-consistent runs, every phase exercised.
func testConfig(seed uint64, maxIter int) core.RunConfig {
	cfg := core.DefaultRunConfig()
	cfg.Device = device.WrapParams(device.Params{
		Nkz: 2, Nqz: 2, NE: 10, Nw: 3,
		NA: 12, NB: 3, Norb: 2, N3D: 3,
		Rows: 2, Bnum: 3,
		Emin: -1, Emax: 1, Seed: seed,
	})
	cfg.MaxIter = maxIter
	return cfg
}

// newWorker starts an in-process qtsimd worker (scheduler + HTTP API) and
// returns its base URL. Cleanup tears both down.
func newWorker(t *testing.T, cfg serve.Config) *httptest.Server {
	t.Helper()
	if cfg.MaxConcurrent == 0 {
		cfg.MaxConcurrent = 2
	}
	if cfg.QueueDepth == 0 {
		cfg.QueueDepth = 16
	}
	sched := serve.New(cfg)
	srv := httptest.NewServer(serve.NewAPI(sched))
	t.Cleanup(func() {
		srv.Close()
		ctx, cancel := context.WithTimeout(context.Background(), 30*time.Second)
		defer cancel()
		_ = sched.Close(ctx)
	})
	return srv
}

// newFront builds a Front over the given worker URLs with test-friendly
// health cadence. Cleanup closes it.
func newFront(t *testing.T, cfg Config) *Front {
	t.Helper()
	if cfg.HealthInterval == 0 {
		cfg.HealthInterval = 50 * time.Millisecond
	}
	if cfg.HealthTimeout == 0 {
		cfg.HealthTimeout = 200 * time.Millisecond
	}
	f := New(cfg)
	t.Cleanup(func() {
		ctx, cancel := context.WithTimeout(context.Background(), 30*time.Second)
		defer cancel()
		_ = f.Close(ctx)
	})
	return f
}

// waitFrontState polls until the front job reaches want or the deadline.
func waitFrontState(t *testing.T, f *Front, id string, want RunState, timeout time.Duration) *Status {
	t.Helper()
	deadline := time.Now().Add(timeout)
	for time.Now().Before(deadline) {
		st, ok := f.Get(id)
		if !ok {
			t.Fatalf("job %s vanished", id)
		}
		if st.State == want {
			return st
		}
		if st.State != RunRunning {
			t.Fatalf("job %s reached state %q (err %q), want %q", id, st.State, st.Error, want)
		}
		time.Sleep(2 * time.Millisecond)
	}
	st, _ := f.Get(id)
	t.Fatalf("job %s stuck in state %q, want %q within %v", id, st.State, want, timeout)
	return nil
}

// obsDiff is the largest absolute difference across two observable sets.
func obsDiff(a, b core.Observables) float64 {
	d := 0.0
	acc := func(x, y float64) {
		if v := math.Abs(x - y); v > d {
			d = v
		}
	}
	acc(a.CurrentL, b.CurrentL)
	acc(a.CurrentR, b.CurrentR)
	acc(a.EnergyCurrentL, b.EnergyCurrentL)
	acc(a.EnergyCurrentR, b.EnergyCurrentR)
	acc(a.HeatL, b.HeatL)
	acc(a.HeatR, b.HeatR)
	for i := range a.CurrentPerEnergy {
		acc(a.CurrentPerEnergy[i], b.CurrentPerEnergy[i])
	}
	for i := range a.DissipationPerAtom {
		acc(a.DissipationPerAtom[i], b.DissipationPerAtom[i])
	}
	return d
}

// TestKeyCanonicalization: spelling variations of the same physics — omitted
// defaults, enum case, execution-only knobs — hash to one content address;
// physics changes split it.
func TestKeyCanonicalization(t *testing.T) {
	base := testConfig(7, 6)
	k0, err := KeyOf(base)
	if err != nil {
		t.Fatal(err)
	}

	// Default-fill: explicit defaults vs omitted ones.
	filled := base
	filled.Variant = "DaCe" // case folds
	filled.Mixer = "linear" // explicit default
	filled.Version = core.RunConfigVersion
	if k, _ := KeyOf(filled); k.ID != k0.ID {
		t.Errorf("explicit defaults changed the key: %s vs %s", k.ID, k0.ID)
	}

	// Execution knobs: worker count and comm timeout don't change the physics.
	exec := base
	exec.Workers = 4
	if k, _ := KeyOf(exec); k.ID != k0.ID {
		t.Errorf("workers changed the key")
	}

	// JSON field order: decode a reordered document, same key.
	reordered := []byte(`{"tol":1e-4,"bias":0.4,"kt":0.025,"mixing":0.5,"max_iter":6,"variant":"dace",` +
		`"device":{"nkz":2,"nqz":2,"ne":10,"nw":3,"na":12,"nb":4,"norb":2,"n3d":3,"rows":2,"bnum":3,"emin":-1,"emax":1,"seed":7}}`)
	// Use the test device's NB.
	reordered = bytes.Replace(reordered, []byte(`"nb":4`), []byte(`"nb":3`), 1)
	parsed, err := core.ParseRunConfig(reordered)
	if err != nil {
		t.Fatal(err)
	}
	if k, _ := KeyOf(*parsed); k.ID != k0.ID {
		t.Errorf("JSON field order changed the key")
	}

	// Bias splits the ID but not the family (warm-start group).
	biased := base
	biased.Bias = 0.44
	kb, _ := KeyOf(biased)
	if kb.ID == k0.ID {
		t.Errorf("bias change did not change the key")
	}
	if kb.Family != k0.Family {
		t.Errorf("bias change changed the family: %s vs %s", kb.Family, k0.Family)
	}

	// A different device splits the family too.
	dev := base
	dg := dev.Device.Grid()
	dg.Seed = 8
	dev.Device = device.WrapParams(dg)
	kd, _ := KeyOf(dev)
	if kd.ID == k0.ID || kd.Family == k0.Family {
		t.Errorf("device change did not split key and family")
	}

	// Solver-setting changes split the family as well: a checkpoint from a
	// different mixer trajectory is not a warm-start candidate.
	mix := base
	mix.Mixer = "anderson"
	km, _ := KeyOf(mix)
	if km.Family == k0.Family {
		t.Errorf("mixer change kept the family")
	}
}

// TestQuota: the token bucket rejects over-rate tenants with a positive
// retry hint, refills with time, and isolates tenants from each other.
func TestQuota(t *testing.T) {
	q := newQuotas(1, 2) // 1/s, burst 2
	now := time.Now()
	for i := 0; i < 2; i++ {
		if ok, _ := q.take("a", now); !ok {
			t.Fatalf("take %d rejected within burst", i)
		}
	}
	ok, retry := q.take("a", now)
	if ok {
		t.Fatal("third take within burst admitted")
	}
	if retry <= 0 || retry > time.Second+time.Millisecond {
		t.Fatalf("retry hint %v outside (0, 1s]", retry)
	}
	if ok, _ := q.take("b", now); !ok {
		t.Fatal("tenant b blocked by tenant a's bucket")
	}
	if ok, _ := q.take("a", now.Add(1100*time.Millisecond)); !ok {
		t.Fatal("bucket did not refill after a second")
	}
	// Disabled quotas admit everything.
	open := newQuotas(0, 1)
	for i := 0; i < 100; i++ {
		if ok, _ := open.take("a", now); !ok {
			t.Fatal("disabled quota rejected")
		}
	}
}

// TestQuotaBucketEviction: tenant churn must not grow the bucket map
// without bound — a bucket idle for a full refill period is indistinguishable
// from a fresh one and gets dropped, while active tenants keep their spent
// state across sweeps.
func TestQuotaBucketEviction(t *testing.T) {
	q := newQuotas(1, 2) // 1/s, burst 2 → refill period 2s
	now := time.Now()

	// Churn: a stream of one-shot tenants, each seen once, the clock
	// advancing past the refill period every batch. The map must stay
	// bounded by a batch, not accumulate all 10·100 tenants.
	for batch := 0; batch < 10; batch++ {
		for i := 0; i < 100; i++ {
			if ok, _ := q.take(fmt.Sprintf("t%d-%d", batch, i), now); !ok {
				t.Fatalf("fresh tenant rejected in batch %d", batch)
			}
		}
		now = now.Add(3 * time.Second)
	}
	q.mu.Lock()
	size := len(q.m)
	q.mu.Unlock()
	if size > 200 {
		t.Fatalf("bucket map holds %d entries after churn, want bounded by recent tenants", size)
	}

	// An active tenant's spent tokens survive a sweep: drain the burst, let
	// idle strangers age out, and the still-hot bucket must stay dry.
	q.take("hot", now)
	q.take("hot", now)
	if ok, _ := q.take("hot", now); ok {
		t.Fatal("third take within burst admitted")
	}
	now = now.Add(500 * time.Millisecond) // under a token's worth of refill
	if ok, _ := q.take("hot", now); ok {
		t.Fatal("sweep handed the hot tenant a fresh bucket")
	}

	// A tenant idle past the refill period is evicted — and readmitted
	// exactly as a fresh full-burst bucket would be.
	now = now.Add(5 * time.Second)
	q.take("other", now) // trigger the amortized sweep
	q.mu.Lock()
	_, hotAlive := q.m["hot"]
	q.mu.Unlock()
	if hotAlive {
		t.Fatal("idle bucket survived a sweep past the refill period")
	}
	if ok, _ := q.take("hot", now); !ok {
		t.Fatal("evicted tenant rejected on return")
	}
}

// TestQuotaHTTP: over-quota submissions get 429 with a Retry-After header
// and count into front.quota_rejections.
func TestQuotaHTTP(t *testing.T) {
	f := newFront(t, Config{Workers: []string{"http://127.0.0.1:1"}, QuotaRate: 0.001, QuotaBurst: 1})
	api := httptest.NewServer(NewAPI(f).Handler())
	defer api.Close()

	rejBefore := obs.GetCounter("front.quota_rejections").Value()
	cfg := testConfig(7, 1)
	body, _ := json.Marshal(cfg)

	post := func(tenant string) *http.Response {
		req, _ := http.NewRequest(http.MethodPost, api.URL+"/v1/jobs", bytes.NewReader(body))
		req.Header.Set("X-Tenant", tenant)
		resp, err := http.DefaultClient.Do(req)
		if err != nil {
			t.Fatal(err)
		}
		t.Cleanup(func() { resp.Body.Close() })
		return resp
	}

	if resp := post("alice"); resp.StatusCode != http.StatusAccepted {
		t.Fatalf("first submission: HTTP %d", resp.StatusCode)
	}
	resp := post("alice")
	if resp.StatusCode != http.StatusTooManyRequests {
		t.Fatalf("over-quota submission: HTTP %d, want 429", resp.StatusCode)
	}
	if resp.Header.Get("Retry-After") == "" {
		t.Error("429 without Retry-After")
	}
	// Another tenant is unaffected.
	if resp := post("bob"); resp.StatusCode != http.StatusAccepted {
		t.Fatalf("tenant bob: HTTP %d", resp.StatusCode)
	}
	if d := obs.GetCounter("front.quota_rejections").Value() - rejBefore; d != 1 {
		t.Errorf("front.quota_rejections delta = %d, want 1", d)
	}
}

// streamAll reads a front job's full NDJSON stream from iteration 0.
func streamAll(t *testing.T, apiURL, id string) []byte {
	t.Helper()
	resp, err := http.Get(apiURL + "/v1/jobs/" + id + "/stream?from=0")
	if err != nil {
		t.Fatal(err)
	}
	defer resp.Body.Close()
	if resp.StatusCode != http.StatusOK {
		t.Fatalf("stream %s: HTTP %d", id, resp.StatusCode)
	}
	raw, err := io.ReadAll(resp.Body)
	if err != nil {
		t.Fatal(err)
	}
	return raw
}

// getResult fetches a finished front job's result document.
func getResult(t *testing.T, apiURL, id string) serve.ResultDoc {
	t.Helper()
	resp, err := http.Get(apiURL + "/v1/jobs/" + id + "/result")
	if err != nil {
		t.Fatal(err)
	}
	defer resp.Body.Close()
	if resp.StatusCode != http.StatusOK {
		raw, _ := io.ReadAll(resp.Body)
		t.Fatalf("result %s: HTTP %d: %s", id, resp.StatusCode, raw)
	}
	var doc serve.ResultDoc
	if err := json.NewDecoder(resp.Body).Decode(&doc); err != nil {
		t.Fatal(err)
	}
	return doc
}

// TestDedupAndCache: concurrent identical submissions share one worker run
// (singleflight), their streams are byte-identical, and a post-completion
// resubmission is served from the content-addressed cache without touching
// the fleet.
func TestDedupAndCache(t *testing.T) {
	worker := newWorker(t, serve.Config{})
	f := newFront(t, Config{Workers: []string{worker.URL}})
	api := httptest.NewServer(NewAPI(f).Handler())
	defer api.Close()

	joinsBefore := obs.GetCounter("front.dedup_joins").Value()
	hitsBefore := obs.GetCounter("front.cache_hits").Value()
	startedBefore := obs.GetCounter("front.runs_started").Value()

	// Slow enough that the joiners arrive mid-run.
	cfg := testConfig(21, 25)
	cfg.Tol = 1e-12

	st1, err := f.Submit("alice", cfg)
	if err != nil {
		t.Fatal(err)
	}
	if st1.Source != SourceRun {
		t.Fatalf("first submission source %q, want %q", st1.Source, SourceRun)
	}

	// Wait until the run is demonstrably in flight on the worker.
	deadline := time.Now().Add(20 * time.Second)
	for {
		st, _ := f.Get(st1.ID)
		if st.Iterations >= 1 {
			break
		}
		if st.State != RunRunning {
			t.Fatalf("run finished before joiners could attach (state %s); enlarge the config", st.State)
		}
		if time.Now().After(deadline) {
			t.Fatal("first iteration never arrived")
		}
		time.Sleep(time.Millisecond)
	}

	// Concurrent identical submissions from other tenants join, not re-run.
	var wg sync.WaitGroup
	joined := make([]*Status, 4)
	for i := range joined {
		wg.Add(1)
		go func(i int) {
			defer wg.Done()
			st, err := f.Submit(fmt.Sprintf("tenant-%d", i), cfg)
			if err != nil {
				t.Errorf("join submit: %v", err)
				return
			}
			joined[i] = st
		}(i)
	}
	wg.Wait()
	for i, st := range joined {
		if st == nil {
			t.Fatal("missing join status")
		}
		if st.Source != SourceJoined {
			t.Errorf("joiner %d source %q, want %q", i, st.Source, SourceJoined)
		}
		if st.Key != st1.Key {
			t.Errorf("joiner %d key %s differs from original %s", i, st.Key, st1.Key)
		}
	}

	waitFrontState(t, f, st1.ID, RunSucceeded, 60*time.Second)

	// Exactly one worker-side job exists: dedup held.
	resp, err := http.Get(worker.URL + "/v1/jobs")
	if err != nil {
		t.Fatal(err)
	}
	var workerJobs []serve.Status
	if err := json.NewDecoder(resp.Body).Decode(&workerJobs); err != nil {
		t.Fatal(err)
	}
	resp.Body.Close()
	if len(workerJobs) != 1 {
		t.Fatalf("worker ran %d jobs, want 1 (dedup leak)", len(workerJobs))
	}

	// Streams of the original and every joiner are byte-identical.
	ref := streamAll(t, api.URL, st1.ID)
	if len(ref) == 0 {
		t.Fatal("empty reference stream")
	}
	for i, st := range joined {
		if got := streamAll(t, api.URL, st.ID); !bytes.Equal(got, ref) {
			t.Errorf("joiner %d stream differs from original (%d vs %d bytes)", i, len(got), len(ref))
		}
	}

	// A post-completion resubmission is a pure cache hit...
	st3, err := f.Submit("carol", cfg)
	if err != nil {
		t.Fatal(err)
	}
	if st3.Source != SourceCache {
		t.Fatalf("post-completion submission source %q, want %q", st3.Source, SourceCache)
	}
	if st3.State != RunSucceeded {
		t.Fatalf("cache hit state %q, want succeeded", st3.State)
	}
	// ...with the same stream and result, and still only one worker job.
	if got := streamAll(t, api.URL, st3.ID); !bytes.Equal(got, ref) {
		t.Error("cache-hit stream differs from original")
	}
	r1, r3 := getResult(t, api.URL, st1.ID), getResult(t, api.URL, st3.ID)
	if r1.ID != st1.ID || r3.ID != st3.ID {
		t.Errorf("result IDs not rewritten to front ids: %q/%q", r1.ID, r3.ID)
	}
	r3.ID = r1.ID
	if d := obsDiff(r1.Observables, r3.Observables); d != 0 {
		t.Errorf("cache-hit observables differ by %g", d)
	}

	if d := obs.GetCounter("front.runs_started").Value() - startedBefore; d != 1 {
		t.Errorf("front.runs_started delta = %d, want 1", d)
	}
	if d := obs.GetCounter("front.dedup_joins").Value() - joinsBefore; d != 4 {
		t.Errorf("front.dedup_joins delta = %d, want 4", d)
	}
	if d := obs.GetCounter("front.cache_hits").Value() - hitsBefore; d != 1 {
		t.Errorf("front.cache_hits delta = %d, want 1", d)
	}
}

// warmConfig is the bias-sweep regime the warm-start path targets: Anderson
// mixing at a tight tolerance, where the converged Σ of an adjacent bias
// point is a measurably better Born seed than zero.
func warmConfig(bias float64) core.RunConfig {
	cfg := testConfig(11, 40)
	cfg.Mixer = "anderson"
	cfg.Mixing = 0.8
	cfg.Tol = 1e-9
	cfg.Bias = bias
	return cfg
}

// TestWarmStart: after caching bias 0.40, submitting bias 0.44 warm-starts
// from the cached checkpoint, converges in fewer Born iterations than a
// cold run, and lands on the same observables to 1e-8.
func TestWarmStart(t *testing.T) {
	worker := newWorker(t, serve.Config{})
	f := newFront(t, Config{Workers: []string{worker.URL}})
	api := httptest.NewServer(NewAPI(f).Handler())
	defer api.Close()

	warmBefore := obs.GetCounter("front.warm_starts").Value()

	// Cold baseline for bias 0.44, computed directly.
	coldCfg := warmConfig(0.44)
	sim, err := coldCfg.NewSimulator()
	if err != nil {
		t.Fatal(err)
	}
	cold, err := sim.Run()
	if err != nil {
		t.Fatal(err)
	}

	// Populate the cache with the adjacent bias point.
	st1, err := f.Submit("sweep", warmConfig(0.40))
	if err != nil {
		t.Fatal(err)
	}
	if st1.WarmStartBias != nil {
		t.Fatal("first family member claims a warm start")
	}
	waitFrontState(t, f, st1.ID, RunSucceeded, 120*time.Second)

	// The near-miss warm-starts from it.
	st2, err := f.Submit("sweep", warmConfig(0.44))
	if err != nil {
		t.Fatal(err)
	}
	if st2.Source != SourceRun {
		t.Fatalf("near-miss source %q, want a fresh run", st2.Source)
	}
	fin := waitFrontState(t, f, st2.ID, RunSucceeded, 120*time.Second)
	if fin.WarmStartBias == nil || *fin.WarmStartBias != 0.40 {
		t.Fatalf("warm start bias = %v, want 0.40", fin.WarmStartBias)
	}

	doc := getResult(t, api.URL, st2.ID)
	if !doc.Converged {
		t.Fatal("warm run did not converge")
	}
	if doc.Iterations >= cold.Iterations {
		t.Errorf("warm start took %d iterations, cold took %d — no head start", doc.Iterations, cold.Iterations)
	}
	if d := obsDiff(doc.Observables, cold.Obs); d > 1e-8 {
		t.Errorf("warm observables differ from cold by %g, want <= 1e-8", d)
	}
	if d := obs.GetCounter("front.warm_starts").Value() - warmBefore; d != 1 {
		t.Errorf("front.warm_starts delta = %d, want 1", d)
	}
	t.Logf("cold %d iters, warm %d iters, obs diff %.3g", cold.Iterations, doc.Iterations, obsDiff(doc.Observables, cold.Obs))
}

// TestReroute: killing the worker mid-run evicts it and re-places the run on
// the survivor; replayed iterations are suppressed so the stream stays
// monotonic, and the result matches a clean run.
func TestReroute(t *testing.T) {
	victim := newWorker(t, serve.Config{})
	survivor := newWorker(t, serve.Config{})
	f := newFront(t, Config{Workers: []string{victim.URL, survivor.URL}})
	api := httptest.NewServer(NewAPI(f).Handler())
	defer api.Close()

	evBefore := obs.GetCounter("front.worker_evictions").Value()
	rrBefore := obs.GetCounter("front.reroutes").Value()

	cfg := testConfig(31, 25)
	cfg.Tol = 1e-12

	st, err := f.Submit("ops", cfg)
	if err != nil {
		t.Fatal(err)
	}
	// Registration order breaks the placement tie: the victim got the run.
	deadline := time.Now().Add(20 * time.Second)
	for {
		cur, _ := f.Get(st.ID)
		if cur.Iterations >= 2 {
			if cur.Worker != victim.URL {
				t.Fatalf("run placed on %s, expected first-registered %s", cur.Worker, victim.URL)
			}
			break
		}
		if cur.State != RunRunning {
			t.Fatalf("run finished early (state %s)", cur.State)
		}
		if time.Now().After(deadline) {
			t.Fatal("run never started iterating")
		}
		time.Sleep(time.Millisecond)
	}

	// Kill the victim: in-flight streams break, health probes start failing.
	victim.CloseClientConnections()
	victim.Close()

	fin := waitFrontState(t, f, st.ID, RunSucceeded, 120*time.Second)
	if fin.Reroutes < 1 {
		t.Errorf("run survived with %d reroutes recorded, want >= 1", fin.Reroutes)
	}
	if fin.Worker != survivor.URL {
		t.Errorf("final worker %s, want survivor %s", fin.Worker, survivor.URL)
	}
	if d := obs.GetCounter("front.worker_evictions").Value() - evBefore; d < 1 {
		t.Errorf("front.worker_evictions delta = %d, want >= 1", d)
	}
	if d := obs.GetCounter("front.reroutes").Value() - rrBefore; d < 1 {
		t.Errorf("front.reroutes delta = %d, want >= 1", d)
	}

	// The stream is strictly monotonic in Born iteration despite the replay.
	raw := streamAll(t, api.URL, st.ID)
	last := 0
	for _, line := range bytes.Split(bytes.TrimSpace(raw), []byte("\n")) {
		var rec serve.IterRecord
		if err := json.Unmarshal(line, &rec); err != nil {
			t.Fatalf("bad stream line %q: %v", line, err)
		}
		if rec.Iter <= last {
			t.Fatalf("stream not monotonic: %d after %d", rec.Iter, last)
		}
		last = rec.Iter
	}

	// And the rerouted result matches a clean single-worker run.
	sim, err := cfg.NewSimulator()
	if err != nil {
		t.Fatal(err)
	}
	clean, err := sim.Run()
	if err != nil {
		t.Fatal(err)
	}
	doc := getResult(t, api.URL, st.ID)
	if d := obsDiff(doc.Observables, clean.Obs); d != 0 {
		t.Errorf("rerouted observables differ from clean run by %g", d)
	}

	// The registry recorded the death.
	var dead *WorkerStatus
	for _, w := range f.Workers() {
		if w.URL == victim.URL {
			w := w
			dead = &w
		}
	}
	if dead == nil || dead.Evictions < 1 {
		t.Errorf("victim eviction not recorded: %+v", dead)
	}
}

// TestCancelDetach: cancelling one of two attached submissions keeps the
// shared run alive; cancelling the last one cancels the worker job.
func TestCancelDetach(t *testing.T) {
	worker := newWorker(t, serve.Config{})
	f := newFront(t, Config{Workers: []string{worker.URL}})

	cfg := testConfig(41, 100_000)
	cfg.Tol = 1e-300 // never converges: the test must cancel it

	st1, err := f.Submit("a", cfg)
	if err != nil {
		t.Fatal(err)
	}
	deadline := time.Now().Add(20 * time.Second)
	for {
		cur, _ := f.Get(st1.ID)
		if cur.Iterations >= 1 {
			break
		}
		if time.Now().After(deadline) {
			t.Fatal("run never started")
		}
		time.Sleep(time.Millisecond)
	}
	st2, err := f.Submit("b", cfg)
	if err != nil {
		t.Fatal(err)
	}
	if st2.Source != SourceJoined {
		t.Fatalf("second submission source %q, want joined", st2.Source)
	}

	// First cancel: the run keeps going for the remaining submission.
	if _, err := f.Cancel(st1.ID); err != nil {
		t.Fatal(err)
	}
	time.Sleep(50 * time.Millisecond)
	if cur, _ := f.Get(st2.ID); cur.State != RunRunning {
		t.Fatalf("run state %q after one of two cancels, want still running", cur.State)
	}

	// Last cancel tears the run down.
	if _, err := f.Cancel(st2.ID); err != nil {
		t.Fatal(err)
	}
	deadline = time.Now().Add(30 * time.Second)
	for {
		cur, _ := f.Get(st2.ID)
		if cur.State == RunCancelled {
			break
		}
		if cur.State != RunRunning {
			t.Fatalf("run state %q after last cancel, want cancelled", cur.State)
		}
		if time.Now().After(deadline) {
			t.Fatal("run never cancelled")
		}
		time.Sleep(2 * time.Millisecond)
	}
}

// TestCacheLRUAndNearest: the cache holds its bound, evicts least recently
// used first, and nearest picks the closest bias within a family.
func TestCacheLRUAndNearest(t *testing.T) {
	c := newCache(2)
	mk := func(bias float64) *run {
		cfg := testConfig(7, 6)
		cfg.Bias = bias
		key, err := KeyOf(cfg)
		if err != nil {
			t.Fatal(err)
		}
		r := newRun(key)
		r.state = RunSucceeded
		r.checkpoint = []byte{1}
		return r
	}
	r1, r2, r3 := mk(0.1), mk(0.2), mk(0.5)
	c.put(r1)
	c.put(r2)
	if _, ok := c.get(r1.key.ID); !ok { // touch r1: r2 becomes LRU
		t.Fatal("r1 missing")
	}
	c.put(r3) // evicts r2
	if _, ok := c.get(r2.key.ID); ok {
		t.Error("r2 survived past the LRU bound")
	}
	if c.len() != 2 {
		t.Errorf("cache len %d, want 2", c.len())
	}

	// nearest: for a bias-0.15 query, r1 (0.1) beats r3 (0.5).
	q := testConfig(7, 6)
	q.Bias = 0.15
	qk, _ := KeyOf(q)
	if got := c.nearest(qk); got == nil || got.key.Bias != 0.1 {
		t.Errorf("nearest = %v, want bias 0.1", got)
	}

	// Failed runs are never cached.
	rf := mk(0.9)
	rf.state = RunFailed
	c.put(rf)
	if _, ok := c.get(rf.key.ID); ok {
		t.Error("failed run was cached")
	}
}

// TestFleetConfig: strict parsing with defaults; typos and empty fleets are
// startup errors.
func TestFleetConfig(t *testing.T) {
	fc, err := ParseFleetConfig([]byte(`{"workers":["http://a:1"],"quota_rate_per_sec":2}`))
	if err != nil {
		t.Fatal(err)
	}
	if fc.Listen != ":8090" {
		t.Errorf("default listen %q, want :8090", fc.Listen)
	}
	cfg := fc.FrontConfig()
	if len(cfg.Workers) != 1 || cfg.QuotaRate != 2 {
		t.Errorf("conversion lost fields: %+v", cfg)
	}
	if _, err := ParseFleetConfig([]byte(`{"workerz":["http://a:1"]}`)); err == nil {
		t.Error("unknown field accepted")
	}
	if _, err := ParseFleetConfig([]byte(`{"workers":[]}`)); err == nil {
		t.Error("empty fleet accepted")
	}
	if !strings.Contains(fmt.Sprint(mustErr(t)), "no workers") {
		t.Error("empty-fleet error lacks explanation")
	}
}

// mustErr returns the empty-fleet parse error for message inspection.
func mustErr(t *testing.T) error {
	t.Helper()
	_, err := ParseFleetConfig([]byte(`{"workers":[]}`))
	if err == nil {
		t.Fatal("expected error")
	}
	return err
}
