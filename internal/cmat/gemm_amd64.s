// AVX2+FMA micro-kernels for the blocked complex GEMM engine (gemm.go).
//
// Complex multiply-accumulate, two complex128 per ymm register:
// for each scalar a = ar + i·ai of the left operand and a packed vector b,
//
//	c += a·b  =  (c.re + ar·b.re − ai·b.im,  c.im + ar·b.im + ai·b.re)
//
// which is two FMAs per ymm: one with ar broadcast against b, one with
// (−ai, ai, −ai, ai) against the lane-swapped b. The sign alternation is a
// single VXORPD with signflip<> after broadcasting ai.

#include "textflag.h"

DATA signflip<>+0(SB)/8, $0x8000000000000000
DATA signflip<>+8(SB)/8, $0x0000000000000000
DATA signflip<>+16(SB)/8, $0x8000000000000000
DATA signflip<>+24(SB)/8, $0x0000000000000000
GLOBL signflip<>(SB), RODATA|NOPTR, $32

// func gemmKernel2x4(a0, a1, bp, o0, o1 *complex128, kc int, acc bool)
TEXT ·gemmKernel2x4(SB), NOSPLIT, $0-49
	MOVQ a0+0(FP), AX
	MOVQ a1+8(FP), BX
	MOVQ bp+16(FP), CX
	MOVQ o0+24(FP), DI
	MOVQ o1+32(FP), SI
	MOVQ kc+40(FP), DX
	VXORPD Y0, Y0, Y0
	VXORPD Y1, Y1, Y1
	VXORPD Y2, Y2, Y2
	VXORPD Y3, Y3, Y3
	VMOVUPD signflip<>(SB), Y10

loop:
	VMOVUPD (CX), Y4           // b: columns 0,1
	VMOVUPD 32(CX), Y5         // b: columns 2,3
	VPERMILPD $0x5, Y4, Y6     // lane-swapped b
	VPERMILPD $0x5, Y5, Y7
	VBROADCASTSD (AX), Y8      // ar (row 0)
	VBROADCASTSD 8(AX), Y9     // ai (row 0)
	VXORPD Y10, Y9, Y9         // (−ai, ai, −ai, ai)
	VFMADD231PD Y4, Y8, Y0
	VFMADD231PD Y5, Y8, Y1
	VFMADD231PD Y6, Y9, Y0
	VFMADD231PD Y7, Y9, Y1
	VBROADCASTSD (BX), Y8      // ar (row 1)
	VBROADCASTSD 8(BX), Y9     // ai (row 1)
	VXORPD Y10, Y9, Y9
	VFMADD231PD Y4, Y8, Y2
	VFMADD231PD Y5, Y8, Y3
	VFMADD231PD Y6, Y9, Y2
	VFMADD231PD Y7, Y9, Y3
	ADDQ $64, CX
	ADDQ $16, AX
	ADDQ $16, BX
	DECQ DX
	JNZ  loop

	MOVBLZX acc+48(FP), R8
	TESTL R8, R8
	JZ    store
	VADDPD (DI), Y0, Y0
	VADDPD 32(DI), Y1, Y1
	VADDPD (SI), Y2, Y2
	VADDPD 32(SI), Y3, Y3

store:
	VMOVUPD Y0, (DI)
	VMOVUPD Y1, 32(DI)
	VMOVUPD Y2, (SI)
	VMOVUPD Y3, 32(SI)
	VZEROUPPER
	RET

// func gemmKernel1x4(a0, bp, o0 *complex128, kc int, acc bool)
TEXT ·gemmKernel1x4(SB), NOSPLIT, $0-33
	MOVQ a0+0(FP), AX
	MOVQ bp+8(FP), CX
	MOVQ o0+16(FP), DI
	MOVQ kc+24(FP), DX
	VXORPD Y0, Y0, Y0
	VXORPD Y1, Y1, Y1
	VMOVUPD signflip<>(SB), Y10

loop1:
	VMOVUPD (CX), Y4
	VMOVUPD 32(CX), Y5
	VPERMILPD $0x5, Y4, Y6
	VPERMILPD $0x5, Y5, Y7
	VBROADCASTSD (AX), Y8
	VBROADCASTSD 8(AX), Y9
	VXORPD Y10, Y9, Y9
	VFMADD231PD Y4, Y8, Y0
	VFMADD231PD Y5, Y8, Y1
	VFMADD231PD Y6, Y9, Y0
	VFMADD231PD Y7, Y9, Y1
	ADDQ $64, CX
	ADDQ $16, AX
	DECQ DX
	JNZ  loop1

	MOVBLZX acc+32(FP), R8
	TESTL R8, R8
	JZ    store1
	VADDPD (DI), Y0, Y0
	VADDPD 32(DI), Y1, Y1

store1:
	VMOVUPD Y0, (DI)
	VMOVUPD Y1, 32(DI)
	VZEROUPPER
	RET

// func cpuidex(leaf, subleaf uint32) (eax, ebx, ecx, edx uint32)
TEXT ·cpuidex(SB), NOSPLIT, $0-24
	MOVL leaf+0(FP), AX
	MOVL subleaf+4(FP), CX
	CPUID
	MOVL AX, eax+8(FP)
	MOVL BX, ebx+12(FP)
	MOVL CX, ecx+16(FP)
	MOVL DX, edx+20(FP)
	RET

// func xgetbv() (eax, edx uint32)
TEXT ·xgetbv(SB), NOSPLIT, $0-8
	XORL CX, CX
	XGETBV
	MOVL AX, eax+0(FP)
	MOVL DX, edx+4(FP)
	RET
