package cmat

import (
	"fmt"
	"sync/atomic"
	"time"
)

// Blocking is the runtime-tunable configuration of the GEMM engine: the
// cache-blocking panel sizes of the packed kernel, the size and density
// thresholds of the naive↔blocked dispatch, and the serial threshold of the
// batched small-matrix dispatch. The zero value is invalid; DefaultBlocking
// returns the hand-tuned constants the engine has always used, and the
// autotuner (internal/tune) searches the space and installs a measured
// winner via SetBlocking.
//
// The micro-tile geometry (gemmMR×gemmNR = 2×4) is not part of Blocking: it
// is baked into the register allocation of the Go and assembly
// micro-kernels, so the strip width the packer produces is fixed at gemmNR.
type Blocking struct {
	// KC is the K-panel height: one packed strip is KC·gemmNR·16 bytes and
	// the micro-kernel holds its accumulators across a full KC loop.
	KC int `json:"kc"`
	// NC is the column-panel width: a packed panel is ≤ KC·NC·16 bytes and
	// should fit comfortably in L2.
	NC int `json:"nc"`
	// MinWork is the R·K·C product volume above which the blocked engine is
	// tried; below it packing overhead exceeds the cache savings.
	MinWork int `json:"min_work"`
	// MinDensity is the sparse-vs-dense crossover: the minimum nonzero
	// fraction of the left operand for the blocked path (Table 6's
	// sparse-vs-dense trade). Below it the naive kernel's zero-skip wins.
	MinDensity float64 `json:"min_density"`
	// BatchWork is the total batch volume below which BatchMulAddInto runs
	// serially instead of over the worker pool.
	BatchWork int `json:"batch_work"`
}

// DefaultBlocking returns the compile-time constants as a Blocking — the
// configuration every run uses unless a schedule swaps in something else.
func DefaultBlocking() Blocking {
	return Blocking{
		KC:         gemmKC,
		NC:         gemmNC,
		MinWork:    blockedMinWork,
		MinDensity: blockedMinDensity,
		BatchWork:  batchSerialWork,
	}
}

// Validate checks that the blocking parameters are usable by the kernels.
func (b Blocking) Validate() error {
	if b.KC < 1 {
		return fmt.Errorf("cmat: blocking: kc must be positive, got %d", b.KC)
	}
	if b.NC < gemmNR {
		return fmt.Errorf("cmat: blocking: nc must be at least the strip width %d, got %d", gemmNR, b.NC)
	}
	if b.MinWork < 1 {
		return fmt.Errorf("cmat: blocking: min_work must be positive, got %d", b.MinWork)
	}
	if b.MinDensity < 0 || b.MinDensity > 1 {
		return fmt.Errorf("cmat: blocking: min_density %g outside [0, 1]", b.MinDensity)
	}
	if b.BatchWork < 0 {
		return fmt.Errorf("cmat: blocking: batch_work must be non-negative, got %d", b.BatchWork)
	}
	return nil
}

// active holds the installed Blocking. Hot paths load the pointer once per
// product and read plain struct fields; SetBlocking publishes a new value
// with a single atomic swap, so there is no lock and no per-call overhead
// beyond one atomic load.
var active atomic.Pointer[Blocking]

func init() {
	b := DefaultBlocking()
	active.Store(&b)
}

// SetBlocking validates b and installs it as the engine configuration for
// every subsequent product, process-wide. Install schedules before run
// start: an installed Blocking changes the summation order of the blocked
// kernel, so swapping mid-run makes results depend on timing. Concurrent
// products observe either the old or the new configuration atomically,
// never a mix.
func SetBlocking(b Blocking) error {
	if err := b.Validate(); err != nil {
		return err
	}
	active.Store(&b)
	return nil
}

// CurrentBlocking returns the installed engine configuration.
func CurrentBlocking() Blocking { return *active.Load() }

// MulBlockedInto computes out = m·n (or out += m·n when accumulate is set)
// through the cache-blocked kernel under an explicit Blocking, bypassing
// both the dispatch heuristics and the installed process-wide
// configuration. It exists for the autotuner: candidate configurations are
// probed through this entry, so a tuning pass perturbs no global state and
// can run concurrently with live jobs.
func (m *Dense) MulBlockedInto(out, n *Dense, accumulate bool, b Blocking) {
	if err := b.Validate(); err != nil {
		panic(err)
	}
	checkMulShapes(m, out, n)
	m.mulBlocked(out, n, accumulate, b.KC, b.NC)
}

// MulNaiveInto computes out = m·n (or out += m·n when accumulate is set)
// through the naive zero-skipping kernel regardless of the dispatch
// heuristics — the fixed reference side of the autotuner's
// sparse-vs-dense crossover probe.
func (m *Dense) MulNaiveInto(out, n *Dense, accumulate bool) {
	checkMulShapes(m, out, n)
	if !accumulate {
		out.Zero()
	}
	m.mulAddNaive(out, n)
}

// checkMulShapes panics unless out, m, n have conforming product shapes.
func checkMulShapes(m, out, n *Dense) {
	if m.Cols != n.Rows {
		panic("cmat: Mul dimension mismatch")
	}
	if out.Rows != m.Rows || out.Cols != n.Cols {
		panic("cmat: Mul output shape mismatch")
	}
}

// GEMMProbe times reps products of two dense size×size matrices through
// the blocked kernel under b, on deterministic scratch operands, and
// returns the elapsed wall time. It is the measured half of the
// autotuner's "model + tune" loop; it touches no global state.
func GEMMProbe(size, reps int, b Blocking) time.Duration {
	m, n, out := probeOperands(size, 1.0)
	start := time.Now()
	for i := 0; i < reps; i++ {
		m.mulBlocked(out, n, false, b.KC, b.NC)
	}
	return time.Since(start)
}

// GEMMProbeNaive times reps products of a density-thinned left operand
// through the naive zero-skip kernel — the other side of the
// sparse-vs-dense crossover measurement.
func GEMMProbeNaive(size, reps int, density float64) time.Duration {
	m, n, out := probeOperands(size, density)
	start := time.Now()
	for i := 0; i < reps; i++ {
		out.Zero()
		m.mulAddNaive(out, n)
	}
	return time.Since(start)
}

// GEMMProbeBlockedDense times reps products of a density-thinned left
// operand through the blocked kernel under b. Together with
// GEMMProbeNaive it locates the density at which the dense micro-kernel
// overtakes the zero-skip loop.
func GEMMProbeBlockedDense(size, reps int, density float64, b Blocking) time.Duration {
	m, n, out := probeOperands(size, density)
	start := time.Now()
	for i := 0; i < reps; i++ {
		m.mulBlocked(out, n, false, b.KC, b.NC)
	}
	return time.Since(start)
}

// MulParProbe times reps parallel row-banded products of two size×size
// matrices over the given worker count and returns the elapsed wall time —
// the measurement behind the autotuner's worker-split choice.
func MulParProbe(size, reps, workers int) time.Duration {
	m, n, out := probeOperands(size, 1.0)
	start := time.Now()
	for i := 0; i < reps; i++ {
		m.MulParInto(out, n, workers)
	}
	return time.Since(start)
}

// probeOperands builds deterministic size×size probe matrices: a left
// operand with the given nonzero density, a dense right operand, and an
// output buffer. A fixed linear congruential stream (not math/rand) keeps
// the operands identical across processes and Go versions.
func probeOperands(size int, density float64) (m, n, out *Dense) {
	m = NewDense(size, size)
	n = NewDense(size, size)
	out = NewDense(size, size)
	state := uint64(0x9e3779b97f4a7c15)
	next := func() float64 {
		state = state*6364136223846793005 + 1442695040888963407
		return float64(state>>11) / float64(1<<53)
	}
	for i := range m.Data {
		keep := next() < density
		re, im := next()-0.5, next()-0.5
		if keep {
			m.Data[i] = complex(re, im)
		}
	}
	for i := range n.Data {
		n.Data[i] = complex(next()-0.5, next()-0.5)
	}
	return m, n, out
}
