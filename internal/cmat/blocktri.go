package cmat

import "fmt"

// BlockTri is a block-tridiagonal matrix: the structure of the Hamiltonian
// H(kz), overlap S(kz) and dynamical matrix Φ(qz) in the paper, divided into
// bnum blocks of equal size (§2). Diag has length N; Upper and Lower have
// length N−1, with Upper[i] coupling block i to block i+1 and Lower[i]
// coupling block i+1 to block i.
type BlockTri struct {
	N     int // number of diagonal blocks (bnum)
	Bs    int // block size (NA/bnum · Norb for electrons, · N3D for phonons)
	Diag  []*Dense
	Upper []*Dense
	Lower []*Dense
}

// NewBlockTri allocates an n-block matrix with bs×bs zero blocks.
func NewBlockTri(n, bs int) *BlockTri {
	if n < 1 {
		panic("cmat: BlockTri needs at least one block")
	}
	bt := &BlockTri{N: n, Bs: bs,
		Diag:  make([]*Dense, n),
		Upper: make([]*Dense, n-1),
		Lower: make([]*Dense, n-1)}
	for i := 0; i < n; i++ {
		bt.Diag[i] = NewDense(bs, bs)
	}
	for i := 0; i < n-1; i++ {
		bt.Upper[i] = NewDense(bs, bs)
		bt.Lower[i] = NewDense(bs, bs)
	}
	return bt
}

// Dim returns the full matrix dimension N·Bs.
func (b *BlockTri) Dim() int { return b.N * b.Bs }

// ToDense expands the block-tridiagonal matrix into a dense matrix; intended
// for validation on small problems.
func (b *BlockTri) ToDense() *Dense {
	n := b.Dim()
	out := NewDense(n, n)
	for i := 0; i < b.N; i++ {
		out.SetSubmatrix(i*b.Bs, i*b.Bs, b.Diag[i])
		if i+1 < b.N {
			out.SetSubmatrix(i*b.Bs, (i+1)*b.Bs, b.Upper[i])
			out.SetSubmatrix((i+1)*b.Bs, i*b.Bs, b.Lower[i])
		}
	}
	return out
}

// Clone returns a deep copy.
func (b *BlockTri) Clone() *BlockTri {
	out := NewBlockTri(b.N, b.Bs)
	for i := range b.Diag {
		out.Diag[i].CopyFrom(b.Diag[i])
	}
	for i := range b.Upper {
		out.Upper[i].CopyFrom(b.Upper[i])
		out.Lower[i].CopyFrom(b.Lower[i])
	}
	return out
}

// Scale multiplies all blocks by alpha in place.
func (b *BlockTri) Scale(alpha complex128) {
	for _, d := range b.Diag {
		d.ScaleInPlace(alpha)
	}
	for i := range b.Upper {
		b.Upper[i].ScaleInPlace(alpha)
		b.Lower[i].ScaleInPlace(alpha)
	}
}

// AXPY computes b += alpha·c block-wise. Shapes must match.
func (b *BlockTri) AXPY(alpha complex128, c *BlockTri) {
	if b.N != c.N || b.Bs != c.Bs {
		panic(fmt.Sprintf("cmat: BlockTri.AXPY shape mismatch (%d,%d) vs (%d,%d)", b.N, b.Bs, c.N, c.Bs))
	}
	for i := range b.Diag {
		b.Diag[i].AddScaledInPlace(alpha, c.Diag[i])
	}
	for i := range b.Upper {
		b.Upper[i].AddScaledInPlace(alpha, c.Upper[i])
		b.Lower[i].AddScaledInPlace(alpha, c.Lower[i])
	}
}

// IsHermitian reports whether the full matrix is Hermitian within tol:
// every diagonal block Hermitian and Lower[i] = Upper[i]^H.
func (b *BlockTri) IsHermitian(tol float64) bool {
	for _, d := range b.Diag {
		if !d.IsHermitian(tol) {
			return false
		}
	}
	for i := range b.Upper {
		if !b.Lower[i].Equalish(b.Upper[i].ConjTranspose(), tol) {
			return false
		}
	}
	return true
}

// ShiftDiag adds alpha·S to the diagonal structure of b block-wise, where S
// is another block-tridiagonal matrix (used to form E·S − H).
func (b *BlockTri) ShiftDiag(alpha complex128, s *BlockTri) *BlockTri {
	out := NewBlockTri(b.N, b.Bs)
	b.ShiftDiagInto(out, alpha, s)
	return out
}

// ShiftDiagInto writes alpha·S − b into dst block-wise in a single pass,
// without intermediate allocations. dst must have b's shape.
func (b *BlockTri) ShiftDiagInto(dst *BlockTri, alpha complex128, s *BlockTri) {
	if b.N != s.N || b.Bs != s.Bs || dst.N != b.N || dst.Bs != b.Bs {
		panic("cmat: ShiftDiagInto shape mismatch")
	}
	shift := func(d, bb, ss *Dense) {
		for j := range d.Data {
			d.Data[j] = alpha*ss.Data[j] - bb.Data[j]
		}
	}
	for i := range b.Diag {
		shift(dst.Diag[i], b.Diag[i], s.Diag[i])
	}
	for i := range b.Upper {
		shift(dst.Upper[i], b.Upper[i], s.Upper[i])
		shift(dst.Lower[i], b.Lower[i], s.Lower[i])
	}
}

// ShiftIdentityInto writes alpha·I − b into dst block-wise (the phonon
// operator ω²·I − Φ) without materializing a block identity. dst must have
// b's shape.
func (b *BlockTri) ShiftIdentityInto(dst *BlockTri, alpha complex128) {
	if dst.N != b.N || dst.Bs != b.Bs {
		panic("cmat: ShiftIdentityInto shape mismatch")
	}
	for i := range b.Diag {
		d, bb := dst.Diag[i].Data, b.Diag[i].Data
		for j := range bb {
			d[j] = -bb[j]
		}
		for j := 0; j < b.Bs; j++ {
			d[j*b.Bs+j] += alpha
		}
	}
	for i := range b.Upper {
		du, bu := dst.Upper[i].Data, b.Upper[i].Data
		dl, bl := dst.Lower[i].Data, b.Lower[i].Data
		for j := range bu {
			du[j] = -bu[j]
			dl[j] = -bl[j]
		}
	}
}
