// Package cmat provides the complex linear-algebra substrate of negfsim:
// dense complex matrices, CSR sparse matrices, and block-tridiagonal
// containers, together with the multiplication kernels compared in Table 6
// of the paper (Dense-MM, CSRMM, CSRGEMM).
//
// All matrices use complex128 elements and row-major storage. The kernels
// are pure Go; flop accounting (used to regenerate Table 3) is available
// through the package-level Counter.
package cmat

import (
	"fmt"
	"math"
	"math/cmplx"
	"math/rand"
)

// Dense is a dense complex matrix in row-major order.
type Dense struct {
	Rows, Cols int
	Data       []complex128
}

// NewDense allocates a zeroed r×c matrix.
func NewDense(r, c int) *Dense {
	if r < 0 || c < 0 {
		panic(fmt.Sprintf("cmat: negative dimensions %d×%d", r, c))
	}
	return &Dense{Rows: r, Cols: c, Data: make([]complex128, r*c)}
}

// DenseFromSlice wraps the given backing slice (not copied) as an r×c matrix.
func DenseFromSlice(r, c int, data []complex128) *Dense {
	if len(data) != r*c {
		panic(fmt.Sprintf("cmat: slice length %d does not match %d×%d", len(data), r, c))
	}
	return &Dense{Rows: r, Cols: c, Data: data}
}

// ViewInto rebinds dst as an r×c view of data without allocating a header;
// the steady-state alternative to DenseFromSlice for hot loops.
func ViewInto(dst *Dense, r, c int, data []complex128) {
	if len(data) != r*c {
		panic(fmt.Sprintf("cmat: slice length %d does not match %d×%d", len(data), r, c))
	}
	dst.Rows, dst.Cols, dst.Data = r, c, data
}

// Identity returns the n×n identity matrix.
func Identity(n int) *Dense {
	m := NewDense(n, n)
	for i := 0; i < n; i++ {
		m.Data[i*n+i] = 1
	}
	return m
}

// RandomDense returns an r×c matrix with entries drawn uniformly from the
// complex unit square, using the given deterministic source.
func RandomDense(rng *rand.Rand, r, c int) *Dense {
	m := NewDense(r, c)
	for i := range m.Data {
		m.Data[i] = complex(2*rng.Float64()-1, 2*rng.Float64()-1)
	}
	return m
}

// RandomHermitian returns an n×n Hermitian matrix with the given diagonal
// shift added (useful to make it well conditioned or definite).
func RandomHermitian(rng *rand.Rand, n int, shift float64) *Dense {
	a := RandomDense(rng, n, n)
	h := NewDense(n, n)
	for i := 0; i < n; i++ {
		for j := 0; j < n; j++ {
			h.Data[i*n+j] = 0.5 * (a.Data[i*n+j] + cmplx.Conj(a.Data[j*n+i]))
		}
		h.Data[i*n+i] += complex(shift, 0)
	}
	return h
}

// At returns element (i, j).
func (m *Dense) At(i, j int) complex128 { return m.Data[i*m.Cols+j] }

// Set assigns element (i, j).
func (m *Dense) Set(i, j int, v complex128) { m.Data[i*m.Cols+j] = v }

// Clone returns a deep copy of m.
func (m *Dense) Clone() *Dense {
	n := NewDense(m.Rows, m.Cols)
	copy(n.Data, m.Data)
	return n
}

// CopyFrom overwrites m with the contents of src. Dimensions must match.
func (m *Dense) CopyFrom(src *Dense) {
	if m.Rows != src.Rows || m.Cols != src.Cols {
		panic("cmat: CopyFrom dimension mismatch")
	}
	copy(m.Data, src.Data)
}

// Zero sets every element of m to zero.
func (m *Dense) Zero() {
	for i := range m.Data {
		m.Data[i] = 0
	}
}

// Equalish reports whether m and n have the same shape and all elements
// within tol of each other (absolute difference).
func (m *Dense) Equalish(n *Dense, tol float64) bool {
	if m.Rows != n.Rows || m.Cols != n.Cols {
		return false
	}
	for i := range m.Data {
		if cmplx.Abs(m.Data[i]-n.Data[i]) > tol {
			return false
		}
	}
	return true
}

// MaxAbsDiff returns the largest element-wise absolute difference between
// m and n. Panics on shape mismatch.
func (m *Dense) MaxAbsDiff(n *Dense) float64 {
	if m.Rows != n.Rows || m.Cols != n.Cols {
		panic("cmat: MaxAbsDiff dimension mismatch")
	}
	var d float64
	for i := range m.Data {
		if a := cmplx.Abs(m.Data[i] - n.Data[i]); a > d {
			d = a
		}
	}
	return d
}

// FrobNorm returns the Frobenius norm of m.
func (m *Dense) FrobNorm() float64 {
	var s float64
	for _, v := range m.Data {
		s += real(v)*real(v) + imag(v)*imag(v)
	}
	return math.Sqrt(s)
}

// MaxAbs returns the largest element magnitude in m.
func (m *Dense) MaxAbs() float64 {
	var d float64
	for _, v := range m.Data {
		if a := cmplx.Abs(v); a > d {
			d = a
		}
	}
	return d
}

// Add returns m + n as a new matrix.
func (m *Dense) Add(n *Dense) *Dense {
	if m.Rows != n.Rows || m.Cols != n.Cols {
		panic("cmat: Add dimension mismatch")
	}
	out := NewDense(m.Rows, m.Cols)
	for i := range m.Data {
		out.Data[i] = m.Data[i] + n.Data[i]
	}
	return out
}

// AddInPlace accumulates n into m.
func (m *Dense) AddInPlace(n *Dense) {
	if m.Rows != n.Rows || m.Cols != n.Cols {
		panic("cmat: AddInPlace dimension mismatch")
	}
	for i := range m.Data {
		m.Data[i] += n.Data[i]
	}
}

// AddScaledInPlace accumulates alpha*n into m.
func (m *Dense) AddScaledInPlace(alpha complex128, n *Dense) {
	if m.Rows != n.Rows || m.Cols != n.Cols {
		panic("cmat: AddScaledInPlace dimension mismatch")
	}
	for i := range m.Data {
		m.Data[i] += alpha * n.Data[i]
	}
}

// SubInPlace subtracts n from m element-wise.
func (m *Dense) SubInPlace(n *Dense) {
	if m.Rows != n.Rows || m.Cols != n.Cols {
		panic("cmat: SubInPlace dimension mismatch")
	}
	for i := range m.Data {
		m.Data[i] -= n.Data[i]
	}
}

// Sub returns m − n as a new matrix.
func (m *Dense) Sub(n *Dense) *Dense {
	if m.Rows != n.Rows || m.Cols != n.Cols {
		panic("cmat: Sub dimension mismatch")
	}
	out := NewDense(m.Rows, m.Cols)
	for i := range m.Data {
		out.Data[i] = m.Data[i] - n.Data[i]
	}
	return out
}

// Scale returns alpha*m as a new matrix.
func (m *Dense) Scale(alpha complex128) *Dense {
	out := NewDense(m.Rows, m.Cols)
	for i := range m.Data {
		out.Data[i] = alpha * m.Data[i]
	}
	return out
}

// ScaleInPlace multiplies every element of m by alpha.
func (m *Dense) ScaleInPlace(alpha complex128) {
	for i := range m.Data {
		m.Data[i] *= alpha
	}
}

// Transpose returns mᵀ as a new matrix.
func (m *Dense) Transpose() *Dense {
	out := NewDense(m.Cols, m.Rows)
	for i := 0; i < m.Rows; i++ {
		for j := 0; j < m.Cols; j++ {
			out.Data[j*m.Rows+i] = m.Data[i*m.Cols+j]
		}
	}
	return out
}

// ConjTranspose returns the Hermitian adjoint m^H as a new matrix.
func (m *Dense) ConjTranspose() *Dense {
	out := NewDense(m.Cols, m.Rows)
	for i := 0; i < m.Rows; i++ {
		for j := 0; j < m.Cols; j++ {
			out.Data[j*m.Rows+i] = cmplx.Conj(m.Data[i*m.Cols+j])
		}
	}
	return out
}

// ConjTransposeInto writes m^H into dst, which must have shape
// m.Cols × m.Rows and must not alias m.
func (m *Dense) ConjTransposeInto(dst *Dense) {
	if dst.Rows != m.Cols || dst.Cols != m.Rows {
		panic("cmat: ConjTransposeInto output shape mismatch")
	}
	for i := 0; i < m.Rows; i++ {
		for j := 0; j < m.Cols; j++ {
			dst.Data[j*m.Rows+i] = cmplx.Conj(m.Data[i*m.Cols+j])
		}
	}
}

// IsHermitian reports whether m equals its conjugate transpose within tol.
func (m *Dense) IsHermitian(tol float64) bool {
	if m.Rows != m.Cols {
		return false
	}
	for i := 0; i < m.Rows; i++ {
		for j := i; j < m.Cols; j++ {
			if cmplx.Abs(m.Data[i*m.Cols+j]-cmplx.Conj(m.Data[j*m.Cols+i])) > tol {
				return false
			}
		}
	}
	return true
}

// Trace returns the sum of diagonal elements. Panics if m is not square.
func (m *Dense) Trace() complex128 {
	if m.Rows != m.Cols {
		panic("cmat: Trace of non-square matrix")
	}
	var t complex128
	for i := 0; i < m.Rows; i++ {
		t += m.Data[i*m.Cols+i]
	}
	return t
}

// Mul returns m·n as a new matrix. The inner loops are ordered i-k-j so the
// innermost traversal is unit-stride on both the output row and the row of n.
func (m *Dense) Mul(n *Dense) *Dense {
	out := NewDense(m.Rows, n.Cols)
	m.MulInto(out, n)
	return out
}

// MulInto computes out = m·n. out must be preallocated with shape
// m.Rows × n.Cols; it is overwritten. Large dense products run through the
// cache-blocked engine of gemm.go, which overwrites directly instead of
// zeroing first.
func (m *Dense) MulInto(out, n *Dense) {
	if m.Cols != n.Rows {
		panic(fmt.Sprintf("cmat: Mul dimension mismatch %d×%d · %d×%d", m.Rows, m.Cols, n.Rows, n.Cols))
	}
	if out.Rows != m.Rows || out.Cols != n.Cols {
		panic("cmat: MulInto output shape mismatch")
	}
	m.gemm(out, n, false)
	Counter.AddGEMM(m.Rows, m.Cols, n.Cols)
}

// MulAddInto computes out += m·n without zeroing out first. Small or
// sparse-ish products take the naive i-k-j loop; large dense ones the
// cache-blocked engine (see gemm.go for the crossover).
func (m *Dense) MulAddInto(out, n *Dense) {
	if m.Cols != n.Rows {
		panic(fmt.Sprintf("cmat: Mul dimension mismatch %d×%d · %d×%d", m.Rows, m.Cols, n.Rows, n.Cols))
	}
	if out.Rows != m.Rows || out.Cols != n.Cols {
		panic("cmat: MulAddInto output shape mismatch")
	}
	m.gemm(out, n, true)
	Counter.AddGEMM(m.Rows, m.Cols, n.Cols)
}

// MulHerm returns m·n^H as a new matrix without materializing n^H.
func (m *Dense) MulHerm(n *Dense) *Dense {
	if m.Cols != n.Cols {
		panic("cmat: MulHerm dimension mismatch")
	}
	out := NewDense(m.Rows, n.Rows)
	R, K, C := m.Rows, m.Cols, n.Rows
	for i := 0; i < R; i++ {
		mrow := m.Data[i*K : (i+1)*K]
		orow := out.Data[i*C : (i+1)*C]
		for j := 0; j < C; j++ {
			nrow := n.Data[j*K : (j+1)*K]
			var s complex128
			for k := 0; k < K; k++ {
				s += mrow[k] * cmplx.Conj(nrow[k])
			}
			orow[j] = s
		}
	}
	Counter.AddGEMM(R, K, C)
	return out
}

// Submatrix copies rows [r0,r1) and columns [c0,c1) into a new matrix.
func (m *Dense) Submatrix(r0, r1, c0, c1 int) *Dense {
	if r0 < 0 || c0 < 0 || r1 > m.Rows || c1 > m.Cols || r0 > r1 || c0 > c1 {
		panic("cmat: Submatrix bounds out of range")
	}
	out := NewDense(r1-r0, c1-c0)
	for i := r0; i < r1; i++ {
		copy(out.Data[(i-r0)*out.Cols:(i-r0+1)*out.Cols], m.Data[i*m.Cols+c0:i*m.Cols+c1])
	}
	return out
}

// SetSubmatrix writes src into m starting at (r0, c0).
func (m *Dense) SetSubmatrix(r0, c0 int, src *Dense) {
	if r0+src.Rows > m.Rows || c0+src.Cols > m.Cols || r0 < 0 || c0 < 0 {
		panic("cmat: SetSubmatrix bounds out of range")
	}
	for i := 0; i < src.Rows; i++ {
		copy(m.Data[(r0+i)*m.Cols+c0:(r0+i)*m.Cols+c0+src.Cols], src.Data[i*src.Cols:(i+1)*src.Cols])
	}
}

// String renders small matrices for debugging.
func (m *Dense) String() string {
	s := fmt.Sprintf("Dense %d×%d", m.Rows, m.Cols)
	if m.Rows*m.Cols <= 64 {
		for i := 0; i < m.Rows; i++ {
			s += "\n"
			for j := 0; j < m.Cols; j++ {
				s += fmt.Sprintf(" %6.3f%+6.3fi", real(m.At(i, j)), imag(m.At(i, j)))
			}
		}
	}
	return s
}

// TransMul returns mᵀ·n without materializing the transpose. Shapes:
// m is K×R, n is K×C, result is R×C. The loop order keeps the inner
// traversal unit-stride on n and the output.
func (m *Dense) TransMul(n *Dense) *Dense {
	if m.Rows != n.Rows {
		panic(fmt.Sprintf("cmat: TransMul dimension mismatch %d×%d ᵀ· %d×%d", m.Rows, m.Cols, n.Rows, n.Cols))
	}
	out := NewDense(m.Cols, n.Cols)
	m.TransMulAddInto(out, n)
	return out
}

// TransMulAddInto computes out += mᵀ·n.
func (m *Dense) TransMulAddInto(out, n *Dense) {
	if m.Rows != n.Rows {
		panic(fmt.Sprintf("cmat: TransMul dimension mismatch %d×%d ᵀ· %d×%d", m.Rows, m.Cols, n.Rows, n.Cols))
	}
	if out.Rows != m.Cols || out.Cols != n.Cols {
		panic("cmat: TransMulAddInto output shape mismatch")
	}
	K, R, C := m.Rows, m.Cols, n.Cols
	for k := 0; k < K; k++ {
		mrow := m.Data[k*R : (k+1)*R]
		nrow := n.Data[k*C : (k+1)*C]
		for i := 0; i < R; i++ {
			a := mrow[i]
			if a == 0 {
				continue
			}
			orow := out.Data[i*C : (i+1)*C]
			for j := 0; j < C; j++ {
				orow[j] += a * nrow[j]
			}
		}
	}
	Counter.AddGEMM(R, K, C)
}

// TraceMul returns tr(m·n) in O(R·C) without forming the product.
func (m *Dense) TraceMul(n *Dense) complex128 {
	if m.Cols != n.Rows || m.Rows != n.Cols {
		panic("cmat: TraceMul needs m R×C and n C×R")
	}
	var t complex128
	for i := 0; i < m.Rows; i++ {
		for k := 0; k < m.Cols; k++ {
			t += m.Data[i*m.Cols+k] * n.Data[k*n.Cols+i]
		}
	}
	Counter.AddFlops(uint64(8 * m.Rows * m.Cols))
	return t
}
