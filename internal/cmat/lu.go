package cmat

import (
	"errors"
	"math/cmplx"
)

// ErrSingular is returned when a factorization encounters a (numerically)
// singular matrix.
var ErrSingular = errors.New("cmat: matrix is singular to working precision")

// LU holds an LU factorization with partial pivoting: P·A = L·U, where L is
// unit lower triangular and U upper triangular, both packed into lu.
type LU struct {
	lu   *Dense
	piv  []int
	sign int
}

// FactorLU computes the LU factorization of a (which is not modified).
func FactorLU(a *Dense) (*LU, error) {
	if a.Rows != a.Cols {
		return nil, errors.New("cmat: LU of non-square matrix")
	}
	n := a.Rows
	lu := a.Clone()
	piv := make([]int, n)
	for i := range piv {
		piv[i] = i
	}
	sign := 1
	d := lu.Data
	for k := 0; k < n; k++ {
		// Partial pivoting: find the largest magnitude in column k.
		p := k
		pmax := cmplx.Abs(d[k*n+k])
		for i := k + 1; i < n; i++ {
			if m := cmplx.Abs(d[i*n+k]); m > pmax {
				pmax, p = m, i
			}
		}
		if pmax == 0 {
			return nil, ErrSingular
		}
		if p != k {
			for j := 0; j < n; j++ {
				d[k*n+j], d[p*n+j] = d[p*n+j], d[k*n+j]
			}
			piv[k], piv[p] = piv[p], piv[k]
			sign = -sign
		}
		pivVal := d[k*n+k]
		for i := k + 1; i < n; i++ {
			m := d[i*n+k] / pivVal
			d[i*n+k] = m
			if m == 0 {
				continue
			}
			for j := k + 1; j < n; j++ {
				d[i*n+j] -= m * d[k*n+j]
			}
		}
	}
	Counter.AddFlops(uint64(8 * n * n * n / 3))
	return &LU{lu: lu, piv: piv, sign: sign}, nil
}

// Solve returns X such that A·X = B, where A is the factored matrix.
func (f *LU) Solve(b *Dense) *Dense {
	n := f.lu.Rows
	if b.Rows != n {
		panic("cmat: LU.Solve dimension mismatch")
	}
	nc := b.Cols
	x := NewDense(n, nc)
	// Apply the row permutation to B.
	for i := 0; i < n; i++ {
		copy(x.Data[i*nc:(i+1)*nc], b.Data[f.piv[i]*nc:(f.piv[i]+1)*nc])
	}
	d := f.lu.Data
	// Forward substitution with unit-diagonal L.
	for i := 1; i < n; i++ {
		xi := x.Data[i*nc : (i+1)*nc]
		for k := 0; k < i; k++ {
			m := d[i*n+k]
			if m == 0 {
				continue
			}
			xk := x.Data[k*nc : (k+1)*nc]
			for j := 0; j < nc; j++ {
				xi[j] -= m * xk[j]
			}
		}
	}
	// Back substitution with U.
	for i := n - 1; i >= 0; i-- {
		xi := x.Data[i*nc : (i+1)*nc]
		for k := i + 1; k < n; k++ {
			m := d[i*n+k]
			if m == 0 {
				continue
			}
			xk := x.Data[k*nc : (k+1)*nc]
			for j := 0; j < nc; j++ {
				xi[j] -= m * xk[j]
			}
		}
		inv := 1 / d[i*n+i]
		for j := 0; j < nc; j++ {
			xi[j] *= inv
		}
	}
	Counter.AddFlops(uint64(8 * n * n * nc))
	return x
}

// Det returns the determinant of the factored matrix.
func (f *LU) Det() complex128 {
	n := f.lu.Rows
	det := complex(float64(f.sign), 0)
	for i := 0; i < n; i++ {
		det *= f.lu.Data[i*n+i]
	}
	return det
}

// Inverse returns A⁻¹ for a square matrix A using LU with partial pivoting.
func Inverse(a *Dense) (*Dense, error) {
	f, err := FactorLU(a)
	if err != nil {
		return nil, err
	}
	return f.Solve(Identity(a.Rows)), nil
}

// Solve returns X with A·X = B.
func Solve(a, b *Dense) (*Dense, error) {
	f, err := FactorLU(a)
	if err != nil {
		return nil, err
	}
	return f.Solve(b), nil
}
