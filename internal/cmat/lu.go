package cmat

import (
	"errors"
	"math/cmplx"
)

// ErrSingular is returned when a factorization encounters a (numerically)
// singular matrix.
var ErrSingular = errors.New("cmat: matrix is singular to working precision")

// LU holds an LU factorization with partial pivoting: P·A = L·U, where L is
// unit lower triangular and U upper triangular, both packed into lu.
type LU struct {
	lu   *Dense
	piv  []int
	sign int
}

// FactorLU computes the LU factorization of a (which is not modified). The
// factorization scratch comes from the workspace arena; call Release when the
// factor is no longer needed to return it (otherwise the GC collects it).
func FactorLU(a *Dense) (*LU, error) {
	f := new(LU)
	if err := factorLUInto(f, a); err != nil {
		return nil, err
	}
	return f, nil
}

// factorLUInto factors a into a caller-provided (possibly stack-allocated)
// LU value, so steady-state callers pay no header allocation.
func factorLUInto(f *LU, a *Dense) error {
	if a.Rows != a.Cols {
		return errors.New("cmat: LU of non-square matrix")
	}
	n := a.Rows
	lu := getDenseNoZero(n, n)
	lu.CopyFrom(a)
	piv := getInts(n)
	for i := range piv {
		piv[i] = i
	}
	sign := 1
	d := lu.Data
	for k := 0; k < n; k++ {
		// Partial pivoting: find the largest magnitude in column k.
		p := k
		pmax := cmplx.Abs(d[k*n+k])
		for i := k + 1; i < n; i++ {
			if m := cmplx.Abs(d[i*n+k]); m > pmax {
				pmax, p = m, i
			}
		}
		if pmax == 0 {
			PutDense(lu)
			putInts(piv)
			return ErrSingular
		}
		if p != k {
			for j := 0; j < n; j++ {
				d[k*n+j], d[p*n+j] = d[p*n+j], d[k*n+j]
			}
			piv[k], piv[p] = piv[p], piv[k]
			sign = -sign
		}
		pivVal := d[k*n+k]
		for i := k + 1; i < n; i++ {
			m := d[i*n+k] / pivVal
			d[i*n+k] = m
			if m == 0 {
				continue
			}
			for j := k + 1; j < n; j++ {
				d[i*n+j] -= m * d[k*n+j]
			}
		}
	}
	Counter.AddFlops(uint64(8 * n * n * n / 3))
	f.lu, f.piv, f.sign = lu, piv, sign
	return nil
}

// Release returns the factorization scratch to the workspace arena. The
// factor must not be used afterwards.
func (f *LU) Release() {
	PutDense(f.lu)
	putInts(f.piv)
	f.lu, f.piv = nil, nil
}

// Solve returns X such that A·X = B, where A is the factored matrix.
func (f *LU) Solve(b *Dense) *Dense {
	x := NewDense(f.lu.Rows, b.Cols)
	f.SolveInto(x, b)
	return x
}

// SolveInto computes X with A·X = B into x (which must be b-shaped and must
// not alias b).
func (f *LU) SolveInto(x, b *Dense) {
	n := f.lu.Rows
	if b.Rows != n {
		panic("cmat: LU.Solve dimension mismatch")
	}
	if x.Rows != b.Rows || x.Cols != b.Cols {
		panic("cmat: LU.SolveInto output shape mismatch")
	}
	nc := b.Cols
	// Apply the row permutation to B.
	for i := 0; i < n; i++ {
		copy(x.Data[i*nc:(i+1)*nc], b.Data[f.piv[i]*nc:(f.piv[i]+1)*nc])
	}
	f.substitute(x)
}

// substitute runs the forward and back substitution on the (already
// permuted) right-hand side x in place.
func (f *LU) substitute(x *Dense) {
	n := f.lu.Rows
	nc := x.Cols
	d := f.lu.Data
	// Forward substitution with unit-diagonal L.
	for i := 1; i < n; i++ {
		xi := x.Data[i*nc : (i+1)*nc]
		for k := 0; k < i; k++ {
			m := d[i*n+k]
			if m == 0 {
				continue
			}
			xk := x.Data[k*nc : (k+1)*nc]
			for j := 0; j < nc; j++ {
				xi[j] -= m * xk[j]
			}
		}
	}
	// Back substitution with U.
	for i := n - 1; i >= 0; i-- {
		xi := x.Data[i*nc : (i+1)*nc]
		for k := i + 1; k < n; k++ {
			m := d[i*n+k]
			if m == 0 {
				continue
			}
			xk := x.Data[k*nc : (k+1)*nc]
			for j := 0; j < nc; j++ {
				xi[j] -= m * xk[j]
			}
		}
		inv := 1 / d[i*n+i]
		for j := 0; j < nc; j++ {
			xi[j] *= inv
		}
	}
	Counter.AddFlops(uint64(8 * n * n * nc))
}

// Det returns the determinant of the factored matrix.
func (f *LU) Det() complex128 {
	n := f.lu.Rows
	det := complex(float64(f.sign), 0)
	for i := 0; i < n; i++ {
		det *= f.lu.Data[i*n+i]
	}
	return det
}

// Inverse returns A⁻¹ for a square matrix A using LU with partial pivoting.
func Inverse(a *Dense) (*Dense, error) {
	dst := NewDense(a.Rows, a.Cols)
	if err := InverseInto(dst, a); err != nil {
		return nil, err
	}
	return dst, nil
}

// InverseInto computes dst = a⁻¹ with all factorization scratch drawn from
// (and returned to) the workspace arena: the steady-state allocation count is
// zero. dst must be a-shaped and must not alias a.
func InverseInto(dst, a *Dense) error {
	if dst.Rows != a.Rows || dst.Cols != a.Cols {
		panic("cmat: InverseInto output shape mismatch")
	}
	var f LU // stack header; the scratch behind it is arena-backed
	if err := factorLUInto(&f, a); err != nil {
		return err
	}
	// The permuted identity right-hand side: row i of X starts as row piv[i]
	// of I, i.e. a single 1 in column piv[i].
	n := a.Rows
	dst.Zero()
	for i := 0; i < n; i++ {
		dst.Data[i*n+f.piv[i]] = 1
	}
	f.substitute(dst)
	f.Release()
	return nil
}

// Solve returns X with A·X = B.
func Solve(a, b *Dense) (*Dense, error) {
	f, err := FactorLU(a)
	if err != nil {
		return nil, err
	}
	return f.Solve(b), nil
}
