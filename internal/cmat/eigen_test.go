package cmat

import (
	"math"
	"math/cmplx"
	"math/rand"
	"sort"
	"testing"
	"testing/quick"
)

func TestEigenKnown2x2(t *testing.T) {
	// [[2, i], [-i, 2]] has eigenvalues 1 and 3.
	a := DenseFromSlice(2, 2, []complex128{2, 1i, -1i, 2})
	ev, err := EigenHermitian(a, 0)
	if err != nil {
		t.Fatal(err)
	}
	if math.Abs(ev[0]-1) > 1e-10 || math.Abs(ev[1]-3) > 1e-10 {
		t.Fatalf("eigenvalues %v, want [1 3]", ev)
	}
}

func TestEigenDiagonal(t *testing.T) {
	a := NewDense(4, 4)
	vals := []float64{-2, 0.5, 3, 7}
	for i, v := range vals {
		a.Set(i, i, complex(v, 0))
	}
	ev, err := EigenHermitian(a, 0)
	if err != nil {
		t.Fatal(err)
	}
	sort.Float64s(vals)
	for i := range vals {
		if math.Abs(ev[i]-vals[i]) > 1e-12 {
			t.Fatalf("eigenvalues %v, want %v", ev, vals)
		}
	}
}

func TestEigenCharacteristicProperty(t *testing.T) {
	// Every computed eigenvalue must be a root of det(A − λI), and the
	// trace/eigenvalue-sum identity must hold.
	f := func(seed int64) bool {
		rng := rand.New(rand.NewSource(seed))
		n := 2 + rng.Intn(6)
		a := RandomHermitian(rng, n, 0)
		ev, err := EigenHermitian(a, 0)
		if err != nil {
			return false
		}
		var sum float64
		for _, v := range ev {
			sum += v
		}
		if math.Abs(sum-real(a.Trace())) > 1e-8*(1+math.Abs(sum)) {
			return false
		}
		scale := math.Pow(1+a.MaxAbs(), float64(n))
		for _, lambda := range ev {
			shifted := a.Clone()
			for i := 0; i < n; i++ {
				shifted.Set(i, i, shifted.At(i, i)-complex(lambda, 0))
			}
			f, err := FactorLU(shifted)
			if err != nil {
				continue // exactly singular: perfect root
			}
			if cmplx.Abs(f.Det()) > 1e-6*scale {
				return false
			}
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 25}); err != nil {
		t.Fatal(err)
	}
}

func TestEigenRejectsNonHermitian(t *testing.T) {
	a := DenseFromSlice(2, 2, []complex128{1, 2, 3, 4})
	if _, err := EigenHermitian(a, 0); err == nil {
		t.Fatal("non-Hermitian input must be rejected")
	}
	if _, err := EigenHermitian(NewDense(2, 3), 0); err == nil {
		t.Fatal("non-square input must be rejected")
	}
}

func TestSpectralBounds(t *testing.T) {
	rng := rand.New(rand.NewSource(9))
	a := RandomHermitian(rng, 6, 0)
	lo, hi, err := SpectralBounds(a, 0)
	if err != nil {
		t.Fatal(err)
	}
	if lo > hi {
		t.Fatalf("bounds inverted: %g > %g", lo, hi)
	}
	// Rayleigh quotients of random vectors must lie inside [lo, hi].
	for trial := 0; trial < 10; trial++ {
		v := RandomDense(rng, 6, 1)
		num := v.ConjTranspose().Mul(a).Mul(v).At(0, 0)
		den := v.ConjTranspose().Mul(v).At(0, 0)
		r := real(num) / real(den)
		if r < lo-1e-8 || r > hi+1e-8 {
			t.Fatalf("Rayleigh quotient %g outside [%g, %g]", r, lo, hi)
		}
	}
}
