package cmat

import (
	"fmt"
	"math/cmplx"
)

// CSR is a complex sparse matrix in compressed sparse row format.
type CSR struct {
	Rows, Cols int
	RowPtr     []int // length Rows+1
	ColIdx     []int // length NNZ
	Val        []complex128
}

// NewCSR allocates an empty CSR matrix with the given shape.
func NewCSR(r, c int) *CSR {
	return &CSR{Rows: r, Cols: c, RowPtr: make([]int, r+1)}
}

// NNZ returns the number of stored entries.
func (s *CSR) NNZ() int { return len(s.Val) }

// Density returns NNZ divided by the full element count.
func (s *CSR) Density() float64 {
	if s.Rows*s.Cols == 0 {
		return 0
	}
	return float64(s.NNZ()) / float64(s.Rows*s.Cols)
}

// CSRFromDense converts m to CSR, dropping entries with magnitude ≤ tol.
func CSRFromDense(m *Dense, tol float64) *CSR {
	s := NewCSR(m.Rows, m.Cols)
	for i := 0; i < m.Rows; i++ {
		for j := 0; j < m.Cols; j++ {
			v := m.Data[i*m.Cols+j]
			if cmplx.Abs(v) > tol {
				s.ColIdx = append(s.ColIdx, j)
				s.Val = append(s.Val, v)
			}
		}
		s.RowPtr[i+1] = len(s.Val)
	}
	return s
}

// ToDense expands s into a dense matrix.
func (s *CSR) ToDense() *Dense {
	m := NewDense(s.Rows, s.Cols)
	for i := 0; i < s.Rows; i++ {
		for p := s.RowPtr[i]; p < s.RowPtr[i+1]; p++ {
			m.Data[i*s.Cols+s.ColIdx[p]] = s.Val[p]
		}
	}
	return m
}

// Clone returns a deep copy of s.
func (s *CSR) Clone() *CSR {
	out := &CSR{Rows: s.Rows, Cols: s.Cols,
		RowPtr: append([]int(nil), s.RowPtr...),
		ColIdx: append([]int(nil), s.ColIdx...),
		Val:    append([]complex128(nil), s.Val...)}
	return out
}

// Transpose returns sᵀ in CSR form (equivalently, s viewed as CSC).
func (s *CSR) Transpose() *CSR {
	t := NewCSR(s.Cols, s.Rows)
	t.ColIdx = make([]int, s.NNZ())
	t.Val = make([]complex128, s.NNZ())
	// Count entries per column of s.
	for _, j := range s.ColIdx {
		t.RowPtr[j+1]++
	}
	for i := 0; i < t.Rows; i++ {
		t.RowPtr[i+1] += t.RowPtr[i]
	}
	next := append([]int(nil), t.RowPtr...)
	for i := 0; i < s.Rows; i++ {
		for p := s.RowPtr[i]; p < s.RowPtr[i+1]; p++ {
			j := s.ColIdx[p]
			q := next[j]
			next[j]++
			t.ColIdx[q] = i
			t.Val[q] = s.Val[p]
		}
	}
	return t
}

// MulDense computes s·m with a dense result (the "CSRMM" building block:
// sparse × dense → dense).
func (s *CSR) MulDense(m *Dense) *Dense {
	if s.Cols != m.Rows {
		panic(fmt.Sprintf("cmat: CSR.MulDense dimension mismatch %d×%d · %d×%d", s.Rows, s.Cols, m.Rows, m.Cols))
	}
	out := NewDense(s.Rows, m.Cols)
	nc := m.Cols
	for i := 0; i < s.Rows; i++ {
		orow := out.Data[i*nc : (i+1)*nc]
		for p := s.RowPtr[i]; p < s.RowPtr[i+1]; p++ {
			a := s.Val[p]
			mrow := m.Data[s.ColIdx[p]*nc : (s.ColIdx[p]+1)*nc]
			for j := 0; j < nc; j++ {
				orow[j] += a * mrow[j]
			}
		}
	}
	Counter.AddFlops(uint64(8 * s.NNZ() * nc))
	return out
}

// DenseMulCSR computes m·s with a dense result (dense × sparse → dense).
// It walks s row-by-row, scattering into the output columns, which keeps
// all accesses unit-stride on m and out rows.
func DenseMulCSR(m *Dense, s *CSR) *Dense {
	if m.Cols != s.Rows {
		panic(fmt.Sprintf("cmat: DenseMulCSR dimension mismatch %d×%d · %d×%d", m.Rows, m.Cols, s.Rows, s.Cols))
	}
	out := NewDense(m.Rows, s.Cols)
	for i := 0; i < m.Rows; i++ {
		mrow := m.Data[i*m.Cols : (i+1)*m.Cols]
		orow := out.Data[i*s.Cols : (i+1)*s.Cols]
		for k := 0; k < s.Rows; k++ {
			a := mrow[k]
			if a == 0 {
				continue
			}
			for p := s.RowPtr[k]; p < s.RowPtr[k+1]; p++ {
				orow[s.ColIdx[p]] += a * s.Val[p]
			}
		}
	}
	Counter.AddFlops(uint64(8 * m.Rows * s.NNZ()))
	return out
}

// MulCSR computes s·t with a sparse result (the "CSRGEMM" building block).
// It uses the classical Gustavson row-merge algorithm with a dense
// accumulator per output row.
func (s *CSR) MulCSR(t *CSR) *CSR {
	if s.Cols != t.Rows {
		panic(fmt.Sprintf("cmat: CSR.MulCSR dimension mismatch %d×%d · %d×%d", s.Rows, s.Cols, t.Rows, t.Cols))
	}
	out := NewCSR(s.Rows, t.Cols)
	acc := make([]complex128, t.Cols)
	marker := make([]int, t.Cols)
	for i := range marker {
		marker[i] = -1
	}
	var flops uint64
	for i := 0; i < s.Rows; i++ {
		var cols []int
		for p := s.RowPtr[i]; p < s.RowPtr[i+1]; p++ {
			a := s.Val[p]
			k := s.ColIdx[p]
			for q := t.RowPtr[k]; q < t.RowPtr[k+1]; q++ {
				j := t.ColIdx[q]
				if marker[j] != i {
					marker[j] = i
					acc[j] = 0
					cols = append(cols, j)
				}
				acc[j] += a * t.Val[q]
				flops += 8
			}
		}
		// Deterministic ordering of the output row.
		insertionSort(cols)
		for _, j := range cols {
			if acc[j] != 0 {
				out.ColIdx = append(out.ColIdx, j)
				out.Val = append(out.Val, acc[j])
			}
		}
		out.RowPtr[i+1] = len(out.Val)
	}
	Counter.AddFlops(flops)
	return out
}

// Add returns s + t as a new CSR matrix.
func (s *CSR) Add(t *CSR) *CSR {
	if s.Rows != t.Rows || s.Cols != t.Cols {
		panic("cmat: CSR.Add dimension mismatch")
	}
	out := NewCSR(s.Rows, s.Cols)
	for i := 0; i < s.Rows; i++ {
		p, q := s.RowPtr[i], t.RowPtr[i]
		for p < s.RowPtr[i+1] || q < t.RowPtr[i+1] {
			switch {
			case q >= t.RowPtr[i+1] || (p < s.RowPtr[i+1] && s.ColIdx[p] < t.ColIdx[q]):
				out.ColIdx = append(out.ColIdx, s.ColIdx[p])
				out.Val = append(out.Val, s.Val[p])
				p++
			case p >= s.RowPtr[i+1] || t.ColIdx[q] < s.ColIdx[p]:
				out.ColIdx = append(out.ColIdx, t.ColIdx[q])
				out.Val = append(out.Val, t.Val[q])
				q++
			default:
				v := s.Val[p] + t.Val[q]
				if v != 0 {
					out.ColIdx = append(out.ColIdx, s.ColIdx[p])
					out.Val = append(out.Val, v)
				}
				p++
				q++
			}
		}
		out.RowPtr[i+1] = len(out.Val)
	}
	return out
}

// Scale returns alpha·s as a new CSR matrix.
func (s *CSR) Scale(alpha complex128) *CSR {
	out := s.Clone()
	for i := range out.Val {
		out.Val[i] *= alpha
	}
	return out
}

func insertionSort(a []int) {
	for i := 1; i < len(a); i++ {
		for j := i; j > 0 && a[j] < a[j-1]; j-- {
			a[j], a[j-1] = a[j-1], a[j]
		}
	}
}

// TripleProductStrategy selects how the RGF triple product
// F[n]·gR[n+1]·E[n+1] (two sparse Hamiltonian blocks around a dense Green's
// function block) is evaluated. These are the three approaches compared in
// Table 6 of the paper.
type TripleProductStrategy int

const (
	// DenseMM converts both sparse operands to dense and performs two dense
	// multiplications.
	DenseMM TripleProductStrategy = iota
	// CSRMM multiplies sparse×dense, then dense×sparse, keeping the
	// intermediate dense. This was the fastest variant in the paper.
	CSRMM
	// CSRGEMM keeps everything sparse: the dense middle operand is
	// sparsified and two sparse-sparse products are performed.
	CSRGEMM
)

// String returns the paper's name for the strategy.
func (s TripleProductStrategy) String() string {
	switch s {
	case DenseMM:
		return "Dense-MM"
	case CSRMM:
		return "CSRMM"
	case CSRGEMM:
		return "CSRGEMM"
	}
	return fmt.Sprintf("TripleProductStrategy(%d)", int(s))
}

// TripleProduct computes F·g·E using the selected strategy, returning a
// dense result. F and E are sparse block matrices of the Hamiltonian; g is
// a dense Green's function block.
func TripleProduct(strategy TripleProductStrategy, f *CSR, g *Dense, e *CSR) *Dense {
	switch strategy {
	case DenseMM:
		fd := f.ToDense()
		ed := e.ToDense()
		return fd.Mul(g).Mul(ed)
	case CSRMM:
		fg := f.MulDense(g)
		return DenseMulCSR(fg, e)
	case CSRGEMM:
		gs := CSRFromDense(g, 0)
		return f.MulCSR(gs).MulCSR(e).ToDense()
	default:
		panic("cmat: unknown TripleProductStrategy")
	}
}
