package cmat

import (
	"math/rand"
	"testing"
)

// restoreBlocking resets the installed configuration after a test that
// swaps it.
func restoreBlocking(t *testing.T) {
	t.Helper()
	saved := CurrentBlocking()
	t.Cleanup(func() {
		if err := SetBlocking(saved); err != nil {
			t.Fatal(err)
		}
	})
}

// TestDefaultBlockingEqualsConstants pins DefaultBlocking to the
// compile-time constants, so a constant edit cannot silently diverge from
// the schedule defaults.
func TestDefaultBlockingEqualsConstants(t *testing.T) {
	b := DefaultBlocking()
	if b.KC != gemmKC || b.NC != gemmNC {
		t.Fatalf("DefaultBlocking panels (%d, %d) != constants (%d, %d)", b.KC, b.NC, gemmKC, gemmNC)
	}
	if b.MinWork != blockedMinWork {
		t.Fatalf("DefaultBlocking.MinWork %d != constant %d", b.MinWork, blockedMinWork)
	}
	if b.MinDensity != blockedMinDensity {
		t.Fatalf("DefaultBlocking.MinDensity %g != constant %g", b.MinDensity, blockedMinDensity)
	}
	if b.BatchWork != batchSerialWork {
		t.Fatalf("DefaultBlocking.BatchWork %d != constant %d", b.BatchWork, batchSerialWork)
	}
	if err := b.Validate(); err != nil {
		t.Fatal(err)
	}
}

// TestDefaultConfigMatchesConstantPathBitwise pins byte-for-byte result
// equality between the configurable path under DefaultBlocking and the
// kernel invoked with the compile-time constants directly, across shapes
// spanning panel boundaries. The two must be the same summation order, so
// equality is exact, not within tolerance.
func TestDefaultConfigMatchesConstantPathBitwise(t *testing.T) {
	restoreBlocking(t)
	if err := SetBlocking(DefaultBlocking()); err != nil {
		t.Fatal(err)
	}
	rng := rand.New(rand.NewSource(99))
	shapes := [][3]int{
		{33, 33, 33}, {64, 64, 64}, {65, gemmKC + 3, gemmNC + 5},
		{128, 2*gemmKC + 1, 96}, {256, 256, 256},
	}
	for _, s := range shapes {
		r, k, c := s[0], s[1], s[2]
		m := RandomDense(rng, r, k)
		n := RandomDense(rng, k, c)
		viaConfig := NewDense(r, c)
		m.MulInto(viaConfig, n) // dispatches through the installed Blocking
		viaConsts := NewDense(r, c)
		m.mulBlocked(viaConsts, n, false, gemmKC, gemmNC)
		for i := range viaConfig.Data {
			if viaConfig.Data[i] != viaConsts.Data[i] {
				t.Fatalf("%d×%d·%d×%d: element %d differs: config %v, constants %v",
					r, k, k, c, i, viaConfig.Data[i], viaConsts.Data[i])
			}
		}
	}
}

// TestNonDefaultBlockingMatchesOracle checks every candidate panel
// geometry the tuner may install against the naive oracle (within
// float tolerance — different panel sizes reorder the summation).
func TestNonDefaultBlockingMatchesOracle(t *testing.T) {
	rng := rand.New(rand.NewSource(17))
	const size = 100
	m := RandomDense(rng, size, size)
	n := RandomDense(rng, size, size)
	want := NewDense(size, size)
	m.mulAddNaive(want, n)
	for _, b := range []Blocking{
		{KC: 64, NC: 32, MinWork: 1, MinDensity: 0, BatchWork: 1},
		{KC: 128, NC: 48, MinWork: 1, MinDensity: 0, BatchWork: 1},
		{KC: 256, NC: 96, MinWork: 1, MinDensity: 0, BatchWork: 1},
		{KC: 384, NC: 128, MinWork: 1, MinDensity: 0, BatchWork: 1},
		{KC: 7, NC: 5, MinWork: 1, MinDensity: 0, BatchWork: 1},
	} {
		got := NewDense(size, size)
		m.MulBlockedInto(got, n, false, b)
		if !got.Equalish(want, 1e-9*size) {
			t.Fatalf("blocking %+v: max diff %g", b, got.MaxAbsDiff(want))
		}
	}
}

// TestSetBlockingRejectsInvalid checks validation and that a rejected
// configuration leaves the installed one untouched.
func TestSetBlockingRejectsInvalid(t *testing.T) {
	restoreBlocking(t)
	before := CurrentBlocking()
	for _, b := range []Blocking{
		{KC: 0, NC: 64, MinWork: 1, MinDensity: 0.2, BatchWork: 1},
		{KC: 192, NC: 2, MinWork: 1, MinDensity: 0.2, BatchWork: 1},
		{KC: 192, NC: 64, MinWork: 0, MinDensity: 0.2, BatchWork: 1},
		{KC: 192, NC: 64, MinWork: 1, MinDensity: 1.5, BatchWork: 1},
		{KC: 192, NC: 64, MinWork: 1, MinDensity: 0.2, BatchWork: -1},
	} {
		if err := SetBlocking(b); err == nil {
			t.Fatalf("SetBlocking(%+v) accepted an invalid configuration", b)
		}
	}
	if CurrentBlocking() != before {
		t.Fatal("rejected SetBlocking changed the installed configuration")
	}
}

// TestInstalledBlockingDrivesDispatch checks the dispatch actually reads
// the installed thresholds: an absurdly high MinWork forces every product
// onto the naive path, and results stay correct either way.
func TestInstalledBlockingDrivesDispatch(t *testing.T) {
	restoreBlocking(t)
	rng := rand.New(rand.NewSource(23))
	const size = 64
	m := RandomDense(rng, size, size)
	n := RandomDense(rng, size, size)
	want := NewDense(size, size)
	m.mulAddNaive(want, n)

	forceNaive := DefaultBlocking()
	forceNaive.MinWork = 1 << 30
	if err := SetBlocking(forceNaive); err != nil {
		t.Fatal(err)
	}
	got := NewDense(size, size)
	m.MulInto(got, n)
	for i := range got.Data {
		if got.Data[i] != want.Data[i] {
			t.Fatal("forced-naive dispatch did not take the naive path bitwise")
		}
	}

	forceBlocked := DefaultBlocking()
	forceBlocked.MinWork = 1
	forceBlocked.MinDensity = 0
	if err := SetBlocking(forceBlocked); err != nil {
		t.Fatal(err)
	}
	got2 := NewDense(size, size)
	m.MulInto(got2, n)
	if !got2.Equalish(want, 1e-9*size) {
		t.Fatalf("forced-blocked dispatch wrong: max diff %g", got2.MaxAbsDiff(want))
	}
}

// TestProbeOperandsDeterministic pins the probe generator: same inputs,
// same matrices, and the density knob thins the left operand only.
func TestProbeOperandsDeterministic(t *testing.T) {
	m1, n1, _ := probeOperands(32, 0.3)
	m2, n2, _ := probeOperands(32, 0.3)
	for i := range m1.Data {
		if m1.Data[i] != m2.Data[i] || n1.Data[i] != n2.Data[i] {
			t.Fatal("probe operands differ across identical calls")
		}
	}
	nz := 0
	for _, v := range m1.Data {
		if v != 0 {
			nz++
		}
	}
	frac := float64(nz) / float64(len(m1.Data))
	if frac < 0.15 || frac > 0.45 {
		t.Fatalf("probe density %.2f far from requested 0.30", frac)
	}
	for _, v := range n1.Data {
		if v == 0 {
			t.Fatal("right probe operand has zero entries")
		}
	}
}

// TestGEMMProbesAgree sanity-checks the probe entries: they run, take
// nonzero time, and the kernels they time produce identical math to the
// dispatching entry points (spot-checked via MulBlockedInto above).
func TestGEMMProbesAgree(t *testing.T) {
	b := DefaultBlocking()
	if GEMMProbe(48, 2, b) <= 0 {
		t.Fatal("GEMMProbe returned non-positive duration")
	}
	if GEMMProbeNaive(48, 2, 0.1) <= 0 {
		t.Fatal("GEMMProbeNaive returned non-positive duration")
	}
	if GEMMProbeBlockedDense(48, 2, 0.1, b) <= 0 {
		t.Fatal("GEMMProbeBlockedDense returned non-positive duration")
	}
	if MulParProbe(64, 1, 2) <= 0 {
		t.Fatal("MulParProbe returned non-positive duration")
	}
}
