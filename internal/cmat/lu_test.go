package cmat

import (
	"math/cmplx"
	"math/rand"
	"testing"
	"testing/quick"
)

func TestInverseIdentityProperty(t *testing.T) {
	// A · A⁻¹ = I for random well-conditioned matrices.
	f := func(seed int64) bool {
		r := rand.New(rand.NewSource(seed))
		n := 1 + r.Intn(10)
		a := RandomDense(r, n, n)
		for i := 0; i < n; i++ { // diagonal dominance for conditioning
			a.Data[i*n+i] += complex(float64(n), 0)
		}
		inv, err := Inverse(a)
		if err != nil {
			return false
		}
		return a.Mul(inv).Equalish(Identity(n), 1e-9) && inv.Mul(a).Equalish(Identity(n), 1e-9)
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 30}); err != nil {
		t.Fatal(err)
	}
}

func TestSolveMatchesMul(t *testing.T) {
	f := func(seed int64) bool {
		r := rand.New(rand.NewSource(seed))
		n, nc := 1+r.Intn(8), 1+r.Intn(5)
		a := RandomDense(r, n, n)
		for i := 0; i < n; i++ {
			a.Data[i*n+i] += complex(float64(n), 0)
		}
		x := RandomDense(r, n, nc)
		b := a.Mul(x)
		got, err := Solve(a, b)
		if err != nil {
			return false
		}
		return got.Equalish(x, 1e-9)
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 30}); err != nil {
		t.Fatal(err)
	}
}

func TestSingularDetected(t *testing.T) {
	a := DenseFromSlice(2, 2, []complex128{1, 2, 2, 4})
	if _, err := FactorLU(a); err != ErrSingular {
		t.Fatalf("err = %v, want ErrSingular", err)
	}
	if _, err := Inverse(NewDense(3, 3)); err == nil {
		t.Fatal("inverse of zero matrix should fail")
	}
}

func TestNonSquareRejected(t *testing.T) {
	if _, err := FactorLU(NewDense(2, 3)); err == nil {
		t.Fatal("LU of non-square matrix should fail")
	}
}

func TestDeterminantKnown(t *testing.T) {
	// det [[1, 2],[3, 4]] = -2; complex case det [[i, 0],[0, i]] = -1.
	f, err := FactorLU(DenseFromSlice(2, 2, []complex128{1, 2, 3, 4}))
	if err != nil {
		t.Fatal(err)
	}
	if d := f.Det(); cmplx.Abs(d-(-2)) > 1e-14 {
		t.Fatalf("det = %v, want -2", d)
	}
	f, err = FactorLU(DenseFromSlice(2, 2, []complex128{1i, 0, 0, 1i}))
	if err != nil {
		t.Fatal(err)
	}
	if d := f.Det(); cmplx.Abs(d-(-1)) > 1e-14 {
		t.Fatalf("det = %v, want -1", d)
	}
}

func TestDetProductProperty(t *testing.T) {
	// det(AB) = det(A)·det(B)
	f := func(seed int64) bool {
		r := rand.New(rand.NewSource(seed))
		n := 1 + r.Intn(6)
		a := RandomDense(r, n, n)
		b := RandomDense(r, n, n)
		for i := 0; i < n; i++ {
			a.Data[i*n+i] += 2
			b.Data[i*n+i] += 2
		}
		fa, err1 := FactorLU(a)
		fb, err2 := FactorLU(b)
		fab, err3 := FactorLU(a.Mul(b))
		if err1 != nil || err2 != nil || err3 != nil {
			return false
		}
		return cmplx.Abs(fab.Det()-fa.Det()*fb.Det()) <= 1e-8*(1+cmplx.Abs(fab.Det()))
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 25}); err != nil {
		t.Fatal(err)
	}
}

func TestPivotingHandlesZeroLeadingDiagonal(t *testing.T) {
	a := DenseFromSlice(2, 2, []complex128{0, 1, 1, 0})
	inv, err := Inverse(a)
	if err != nil {
		t.Fatal(err)
	}
	if !inv.Equalish(a, 1e-14) { // a swap matrix is its own inverse
		t.Fatal("inverse of swap matrix should be itself")
	}
}

func TestInverseOfHermitianIsHermitian(t *testing.T) {
	r := rand.New(rand.NewSource(13))
	h := RandomHermitian(r, 8, 9)
	inv, err := Inverse(h)
	if err != nil {
		t.Fatal(err)
	}
	if !inv.IsHermitian(1e-10) {
		t.Fatal("inverse of a Hermitian matrix must be Hermitian")
	}
}
