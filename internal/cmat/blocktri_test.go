package cmat

import (
	"math/rand"
	"testing"
)

// randomBlockTri builds a Hermitian block-tridiagonal matrix for testing.
func randomBlockTri(rng *rand.Rand, n, bs int, shift float64) *BlockTri {
	bt := NewBlockTri(n, bs)
	for i := 0; i < n; i++ {
		bt.Diag[i] = RandomHermitian(rng, bs, shift)
	}
	for i := 0; i < n-1; i++ {
		bt.Upper[i] = RandomDense(rng, bs, bs)
		bt.Lower[i] = bt.Upper[i].ConjTranspose()
	}
	return bt
}

func TestBlockTriToDenseLayout(t *testing.T) {
	bt := NewBlockTri(3, 2)
	bt.Diag[1].Set(0, 0, 5)
	bt.Upper[0].Set(1, 1, 7)
	bt.Lower[1].Set(0, 1, 9)
	d := bt.ToDense()
	if d.At(2, 2) != 5 {
		t.Fatalf("diag block misplaced: got %v", d.At(2, 2))
	}
	if d.At(1, 3) != 7 {
		t.Fatalf("upper block misplaced: got %v", d.At(1, 3))
	}
	if d.At(4, 3) != 9 {
		t.Fatalf("lower block misplaced: got %v", d.At(4, 3))
	}
	if d.Rows != 6 || d.Cols != 6 {
		t.Fatalf("dense shape %d×%d, want 6×6", d.Rows, d.Cols)
	}
}

func TestBlockTriHermitian(t *testing.T) {
	r := rand.New(rand.NewSource(4))
	bt := randomBlockTri(r, 4, 3, 1)
	if !bt.IsHermitian(1e-14) {
		t.Fatal("randomBlockTri should be Hermitian")
	}
	if !bt.ToDense().IsHermitian(1e-14) {
		t.Fatal("dense expansion should be Hermitian")
	}
	bt.Lower[0].Set(0, 0, bt.Lower[0].At(0, 0)+1)
	if bt.IsHermitian(1e-14) {
		t.Fatal("perturbed matrix should not be Hermitian")
	}
}

func TestBlockTriCloneIndependence(t *testing.T) {
	r := rand.New(rand.NewSource(6))
	bt := randomBlockTri(r, 3, 2, 1)
	cl := bt.Clone()
	cl.Diag[0].Set(0, 0, 99)
	if bt.Diag[0].At(0, 0) == 99 {
		t.Fatal("Clone shares storage with original")
	}
}

func TestBlockTriScaleAXPY(t *testing.T) {
	r := rand.New(rand.NewSource(8))
	a := randomBlockTri(r, 3, 2, 1)
	b := a.Clone()
	b.Scale(2)
	b.AXPY(-2, a)
	if b.ToDense().MaxAbs() > 1e-14 {
		t.Fatal("2a - 2a != 0")
	}
}

func TestShiftDiagFormsESminusH(t *testing.T) {
	// ShiftDiag computes E·S − H, the left-hand operator of Eq. (1).
	r := rand.New(rand.NewSource(10))
	h := randomBlockTri(r, 3, 2, 1)
	s := randomBlockTri(r, 3, 2, 4)
	e := complex(1.7, 0)
	got := h.ShiftDiag(e, s).ToDense()
	want := s.ToDense().Scale(e).Sub(h.ToDense())
	if !got.Equalish(want, 1e-13) {
		t.Fatal("ShiftDiag != E·S − H")
	}
}

func TestBlockTriDim(t *testing.T) {
	if got := NewBlockTri(5, 7).Dim(); got != 35 {
		t.Fatalf("Dim = %d, want 35", got)
	}
}

func TestAXPYShapeMismatchPanics(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Fatal("expected panic on shape mismatch")
		}
	}()
	NewBlockTri(2, 2).AXPY(1, NewBlockTri(3, 2))
}
