package cmat

import "sync/atomic"

// FlopCounter accumulates floating-point operation counts of the kernels in
// this package. A complex multiply-add is counted as 8 real flops (6 for the
// multiply, 2 for the add), matching the convention the paper uses when
// quoting Pflop figures for complex arithmetic (64·… byte/flop expressions
// in §4.3 assume 8 flops per complex MAC).
//
// Counting is always on; the overhead is one atomic add per kernel call,
// which is negligible next to the O(n³) work of the kernels themselves.
type FlopCounter struct {
	flops atomic.Uint64
}

// Counter is the package-global flop counter used by all kernels.
var Counter FlopCounter

// AddGEMM records the flops of an R×K by K×C matrix multiplication.
func (c *FlopCounter) AddGEMM(r, k, cols int) {
	c.flops.Add(uint64(8 * r * k * cols))
}

// AddFlops records an arbitrary number of real flops.
func (c *FlopCounter) AddFlops(n uint64) { c.flops.Add(n) }

// Flops returns the total real flops recorded so far.
func (c *FlopCounter) Flops() uint64 { return c.flops.Load() }

// Reset zeroes the counter and returns the value it held.
func (c *FlopCounter) Reset() uint64 { return c.flops.Swap(0) }
