package cmat

import (
	"testing"
)

// TestArenaShapes checks the GetDense contract: correct shape, zeroed
// contents (even when the pooled buffer held garbage), and degenerate sizes.
func TestArenaShapes(t *testing.T) {
	m := GetDense(3, 5)
	if m.Rows != 3 || m.Cols != 5 || len(m.Data) != 15 {
		t.Fatalf("GetDense(3,5) shape: %d×%d len %d", m.Rows, m.Cols, len(m.Data))
	}
	for i := range m.Data {
		m.Data[i] = complex(float64(i), 1)
	}
	PutDense(m)
	// A later Get of compatible size must come back zeroed.
	m2 := GetDense(2, 7)
	for i, v := range m2.Data {
		if v != 0 {
			t.Fatalf("GetDense returned dirty buffer at %d: %v", i, v)
		}
	}
	PutDense(m2)

	z := GetDense(0, 4)
	if z.Rows != 0 || z.Cols != 4 || len(z.Data) != 0 {
		t.Fatalf("GetDense(0,4): %d×%d len %d", z.Rows, z.Cols, len(z.Data))
	}
	PutDense(z)
	PutDense(nil) // must not panic
}

// TestArenaBlockTri checks GetBlockTri/PutBlockTri round-trips.
func TestArenaBlockTri(t *testing.T) {
	bt := GetBlockTri(4, 3)
	if bt.N != 4 || bt.Bs != 3 || len(bt.Diag) != 4 || len(bt.Upper) != 3 {
		t.Fatalf("GetBlockTri(4,3) shape wrong")
	}
	for _, d := range bt.Diag {
		for _, v := range d.Data {
			if v != 0 {
				t.Fatal("GetBlockTri block not zeroed")
			}
		}
	}
	PutBlockTri(bt)
	PutBlockTri(nil)
}
