package cmat

import (
	"math/rand"
	"testing"
	"testing/quick"
)

// randomSparse builds an r×c matrix with roughly the given density.
func randomSparse(rng *rand.Rand, r, c int, density float64) *Dense {
	m := NewDense(r, c)
	for i := range m.Data {
		if rng.Float64() < density {
			m.Data[i] = complex(2*rng.Float64()-1, 2*rng.Float64()-1)
		}
	}
	return m
}

func TestCSRRoundTripProperty(t *testing.T) {
	f := func(seed int64) bool {
		r := rand.New(rand.NewSource(seed))
		m := randomSparse(r, 1+r.Intn(10), 1+r.Intn(10), 0.3)
		return CSRFromDense(m, 0).ToDense().Equalish(m, 0)
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 40}); err != nil {
		t.Fatal(err)
	}
}

func TestCSRDropTolerance(t *testing.T) {
	m := DenseFromSlice(2, 2, []complex128{1e-14, 1, 0, 2})
	s := CSRFromDense(m, 1e-12)
	if s.NNZ() != 2 {
		t.Fatalf("NNZ = %d, want 2 (tiny entry dropped)", s.NNZ())
	}
}

func TestCSRMulDenseMatchesDense(t *testing.T) {
	f := func(seed int64) bool {
		r := rand.New(rand.NewSource(seed))
		a := randomSparse(r, 1+r.Intn(8), 1+r.Intn(8), 0.4)
		b := RandomDense(r, a.Cols, 1+r.Intn(8))
		return CSRFromDense(a, 0).MulDense(b).Equalish(a.Mul(b), 1e-12)
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 40}); err != nil {
		t.Fatal(err)
	}
}

func TestDenseMulCSRMatchesDense(t *testing.T) {
	f := func(seed int64) bool {
		r := rand.New(rand.NewSource(seed))
		b := randomSparse(r, 1+r.Intn(8), 1+r.Intn(8), 0.4)
		a := RandomDense(r, 1+r.Intn(8), b.Rows)
		return DenseMulCSR(a, CSRFromDense(b, 0)).Equalish(a.Mul(b), 1e-12)
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 40}); err != nil {
		t.Fatal(err)
	}
}

func TestCSRMulCSRMatchesDense(t *testing.T) {
	f := func(seed int64) bool {
		r := rand.New(rand.NewSource(seed))
		a := randomSparse(r, 1+r.Intn(8), 1+r.Intn(8), 0.4)
		b := randomSparse(r, a.Cols, 1+r.Intn(8), 0.4)
		got := CSRFromDense(a, 0).MulCSR(CSRFromDense(b, 0)).ToDense()
		return got.Equalish(a.Mul(b), 1e-12)
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 40}); err != nil {
		t.Fatal(err)
	}
}

func TestCSRTransposeProperty(t *testing.T) {
	f := func(seed int64) bool {
		r := rand.New(rand.NewSource(seed))
		m := randomSparse(r, 1+r.Intn(9), 1+r.Intn(9), 0.35)
		return CSRFromDense(m, 0).Transpose().ToDense().Equalish(m.Transpose(), 0)
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 40}); err != nil {
		t.Fatal(err)
	}
}

func TestCSRAddMatchesDense(t *testing.T) {
	f := func(seed int64) bool {
		r := rand.New(rand.NewSource(seed))
		rows, cols := 1+r.Intn(8), 1+r.Intn(8)
		a := randomSparse(r, rows, cols, 0.3)
		b := randomSparse(r, rows, cols, 0.3)
		got := CSRFromDense(a, 0).Add(CSRFromDense(b, 0)).ToDense()
		return got.Equalish(a.Add(b), 1e-13)
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 40}); err != nil {
		t.Fatal(err)
	}
}

func TestCSRAddCancellationDropsEntries(t *testing.T) {
	a := CSRFromDense(DenseFromSlice(1, 2, []complex128{1, 5}), 0)
	b := CSRFromDense(DenseFromSlice(1, 2, []complex128{-1, 2}), 0)
	sum := a.Add(b)
	if sum.NNZ() != 1 {
		t.Fatalf("NNZ after exact cancellation = %d, want 1", sum.NNZ())
	}
}

func TestCSRScale(t *testing.T) {
	r := rand.New(rand.NewSource(2))
	m := randomSparse(r, 5, 5, 0.5)
	got := CSRFromDense(m, 0).Scale(2 + 1i).ToDense()
	if !got.Equalish(m.Scale(2+1i), 1e-14) {
		t.Fatal("CSR.Scale mismatch")
	}
}

func TestCSRDensity(t *testing.T) {
	m := NewDense(4, 5)
	m.Set(0, 0, 1)
	m.Set(3, 4, 1)
	s := CSRFromDense(m, 0)
	if got, want := s.Density(), 2.0/20.0; got != want {
		t.Fatalf("density = %g, want %g", got, want)
	}
	if NewCSR(0, 0).Density() != 0 {
		t.Fatal("empty matrix density should be 0")
	}
}

func TestTripleProductStrategiesAgree(t *testing.T) {
	// All three Table 6 strategies must compute the same F·g·E product.
	r := rand.New(rand.NewSource(17))
	for trial := 0; trial < 10; trial++ {
		n := 4 + r.Intn(12)
		f := CSRFromDense(randomSparse(r, n, n, 0.2), 0)
		e := CSRFromDense(randomSparse(r, n, n, 0.2), 0)
		g := RandomDense(r, n, n)
		want := TripleProduct(DenseMM, f, g, e)
		for _, strat := range []TripleProductStrategy{CSRMM, CSRGEMM} {
			got := TripleProduct(strat, f, g, e)
			if !got.Equalish(want, 1e-10) {
				t.Fatalf("strategy %v disagrees with Dense-MM: max diff %g", strat, got.MaxAbsDiff(want))
			}
		}
	}
}

func TestTripleProductStrategyString(t *testing.T) {
	if DenseMM.String() != "Dense-MM" || CSRMM.String() != "CSRMM" || CSRGEMM.String() != "CSRGEMM" {
		t.Fatal("strategy names do not match the paper's Table 6")
	}
}

func TestCSRMulDimensionPanics(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Fatal("expected panic")
		}
	}()
	NewCSR(2, 3).MulDense(NewDense(2, 2))
}
