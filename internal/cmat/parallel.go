package cmat

import "negfsim/internal/pool"

// MulPar computes m·n with the row range of the output partitioned across
// `workers` goroutines. Worthwhile for the large fused GEMMs of the
// DaCe-transformed SSE stage (the (Nkz·NE·Norb) × Norb × Norb products);
// at small sizes the fork/join overhead dominates, so callers should gate
// on size (see ParallelThreshold).
func (m *Dense) MulPar(n *Dense, workers int) *Dense {
	out := NewDense(m.Rows, n.Cols)
	m.MulParInto(out, n, workers)
	return out
}

// ParallelThreshold is the output-row count above which MulPar typically
// beats Mul on multicore hosts.
const ParallelThreshold = 256

// MulParInto computes out = m·n in parallel over row bands, scheduled on the
// persistent worker pool. Each band overwrites (and therefore zeroes) only
// its own slice of out — there is no serial full-matrix zeroing pass.
func (m *Dense) MulParInto(out, n *Dense, workers int) {
	if m.Cols != n.Rows {
		panic("cmat: MulPar dimension mismatch")
	}
	if out.Rows != m.Rows || out.Cols != n.Cols {
		panic("cmat: MulParInto output shape mismatch")
	}
	if workers < 1 {
		workers = 1
	}
	if workers == 1 || m.Rows < 2*workers {
		m.MulInto(out, n)
		return
	}
	pool.ParallelFor(m.Rows, workers, func(lo, hi int) {
		band := DenseFromSlice(hi-lo, m.Cols, m.Data[lo*m.Cols:hi*m.Cols])
		outBand := DenseFromSlice(hi-lo, out.Cols, out.Data[lo*out.Cols:hi*out.Cols])
		band.MulInto(outBand, n)
	})
}
