//go:build !race

// The AllocsPerRun counters below measure steady-state heap traffic; the race
// runtime adds its own allocations, so these regressions only hold un-raced.

package cmat

import (
	"math/rand"
	"testing"
)

// TestAllocsBlockedGEMM proves the blocked engine's steady state: once the
// arena holds a pack buffer, MulAddInto on dense operands performs no heap
// allocation per call.
func TestAllocsBlockedGEMM(t *testing.T) {
	rng := rand.New(rand.NewSource(17))
	const n = 96
	a := RandomDense(rng, n, n)
	b := RandomDense(rng, n, n)
	out := NewDense(n, n)
	a.MulAddInto(out, b) // warm the arena
	avg := testing.AllocsPerRun(50, func() {
		a.MulAddInto(out, b)
	})
	if avg > 0.5 {
		t.Fatalf("blocked MulAddInto steady state allocates %.2f/run, want ~0", avg)
	}
}

// TestAllocsInverseInto pins the zero-allocation steady state of the pooled
// LU inversion: the LU header lives on the stack, the factorization scratch
// and pivot slice come from the arena.
func TestAllocsInverseInto(t *testing.T) {
	rng := rand.New(rand.NewSource(19))
	const n = 24
	a := RandomDense(rng, n, n)
	for i := 0; i < n; i++ { // diagonally dominant → never singular
		a.Data[i*n+i] += complex(float64(4*n), 0)
	}
	dst := NewDense(n, n)
	if err := InverseInto(dst, a); err != nil {
		t.Fatal(err)
	}
	avg := testing.AllocsPerRun(50, func() {
		if err := InverseInto(dst, a); err != nil {
			t.Fatal(err)
		}
	})
	if avg > 1 {
		t.Fatalf("InverseInto steady state allocates %.2f/run, want ~0", avg)
	}
}
