package cmat

import (
	"math/rand"
	"testing"
	"testing/quick"
)

// refMulAdd is an independent j-i-k oracle (different loop order from both
// kernels under test).
func refMulAdd(out, m, n *Dense) {
	for i := 0; i < m.Rows; i++ {
		for j := 0; j < n.Cols; j++ {
			var s complex128
			for k := 0; k < m.Cols; k++ {
				s += m.Data[i*m.Cols+k] * n.Data[k*n.Cols+j]
			}
			out.Data[i*n.Cols+j] += s
		}
	}
}

// withBothKernels runs fn once per available micro-kernel implementation
// (pure Go always; assembly when the host supports it), restoring the
// package-level selection afterwards.
func withBothKernels(t *testing.T, fn func(t *testing.T)) {
	saved := useAsmKernel
	defer func() { useAsmKernel = saved }()
	useAsmKernel = false
	t.Run("go", fn)
	if saved {
		useAsmKernel = true
		t.Run("asm", fn)
	}
}

// TestBlockedMatchesNaiveQuick property-tests blocked GEMM ≡ naive GEMM over
// random shapes spanning the crossover, on both micro-kernel paths.
func TestBlockedMatchesNaiveQuick(t *testing.T) {
	withBothKernels(t, func(t *testing.T) {
		rng := rand.New(rand.NewSource(42))
		f := func(rs, ks, cs uint8) bool {
			r := 1 + int(rs)%96
			k := 1 + int(ks)%96
			c := 1 + int(cs)%96
			m := RandomDense(rng, r, k)
			n := RandomDense(rng, k, c)
			a := RandomDense(rng, r, c)
			blocked := a.Clone()
			naive := a.Clone()
			m.mulBlocked(blocked, n, true, gemmKC, gemmNC)
			m.mulAddNaive(naive, n)
			return blocked.Equalish(naive, 1e-9*float64(k))
		}
		if err := quick.Check(f, &quick.Config{MaxCount: 60}); err != nil {
			t.Fatal(err)
		}
	})
}

// TestBlockedDegenerateShapes pins the edge shapes: 1×1, 1×N, N×1, and sizes
// straddling the block-size crossover and panel boundaries.
func TestBlockedDegenerateShapes(t *testing.T) {
	withBothKernels(t, testBlockedDegenerateShapes)
}

func testBlockedDegenerateShapes(t *testing.T) {
	rng := rand.New(rand.NewSource(7))
	shapes := [][3]int{
		{1, 1, 1}, {1, 1, 7}, {7, 1, 1}, {1, 9, 1},
		{1, 64, 64}, {64, 64, 1}, {64, 1, 64},
		{2, 2, 2}, {3, 5, 7},
		{31, 31, 31}, {32, 32, 32}, {33, 33, 33}, // blockedMinWork crossover
		{gemmMR, gemmKC, gemmNR}, {gemmMR + 1, gemmKC + 1, gemmNR + 1},
		{5, gemmKC - 1, gemmNC - 1}, {5, gemmKC + 1, gemmNC + 1},
		{7, 2*gemmKC + 3, gemmNC + 5}, {65, 193, 67},
	}
	for _, s := range shapes {
		r, k, c := s[0], s[1], s[2]
		m := RandomDense(rng, r, k)
		n := RandomDense(rng, k, c)
		want := NewDense(r, c)
		refMulAdd(want, m, n)
		got := NewDense(r, c)
		m.MulAddInto(got, n)
		if !got.Equalish(want, 1e-9*float64(k+1)) {
			t.Fatalf("MulAddInto mismatch at %d×%d·%d×%d: max diff %g", r, k, k, c, got.MaxAbsDiff(want))
		}
		// Also force the blocked path directly (sizes below the crossover
		// would otherwise dispatch to naive).
		if c >= 1 {
			got2 := NewDense(r, c)
			m.mulBlocked(got2, n, true, gemmKC, gemmNC)
			if !got2.Equalish(want, 1e-9*float64(k+1)) {
				t.Fatalf("mulBlocked mismatch at %d×%d·%d×%d: max diff %g", r, k, k, c, got2.MaxAbsDiff(want))
			}
		}
		// Overwrite mode must ignore prior contents of out.
		got3 := RandomDense(rng, r, c)
		m.mulBlocked(got3, n, false, gemmKC, gemmNC)
		if !got3.Equalish(want, 1e-9*float64(k+1)) {
			t.Fatalf("mulBlocked overwrite mismatch at %d×%d·%d×%d", r, k, k, c)
		}
	}
}

// TestMulIntoOverwritesViaBlocked checks MulInto correctness across the
// dispatch boundary (it must overwrite, not accumulate, on both paths).
func TestMulIntoOverwritesViaBlocked(t *testing.T) {
	rng := rand.New(rand.NewSource(11))
	for _, n := range []int{4, 16, 48, 96} {
		a := RandomDense(rng, n, n)
		b := RandomDense(rng, n, n)
		out := RandomDense(rng, n, n) // garbage that must be overwritten
		a.MulInto(out, b)
		want := NewDense(n, n)
		refMulAdd(want, a, b)
		if !out.Equalish(want, 1e-9*float64(n)) {
			t.Fatalf("MulInto at n=%d: max diff %g", n, out.MaxAbsDiff(want))
		}
	}
}

// TestSparseOperandsStayOnNaivePath pins the density dispatch: a ~5%-dense
// left operand (Hamiltonian-like) must keep the zero-skip path, and produce
// the same values either way.
func TestSparseOperandsStayOnNaivePath(t *testing.T) {
	rng := rand.New(rand.NewSource(13))
	const n = 96
	a := NewDense(n, n)
	for i := range a.Data {
		if rng.Float64() < 0.05 {
			a.Data[i] = complex(rng.Float64(), rng.Float64())
		}
	}
	if denseEnough(a, blockedMinDensity) {
		t.Fatal("sparse operand classified as dense")
	}
	b := RandomDense(rng, n, n)
	got := NewDense(n, n)
	a.MulAddInto(got, b)
	want := NewDense(n, n)
	refMulAdd(want, a, b)
	if !got.Equalish(want, 1e-9*float64(n)) {
		t.Fatal("sparse-path MulAddInto mismatch")
	}
}

func benchGEMM(b *testing.B, size int, blocked bool) {
	rng := rand.New(rand.NewSource(3))
	m := RandomDense(rng, size, size)
	n := RandomDense(rng, size, size)
	out := NewDense(size, size)
	b.SetBytes(int64(3 * size * size * 16))
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if blocked {
			m.mulBlocked(out, n, true, gemmKC, gemmNC)
		} else {
			m.mulAddNaive(out, n)
		}
	}
}

func BenchmarkGEMM256Naive(b *testing.B)   { benchGEMM(b, 256, false) }
func BenchmarkGEMM256Blocked(b *testing.B) { benchGEMM(b, 256, true) }
func BenchmarkGEMM64Naive(b *testing.B)    { benchGEMM(b, 64, false) }
func BenchmarkGEMM64Blocked(b *testing.B)  { benchGEMM(b, 64, true) }
