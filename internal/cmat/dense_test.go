package cmat

import (
	"math"
	"math/cmplx"
	"math/rand"
	"testing"
	"testing/quick"
)

func TestNewDenseZeroed(t *testing.T) {
	m := NewDense(3, 4)
	if m.Rows != 3 || m.Cols != 4 {
		t.Fatalf("shape = %d×%d, want 3×4", m.Rows, m.Cols)
	}
	for i, v := range m.Data {
		if v != 0 {
			t.Fatalf("element %d = %v, want 0", i, v)
		}
	}
}

func TestIdentity(t *testing.T) {
	id := Identity(4)
	for i := 0; i < 4; i++ {
		for j := 0; j < 4; j++ {
			want := complex128(0)
			if i == j {
				want = 1
			}
			if id.At(i, j) != want {
				t.Fatalf("I[%d,%d] = %v, want %v", i, j, id.At(i, j), want)
			}
		}
	}
}

func TestAtSet(t *testing.T) {
	m := NewDense(2, 3)
	m.Set(1, 2, 3+4i)
	if got := m.At(1, 2); got != 3+4i {
		t.Fatalf("At(1,2) = %v, want 3+4i", got)
	}
	if m.Data[1*3+2] != 3+4i {
		t.Fatal("row-major layout violated")
	}
}

func TestMulKnown(t *testing.T) {
	a := DenseFromSlice(2, 2, []complex128{1, 2, 3, 4})
	b := DenseFromSlice(2, 2, []complex128{5, 6, 7, 8})
	got := a.Mul(b)
	want := DenseFromSlice(2, 2, []complex128{19, 22, 43, 50})
	if !got.Equalish(want, 0) {
		t.Fatalf("got %v, want %v", got, want)
	}
}

func TestMulComplex(t *testing.T) {
	a := DenseFromSlice(1, 1, []complex128{1 + 2i})
	b := DenseFromSlice(1, 1, []complex128{3 - 1i})
	if got := a.Mul(b).At(0, 0); got != (5 + 5i) {
		t.Fatalf("(1+2i)(3-1i) = %v, want 5+5i", got)
	}
}

func TestMulIdentityProperty(t *testing.T) {
	rng := rand.New(rand.NewSource(1))
	f := func(seed int64) bool {
		r := rand.New(rand.NewSource(seed))
		n := 1 + r.Intn(8)
		a := RandomDense(rng, n, n)
		return a.Mul(Identity(n)).Equalish(a, 1e-12) &&
			Identity(n).Mul(a).Equalish(a, 1e-12)
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 25}); err != nil {
		t.Fatal(err)
	}
}

func TestMulAssociativityProperty(t *testing.T) {
	f := func(seed int64) bool {
		r := rand.New(rand.NewSource(seed))
		m, k, n, p := 1+r.Intn(6), 1+r.Intn(6), 1+r.Intn(6), 1+r.Intn(6)
		a := RandomDense(r, m, k)
		b := RandomDense(r, k, n)
		c := RandomDense(r, n, p)
		left := a.Mul(b).Mul(c)
		right := a.Mul(b.Mul(c))
		return left.Equalish(right, 1e-10)
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 25}); err != nil {
		t.Fatal(err)
	}
}

func TestConjTransposeProductProperty(t *testing.T) {
	// (A·B)^H = B^H · A^H
	f := func(seed int64) bool {
		r := rand.New(rand.NewSource(seed))
		m, k, n := 1+r.Intn(6), 1+r.Intn(6), 1+r.Intn(6)
		a := RandomDense(r, m, k)
		b := RandomDense(r, k, n)
		return a.Mul(b).ConjTranspose().Equalish(b.ConjTranspose().Mul(a.ConjTranspose()), 1e-11)
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 25}); err != nil {
		t.Fatal(err)
	}
}

func TestTransposeInvolution(t *testing.T) {
	f := func(seed int64) bool {
		r := rand.New(rand.NewSource(seed))
		a := RandomDense(r, 1+r.Intn(7), 1+r.Intn(7))
		return a.Transpose().Transpose().Equalish(a, 0)
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 20}); err != nil {
		t.Fatal(err)
	}
}

func TestMulHermMatchesExplicit(t *testing.T) {
	r := rand.New(rand.NewSource(7))
	a := RandomDense(r, 5, 4)
	b := RandomDense(r, 6, 4)
	got := a.MulHerm(b)
	want := a.Mul(b.ConjTranspose())
	if !got.Equalish(want, 1e-12) {
		t.Fatalf("MulHerm mismatch: max diff %g", got.MaxAbsDiff(want))
	}
}

func TestAddSubScale(t *testing.T) {
	r := rand.New(rand.NewSource(3))
	a := RandomDense(r, 4, 3)
	b := RandomDense(r, 4, 3)
	if !a.Add(b).Sub(b).Equalish(a, 1e-14) {
		t.Fatal("(a+b)-b != a")
	}
	if !a.Scale(2).Equalish(a.Add(a), 1e-14) {
		t.Fatal("2a != a+a")
	}
	c := a.Clone()
	c.AddScaledInPlace(-1, a)
	if c.MaxAbs() != 0 {
		t.Fatal("a + (-1)a != 0")
	}
}

func TestRandomHermitianIsHermitian(t *testing.T) {
	r := rand.New(rand.NewSource(11))
	h := RandomHermitian(r, 9, 2)
	if !h.IsHermitian(1e-15) {
		t.Fatal("RandomHermitian produced a non-Hermitian matrix")
	}
	// Diagonal must be real (Hermitian) and shifted.
	for i := 0; i < 9; i++ {
		if imag(h.At(i, i)) != 0 {
			t.Fatalf("diagonal element %d has imaginary part %g", i, imag(h.At(i, i)))
		}
	}
}

func TestTraceAndNorm(t *testing.T) {
	a := DenseFromSlice(2, 2, []complex128{1 + 1i, 0, 0, 2 - 1i})
	if got := a.Trace(); got != 3 {
		t.Fatalf("trace = %v, want 3", got)
	}
	want := math.Sqrt(2 + 0 + 0 + 5)
	if got := a.FrobNorm(); math.Abs(got-want) > 1e-14 {
		t.Fatalf("frobenius = %g, want %g", got, want)
	}
}

func TestSubmatrixRoundTrip(t *testing.T) {
	r := rand.New(rand.NewSource(5))
	a := RandomDense(r, 6, 8)
	s := a.Submatrix(2, 5, 1, 4)
	if s.Rows != 3 || s.Cols != 3 {
		t.Fatalf("submatrix shape %d×%d, want 3×3", s.Rows, s.Cols)
	}
	b := NewDense(6, 8)
	b.SetSubmatrix(2, 1, s)
	for i := 2; i < 5; i++ {
		for j := 1; j < 4; j++ {
			if b.At(i, j) != a.At(i, j) {
				t.Fatalf("round trip mismatch at (%d,%d)", i, j)
			}
		}
	}
}

func TestMulIntoAndMulAddInto(t *testing.T) {
	r := rand.New(rand.NewSource(9))
	a := RandomDense(r, 3, 4)
	b := RandomDense(r, 4, 5)
	out := NewDense(3, 5)
	a.MulInto(out, b)
	if !out.Equalish(a.Mul(b), 0) {
		t.Fatal("MulInto differs from Mul")
	}
	a.MulAddInto(out, b)
	if !out.Equalish(a.Mul(b).Scale(2), 1e-13) {
		t.Fatal("MulAddInto did not accumulate")
	}
}

func TestMulPanicsOnMismatch(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Fatal("expected panic on dimension mismatch")
		}
	}()
	NewDense(2, 3).Mul(NewDense(2, 3))
}

func TestMaxAbsDiff(t *testing.T) {
	a := DenseFromSlice(1, 2, []complex128{1, 2})
	b := DenseFromSlice(1, 2, []complex128{1, 2 + 3i})
	if got := a.MaxAbsDiff(b); math.Abs(got-3) > 1e-15 {
		t.Fatalf("MaxAbsDiff = %g, want 3", got)
	}
}

func TestHermitianDetection(t *testing.T) {
	h := DenseFromSlice(2, 2, []complex128{1, 2 + 1i, 2 - 1i, 3})
	if !h.IsHermitian(0) {
		t.Fatal("should be Hermitian")
	}
	h.Set(0, 1, 2+2i)
	if h.IsHermitian(1e-3) {
		t.Fatal("should not be Hermitian")
	}
	if !h.IsHermitian(2) {
		t.Fatal("should be Hermitian within loose tolerance")
	}
}

func TestFlopCounterGEMM(t *testing.T) {
	Counter.Reset()
	a := NewDense(3, 4)
	for i := range a.Data {
		a.Data[i] = 1
	}
	b := NewDense(4, 5)
	a.Mul(b)
	if got, want := Counter.Reset(), uint64(8*3*4*5); got != want {
		t.Fatalf("GEMM flops = %d, want %d", got, want)
	}
}

func TestScaleConjugation(t *testing.T) {
	// Scaling by i then by -i is the identity.
	r := rand.New(rand.NewSource(21))
	a := RandomDense(r, 3, 3)
	b := a.Scale(1i).Scale(-1i)
	if !b.Equalish(a, 1e-15) {
		t.Fatal("i·(-i)·A != A")
	}
	_ = cmplx.Abs // keep import alive under edits
}

func TestTransMulMatchesExplicit(t *testing.T) {
	r := rand.New(rand.NewSource(31))
	a := RandomDense(r, 6, 4)
	b := RandomDense(r, 6, 5)
	got := a.TransMul(b)
	want := a.Transpose().Mul(b)
	if !got.Equalish(want, 1e-12) {
		t.Fatalf("TransMul mismatch: %g", got.MaxAbsDiff(want))
	}
}

func TestTraceMulMatchesExplicit(t *testing.T) {
	r := rand.New(rand.NewSource(33))
	a := RandomDense(r, 4, 6)
	b := RandomDense(r, 6, 4)
	got := a.TraceMul(b)
	want := a.Mul(b).Trace()
	if cmplx.Abs(got-want) > 1e-12 {
		t.Fatalf("TraceMul = %v, want %v", got, want)
	}
}
