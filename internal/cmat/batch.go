package cmat

import "negfsim/internal/pool"

// Triple is one independent product in a batched GEMM dispatch:
// Out += A·B.
type Triple struct {
	Out, A, B *Dense
}

// batchSerialWork is the default total R·K·C volume below which a batch
// runs serially: scheduling a handful of Norb³ products over the pool costs
// more than the products themselves. The live threshold is
// Blocking.BatchWork of the installed configuration.
const batchSerialWork = 64 * 1024

// BatchMulAddInto performs every product of the batch, accumulating into the
// respective Out matrices. The products must be independent: no Out may
// alias another triple's Out, A or B (A and B operands may be shared freely
// between triples — they are only read).
//
// This is the runtime-level analogue of the paper's SDFG transformation that
// fuses myriads of tiny Norb×Norb multiplications into batched kernel
// launches: the SSE and block-tridiagonal RGF stages hand the pool many
// independent small products at once instead of spawning goroutines (or
// running serially) per product.
func BatchMulAddInto(batch []Triple) {
	work := 0
	for _, t := range batch {
		if t.A.Cols != t.B.Rows {
			panic("cmat: BatchMulAddInto dimension mismatch")
		}
		if t.Out.Rows != t.A.Rows || t.Out.Cols != t.B.Cols {
			panic("cmat: BatchMulAddInto output shape mismatch")
		}
		work += t.A.Rows * t.A.Cols * t.B.Cols
	}
	if len(batch) <= 1 || work < active.Load().BatchWork {
		for _, t := range batch {
			t.A.MulAddInto(t.Out, t.B)
		}
		return
	}
	pool.ParallelFor(len(batch), pool.Size(), func(lo, hi int) {
		for _, t := range batch[lo:hi] {
			t.A.MulAddInto(t.Out, t.B)
		}
	})
}
