package cmat

import (
	"math/bits"
	"sync"

	"negfsim/internal/obs"
)

// Arena telemetry: hit/miss rates of the dense workspace pool, surfaced on
// the observability registry (near-nops while obs recording is disabled).
var (
	obsPoolHit  = obs.GetCounter("cmat.pool.hit")
	obsPoolMiss = obs.GetCounter("cmat.pool.miss")
)

// Workspace arena: size-class pools of scratch matrices, so the steady-state
// inner loops of RGF, SSE and the blocked GEMM engine stop allocating once
// warm. Matrices obtained from GetDense are ordinary *Dense values; returning
// them with PutDense is optional (anything not returned is simply collected
// by the GC) but required to reach zero-allocation steady state.
//
// Pooling contract (see DESIGN.md §9): after PutDense(m), the caller must not
// retain or touch m or any view aliasing m.Data. Code that hands matrices to
// external callers (public results, golden outputs) must hand out matrices it
// will never Put, or copies.

// denseClasses[k] holds *Dense whose backing slice has cap ≥ 1<<k. A matrix
// is stored in the class of floor(log2(cap)) and served from the class of
// ceil(log2(n)), so a served slice always has sufficient capacity.
var denseClasses [48]sync.Pool

// The []int pivot scratch of the LU path is pooled in a mutex-guarded
// freelist rather than a sync.Pool: Put on a sync.Pool boxes the slice
// header on every call, which would put one heap allocation back into every
// factorization. A [][]int stack stores the headers inline.
var (
	intMu   sync.Mutex
	intFree [32][][]int
)

// GetDense returns a zeroed r×c matrix from the workspace arena, growing the
// arena if no suitable buffer is pooled.
func GetDense(r, c int) *Dense {
	m := getDenseNoZero(r, c)
	clear(m.Data)
	return m
}

// getDenseNoZero is GetDense without the zeroing pass, for scratch that is
// fully overwritten before being read (pack buffers, MulInto targets).
func getDenseNoZero(r, c int) *Dense {
	if r < 0 || c < 0 {
		panic("cmat: GetDense negative dimensions")
	}
	n := r * c
	if n == 0 {
		return &Dense{Rows: r, Cols: c}
	}
	k := bits.Len(uint(n - 1)) // ceil(log2(n))
	if v := denseClasses[k].Get(); v != nil {
		obsPoolHit.Inc()
		m := v.(*Dense)
		m.Rows, m.Cols = r, c
		m.Data = m.Data[:n]
		return m
	}
	obsPoolMiss.Inc()
	return &Dense{Rows: r, Cols: c, Data: make([]complex128, n, 1<<k)}
}

// PutDense returns m to the workspace arena. m must not be used afterwards.
// nil and zero-capacity matrices are ignored.
func PutDense(m *Dense) {
	if m == nil || cap(m.Data) == 0 {
		return
	}
	k := bits.Len(uint(cap(m.Data))) - 1 // floor(log2(cap))
	m.Data = m.Data[:cap(m.Data)]
	denseClasses[k].Put(m)
}

// PutAll returns every non-nil matrix in ms to the arena.
func PutAll(ms ...*Dense) {
	for _, m := range ms {
		PutDense(m)
	}
}

// getInts returns an int scratch slice of length n (contents undefined).
func getInts(n int) []int {
	if n == 0 {
		return nil
	}
	k := bits.Len(uint(n - 1))
	intMu.Lock()
	if l := len(intFree[k]); l > 0 {
		s := intFree[k][l-1]
		intFree[k] = intFree[k][:l-1]
		intMu.Unlock()
		return s[:n]
	}
	intMu.Unlock()
	return make([]int, n, 1<<k)
}

// putInts returns an int scratch slice to the arena.
func putInts(s []int) {
	if cap(s) == 0 {
		return
	}
	k := bits.Len(uint(cap(s))) - 1
	intMu.Lock()
	intFree[k] = append(intFree[k], s[:cap(s)])
	intMu.Unlock()
}

// GetBlockTri returns an n-block matrix with zeroed bs×bs pooled blocks.
func GetBlockTri(n, bs int) *BlockTri {
	bt := &BlockTri{N: n, Bs: bs,
		Diag:  make([]*Dense, n),
		Upper: make([]*Dense, n-1),
		Lower: make([]*Dense, n-1)}
	for i := 0; i < n; i++ {
		bt.Diag[i] = GetDense(bs, bs)
	}
	for i := 0; i < n-1; i++ {
		bt.Upper[i] = GetDense(bs, bs)
		bt.Lower[i] = GetDense(bs, bs)
	}
	return bt
}

// PutBlockTri returns every block of bt to the arena. bt must not be used
// afterwards.
func PutBlockTri(bt *BlockTri) {
	if bt == nil {
		return
	}
	for _, d := range bt.Diag {
		PutDense(d)
	}
	for i := range bt.Upper {
		PutDense(bt.Upper[i])
		PutDense(bt.Lower[i])
	}
}
