//go:build amd64

package cmat

// The blocked engine's micro-kernel has an AVX2+FMA assembly variant on
// amd64 (gemm_amd64.s): complex multiply-accumulate vectorized two complexes
// per ymm register, with the ai sign folded into a broadcast-XOR so each
// complex MAC costs two FMAs. Selected at process start by CPUID; the pure
// Go micro2x4 covers every other case (and remains the property-test
// subject, since mulBlocked is exercised both ways in tests).

// gemmKernel2x4 computes a 2×4 complex output tile over kc steps and stores
// it (accumulating when acc) at o0/o1. a0 and a1 are rows of the left
// operand (unit stride over k), bp a packed gemmNR strip of B. kc must be
// positive and the strip full-width.
//
//go:noescape
func gemmKernel2x4(a0, a1, bp, o0, o1 *complex128, kc int, acc bool)

// gemmKernel1x4 is the single-row variant for the odd row tail.
//
//go:noescape
func gemmKernel1x4(a0, bp, o0 *complex128, kc int, acc bool)

// cpuidex executes CPUID with the given leaf/subleaf.
func cpuidex(leaf, subleaf uint32) (eax, ebx, ecx, edx uint32)

// xgetbv reads extended control register 0 (OS-enabled SIMD state).
func xgetbv() (eax, edx uint32)

// haveAVX2FMA reports whether the CPU and OS support AVX2 + FMA + the ymm
// state the assembly kernels need.
func haveAVX2FMA() bool {
	maxLeaf, _, _, _ := cpuidex(0, 0)
	if maxLeaf < 7 {
		return false
	}
	_, _, ecx1, _ := cpuidex(1, 0)
	const osxsave = 1 << 27
	const avx = 1 << 28
	const fma = 1 << 12
	if ecx1&osxsave == 0 || ecx1&avx == 0 || ecx1&fma == 0 {
		return false
	}
	// XCR0 bits 1 (SSE) and 2 (AVX) must both be OS-enabled.
	xcr0, _ := xgetbv()
	if xcr0&0x6 != 0x6 {
		return false
	}
	_, ebx7, _, _ := cpuidex(7, 0)
	const avx2 = 1 << 5
	return ebx7&avx2 != 0
}

// useAsmKernel gates the assembly micro-kernel. Tests flip it to cover both
// paths on capable hosts.
var useAsmKernel = haveAVX2FMA()
