package cmat

import (
	"math/rand"
	"testing"
	"testing/quick"
)

// TestBatchMatchesSequentialQuick property-tests BatchMulAddInto ≡ running
// the same MulAddInto calls one by one, over random batch sizes and shapes
// spanning the serial/parallel dispatch threshold.
func TestBatchMatchesSequentialQuick(t *testing.T) {
	rng := rand.New(rand.NewSource(101))
	f := func(ns, rs, ks, cs uint8) bool {
		nb := 1 + int(ns)%12
		r := 1 + int(rs)%48
		k := 1 + int(ks)%48
		c := 1 + int(cs)%48
		batch := make([]Triple, nb)
		want := make([]*Dense, nb)
		for i := range batch {
			a := RandomDense(rng, r, k)
			b := RandomDense(rng, k, c)
			out := RandomDense(rng, r, c)
			want[i] = out.Clone()
			a.MulAddInto(want[i], b)
			batch[i] = Triple{Out: out, A: a, B: b}
		}
		BatchMulAddInto(batch)
		for i := range batch {
			if !batch[i].Out.Equalish(want[i], 1e-9*float64(k)) {
				return false
			}
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 40}); err != nil {
		t.Fatal(err)
	}
}

// TestBatchDegenerate pins the edge cases: empty batch, single triple,
// zero-dimension operands, mixed shapes within one batch, and a batch large
// enough to take the parallel dispatch path.
func TestBatchDegenerate(t *testing.T) {
	BatchMulAddInto(nil) // must not panic
	BatchMulAddInto([]Triple{})

	rng := rand.New(rand.NewSource(103))

	// Zero-sized operands: 0×k·k×c, r×0·0×c, r×k·k×0.
	zeroShapes := [][3]int{{0, 3, 4}, {3, 0, 4}, {3, 4, 0}, {0, 0, 0}, {1, 1, 1}}
	batch := make([]Triple, 0, len(zeroShapes))
	want := make([]*Dense, 0, len(zeroShapes))
	for _, s := range zeroShapes {
		r, k, c := s[0], s[1], s[2]
		a := RandomDense(rng, r, k)
		b := RandomDense(rng, k, c)
		out := RandomDense(rng, r, c)
		w := out.Clone()
		a.MulAddInto(w, b)
		want = append(want, w)
		batch = append(batch, Triple{Out: out, A: a, B: b})
	}
	BatchMulAddInto(batch)
	for i := range batch {
		if !batch[i].Out.Equalish(want[i], 1e-12) {
			t.Fatalf("degenerate shape %v mismatch", zeroShapes[i])
		}
	}

	// A batch whose total work exceeds batchSerialWork: forces the pool path.
	const n, nb = 48, 8 // 8 · 48³ ≫ batchSerialWork
	big := make([]Triple, nb)
	bigWant := make([]*Dense, nb)
	for i := range big {
		a := RandomDense(rng, n, n)
		b := RandomDense(rng, n, n)
		out := NewDense(n, n)
		bigWant[i] = NewDense(n, n)
		a.MulAddInto(bigWant[i], b)
		big[i] = Triple{Out: out, A: a, B: b}
	}
	BatchMulAddInto(big)
	for i := range big {
		if !big[i].Out.Equalish(bigWant[i], 1e-9*n) {
			t.Fatalf("parallel-path triple %d mismatch: max diff %g", i, big[i].Out.MaxAbsDiff(bigWant[i]))
		}
	}
}

// TestBatchSharedInputs checks the documented sharing contract: distinct Out
// matrices may read the same A and B operands concurrently.
func TestBatchSharedInputs(t *testing.T) {
	rng := rand.New(rand.NewSource(107))
	const n, nb = 40, 16
	a := RandomDense(rng, n, n)
	b := RandomDense(rng, n, n)
	want := NewDense(n, n)
	a.MulAddInto(want, b)
	batch := make([]Triple, nb)
	for i := range batch {
		batch[i] = Triple{Out: NewDense(n, n), A: a, B: b}
	}
	BatchMulAddInto(batch)
	for i := range batch {
		if !batch[i].Out.Equalish(want, 1e-9*n) {
			t.Fatalf("shared-input triple %d mismatch", i)
		}
	}
}
