package cmat

import (
	"negfsim/internal/num"
	"negfsim/internal/obs"
)

// Blocked GEMM engine. The paper wins its single-node speedups by turning
// myriads of tiny Norb×Norb multiplications into large, well-scheduled GEMMs
// at the SDFG level; this file applies the same kernel-granularity idea at
// the runtime level. Large dense products run through a cache-blocked,
// panel-packed, register-tiled kernel; small products (the Norb×Norb blocks
// of the SSE stage) and sparse-ish operands (Hamiltonian blocks with ~5%
// fill, where the naive kernel's zero-skip wins) keep the simple i-k-j loop,
// which also serves as the property-test oracle.
//
// Blocking scheme (see DESIGN.md §9):
//
//   - The K dimension is split into panels of gemmKC rows of B.
//   - The C dimension is split into panels of gemmNC columns; each kc×nc
//     panel of B is packed into strips of gemmNR contiguous columns
//     (k-major within a strip), so the micro-kernel streams B unit-stride
//     out of L1/L2 regardless of the source leading dimension.
//   - The micro-kernel computes a gemmMR×gemmNR output tile with the
//     accumulators held in registers across the whole kc loop, eliminating
//     the per-k load/store traffic on the output row that bounds the naive
//     kernel.
//
// These constants are the hand-tuned defaults behind DefaultBlocking; the
// panel sizes and dispatch thresholds actually used per product come from
// the installed Blocking (blocking.go), which the autotuner may replace.
const (
	gemmKC = 192 // K-panel height: one packed strip is gemmKC·gemmNR·16 B
	gemmNC = 64  // column-panel width: a packed panel is ≤ gemmKC·gemmNC·16 B ≈ 192 KiB
	gemmNR = 4   // micro-tile width (columns)
	gemmMR = 2   // micro-tile height (rows)

	// blockedMinWork is the R·K·C product volume above which the blocked
	// engine is tried; below it the packing and dispatch overhead exceeds
	// the cache savings and the naive kernel wins.
	blockedMinWork = 32 * 32 * 32

	// blockedMinDensity is the minimum nonzero fraction of the left operand
	// for the blocked path: below it the naive kernel's a==0 row skip
	// (Hamiltonian blocks are ~5% dense) beats the dense micro-kernel.
	blockedMinDensity = 0.25
)

// mulAddNaive is the original i-k-j triple loop with the zero-skip on the
// left operand. It is the oracle the blocked kernel is property-tested
// against and the fast path for small or sparse operands.
func (m *Dense) mulAddNaive(out, n *Dense) {
	R, K, C := m.Rows, m.Cols, n.Cols
	for i := 0; i < R; i++ {
		mrow := m.Data[i*K : (i+1)*K]
		orow := out.Data[i*C : (i+1)*C]
		for k := 0; k < K; k++ {
			a := mrow[k]
			if a == 0 {
				continue
			}
			nrow := n.Data[k*C : (k+1)*C]
			for j := 0; j < C; j++ {
				orow[j] += a * nrow[j]
			}
		}
	}
}

// Dispatch telemetry: how many products took each kernel path, surfaced on
// the observability registry (near-nops while obs recording is disabled).
var (
	obsGemmNaive   = obs.GetCounter("cmat.gemm.naive")
	obsGemmBlocked = obs.GetCounter("cmat.gemm.blocked")
)

// gemm computes out += m·n (accumulate) or out = m·n, dispatching between
// the naive and the blocked kernel on size and left-operand density. The
// thresholds and panel sizes come from the installed Blocking (one atomic
// pointer load per product; see SetBlocking).
func (m *Dense) gemm(out, n *Dense, accumulate bool) {
	R, K, C := m.Rows, m.Cols, n.Cols
	if K == 0 {
		if !accumulate {
			out.Zero()
		}
		return
	}
	b := active.Load()
	if R*K*C < b.MinWork || C < gemmNR || !denseEnough(m, b.MinDensity) {
		obsGemmNaive.Inc()
		if !accumulate {
			out.Zero()
		}
		m.mulAddNaive(out, n)
		return
	}
	obsGemmBlocked.Inc()
	m.mulBlocked(out, n, accumulate, b.KC, b.NC)
}

// denseEnough reports whether at least minDensity of m's entries are
// nonzero, returning early as soon as the threshold is reached.
func denseEnough(m *Dense, minDensity float64) bool {
	need := int(minDensity*float64(len(m.Data))) + 1
	nz := 0
	for _, v := range m.Data {
		if v != 0 {
			nz++
			if nz >= need {
				return true
			}
		}
	}
	return false
}

// mulBlocked is the cache-blocked kernel: panel packing of B plus a
// register-tiled gemmMR×gemmNR micro-kernel. kcMax and ncMax are the
// K-panel height and column-panel width (Blocking.KC and Blocking.NC).
func (m *Dense) mulBlocked(out, n *Dense, accumulate bool, kcMax, ncMax int) {
	R, K, C := m.Rows, m.Cols, n.Cols
	if C < ncMax {
		ncMax = C
	}
	stripsMax := num.CeilDiv(ncMax, gemmNR)
	pack := getDenseNoZero(1, kcMax*stripsMax*gemmNR)
	pb := pack.Data
	for kb := 0; kb < K; kb += kcMax {
		kc := K - kb
		if kc > kcMax {
			kc = kcMax
		}
		// The first K-panel may overwrite; subsequent panels accumulate on
		// top of it.
		acc := accumulate || kb > 0
		for jb := 0; jb < C; jb += ncMax {
			nc := C - jb
			if nc > ncMax {
				nc = ncMax
			}
			packPanel(pb, n, kb, kc, jb, nc)
			// ncFull is the widest jj for which a full gemmNR strip fits; the
			// assembly kernel handles only full strips (it stores 4 columns
			// unconditionally), the Go micro-kernel covers column tails.
			ncFull := 0
			if useAsmKernel {
				ncFull = nc - nc%gemmNR
			}
			var i int
			for i = 0; i+gemmMR <= R; i += gemmMR {
				a0 := m.Data[i*K+kb : i*K+kb+kc : i*K+kb+kc]
				a1 := m.Data[(i+1)*K+kb : (i+1)*K+kb+kc : (i+1)*K+kb+kc]
				jj := 0
				for ; jj < ncFull; jj += gemmNR {
					gemmKernel2x4(&a0[0], &a1[0], &pb[(jj/gemmNR)*kc*gemmNR],
						&out.Data[i*C+jb+jj], &out.Data[(i+1)*C+jb+jj], kc, acc)
				}
				for ; jj < nc; jj += gemmNR {
					c00, c01, c02, c03, c10, c11, c12, c13 := micro2x4(a0, a1, pb[(jj/gemmNR)*kc*gemmNR:], kc)
					storeTile(out, i, jb+jj, nc-jj, acc,
						c00, c01, c02, c03, c10, c11, c12, c13)
				}
			}
			for ; i < R; i++ {
				a0 := m.Data[i*K+kb : i*K+kb+kc : i*K+kb+kc]
				jj := 0
				for ; jj < ncFull; jj += gemmNR {
					gemmKernel1x4(&a0[0], &pb[(jj/gemmNR)*kc*gemmNR],
						&out.Data[i*C+jb+jj], kc, acc)
				}
				for ; jj < nc; jj += gemmNR {
					c0, c1, c2, c3 := micro1x4(a0, pb[(jj/gemmNR)*kc*gemmNR:], kc)
					storeRow(out, i, jb+jj, nc-jj, acc, c0, c1, c2, c3)
				}
			}
		}
	}
	PutDense(pack)
}

// packPanel copies the kc×nc panel of n starting at (kb, jb) into pb as
// strips of gemmNR columns, k-major within each strip; strip s occupies
// pb[s·kc·gemmNR : (s+1)·kc·gemmNR]. Columns beyond nc are zero-padded so
// the micro-kernel never branches on the column tail.
func packPanel(pb []complex128, n *Dense, kb, kc, jb, nc int) {
	C := n.Cols
	for s := 0; s*gemmNR < nc; s++ {
		j0 := jb + s*gemmNR
		w := nc - s*gemmNR
		if w > gemmNR {
			w = gemmNR
		}
		dst := pb[s*kc*gemmNR:]
		for k := 0; k < kc; k++ {
			src := n.Data[(kb+k)*C+j0 : (kb+k)*C+j0+w]
			d := dst[k*gemmNR : k*gemmNR+gemmNR]
			switch w {
			case gemmNR:
				d[0], d[1], d[2], d[3] = src[0], src[1], src[2], src[3]
			case 3:
				d[0], d[1], d[2], d[3] = src[0], src[1], src[2], 0
			case 2:
				d[0], d[1], d[2], d[3] = src[0], src[1], 0, 0
			case 1:
				d[0], d[1], d[2], d[3] = src[0], 0, 0, 0
			}
		}
	}
}

// micro2x4 accumulates a 2×4 output tile over kc steps: two rows of A
// against one packed gemmNR strip of B.
func micro2x4(a0, a1, bp []complex128, kc int) (c00, c01, c02, c03, c10, c11, c12, c13 complex128) {
	bp = bp[: kc*gemmNR : kc*gemmNR]
	for k := 0; k < kc; k++ {
		b := bp[k*gemmNR : k*gemmNR+gemmNR : k*gemmNR+gemmNR]
		b0, b1, b2, b3 := b[0], b[1], b[2], b[3]
		ra := a0[k]
		c00 += ra * b0
		c01 += ra * b1
		c02 += ra * b2
		c03 += ra * b3
		rb := a1[k]
		c10 += rb * b0
		c11 += rb * b1
		c12 += rb * b2
		c13 += rb * b3
	}
	return
}

// micro1x4 is the single-row tail variant of micro2x4.
func micro1x4(a0, bp []complex128, kc int) (c0, c1, c2, c3 complex128) {
	bp = bp[: kc*gemmNR : kc*gemmNR]
	for k := 0; k < kc; k++ {
		b := bp[k*gemmNR : k*gemmNR+gemmNR : k*gemmNR+gemmNR]
		ra := a0[k]
		c0 += ra * b[0]
		c1 += ra * b[1]
		c2 += ra * b[2]
		c3 += ra * b[3]
	}
	return
}

// storeTile writes a 2×4 accumulator tile into out at (i, j), accumulating
// or overwriting, honouring the column tail width w.
func storeTile(out *Dense, i, j, w int, acc bool, c00, c01, c02, c03, c10, c11, c12, c13 complex128) {
	if w > gemmNR {
		w = gemmNR
	}
	C := out.Cols
	o0 := out.Data[i*C+j : i*C+j+w]
	o1 := out.Data[(i+1)*C+j : (i+1)*C+j+w]
	if acc {
		switch w {
		case 4:
			o0[0] += c00
			o0[1] += c01
			o0[2] += c02
			o0[3] += c03
			o1[0] += c10
			o1[1] += c11
			o1[2] += c12
			o1[3] += c13
		case 3:
			o0[0] += c00
			o0[1] += c01
			o0[2] += c02
			o1[0] += c10
			o1[1] += c11
			o1[2] += c12
		case 2:
			o0[0] += c00
			o0[1] += c01
			o1[0] += c10
			o1[1] += c11
		case 1:
			o0[0] += c00
			o1[0] += c10
		}
		return
	}
	switch w {
	case 4:
		o0[0], o0[1], o0[2], o0[3] = c00, c01, c02, c03
		o1[0], o1[1], o1[2], o1[3] = c10, c11, c12, c13
	case 3:
		o0[0], o0[1], o0[2] = c00, c01, c02
		o1[0], o1[1], o1[2] = c10, c11, c12
	case 2:
		o0[0], o0[1] = c00, c01
		o1[0], o1[1] = c10, c11
	case 1:
		o0[0] = c00
		o1[0] = c10
	}
}

// storeRow writes a 1×4 accumulator row into out at (i, j).
func storeRow(out *Dense, i, j, w int, acc bool, c0, c1, c2, c3 complex128) {
	if w > gemmNR {
		w = gemmNR
	}
	C := out.Cols
	o := out.Data[i*C+j : i*C+j+w]
	if acc {
		switch w {
		case 4:
			o[0] += c0
			o[1] += c1
			o[2] += c2
			o[3] += c3
		case 3:
			o[0] += c0
			o[1] += c1
			o[2] += c2
		case 2:
			o[0] += c0
			o[1] += c1
		case 1:
			o[0] += c0
		}
		return
	}
	switch w {
	case 4:
		o[0], o[1], o[2], o[3] = c0, c1, c2, c3
	case 3:
		o[0], o[1], o[2] = c0, c1, c2
	case 2:
		o[0], o[1] = c0, c1
	case 1:
		o[0] = c0
	}
}
