package cmat

import (
	"math/rand"
	"testing"
	"testing/quick"
)

func TestMulParMatchesMul(t *testing.T) {
	f := func(seed int64) bool {
		r := rand.New(rand.NewSource(seed))
		m := RandomDense(r, 1+r.Intn(40), 1+r.Intn(12))
		n := RandomDense(r, m.Cols, 1+r.Intn(12))
		for _, workers := range []int{1, 2, 4, 7} {
			if !m.MulPar(n, workers).Equalish(m.Mul(n), 1e-12) {
				return false
			}
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 20}); err != nil {
		t.Fatal(err)
	}
}

func TestMulParCountsFlopsOnce(t *testing.T) {
	r := rand.New(rand.NewSource(3))
	m := RandomDense(r, 32, 8)
	n := RandomDense(r, 8, 8)
	Counter.Reset()
	m.MulPar(n, 4)
	if got, want := Counter.Reset(), uint64(8*32*8*8); got != want {
		t.Fatalf("parallel GEMM flops %d, want %d", got, want)
	}
}
