package cmat

import (
	"errors"
	"math"
	"math/cmplx"
	"sort"
)

// EigenHermitian computes all eigenvalues of a Hermitian matrix by the
// cyclic complex Jacobi method, returned in ascending order. Used to
// validate spectral properties of the synthetic operators (Hamiltonian
// bandwidth, positive semi-definiteness of the dynamical matrix) and to
// trace phonon/electron dispersions in the examples.
//
// Jacobi is O(n³) per sweep with quadratic convergence once nearly
// diagonal — entirely adequate for the block sizes this simulator handles.
func EigenHermitian(a *Dense, tol float64) ([]float64, error) {
	if a.Rows != a.Cols {
		return nil, errors.New("cmat: eigenvalues of non-square matrix")
	}
	if !a.IsHermitian(1e-10 * (1 + a.MaxAbs())) {
		return nil, errors.New("cmat: EigenHermitian requires a Hermitian matrix")
	}
	n := a.Rows
	if n == 0 {
		return nil, nil
	}
	m := a.Clone()
	if tol <= 0 {
		tol = 1e-12
	}
	scale := m.MaxAbs()
	if scale == 0 {
		return make([]float64, n), nil
	}
	const maxSweeps = 60
	for sweep := 0; sweep < maxSweeps; sweep++ {
		// Off-diagonal Frobenius mass.
		var off float64
		for i := 0; i < n; i++ {
			for j := i + 1; j < n; j++ {
				v := m.At(i, j)
				off += 2 * (real(v)*real(v) + imag(v)*imag(v))
			}
		}
		if math.Sqrt(off) <= tol*scale*float64(n) {
			break
		}
		for p := 0; p < n; p++ {
			for q := p + 1; q < n; q++ {
				apq := m.At(p, q)
				if cmplx.Abs(apq) <= tol*scale/float64(n) {
					continue
				}
				app := real(m.At(p, p))
				aqq := real(m.At(q, q))
				// Unitary 2×2 diagonalization: phase out apq, then rotate.
				phase := apq / complex(cmplx.Abs(apq), 0)
				tau := (aqq - app) / (2 * cmplx.Abs(apq))
				t := math.Copysign(1, tau) / (math.Abs(tau) + math.Sqrt(1+tau*tau))
				c := 1 / math.Sqrt(1+t*t)
				s := t * c
				cs := complex(c, 0)
				sn := complex(s, 0) * phase
				// Apply J^H · M · J with J affecting columns p, q.
				for k := 0; k < n; k++ {
					mkp := m.At(k, p)
					mkq := m.At(k, q)
					m.Set(k, p, cs*mkp-cmplx.Conj(sn)*mkq)
					m.Set(k, q, sn*mkp+cs*mkq)
				}
				for k := 0; k < n; k++ {
					mpk := m.At(p, k)
					mqk := m.At(q, k)
					m.Set(p, k, cs*mpk-sn*mqk)
					m.Set(q, k, cmplx.Conj(sn)*mpk+cs*mqk)
				}
			}
		}
	}
	out := make([]float64, n)
	for i := 0; i < n; i++ {
		out[i] = real(m.At(i, i))
	}
	sort.Float64s(out)
	return out, nil
}

// SpectralBounds returns the smallest and largest eigenvalue of a Hermitian
// matrix.
func SpectralBounds(a *Dense, tol float64) (lo, hi float64, err error) {
	ev, err := EigenHermitian(a, tol)
	if err != nil {
		return 0, 0, err
	}
	if len(ev) == 0 {
		return 0, 0, errors.New("cmat: empty matrix has no spectrum")
	}
	return ev[0], ev[len(ev)-1], nil
}
