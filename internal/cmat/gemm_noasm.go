//go:build !amd64

package cmat

// Non-amd64 hosts always use the pure Go micro-kernel.
var useAsmKernel = false

func gemmKernel2x4(a0, a1, bp, o0, o1 *complex128, kc int, acc bool) {
	panic("cmat: assembly GEMM kernel unavailable on this architecture")
}

func gemmKernel1x4(a0, bp, o0 *complex128, kc int, acc bool) {
	panic("cmat: assembly GEMM kernel unavailable on this architecture")
}
