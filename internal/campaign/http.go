package campaign

import (
	"encoding/json"
	"errors"
	"fmt"
	"net/http"
)

// API is the campaign HTTP surface, mounted next to the job API of
// whichever tier hosts it (qtsimd or qtfront):
//
//	POST /v1/campaigns                     submit a Request → 202 + StatusDoc
//	GET  /v1/campaigns                     list campaigns
//	GET  /v1/campaigns/{id}                status with per-point progress
//	POST /v1/campaigns/{id}/cancel         stop the ladder
//	GET  /v1/campaigns/{id}/artifact.csv   CSV artifact (succeeded only)
//	GET  /v1/campaigns/{id}/artifact.json  JSON artifact (succeeded only)
type API struct {
	m *Manager
}

// NewAPI wraps a manager in its HTTP surface.
func NewAPI(m *Manager) *API { return &API{m: m} }

// Register mounts the campaign routes on mux, so a host daemon can
// compose them with its own job API under one server.
func (a *API) Register(mux *http.ServeMux) {
	mux.HandleFunc("POST /v1/campaigns", a.submit)
	mux.HandleFunc("GET /v1/campaigns", a.list)
	mux.HandleFunc("GET /v1/campaigns/{id}", a.status)
	mux.HandleFunc("POST /v1/campaigns/{id}/cancel", a.cancel)
	mux.HandleFunc("GET /v1/campaigns/{id}/artifact.csv", a.artifactCSV)
	mux.HandleFunc("GET /v1/campaigns/{id}/artifact.json", a.artifactJSON)
}

// Handler returns a standalone routed handler (tests mostly; daemons use
// Register).
func (a *API) Handler() http.Handler {
	mux := http.NewServeMux()
	a.Register(mux)
	return mux
}

func writeJSON(w http.ResponseWriter, code int, v any) {
	w.Header().Set("Content-Type", "application/json")
	w.WriteHeader(code)
	enc := json.NewEncoder(w)
	enc.SetIndent("", "  ")
	_ = enc.Encode(v)
}

func writeError(w http.ResponseWriter, code int, format string, args ...any) {
	writeJSON(w, code, map[string]string{"error": fmt.Sprintf(format, args...)})
}

func (a *API) submit(w http.ResponseWriter, r *http.Request) {
	dec := json.NewDecoder(http.MaxBytesReader(w, r.Body, 4<<20))
	dec.DisallowUnknownFields()
	var req Request
	if err := dec.Decode(&req); err != nil {
		writeError(w, http.StatusBadRequest, "decoding campaign request: %v", err)
		return
	}
	c, err := a.m.Start(req)
	switch {
	case errors.Is(err, ErrClosed):
		writeError(w, http.StatusServiceUnavailable, "%v", err)
	case err != nil:
		writeError(w, http.StatusBadRequest, "%v", err)
	default:
		writeJSON(w, http.StatusAccepted, c.Status())
	}
}

func (a *API) list(w http.ResponseWriter, r *http.Request) {
	cs := a.m.List()
	out := make([]StatusDoc, len(cs))
	for i, c := range cs {
		out[i] = c.Status()
	}
	writeJSON(w, http.StatusOK, out)
}

// campaign resolves the {id} path value, writing a 404 when unknown.
func (a *API) campaign(w http.ResponseWriter, r *http.Request) (*Campaign, bool) {
	id := r.PathValue("id")
	c, ok := a.m.Get(id)
	if !ok {
		writeError(w, http.StatusNotFound, "no such campaign %q", id)
		return nil, false
	}
	return c, true
}

func (a *API) status(w http.ResponseWriter, r *http.Request) {
	if c, ok := a.campaign(w, r); ok {
		writeJSON(w, http.StatusOK, c.Status())
	}
}

func (a *API) cancel(w http.ResponseWriter, r *http.Request) {
	c, ok := a.campaign(w, r)
	if !ok {
		return
	}
	if _, err := a.m.Cancel(c.ID()); err != nil {
		writeError(w, http.StatusNotFound, "%v", err)
		return
	}
	writeJSON(w, http.StatusOK, c.Status())
}

// artifact serves one artifact rendering; render is CSV or JSON.
func (a *API) artifact(w http.ResponseWriter, r *http.Request, contentType string, render func(*Campaign) ([]byte, error)) {
	c, ok := a.campaign(w, r)
	if !ok {
		return
	}
	body, err := render(c)
	if err != nil {
		writeError(w, http.StatusConflict, "%v", err)
		return
	}
	w.Header().Set("Content-Type", contentType)
	w.WriteHeader(http.StatusOK)
	_, _ = w.Write(body)
}

func (a *API) artifactCSV(w http.ResponseWriter, r *http.Request) {
	a.artifact(w, r, "text/csv", (*Campaign).CSV)
}

func (a *API) artifactJSON(w http.ResponseWriter, r *http.Request) {
	a.artifact(w, r, "application/json", (*Campaign).JSON)
}
