// Package campaign turns parameter sweeps into first-class requests: an
// I–V curve or a T(E) spectrum is submitted once and executed as a ladder
// of bias points, each point an ordinary run of the underlying tier
// (in-process solver, qtsimd scheduler, or the sharded front).
//
// The physics motivation is the same data-movement argument the rest of
// the service stack follows: adjacent bias points share almost all of
// their converged self-energy structure, so a campaign chains them —
// point k+1 is warm-started from point k's Σ≷/Π≷ checkpoint through the
// existing submit envelope and the Born loop starts near the fixed point
// instead of at zero. A ladder run this way spends most of its wall time
// on the first point; the rest converge in a fraction of the iterations.
//
// A campaign's artifacts are served in two formats: CSV for plotting and
// JSON for programmatic diffing against point-by-point direct runs.
package campaign

import (
	"fmt"

	"negfsim/internal/core"
)

// Kind selects what a campaign computes.
type Kind string

// The two campaign kinds.
const (
	// IV sweeps the bias ladder and reports the terminal current at every
	// point — the I–V curve.
	IV Kind = "iv"
	// TE sweeps the bias ladder (a single point by default) and reports
	// the per-energy spectral current and effective transmission at each
	// point — the T(E) spectrum.
	TE Kind = "te"
)

// Request describes one campaign: the base run configuration plus the
// bias ladder swept over it. The JSON schema is strict; exactly one of
// the ladder spellings (biases, or bias_start/bias_stop/bias_points) may
// be used, and a TE request may omit both to mean "one spectrum at the
// config's own bias".
type Request struct {
	// Kind is "iv" or "te".
	Kind Kind `json:"kind"`
	// Config is the base run configuration; its Bias field is overridden
	// per ladder point. Campaign points are plain serial runs — Dist,
	// Space and Gate are rejected.
	Config core.RunConfig `json:"config"`

	// BiasStart/BiasStop/BiasPoints describe an evenly spaced ladder
	// inclusive of both ends.
	BiasStart  float64 `json:"bias_start,omitempty"`
	BiasStop   float64 `json:"bias_stop,omitempty"`
	BiasPoints int     `json:"bias_points,omitempty"`
	// Biases is the explicit ladder alternative.
	Biases []float64 `json:"biases,omitempty"`

	// WarmStart chains each point from the previous point's checkpoint
	// (sequential execution); nil means true. False fans the points out
	// cold and concurrently.
	WarmStart *bool `json:"warm_start,omitempty"`
}

// Warm reports the effective warm-start mode (default true).
func (r *Request) Warm() bool { return r.WarmStart == nil || *r.WarmStart }

// Validate checks the request: kind, base config, and ladder shape.
// Errors name the offending JSON field.
func (r *Request) Validate() error {
	switch r.Kind {
	case IV, TE:
	default:
		return fmt.Errorf("campaign: kind must be %q or %q, got %q", IV, TE, r.Kind)
	}
	if err := r.Config.Validate(); err != nil {
		return fmt.Errorf("campaign: config: %w", err)
	}
	if r.Config.Dist != "" || r.Config.Space >= 2 || r.Config.Gate != nil {
		return fmt.Errorf("campaign: config: campaign points are plain serial runs (no dist, no space, no gate)")
	}
	explicit := len(r.Biases) > 0
	ranged := r.BiasStart != 0 || r.BiasStop != 0 || r.BiasPoints != 0
	if explicit && ranged {
		return fmt.Errorf("campaign: biases and bias_start/bias_stop/bias_points are mutually exclusive")
	}
	if ranged {
		if r.BiasPoints < 2 {
			return fmt.Errorf("campaign: bias_points: need ≥ 2 ladder points, got %d", r.BiasPoints)
		}
		if r.BiasStart == r.BiasStop {
			return fmt.Errorf("campaign: bias_stop: ladder endpoints coincide at %g", r.BiasStart)
		}
	}
	if !explicit && !ranged && r.Kind == IV {
		return fmt.Errorf("campaign: iv needs a ladder: biases, or bias_start/bias_stop/bias_points")
	}
	return nil
}

// Ladder expands the request's bias ladder. A TE request without one
// yields the single point at the base config's bias.
func (r *Request) Ladder() []float64 {
	if len(r.Biases) > 0 {
		return append([]float64(nil), r.Biases...)
	}
	if r.BiasPoints < 2 {
		return []float64{r.Config.Bias}
	}
	out := make([]float64, r.BiasPoints)
	step := (r.BiasStop - r.BiasStart) / float64(r.BiasPoints-1)
	for i := range out {
		out[i] = r.BiasStart + float64(i)*step
	}
	return out
}

// pointConfig is the run configuration of ladder point i.
func (r *Request) pointConfig(bias float64) core.RunConfig {
	cfg := r.Config
	cfg.Bias = bias
	return cfg
}
