package campaign

import (
	"context"
	"fmt"
	"strconv"
	"sync"
	"time"

	"negfsim/internal/core"
)

// State is a campaign's lifecycle phase.
type State string

// The campaign lifecycle: Running until every point is terminal.
const (
	// StateRunning: points are executing (or waiting their turn).
	StateRunning State = "running"
	// StateSucceeded: every point converged to a result.
	StateSucceeded State = "succeeded"
	// StateFailed: at least one point failed; a warm-chained campaign
	// stops at the first failure since later seeds would be missing.
	StateFailed State = "failed"
	// StateCancelled: stopped by a cancel request or manager shutdown.
	StateCancelled State = "cancelled"
)

// PointState is one ladder point's lifecycle phase.
type PointState string

// The point lifecycle mirrors the campaign's, per rung.
const (
	PointPending   PointState = "pending"
	PointRunning   PointState = "running"
	PointDone      PointState = "done"
	PointFailed    PointState = "failed"
	PointCancelled PointState = "cancelled"
)

// Point is the public per-rung progress record.
type Point struct {
	// Bias is the rung's source-drain bias [eV].
	Bias float64 `json:"bias"`
	// State is the rung's lifecycle phase.
	State PointState `json:"state"`
	// JobID names the underlying tier's job, when one exists.
	JobID string `json:"job_id,omitempty"`
	// Iterations counts Born iterations observed so far (live updates
	// while running, the final count once done).
	Iterations int `json:"iterations"`
	// Converged and WarmStarted describe the finished run.
	Converged   bool `json:"converged"`
	WarmStarted bool `json:"warm_started"`
	// CurrentL/R are the terminal contact currents of a done point.
	CurrentL float64 `json:"current_l"`
	CurrentR float64 `json:"current_r"`
	// Error carries the failure message (failed points only).
	Error string `json:"error,omitempty"`
}

// Campaign is one accepted sweep. All fields behind mu; accessors return
// snapshots.
type Campaign struct {
	id  string
	req Request

	mu   sync.Mutex
	cond *sync.Cond // broadcast on point progress and state change

	state    State
	points   []Point
	outcomes []*PointOutcome // parallel to points, nil until done
	errmsg   string
	created  time.Time
	finished time.Time
	cancel   context.CancelFunc
}

// ID returns the campaign's identifier.
func (c *Campaign) ID() string { return c.id }

// StatusDoc is the point-in-time public snapshot of a campaign — the
// JSON body of the status endpoint.
type StatusDoc struct {
	// ID identifies the campaign; Kind and State classify it.
	ID    string `json:"id"`
	Kind  Kind   `json:"kind"`
	State State  `json:"state"`
	// WarmStart reports the chaining mode the campaign runs under.
	WarmStart bool `json:"warm_start"`
	// Points is the per-rung progress, in ladder order.
	Points []Point `json:"points"`
	// Created/Finished are lifecycle timestamps.
	Created  time.Time  `json:"created"`
	Finished *time.Time `json:"finished,omitempty"`
	// Error carries the campaign-level failure message (terminal only).
	Error string `json:"error,omitempty"`
}

// Status returns the campaign's current snapshot.
func (c *Campaign) Status() StatusDoc {
	c.mu.Lock()
	defer c.mu.Unlock()
	doc := StatusDoc{
		ID:        c.id,
		Kind:      c.req.Kind,
		State:     c.state,
		WarmStart: c.req.Warm(),
		Points:    append([]Point(nil), c.points...),
		Created:   c.created,
		Error:     c.errmsg,
	}
	if !c.finished.IsZero() {
		t := c.finished
		doc.Finished = &t
	}
	return doc
}

// Wait blocks until the campaign is terminal or ctx fires, returning the
// final state.
func (c *Campaign) Wait(ctx context.Context) (State, error) {
	stop := context.AfterFunc(ctx, func() {
		c.mu.Lock()
		c.cond.Broadcast()
		c.mu.Unlock()
	})
	defer stop()
	c.mu.Lock()
	defer c.mu.Unlock()
	for c.state == StateRunning {
		if ctx.Err() != nil {
			return c.state, ctx.Err()
		}
		c.cond.Wait()
	}
	return c.state, nil
}

// setPoint mutates one rung under the lock and wakes waiters.
func (c *Campaign) setPoint(i int, f func(p *Point)) {
	c.mu.Lock()
	f(&c.points[i])
	c.cond.Broadcast()
	c.mu.Unlock()
}

// pointDone records a finished rung's outcome.
func (c *Campaign) pointDone(i int, out *PointOutcome) {
	c.mu.Lock()
	c.outcomes[i] = out
	p := &c.points[i]
	p.State = PointDone
	p.JobID = out.JobID
	p.Iterations = out.Iterations
	p.Converged = out.Converged
	p.WarmStarted = out.WarmStarted
	p.CurrentL = out.Obs.CurrentL
	p.CurrentR = out.Obs.CurrentR
	c.cond.Broadcast()
	c.mu.Unlock()
}

// finish settles the campaign into the terminal state its points imply:
// any failure wins, then any cancellation, else success.
func (c *Campaign) finish() {
	c.mu.Lock()
	state := StateSucceeded
	msg := ""
	for i := range c.points {
		switch c.points[i].State {
		case PointFailed:
			state = StateFailed
			msg = fmt.Sprintf("point %d (bias %g): %s", i, c.points[i].Bias, c.points[i].Error)
		case PointCancelled:
			if state != StateFailed {
				state = StateCancelled
				msg = "cancelled"
			}
		}
		if state == StateFailed {
			break
		}
	}
	c.state = state
	c.errmsg = msg
	c.finished = time.Now()
	c.cancel = nil
	c.cond.Broadcast()
	c.mu.Unlock()
}

// Manager owns the campaign store and drives each accepted request to a
// terminal state on the configured backend. Create one with NewManager;
// it is safe for concurrent use.
type Manager struct {
	backend     Backend
	maxParallel int

	baseCtx context.Context
	stop    context.CancelFunc
	wg      sync.WaitGroup

	mu        sync.Mutex
	campaigns map[string]*Campaign
	order     []string
	nextID    int
	closed    bool
}

// NewManager builds a manager over backend. maxParallel bounds the
// concurrent points of a cold (non-warm-chained) campaign; ≤ 0 means 4.
func NewManager(backend Backend, maxParallel int) *Manager {
	if maxParallel <= 0 {
		maxParallel = 4
	}
	m := &Manager{
		backend:     backend,
		maxParallel: maxParallel,
		campaigns:   make(map[string]*Campaign),
	}
	m.baseCtx, m.stop = context.WithCancel(context.Background())
	return m
}

// ErrClosed is returned by Start after Close has begun.
var ErrClosed = fmt.Errorf("campaign: manager is shut down")

// Start validates and launches a campaign. The returned campaign is
// already running; poll Status or block on Wait.
func (m *Manager) Start(req Request) (*Campaign, error) {
	if err := req.Validate(); err != nil {
		return nil, err
	}
	ladder := req.Ladder()
	c := &Campaign{
		req:      req,
		state:    StateRunning,
		points:   make([]Point, len(ladder)),
		outcomes: make([]*PointOutcome, len(ladder)),
		created:  time.Now(),
	}
	c.cond = sync.NewCond(&c.mu)
	for i, b := range ladder {
		c.points[i] = Point{Bias: b, State: PointPending}
	}

	m.mu.Lock()
	if m.closed {
		m.mu.Unlock()
		return nil, ErrClosed
	}
	m.nextID++
	c.id = "c" + strconv.Itoa(m.nextID)
	ctx, cancel := context.WithCancel(m.baseCtx)
	c.cancel = cancel
	m.campaigns[c.id] = c
	m.order = append(m.order, c.id)
	m.wg.Add(1)
	m.mu.Unlock()

	go func() {
		defer m.wg.Done()
		defer cancel()
		if c.req.Warm() {
			m.runWarm(ctx, c)
		} else {
			m.runCold(ctx, c)
		}
		c.finish()
	}()
	return c, nil
}

// Get returns the campaign with the given id.
func (m *Manager) Get(id string) (*Campaign, bool) {
	m.mu.Lock()
	defer m.mu.Unlock()
	c, ok := m.campaigns[id]
	return c, ok
}

// List returns the stored campaigns in submission order.
func (m *Manager) List() []*Campaign {
	m.mu.Lock()
	defer m.mu.Unlock()
	out := make([]*Campaign, 0, len(m.order))
	for _, id := range m.order {
		out = append(out, m.campaigns[id])
	}
	return out
}

// Cancel stops a running campaign: the active point's context is
// cancelled and pending points never start. Cancelling a finished
// campaign is a no-op.
func (m *Manager) Cancel(id string) (*Campaign, error) {
	c, ok := m.Get(id)
	if !ok {
		return nil, fmt.Errorf("campaign: no such campaign %q", id)
	}
	c.mu.Lock()
	cancel := c.cancel
	c.mu.Unlock()
	if cancel != nil {
		cancel()
	}
	return c, nil
}

// Close shuts the manager down: no new campaigns, running ones are
// cancelled, and Close blocks until they drain or ctx expires.
func (m *Manager) Close(ctx context.Context) error {
	m.mu.Lock()
	if m.closed {
		m.mu.Unlock()
		return nil
	}
	m.closed = true
	m.mu.Unlock()
	m.stop()
	done := make(chan struct{})
	go func() { m.wg.Wait(); close(done) }()
	select {
	case <-done:
		return nil
	case <-ctx.Done():
		return fmt.Errorf("campaign: shutdown timed out: %w", ctx.Err())
	}
}

// runWarm executes the ladder sequentially, chaining each point from the
// previous point's checkpoint. A failed point aborts the tail: its warm
// seed would be missing, and a cold continuation would silently change
// the campaign's convergence story.
func (m *Manager) runWarm(ctx context.Context, c *Campaign) {
	var warm *core.Checkpoint
	for i := range c.points {
		if ctx.Err() != nil {
			m.cancelFrom(c, i)
			return
		}
		if !m.runOne(ctx, c, i, warm) {
			m.cancelFrom(c, i+1)
			return
		}
		if out := c.outcomes[i]; out != nil && out.Checkpoint != nil {
			warm = out.Checkpoint
		}
	}
}

// runCold fans the points out concurrently (bounded by maxParallel),
// every one starting from zero self-energies.
func (m *Manager) runCold(ctx context.Context, c *Campaign) {
	sem := make(chan struct{}, m.maxParallel)
	var wg sync.WaitGroup
	for i := range c.points {
		wg.Add(1)
		go func(i int) {
			defer wg.Done()
			sem <- struct{}{}
			defer func() { <-sem }()
			if ctx.Err() != nil {
				c.setPoint(i, func(p *Point) { p.State = PointCancelled })
				return
			}
			m.runOne(ctx, c, i, nil)
		}(i)
	}
	wg.Wait()
}

// runOne drives ladder point i through the backend; false means the
// campaign should not continue past it (failure or cancellation).
func (m *Manager) runOne(ctx context.Context, c *Campaign, i int, warm *core.Checkpoint) bool {
	c.setPoint(i, func(p *Point) { p.State = PointRunning })
	cfg := c.req.pointConfig(c.points[i].Bias)
	out, err := m.backend.RunPoint(ctx, cfg, warm, func(n int) {
		c.setPoint(i, func(p *Point) { p.Iterations = n })
	})
	switch {
	case err == nil:
		c.pointDone(i, out)
		return true
	case ctx.Err() != nil:
		c.setPoint(i, func(p *Point) { p.State = PointCancelled })
		return false
	default:
		c.setPoint(i, func(p *Point) {
			p.State = PointFailed
			p.Error = err.Error()
		})
		return false
	}
}

// cancelFrom marks every pending point from index i on as cancelled.
func (m *Manager) cancelFrom(c *Campaign, i int) {
	c.mu.Lock()
	for ; i < len(c.points); i++ {
		if c.points[i].State == PointPending {
			c.points[i].State = PointCancelled
		}
	}
	c.cond.Broadcast()
	c.mu.Unlock()
}
