package campaign

import (
	"context"
	"testing"

	"negfsim/internal/core"
	"negfsim/internal/device"
)

// cntAdaptConfig is the adaptive campaign workload: a metallic zigzag
// CNT (conducting at small bias) on a fine grid with a window wide
// relative to the bias ladder, so the refinement controller has real
// savings to find and the warm-chained grid state matters.
func cntAdaptConfig(maxIter int) core.RunConfig {
	cfg := core.DefaultRunConfig()
	cfg.Device = device.WrapSpec(device.CNT{
		N: 6, M: 0, Cols: 6, Subbands: 2,
		NE: 64, Nw: 4, NB: 3, Bnum: 3, Nkz: 1, Emin: -2.5, Emax: 2.5,
	})
	cfg.MaxIter = maxIter
	cfg.Mixer = "anderson"
	cfg.Mixing = 0.8
	cfg.Tol = 1e-9
	cfg.Adapt = &core.AdaptSpec{Mode: "grid+sigma", TolCurrent: 1e-6}
	return cfg
}

// directAdaptiveRuns executes every ladder point as an independent cold
// adaptive run — the baseline the warm-chained campaign is pinned to.
func directAdaptiveRuns(t *testing.T, req Request) []*core.Result {
	t.Helper()
	out := make([]*core.Result, 0, len(req.Ladder()))
	for _, bias := range req.Ladder() {
		cfg := req.pointConfig(bias)
		sim, err := cfg.NewSimulator()
		if err != nil {
			t.Fatal(err)
		}
		ac, ok := cfg.AdaptConfig()
		if !ok {
			t.Fatal("point config lost its adapt block")
		}
		res, _, err := sim.RunAdaptiveCtx(context.Background(), ac)
		if err != nil {
			t.Fatal(err)
		}
		if !res.Converged {
			t.Fatalf("direct adaptive run at bias %g did not converge", bias)
		}
		out = append(out, res)
	}
	return out
}

// A warm-chained adaptive I–V ladder: each point resumes both the Born
// loop (Σ≷) and the refinement controller (the grid) from its neighbor,
// and still reproduces cold adaptive runs point-by-point to 1e-8.
func TestAdaptiveWarmLadderLocal(t *testing.T) {
	if testing.Short() {
		t.Skip("long self-consistent ladder; skipped under -short")
	}
	req := Request{
		Kind:       IV,
		Config:     cntAdaptConfig(40),
		BiasStart:  0.30,
		BiasStop:   0.45,
		BiasPoints: 4,
	}
	direct := directAdaptiveRuns(t, req)

	m := NewManager(LocalBackend{}, 0)
	defer m.Close(context.Background())
	c, err := m.Start(req)
	if err != nil {
		t.Fatal(err)
	}
	state, err := c.Wait(context.Background())
	if err != nil {
		t.Fatal(err)
	}
	if state != StateSucceeded {
		t.Fatalf("campaign finished %s: %s", state, c.Status().Error)
	}
	st := c.Status()
	if len(st.Points) != 4 {
		t.Fatalf("campaign has %d points, want 4", len(st.Points))
	}
	for i, p := range st.Points {
		if p.State != PointDone || !p.Converged {
			t.Fatalf("point %d state %s converged=%t", i, p.State, p.Converged)
		}
		if got, want := p.WarmStarted, i > 0; got != want {
			t.Fatalf("point %d warm_started = %t, want %t", i, got, want)
		}
		if d := relDiff(p.CurrentL, direct[i].Obs.CurrentL); d > 1e-8 {
			t.Errorf("point %d current_l differs from cold adaptive run by %g", i, d)
		}
		if d := relDiff(p.CurrentR, direct[i].Obs.CurrentR); d > 1e-8 {
			t.Errorf("point %d current_r differs from cold adaptive run by %g", i, d)
		}
	}
	// Every direct run must itself have saved points (otherwise this
	// exercise degenerates to the uniform ladder).
	for i, r := range direct {
		if r.Adapt == nil || r.EGrid == nil {
			t.Fatalf("direct run %d missing adaptive report", i)
		}
		if r.Adapt.PointsActive > r.Adapt.PointsFine/2 {
			t.Errorf("direct run %d used %d/%d points — no saving", i, r.Adapt.PointsActive, r.Adapt.PointsFine)
		}
	}
}
