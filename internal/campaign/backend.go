package campaign

import (
	"context"
	"errors"
	"fmt"
	"time"

	"negfsim/internal/core"
	"negfsim/internal/front"
	"negfsim/internal/serve"
)

// PointOutcome is what a backend returns for one converged ladder point.
type PointOutcome struct {
	// JobID identifies the underlying tier's job, for cross-referencing
	// campaign points against /v1/jobs ("" for in-process runs).
	JobID string
	// Iterations/Converged/Residuals summarize the Born loop.
	Iterations int
	Converged  bool
	Residuals  []float64
	// Obs are the physical outputs the artifacts are built from.
	Obs core.Observables
	// Checkpoint carries the converged Σ≷/Π≷ for the next point's warm
	// start; nil when the backend manages warm starts itself (the front
	// tier's family cache does).
	Checkpoint *core.Checkpoint
	// WarmStarted reports whether this point actually ran from a seed.
	WarmStarted bool
}

// Backend executes one ladder point. Implementations run the config on
// their tier, stream iteration counts through onIter (may be nil), and
// return the outcome. warm is the previous point's checkpoint; backends
// that source warm starts elsewhere ignore it.
type Backend interface {
	RunPoint(ctx context.Context, cfg core.RunConfig, warm *core.Checkpoint, onIter func(n int)) (*PointOutcome, error)
}

// LocalBackend runs points in-process — the qtsim -campaign offline mode.
type LocalBackend struct {
	// Workers, when positive, is the pool parallelism granted to configs
	// that do not pin Workers themselves.
	Workers int
}

// RunPoint builds the simulator and runs the Born loop, seeding it from
// warm when compatible.
func (b LocalBackend) RunPoint(ctx context.Context, cfg core.RunConfig, warm *core.Checkpoint, onIter func(n int)) (*PointOutcome, error) {
	opts, err := cfg.Options()
	if err != nil {
		return nil, err
	}
	if opts.Workers <= 0 && b.Workers > 0 {
		opts.Workers = b.Workers
	}
	if onIter != nil {
		opts.OnIteration = func(st core.IterStats) { onIter(st.Iter) }
	}
	sim, err := cfg.NewSimulatorWith(opts)
	if err != nil {
		return nil, err
	}
	var res *core.Result
	if ac, adaptive := cfg.AdaptConfig(); adaptive {
		// Adaptive ladder points chain the whole grid state: the previous
		// bias point's checkpoint seeds both the Born loop (Σ≷/Π≷) and the
		// refinement controller (its active point set), so each point
		// resumes refinement from the neighbor's resolved grid instead of
		// the coarse seed.
		ac.Resume = warm
		res, _, err = sim.RunAdaptiveCtx(ctx, ac)
	} else if warm != nil {
		res, err = sim.RunFromCtx(ctx, warm)
	} else {
		res, err = sim.RunCtx(ctx)
	}
	if err != nil {
		return nil, err
	}
	return &PointOutcome{
		Iterations:  res.Iterations,
		Converged:   res.Converged,
		Residuals:   res.Residuals,
		Obs:         res.Obs,
		Checkpoint:  core.CheckpointOf(cfg.Device, res),
		WarmStarted: warm != nil,
	}, nil
}

// ServeBackend fans points out through a qtsimd scheduler, warm-starting
// via SubmitFrom — the in-process equivalent of the HTTP submit envelope.
type ServeBackend struct {
	S *serve.Scheduler
}

// RunPoint submits the point as a job (retrying briefly past a full
// queue), follows its iteration log, and packages the result with a
// checkpoint for the next point.
func (b ServeBackend) RunPoint(ctx context.Context, cfg core.RunConfig, warm *core.Checkpoint, onIter func(n int)) (*PointOutcome, error) {
	var j *serve.Job
	for {
		var err error
		j, err = b.S.SubmitFrom(cfg, warm)
		if err == nil {
			break
		}
		if !errors.Is(err, serve.ErrQueueFull) {
			return nil, err
		}
		select {
		case <-ctx.Done():
			return nil, ctx.Err()
		case <-time.After(50 * time.Millisecond):
		}
	}
	for i := 0; ; i++ {
		if _, ok := j.WaitIter(ctx, i); !ok {
			break
		}
		if onIter != nil {
			onIter(i + 1)
		}
	}
	if ctx.Err() != nil {
		_, _ = b.S.Cancel(j.ID())
		return nil, ctx.Err()
	}
	res, ok := j.Result()
	if !ok {
		st := j.Status()
		return nil, fmt.Errorf("campaign: point job %s %s: %s", j.ID(), st.State, st.Error)
	}
	return &PointOutcome{
		JobID:       j.ID(),
		Iterations:  res.Iterations,
		Converged:   res.Converged,
		Residuals:   res.Residuals,
		Obs:         res.Obs,
		Checkpoint:  core.CheckpointOf(cfg.Device, res),
		WarmStarted: warm != nil,
	}, nil
}

// FrontBackend runs points through the sharded front tier. The explicit
// warm checkpoint is ignored: the front's content-addressed family cache
// already seeds each point from the nearest finished bias point, so
// sequential ladder execution warm-starts for free — WarmStarted is read
// back from the front's own report.
type FrontBackend struct {
	F *front.Front
	// Tenant is the admission identity campaign points are submitted
	// under ("" means anonymous).
	Tenant string
}

// RunPoint submits to the front, follows the shared iteration log, and
// reads the result document back. No checkpoint is returned — the front
// caches it internally.
func (b FrontBackend) RunPoint(ctx context.Context, cfg core.RunConfig, warm *core.Checkpoint, onIter func(n int)) (*PointOutcome, error) {
	st, err := b.F.Submit(b.Tenant, cfg)
	if err != nil {
		return nil, err
	}
	for i := 0; ; i++ {
		if _, ok := b.F.WaitIter(ctx, st.ID, i); !ok {
			break
		}
		if onIter != nil {
			onIter(i + 1)
		}
	}
	if ctx.Err() != nil {
		_, _ = b.F.Cancel(st.ID)
		return nil, ctx.Err()
	}
	doc, _, err := b.F.Result(st.ID)
	if err != nil {
		return nil, err
	}
	warmStarted := false
	if cur, ok := b.F.Get(st.ID); ok {
		warmStarted = cur.WarmStartBias != nil
	}
	return &PointOutcome{
		JobID:       st.ID,
		Iterations:  doc.Iterations,
		Converged:   doc.Converged,
		Residuals:   doc.Residuals,
		Obs:         doc.Observables,
		WarmStarted: warmStarted,
	}, nil
}
