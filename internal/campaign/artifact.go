package campaign

import (
	"bytes"
	"encoding/json"
	"fmt"
	"math"
)

// Artifacts: a succeeded campaign's results rendered for consumption —
// CSV for plotting, JSON for programmatic diffing. Values print with
// %.17g so a round-trip through the artifact preserves every float64 bit
// (the acceptance bar is 1e-8 agreement against direct runs; the
// artifact itself must not be the lossy step).

// IVRow is one I–V curve point in the JSON artifact.
type IVRow struct {
	// Bias is the rung's source-drain bias [eV]; CurrentL/R the terminal
	// contact currents.
	Bias     float64 `json:"bias"`
	CurrentL float64 `json:"current_l"`
	CurrentR float64 `json:"current_r"`
	// Iterations/Converged/WarmStarted describe the run that produced it.
	Iterations  int  `json:"iterations"`
	Converged   bool `json:"converged"`
	WarmStarted bool `json:"warm_started"`
}

// TERow is one (bias, energy) sample of a T(E) spectrum.
type TERow struct {
	// Bias and Energy locate the sample; Current is the kz-summed
	// spectral current I(E) at the left contact.
	Bias    float64 `json:"bias"`
	Energy  float64 `json:"energy"`
	Current float64 `json:"current"`
	// Transmission is the effective transmission I(E)/(f_L − f_R) — the
	// Landauer reading of the spectral current, zero where the Fermi
	// window closes and the quotient would be ill-conditioned.
	Transmission float64 `json:"transmission"`
}

// ArtifactDoc is the JSON artifact body.
type ArtifactDoc struct {
	// ID and Kind identify the campaign the artifact belongs to.
	ID   string `json:"id"`
	Kind Kind   `json:"kind"`
	// IV holds the curve for kind "iv"; TE the spectra for kind "te".
	IV []IVRow `json:"iv,omitempty"`
	TE []TERow `json:"te,omitempty"`
}

// fermi is the Fermi–Dirac occupation at energy e for chemical potential
// mu and thermal energy kt.
func fermi(e, mu, kt float64) float64 {
	return 1 / (1 + math.Exp((e-mu)/kt))
}

// Artifact assembles the campaign's artifact document. It is only
// available once the campaign has succeeded — a partial curve would be
// indistinguishable from a complete one downstream.
func (c *Campaign) Artifact() (*ArtifactDoc, error) {
	c.mu.Lock()
	defer c.mu.Unlock()
	if c.state != StateSucceeded {
		return nil, fmt.Errorf("campaign: %s has no artifact (state %s)", c.id, c.state)
	}
	doc := &ArtifactDoc{ID: c.id, Kind: c.req.Kind}
	switch c.req.Kind {
	case IV:
		for i := range c.points {
			p, out := &c.points[i], c.outcomes[i]
			doc.IV = append(doc.IV, IVRow{
				Bias:        p.Bias,
				CurrentL:    out.Obs.CurrentL,
				CurrentR:    out.Obs.CurrentR,
				Iterations:  out.Iterations,
				Converged:   out.Converged,
				WarmStarted: out.WarmStarted,
			})
		}
	case TE:
		grid := c.req.Config.Device.Grid()
		for i := range c.points {
			p, out := &c.points[i], c.outcomes[i]
			for e, cur := range out.Obs.CurrentPerEnergy {
				en := grid.Energy(e)
				// The Fermi window f_L − f_R at this energy; outside it
				// the spectral current vanishes and T = I/(f_L−f_R)
				// would divide ~0 by ~0.
				win := fermi(en, p.Bias/2, c.req.Config.KT) - fermi(en, -p.Bias/2, c.req.Config.KT)
				t := 0.0
				if math.Abs(win) > 1e-12 {
					t = cur / win
				}
				doc.TE = append(doc.TE, TERow{Bias: p.Bias, Energy: en, Current: cur, Transmission: t})
			}
		}
	}
	return doc, nil
}

// CSV renders the artifact as a CSV table:
//
//	iv: bias,current_l,current_r,iterations,converged,warm_started
//	te: bias,energy,current,transmission
func (c *Campaign) CSV() ([]byte, error) {
	doc, err := c.Artifact()
	if err != nil {
		return nil, err
	}
	var buf bytes.Buffer
	switch doc.Kind {
	case IV:
		buf.WriteString("bias,current_l,current_r,iterations,converged,warm_started\n")
		for _, r := range doc.IV {
			fmt.Fprintf(&buf, "%.17g,%.17g,%.17g,%d,%t,%t\n",
				r.Bias, r.CurrentL, r.CurrentR, r.Iterations, r.Converged, r.WarmStarted)
		}
	case TE:
		buf.WriteString("bias,energy,current,transmission\n")
		for _, r := range doc.TE {
			fmt.Fprintf(&buf, "%.17g,%.17g,%.17g,%.17g\n", r.Bias, r.Energy, r.Current, r.Transmission)
		}
	}
	return buf.Bytes(), nil
}

// JSON renders the artifact as indented JSON.
func (c *Campaign) JSON() ([]byte, error) {
	doc, err := c.Artifact()
	if err != nil {
		return nil, err
	}
	out, err := json.MarshalIndent(doc, "", "  ")
	if err != nil {
		return nil, err
	}
	return append(out, '\n'), nil
}
