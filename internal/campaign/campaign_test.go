package campaign

import (
	"context"
	"math"
	"strconv"
	"strings"
	"testing"
	"time"

	"negfsim/internal/core"
	"negfsim/internal/device"
	"negfsim/internal/obs"
)

func init() { obs.Enable() }

// cntConfig is the campaign test workload: a small semiconducting
// carbon-nanotube device in the bias-sweep regime warm starts target —
// Anderson mixing at a tight tolerance, where the converged Σ of the
// previous bias point is a measurably better Born seed than zero.
func cntConfig(maxIter int) core.RunConfig {
	cfg := core.DefaultRunConfig()
	cfg.Device = device.WrapSpec(device.CNT{
		N: 7, M: 0, Cols: 6, Subbands: 2,
		NE: 10, Nw: 3, NB: 3, Bnum: 3, Nkz: 1,
	})
	cfg.MaxIter = maxIter
	cfg.Mixer = "anderson"
	cfg.Mixing = 0.8
	cfg.Tol = 1e-9
	return cfg
}

// ivRequest is the canonical 5-point I–V ladder over the CNT device.
func ivRequest() Request {
	return Request{
		Kind:       IV,
		Config:     cntConfig(40),
		BiasStart:  0.30,
		BiasStop:   0.50,
		BiasPoints: 5,
	}
}

// directRuns executes every ladder point of req as an independent cold
// in-process run — the point-by-point baseline campaigns are compared
// against.
func directRuns(t *testing.T, req Request) []*core.Result {
	t.Helper()
	out := make([]*core.Result, 0, len(req.Ladder()))
	for _, bias := range req.Ladder() {
		cfg := req.pointConfig(bias)
		sim, err := cfg.NewSimulator()
		if err != nil {
			t.Fatal(err)
		}
		res, err := sim.Run()
		if err != nil {
			t.Fatal(err)
		}
		if !res.Converged {
			t.Fatalf("direct run at bias %g did not converge in %d iterations", bias, res.Iterations)
		}
		out = append(out, res)
	}
	return out
}

// relDiff is the acceptance metric: |a−b| ≤ tol·max(1, |a|, |b|).
func relDiff(a, b float64) float64 {
	return math.Abs(a-b) / math.Max(1, math.Max(math.Abs(a), math.Abs(b)))
}

func TestRequestValidate(t *testing.T) {
	cases := []struct {
		name string
		mut  func(*Request)
		frag string // "" means valid
	}{
		{"valid ranged", func(r *Request) {}, ""},
		{"valid explicit", func(r *Request) {
			r.BiasStart, r.BiasStop, r.BiasPoints = 0, 0, 0
			r.Biases = []float64{0.1, 0.2}
		}, ""},
		{"te without ladder", func(r *Request) {
			r.Kind = TE
			r.BiasStart, r.BiasStop, r.BiasPoints = 0, 0, 0
		}, ""},
		{"bad kind", func(r *Request) { r.Kind = "sweep" }, "kind"},
		{"iv without ladder", func(r *Request) {
			r.BiasStart, r.BiasStop, r.BiasPoints = 0, 0, 0
		}, "iv needs a ladder"},
		{"both spellings", func(r *Request) { r.Biases = []float64{0.1} }, "mutually exclusive"},
		{"one point", func(r *Request) { r.BiasPoints = 1 }, "bias_points"},
		{"degenerate range", func(r *Request) { r.BiasStop = r.BiasStart }, "bias_stop"},
		{"dist rejected", func(r *Request) { r.Config.Dist = "2x2" }, "plain serial"},
		{"space rejected", func(r *Request) { r.Config.Space = 2 }, "plain serial"},
		{"gate rejected", func(r *Request) {
			r.Config.Gate = &core.GateSpec{MaxOuter: 3, Damping: 0.5}
		}, "plain serial"},
		{"config validated", func(r *Request) { r.Config.MaxIter = 0 }, "campaign: config:"},
	}
	for _, c := range cases {
		req := ivRequest()
		c.mut(&req)
		err := req.Validate()
		if c.frag == "" {
			if err != nil {
				t.Errorf("%s: unexpected error %v", c.name, err)
			}
			continue
		}
		if err == nil {
			t.Errorf("%s: validated", c.name)
		} else if !strings.Contains(err.Error(), c.frag) {
			t.Errorf("%s: error %q does not mention %q", c.name, err, c.frag)
		}
	}
}

func TestRequestLadder(t *testing.T) {
	req := ivRequest()
	ladder := req.Ladder()
	want := []float64{0.30, 0.35, 0.40, 0.45, 0.50}
	if len(ladder) != len(want) {
		t.Fatalf("ladder has %d points, want %d", len(ladder), len(want))
	}
	for i := range want {
		if math.Abs(ladder[i]-want[i]) > 1e-15 {
			t.Fatalf("ladder[%d] = %g, want %g", i, ladder[i], want[i])
		}
	}

	req.BiasStart, req.BiasStop, req.BiasPoints = 0, 0, 0
	req.Biases = []float64{-0.1, 0.2}
	explicit := req.Ladder()
	explicit[0] = 99 // the expansion must be a copy
	if req.Biases[0] != -0.1 {
		t.Fatal("Ladder aliases the request's Biases slice")
	}

	te := Request{Kind: TE, Config: cntConfig(40)}
	te.Config.Bias = 0.37
	if l := te.Ladder(); len(l) != 1 || l[0] != 0.37 {
		t.Fatalf("te default ladder = %v, want the config bias alone", l)
	}
}

// TestWarmLadderLocal is the offline acceptance path: a warm-chained I–V
// campaign over the CNT device matches point-by-point direct runs to
// 1e-8 while converging in fewer Born iterations per warm point.
func TestWarmLadderLocal(t *testing.T) {
	req := ivRequest()
	direct := directRuns(t, req)

	m := NewManager(LocalBackend{}, 0)
	defer m.Close(context.Background())
	c, err := m.Start(req)
	if err != nil {
		t.Fatal(err)
	}
	state, err := c.Wait(context.Background())
	if err != nil {
		t.Fatal(err)
	}
	if state != StateSucceeded {
		t.Fatalf("campaign finished %s: %s", state, c.Status().Error)
	}

	st := c.Status()
	if len(st.Points) != 5 {
		t.Fatalf("campaign has %d points, want 5", len(st.Points))
	}
	warmSaved := 0
	for i, p := range st.Points {
		if p.State != PointDone || !p.Converged {
			t.Fatalf("point %d state %s converged=%t", i, p.State, p.Converged)
		}
		if got, want := p.WarmStarted, i > 0; got != want {
			t.Fatalf("point %d warm_started = %t, want %t", i, got, want)
		}
		if d := relDiff(p.CurrentL, direct[i].Obs.CurrentL); d > 1e-8 {
			t.Errorf("point %d current_l differs from direct run by %g", i, d)
		}
		if d := relDiff(p.CurrentR, direct[i].Obs.CurrentR); d > 1e-8 {
			t.Errorf("point %d current_r differs from direct run by %g", i, d)
		}
		if i > 0 && p.Iterations < direct[i].Iterations {
			warmSaved++
		}
		if i > 0 && p.Iterations > direct[i].Iterations {
			t.Errorf("warm point %d took %d iterations, cold direct run took %d — warm start hurt",
				i, p.Iterations, direct[i].Iterations)
		}
	}
	if warmSaved == 0 {
		t.Error("no warm point converged in fewer iterations than its cold direct run")
	}
	t.Logf("cold iterations per point: %v", []int{direct[0].Iterations, direct[1].Iterations,
		direct[2].Iterations, direct[3].Iterations, direct[4].Iterations})
	t.Logf("warm iterations per point: %v", []int{st.Points[0].Iterations, st.Points[1].Iterations,
		st.Points[2].Iterations, st.Points[3].Iterations, st.Points[4].Iterations})

	// The artifact reproduces the same numbers, in both renderings.
	doc, err := c.Artifact()
	if err != nil {
		t.Fatal(err)
	}
	if doc.Kind != IV || len(doc.IV) != 5 || len(doc.TE) != 0 {
		t.Fatalf("artifact shape: kind %s, %d iv rows, %d te rows", doc.Kind, len(doc.IV), len(doc.TE))
	}
	for i, row := range doc.IV {
		if d := relDiff(row.CurrentL, direct[i].Obs.CurrentL); d > 1e-8 {
			t.Errorf("artifact row %d current_l differs from direct run by %g", i, d)
		}
	}

	csv, err := c.CSV()
	if err != nil {
		t.Fatal(err)
	}
	lines := strings.Split(strings.TrimSpace(string(csv)), "\n")
	if lines[0] != "bias,current_l,current_r,iterations,converged,warm_started" {
		t.Fatalf("csv header %q", lines[0])
	}
	if len(lines) != 6 {
		t.Fatalf("csv has %d lines, want header + 5 rows", len(lines))
	}
	for i, line := range lines[1:] {
		fields := strings.Split(line, ",")
		if len(fields) != 6 {
			t.Fatalf("csv row %d has %d fields", i, len(fields))
		}
		// %.17g round-trips float64 exactly: the CSV must carry the very
		// bits the artifact document holds.
		cl, err := strconv.ParseFloat(fields[1], 64)
		if err != nil || cl != doc.IV[i].CurrentL {
			t.Fatalf("csv row %d current_l %q does not round-trip to %g", i, fields[1], doc.IV[i].CurrentL)
		}
	}
}

// TestTESpectrumArtifact: a TE campaign without a ladder is one spectrum
// at the config's own bias, with the effective transmission derived from
// the spectral current over the Fermi window.
func TestTESpectrumArtifact(t *testing.T) {
	req := Request{Kind: TE, Config: cntConfig(40)}
	req.Config.Bias = 0.4

	sim, err := req.Config.NewSimulator()
	if err != nil {
		t.Fatal(err)
	}
	res, err := sim.Run()
	if err != nil {
		t.Fatal(err)
	}

	m := NewManager(LocalBackend{}, 0)
	defer m.Close(context.Background())
	c, err := m.Start(req)
	if err != nil {
		t.Fatal(err)
	}
	if state, _ := c.Wait(context.Background()); state != StateSucceeded {
		t.Fatalf("campaign finished %s: %s", state, c.Status().Error)
	}
	doc, err := c.Artifact()
	if err != nil {
		t.Fatal(err)
	}
	grid := req.Config.Device.Grid()
	if doc.Kind != TE || len(doc.TE) != grid.NE {
		t.Fatalf("artifact shape: kind %s, %d te rows, want %d", doc.Kind, len(doc.TE), grid.NE)
	}
	for e, row := range doc.TE {
		if row.Bias != 0.4 {
			t.Fatalf("row %d bias %g", e, row.Bias)
		}
		if row.Energy != grid.Energy(e) {
			t.Fatalf("row %d energy %g, want grid point %g", e, row.Energy, grid.Energy(e))
		}
		if d := relDiff(row.Current, res.Obs.CurrentPerEnergy[e]); d > 1e-8 {
			t.Errorf("row %d spectral current differs from direct run by %g", e, d)
		}
		win := fermi(row.Energy, 0.2, req.Config.KT) - fermi(row.Energy, -0.2, req.Config.KT)
		if math.Abs(win) > 1e-12 {
			if want := row.Current / win; row.Transmission != want {
				t.Errorf("row %d transmission %g, want I/window = %g", e, row.Transmission, want)
			}
		} else if row.Transmission != 0 {
			t.Errorf("row %d transmission %g outside the Fermi window, want 0", e, row.Transmission)
		}
	}

	csv, err := c.CSV()
	if err != nil {
		t.Fatal(err)
	}
	lines := strings.Split(strings.TrimSpace(string(csv)), "\n")
	if lines[0] != "bias,energy,current,transmission" {
		t.Fatalf("csv header %q", lines[0])
	}
	if len(lines) != grid.NE+1 {
		t.Fatalf("csv has %d lines, want header + %d rows", len(lines), grid.NE)
	}
}

// TestColdFanout: warm_start=false runs every point from zero; nothing is
// chained, so no point may claim a warm start, and results still match
// the direct baselines.
func TestColdFanout(t *testing.T) {
	req := ivRequest()
	f := false
	req.WarmStart = &f
	req.BiasPoints = 3
	direct := directRuns(t, req)

	m := NewManager(LocalBackend{}, 2)
	defer m.Close(context.Background())
	c, err := m.Start(req)
	if err != nil {
		t.Fatal(err)
	}
	if state, _ := c.Wait(context.Background()); state != StateSucceeded {
		t.Fatalf("campaign finished %s: %s", state, c.Status().Error)
	}
	for i, p := range c.Status().Points {
		if p.WarmStarted {
			t.Errorf("cold point %d claims a warm start", i)
		}
		if p.Iterations != direct[i].Iterations {
			t.Errorf("cold point %d took %d iterations, direct run %d", i, p.Iterations, direct[i].Iterations)
		}
		if d := relDiff(p.CurrentL, direct[i].Obs.CurrentL); d > 1e-8 {
			t.Errorf("cold point %d current_l differs from direct run by %g", i, d)
		}
	}
}

// TestCancelAndClose: cancelling a running campaign stops the active
// point and never starts the pending tail; a closed manager rejects new
// campaigns.
func TestCancelAndClose(t *testing.T) {
	req := ivRequest()
	req.Config.MaxIter = 100_000
	req.Config.Tol = 1e-300 // unreachable: runs until cancelled

	m := NewManager(LocalBackend{}, 0)
	c, err := m.Start(req)
	if err != nil {
		t.Fatal(err)
	}
	// Let the first point actually start before cancelling.
	deadline := time.Now().Add(30 * time.Second)
	for c.Status().Points[0].State == PointPending {
		if time.Now().After(deadline) {
			t.Fatal("first point never started")
		}
		time.Sleep(2 * time.Millisecond)
	}
	if _, err := m.Cancel(c.ID()); err != nil {
		t.Fatal(err)
	}
	state, err := c.Wait(context.Background())
	if err != nil {
		t.Fatal(err)
	}
	if state != StateCancelled {
		t.Fatalf("cancelled campaign finished %s", state)
	}
	for i, p := range c.Status().Points {
		if p.State != PointCancelled {
			t.Errorf("point %d state %s after cancel", i, p.State)
		}
	}
	if _, err := c.Artifact(); err == nil {
		t.Error("cancelled campaign served an artifact")
	}

	if err := m.Close(context.Background()); err != nil {
		t.Fatal(err)
	}
	if _, err := m.Start(ivRequest()); err != ErrClosed {
		t.Fatalf("Start after Close = %v, want ErrClosed", err)
	}
}
