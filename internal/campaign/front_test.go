package campaign

import (
	"context"
	"net/http/httptest"
	"testing"
	"time"

	"negfsim/internal/front"
	"negfsim/internal/serve"
)

// TestCampaignFrontBackend runs a warm ladder through the sharded front
// tier. The campaign never ships checkpoints here — the front's
// content-addressed family cache seeds each sequential point from the
// previous bias on its own, and the campaign reads the warm-start flag
// back from the front's report.
func TestCampaignFrontBackend(t *testing.T) {
	sched := serve.New(serve.Config{MaxConcurrent: 2, QueueDepth: 16})
	worker := httptest.NewServer(serve.NewAPI(sched))
	f := front.New(front.Config{
		Workers:        []string{worker.URL},
		HealthInterval: 50 * time.Millisecond,
		HealthTimeout:  200 * time.Millisecond,
	})
	m := NewManager(FrontBackend{F: f, Tenant: "campaign"}, 2)
	defer func() {
		ctx, cancel := context.WithTimeout(context.Background(), 30*time.Second)
		defer cancel()
		_ = m.Close(ctx)
		_ = f.Close(ctx)
		worker.Close()
		_ = sched.Close(ctx)
	}()

	req := ivRequest()
	req.BiasPoints = 3
	direct := directRuns(t, req)

	c, err := m.Start(req)
	if err != nil {
		t.Fatal(err)
	}
	state, err := c.Wait(context.Background())
	if err != nil {
		t.Fatal(err)
	}
	if state != StateSucceeded {
		t.Fatalf("campaign finished %s: %s", state, c.Status().Error)
	}
	for i, p := range c.Status().Points {
		if p.State != PointDone || !p.Converged {
			t.Fatalf("point %d state %s converged=%t: %s", i, p.State, p.Converged, p.Error)
		}
		if got, want := p.WarmStarted, i > 0; got != want {
			t.Fatalf("point %d warm_started = %t, want %t (front family cache)", i, got, want)
		}
		if i > 0 && p.Iterations > direct[i].Iterations {
			t.Errorf("warm point %d took %d iterations, cold direct run took %d",
				i, p.Iterations, direct[i].Iterations)
		}
		if d := relDiff(p.CurrentL, direct[i].Obs.CurrentL); d > 1e-8 {
			t.Errorf("point %d current_l differs from direct run by %g", i, d)
		}
	}
}
