package campaign

import (
	"bytes"
	"context"
	"encoding/json"
	"io"
	"net/http"
	"net/http/httptest"
	"strings"
	"testing"
	"time"

	"negfsim/internal/serve"
)

// newCampaignServer wires the full service stack a qtsimd process runs:
// a scheduler, a campaign manager fanning points into it, and the HTTP
// surface. Cleanup drains everything.
func newCampaignServer(t *testing.T) *httptest.Server {
	t.Helper()
	sched := serve.New(serve.Config{MaxConcurrent: 2, QueueDepth: 16})
	m := NewManager(ServeBackend{S: sched}, 2)
	srv := httptest.NewServer(NewAPI(m).Handler())
	t.Cleanup(func() {
		srv.Close()
		ctx, cancel := context.WithTimeout(context.Background(), 30*time.Second)
		defer cancel()
		_ = m.Close(ctx)
		_ = sched.Close(ctx)
	})
	return srv
}

// postCampaign submits a request and decodes the accepted status.
func postCampaign(t *testing.T, base string, req Request) (int, StatusDoc) {
	t.Helper()
	body, err := json.Marshal(req)
	if err != nil {
		t.Fatal(err)
	}
	resp, err := http.Post(base+"/v1/campaigns", "application/json", bytes.NewReader(body))
	if err != nil {
		t.Fatal(err)
	}
	defer resp.Body.Close()
	var st StatusDoc
	if resp.StatusCode == http.StatusAccepted {
		if err := json.NewDecoder(resp.Body).Decode(&st); err != nil {
			t.Fatal(err)
		}
	}
	return resp.StatusCode, st
}

// getStatus fetches one campaign's status document.
func getStatus(t *testing.T, base, id string) StatusDoc {
	t.Helper()
	resp, err := http.Get(base + "/v1/campaigns/" + id)
	if err != nil {
		t.Fatal(err)
	}
	defer resp.Body.Close()
	if resp.StatusCode != http.StatusOK {
		t.Fatalf("status %s: HTTP %d", id, resp.StatusCode)
	}
	var st StatusDoc
	if err := json.NewDecoder(resp.Body).Decode(&st); err != nil {
		t.Fatal(err)
	}
	return st
}

// waitCampaign polls the status endpoint until the campaign is terminal.
func waitCampaign(t *testing.T, base, id string, timeout time.Duration) StatusDoc {
	t.Helper()
	deadline := time.Now().Add(timeout)
	for {
		st := getStatus(t, base, id)
		if st.State != StateRunning {
			return st
		}
		if time.Now().After(deadline) {
			t.Fatalf("campaign %s still %s after %v", id, st.State, timeout)
		}
		time.Sleep(5 * time.Millisecond)
	}
}

// TestCampaignHTTPEndToEnd is the live acceptance path: a 5-point I–V
// campaign over the CNT device submitted to the service, executed through
// the scheduler with warm-started ladder points, and read back as CSV and
// JSON artifacts that match point-by-point direct runs to 1e-8.
func TestCampaignHTTPEndToEnd(t *testing.T) {
	srv := newCampaignServer(t)
	req := ivRequest()
	direct := directRuns(t, req)

	code, accepted := postCampaign(t, srv.URL, req)
	if code != http.StatusAccepted {
		t.Fatalf("submit: HTTP %d", code)
	}
	if accepted.State != StateRunning || len(accepted.Points) != 5 || !accepted.WarmStart {
		t.Fatalf("accepted doc: state %s, %d points, warm %t", accepted.State, len(accepted.Points), accepted.WarmStart)
	}

	fin := waitCampaign(t, srv.URL, accepted.ID, 120*time.Second)
	if fin.State != StateSucceeded {
		t.Fatalf("campaign finished %s: %s", fin.State, fin.Error)
	}
	if fin.Finished == nil {
		t.Fatal("succeeded campaign has no finished timestamp")
	}
	warmSaved := 0
	for i, p := range fin.Points {
		if p.State != PointDone || !p.Converged {
			t.Fatalf("point %d state %s converged=%t: %s", i, p.State, p.Converged, p.Error)
		}
		if p.JobID == "" {
			t.Errorf("point %d has no scheduler job id", i)
		}
		if got, want := p.WarmStarted, i > 0; got != want {
			t.Fatalf("point %d warm_started = %t, want %t", i, got, want)
		}
		if i > 0 && p.Iterations < direct[i].Iterations {
			warmSaved++
		}
	}
	if warmSaved == 0 {
		t.Error("no warm point converged in fewer iterations than its cold direct run")
	}

	// JSON artifact: the curve agrees with the direct baselines to 1e-8.
	resp, err := http.Get(srv.URL + "/v1/campaigns/" + accepted.ID + "/artifact.json")
	if err != nil {
		t.Fatal(err)
	}
	if resp.StatusCode != http.StatusOK || resp.Header.Get("Content-Type") != "application/json" {
		t.Fatalf("artifact.json: HTTP %d %s", resp.StatusCode, resp.Header.Get("Content-Type"))
	}
	var doc ArtifactDoc
	err = json.NewDecoder(resp.Body).Decode(&doc)
	resp.Body.Close()
	if err != nil {
		t.Fatal(err)
	}
	if doc.ID != accepted.ID || doc.Kind != IV || len(doc.IV) != 5 {
		t.Fatalf("artifact doc: id %s kind %s rows %d", doc.ID, doc.Kind, len(doc.IV))
	}
	for i, row := range doc.IV {
		if d := relDiff(row.CurrentL, direct[i].Obs.CurrentL); d > 1e-8 {
			t.Errorf("artifact row %d current_l differs from direct run by %g", i, d)
		}
		if d := relDiff(row.CurrentR, direct[i].Obs.CurrentR); d > 1e-8 {
			t.Errorf("artifact row %d current_r differs from direct run by %g", i, d)
		}
	}

	// CSV artifact: same rows, plotting-ready.
	resp, err = http.Get(srv.URL + "/v1/campaigns/" + accepted.ID + "/artifact.csv")
	if err != nil {
		t.Fatal(err)
	}
	csv, err := io.ReadAll(resp.Body)
	resp.Body.Close()
	if err != nil {
		t.Fatal(err)
	}
	if resp.StatusCode != http.StatusOK || resp.Header.Get("Content-Type") != "text/csv" {
		t.Fatalf("artifact.csv: HTTP %d %s", resp.StatusCode, resp.Header.Get("Content-Type"))
	}
	lines := strings.Split(strings.TrimSpace(string(csv)), "\n")
	if len(lines) != 6 || lines[0] != "bias,current_l,current_r,iterations,converged,warm_started" {
		t.Fatalf("artifact.csv: %d lines, header %q", len(lines), lines[0])
	}

	// The campaign list contains it.
	resp, err = http.Get(srv.URL + "/v1/campaigns")
	if err != nil {
		t.Fatal(err)
	}
	var list []StatusDoc
	err = json.NewDecoder(resp.Body).Decode(&list)
	resp.Body.Close()
	if err != nil {
		t.Fatal(err)
	}
	if len(list) != 1 || list[0].ID != accepted.ID {
		t.Fatalf("campaign list = %+v", list)
	}
}

// TestCampaignHTTPErrors covers the failure surface: malformed and
// invalid submissions, unknown ids, artifacts of unfinished campaigns,
// and cancellation over HTTP.
func TestCampaignHTTPErrors(t *testing.T) {
	srv := newCampaignServer(t)

	resp, err := http.Post(srv.URL+"/v1/campaigns", "application/json", strings.NewReader(`{"kind": [}`))
	if err != nil {
		t.Fatal(err)
	}
	resp.Body.Close()
	if resp.StatusCode != http.StatusBadRequest {
		t.Fatalf("malformed body: HTTP %d, want 400", resp.StatusCode)
	}

	bad := ivRequest()
	bad.Config.Dist = "2x2"
	if code, _ := postCampaign(t, srv.URL, bad); code != http.StatusBadRequest {
		t.Fatalf("dist campaign: HTTP %d, want 400", code)
	}

	for _, path := range []string{"/v1/campaigns/nope", "/v1/campaigns/nope/artifact.csv"} {
		resp, err := http.Get(srv.URL + path)
		if err != nil {
			t.Fatal(err)
		}
		resp.Body.Close()
		if resp.StatusCode != http.StatusNotFound {
			t.Fatalf("GET %s: HTTP %d, want 404", path, resp.StatusCode)
		}
	}

	// A running campaign has no artifact yet (409), and cancel stops it.
	long := ivRequest()
	long.Config.MaxIter = 100_000
	long.Config.Tol = 1e-300
	code, st := postCampaign(t, srv.URL, long)
	if code != http.StatusAccepted {
		t.Fatalf("submit long campaign: HTTP %d", code)
	}
	resp, err = http.Get(srv.URL + "/v1/campaigns/" + st.ID + "/artifact.json")
	if err != nil {
		t.Fatal(err)
	}
	resp.Body.Close()
	if resp.StatusCode != http.StatusConflict {
		t.Fatalf("artifact of running campaign: HTTP %d, want 409", resp.StatusCode)
	}
	resp, err = http.Post(srv.URL+"/v1/campaigns/"+st.ID+"/cancel", "application/json", nil)
	if err != nil {
		t.Fatal(err)
	}
	resp.Body.Close()
	if resp.StatusCode != http.StatusOK {
		t.Fatalf("cancel: HTTP %d", resp.StatusCode)
	}
	if fin := waitCampaign(t, srv.URL, st.ID, 60*time.Second); fin.State != StateCancelled {
		t.Fatalf("cancelled campaign finished %s", fin.State)
	}
}
