// Package comm models and simulates the communication of the SSE phase:
// the closed-form volume formulas of §4.1 (regenerating Tables 4 and 5),
// the exhaustive tile-size search for the communication-avoiding
// decomposition, and an in-process simulated cluster with byte-accounted
// collectives used to execute the real exchange patterns at reduced scale.
package comm

import (
	"math"

	"negfsim/internal/device"
)

// bytesPerComplex is the wire size of one complex128 element.
const bytesPerComplex = 16

// TiB converts bytes to tebibytes (the unit of Tables 4 and 5).
func TiB(bytes float64) float64 { return bytes / (1 << 40) }

// OMENVolumePerProcess returns the bytes one process receives/sends in
// OMEN's original NqzNω-round SSE exchange (§4.1):
//
//   - electrons: 64·Nkz·(NE/P)·Nqz·Nω·NA·Norb² bytes of G^≷ received
//     (16 bytes per element × 2 tensor types × 2 energy shifts E±ℏω);
//   - phonons: 64·Nqz·Nω·NA·NB·N3D² bytes for the D^≷ broadcast and the
//     Π^≷ reduction (16 bytes × {D,Π} × {<,>}).
func OMENVolumePerProcess(p device.Params, procs int) (electron, phonon float64) {
	electron = 64 * float64(p.Nkz) * float64(p.NE) / float64(procs) *
		float64(p.Nqz) * float64(p.Nw) * float64(p.NA) * sq(p.Norb)
	phonon = 64 * float64(p.Nqz) * float64(p.Nw) * float64(p.NA) * float64(p.NB) * sq(p.N3D)
	return electron, phonon
}

// OMENVolume returns the total bytes moved by OMEN's SSE exchange across
// all processes. Evaluated at the Table 4/5 configurations this reproduces
// the paper's printed numbers (e.g. 32.11 TiB at Nkz=3, P=768).
func OMENVolume(p device.Params, procs int) float64 {
	e, ph := OMENVolumePerProcess(p, procs)
	return float64(procs) * (e + ph)
}

// DaCeVolumePerProcess returns the bytes one process contributes to the
// all-to-all exchanges of the communication-avoiding decomposition with TE
// energy partitions and TA atom partitions (P = TE·TA):
//
//   - electrons: 64·Nkz·(NE/TE + 2Nω)·(NA/TA + NB)·Norb² for G^≷ and Σ^≷;
//   - phonons:   64·Nqz·Nω·(NA/TA + NB)·NB·N3D² for D^≷ and Π^≷.
//
// The +2Nω and +NB terms are the halo regions in energy (the E±ℏω window)
// and in atoms (the f(a, b) neighborhood, propagated via the §4.1
// indirection model).
func DaCeVolumePerProcess(p device.Params, te, ta int) (electron, phonon float64) {
	atomHalo := float64(p.NA)/float64(ta) + float64(p.NB)
	electron = 64 * float64(p.Nkz) * (float64(p.NE)/float64(te) + 2*float64(p.Nw)) *
		atomHalo * sq(p.Norb)
	phonon = 64 * float64(p.Nqz) * float64(p.Nw) * atomHalo * float64(p.NB) * sq(p.N3D)
	return electron, phonon
}

// DaCeVolume returns the total bytes of the communication-avoiding SSE
// exchange for a TE×TA decomposition.
func DaCeVolume(p device.Params, te, ta int) float64 {
	e, ph := DaCeVolumePerProcess(p, te, ta)
	return float64(te*ta) * (e + ph)
}

func sq(n int) float64 { x := float64(n); return x * x }

// Decomposition is a (TE, TA) partitioning choice with its predicted volume.
type Decomposition struct {
	TE, TA int
	Bytes  float64
}

// SearchTiles enumerates every feasible factorization P = TE·TA (the
// exhaustive search of §4.1 — the full space is small, so it "completes in
// just a few seconds" even at paper scale; here it is microseconds) and
// returns the volume-minimizing decomposition. memLimit, if positive,
// rejects decompositions whose per-process tensor footprint exceeds it.
func SearchTiles(p device.Params, procs int, memLimit float64) (best Decomposition, feasible []Decomposition) {
	best = Decomposition{Bytes: math.Inf(1)}
	for te := 1; te <= procs; te++ {
		if procs%te != 0 {
			continue
		}
		ta := procs / te
		if te > p.NE || ta > p.NA {
			continue
		}
		if memLimit > 0 && PerProcessMemory(p, te, ta) > memLimit {
			continue
		}
		d := Decomposition{TE: te, TA: ta, Bytes: DaCeVolume(p, te, ta)}
		feasible = append(feasible, d)
		if d.Bytes < best.Bytes {
			best = d
		}
	}
	return best, feasible
}

// PerProcessMemory estimates the bytes of Green's-function and self-energy
// storage one process holds under a TE×TA decomposition, including the
// energy and atom halos.
func PerProcessMemory(p device.Params, te, ta int) float64 {
	atoms := float64(p.NA)/float64(ta) + float64(p.NB)
	energies := float64(p.NE)/float64(te) + 2*float64(p.Nw)
	electron := 4 * bytesPerComplex * float64(p.Nkz) * energies * atoms * sq(p.Norb) // G≷ + Σ≷
	phonon := 4 * bytesPerComplex * float64(p.Nqz) * float64(p.Nw) * atoms *
		float64(p.NB+1) * sq(p.N3D) // D≷ + Π≷
	return electron + phonon
}

// Table4Row evaluates one weak-scaling row of Table 4: the paper grows the
// process count with Nkz (P = 256·Nkz, i.e. TE = Nkz, TA = 256) and reports
// total volume in TiB for both schemes.
func Table4Row(nkz int) (procs int, omenTiB, daceTiB float64) {
	p := device.Paper4864(nkz)
	procs = 256 * nkz
	return procs, TiB(OMENVolume(p, procs)), TiB(DaCeVolume(p, nkz, 256))
}

// Table5Row evaluates one strong-scaling row of Table 5: Nkz = 7 fixed,
// TE = 7 and TA = P/7.
func Table5Row(procs int) (omenTiB, daceTiB float64) {
	p := device.Paper4864(7)
	return TiB(OMENVolume(p, procs)), TiB(DaCeVolume(p, 7, procs/7))
}
