package comm

import (
	"context"
	"errors"
	"fmt"
	"net"
	"strings"
	"sync"
	"testing"
	"time"

	"negfsim/internal/device"
	"negfsim/internal/transport"
)

// Transport conformance suite: every behavioural guarantee the cluster
// depends on — per-link FIFO, cancellation, the deadline backstop, dead-peer
// detection and exact byte accounting — exercised identically against the
// in-process transport and real TCP loopback. A fabric is "a cluster of n
// ranks": one Cluster for inproc, n single-rank TCP peer instances (each
// hosting one rank, exactly like n OS processes would) for tcp.

// fabric is one instantiation of an n-rank cluster over some transport.
type fabric struct {
	clusters []*Cluster // 1 entry for inproc (hosting all ranks); n for tcp
}

// conformanceTransports enumerates the fabrics under test. Each make call
// builds a fresh fabric (a failed cluster is not reusable) bound to ctx.
var conformanceTransports = []struct {
	name string
	make func(t *testing.T, ctx context.Context, n int) *fabric
}{
	{"inproc", func(t *testing.T, ctx context.Context, n int) *fabric {
		c := NewClusterCtx(ctx, n)
		t.Cleanup(func() { c.Close() })
		return &fabric{clusters: []*Cluster{c}}
	}},
	{"tcp", func(t *testing.T, ctx context.Context, n int) *fabric {
		t.Helper()
		addrs := make([]string, n)
		lns := make([]net.Listener, n)
		for i := range addrs {
			ln, err := net.Listen("tcp", "127.0.0.1:0")
			if err != nil {
				t.Fatal(err)
			}
			lns[i], addrs[i] = ln, ln.Addr().String()
		}
		f := &fabric{clusters: make([]*Cluster, n)}
		for r := 0; r < n; r++ {
			cl, err := NewClusterTCPWith(ctx, r, addrs, transport.TCPConfig{
				Listener:      lns[r],
				DialTimeout:   2 * time.Second,
				RetryInterval: time.Millisecond,
			})
			if err != nil {
				t.Fatal(err)
			}
			f.clusters[r] = cl
		}
		t.Cleanup(func() {
			for _, c := range f.clusters {
				c.Close()
			}
		})
		return f
	}},
}

// run executes fn on every rank of the fabric concurrently — the inproc
// cluster runs all ranks itself; the tcp fabric runs each peer instance's
// single local rank — and returns the joined errors, like Cluster.Run.
func (f *fabric) run(fn func(r *Rank) error) error {
	if len(f.clusters) == 1 {
		return f.clusters[0].Run(fn)
	}
	errs := make([]error, len(f.clusters))
	var wg sync.WaitGroup
	for i, c := range f.clusters {
		wg.Add(1)
		go func(i int, c *Cluster) {
			defer wg.Done()
			errs[i] = c.Run(fn)
		}(i, c)
	}
	wg.Wait()
	return errors.Join(errs...)
}

// clusterFor returns the instance hosting rank r — the one to arm fault
// plans on or to read that rank's failure view from.
func (f *fabric) clusterFor(r int) *Cluster {
	if len(f.clusters) == 1 {
		return f.clusters[0]
	}
	return f.clusters[r]
}

// setTimeout applies the per-operation deadline to every instance.
func (f *fabric) setTimeout(d time.Duration) {
	for _, c := range f.clusters {
		c.SetTimeout(d)
	}
}

// sentBytes sums each rank's sent-byte counter as accounted by the instance
// hosting it, i.e. the cluster-wide traffic total.
func (f *fabric) sentBytes() int64 {
	var total int64
	for _, c := range f.clusters {
		for _, r := range c.LocalRanks() {
			total += c.SentBytes(r)
		}
	}
	return total
}

// recvdBytes sums each rank's received-byte counter across hosting instances.
func (f *fabric) recvdBytes() int64 {
	var total int64
	for _, c := range f.clusters {
		for _, r := range c.LocalRanks() {
			total += c.ReceivedBytes(r)
		}
	}
	return total
}

// TestConformancePerLinkOrdering has every rank stream tagged, variably
// sized messages to every other rank; each receiver must observe every
// link's messages in exactly the posted order with the posted sizes.
func TestConformancePerLinkOrdering(t *testing.T) {
	const n, msgs = 3, 32
	for _, tr := range conformanceTransports {
		t.Run(tr.name, func(t *testing.T) {
			f := tr.make(t, context.Background(), n)
			err := f.run(func(r *Rank) error {
				for seq := 0; seq < msgs; seq++ {
					for to := 0; to < n; to++ {
						if to == r.ID {
							continue
						}
						msg := make([]complex128, 1+seq%5)
						for i := range msg {
							msg[i] = complex(float64(seq), float64(r.ID))
						}
						if err := r.Send(to, msg); err != nil {
							return err
						}
					}
				}
				for from := 0; from < n; from++ {
					if from == r.ID {
						continue
					}
					for seq := 0; seq < msgs; seq++ {
						msg, err := r.Recv(from)
						if err != nil {
							return err
						}
						if len(msg) != 1+seq%5 {
							return fmt.Errorf("rank %d: link %d→%d message %d has %d elements, want %d",
								r.ID, from, r.ID, seq, len(msg), 1+seq%5)
						}
						if msg[0] != complex(float64(seq), float64(from)) {
							return fmt.Errorf("rank %d: link %d→%d delivered %v at position %d, want seq %d",
								r.ID, from, r.ID, msg[0], seq, seq)
						}
					}
				}
				return nil
			})
			if err != nil {
				t.Fatal(err)
			}
		})
	}
}

// TestConformanceCancellationUnblocks parks every rank in a Recv nobody will
// satisfy and cancels the fabric's context: all ranks must return the
// context error promptly instead of waiting out the 10s default deadline.
func TestConformanceCancellationUnblocks(t *testing.T) {
	const n = 2
	for _, tr := range conformanceTransports {
		t.Run(tr.name, func(t *testing.T) {
			ctx, cancel := context.WithCancel(context.Background())
			defer cancel()
			f := tr.make(t, ctx, n)
			time.AfterFunc(50*time.Millisecond, cancel)
			start := time.Now()
			err := f.run(func(r *Rank) error {
				_, err := r.Recv((r.ID + 1) % n)
				return err
			})
			if !errors.Is(err, context.Canceled) {
				t.Fatalf("cancelled fabric returned %v, want context.Canceled", err)
			}
			if el := time.Since(start); el > 5*time.Second {
				t.Fatalf("cancellation took %v; ranks sat out the deadline instead of unblocking", el)
			}
		})
	}
}

// TestConformanceTimeoutBackstop checks the deadline that turns silent
// failures into errors: a Recv with no matching Send must fail with a
// timeout once the (shortened) cluster deadline passes.
func TestConformanceTimeoutBackstop(t *testing.T) {
	const n = 2
	for _, tr := range conformanceTransports {
		t.Run(tr.name, func(t *testing.T) {
			f := tr.make(t, context.Background(), n)
			f.setTimeout(100 * time.Millisecond)
			err := f.run(func(r *Rank) error {
				if r.ID != 0 {
					return nil // rank 1 exits without ever sending
				}
				_, err := r.Recv(1)
				return err
			})
			if err == nil || !strings.Contains(err.Error(), "timed out") {
				t.Fatalf("orphaned Recv returned %v, want a timeout", err)
			}
		})
	}
}

// TestConformanceDeadPeerErrRankDead kills rank 1 at its first operation and
// requires the surviving rank's blocked Recv to fail with ErrRankDead — for
// tcp that is a real connection loss between peer instances, for inproc the
// shared down channel — and the survivor's cluster view to name the dead
// rank.
func TestConformanceDeadPeerErrRankDead(t *testing.T) {
	const n = 2
	for _, tr := range conformanceTransports {
		t.Run(tr.name, func(t *testing.T) {
			f := tr.make(t, context.Background(), n)
			// A generous deadline so the survivor's Recv can only unblock
			// through genuine death detection — if it unblocked via its own
			// timeout it would name *itself* dead and the assertion below
			// would be meaningless. Prompt detection is still enforced: the
			// tcp path is bounded by the 2s DialTimeout or the peer's
			// connection close, inproc by the shared down channel.
			f.setTimeout(30 * time.Second)
			f.clusterFor(1).InjectFaults(&FaultPlan{Kill: true, KillRank: 1, KillAtOp: 0})
			err := f.run(func(r *Rank) error {
				if r.ID == 1 {
					_, err := r.Recv(0) // dies here by plan
					return err
				}
				_, err := r.Recv(1) // never satisfied; must abort, not time out
				return err
			})
			if !errors.Is(err, ErrRankDead) {
				t.Fatalf("fabric with a dead peer returned %v, want ErrRankDead", err)
			}
			if got := f.clusterFor(0).DeadRank(); got != 1 {
				t.Fatalf("survivor names rank %d dead, want 1", got)
			}
		})
	}
}

// TestConformanceByteAccounting runs both §4.1 exchange patterns and
// requires the fabric's measured traffic to equal the closed-form volumes
// exactly — on tcp that means the per-instance accounting of n separate
// processes sums to the same model value the single in-process cluster
// reports, and the received totals quiesce to the sent totals.
func TestConformanceByteAccounting(t *testing.T) {
	p := device.Mini()
	const n = 2
	patterns := []struct {
		name string
		run  func(r *Rank) error
		want int64
	}{
		{"omen", func(r *Rank) error { return OMENExchangeSSE(r, p) }, ExpectedOMENExchangeBytes(p, n)},
		{"dace", func(r *Rank) error { return DaCeExchangeSSE(r, p, n, 1) }, ExpectedDaCeExchangeBytes(p, n, 1)},
	}
	for _, tr := range conformanceTransports {
		for _, pat := range patterns {
			t.Run(tr.name+"/"+pat.name, func(t *testing.T) {
				f := tr.make(t, context.Background(), n)
				if err := f.run(pat.run); err != nil {
					t.Fatal(err)
				}
				if got := f.sentBytes(); got != pat.want {
					t.Fatalf("measured %d sent bytes, §4.1 model predicts %d", got, pat.want)
				}
				if sent, recvd := f.sentBytes(), f.recvdBytes(); sent != recvd {
					t.Fatalf("fault-free run quiesced with %d bytes sent but %d received", sent, recvd)
				}
			})
		}
	}
}

// BenchmarkExchangeInproc and BenchmarkExchangeTCP time the same CA exchange
// over the two transports, giving the per-PR benchmark record an
// apples-to-apples "what does crossing real sockets cost" row.
func BenchmarkExchangeInproc(b *testing.B) {
	p := device.Mini()
	const n = 2
	for i := 0; i < b.N; i++ {
		c := NewCluster(n)
		if err := c.Run(func(r *Rank) error { return DaCeExchangeSSE(r, p, n, 1) }); err != nil {
			b.Fatal(err)
		}
	}
}

func BenchmarkExchangeTCP(b *testing.B) {
	p := device.Mini()
	const n = 2
	for i := 0; i < b.N; i++ {
		addrs := make([]string, n)
		lns := make([]net.Listener, n)
		for j := range addrs {
			ln, err := net.Listen("tcp", "127.0.0.1:0")
			if err != nil {
				b.Fatal(err)
			}
			lns[j], addrs[j] = ln, ln.Addr().String()
		}
		clusters := make([]*Cluster, n)
		for r := 0; r < n; r++ {
			cl, err := NewClusterTCPWith(context.Background(), r, addrs, transport.TCPConfig{
				Listener: lns[r], RetryInterval: time.Millisecond,
			})
			if err != nil {
				b.Fatal(err)
			}
			clusters[r] = cl
		}
		var wg sync.WaitGroup
		errs := make([]error, n)
		for r, cl := range clusters {
			wg.Add(1)
			go func(r int, cl *Cluster) {
				defer wg.Done()
				errs[r] = cl.Run(func(rk *Rank) error { return DaCeExchangeSSE(rk, p, n, 1) })
			}(r, cl)
		}
		wg.Wait()
		for _, cl := range clusters {
			cl.Close()
		}
		if err := errors.Join(errs...); err != nil {
			b.Fatal(err)
		}
	}
}
