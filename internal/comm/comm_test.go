package comm

import (
	"errors"
	"math"
	"sync/atomic"
	"testing"

	"negfsim/internal/device"
)

// --- volume models vs the paper's printed tables ------------------------------

func TestTable4WeakScalingMatchesPaper(t *testing.T) {
	// Table 4: NA=4864, NB=34, Norb=12, NE=706, Nω=70; P = 256·Nkz.
	want := []struct {
		nkz        int
		procs      int
		omen, dace float64
	}{
		{3, 768, 32.11, 0.54},
		{5, 1280, 89.18, 1.22},
		{7, 1792, 174.80, 2.17},
		{9, 2304, 288.95, 3.38},
		{11, 2816, 431.65, 4.86},
	}
	for _, row := range want {
		procs, omen, dace := Table4Row(row.nkz)
		if procs != row.procs {
			t.Fatalf("Nkz=%d: procs=%d, want %d", row.nkz, procs, row.procs)
		}
		if math.Abs(omen-row.omen) > 0.02*row.omen {
			t.Fatalf("Nkz=%d: OMEN volume %.2f TiB, paper prints %.2f", row.nkz, omen, row.omen)
		}
		if math.Abs(dace-row.dace) > 0.03*row.dace {
			t.Fatalf("Nkz=%d: DaCe volume %.2f TiB, paper prints %.2f", row.nkz, dace, row.dace)
		}
	}
}

func TestTable5StrongScalingMatchesPaper(t *testing.T) {
	// Table 5: Nkz = 7, TE = 7, TA = P/7.
	want := []struct {
		procs      int
		omen, dace float64
	}{
		{224, 108.24, 0.95},
		{448, 117.75, 1.13},
		{896, 136.76, 1.48},
		{1792, 174.80, 2.17},
		{2688, 212.84, 2.87},
	}
	for _, row := range want {
		omen, dace := Table5Row(row.procs)
		if math.Abs(omen-row.omen) > 0.02*row.omen {
			t.Fatalf("P=%d: OMEN %.2f TiB, paper prints %.2f", row.procs, omen, row.omen)
		}
		if math.Abs(dace-row.dace) > 0.03*row.dace {
			t.Fatalf("P=%d: DaCe %.2f TiB, paper prints %.2f", row.procs, dace, row.dace)
		}
	}
}

func TestDaCeEliminatesQuadraticMomentumFactor(t *testing.T) {
	// §4.1: OMEN's G^≷ volume carries Nkz·Nqz; the CA scheme only Nkz.
	// Growing Nkz (with Nqz = Nkz) must grow the ratio OMEN/DaCe linearly.
	r3 := OMENVolume(device.Paper4864(3), 768) / DaCeVolume(device.Paper4864(3), 3, 256)
	r11 := OMENVolume(device.Paper4864(11), 2816) / DaCeVolume(device.Paper4864(11), 11, 256)
	if r11 < 1.3*r3 {
		t.Fatalf("ratio should grow with Nkz: %.1f (Nkz=3) vs %.1f (Nkz=11)", r3, r11)
	}
	if r3 < 10 {
		t.Fatalf("CA scheme should win by orders of magnitude, ratio %.1f", r3)
	}
}

// --- tile search ---------------------------------------------------------------

func TestSearchTilesFindsMinimum(t *testing.T) {
	p := device.Paper4864(7)
	best, feasible := SearchTiles(p, 1792, 0)
	if len(feasible) == 0 {
		t.Fatal("no feasible decompositions")
	}
	for _, d := range feasible {
		if d.Bytes < best.Bytes {
			t.Fatalf("search missed a better decomposition %+v < %+v", d, best)
		}
	}
	if best.TE*best.TA != 1792 {
		t.Fatalf("best decomposition %d×%d does not cover 1792 processes", best.TE, best.TA)
	}
	// The optimum balances the NE/TE and NA/TA halo terms; it must beat the
	// naive all-energy split by a measurable margin.
	naive := DaCeVolume(p, 1792, 1)
	if best.Bytes >= naive {
		t.Fatal("search should beat the energy-only decomposition")
	}
}

func TestSearchTilesMemoryLimit(t *testing.T) {
	p := device.Paper4864(7)
	unlimited, _ := SearchTiles(p, 1792, 0)
	// A limit tight enough to exclude the unlimited optimum must change it.
	lim := PerProcessMemory(p, unlimited.TE, unlimited.TA) * 0.9
	constrained, feasible := SearchTiles(p, 1792, lim)
	if len(feasible) == 0 {
		t.Skip("limit excluded everything; not informative")
	}
	for _, d := range feasible {
		if PerProcessMemory(p, d.TE, d.TA) > lim {
			t.Fatal("memory limit not enforced")
		}
	}
	if constrained.TE == unlimited.TE && constrained.TA == unlimited.TA {
		t.Fatal("constrained optimum should differ from unlimited one")
	}
}

func TestPerProcessMemoryShrinksWithTiles(t *testing.T) {
	p := device.Paper4864(7)
	if PerProcessMemory(p, 7, 64) >= PerProcessMemory(p, 7, 8) {
		t.Fatal("more atom partitions must mean less memory per process")
	}
	if PerProcessMemory(p, 14, 8) >= PerProcessMemory(p, 7, 8) {
		t.Fatal("more energy partitions must mean less memory per process")
	}
}

// --- simulated cluster ---------------------------------------------------------

func TestSendRecvAndAccounting(t *testing.T) {
	c := NewCluster(2)
	err := c.Run(func(r *Rank) error {
		if r.ID == 0 {
			return r.Send(1, make([]complex128, 100))
		}
		data, err := r.Recv(0)
		if err != nil {
			return err
		}
		if len(data) != 100 {
			t.Errorf("received %d elements", len(data))
		}
		return nil
	})
	if err != nil {
		t.Fatal(err)
	}
	if got := c.TotalBytes(); got != 1600 {
		t.Fatalf("accounted %d bytes, want 1600", got)
	}
	if c.SentBytes(0) != 1600 || c.ReceivedBytes(1) != 1600 {
		t.Fatal("per-rank accounting wrong")
	}
}

func TestSelfSendUncounted(t *testing.T) {
	c := NewCluster(1)
	err := c.Run(func(r *Rank) error {
		if err := r.Send(0, make([]complex128, 50)); err != nil {
			return err
		}
		_, err := r.Recv(0)
		return err
	})
	if err != nil {
		t.Fatal(err)
	}
	if c.TotalBytes() != 0 {
		t.Fatal("self-sends must not count as communication")
	}
}

func TestBcastReduceAllreduce(t *testing.T) {
	c := NewCluster(4)
	var sum atomic.Int64
	err := c.Run(func(r *Rank) error {
		// Bcast: everyone ends with root's data.
		data := []complex128{complex(float64(r.ID), 0)}
		got, err := r.Bcast(2, data)
		if err != nil {
			return err
		}
		if got[0] != 2 {
			t.Errorf("rank %d got bcast %v", r.ID, got[0])
		}
		// Reduce: root receives the sum 0+1+2+3 = 6.
		red, err := r.Reduce(1, []complex128{complex(float64(r.ID), 0)})
		if err != nil {
			return err
		}
		if r.ID == 1 && red[0] != 6 {
			t.Errorf("reduce sum %v, want 6", red[0])
		}
		// Allreduce: everyone has the sum.
		all, err := r.Allreduce([]complex128{1})
		if err != nil {
			return err
		}
		sum.Add(int64(real(all[0])))
		return nil
	})
	if err != nil {
		t.Fatal(err)
	}
	if sum.Load() != 16 { // each of 4 ranks sees 4
		t.Fatalf("allreduce total %d, want 16", sum.Load())
	}
}

func TestAlltoallv(t *testing.T) {
	c := NewCluster(3)
	err := c.Run(func(r *Rank) error {
		send := make([][]complex128, 3)
		for to := 0; to < 3; to++ {
			send[to] = []complex128{complex(float64(10*r.ID+to), 0)}
		}
		got, err := r.Alltoallv(send)
		if err != nil {
			return err
		}
		for from := 0; from < 3; from++ {
			want := complex(float64(10*from+r.ID), 0)
			if got[from][0] != want {
				t.Errorf("rank %d from %d: %v, want %v", r.ID, from, got[from][0], want)
			}
		}
		return nil
	})
	if err != nil {
		t.Fatal(err)
	}
	// 3 ranks × 2 off-rank messages × 16 bytes.
	if got := c.TotalBytes(); got != 3*2*16 {
		t.Fatalf("alltoallv bytes = %d", got)
	}
}

func TestRecvTimeoutSurfacesDeadlock(t *testing.T) {
	c := NewCluster(2)
	c.timeout = 50 * 1e6 // 50ms
	err := c.Run(func(r *Rank) error {
		if r.ID == 1 {
			_, err := r.Recv(0) // rank 0 never sends
			return err
		}
		return nil
	})
	if err == nil {
		t.Fatal("expected timeout error")
	}
}

func TestRankFailurePropagates(t *testing.T) {
	c := NewCluster(3)
	boom := errors.New("injected rank failure")
	err := c.Run(func(r *Rank) error {
		if r.ID == 2 {
			return boom
		}
		return nil
	})
	if !errors.Is(err, boom) {
		t.Fatalf("err = %v, want injected failure", err)
	}
}

func TestRankPanicRecovered(t *testing.T) {
	c := NewCluster(2)
	err := c.Run(func(r *Rank) error {
		if r.ID == 0 {
			panic("simulated crash")
		}
		return nil
	})
	if err == nil {
		t.Fatal("panic must surface as error")
	}
}

// --- exchange patterns vs models -----------------------------------------------

func TestOMENExchangeMatchesModel(t *testing.T) {
	p := device.Mini()
	const procs = 4
	c := NewCluster(procs)
	if err := c.Run(func(r *Rank) error { return OMENExchangeSSE(r, p) }); err != nil {
		t.Fatal(err)
	}
	want := ExpectedOMENExchangeBytes(p, procs)
	if got := c.TotalBytes(); got != want {
		t.Fatalf("measured %d bytes, model predicts %d", got, want)
	}
	// The idealized formula differs only by the (P−1)/P broadcast factor.
	model := OMENVolume(p, procs)
	ratio := float64(want) / model
	if ratio < float64(procs-1)/float64(procs)-0.01 || ratio > 1.01 {
		t.Fatalf("exchange/model ratio %.3f outside [(P−1)/P, 1]", ratio)
	}
}

func TestDaCeExchangeMatchesModel(t *testing.T) {
	p := device.Mini()
	const te, ta = 2, 2
	c := NewCluster(te * ta)
	if err := c.Run(func(r *Rank) error { return DaCeExchangeSSE(r, p, te, ta) }); err != nil {
		t.Fatal(err)
	}
	want := ExpectedDaCeExchangeBytes(p, te, ta)
	if got := c.TotalBytes(); got != want {
		t.Fatalf("measured %d bytes, model predicts %d", got, want)
	}
	model := DaCeVolume(p, te, ta)
	if math.Abs(float64(want)-model) > 0.02*model {
		t.Fatalf("integer exchange %d vs closed form %.0f", want, model)
	}
}

func TestDaCeExchangeRejectsBadGrid(t *testing.T) {
	p := device.Mini()
	c := NewCluster(4)
	err := c.Run(func(r *Rank) error { return DaCeExchangeSSE(r, p, 3, 2) })
	if err == nil {
		t.Fatal("TE·TA mismatch must fail")
	}
}

func TestExchangeVolumesFavorDaCeAtMiniScale(t *testing.T) {
	// Even at laptop scale the CA pattern moves less data.
	p := device.Mini()
	const procs = 4
	omen := ExpectedOMENExchangeBytes(p, procs)
	dace := ExpectedDaCeExchangeBytes(p, 2, 2)
	if dace >= omen {
		t.Fatalf("DaCe %d bytes should beat OMEN %d", dace, omen)
	}
}
