package comm

import (
	"strconv"
	"testing"

	"negfsim/internal/obs"
)

// TestClusterGaugesAgreeWithCounters runs an alltoallv exchange with
// recording enabled and asserts that the per-rank gauges exported through
// the obs registry report exactly the cluster's own byte counters — the
// gauges are GaugeFuncs reading the same atomics, so any disagreement
// means a registration bug (e.g. gauges still pointing at an older
// cluster).
func TestClusterGaugesAgreeWithCounters(t *testing.T) {
	obs.Enable()
	t.Cleanup(func() {
		obs.Disable()
		obs.Reset()
	})

	// An earlier cluster whose gauges must be superseded by the next one.
	stale := NewCluster(2)
	_ = stale

	const n = 4
	c := NewCluster(n)
	err := c.Run(func(r *Rank) error {
		send := make([][]complex128, n)
		for to := 0; to < n; to++ {
			// Asymmetric payloads so every rank's sent/received totals
			// differ: rank r sends r+to+1 elements to rank to.
			send[to] = make([]complex128, r.ID+to+1)
		}
		_, err := r.Alltoallv(send)
		return err
	})
	if err != nil {
		t.Fatal(err)
	}

	for r := 0; r < n; r++ {
		rank := strconv.Itoa(r)
		if g, ok := obs.GaugeValue(obs.Labeled("comm.sent_bytes", "rank", rank)); !ok {
			t.Errorf("rank %d: sent_bytes gauge not registered", r)
		} else if want := c.SentBytes(r); g != want {
			t.Errorf("rank %d: sent_bytes gauge = %d, counter = %d", r, g, want)
		}
		if g, ok := obs.GaugeValue(obs.Labeled("comm.recvd_bytes", "rank", rank)); !ok {
			t.Errorf("rank %d: recvd_bytes gauge not registered", r)
		} else if want := c.ReceivedBytes(r); g != want {
			t.Errorf("rank %d: recvd_bytes gauge = %d, counter = %d", r, g, want)
		}
	}
	if g, ok := obs.GaugeValue("comm.total_bytes"); !ok {
		t.Error("total_bytes gauge not registered")
	} else if want := c.TotalBytes(); g != want {
		t.Errorf("total_bytes gauge = %d, cluster reports %d", g, want)
	} else if want == 0 {
		t.Error("exchange moved zero bytes; test is vacuous")
	}

	// The sends counter and byte counter must have advanced too.
	if v := obs.GetCounter("comm.sends").Value(); v < int64(n*(n-1)) {
		t.Errorf("comm.sends = %d, want ≥ %d", v, n*(n-1))
	}
}

// TestShrinkingClusterUnregistersRankGauges creates an 8-rank cluster and
// replaces it with a 4-rank one: a scrape after the shrink must expose
// per-rank gauges only for ranks 0–3 — ranks 4–7 would otherwise keep
// reading the dead cluster forever.
func TestShrinkingClusterUnregistersRankGauges(t *testing.T) {
	obs.Enable()
	t.Cleanup(func() {
		obs.Disable()
		obs.Reset()
	})

	big := NewCluster(8)
	_ = big
	small := NewCluster(4)

	for r := 0; r < 4; r++ {
		rank := strconv.Itoa(r)
		if _, ok := obs.GaugeValue(obs.Labeled("comm.sent_bytes", "rank", rank)); !ok {
			t.Errorf("rank %d: sent_bytes gauge missing after shrink", r)
		}
	}
	for r := 4; r < 8; r++ {
		rank := strconv.Itoa(r)
		if _, ok := obs.GaugeValue(obs.Labeled("comm.sent_bytes", "rank", rank)); ok {
			t.Errorf("rank %d: stale sent_bytes gauge survived the shrink", r)
		}
		if _, ok := obs.GaugeValue(obs.Labeled("comm.recvd_bytes", "rank", rank)); ok {
			t.Errorf("rank %d: stale recvd_bytes gauge survived the shrink", r)
		}
	}
	// A full scrape must agree: no series for ranks ≥ 4.
	for _, st := range obs.GaugeStats() {
		for r := 4; r < 8; r++ {
			if st.Name == obs.Labeled("comm.sent_bytes", "rank", strconv.Itoa(r)) ||
				st.Name == obs.Labeled("comm.recvd_bytes", "rank", strconv.Itoa(r)) {
				t.Errorf("scrape still exports %s", st.Name)
			}
		}
	}
	// And the surviving gauges read the new cluster.
	if err := small.Run(func(r *Rank) error {
		if r.ID == 0 {
			return r.Send(1, make([]complex128, 3))
		}
		if r.ID == 1 {
			_, err := r.Recv(0)
			return err
		}
		return nil
	}); err != nil {
		t.Fatal(err)
	}
	if g, _ := obs.GaugeValue(obs.Labeled("comm.sent_bytes", "rank", "0")); g != small.SentBytes(0) {
		t.Errorf("gauge reads %d, new cluster sent %d", g, small.SentBytes(0))
	}
}
