package comm

import (
	"context"
	"errors"
	"net"
	"strconv"
	"sync"
	"testing"
	"time"

	"negfsim/internal/obs"
	"negfsim/internal/transport"
)

// TestClusterGaugesAgreeWithCounters runs an alltoallv exchange with
// recording enabled and asserts that the per-rank gauges exported through
// the obs registry report exactly the cluster's own byte counters — the
// gauges are GaugeFuncs reading the same atomics, so any disagreement
// means a registration bug (e.g. gauges still pointing at an older
// cluster).
func TestClusterGaugesAgreeWithCounters(t *testing.T) {
	obs.Enable()
	t.Cleanup(func() {
		obs.Disable()
		obs.Reset()
	})

	// An earlier cluster whose gauges must be superseded by the next one.
	stale := NewCluster(2)
	_ = stale

	const n = 4
	c := NewCluster(n)
	err := c.Run(func(r *Rank) error {
		send := make([][]complex128, n)
		for to := 0; to < n; to++ {
			// Asymmetric payloads so every rank's sent/received totals
			// differ: rank r sends r+to+1 elements to rank to.
			send[to] = make([]complex128, r.ID+to+1)
		}
		_, err := r.Alltoallv(send)
		return err
	})
	if err != nil {
		t.Fatal(err)
	}

	for r := 0; r < n; r++ {
		rank := strconv.Itoa(r)
		if g, ok := obs.GaugeValue(obs.Labeled("comm.sent_bytes", "rank", rank)); !ok {
			t.Errorf("rank %d: sent_bytes gauge not registered", r)
		} else if want := c.SentBytes(r); g != want {
			t.Errorf("rank %d: sent_bytes gauge = %d, counter = %d", r, g, want)
		}
		if g, ok := obs.GaugeValue(obs.Labeled("comm.recvd_bytes", "rank", rank)); !ok {
			t.Errorf("rank %d: recvd_bytes gauge not registered", r)
		} else if want := c.ReceivedBytes(r); g != want {
			t.Errorf("rank %d: recvd_bytes gauge = %d, counter = %d", r, g, want)
		}
	}
	if g, ok := obs.GaugeValue("comm.total_bytes"); !ok {
		t.Error("total_bytes gauge not registered")
	} else if want := c.TotalBytes(); g != want {
		t.Errorf("total_bytes gauge = %d, cluster reports %d", g, want)
	} else if want == 0 {
		t.Error("exchange moved zero bytes; test is vacuous")
	}

	// The sends counter and byte counter must have advanced too.
	if v := obs.GetCounter("comm.sends").Value(); v < int64(n*(n-1)) {
		t.Errorf("comm.sends = %d, want ≥ %d", v, n*(n-1))
	}
}

// TestShrinkingClusterUnregistersRankGauges creates an 8-rank cluster and
// replaces it with a 4-rank one: a scrape after the shrink must expose
// per-rank gauges only for ranks 0–3 — ranks 4–7 would otherwise keep
// reading the dead cluster forever.
func TestShrinkingClusterUnregistersRankGauges(t *testing.T) {
	obs.Enable()
	t.Cleanup(func() {
		obs.Disable()
		obs.Reset()
	})

	big := NewCluster(8)
	_ = big
	small := NewCluster(4)

	for r := 0; r < 4; r++ {
		rank := strconv.Itoa(r)
		if _, ok := obs.GaugeValue(obs.Labeled("comm.sent_bytes", "rank", rank)); !ok {
			t.Errorf("rank %d: sent_bytes gauge missing after shrink", r)
		}
	}
	for r := 4; r < 8; r++ {
		rank := strconv.Itoa(r)
		if _, ok := obs.GaugeValue(obs.Labeled("comm.sent_bytes", "rank", rank)); ok {
			t.Errorf("rank %d: stale sent_bytes gauge survived the shrink", r)
		}
		if _, ok := obs.GaugeValue(obs.Labeled("comm.recvd_bytes", "rank", rank)); ok {
			t.Errorf("rank %d: stale recvd_bytes gauge survived the shrink", r)
		}
	}
	// A full scrape must agree: no series for ranks ≥ 4.
	for _, st := range obs.GaugeStats() {
		for r := 4; r < 8; r++ {
			if st.Name == obs.Labeled("comm.sent_bytes", "rank", strconv.Itoa(r)) ||
				st.Name == obs.Labeled("comm.recvd_bytes", "rank", strconv.Itoa(r)) {
				t.Errorf("scrape still exports %s", st.Name)
			}
		}
	}
	// And the surviving gauges read the new cluster.
	if err := small.Run(func(r *Rank) error {
		if r.ID == 0 {
			return r.Send(1, make([]complex128, 3))
		}
		if r.ID == 1 {
			_, err := r.Recv(0)
			return err
		}
		return nil
	}); err != nil {
		t.Fatal(err)
	}
	if g, _ := obs.GaugeValue(obs.Labeled("comm.sent_bytes", "rank", "0")); g != small.SentBytes(0) {
		t.Errorf("gauge reads %d, new cluster sent %d", g, small.SentBytes(0))
	}
}

// TestClusterIdentitiesDoNotClobber runs a legacy in-process cluster and a
// two-peer TCP cluster side by side: each cluster identity must export its
// own gauge family — the unlabeled legacy names for the in-process cluster,
// {cluster="tcp-r<rank>"} series for each TCP peer — with neither family
// reading the other's counters, and closing the TCP peers must retire only
// their families.
func TestClusterIdentitiesDoNotClobber(t *testing.T) {
	obs.Enable()
	t.Cleanup(func() {
		obs.Disable()
		obs.Reset()
	})

	local := NewCluster(2)
	if err := local.Run(func(r *Rank) error {
		if r.ID == 0 {
			return r.Send(1, make([]complex128, 5))
		}
		_, err := r.Recv(0)
		return err
	}); err != nil {
		t.Fatal(err)
	}

	// A live TCP pair in the same process (exactly what a test harness or a
	// daemon hosting several jobs produces).
	const n = 2
	addrs := make([]string, n)
	lns := make([]net.Listener, n)
	for i := range addrs {
		ln, err := net.Listen("tcp", "127.0.0.1:0")
		if err != nil {
			t.Fatal(err)
		}
		lns[i], addrs[i] = ln, ln.Addr().String()
	}
	peers := make([]*Cluster, n)
	for r := 0; r < n; r++ {
		cl, err := NewClusterTCPWith(context.Background(), r, addrs, transport.TCPConfig{
			Listener: lns[r], RetryInterval: time.Millisecond,
		})
		if err != nil {
			t.Fatal(err)
		}
		peers[r] = cl
		defer cl.Close()
	}
	errs := make([]error, n)
	var wg sync.WaitGroup
	for r, cl := range peers {
		wg.Add(1)
		go func(r int, cl *Cluster) {
			defer wg.Done()
			errs[r] = cl.Run(func(rk *Rank) error {
				if rk.ID == 0 {
					return rk.Send(1, make([]complex128, 7))
				}
				_, err := rk.Recv(0)
				return err
			})
		}(r, cl)
	}
	wg.Wait()
	if err := errors.Join(errs...); err != nil {
		t.Fatal(err)
	}

	// The legacy family still reads the in-process cluster, untouched by the
	// TCP traffic that flowed meanwhile.
	if g, ok := obs.GaugeValue(obs.Labeled("comm.sent_bytes", "rank", "0")); !ok || g != local.SentBytes(0) {
		t.Errorf("legacy sent_bytes{rank=0} = %d (ok=%v), in-process cluster sent %d", g, ok, local.SentBytes(0))
	}
	if g, ok := obs.GaugeValue("comm.total_bytes"); !ok || g != local.TotalBytes() {
		t.Errorf("legacy total_bytes = %d (ok=%v), in-process cluster reports %d", g, ok, local.TotalBytes())
	}
	// Each TCP peer exports its own family keyed by identity, reading its
	// own instance.
	for r, cl := range peers {
		id := "tcp-r" + strconv.Itoa(r)
		name := obs.Labeled("comm.sent_bytes", "cluster", id, "rank", strconv.Itoa(r))
		if g, ok := obs.GaugeValue(name); !ok || g != cl.SentBytes(r) {
			t.Errorf("%s = %d (ok=%v), peer instance sent %d", name, g, ok, cl.SentBytes(r))
		}
		total := obs.Labeled("comm.total_bytes", "cluster", id)
		if g, ok := obs.GaugeValue(total); !ok || g != cl.TotalBytes() {
			t.Errorf("%s = %d (ok=%v), peer instance reports %d", total, g, ok, cl.TotalBytes())
		}
	}
	if local.TotalBytes() == peers[0].TotalBytes() {
		t.Fatal("test payloads must differ so a clobbered gauge cannot pass by luck")
	}

	// Closing the TCP peers retires their families and leaves the legacy one.
	for _, cl := range peers {
		cl.Close()
	}
	for r := range peers {
		id := "tcp-r" + strconv.Itoa(r)
		if _, ok := obs.GaugeValue(obs.Labeled("comm.total_bytes", "cluster", id)); ok {
			t.Errorf("closed peer %d still exports its total gauge", r)
		}
	}
	if _, ok := obs.GaugeValue("comm.total_bytes"); !ok {
		t.Error("closing the TCP peers retired the legacy family too")
	}
}
