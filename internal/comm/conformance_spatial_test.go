package comm_test

// Spatial-split conformance: the distributed device-partitioned retarded
// solve (internal/rgf.DistributedRetarded) must move exactly the bytes the
// perfmodel spatial-split volume model predicts, on both transports, and
// return the sequential solver's replicated diagonal while doing it. This
// lives in an external test package so it can pin comm's measured counters
// against rgf and perfmodel without an import cycle.

import (
	"context"
	"errors"
	"math/rand"
	"net"
	"sync"
	"testing"
	"time"

	"negfsim/internal/cmat"
	"negfsim/internal/comm"
	"negfsim/internal/perfmodel"
	"negfsim/internal/rgf"
	"negfsim/internal/transport"
)

// spatialOperator mirrors the rgf test generator: A = (E + iη)·I − H with H
// random Hermitian, safely invertible.
func spatialOperator(rng *rand.Rand, n, bs int) *cmat.BlockTri {
	a := cmat.NewBlockTri(n, bs)
	for i := 0; i < n; i++ {
		h := cmat.RandomHermitian(rng, bs, 0)
		a.Diag[i] = h.Scale(-1)
		for j := 0; j < bs; j++ {
			a.Diag[i].Set(j, j, a.Diag[i].At(j, j)+complex(2.5, 0.6))
		}
	}
	for i := 0; i < n-1; i++ {
		a.Upper[i] = cmat.RandomDense(rng, bs, bs).Scale(0.3)
		a.Lower[i] = a.Upper[i].ConjTranspose()
	}
	return a
}

// spatialFabric builds an n-rank cluster set over the named transport:
// one in-process cluster, or n single-rank TCP peers on loopback.
func spatialFabric(t *testing.T, ctx context.Context, name string, n int) []*comm.Cluster {
	t.Helper()
	if name == "inproc" {
		c := comm.NewClusterCtx(ctx, n)
		t.Cleanup(func() { c.Close() })
		return []*comm.Cluster{c}
	}
	addrs := make([]string, n)
	lns := make([]net.Listener, n)
	for i := range addrs {
		ln, err := net.Listen("tcp", "127.0.0.1:0")
		if err != nil {
			t.Fatal(err)
		}
		lns[i], addrs[i] = ln, ln.Addr().String()
	}
	clusters := make([]*comm.Cluster, n)
	for r := 0; r < n; r++ {
		cl, err := comm.NewClusterTCPWith(ctx, r, addrs, transport.TCPConfig{
			Listener:      lns[r],
			DialTimeout:   2 * time.Second,
			RetryInterval: time.Millisecond,
		})
		if err != nil {
			t.Fatal(err)
		}
		clusters[r] = cl
	}
	t.Cleanup(func() {
		for _, c := range clusters {
			c.Close()
		}
	})
	return clusters
}

func TestConformanceSpatialExchangeBytes(t *testing.T) {
	const (
		ranks = 3
		n     = 8
		bs    = 2
	)
	for _, name := range []string{"inproc", "tcp"} {
		t.Run(name, func(t *testing.T) {
			a := spatialOperator(rand.New(rand.NewSource(31)), n, bs)
			ret, err := rgf.SolveRetarded(a)
			if err != nil {
				t.Fatal(err)
			}
			want := ret.Diag

			clusters := spatialFabric(t, context.Background(), name, ranks)
			diffs := make([]float64, ranks)
			errs := make([]error, len(clusters))
			var wg sync.WaitGroup
			for i, cl := range clusters {
				wg.Add(1)
				go func(i int, cl *comm.Cluster) {
					defer wg.Done()
					errs[i] = cl.Run(func(r *comm.Rank) error {
						out, err := rgf.DistributedRetarded(r, a)
						if err != nil {
							return err
						}
						var worst float64
						for b := range want {
							if d := out[b].MaxAbsDiff(want[b]); d > worst {
								worst = d
							}
						}
						diffs[r.ID] = worst
						return nil
					})
				}(i, cl)
			}
			wg.Wait()
			if err := errors.Join(errs...); err != nil {
				t.Fatal(err)
			}
			for rank, d := range diffs {
				if d > 1e-12 {
					t.Errorf("rank %d: max |Δ| vs sequential = %g > 1e-12", rank, d)
				}
			}
			var measured int64
			for _, cl := range clusters {
				measured += cl.TotalBytes()
			}
			if model := perfmodel.SpatialExchangeBytes(n, bs, ranks); measured != model {
				t.Errorf("measured %d bytes, spatial-split model predicts %d", measured, model)
			}
		})
	}
}
