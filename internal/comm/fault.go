package comm

import (
	"errors"
	"fmt"
	"time"

	"negfsim/internal/obs"
)

// Fault injection: the simulated cluster can kill a rank at a chosen
// communication operation, silently drop messages, or delay delivery — the
// failure modes an extreme-scale NEGF run must survive. Detection is
// cooperative and prompt: the first death closes a per-cluster cancellation
// channel, so every rank blocked in a Send/Recv returns ErrRankDead
// immediately instead of waiting out the full deadline. The deadline itself
// (Cluster.SetTimeout) remains the backstop for silent failures such as
// dropped messages.

// ErrRankDead reports that a communication operation was aborted because a
// rank of the cluster has died (by fault injection, an error return, or a
// panic). Callers detect it with errors.Is and may rebuild a smaller
// cluster and resume from a checkpoint (see core.RunDistributedFT).
var ErrRankDead = errors.New("comm: rank died")

// Fault telemetry (global counters; see docs/OBSERVABILITY.md).
var (
	obsFaultsInjected = obs.GetCounter("comm.faults_injected")
	obsRankDeaths     = obs.GetCounter("comm.rank_deaths")
	obsDroppedMsgs    = obs.GetCounter("comm.dropped_msgs")
)

// FaultPlan describes deterministic faults to inject into a Cluster,
// armed with Cluster.InjectFaults before Run. The zero value injects
// nothing; each fault class has its own enable flag so plans compose.
type FaultPlan struct {
	// Kill enables rank death: KillRank returns ErrRankDead (and marks the
	// whole cluster failed) when it begins its (KillAtOp+1)-th communication
	// operation — Send and Recv calls both count, so collectives die
	// mid-flight. KillAtOp 0 kills on the first operation.
	Kill     bool
	KillRank int
	KillAtOp int

	// Drop enables message loss: cross-rank messages from DropFrom to
	// DropTo are silently discarded after the sender's accounting runs, so
	// sent and received byte totals disagree by exactly the dropped volume.
	// DropLimit bounds the number of drops; 0 means unlimited.
	Drop             bool
	DropFrom, DropTo int
	DropLimit        int

	// Delay, when positive, postpones delivery of every cross-rank message
	// from DelayFrom to DelayTo by the given duration (the sender blocks,
	// modeling a congested link).
	Delay              time.Duration
	DelayFrom, DelayTo int
}

// InjectFaults arms a fault plan on the cluster. Call it before Run; a nil
// plan clears any armed faults. The plan is read-only during the run and
// per-cluster injection state (operation counters, drop budget) starts
// fresh, so the same plan can be reused across clusters.
func (c *Cluster) InjectFaults(p *FaultPlan) {
	c.plan = p
	c.dropsDone.Store(0)
	for i := range c.ops {
		c.ops[i].Store(0)
	}
}

// SetTimeout configures the deadline of every subsequent Send/Recv on the
// cluster (the backstop for silent failures the cancellation channel cannot
// see, such as dropped messages). Call it before Run.
func (c *Cluster) SetTimeout(d time.Duration) {
	if d > 0 {
		c.timeout = d
	}
}

// Timeout returns the cluster's per-operation deadline.
func (c *Cluster) Timeout() time.Duration { return c.timeout }

// DeadRank returns the id of the first rank that died, or -1 while every
// rank is healthy.
func (c *Cluster) DeadRank() int { return int(c.deadRank.Load()) }

// markDead records the death of a rank and cancels the cluster: the first
// call publishes the rank id and closes the down channel, unblocking every
// pending operation with ErrRankDead. On a multi-process cluster, the death
// of a locally-hosted rank additionally tears the transport down, so peer
// processes observe the failure as a connection loss immediately — the same
// prompt detection the in-process down channel gives local ranks — instead
// of waiting out their deadline backstop.
func (c *Cluster) markDead(rank int) {
	if c.deadRank.CompareAndSwap(-1, int64(rank)) {
		obsRankDeaths.Inc()
		close(c.down)
		if c.MultiProcess() && rank >= 0 && c.Local(rank) {
			go c.tr.Close() // async: Close waits for link goroutines
		}
	}
}

// deadErr builds the error a surviving rank returns when the cluster has
// been marked failed.
func (c *Cluster) deadErr(observer int) error {
	return fmt.Errorf("comm: rank %d aborted: rank %d is dead: %w", observer, c.DeadRank(), ErrRankDead)
}

// faultOp advances rank's fault-plan operation counter and returns the
// injected death, if this operation is the planned kill point. It is the
// first statement of Send and Recv; with no plan armed it is a nil check.
func (c *Cluster) faultOp(rank int) error {
	p := c.plan
	if p == nil || !p.Kill || p.KillRank != rank {
		return nil
	}
	op := c.ops[rank].Add(1) - 1
	if op != int64(p.KillAtOp) {
		return nil
	}
	obsFaultsInjected.Inc()
	c.markDead(rank)
	return fmt.Errorf("comm: rank %d killed by fault plan at op %d: %w", rank, op, ErrRankDead)
}

// dropMessage reports whether the plan discards a message from→to, spending
// one unit of the drop budget when it does.
func (c *Cluster) dropMessage(from, to int) bool {
	p := c.plan
	if p == nil || !p.Drop || p.DropFrom != from || p.DropTo != to || from == to {
		return false
	}
	if p.DropLimit > 0 && c.dropsDone.Add(1) > int64(p.DropLimit) {
		return false
	}
	obsFaultsInjected.Inc()
	obsDroppedMsgs.Inc()
	return true
}

// delayMessage blocks the sender for the plan's delay when the message
// matches the delayed link.
func (c *Cluster) delayMessage(from, to int) {
	p := c.plan
	if p == nil || p.Delay <= 0 || p.DelayFrom != from || p.DelayTo != to || from == to {
		return
	}
	obsFaultsInjected.Inc()
	time.Sleep(p.Delay)
}
