package comm

import (
	"fmt"

	"negfsim/internal/device"
	"negfsim/internal/num"
)

// This file implements the two SSE exchange patterns on the simulated
// cluster, with buffer sizes matching the §4.1 models element-for-element,
// so tests can verify the closed-form volumes against measured traffic.
// The actual tensor payloads of the self-consistent solver travel through
// the same collectives (see internal/core); here the buffers carry the
// correctly-sized slices.

// ceilDiv is the shared ⌈a/b⌉ helper; the alias keeps the §4.1 formulas
// below readable.
var ceilDiv = num.CeilDiv

// OMENExchangeSSE runs OMEN's original Nqz·Nω-round pattern on rank r:
// for every (qz, ω) round, the owner broadcasts the D^≷ slice, every rank
// forwards its shifted G^≷ slice around a ring, and the partial Π^≷ are
// reduced at the owner.
func OMENExchangeSSE(r *Rank, p device.Params) error {
	procs := r.Size()
	gSlice := make([]complex128, 4*p.Nkz*ceilDiv(p.NE, procs)*p.NA*p.Norb*p.Norb)
	dSlice := make([]complex128, 2*p.NA*p.NB*p.N3D*p.N3D)
	piSlice := make([]complex128, 2*p.NA*p.NB*p.N3D*p.N3D)
	for qz := 0; qz < p.Nqz; qz++ {
		for w := 0; w < p.Nw; w++ {
			owner := (qz*p.Nw + w) % procs
			// Broadcast the phonon Green's functions D^≷(ω, qz).
			if _, err := r.Bcast(owner, dSlice); err != nil {
				return fmt.Errorf("round (%d,%d) bcast: %w", qz, w, err)
			}
			// Replicate the shifted electron Green's functions G^≷(E±ℏω,
			// kz−qz): ring exchange of each rank's energy slice.
			if err := r.Send((r.ID+1)%procs, gSlice); err != nil {
				return err
			}
			if _, err := r.Recv((r.ID - 1 + procs) % procs); err != nil {
				return err
			}
			// Reduce the partial phonon self-energies Π^≷(ω, qz).
			if _, err := r.Reduce(owner, piSlice); err != nil {
				return fmt.Errorf("round (%d,%d) reduce: %w", qz, w, err)
			}
		}
	}
	return nil
}

// ExpectedOMENExchangeBytes returns the exact traffic OMENExchangeSSE
// generates on a cluster of the given size: the §4.1 model with the
// integer slice sizes and the (P−1)/P broadcast/reduce correction (the
// owner neither receives its own broadcast nor sends to itself).
func ExpectedOMENExchangeBytes(p device.Params, procs int) int64 {
	rounds := int64(p.Nqz * p.Nw)
	g := int64(4 * p.Nkz * ceilDiv(p.NE, procs) * p.NA * p.Norb * p.Norb)
	dpi := int64(4 * p.NA * p.NB * p.N3D * p.N3D)
	perRound := int64(procs)*g + int64(procs-1)*dpi
	return bytesPerComplex * rounds * perRound
}

// DaCeExchangeSSE runs the communication-avoiding pattern on rank r: ONE
// alltoallv in which every rank contributes its G^≷/Σ^≷ tile (with energy
// and atom halos) and its D^≷/Π^≷ tile. The rank grid is TE×TA with
// te·ta = Size().
func DaCeExchangeSSE(r *Rank, p device.Params, te, ta int) error {
	procs := r.Size()
	if te*ta != procs {
		return fmt.Errorf("comm: TE·TA = %d·%d does not cover %d ranks", te, ta, procs)
	}
	atoms := ceilDiv(p.NA, ta) + p.NB
	energies := ceilDiv(p.NE, te) + 2*p.Nw
	contribution := 4*p.Nkz*energies*atoms*p.Norb*p.Norb +
		4*p.Nqz*p.Nw*atoms*p.NB*p.N3D*p.N3D
	// The full contribution leaves the rank, split across the P−1 peers.
	send := make([][]complex128, procs)
	per := contribution / (procs - 1)
	rem := contribution % (procs - 1)
	seen := 0
	for to := 0; to < procs; to++ {
		if to == r.ID {
			send[to] = nil
			continue
		}
		n := per
		if seen < rem {
			n++
		}
		seen++
		send[to] = make([]complex128, n)
	}
	_, err := r.Alltoallv(send)
	return err
}

// ExpectedDaCeExchangeBytes returns the exact traffic DaCeExchangeSSE
// generates: every rank's full contribution crosses the network once.
func ExpectedDaCeExchangeBytes(p device.Params, te, ta int) int64 {
	atoms := int64(ceilDiv(p.NA, ta) + p.NB)
	energies := int64(ceilDiv(p.NE, te) + 2*p.Nw)
	contribution := 4*int64(p.Nkz)*energies*atoms*int64(p.Norb*p.Norb) +
		4*int64(p.Nqz*p.Nw)*atoms*int64(p.NB)*int64(p.N3D*p.N3D)
	return bytesPerComplex * int64(te*ta) * contribution
}
