package comm

import (
	"testing"
	"testing/quick"

	"negfsim/internal/device"
)

func TestDaCeVolumeAlwaysBelowOMEN(t *testing.T) {
	// Property: for any paper-scale configuration and any balanced tiling,
	// the CA scheme never moves more data than the original.
	f := func(nkzSeed, pSeed uint8) bool {
		nkz := 3 + 2*int(nkzSeed%5) // 3..11
		p := device.Paper4864(nkz)
		procs := 64 * (1 + int(pSeed%32)) // 64..2048
		best, feasible := SearchTiles(p, procs, 0)
		if len(feasible) == 0 {
			return true
		}
		return best.Bytes < OMENVolume(p, procs)
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 40}); err != nil {
		t.Fatal(err)
	}
}

func TestOMENVolumeGrowsWithProcs(t *testing.T) {
	// The phonon term of the OMEN scheme is replicated per process, so
	// total volume must grow monotonically with P — the strong-scaling
	// pathology of Table 5.
	p := device.Paper4864(7)
	prev := 0.0
	for procs := 112; procs <= 3584; procs *= 2 {
		v := OMENVolume(p, procs)
		if v <= prev {
			t.Fatalf("OMEN volume must grow with P: %g at %d", v, procs)
		}
		prev = v
	}
}

func TestDaCeVolumeHasInteriorOptimum(t *testing.T) {
	// The energy-only (TA=1) and atom-only (TE=1) extremes both waste
	// volume on halos; the optimum lies strictly between them.
	p := device.Paper4864(7)
	const procs = 1792
	best, _ := SearchTiles(p, procs, 0)
	if best.TE == 1 || best.TA == 1 {
		t.Fatalf("optimum at an extreme: TE=%d TA=%d", best.TE, best.TA)
	}
	if DaCeVolume(p, 1, procs) <= best.Bytes || DaCeVolume(p, procs, 1) <= best.Bytes {
		t.Fatal("extremes should be worse than the interior optimum")
	}
}
